(* Gateway path sets (§9 equivalences), the Monte Carlo dataplane
   simulator, the max-min bi-level objective (Appendix A), and the
   KKT-vs-strong-duality encoding equivalence. *)

let check_int = Alcotest.(check int)
let check_float ?(eps = 1e-5) what expected got =
  Alcotest.(check (float eps)) what expected got

let fig1 = Wan.Generators.fig1 ()

(* --- gateway path sets -------------------------------------------------- *)

let test_gateway_paths () =
  (* virtual gateway attached to B and C; destination D: it should see
     the union of B's and C's paths, one hop longer *)
  let topo, gw = Wan.Topology.add_virtual_gateway fig1 ~name:"GW" ~attached:[ (1, 100.); (2, 100.) ] in
  let ps = Netpath.Path_set.via_gateway ~n_primary:2 ~n_backup:2 topo ~gateway:gw ~dsts:[ 3 ] in
  let p = Netpath.Path_set.find ps ~src:gw ~dst:3 in
  check_int "primaries" 2 (Netpath.Path_set.num_primary p);
  (* the two shortest are GW-B-D and GW-C-D (2 hops) *)
  List.iter
    (fun path -> check_int "shortest are 2 hops" 2 (Netpath.Path.length path))
    p.Netpath.Path_set.primary;
  (* all paths start at the gateway *)
  List.iter
    (fun path -> check_int "starts at gateway" gw (Netpath.Path.src path))
    (Netpath.Path_set.all_paths p);
  (* backups exist: GW-B-A-D / GW-C-A-D *)
  Alcotest.(check bool) "has backups" true (Netpath.Path_set.num_backup p > 0)

let test_gateway_analysis () =
  (* the gateway's traffic can enter through either B or C, so no single
     gateway-LAG failure can disconnect it; degradation comes from the
     interior links *)
  let topo, gw =
    Wan.Topology.add_virtual_gateway fig1 ~name:"GW" ~attached:[ (1, 100.); (2, 100.) ]
  in
  let paths = Netpath.Path_set.via_gateway ~n_primary:2 ~n_backup:0 topo ~gateway:gw ~dsts:[ 3 ] in
  let d = Traffic.Demand.of_list [ ((gw, 3), 14.) ] in
  let spec = { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 1 } in
  let options = { Raha.Analysis.default_options with spec } in
  let r = Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.fixed d) in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  (* healthy: GW-B-D (8) + GW-C-D (8) carries 14; worst single failure
     (BD or CD) leaves 8 -> degradation 6 *)
  check_float "healthy" 14. r.Raha.Analysis.healthy_performance;
  check_float "degradation" 6. r.Raha.Analysis.degradation

(* --- Monte Carlo simulator ---------------------------------------------- *)

let mc_setup () =
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  (paths, d)

let test_monte_carlo_distribution () =
  let paths, d = mc_setup () in
  let degs, scens = Te.Monte_carlo.sample_degradations ~seed:7 ~samples:3000 fig1 paths d in
  check_int "count" 3000 (Array.length degs);
  let s = Te.Monte_carlo.summarize degs scens in
  (* all fig1 links have p = 0.01: most samples see no failure *)
  check_float ~eps:1e-9 "median is zero" 0. s.Te.Monte_carlo.p50;
  Alcotest.(check bool) "mean small but positive" true
    (s.Te.Monte_carlo.mean > 0. && s.Te.Monte_carlo.mean < 1.);
  (* max degradation over samples is bounded by the exhaustive worst case *)
  let oracle =
    List.fold_left
      (fun acc sc ->
        match Te.Simulate.degradation fig1 paths d sc with
        | Some deg -> Float.max acc deg
        | None -> acc)
      0.
      (Failure.Enumerate.up_to_k fig1 ~k:5)
  in
  Alcotest.(check bool) "max within oracle" true (s.Te.Monte_carlo.max_seen <= oracle +. 1e-9);
  (* empirical P(deg > 0) should be near 1 - (1-p)^5 ~ 4.9%, within noise *)
  let p_any = Te.Monte_carlo.prob_degradation_above degs 0. in
  Alcotest.(check bool)
    (Printf.sprintf "P(deg>0) = %.3f close to ~2-4%%" p_any)
    true
    (p_any > 0.003 && p_any < 0.12)

let test_monte_carlo_misses_rare_worst_case () =
  (* the §1 story: sampling at realistic probabilities rarely surfaces
     the worst probable scenario Raha finds by optimization *)
  let paths, d = mc_setup () in
  let degs, scens = Te.Monte_carlo.sample_degradations ~seed:11 ~samples:500 fig1 paths d in
  let s = Te.Monte_carlo.summarize degs scens in
  let spec =
    { Raha.Bilevel.default_spec with Raha.Bilevel.threshold = Some 1e-5 }
  in
  let options = { Raha.Analysis.default_options with spec } in
  let raha = Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d) in
  Alcotest.(check bool) "raha >= sampled max" true
    (raha.Raha.Analysis.degradation +. 1e-6 >= s.Te.Monte_carlo.max_seen)

let test_summarize_nearest_rank () =
  (* pins the nearest-rank rule: percentile q is the ceil(q*n)-th
     smallest value (regression for an off-by-one that read past the
     intended rank on small n) *)
  let scen n = Array.make n Failure.Scenario.empty in
  let s1 = Te.Monte_carlo.summarize [| 5. |] (scen 1) in
  check_float "n=1 p50" 5. s1.Te.Monte_carlo.p50;
  check_float "n=1 p95" 5. s1.Te.Monte_carlo.p95;
  check_float "n=1 p99" 5. s1.Te.Monte_carlo.p99;
  let s4 = Te.Monte_carlo.summarize [| 4.; 1.; 3.; 2. |] (scen 4) in
  (* ceil(0.5*4)=2nd, ceil(0.95*4)=4th, ceil(0.99*4)=4th smallest *)
  check_float "n=4 p50" 2. s4.Te.Monte_carlo.p50;
  check_float "n=4 p95" 4. s4.Te.Monte_carlo.p95;
  check_float "n=4 p99" 4. s4.Te.Monte_carlo.p99;
  check_float "n=4 max" 4. s4.Te.Monte_carlo.max_seen;
  let v100 = Array.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  let s100 = Te.Monte_carlo.summarize v100 (scen 100) in
  check_float "n=100 p50" 50. s100.Te.Monte_carlo.p50;
  check_float "n=100 p95" 95. s100.Te.Monte_carlo.p95;
  check_float "n=100 p99" 99. s100.Te.Monte_carlo.p99

let test_monte_carlo_deterministic () =
  let paths, d = mc_setup () in
  let a, _ = Te.Monte_carlo.sample_degradations ~seed:3 ~samples:200 fig1 paths d in
  let b, _ = Te.Monte_carlo.sample_degradations ~seed:3 ~samples:200 fig1 paths d in
  Alcotest.(check bool) "same seed same draw" true (a = b)

(* --- max-min bi-level (Appendix A) -------------------------------------- *)

let test_maxmin_bilevel () =
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let objective = Te.Formulation.Max_min { bins = 3; ratio = 1. } in
  let spec =
    {
      Raha.Bilevel.default_spec with
      Raha.Bilevel.objective;
      max_failures = Some 1;
      encoding = Raha.Bilevel.Strong_duality { levels = 3 };
    }
  in
  let options = { Raha.Analysis.default_options with spec } in
  let r = Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed d) in
  Alcotest.(check bool) "optimal" true (r.Raha.Analysis.status = Milp.Solver.Optimal);
  (* the reported total-flow gap must replay exactly in the simulator
     under the same max-min routing *)
  (match Te.Simulate.degradation ~objective fig1 paths d r.Raha.Analysis.scenario with
  | Some replay ->
    Alcotest.(check (float 0.3)) "replayed total-flow gap" replay
      r.Raha.Analysis.degradation
  | None -> Alcotest.fail "replay infeasible");
  (* and it cannot exceed the exhaustive single-failure oracle *)
  let oracle =
    List.fold_left
      (fun acc s ->
        match Te.Simulate.degradation ~objective fig1 paths d s with
        | Some deg -> Float.max acc deg
        | None -> acc)
      0.
      (Failure.Enumerate.up_to_k fig1 ~k:1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "bilevel %.3f <= oracle %.3f" r.Raha.Analysis.degradation oracle)
    true
    (r.Raha.Analysis.degradation <= oracle +. 1e-4)

(* --- encoding equivalence ----------------------------------------------- *)

let prop_encodings_agree =
  (* for fixed demands, KKT and strong duality must find the same
     optimal degradation *)
  QCheck2.Test.make ~name:"KKT and strong-duality encodings agree" ~count:10
    QCheck2.Gen.(
      let* seed = int_range 0 200 in
      let* k = int_range 1 2 in
      return (seed, k))
    (fun (seed, k) ->
      let topo = Wan.Generators.africa_like ~seed ~n:7 () in
      let pairs = [ (0, 4); (1, 5) ] in
      let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 topo pairs in
      let d = Traffic.Demand.of_list (List.map (fun p -> (p, 70.)) pairs) in
      let run encoding =
        let spec =
          { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some k; encoding }
        in
        let options = { Raha.Analysis.default_options with spec } in
        Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.fixed d)
      in
      let sd = run (Raha.Bilevel.Strong_duality { levels = 3 }) in
      let kkt = run Raha.Bilevel.Kkt in
      sd.Raha.Analysis.status = Milp.Solver.Optimal
      && kkt.Raha.Analysis.status = Milp.Solver.Optimal
      && Float.abs (sd.Raha.Analysis.degradation -. kkt.Raha.Analysis.degradation) < 1e-4)

(* --- FFC robust allocation (§2.2's planning baseline) ------------------- *)

let test_ffc_guarantee_holds () =
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  match Te.Ffc.allocate ~k:1 fig1 paths d with
  | None -> Alcotest.fail "FFC allocation failed"
  | Some r ->
    Alcotest.(check bool) "granted <= demand" true
      (r.Te.Ffc.total_granted <= r.Te.Ffc.total_demand +. 1e-6);
    Alcotest.(check bool) "granted positive" true (r.Te.Ffc.total_granted > 0.);
    check_int "scenarios" 6 r.Te.Ffc.scenarios_considered;
    (* the headline property: the grant survives every single-LAG failure *)
    (match Te.Ffc.verify ~k:1 fig1 paths r with
    | None -> ()
    | Some s -> Alcotest.failf "grant violated by %a" Failure.Scenario.pp s)

let test_ffc_protection_costs_throughput () =
  (* protecting against more failures can only shrink the grant *)
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let g k =
    match Te.Ffc.allocate ~k fig1 paths d with
    | Some r -> r.Te.Ffc.total_granted
    | None -> Alcotest.fail "allocation failed"
  in
  let g0 = g 0 and g1 = g 1 and g2 = g 2 in
  Alcotest.(check bool) "k=0 grants everything routable" true (g0 >= 16. -. 1e-6);
  Alcotest.(check bool) "monotone k=1" true (g1 <= g0 +. 1e-6);
  Alcotest.(check bool) "monotone k=2" true (g2 <= g1 +. 1e-6)

let test_ffc_beyond_k_still_degrades () =
  (* §2.2: an FFC-protected network is safe for <= k failures but Raha
     still finds probable scenarios beyond k that degrade the grant *)
  let paths = Netpath.Path_set.compute ~n_primary:1 ~n_backup:1 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  match Te.Ffc.allocate ~k:1 fig1 paths d with
  | None -> Alcotest.fail "allocation failed"
  | Some r ->
    let grant = Te.Ffc.grant_to_demand r in
    let spec =
      { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 1 }
    in
    let options = { Raha.Analysis.default_options with spec } in
    let k1 = Raha.Analysis.analyze ~options fig1 paths (Traffic.Envelope.fixed grant) in
    check_float ~eps:1e-4 "safe within its design point" 0. k1.Raha.Analysis.degradation;
    let spec2 =
      { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 3 }
    in
    let options2 = { Raha.Analysis.default_options with spec = spec2 } in
    let k3 = Raha.Analysis.analyze ~options:options2 fig1 paths (Traffic.Envelope.fixed grant) in
    Alcotest.(check bool)
      (Printf.sprintf "3 failures degrade the protected grant (%.2f)" k3.Raha.Analysis.degradation)
      true
      (k3.Raha.Analysis.degradation > 1e-6)


(* --- inner-encoding unit tests ------------------------------------------ *)

(* A minimal inner LP whose capacity the outer problem controls through a
   binary: max x s.t. x <= 5 - 3*b (outer binary b). The outer objective
   is MINUS the inner optimum, so without the optimality conditions the
   solver would push x to 0; with them, x must equal the true optimum
   (5 at b=0, 2 at b=1) and the outer picks b=1. *)
let tiny_spec (b : Milp.Model.var) =
  {
    Te.Lp_spec.sense = Te.Lp_spec.Max;
    cols = [| { Te.Lp_spec.cname = "x"; obj = 1.; ub_hint = 5. } |];
    rows =
      [|
        {
          Te.Lp_spec.rname = "cap";
          terms = [ (0, 1.) ];
          rel = Te.Lp_spec.Le;
          rhs = Te.Lp_spec.Outer (Milp.Linexpr.of_terms ~const:5. [ (-3., b.Milp.Model.vid) ]);
          slack_bound = 5.;
        };
      |];
    dual_bound = 1.;
  }

let encoding_forces_optimality encode =
  let m = Milp.Model.create () in
  let b = Milp.Model.binary m "b" in
  let inner = encode m ~prefix:"t" (tiny_spec b) in
  (* adversary minimizes the inner optimum *)
  Milp.Model.set_objective m Milp.Model.Maximize
    (Milp.Linexpr.neg inner.Raha.Inner.objective);
  let sol = Milp.Solver.solve m in
  Alcotest.(check bool) "optimal" true (sol.Milp.Solver.status = Milp.Solver.Optimal);
  Alcotest.(check bool) "adversary picks b=1" true (Milp.Solver.bool_value sol b);
  (* the inner variable must sit at ITS optimum (2), not at 0 *)
  Alcotest.(check (float 1e-5)) "inner forced to its optimum" 2.
    (Milp.Linexpr.eval sol.Milp.Solver.values inner.Raha.Inner.objective)

let test_kkt_forces_optimality () = encoding_forces_optimality Raha.Inner.encode_kkt

let test_sd_forces_optimality () =
  encoding_forces_optimality Raha.Inner.encode_strong_duality

let test_primal_only_does_not_force () =
  (* sanity check of the test itself: with primal feasibility alone the
     adversary CAN push the inner variable to 0 *)
  let m = Milp.Model.create () in
  let b = Milp.Model.binary m "b" in
  let inner = Raha.Inner.embed_primal m ~prefix:"t" (tiny_spec b) in
  Milp.Model.set_objective m Milp.Model.Maximize
    (Milp.Linexpr.neg inner.Raha.Inner.objective);
  let sol = Milp.Solver.solve m in
  Alcotest.(check (float 1e-6)) "primal-only collapses to 0" 0.
    (Milp.Linexpr.eval sol.Milp.Solver.values inner.Raha.Inner.objective)

let test_sd_rejects_continuous_outer () =
  (* strong duality must reject a continuous outer variable in an rhs *)
  let m = Milp.Model.create () in
  let c = Milp.Model.continuous ~ub:5. m "c" in
  let spec =
    {
      Te.Lp_spec.sense = Te.Lp_spec.Max;
      cols = [| { Te.Lp_spec.cname = "x"; obj = 1.; ub_hint = 5. } |];
      rows =
        [|
          {
            Te.Lp_spec.rname = "cap";
            terms = [ (0, 1.) ];
            rel = Te.Lp_spec.Le;
            rhs = Te.Lp_spec.Outer (Milp.Linexpr.var c.Milp.Model.vid);
            slack_bound = 5.;
          };
        |];
      dual_bound = 1.;
    }
  in
  match Raha.Inner.encode_strong_duality m ~prefix:"t" spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "continuous outer var accepted"

let suite =
  [
    ("gateway paths", `Quick, test_gateway_paths);
    ("gateway analysis", `Quick, test_gateway_analysis);
    ("monte carlo distribution", `Quick, test_monte_carlo_distribution);
    ("monte carlo misses rare worst case", `Quick, test_monte_carlo_misses_rare_worst_case);
    ("monte carlo deterministic", `Quick, test_monte_carlo_deterministic);
    ("summarize nearest-rank percentiles", `Quick, test_summarize_nearest_rank);
    ("maxmin bilevel", `Quick, test_maxmin_bilevel);
    ("kkt forces inner optimality", `Quick, test_kkt_forces_optimality);
    ("strong duality forces inner optimality", `Quick, test_sd_forces_optimality);
    ("primal-only collapses (control)", `Quick, test_primal_only_does_not_force);
    ("strong duality rejects continuous outer", `Quick, test_sd_rejects_continuous_outer);
    ("ffc guarantee holds", `Quick, test_ffc_guarantee_holds);
    ("ffc protection costs throughput", `Quick, test_ffc_protection_costs_throughput);
    ("ffc beyond k still degrades", `Quick, test_ffc_beyond_k_still_degrades);
    QCheck_alcotest.to_alcotest prop_encodings_agree;
  ]
