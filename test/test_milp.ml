(* Tests for the MILP substrate: simplex correctness on hand-solved LPs,
   branch-and-bound on small MILPs, linearization gadgets, and qcheck
   properties (returned points are feasible; objective matches the point). *)

open Milp

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_float what expected got =
  Alcotest.(check (float 1e-6)) what expected got

let lp_opt ?(options = Solver.default_options) model =
  let sol = Solver.solve ~options model in
  match sol.Solver.status with
  | Solver.Optimal -> sol
  | st ->
    Alcotest.failf "expected optimal, got %a on model %s" Solver.pp_status st
      (Model.name model)

(* --- simplex unit tests ------------------------------------------------ *)

let test_lp_basic () =
  (* max 3x + 2y s.t. x + y <= 4; x + 3y <= 6; x,y >= 0 -> (4,0), obj 12 *)
  let m = Model.create ~name:"lp_basic" () in
  let x = Model.continuous m "x" and y = Model.continuous m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Le 4.;
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (3., y.vid) ]) Model.Le 6.;
  Model.set_objective m Model.Maximize (Linexpr.of_terms [ (3., x.vid); (2., y.vid) ]);
  let sol = lp_opt m in
  check_float "objective" 12. sol.Solver.obj;
  check_float "x" 4. (Solver.value sol x);
  check_float "y" 0. (Solver.value sol y)

let test_lp_degenerate () =
  (* degenerate vertex: max x + y s.t. x <= 1; y <= 1; x + y <= 2 -> 2 *)
  let m = Model.create () in
  let x = Model.continuous m "x" and y = Model.continuous m "y" in
  Model.add_cons m (Linexpr.var x.vid) Model.Le 1.;
  Model.add_cons m (Linexpr.var y.vid) Model.Le 1.;
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Le 2.;
  Model.set_objective m Model.Maximize (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]);
  check_float "objective" 2. (lp_opt m).Solver.obj

let test_lp_equality () =
  (* min 2x + 3y s.t. x + y = 10; x - y >= 2; x,y >= 0 -> x=10,y=0 obj 20 *)
  let m = Model.create () in
  let x = Model.continuous m "x" and y = Model.continuous m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Eq 10.;
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (-1., y.vid) ]) Model.Ge 2.;
  Model.set_objective m Model.Minimize (Linexpr.of_terms [ (2., x.vid); (3., y.vid) ]);
  let sol = lp_opt m in
  check_float "objective" 20. sol.Solver.obj;
  check_float "x" 10. (Solver.value sol x);
  check_float "y" 0. (Solver.value sol y)

let test_lp_infeasible () =
  let m = Model.create () in
  let x = Model.continuous m "x" in
  Model.add_cons m (Linexpr.var x.vid) Model.Le 1.;
  Model.add_cons m (Linexpr.var x.vid) Model.Ge 2.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  let sol = Solver.solve m in
  Alcotest.(check bool) "infeasible" true (sol.Solver.status = Solver.Infeasible)

let test_lp_unbounded () =
  let m = Model.create () in
  let x = Model.continuous m "x" in
  let y = Model.continuous m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (-1., y.vid) ]) Model.Le 1.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  let sol = Solver.solve m in
  Alcotest.(check bool) "unbounded" true (sol.Solver.status = Solver.Unbounded)

let test_lp_negative_bounds () =
  (* variables with negative lower bounds *)
  let m = Model.create () in
  let x = Model.continuous ~lb:(-5.) ~ub:5. m "x" in
  let y = Model.continuous ~lb:(-3.) ~ub:8. m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Le 2.;
  Model.set_objective m Model.Minimize (Linexpr.of_terms [ (1., x.vid); (2., y.vid) ]);
  let sol = lp_opt m in
  (* min x + 2y: push both to lower bounds: -5 + (-6) = -11, feasible *)
  check_float "objective" (-11.) sol.Solver.obj

let test_lp_free_variable () =
  (* free variable: min x s.t. x >= -7 via constraint only *)
  let m = Model.create () in
  let x = Model.continuous ~lb:Float.neg_infinity ~ub:Float.infinity m "x" in
  Model.add_cons m (Linexpr.var x.vid) Model.Ge (-7.);
  Model.set_objective m Model.Minimize (Linexpr.var x.vid);
  check_float "objective" (-7.) (lp_opt m).Solver.obj

let test_lp_fixed_vars () =
  let m = Model.create () in
  let x = Model.continuous ~lb:3. ~ub:3. m "x" in
  let y = Model.continuous ~ub:10. m "y" in
  Model.add_cons m (Linexpr.of_terms [ (2., x.vid); (1., y.vid) ]) Model.Le 10.;
  Model.set_objective m Model.Maximize (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]);
  let sol = lp_opt m in
  check_float "objective" 7. sol.Solver.obj;
  check_float "x stays fixed" 3. (Solver.value sol x)

let test_lp_no_constraints () =
  let m = Model.create () in
  let x = Model.continuous ~lb:1. ~ub:4. m "x" in
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  check_float "objective" 4. (lp_opt m).Solver.obj

let test_lp_bound_override () =
  let m = Model.create () in
  let x = Model.continuous ~ub:10. m "x" in
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  let _, ub = Model.bounds m in
  let lb, _ = Model.bounds m in
  ub.(x.vid) <- 2.5;
  (match Simplex.solve ~lb ~ub m with
  | Simplex.Optimal { obj; _ } -> check_float "override respected" 2.5 obj
  | _ -> Alcotest.fail "expected optimal")

(* --- MILP tests --------------------------------------------------------- *)

let test_milp_knapsack () =
  (* max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a+c = 17?
     options: a+b (w 7 > 6 no); a+c (w 5, v 17); b+c (w 6, v 20) -> 20 *)
  let m = Model.create () in
  let a = Model.binary m "a" and b = Model.binary m "b" and c = Model.binary m "c" in
  Model.add_cons m
    (Linexpr.of_terms [ (3., a.vid); (4., b.vid); (2., c.vid) ])
    Model.Le 6.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (10., a.vid); (13., b.vid); (7., c.vid) ]);
  let sol = lp_opt m in
  check_float "objective" 20. sol.Solver.obj;
  Alcotest.(check bool) "b chosen" true (Solver.bool_value sol b);
  Alcotest.(check bool) "c chosen" true (Solver.bool_value sol c)

let test_milp_integer_rounding () =
  (* max x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5) *)
  let m = Model.create () in
  let x = Model.integer ~ub:100. m "x" in
  Model.add_cons m (Linexpr.var ~coeff:2. x.vid) Model.Le 7.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  check_float "objective" 3. (lp_opt m).Solver.obj

let test_milp_infeasible_integrality () =
  (* 2x = 5 with x integer is infeasible *)
  let m = Model.create () in
  let x = Model.integer ~ub:10. m "x" in
  Model.add_cons m (Linexpr.var ~coeff:2. x.vid) Model.Eq 5.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  let sol = Solver.solve m in
  Alcotest.(check bool) "infeasible" true (sol.Solver.status = Solver.Infeasible)

let test_milp_warm_start () =
  let m = Model.create () in
  let a = Model.binary m "a" and b = Model.binary m "b" in
  Model.add_cons m (Linexpr.of_terms [ (1., a.vid); (1., b.vid) ]) Model.Le 1.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (2., a.vid); (3., b.vid) ]);
  let warm = [| 0.; 1. |] in
  let options = { Solver.default_options with warm_start = Some warm } in
  let sol = lp_opt ~options m in
  check_float "objective" 3. sol.Solver.obj

let test_milp_bigger () =
  (* assignment-style MILP: 4 tasks to 4 machines, minimize cost *)
  let costs =
    [| [| 9.; 2.; 7.; 8. |]; [| 6.; 4.; 3.; 7. |]; [| 5.; 8.; 1.; 8. |]; [| 7.; 6.; 9.; 4. |] |]
  in
  let m = Model.create () in
  let x = Array.init 4 (fun i -> Array.init 4 (fun j -> Model.binary m (Printf.sprintf "x%d%d" i j))) in
  for i = 0 to 3 do
    Model.add_cons m (Linexpr.of_terms (List.init 4 (fun j -> (1., x.(i).(j).Model.vid)))) Model.Eq 1.;
    Model.add_cons m (Linexpr.of_terms (List.init 4 (fun j -> (1., x.(j).(i).Model.vid)))) Model.Eq 1.
  done;
  let obj =
    Linexpr.sum
      (List.concat_map
         (fun i -> List.init 4 (fun j -> Linexpr.var ~coeff:costs.(i).(j) x.(i).(j).Model.vid))
         [ 0; 1; 2; 3 ])
  in
  Model.set_objective m Model.Minimize obj;
  (* optimum: 2 + 3 + 5 + 4 = 14? rows: t0->m1 (2), t1->m2 (3), t2->m0 (5), t3->m3 (4) = 14;
     alternative t2->m2 (1): t0->m1 2, t1->m0 6, t2->m2 1, t3->m3 4 = 13 *)
  check_float "objective" 13. (lp_opt m).Solver.obj

let test_milp_timeout_returns_incumbent () =
  (* A model the solver can find a feasible point for quickly; with a node
     limit of 1..n it must still report a valid bound bracketing. *)
  let m = Model.create () in
  let xs = Array.init 12 (fun i -> Model.binary m (Printf.sprintf "b%d" i)) in
  Array.iteri
    (fun i x ->
      if i > 0 then
        Model.add_cons m
          (Linexpr.of_terms [ (1., x.Model.vid); (1., xs.(i - 1).Model.vid) ])
          Model.Le 1.)
    xs;
  Model.set_objective m Model.Maximize
    (Linexpr.sum (Array.to_list (Array.map (fun x -> Linexpr.var x.Model.vid) xs)));
  let options = { Solver.default_options with max_nodes = 10_000 } in
  let sol = Solver.solve ~options m in
  Alcotest.(check bool) "solved" true (Solver.has_point sol);
  Alcotest.(check bool) "bound >= obj" true (sol.Solver.bound +. 1e-6 >= sol.Solver.obj);
  check_float "independent set on path of 12" 6. sol.Solver.obj

(* --- linearization gadgets ---------------------------------------------- *)

let test_product_bin () =
  (* maximize z = b * e with e = x, x in [0,5]; force b = 1 via constraint *)
  let m = Model.create () in
  let b = Model.binary m "b" in
  let x = Model.continuous ~ub:5. m "x" in
  let z = Linearize.product_bin m ~name:"z" b (Linexpr.var x.vid) ~ub:5. in
  Model.add_cons m (Linexpr.var x.vid) Model.Le 3.;
  Model.set_objective m Model.Maximize (Linexpr.var z.Model.vid);
  let sol = lp_opt m in
  check_float "z = 3 with b = 1" 3. sol.Solver.obj;
  (* now force b = 0: z must be 0 *)
  let m2 = Model.create () in
  let b2 = Model.binary m2 "b" in
  let x2 = Model.continuous ~ub:5. m2 "x" in
  let z2 = Linearize.product_bin m2 ~name:"z" b2 (Linexpr.var x2.Model.vid) ~ub:5. in
  Model.add_cons m2 (Linexpr.var b2.Model.vid) Model.Le 0.;
  Model.add_cons m2 (Linexpr.var x2.Model.vid) Model.Ge 2.;
  Model.set_objective m2 Model.Maximize (Linexpr.var z2.Model.vid);
  check_float "z = 0 with b = 0" 0. (lp_opt m2).Solver.obj

let test_indicator_ge0 () =
  (* e = s - 2 with s integer in [0,4]: y = 1 iff s >= 2 *)
  let check_at s_fixed expect =
    let m = Model.create () in
    let s = Model.integer ~lb:s_fixed ~ub:s_fixed m "s" in
    let e = Linexpr.add (Linexpr.var s.Model.vid) (Linexpr.const (-2.)) in
    let y = Linearize.indicator_ge0 m ~name:"y" e ~lb:(-2.) ~ub:2. in
    Model.set_objective m Model.Maximize Linexpr.zero;
    let sol = lp_opt m in
    Alcotest.(check bool)
      (Printf.sprintf "indicator at s=%g" s_fixed)
      expect (Solver.bool_value sol y)
  in
  check_at 0. false;
  check_at 1. false;
  check_at 2. true;
  check_at 4. true

let test_bool_ops () =
  let run build expect =
    let m = Model.create () in
    let a = Model.binary m "a" and b = Model.binary m "b" in
    Model.add_cons m (Linexpr.var a.Model.vid) Model.Eq 1.;
    Model.add_cons m (Linexpr.var b.Model.vid) Model.Eq 0.;
    let y = build m a b in
    Model.set_objective m Model.Maximize Linexpr.zero;
    let sol = lp_opt m in
    Alcotest.(check bool) "bool op" expect (Solver.bool_value sol y)
  in
  run (fun m a b -> Linearize.bool_or m ~name:"or" [ a; b ]) true;
  run (fun m a b -> Linearize.bool_and m ~name:"and" [ a; b ]) false

(* --- qcheck properties --------------------------------------------------- *)

(* Random small LPs: returned optimal points must satisfy all constraints
   and reproduce the reported objective. *)
let gen_lp =
  QCheck2.Gen.(
    let* nv = int_range 1 5 in
    let* nc = int_range 1 6 in
    let* coeffs =
      list_size (return (nc * nv)) (float_range (-4.) 4.)
    in
    let* rhs = list_size (return nc) (float_range 0.5 20.) in
    let* obj = list_size (return nv) (float_range (-3.) 3.) in
    return (nv, nc, coeffs, rhs, obj))

let build_lp (nv, nc, coeffs, rhs, obj) =
  let m = Model.create () in
  let xs = Array.init nv (fun i -> Model.continuous ~ub:50. m (Printf.sprintf "x%d" i)) in
  let coeffs = Array.of_list coeffs and rhs = Array.of_list rhs in
  for i = 0 to nc - 1 do
    let terms = List.init nv (fun j -> (coeffs.((i * nv) + j), xs.(j).Model.vid)) in
    Model.add_cons m (Linexpr.of_terms terms) Model.Le rhs.(i)
  done;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms (List.mapi (fun j c -> (c, xs.(j).Model.vid)) obj));
  m

let prop_lp_point_feasible =
  QCheck2.Test.make ~name:"simplex: optimal point is feasible" ~count:300 gen_lp
    (fun spec ->
      let m = build_lp spec in
      match Simplex.solve m with
      | Simplex.Optimal { obj; values } ->
        Model.check_feasible ~tol:1e-5 m values = None
        && feq ~eps:1e-5 obj (Model.objective_value m values)
      | Simplex.Infeasible | Simplex.Unbounded -> true
      | Simplex.Iter_limit -> false)

(* Origin is feasible for these LPs (x = 0, rhs > 0), so they are never
   reported infeasible. *)
let prop_lp_never_infeasible =
  QCheck2.Test.make ~name:"simplex: origin-feasible LPs are not infeasible" ~count:300
    gen_lp (fun spec ->
      match Simplex.solve (build_lp spec) with
      | Simplex.Infeasible -> false
      | _ -> true)

(* MILP optimum <= LP relaxation optimum (maximization). *)
let prop_milp_bounded_by_lp =
  QCheck2.Test.make ~name:"b&b: MILP optimum <= LP relaxation" ~count:100
    QCheck2.Gen.(
      let* nv = int_range 1 4 in
      let* nc = int_range 1 4 in
      let* coeffs = list_size (return (nc * nv)) (float_range 0.1 4.) in
      let* rhs = list_size (return nc) (float_range 1. 15.) in
      let* obj = list_size (return nv) (float_range 0.1 3.) in
      return (nv, nc, coeffs, rhs, obj))
    (fun (nv, nc, coeffs, rhs, obj) ->
      let build kind =
        let m = Model.create () in
        let xs =
          Array.init nv (fun i ->
              Model.add_var m ~name:(Printf.sprintf "x%d" i) ~kind ~lb:0. ~ub:10.)
        in
        let coeffs = Array.of_list coeffs and rhs = Array.of_list rhs in
        for i = 0 to nc - 1 do
          let terms = List.init nv (fun j -> (coeffs.((i * nv) + j), xs.(j).Model.vid)) in
          Model.add_cons m (Linexpr.of_terms terms) Model.Le rhs.(i)
        done;
        Model.set_objective m Model.Maximize
          (Linexpr.of_terms (List.mapi (fun j c -> (c, xs.(j).Model.vid)) obj));
        m
      in
      let lp = Solver.solve (build Model.Continuous) in
      let ip = Solver.solve (build Model.Integer) in
      match (lp.Solver.status, ip.Solver.status) with
      | Solver.Optimal, Solver.Optimal -> ip.Solver.obj <= lp.Solver.obj +. 1e-5
      | _ -> true)

(* B&B integral points satisfy the model including integrality. *)
let prop_milp_point_feasible =
  QCheck2.Test.make ~name:"b&b: incumbent is integral-feasible" ~count:100 gen_lp
    (fun (nv, nc, coeffs, rhs, obj) ->
      let m = Model.create () in
      let xs =
        Array.init nv (fun i ->
            Model.add_var m ~name:(Printf.sprintf "x%d" i) ~kind:Model.Integer ~lb:0. ~ub:8.)
      in
      let coeffs = Array.of_list coeffs and rhs = Array.of_list rhs in
      for i = 0 to nc - 1 do
        let terms = List.init nv (fun j -> (coeffs.((i * nv) + j), xs.(j).Model.vid)) in
        Model.add_cons m (Linexpr.of_terms terms) Model.Le rhs.(i)
      done;
      Model.set_objective m Model.Maximize
        (Linexpr.of_terms (List.mapi (fun j c -> (c, xs.(j).Model.vid)) obj));
      match Solver.solve m with
      | { Solver.status = Solver.Optimal; values; _ } ->
        Model.check_feasible ~tol:1e-5 m values = None
      | _ -> true)


(* --- linexpr algebra ----------------------------------------------------- *)

let test_linexpr_algebra () =
  let e = Linexpr.of_terms ~const:2. [ (3., 0); (1., 1); (-3., 0) ] in
  check_float "coalesced" 0. (Linexpr.coeff e 0);
  check_float "kept" 1. (Linexpr.coeff e 1);
  check_float "const" 2. (Linexpr.constant e);
  let f = Linexpr.add (Linexpr.var ~coeff:2. 2) (Linexpr.scale 3. e) in
  check_float "scaled const" 6. (Linexpr.constant f);
  check_float "scaled coeff" 3. (Linexpr.coeff f 1);
  check_float "added var" 2. (Linexpr.coeff f 2);
  let g = Linexpr.sub f f in
  Alcotest.(check bool) "self-sub is constant" true (Linexpr.is_constant g);
  check_float "self-sub zero" 0. (Linexpr.constant g);
  check_float "eval" (2. +. 1. *. 5.) (Linexpr.eval [| 9.; 5.; 9. |] e);
  Alcotest.(check int) "max_var" 2 (Linexpr.max_var f);
  Alcotest.(check int) "max_var const" (-1) (Linexpr.max_var Linexpr.zero)

let prop_linexpr_eval_linear =
  QCheck2.Test.make ~name:"linexpr: eval is linear" ~count:200
    QCheck2.Gen.(
      let* terms = list_size (int_range 1 6) (pair (float_range (-5.) 5.) (int_range 0 4)) in
      let* k = float_range (-3.) 3. in
      let* xs = list_size (return 5) (float_range (-10.) 10.) in
      return (terms, k, xs))
    (fun (terms, k, xs) ->
      let e = Linexpr.of_terms terms in
      let v = Array.of_list xs in
      let lhs = Linexpr.eval v (Linexpr.scale k e) in
      let rhs = k *. Linexpr.eval v e in
      Float.abs (lhs -. rhs) < 1e-6 *. (1. +. Float.abs rhs))

(* --- model checker -------------------------------------------------------- *)

let test_check_feasible () =
  let m = Model.create () in
  let x = Model.continuous ~ub:5. m "x" in
  let y = Model.binary m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (2., y.vid) ]) Model.Le 6.;
  Alcotest.(check bool) "feasible point" true (Model.check_feasible m [| 4.; 1. |] = None);
  Alcotest.(check bool) "bound violation" true (Model.check_feasible m [| 6.; 0. |] <> None);
  Alcotest.(check bool) "integrality violation" true
    (Model.check_feasible m [| 1.; 0.5 |] <> None);
  Alcotest.(check bool) "constraint violation" true
    (Model.check_feasible m [| 5.; 1. |] <> None)

(* --- lp file export -------------------------------------------------------- *)

let test_lp_file () =
  let m = Model.create ~name:"export" () in
  let x = Model.continuous ~ub:5. m "flow" in
  let y = Model.binary m "fail" in
  let z = Model.integer ~ub:3. m "links" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (-2., y.vid) ]) Model.Ge 0.;
  Model.add_cons m (Linexpr.of_terms [ (1., z.vid) ]) Model.Eq 2.;
  Model.set_objective m Model.Maximize (Linexpr.of_terms [ (1., x.vid); (3., z.vid) ]);
  let s = Lp_file.to_string m in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (contains s needle))
    [ "Maximize"; "Subject To"; "Bounds"; "Binaries"; "Generals"; "End"; ">= 0"; "= 2" ]

let test_lp_roundtrip_basic () =
  (* every construct the writer emits: mixed kinds, all three relations,
     a free variable, infinite bounds and an objective constant *)
  let m = Model.create ~name:"rt" () in
  let x = Model.continuous ~ub:5. m "flow" in
  let y = Model.binary m "fail" in
  let z = Model.integer ~ub:3. m "links" in
  let w = Model.continuous ~lb:Float.neg_infinity ~ub:Float.infinity m "slack" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (-2., y.vid) ]) Model.Ge 0.;
  Model.add_cons m (Linexpr.var z.vid) Model.Eq 2.;
  Model.add_cons m (Linexpr.of_terms [ (1., w.vid); (1., x.vid) ]) Model.Ge (-4.);
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms ~const:1.5 [ (1., x.vid); (3., z.vid); (-0.5, w.vid) ]);
  let m' = Lp_file.of_string (Lp_file.to_string m) in
  Alcotest.(check int) "num_vars" (Model.num_vars m) (Model.num_vars m');
  Alcotest.(check int) "num_cons" (Model.num_cons m) (Model.num_cons m');
  Alcotest.(check int) "num_int_vars" (Model.num_int_vars m) (Model.num_int_vars m');
  Array.iter2
    (fun (v : Model.var) (v' : Model.var) ->
      Alcotest.(check bool)
        (Printf.sprintf "kind of x%d" v.Model.vid)
        true
        (v.Model.kind = v'.Model.kind);
      Alcotest.(check bool)
        (Printf.sprintf "bounds of x%d" v.Model.vid)
        true
        (v.Model.lb = v'.Model.lb && v.Model.ub = v'.Model.ub))
    (Model.vars m) (Model.vars m');
  let sol = lp_opt m and sol' = lp_opt m' in
  check_float "same optimum after round-trip" sol.Solver.obj sol'.Solver.obj

let prop_lp_roundtrip =
  (* exported then re-parsed models must agree with the original on
     status and optimum *)
  QCheck2.Test.make ~name:"lp_file: to_string/of_string round-trip" ~count:60
    QCheck2.Gen.(
      let* nv = int_range 1 5 in
      let* nc = int_range 1 5 in
      let* kinds = list_size (return nv) (int_range 0 2) in
      let* coeffs = list_size (return (nc * nv)) (float_range (-4.) 4.) in
      let* rels = list_size (return nc) (int_range 0 2) in
      let* rhs = list_size (return nc) (float_range 0.5 20.) in
      let* obj = list_size (return nv) (float_range (-3.) 3.) in
      let* oconst = float_range (-5.) 5. in
      return (nv, nc, kinds, coeffs, rels, rhs, obj, oconst))
    (fun (nv, _nc, kinds, coeffs, rels, rhs, obj, oconst) ->
      let m = Model.create ~name:"rt" () in
      let kinds = Array.of_list kinds in
      let xs =
        Array.init nv (fun i ->
            let kind =
              match kinds.(i) with
              | 0 -> Model.Continuous
              | 1 -> Model.Binary
              | _ -> Model.Integer
            in
            Model.add_var m ~name:(Printf.sprintf "v%d" i) ~kind ~lb:0. ~ub:6.)
      in
      let coeffs = Array.of_list coeffs and rhs = Array.of_list rhs in
      List.iteri
        (fun i r ->
          let rel = match r with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq in
          let terms =
            List.init nv (fun j -> (coeffs.((i * nv) + j), xs.(j).Model.vid))
          in
          Model.add_cons m (Linexpr.of_terms terms) rel rhs.(i))
        rels;
      Model.set_objective m Model.Maximize
        (Linexpr.of_terms ~const:oconst
           (List.mapi (fun j c -> (c, xs.(j).Model.vid)) obj));
      let m' = Lp_file.of_string (Lp_file.to_string m) in
      let sol = Solver.solve m and sol' = Solver.solve m' in
      Model.num_vars m' = Model.num_vars m
      && Model.num_cons m' = Model.num_cons m
      && Model.num_int_vars m' = Model.num_int_vars m
      && sol.Solver.status = sol'.Solver.status
      && (sol.Solver.status <> Solver.Optimal
         || feq ~eps:1e-5 sol.Solver.obj sol'.Solver.obj))

(* --- simplex extras -------------------------------------------------------- *)

let test_lp_ge_heavy () =
  (* covering LP: min x + y s.t. x + y >= 4; x >= 1; y >= 1 -> 4 *)
  let m = Model.create () in
  let x = Model.continuous m "x" and y = Model.continuous m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Ge 4.;
  Model.add_cons m (Linexpr.var x.vid) Model.Ge 1.;
  Model.add_cons m (Linexpr.var y.vid) Model.Ge 1.;
  Model.set_objective m Model.Minimize (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]);
  check_float "objective" 4. (lp_opt m).Solver.obj

let test_lp_redundant_rows () =
  (* duplicated and dominated rows must not confuse the basis *)
  let m = Model.create () in
  let x = Model.continuous m "x" in
  for _ = 1 to 5 do
    Model.add_cons m (Linexpr.var x.vid) Model.Le 3.
  done;
  Model.add_cons m (Linexpr.var x.vid) Model.Le 10.;
  Model.add_cons m (Linexpr.var ~coeff:2. x.vid) Model.Le 6.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  check_float "objective" 3. (lp_opt m).Solver.obj

let test_lp_equality_system () =
  (* pure equality system with a unique solution: x+y=3, x-y=1 -> (2,1) *)
  let m = Model.create () in
  let x = Model.continuous m "x" and y = Model.continuous m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Eq 3.;
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (-1., y.vid) ]) Model.Eq 1.;
  Model.set_objective m Model.Maximize (Linexpr.of_terms [ (5., x.vid); (7., y.vid) ]);
  let sol = lp_opt m in
  check_float "x" 2. (Solver.value sol x);
  check_float "y" 1. (Solver.value sol y)

let test_milp_branch_priority_respected () =
  (* both orders must find the same optimum regardless of priority *)
  let build () =
    let m = Model.create () in
    let a = Model.binary m "a" and b = Model.binary m "b" and c = Model.binary m "c" in
    Model.add_cons m
      (Linexpr.of_terms [ (2., a.vid); (3., b.vid); (4., c.vid) ])
      Model.Le 5.;
    Model.set_objective m Model.Maximize
      (Linexpr.of_terms [ (2., a.vid); (3., b.vid); (4., c.vid) ]);
    m
  in
  let sol1 = Solver.solve (build ()) in
  let options =
    { Solver.default_options with branch_priority = (fun id -> -id) }
  in
  let sol2 = Solver.solve ~options (build ()) in
  check_float "same optimum" sol1.Solver.obj sol2.Solver.obj

let test_plunge_hint_seeds_incumbent () =
  (* an exact hint must produce an optimal incumbent even with a node
     budget of 1 *)
  let m = Model.create () in
  let a = Model.binary m "a" and b = Model.binary m "b" in
  Model.add_cons m (Linexpr.of_terms [ (1., a.vid); (1., b.vid) ]) Model.Le 1.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (5., a.vid); (3., b.vid) ]);
  let options =
    {
      Solver.default_options with
      max_nodes = 1;
      plunge_hints = [ [ (a.vid, 1.); (b.vid, 0.) ] ];
    }
  in
  let sol = Solver.solve ~options m in
  Alcotest.(check bool) "has incumbent" true (Solver.has_point sol);
  check_float "optimal value from hint" 5. sol.Solver.obj

let prop_row_scaling_invariant =
  (* scaling a constraint row by a positive factor must not change the
     optimum *)
  QCheck2.Test.make ~name:"simplex: row scaling invariance" ~count:100
    QCheck2.Gen.(
      let* nv = int_range 1 4 in
      let* coeffs = list_size (return (3 * nv)) (float_range 0.2 4.) in
      let* rhs = list_size (return 3) (float_range 1. 20.) in
      let* scale = float_range 0.1 10. in
      return (nv, coeffs, rhs, scale))
    (fun (nv, coeffs, rhs, scale) ->
      let build k =
        let m = Model.create () in
        let xs = Array.init nv (fun i -> Model.continuous ~ub:50. m (Printf.sprintf "x%d" i)) in
        let coeffs = Array.of_list coeffs and rhs = Array.of_list rhs in
        for i = 0 to 2 do
          let f = if i = 1 then k else 1. in
          let terms = List.init nv (fun j -> (f *. coeffs.((i * nv) + j), xs.(j).Model.vid)) in
          Model.add_cons m (Linexpr.of_terms terms) Model.Le (f *. rhs.(i))
        done;
        Model.set_objective m Model.Maximize
          (Linexpr.sum (Array.to_list (Array.map (fun (v : Model.var) -> Linexpr.var v.Model.vid) xs)));
        m
      in
      match (Simplex.solve (build 1.), Simplex.solve (build scale)) with
      | Simplex.Optimal { obj = a; _ }, Simplex.Optimal { obj = b; _ } ->
        Float.abs (a -. b) < 1e-5 *. (1. +. Float.abs a)
      | _ -> false)

let test_stats_scope () =
  (* per-query scopes: hook deltas isolate each query's counter activity
     while the cumulative values and the global high-water marks survive *)
  let solve_one () =
    let m = Model.create () in
    let a = Model.binary m "a" and b = Model.binary m "b" in
    Model.add_cons m (Linexpr.of_terms [ (3., a.vid); (4., b.vid) ]) Model.Le 5.;
    Model.set_objective m Model.Maximize
      (Linexpr.of_terms [ (2., a.vid); (3., b.vid) ]);
    ignore (Solver.solve m)
  in
  let pivots_before = Lp_stats.read Lp_stats.pivots () in
  Lp_stats.fmax Lp_stats.certify_max_primal_residual 0.25;
  let s1 = Lp_stats.scope_enter ~hooks:Solver.stats_counters () in
  solve_one ();
  Lp_stats.fmax Lp_stats.certify_max_primal_residual 0.125;
  let r1 = Lp_stats.scope_exit s1 in
  let d1 = List.assoc "simplex" r1.Lp_stats.scope_counters in
  Alcotest.(check bool) "scope 1 saw pivots" true (d1 > 0);
  (* the scope reports only ITS residual mark, not the pre-scope 0.25 *)
  Alcotest.(check (float 0.)) "scope 1 residual mark" 0.125
    (List.assoc "certify-max-primal-residual" r1.Lp_stats.scope_fmax);
  (* ...but the global mark is restored to the max over history *)
  Alcotest.(check (float 0.)) "global mark preserved" 0.25
    (Lp_stats.fread Lp_stats.certify_max_primal_residual ());
  (* a second scope starts from a clean delta even though the cumulative
     counters kept growing *)
  let s2 = Lp_stats.scope_enter ~hooks:Solver.stats_counters () in
  let r2 = Lp_stats.scope_exit s2 in
  Alcotest.(check int) "empty scope has zero deltas" 0
    (List.fold_left (fun acc (_, d) -> acc + abs d) 0 r2.Lp_stats.scope_counters);
  (* cumulative values untouched by scoping *)
  Alcotest.(check bool) "cumulative pivots grew" true
    (Lp_stats.read Lp_stats.pivots () >= pivots_before + d1)

let test_stats_scope_nested () =
  (* LIFO nesting: the inner scope's marks fold into the outer's *)
  let s_out = Lp_stats.scope_enter () in
  Lp_stats.fmax Lp_stats.certify_max_dual_gap 0.5;
  let s_in = Lp_stats.scope_enter () in
  Lp_stats.fmax Lp_stats.certify_max_dual_gap 0.0625;
  let r_in = Lp_stats.scope_exit s_in in
  Alcotest.(check (float 0.)) "inner mark" 0.0625
    (List.assoc "certify-max-dual-gap" r_in.Lp_stats.scope_fmax);
  let r_out = Lp_stats.scope_exit s_out in
  Alcotest.(check (float 0.)) "outer sees max of both" 0.5
    (List.assoc "certify-max-dual-gap" r_out.Lp_stats.scope_fmax)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_linexpr_eval_linear;
      prop_lp_point_feasible;
      prop_lp_never_infeasible;
      prop_milp_bounded_by_lp;
      prop_milp_point_feasible;
      prop_row_scaling_invariant;
      prop_lp_roundtrip;
    ]

let suite =
  [
    ("lp basic", `Quick, test_lp_basic);
    ("lp degenerate", `Quick, test_lp_degenerate);
    ("lp equality", `Quick, test_lp_equality);
    ("lp infeasible", `Quick, test_lp_infeasible);
    ("lp unbounded", `Quick, test_lp_unbounded);
    ("lp negative bounds", `Quick, test_lp_negative_bounds);
    ("lp free variable", `Quick, test_lp_free_variable);
    ("lp fixed vars", `Quick, test_lp_fixed_vars);
    ("lp no constraints", `Quick, test_lp_no_constraints);
    ("lp bound override", `Quick, test_lp_bound_override);
    ("milp knapsack", `Quick, test_milp_knapsack);
    ("milp integer rounding", `Quick, test_milp_integer_rounding);
    ("milp infeasible integrality", `Quick, test_milp_infeasible_integrality);
    ("milp warm start", `Quick, test_milp_warm_start);
    ("milp assignment", `Quick, test_milp_bigger);
    ("milp limits report bound", `Quick, test_milp_timeout_returns_incumbent);
    ("linearize product", `Quick, test_product_bin);
    ("linearize indicator", `Quick, test_indicator_ge0);
    ("linearize bool ops", `Quick, test_bool_ops);
    ("linexpr algebra", `Quick, test_linexpr_algebra);
    ("model check_feasible", `Quick, test_check_feasible);
    ("lp file export", `Quick, test_lp_file);
    ("lp file round-trip", `Quick, test_lp_roundtrip_basic);
    ("lp ge-heavy", `Quick, test_lp_ge_heavy);
    ("lp redundant rows", `Quick, test_lp_redundant_rows);
    ("lp equality system", `Quick, test_lp_equality_system);
    ("milp branch priority", `Quick, test_milp_branch_priority_respected);
    ("plunge hint seeds incumbent", `Quick, test_plunge_hint_seeds_incumbent);
    ("stats scope", `Quick, test_stats_scope);
    ("stats scope nested", `Quick, test_stats_scope_nested);
  ]
  @ qcheck_tests

