(* Differential tests for the batched scenario engine (DESIGN.md §12).

   The engine's contract is bit-identity: the overlay path (one
   prepare, rhs patches, warm dual solves from the healthy basis) and
   the per-scenario-prepare path hand the simplex bit-identical inputs,
   so Monte Carlo and enumeration sweeps must return the very same
   float bits for every batch size, domain count, and batch on/off —
   that is what makes [--no-batch] a pure performance ablation. The
   warm=cold property is weaker by design (alternate optima can differ
   at the last bit between warm dual and cold primal runs) and is
   checked at objective/status level over the random-LP corpus. *)

let bits = Array.map Int64.bits_of_float

let wan () =
  let topo = Wan.Generators.africa_like ~seed:5 ~n:8 () in
  let pairs = [ (0, 5); (1, 6); (2, 7) ] in
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:1 topo pairs in
  let demand =
    Traffic.Demand.of_list
      (List.map (fun p -> (p, Wan.Topology.avg_lag_capacity topo *. 0.65)) pairs)
  in
  (topo, paths, demand)

let scenario_eq = Failure.Scenario.equal

(* --- Monte Carlo: batch == sequential, for every chunking ------------- *)

let test_mc_differential objective () =
  let topo, paths, demand = wan () in
  let samples = 96 in
  (* reference arm: per-scenario prepares, sequential *)
  let ref_degs, ref_scens =
    Te.Monte_carlo.sample_degradations ~objective ~batch:false ~domains:1 ~seed:7
      ~samples topo paths demand
  in
  let wh0 = Milp.Batch.cumulative_warm_hits () in
  List.iter
    (fun (batch_size, domains) ->
      let degs, scens =
        Te.Monte_carlo.sample_degradations ~objective ~batch:true ~batch_size
          ~domains ~seed:7 ~samples topo paths demand
      in
      let what = Printf.sprintf "batch_size=%d domains=%d" batch_size domains in
      Alcotest.(check bool)
        (what ^ ": scenarios identical")
        true
        (Array.for_all2 scenario_eq scens ref_scens);
      Alcotest.(check (array int64))
        (what ^ ": degradations bit-identical")
        (bits ref_degs) (bits degs))
    [ (1, 1); (7, 1); (64, 1); (1, 4); (7, 4); (64, 4) ];
  (* the batched arms must actually have warm-hit, not cold-fallen-back
     (counter is domain-local, so only the domains=1 runs count here) *)
  Alcotest.(check bool)
    "nonzero batched warm hits" true
    (Milp.Batch.cumulative_warm_hits () > wh0)

(* --- enumeration: worst case identical across arms -------------------- *)

let test_enum_differential () =
  let topo, paths, demand = wan () in
  List.iter
    (fun k ->
      let r0 =
        Raha.Baselines.enumerate_failures ~batch:false ~domains:1 ~k topo paths
          demand
      in
      List.iter
        (fun (batch, domains) ->
          let r =
            Raha.Baselines.enumerate_failures ~batch ~domains ~k topo paths
              demand
          in
          let what = Printf.sprintf "k=%d batch=%b domains=%d" k batch domains in
          Alcotest.(check int)
            (what ^ ": scenario count")
            r0.Raha.Baselines.scenarios_evaluated
            r.Raha.Baselines.scenarios_evaluated;
          Alcotest.(check int64)
            (what ^ ": worst degradation bit-identical")
            (Int64.bits_of_float r0.Raha.Baselines.worst)
            (Int64.bits_of_float r.Raha.Baselines.worst);
          Alcotest.(check bool)
            (what ^ ": worst scenario identical")
            true
            (scenario_eq r0.Raha.Baselines.worst_scenario
               r.Raha.Baselines.worst_scenario))
        [ (true, 1); (true, 4); (false, 4) ])
    [ 1; 2 ]

(* --- engine vs the independent Simulate.route path -------------------- *)

(* The legacy per-scenario path builds a structurally different LP (no
   extension rows for open paths), so vertices — hence flows — may
   differ; the optimal objective value must agree to solver tolerance.
   This is the check that is independent of the engine's own
   rebuild-arm code. *)
let test_engine_vs_route objective () =
  let topo, paths, demand = wan () in
  let eng =
    match Te.Simulate.prepare ~objective topo paths demand with
    | Some e -> e
    | None -> Alcotest.fail "healthy network must route the demand"
  in
  let whole_lag e =
    let lag = Wan.Topology.lag topo e in
    Failure.Scenario.of_links topo
      (List.init (Wan.Lag.num_links lag) (fun i -> (e, i)))
  in
  let scenarios =
    Failure.Scenario.empty
    :: List.init (Wan.Topology.num_lags topo) whole_lag
  in
  List.iteri
    (fun i s ->
      let legacy = Te.Simulate.degradation ~objective topo paths demand s in
      let engine = Te.Simulate.degradation_prepared eng s in
      match (legacy, engine) with
      | None, None -> ()
      | Some dl, Some de ->
        let eps = 1e-6 *. (1. +. Float.abs dl) in
        if Float.abs (dl -. de) > eps then
          Alcotest.failf "scenario %d: legacy %.12g vs engine %.12g" i dl de
      | Some _, None | None, Some _ ->
        Alcotest.failf "scenario %d: feasibility verdicts disagree" i)
    scenarios

(* --- warm overlay == cold overlay over the random-LP corpus ----------- *)

(* Perturb the base rhs (random scalings, plus hard zeros — the
   degenerate "capacity wiped out" case), then compare the warm dual
   solve from the base optimal basis against a cold solve of the same
   overlay: status and objective must agree, and the independent
   Batch.check audit must accept the warm answer. The corpus rows are
   [Le] with nonnegative rhs and finite variable bounds, so every
   overlay stays feasible and bounded. *)
let prop_warm_equals_cold =
  QCheck2.Test.make ~name:"warm overlay solve equals cold solve" ~count:64
    QCheck2.Gen.(pair (int_range 0 63) int)
    (fun (case, pseed) ->
      let mdl = Test_revised.random_milp case in
      let batch = Milp.Batch.prepare mdl in
      let base = Milp.Batch.base_rhs batch in
      let warm_basis =
        match Milp.Batch.solve batch with
        | { Milp.Batch.result = Milp.Simplex.Optimal _; basis = Some b; _ } -> b
        | _ -> QCheck2.Test.fail_reportf "case %d: base solve not optimal" case
      in
      let rng = Random.State.make [| 0xba7c4; case; pseed |] in
      let patch =
        List.filter_map Fun.id
          (List.init (Array.length base) (fun i ->
               match Random.State.int rng 4 with
               | 0 -> None (* keep the base value *)
               | 1 -> Some (i, 0.) (* degenerate: capacity wiped out *)
               | _ -> Some (i, base.(i) *. Random.State.float rng 2.)))
      in
      let warm = Milp.Batch.solve ~warm:warm_basis ~patch batch in
      let cold = Milp.Batch.solve ~patch batch in
      (match (warm.Milp.Batch.result, cold.Milp.Batch.result) with
      | Milp.Simplex.Optimal { obj = ow; values }, Milp.Simplex.Optimal { obj = oc; _ }
        ->
        let eps = 1e-6 *. (1. +. Float.abs oc) in
        if Float.abs (ow -. oc) > eps then
          QCheck2.Test.fail_reportf "case %d: warm obj %.12g vs cold %.12g" case
            ow oc;
        (match Milp.Batch.check ~patch ~obj:ow ~values batch with
        | Ok () -> ()
        | Error msg ->
          QCheck2.Test.fail_reportf "case %d: warm audit failed: %s" case msg)
      | Milp.Simplex.Infeasible, Milp.Simplex.Infeasible -> ()
      | rw, rc ->
        let s = function
          | Milp.Simplex.Optimal _ -> "optimal"
          | Milp.Simplex.Infeasible -> "infeasible"
          | Milp.Simplex.Unbounded -> "unbounded"
          | Milp.Simplex.Iter_limit -> "iter-limit"
        in
        QCheck2.Test.fail_reportf "case %d: warm %s vs cold %s" case (s rw)
          (s rc));
      true)

(* --- shared structure is immutable under concurrent overlays ---------- *)

let test_shared_structure_immutable () =
  let mdl = Test_revised.random_milp 3 in
  let batch = Milp.Batch.prepare mdl in
  let sp = Milp.Simplex.prep_sparse (Milp.Batch.prep batch) in
  let snap_colptr = Array.copy sp.Milp.Sparse.colptr
  and snap_rowind = Array.copy sp.Milp.Sparse.rowind
  and snap_values = Array.copy sp.Milp.Sparse.values
  and snap_b = Array.copy sp.Milp.Sparse.b
  and snap_cost = Array.copy sp.Milp.Sparse.cost
  and snap_slo = Array.copy sp.Milp.Sparse.slack_lo
  and snap_shi = Array.copy sp.Milp.Sparse.slack_hi in
  let warm_basis =
    match Milp.Batch.solve batch with
    | { Milp.Batch.result = Milp.Simplex.Optimal _; basis = Some b; _ } -> b
    | _ -> Alcotest.fail "base solve not optimal"
  in
  let base = Milp.Batch.base_rhs batch in
  let patches =
    Array.init 64 (fun i ->
        let rng = Random.State.make [| 0x5eed; i |] in
        List.init (Array.length base) (fun r ->
            (r, base.(r) *. Random.State.float rng 2.)))
  in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let outcomes =
        Parallel.Pool.map_array pool
          (fun patch ->
            match Milp.Batch.solve ~warm:warm_basis ~patch batch with
            | { Milp.Batch.result = Milp.Simplex.Optimal _; _ } -> true
            | _ -> false)
          patches
      in
      Alcotest.(check bool)
        "every overlay solved" true
        (Array.for_all Fun.id outcomes));
  let check name snap now =
    Alcotest.(check bool) (name ^ " unchanged") true (snap = now)
  in
  check "colptr" snap_colptr sp.Milp.Sparse.colptr;
  check "rowind" snap_rowind sp.Milp.Sparse.rowind;
  check "b" (bits snap_b) (bits sp.Milp.Sparse.b);
  check "values" (bits snap_values) (bits sp.Milp.Sparse.values);
  check "cost" (bits snap_cost) (bits sp.Milp.Sparse.cost);
  check "slack_lo" (bits snap_slo) (bits sp.Milp.Sparse.slack_lo);
  check "slack_hi" (bits snap_shi) (bits sp.Milp.Sparse.slack_hi)

let suite =
  [
    ( "monte carlo batch == sequential (total flow)",
      `Quick,
      test_mc_differential Te.Formulation.Total_flow );
    ( "monte carlo batch == sequential (mlu)",
      `Quick,
      test_mc_differential (Te.Formulation.Mlu { u_max = 10. }) );
    ("enumeration batch == sequential", `Quick, test_enum_differential);
    ( "engine agrees with Simulate.route (total flow)",
      `Quick,
      test_engine_vs_route Te.Formulation.Total_flow );
    ( "engine agrees with Simulate.route (mlu)",
      `Quick,
      test_engine_vs_route (Te.Formulation.Mlu { u_max = 10. }) );
    QCheck_alcotest.to_alcotest prop_warm_equals_cold;
    ( "shared CSC structure immutable under concurrent overlays",
      `Quick,
      test_shared_structure_immutable );
  ]
