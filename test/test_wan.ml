(* Topology, LAG, generator, Zoo and GML tests. *)

let check_int = Alcotest.(check int)
let check_float what expected got = Alcotest.(check (float 1e-9)) what expected got

let test_lag_basics () =
  let lag =
    Wan.Lag.make ~id:0 ~src:0 ~dst:1
      [
        { Wan.Lag.link_capacity = 10.; fail_prob = 0.1 };
        { Wan.Lag.link_capacity = 20.; fail_prob = 0.2 };
      ]
  in
  check_float "capacity" 30. (Wan.Lag.capacity lag);
  check_int "links" 2 (Wan.Lag.num_links lag);
  check_float "partial capacity" 20. (Wan.Lag.capacity_with_failures lag [| true; false |]);
  check_float "prob all down" 0.02 (Wan.Lag.prob_all_links_down lag);
  check_int "other end" 1 (Wan.Lag.other_end lag 0);
  check_int "other end rev" 0 (Wan.Lag.other_end lag 1)

let test_lag_validation () =
  let bad f = Alcotest.check_raises "rejects" (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  bad (fun () -> ignore (Wan.Lag.make ~id:0 ~src:1 ~dst:1 [ { Wan.Lag.link_capacity = 1.; fail_prob = 0. } ]));
  bad (fun () -> ignore (Wan.Lag.make ~id:0 ~src:0 ~dst:1 []));
  bad (fun () -> ignore (Wan.Lag.make ~id:0 ~src:0 ~dst:1 [ { Wan.Lag.link_capacity = -1.; fail_prob = 0. } ]));
  bad (fun () -> ignore (Wan.Lag.make ~id:0 ~src:0 ~dst:1 [ { Wan.Lag.link_capacity = 1.; fail_prob = 1.5 } ]));
  bad (fun () -> ignore (Wan.Lag.make ~id:0 ~src:0 ~dst:1 [ { Wan.Lag.link_capacity = 1.; fail_prob = -0.1 } ]));
  (* fail_prob = 1 is legal: an always-down link *)
  ignore (Wan.Lag.make ~id:0 ~src:0 ~dst:1 [ { Wan.Lag.link_capacity = 1.; fail_prob = 1. } ])

let test_topology_basics () =
  let t = Wan.Generators.fig1 () in
  check_int "nodes" 4 (Wan.Topology.num_nodes t);
  check_int "lags" 5 (Wan.Topology.num_lags t);
  check_int "links" 5 (Wan.Topology.num_links t);
  Alcotest.(check bool) "connected" true (Wan.Topology.is_connected t);
  check_float "avg lag capacity" 6.8 (Wan.Topology.avg_lag_capacity t);
  check_int "node id by name" 3 (Wan.Topology.node_id t "D");
  let bd = Wan.Topology.lag_between t 1 3 in
  Alcotest.(check bool) "BD exists" true (bd <> None);
  check_float "BD capacity" 8. (Wan.Lag.capacity (Option.get bd));
  check_int "B degree" 2 (List.length (Wan.Topology.neighbors t 1))

let test_topology_mutation () =
  let t = Wan.Generators.fig1 () in
  let t2 =
    Wan.Topology.with_lag_links t ~lag_id:0
      [
        { Wan.Lag.link_capacity = 8.; fail_prob = 0.01 };
        { Wan.Lag.link_capacity = 4.; fail_prob = 0.01 };
      ]
  in
  check_float "augmented capacity" 12. (Wan.Lag.capacity (Wan.Topology.lag t2 0));
  check_int "lags unchanged" 5 (Wan.Topology.num_lags t2);
  let t3 = Wan.Topology.add_lag t ~src:1 ~dst:2 [ { Wan.Lag.link_capacity = 3.; fail_prob = 0.05 } ] in
  check_int "lag added" 6 (Wan.Topology.num_lags t3);
  Alcotest.(check bool) "BC exists now" true (Wan.Topology.lag_between t3 1 2 <> None)

let test_virtual_gateway () =
  let t = Wan.Generators.fig1 () in
  let t2, v = Wan.Topology.add_virtual_gateway t ~name:"GW" ~attached:[ (1, 100.); (2, 100.) ] in
  check_int "gateway id" 4 v;
  check_int "nodes" 5 (Wan.Topology.num_nodes t2);
  check_int "lags" 7 (Wan.Topology.num_lags t2);
  check_int "gateway degree" 2 (List.length (Wan.Topology.neighbors t2 v));
  (* gateway LAGs never fail *)
  let glag = Option.get (Wan.Topology.lag_between t2 v 1) in
  check_float "failure-free" 0. (Wan.Lag.prob_all_links_down glag)

let test_generators () =
  let ring = Wan.Generators.ring 6 in
  check_int "ring lags" 6 (Wan.Topology.num_lags ring);
  Alcotest.(check bool) "ring connected" true (Wan.Topology.is_connected ring);
  let grid = Wan.Generators.grid 3 4 in
  check_int "grid nodes" 12 (Wan.Topology.num_nodes grid);
  check_int "grid lags" 17 (Wan.Topology.num_lags grid);
  Alcotest.(check bool) "grid connected" true (Wan.Topology.is_connected grid);
  let rgg = Wan.Generators.random_geometric ~seed:3 ~n:30 ~radius:0.2 () in
  Alcotest.(check bool) "rgg connected" true (Wan.Topology.is_connected rgg);
  let af = Wan.Generators.africa_like ~seed:1 ~n:12 () in
  Alcotest.(check bool) "africa connected" true (Wan.Topology.is_connected af);
  Alcotest.(check bool) "africa has multi-link lags" true (Wan.Topology.num_links af > Wan.Topology.num_lags af)

let test_generators_deterministic () =
  let a = Wan.Generators.africa_like ~seed:5 ~n:10 () in
  let b = Wan.Generators.africa_like ~seed:5 ~n:10 () in
  check_int "same lags" (Wan.Topology.num_lags a) (Wan.Topology.num_lags b);
  check_float "same capacity" (Wan.Topology.avg_lag_capacity a) (Wan.Topology.avg_lag_capacity b)

let test_zoo () =
  let b4 = Wan.Zoo.b4 () in
  check_int "b4 nodes" 12 (Wan.Topology.num_nodes b4);
  check_int "b4 lags" 19 (Wan.Topology.num_lags b4);
  check_float "b4 avg capacity" 5000. (Wan.Topology.avg_lag_capacity b4);
  Alcotest.(check bool) "b4 connected" true (Wan.Topology.is_connected b4);
  let ab = Wan.Zoo.abilene () in
  check_int "abilene nodes" 11 (Wan.Topology.num_nodes ab);
  check_int "abilene lags" 14 (Wan.Topology.num_lags ab);
  Alcotest.(check bool) "abilene connected" true (Wan.Topology.is_connected ab);
  let un = Wan.Zoo.uninett2010 () in
  check_int "uninett nodes" 74 (Wan.Topology.num_nodes un);
  check_int "uninett lags" 101 (Wan.Topology.num_lags un);
  Alcotest.(check bool) "uninett connected" true (Wan.Topology.is_connected un);
  let co = Wan.Zoo.cogentco () in
  check_int "cogentco nodes" 197 (Wan.Topology.num_nodes co);
  check_int "cogentco lags" 243 (Wan.Topology.num_lags co);
  List.iter
    (fun n -> Alcotest.(check bool) n true (Wan.Zoo.by_name n <> None))
    Wan.Zoo.names;
  Alcotest.(check bool) "unknown name" true (Wan.Zoo.by_name "nope" = None)

let gml_sample =
  {|
# a Topology-Zoo style file
graph [
  directed 0
  label "sample"
  node [ id 3 label "Alpha" Country "X" ]
  node [ id 7 label "Beta" ]
  node [ id 9 label "Gamma" ]
  edge [ source 3 target 7 LinkSpeed "10" ]
  edge [ source 7 target 9 ]
  edge [ source 9 target 3 ]
  edge [ source 3 target 9 ]
]
|}

let test_gml () =
  let t = Wan.Gml.parse_string ~name:"sample" gml_sample in
  check_int "nodes" 3 (Wan.Topology.num_nodes t);
  (* parallel 3-9 / 9-3 edges collapse *)
  check_int "lags" 3 (Wan.Topology.num_lags t);
  check_int "Alpha id" 0 (Wan.Topology.node_id t "Alpha");
  check_int "Gamma id" 2 (Wan.Topology.node_id t "Gamma");
  Alcotest.(check bool) "connected" true (Wan.Topology.is_connected t)

let test_gml_errors () =
  let bad s =
    match Wan.Gml.parse_string ~name:"bad" s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected Failure"
  in
  bad "graph [ node [ label \"x\" ] ]";
  bad "node [ id 1 ]";
  bad "graph [ node [ id 1 ] edge [ source 1 target 2 ] ]";
  bad "graph [ node [ id 1 ] node [ id 2 ] edge [ source 1 ] ]"

let test_serialize_roundtrip () =
  let t = Wan.Generators.africa_like ~seed:4 ~n:9 () in
  let t2 = Wan.Serialize.of_string (Wan.Serialize.to_string t) in
  check_int "nodes" (Wan.Topology.num_nodes t) (Wan.Topology.num_nodes t2);
  check_int "lags" (Wan.Topology.num_lags t) (Wan.Topology.num_lags t2);
  check_int "links" (Wan.Topology.num_links t) (Wan.Topology.num_links t2);
  Alcotest.(check string) "name" (Wan.Topology.name t) (Wan.Topology.name t2);
  (* link-level equality, including probabilities *)
  Array.iteri
    (fun e (lag : Wan.Lag.t) ->
      let lag2 = Wan.Topology.lag t2 e in
      check_int "endpoints src" lag.Wan.Lag.src lag2.Wan.Lag.src;
      check_int "endpoints dst" lag.Wan.Lag.dst lag2.Wan.Lag.dst;
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          let l2 = lag2.Wan.Lag.links.(i) in
          check_float "cap" l.Wan.Lag.link_capacity l2.Wan.Lag.link_capacity;
          check_float "prob" l.Wan.Lag.fail_prob l2.Wan.Lag.fail_prob)
        lag.Wan.Lag.links)
    (Wan.Topology.lags t)

let test_serialize_errors () =
  let bad s =
    match Wan.Serialize.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected Failure"
  in
  bad "lag 0 1\nlink 5 0.1";
  (* missing nodes *)
  bad "nodes 2\nlink 5 0.1";
  (* link before lag *)
  bad "nodes 2\nlag 0 1";
  (* lag with no links *)
  bad "nodes 2\nwhatever";
  (* comments and blank lines are fine *)
  let t =
    Wan.Serialize.of_string "# comment\nwan x\nnodes 2\n\nlag 0 1\nlink 5 0.1\n"
  in
  check_int "parsed" 1 (Wan.Topology.num_lags t)

let suite =
  [
    ("lag basics", `Quick, test_lag_basics);
    ("lag validation", `Quick, test_lag_validation);
    ("topology basics", `Quick, test_topology_basics);
    ("topology mutation", `Quick, test_topology_mutation);
    ("virtual gateway", `Quick, test_virtual_gateway);
    ("generators", `Quick, test_generators);
    ("generators deterministic", `Quick, test_generators_deterministic);
    ("zoo topologies", `Quick, test_zoo);
    ("gml parser", `Quick, test_gml);
    ("gml errors", `Quick, test_gml_errors);
    ("serialize roundtrip", `Quick, test_serialize_roundtrip);
    ("serialize errors", `Quick, test_serialize_errors);
  ]

