(* Always-on degradation service: protocol, state ingestion,
   invalidation policy, replay determinism across domain counts,
   budget-exhaustion honesty, and a fork-based socket round trip. *)

module J = Service.Json
module Ev = Service.Event

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let fig1 = Wan.Generators.fig1 ()

let make_core ?(domains = 1) ?(drift_tol = 0.5) () =
  let paths =
    Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ]
  in
  let envelope =
    Traffic.Envelope.around ~slack:0.5
      (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])
  in
  let spec =
    { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 1 }
  in
  let options = { Raha.Analysis.default_options with spec; domains } in
  Service.Core.create
    { Service.Core.paths; envelope; options; drift_tol; alert_tolerance = 0.1 }
    fig1

let render j = J.to_string (Service.Core.strip_volatile j)

let get_str key j =
  match J.to_str (J.member key j) with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "missing string %S in %s" key (J.to_string j))

let is_ok j = J.to_bool (J.member "ok" j) = Some true

(* a deterministic interleaved telemetry stream: per-lag exponential
   traces merged by time (fig1 has 5 single-link lags) *)
let telemetry ~seed ~horizon =
  let per_link =
    List.concat
      (List.init (Wan.Topology.num_lags fig1) (fun e ->
           let events =
             Failure.Trace.exponential ~seed:((seed * 10) + e) ~mean_uptime:40.
               ~mean_downtime:4. ~horizon ()
           in
           List.concat_map
             (fun (ev : Failure.Renewal.event) ->
               [
                 ( ev.Failure.Renewal.down_at,
                   Ev.Link_down { lag = e; link = 0; at = ev.Failure.Renewal.down_at } );
                 ( ev.Failure.Renewal.up_at,
                   Ev.Link_up { lag = e; link = 0; at = ev.Failure.Renewal.up_at } );
               ])
             events))
  in
  List.map snd (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) per_link)

(* --- wire format -------------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.float 0.1;
      J.float 1.0999999999999996;
      J.float (-1e-300);
      J.float Float.nan;
      J.float Float.infinity;
      J.float Float.neg_infinity;
      J.String "he said \"hi\"\n\tdone \\ end";
      J.List [ J.Int 1; J.List []; J.Obj [] ];
      J.Obj [ ("a", J.List [ J.Bool false ]); ("b", J.String "") ];
    ]
  in
  List.iter
    (fun j ->
      let s = J.to_string j in
      match J.of_string s with
      | Ok j' -> check_str "round trip" s (J.to_string j')
      | Error m -> Alcotest.fail (Printf.sprintf "parse %s: %s" s m))
    cases;
  (* float payloads survive to the last bit *)
  let v = 1.0999999999999996 in
  (match J.of_string (J.to_string (J.float v)) with
  | Ok j -> Alcotest.(check bool) "bit-exact float" true (J.to_float j = Some v)
  | Error m -> Alcotest.fail m);
  List.iter
    (fun bad ->
      match J.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad))
    [ ""; "{"; "[1,]"; "{\"a\":1"; "1 2"; "nul"; "\"unterminated" ]

let test_protocol_roundtrip () =
  let reqs =
    [
      Ev.Event (Ev.Link_down { lag = 1; link = 0; at = 3.5 });
      Ev.Event (Ev.Link_up { lag = 1; link = 0; at = 4.25 });
      Ev.Event (Ev.Capacity { lag = 0; link = 0; capacity = 12.; at = 5. });
      Ev.Event (Ev.Demand { src = 1; dst = 3; lo = 4.5; hi = 17.25; at = 6. });
      Ev.Subscribe { tolerance = None };
      Ev.Subscribe { tolerance = Some 0.25 };
      Ev.Query (Ev.Worst { budget = Some 500; max_nodes = None });
      Ev.Query (Ev.Worst { budget = None; max_nodes = Some 10 });
      Ev.Query (Ev.Now { down = None });
      Ev.Query (Ev.Now { down = Some [ (0, 0); (2, 0) ] });
      Ev.Query Ev.Status;
      Ev.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      let line = J.to_string (Ev.json_of_request req) in
      match Ev.request_of_line line with
      | Ok req' ->
        Alcotest.(check bool) (Printf.sprintf "round trip %s" line) true (req = req')
      | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" line m))
    reqs;
  List.iter
    (fun bad ->
      match Ev.request_of_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %s" bad))
    [
      "{}";
      {|{"op":"nope"}|};
      {|{"op":"event","ev":"down","lag":0}|};
      {|{"op":"event","ev":"sideways","lag":0,"link":0,"t":1}|};
      {|{"op":"query","q":"worst","budget":"lots"}|};
      {|{"op":"query","q":"now","down":[[0]]}|};
      {|{"op":"event","ev":"demand","lag":0,"link":0,"t":1}|};
      {|{"op":"demand","src":1,"dst":3,"lo":"x","hi":2,"t":1}|};
      {|{"op":"demand","src":1,"dst":3,"lo":1,"t":1}|};
      {|{"op":"subscribe","tolerance":-0.5}|};
      {|{"op":"subscribe","tolerance":"inf"}|};
      "not json at all";
    ]

(* --- state ingestion ---------------------------------------------------- *)

let test_state_apply () =
  let s =
    Service.State.create
      ~envelope:
        (Traffic.Envelope.around ~slack:0.5
           (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ]))
      fig1
  in
  let ok e =
    match Service.State.apply s e with
    | Ok structural -> structural
    | Error m -> Alcotest.fail m
  in
  let rejected e =
    let before = Service.State.events_applied s in
    (match Service.State.apply s e with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "event accepted");
    check_int "rejected event not applied" before (Service.State.events_applied s)
  in
  Alcotest.(check bool) "down not structural" false
    (ok (Ev.Link_down { lag = 0; link = 0; at = 10. }));
  Alcotest.(check (list (pair int int))) "live down" [ (0, 0) ]
    (Service.State.live_down s);
  rejected (Ev.Link_down { lag = 0; link = 0; at = 11. }) (* already down *);
  rejected (Ev.Link_up { lag = 0; link = 0; at = 5. }) (* time regression *);
  rejected (Ev.Link_up { lag = 9; link = 0; at = 12. }) (* bad lag *);
  rejected (Ev.Link_up { lag = 0; link = 7; at = 12. }) (* bad link *);
  rejected (Ev.Capacity { lag = 0; link = 0; capacity = -1.; at = 12. });
  Alcotest.(check bool) "up not structural" false
    (ok (Ev.Link_up { lag = 0; link = 0; at = 12. }));
  check_int "no structural change yet" 0 (Service.State.structure_generation s);
  Alcotest.(check bool) "capacity is structural" true
    (ok (Ev.Capacity { lag = 0; link = 0; capacity = 16.; at = 13. }));
  check_int "structure generation bumped" 1 (Service.State.structure_generation s);
  (* the current topology reflects both the new capacity and the
     renewal estimate for the link that produced telemetry *)
  let t = Service.State.current_topology s in
  let lag0 = Wan.Topology.lag t 0 in
  Alcotest.(check (float 1e-9)) "capacity applied" 16.
    lag0.Wan.Lag.links.(0).Wan.Lag.link_capacity;
  Alcotest.(check (float 1e-9)) "estimate = downtime fraction" (2. /. 13.)
    lag0.Wan.Lag.links.(0).Wan.Lag.fail_prob;
  (* links without telemetry keep the configured probability *)
  Alcotest.(check (float 1e-12)) "no telemetry -> configured" 0.01
    (Wan.Topology.lag t 1).Wan.Lag.links.(0).Wan.Lag.fail_prob;
  (* demand re-forecasts are structural and land in the envelope *)
  rejected (Ev.Demand { src = 0; dst = 1; lo = 1.; hi = 2.; at = 14. })
  (* unknown pair *);
  rejected (Ev.Demand { src = 1; dst = 3; lo = 3.; hi = 2.; at = 14. })
  (* lo > hi *);
  rejected (Ev.Demand { src = 1; dst = 3; lo = -1.; hi = 2.; at = 14. });
  rejected (Ev.Demand { src = 1; dst = 3; lo = 0.; hi = Float.infinity; at = 14. });
  Alcotest.(check bool) "demand is structural" true
    (ok (Ev.Demand { src = 1; dst = 3; lo = 4.; hi = 9.; at = 14. }));
  check_int "structure generation bumped again" 2
    (Service.State.structure_generation s);
  let env = Service.State.envelope s in
  Alcotest.(check (float 0.)) "lo updated" 4.
    (Traffic.Envelope.lo_volume env ~src:1 ~dst:3);
  Alcotest.(check (float 0.)) "hi updated" 9.
    (Traffic.Envelope.hi_volume env ~src:1 ~dst:3);
  Alcotest.(check (float 0.)) "other pair untouched" 15.
    (Traffic.Envelope.hi_volume env ~src:2 ~dst:3)

let test_policy_decide () =
  let d = Service.Policy.decide in
  Alcotest.(check bool) "structural wins" true
    (d ~structural_changed:true ~drift:0. ~drift_tol:1. ~down_in_support:false
    = Service.Policy.Cold);
  Alcotest.(check bool) "drift above tol" true
    (d ~structural_changed:false ~drift:0.2 ~drift_tol:0.1 ~down_in_support:false
    = Service.Policy.Warm);
  Alcotest.(check bool) "down in support" true
    (d ~structural_changed:false ~drift:0. ~drift_tol:0.1 ~down_in_support:true
    = Service.Policy.Warm);
  Alcotest.(check bool) "quiet -> cached" true
    (d ~structural_changed:false ~drift:0.05 ~drift_tol:0.1 ~down_in_support:false
    = Service.Policy.Cached);
  Alcotest.(check (float 0.)) "drift is max abs diff" 0.25
    (Service.Policy.drift [| 0.1; 0.5 |] [| 0.2; 0.25 |]);
  Alcotest.(check bool) "length mismatch -> infinite drift" true
    (Service.Policy.drift [| 0.1 |] [| 0.1; 0.2 |] = Float.infinity)

(* --- replay determinism ------------------------------------------------- *)

(* one mixed script: telemetry with worst/now/status queries woven in *)
let script ~seed =
  let events = telemetry ~seed ~horizon:200. in
  let n = ref 0 in
  List.concat_map
    (fun e ->
      incr n;
      [ Ev.Event e ]
      @ (if !n mod 5 = 2 then [ Ev.Query (Ev.Worst { budget = None; max_nodes = None }) ] else [])
      @ (if !n mod 3 = 0 then [ Ev.Query (Ev.Now { down = None }) ] else [])
      @
      if !n mod 7 = 0 then
        [ Ev.Query (Ev.Now { down = Some [ (2, 0) ] }) ]
      else [])
    events
  @ [
      Ev.Query (Ev.Worst { budget = None; max_nodes = None });
      Ev.Query (Ev.Worst { budget = None; max_nodes = None });
      Ev.Query Ev.Status;
    ]

let replay ~domains reqs =
  let core = make_core ~domains () in
  let out = List.map (fun r -> render (Service.Core.handle core r)) reqs in
  (out, Service.Core.tally core)

let test_replay_deterministic_across_domains () =
  let reqs = script ~seed:3 in
  let out1, tally1 = replay ~domains:1 reqs in
  let out4, tally4 = replay ~domains:4 reqs in
  check_int "same length" (List.length out1) (List.length out4);
  List.iteri
    (fun i (a, b) -> check_str (Printf.sprintf "answer %d bit-identical" i) a b)
    (List.combine out1 out4);
  let c1, w1, k1 = tally1 and c4, w4, k4 = tally4 in
  check_int "cached tally" c1 c4;
  check_int "warm tally" w1 w4;
  check_int "cold tally" k1 k4;
  (* the script must actually exercise the interesting paths *)
  Alcotest.(check bool) "some cached serves" true (c1 > 0);
  Alcotest.(check bool) "some warm re-solves" true (w1 > 0);
  Alcotest.(check bool) "exactly one cold solve" true (k1 >= 1);
  (* every query answer is certified *)
  List.iter2
    (fun req out ->
      match req with
      | Ev.Query (Ev.Worst _) | Ev.Query (Ev.Now _) ->
        let j = Result.get_ok (J.of_string out) in
        Alcotest.(check bool) "ok" true (is_ok j);
        check_str "cert" "ok" (get_str "cert" j)
      | _ -> ())
    reqs out1

let test_now_many_matches_sequential () =
  let downs =
    [|
      None;
      Some [ (0, 0) ];
      Some [ (1, 0); (2, 0) ];
      Some [ (0, 0); (0, 0) ] (* duplicate: must come back as an error *);
      Some [ (4, 0) ];
    |]
  in
  let batch ~domains =
    let core = make_core ~domains () in
    ignore
      (Service.Core.handle core
         (Ev.Event (Ev.Link_down { lag = 3; link = 0; at = 50. })));
    Array.map render (Service.Core.now_many core downs)
  in
  let b1 = batch ~domains:1 and b4 = batch ~domains:4 in
  Alcotest.(check (array string)) "batch identical across domains" b1 b4;
  (* and identical to serving the same queries one at a time *)
  let core = make_core ~domains:1 () in
  ignore
    (Service.Core.handle core
       (Ev.Event (Ev.Link_down { lag = 3; link = 0; at = 50. })));
  Array.iteri
    (fun i d ->
      check_str
        (Printf.sprintf "batch %d = sequential" i)
        (render (Service.Core.handle core (Ev.Query (Ev.Now { down = d }))))
        b1.(i))
    downs;
  let dup = Result.get_ok (J.of_string b1.(3)) in
  Alcotest.(check bool) "duplicate down rejected" false (is_ok dup)

(* --- invalidation soundness --------------------------------------------- *)

(* whatever the policy decides (cached / warm), the served worst-case
   answer must agree with a cold full re-solve of the same state on
   every solve-relevant field *)
let stable_fields =
  [ "status"; "degradation"; "normalized"; "bound"; "scenario"; "num_failed_links"; "cert" ]

let project j =
  J.to_string (J.Obj (List.map (fun k -> (k, J.member k j)) stable_fields))

let test_invalidation_sound () =
  let worst = Ev.Query (Ev.Worst { budget = None; max_nodes = None }) in
  let total_cached = ref 0 in
  List.iter
    (fun seed ->
      let events = List.map (fun e -> Ev.Event e) (telemetry ~seed ~horizon:150.) in
      let n = List.length events in
      Alcotest.(check bool) "corpus stream non-trivial" true (n >= 4);
      (* checkpoints: start, middle twice in a row (the second query sees
         zero drift and must be served cached), end *)
      let checkpoints = [ 0; n / 2; n / 2; n ] in
      let live = make_core () in
      let applied = ref 0 in
      List.iter
        (fun stop ->
          List.iteri
            (fun i ev ->
              if i >= !applied && i < stop then begin
                Alcotest.(check bool) "event applied" true
                  (is_ok (Service.Core.handle live ev))
              end)
            events;
          applied := max !applied stop;
          let served = Service.Core.handle live worst in
          (* reference: a fresh core replays the same prefix and solves cold *)
          let fresh = make_core () in
          List.iteri
            (fun i ev -> if i < stop then ignore (Service.Core.handle fresh ev))
            events;
          let cold = Service.Core.handle fresh worst in
          Alcotest.(check bool) "served ok" true (is_ok served);
          check_str
            (Printf.sprintf "seed %d prefix %d: %s serve agrees with cold re-solve"
               seed stop (get_str "provenance" served))
            (project cold) (project served))
        checkpoints;
      let cached, _, _ = Service.Core.tally live in
      total_cached := !total_cached + cached)
    [ 5; 11 ];
  Alcotest.(check bool) "corpus exercised the cached path" true (!total_cached > 0)

let test_down_in_support_invalidates () =
  let core = make_core () in
  let worst = Ev.Query (Ev.Worst { budget = None; max_nodes = None }) in
  let first = Service.Core.handle core worst in
  check_str "first solve is cold" "cold" (get_str "provenance" first);
  (* the worst-case support is non-empty under max_failures = 1 *)
  let support =
    match J.member "scenario" first with
    | J.List (J.List [ J.Int e; J.Int i ] :: _) -> (e, i)
    | j -> Alcotest.fail (Printf.sprintf "unexpected scenario %s" (J.to_string j))
  in
  (* a link in the cached support going down must force a re-solve even
     though the probability drift alone would be tolerated *)
  let lag, link = support in
  Alcotest.(check bool) "down event applied" true
    (is_ok (Service.Core.handle core (Ev.Event (Ev.Link_down { lag; link; at = 1e-3 }))));
  let second = Service.Core.handle core worst in
  check_str "support hit forces warm re-solve" "warm" (get_str "provenance" second)

(* --- budget exhaustion -------------------------------------------------- *)

let test_budget_exhaustion_honest () =
  let core = make_core () in
  let starved =
    Service.Core.handle core
      (Ev.Query (Ev.Worst { budget = Some 2; max_nodes = Some 1 }))
  in
  Alcotest.(check bool) "still a response" true (is_ok starved);
  let status = get_str "status" starved in
  Alcotest.(check bool)
    (Printf.sprintf "no optimality claim under starvation (got %s)" status)
    true
    (status = "feasible" || status = "unknown");
  Alcotest.(check bool) "never a false cert failure" true
    (get_str "cert" starved <> "fail");
  (* the starved answer is cached like any other; a full-budget query
     must not reuse it blindly -- same state, zero drift, yet the next
     full query upgrades to optimal *)
  let full = Service.Core.handle core (Ev.Query (Ev.Worst { budget = None; max_nodes = None })) in
  check_str "full-budget query re-solves to optimal" "optimal" (get_str "status" full)

(* --- socket round trip -------------------------------------------------- *)

let test_socket_roundtrip () =
  (* Unix.fork is unavailable once earlier suites have spawned domains,
     so the server runs on a thread; select/read/write release the
     runtime lock, and a shutdown request makes [run] return. *)
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "raha-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let server = Thread.create (fun () -> Service.Server.run ~socket (make_core ())) () in
  Fun.protect
    ~finally:(fun () -> try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      let ask line =
        match Service.Server.request ~socket line with
        | Ok resp -> Result.get_ok (J.of_string resp)
        | Error m -> Alcotest.fail m
      in
      let status = ask {|{"op":"query","q":"status"}|} in
      Alcotest.(check bool) "status ok" true (is_ok status);
      check_str "status kind" "status" (get_str "kind" status);
      Alcotest.(check bool) "event ok" true
        (is_ok (ask {|{"op":"event","ev":"down","lag":3,"link":0,"t":7.5}|}));
      let now = ask {|{"op":"query","q":"now"}|} in
      check_str "now kind" "now" (get_str "kind" now);
      check_str "now certified" "ok" (get_str "cert" now);
      let bad = ask {|{"op":"query","q":"now","down":[[0,0],[0,0]]}|} in
      Alcotest.(check bool) "protocol error reported in-band" false (is_ok bad);
      let bye = ask {|{"op":"shutdown"}|} in
      Alcotest.(check bool) "bye" true (J.to_bool (J.member "bye" bye) = Some true);
      Thread.join server;
      Alcotest.(check bool) "socket unlinked on shutdown" false
        (Sys.file_exists socket))

(* --- json edge cases ---------------------------------------------------- *)

let test_json_edge_cases () =
  (* control characters escape to \uXXXX (or the short forms) and decode
     back to the same bytes *)
  let ctl = String.init 0x20 Char.chr in
  let s = J.to_string (J.String ctl) in
  Alcotest.(check bool) "no raw control bytes on the wire" false
    (String.exists (fun c -> Char.code c < 0x20) s);
  (match J.of_string s with
  | Ok (J.String s') -> check_str "control chars round trip" ctl s'
  | Ok j -> Alcotest.fail (J.to_string j)
  | Error m -> Alcotest.fail m);
  (* \uXXXX decoding: ASCII, 2-byte and 3-byte UTF-8 ranges *)
  let cases =
    [
      ({|"\u0041"|}, "A");
      ({|"\u00e9"|}, "\xc3\xa9");
      ({|"\u20ac"|}, "\xe2\x82\xac");
      ({|"\u001f"|}, "\x1f");
    ]
  in
  List.iter
    (fun (wire, expect) ->
      match J.of_string wire with
      | Ok (J.String s) -> check_str wire expect s
      | Ok j -> Alcotest.fail (J.to_string j)
      | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" wire m))
    cases;
  (match J.of_string {|"\uZZZZ"|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad \\u escape accepted");
  (* deeply nested objects and lists parse and round trip *)
  let depth = 500 in
  let rec deep n = if n = 0 then J.Int 7 else J.Obj [ ("k", J.List [ deep (n - 1) ]) ] in
  let j = deep depth in
  let s = J.to_string j in
  (match J.of_string s with
  | Ok j' -> check_str "deep nesting round trip" s (J.to_string j')
  | Error m -> Alcotest.fail m);
  (* non-finite floats: the wire encoding is the strings "nan" / "inf" /
     "-inf" (JSON has no literal for them); to_float maps them back *)
  check_str "nan encoding" {|"nan"|} (J.to_string (J.float Float.nan));
  check_str "inf encoding" {|"inf"|} (J.to_string (J.float Float.infinity));
  check_str "-inf encoding" {|"-inf"|} (J.to_string (J.float Float.neg_infinity));
  Alcotest.(check bool) "nan round trips" true
    (match J.of_string {|"nan"|} with
    | Ok j -> ( match J.to_float j with Some f -> Float.is_nan f | None -> false)
    | Error _ -> false);
  Alcotest.(check bool) "inf round trips" true
    (J.of_string {|"inf"|} |> Result.map J.to_float = Ok (Some Float.infinity));
  (* %.17g keeps the largest and smallest finite magnitudes bit-exact *)
  List.iter
    (fun v ->
      match J.of_string (J.to_string (J.float v)) with
      | Ok j ->
        Alcotest.(check bool)
          (Printf.sprintf "%h bit-exact" v)
          true
          (J.to_float j = Some v)
      | Error m -> Alcotest.fail m)
    [ Float.max_float; -.Float.max_float; Float.min_float; 4e-324; 0.; -0. ]

(* --- journal ------------------------------------------------------------ *)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "raha-test-%d-%s" (Unix.getpid ()) name)

let sample_events =
  [
    Ev.Link_down { lag = 0; link = 0; at = 1.5 };
    Ev.Link_up { lag = 0; link = 0; at = 2.25 };
    Ev.Capacity { lag = 1; link = 0; capacity = 17.5; at = 3. };
    Ev.Demand { src = 1; dst = 3; lo = 4.; hi = 9.; at = 4. };
    Ev.Link_down { lag = 2; link = 0; at = 5. };
  ]

let write_journal path events =
  (try Sys.remove path with Sys_error _ -> ());
  let j, r = Service.Journal.open_ path in
  Alcotest.(check bool) "fresh journal is clean" true
    (r.Service.Journal.damage = None && r.Service.Journal.events = []);
  List.iter
    (fun e ->
      let structural =
        match e with Ev.Capacity _ | Ev.Demand _ -> true | _ -> false
      in
      Service.Journal.append j ~structural e)
    events;
  Service.Journal.close j

let test_journal_roundtrip () =
  let path = tmp_path "journal-roundtrip.log" in
  write_journal path sample_events;
  let r = Service.Journal.scan path in
  Alcotest.(check bool) "clean" true (r.Service.Journal.damage = None);
  check_int "all events recovered" (List.length sample_events)
    (List.length r.Service.Journal.events);
  List.iter2
    (fun a b ->
      check_str "event bit-identical"
        (J.to_string (Ev.json_of_event a))
        (J.to_string (Ev.json_of_event b)))
    sample_events r.Service.Journal.events;
  Sys.remove path

let test_journal_corrupt_tail () =
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let write_file path s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let path = tmp_path "journal-corrupt.log" in
  write_journal path sample_events;
  let clean = read_file path in
  (* truncated tail: cut the last record in half *)
  write_file path (String.sub clean 0 (String.length clean - 5));
  let r = Service.Journal.scan path in
  Alcotest.(check bool) "truncation detected" true
    (r.Service.Journal.damage <> None);
  check_int "all intact records recovered"
    (List.length sample_events - 1)
    (List.length r.Service.Journal.events);
  (* corrupt tail: flip a payload byte of the last record — the CRC
     catches it *)
  let flipped = Bytes.of_string clean in
  Bytes.set flipped
    (Bytes.length flipped - 3)
    (Char.chr (Char.code (Bytes.get flipped (Bytes.length flipped - 3)) lxor 0xFF));
  write_file path (Bytes.to_string flipped);
  let r = Service.Journal.scan path in
  Alcotest.(check bool) "corruption detected" true
    (r.Service.Journal.damage <> None);
  check_int "intact prefix recovered"
    (List.length sample_events - 1)
    (List.length r.Service.Journal.events);
  (* open_ truncates the damaged tail; appends extend a clean log *)
  let j, r = Service.Journal.open_ path in
  Alcotest.(check bool) "damage reported once" true
    (r.Service.Journal.damage <> None);
  Service.Journal.append j ~structural:true
    (Ev.Capacity { lag = 0; link = 0; capacity = 11.; at = 9. });
  Service.Journal.close j;
  let r = Service.Journal.scan path in
  Alcotest.(check bool) "log clean after truncate + append" true
    (r.Service.Journal.damage = None);
  check_int "prefix + new record" (List.length sample_events)
    (List.length r.Service.Journal.events);
  (* garbage from byte 0 recovers zero events, still no exception *)
  write_file path "not a journal at all";
  let r = Service.Journal.scan path in
  Alcotest.(check bool) "garbage detected" true (r.Service.Journal.damage <> None);
  check_int "no events from garbage" 0 (List.length r.Service.Journal.events);
  check_int "valid prefix empty" 0 r.Service.Journal.valid_bytes;
  Sys.remove path

(* --- crash recovery ----------------------------------------------------- *)

(* A journaled core ingests a stream and "crashes" (we simply stop using
   it); a second core recovers from the journal alone. Its answers must
   be bit-identical (stripped) to a third core that ingested every event
   directly — estimators, topology, demand envelope and invalidation
   provenance all survive the crash. Run at domains 1 and 4. *)
let test_crash_recovery_replay () =
  List.iter
    (fun domains ->
      let path = tmp_path (Printf.sprintf "journal-recovery-%d.log" domains) in
      (try Sys.remove path with Sys_error _ -> ());
      let events =
        telemetry ~seed:7 ~horizon:120.
        @ [
            Ev.Capacity { lag = 0; link = 0; capacity = 9.; at = 130. };
            Ev.Demand { src = 1; dst = 3; lo = 6.; hi = 16.; at = 131. };
          ]
      in
      (* arm 1: journaled daemon, SIGKILLed after the stream (no clean
         shutdown: the journal fd is simply abandoned) *)
      let crashed = make_core ~domains () in
      let j, _ = Service.Journal.open_ path in
      Service.Core.attach_journal crashed j;
      List.iter
        (fun e ->
          Alcotest.(check bool) "event accepted" true
            (is_ok (Service.Core.handle crashed (Ev.Event e))))
        events;
      (* arm 2: restart — recover from the journal through the normal
         ingest path *)
      let recovered = make_core ~domains () in
      let r = Service.Journal.scan path in
      Alcotest.(check bool) "journal clean" true (r.Service.Journal.damage = None);
      let accepted, rejected = Service.Core.replay recovered r.Service.Journal.events in
      check_int "all events replayed" (List.length events) accepted;
      check_int "none rejected" 0 rejected;
      (* arm 3: uninterrupted run over the same events *)
      let direct = make_core ~domains () in
      List.iter (fun e -> ignore (Service.Core.handle direct (Ev.Event e))) events;
      (* both cores start cold (the cache died with the crash), so the
         full answer sequences must match as strings *)
      let queries =
        [
          Ev.Query Ev.Status;
          Ev.Query (Ev.Worst { budget = None; max_nodes = None });
          Ev.Query (Ev.Now { down = None });
          Ev.Query (Ev.Now { down = Some [ (2, 0) ] });
          Ev.Query Ev.Status;
        ]
      in
      List.iteri
        (fun i q ->
          check_str
            (Printf.sprintf "domains %d: answer %d identical after recovery"
               domains i)
            (render (Service.Core.handle direct q))
            (render (Service.Core.handle recovered q)))
        queries;
      Sys.remove path)
    [ 1; 4 ]

(* --- demand events drive invalidation ----------------------------------- *)

let test_demand_event_invalidates () =
  let core = make_core () in
  let worst = Ev.Query (Ev.Worst { budget = None; max_nodes = None }) in
  let first = Service.Core.handle core worst in
  check_str "first solve is cold" "cold" (get_str "provenance" first);
  let second = Service.Core.handle core worst in
  check_str "re-serve is cached" "cached" (get_str "provenance" second);
  (* a demand re-forecast is structural: engine, cuts and cache die *)
  let resp =
    Service.Core.handle core
      (Ev.Event (Ev.Demand { src = 1; dst = 3; lo = 2.; hi = 4.; at = 1. }))
  in
  Alcotest.(check bool) "demand accepted" true (is_ok resp);
  Alcotest.(check bool) "demand is structural" true
    (J.to_bool (J.member "structural" resp) = Some true);
  let third = Service.Core.handle core worst in
  check_str "demand event forces cold re-solve" "cold" (get_str "provenance" third);
  (* and the answer is genuinely recomputed over the new envelope: a
     fresh core configured identically agrees *)
  let fresh = make_core () in
  ignore
    (Service.Core.handle fresh
       (Ev.Event (Ev.Demand { src = 1; dst = 3; lo = 2.; hi = 4.; at = 1. })));
  check_str "recomputed over the new envelope"
    (render (Service.Core.handle fresh worst))
    (render third)

(* --- alerting unit tests ------------------------------------------------ *)

module Al = Service.Alerting

let stage ?(usable = true) v =
  { Al.fields = [ ("v", J.float v) ]; exceeds = (fun tol -> v > tol); usable }

let drain_sub al ~id =
  let rec go acc =
    match Al.next_chunk al ~id with
    | None -> List.rev acc
    | Some (line, off) ->
      Al.advance al ~id (String.length line - off);
      go (line :: acc)
  in
  go []

let push_of line =
  let j = Result.get_ok (J.of_string (String.trim line)) in
  (get_str "push" j, get_str "stage" j)

let test_alerting_crossings () =
  let al = Al.create ~tolerance:0.5 () in
  Al.subscribe al ~id:1 ~tolerance:None;
  Al.subscribe al ~id:2 ~tolerance:(Some 2.0) (* less sensitive *);
  let deep_calls = ref 0 in
  let deep v () =
    incr deep_calls;
    stage v
  in
  let no_deep () = Alcotest.fail "deep stage must not run" in
  (* everyone's fast stage exceeds: both alert on fast, deep never runs *)
  Al.evaluate al ~fast:(stage 3.0) ~deep:no_deep ~flush:(fun () -> ());
  Alcotest.(check (list (pair string string))) "sub 1 fast alert"
    [ ("alert", "fast") ]
    (List.map push_of (drain_sub al ~id:1));
  Alcotest.(check (list (pair string string))) "sub 2 fast alert"
    [ ("alert", "fast") ]
    (List.map push_of (drain_sub al ~id:2));
  (* same result again: no re-notification while alerting *)
  Al.evaluate al ~fast:(stage 3.0) ~deep:no_deep ~flush:(fun () -> ());
  check_int "no repeat for sub 1" 0 (List.length (drain_sub al ~id:1));
  (* fast drops below sub 2's tolerance but deep still exceeds it: sub 2
     stays alerting silently; sub 1 (alerting, fast 1.0 > 0.5) too *)
  Al.evaluate al ~fast:(stage 1.0) ~deep:(deep 2.5) ~flush:(fun () -> ());
  check_int "deep ran once" 1 !deep_calls;
  check_int "sub 1 silent" 0 (List.length (drain_sub al ~id:1));
  check_int "sub 2 silent" 0 (List.length (drain_sub al ~id:2));
  (* both stages quiet: both clear *)
  Al.evaluate al ~fast:(stage 0.1) ~deep:(deep 0.2) ~flush:(fun () -> ());
  Alcotest.(check (list (pair string string))) "sub 1 clears"
    [ ("clear", "deep") ]
    (List.map push_of (drain_sub al ~id:1));
  Alcotest.(check (list (pair string string))) "sub 2 clears"
    [ ("clear", "deep") ]
    (List.map push_of (drain_sub al ~id:2));
  (* quiet -> deep-stage alert for the sensitive subscriber only *)
  Al.evaluate al ~fast:(stage 0.3) ~deep:(deep 1.0) ~flush:(fun () -> ());
  Alcotest.(check (list (pair string string))) "sub 1 deep alert"
    [ ("alert", "deep") ]
    (List.map push_of (drain_sub al ~id:1));
  check_int "sub 2 stays quiet" 0 (List.length (drain_sub al ~id:2));
  (* an unusable stage freezes state: no spurious clear on solver failure *)
  Al.evaluate al ~fast:(stage ~usable:false 0.) ~deep:no_deep
    ~flush:(fun () -> ());
  check_int "unusable fast: silent" 0 (List.length (drain_sub al ~id:1));
  let s = Al.stats al in
  check_int "alerts" 3 s.Al.alerts;
  check_int "clears" 2 s.Al.clears;
  check_int "nothing dropped" 0 s.Al.dropped

let test_alerting_backpressure () =
  let al = Al.create ~queue_cap:3 ~tolerance:0.5 () in
  Al.subscribe al ~id:1 ~tolerance:None;
  for i = 1 to 5 do
    Al.enqueue al ~id:1 (Printf.sprintf "line %d" i)
  done;
  let s = Al.stats al in
  check_int "oldest two dropped" 2 s.Al.dropped;
  Alcotest.(check (list string)) "newest three kept"
    [ "line 3\n"; "line 4\n"; "line 5\n" ]
    (drain_sub al ~id:1);
  (* partial write progress: the in-flight line is never dropped *)
  Al.enqueue al ~id:1 "abcdef";
  (match Al.next_chunk al ~id:1 with
  | Some (line, 0) -> check_str "in flight" "abcdef\n" line
  | _ -> Alcotest.fail "expected a chunk");
  Al.advance al ~id:1 3;
  for i = 1 to 4 do
    Al.enqueue al ~id:1 (Printf.sprintf "overflow %d" i)
  done;
  (match Al.next_chunk al ~id:1 with
  | Some (line, off) ->
    check_str "still the in-flight line" "abcdef\n" line;
    check_int "offset preserved" 3 off
  | None -> Alcotest.fail "in-flight line vanished");
  Al.unsubscribe al ~id:1;
  check_int "unsubscribed" 0 (Al.subscribers al)

(* --- alerting end to end ------------------------------------------------ *)

(* Drive the real two-stage pipeline through Core: a sensitive
   subscriber (tolerance 0) must see an alert once a structural event
   leaves the worst case degraded, and a clear once demand re-forecasts
   shrink the envelope until no probable single failure loses traffic.
   An insensitive subscriber (huge tolerance) sees nothing. *)
let test_alert_pipeline_end_to_end () =
  let core = make_core () in
  let al = Service.Core.alerting core in
  Al.subscribe al ~id:1 ~tolerance:(Some 0.);
  Al.subscribe al ~id:2 ~tolerance:(Some 1e6);
  (* structural trigger: shrink a capacity — the fig1 worst case loses
     traffic under single failures at this demand, so normalized > 0 *)
  let resp =
    Service.Core.handle core
      (Ev.Event (Ev.Capacity { lag = 0; link = 0; capacity = 10.; at = 1. }))
  in
  Alcotest.(check bool) "capacity accepted" true (is_ok resp);
  Service.Core.evaluate_alert core;
  let lines = drain_sub al ~id:1 in
  check_int "one alert notification" 1 (List.length lines);
  let j = Result.get_ok (J.of_string (String.trim (List.hd lines))) in
  check_str "push kind" "alert" (get_str "push" j);
  Alcotest.(check bool) "normalized present and positive" true
    (match J.to_float (J.member "normalized" j) with
    | Some v -> v > 0.
    | None -> false);
  (* a deep-stage notification carries the Report summary row *)
  (if get_str "stage" j = "deep" then
     match J.to_str (J.member "report" j) with
     | Some row ->
       Alcotest.(check bool) "summary row has fields" true
         (String.contains row ',')
     | None -> Alcotest.fail "deep notification without report");
  check_int "insensitive subscriber silent" 0 (List.length (drain_sub al ~id:2));
  (* recovery: shrink the demand envelope until nothing is lost *)
  List.iter
    (fun (src, dst) ->
      Alcotest.(check bool) "demand accepted" true
        (is_ok
           (Service.Core.handle core
              (Ev.Event (Ev.Demand { src; dst; lo = 0.01; hi = 0.02; at = 2. })))))
    [ (1, 3); (2, 3) ];
  Service.Core.evaluate_alert core;
  let lines = drain_sub al ~id:1 in
  check_int "one clear notification" 1 (List.length lines);
  let j = Result.get_ok (J.of_string (String.trim (List.hd lines))) in
  check_str "push kind" "clear" (get_str "push" j);
  check_str "clear comes from the deep stage" "deep" (get_str "stage" j);
  Alcotest.(check bool) "clear carries the deep report" true
    (J.to_str (J.member "report" j) <> None);
  check_int "insensitive subscriber still silent" 0
    (List.length (drain_sub al ~id:2));
  let s = Al.stats al in
  check_int "dropped=0" 0 s.Al.dropped;
  Alcotest.(check bool) "stats tally" true (s.Al.alerts >= 1 && s.Al.clears >= 1);
  (* alert evaluations never touch the query tallies *)
  let c, w, k = Service.Core.tally core in
  check_int "no cached queries billed" 0 c;
  check_int "no warm queries billed" 0 w;
  check_int "no cold queries billed" 0 k

(* --- framing regressions ------------------------------------------------ *)

let with_server f =
  let socket = tmp_path "framing.sock" in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let server =
    Thread.create (fun () -> Service.Server.run ~socket (make_core ())) ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Service.Server.request ~socket ~retries:0 {|{"op":"shutdown"}|})
       with _ -> ());
      Thread.join server;
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () -> f socket)

let connect_raw socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go attempt =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error _ when attempt < 100 ->
      Unix.sleepf 0.05;
      go (attempt + 1)
  in
  go 0

let write_all fd s =
  let data = Bytes.of_string s in
  let off = ref 0 in
  while !off < Bytes.length data do
    off := !off + Unix.write fd data !off (Bytes.length data - !off)
  done

(* One leftover buffer per raw connection: two responses can land in a
   single read, and the bytes after the first newline belong to the
   next [read_response] call. *)
let read_leftover : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 4

let read_response fd =
  let buf =
    match Hashtbl.find_opt read_leftover fd with
    | Some b -> b
    | None ->
      let b = Buffer.create 256 in
      Hashtbl.replace read_leftover fd b;
      b
  in
  let one = Bytes.create 4096 in
  let take () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear buf;
      Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
    | None -> None
  in
  let rec go () =
    match take () with
    | Some line -> line
    | None -> (
      match Unix.read fd one 0 (Bytes.length one) with
      | 0 -> Alcotest.fail "connection closed before a response"
      | n ->
        Buffer.add_subbytes buf one 0 n;
        go ())
  in
  go ()

let test_framing_split_line () =
  with_server (fun socket ->
      let fd = connect_raw socket in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* one request split across three writes with pauses: each
             lands in its own select wakeup, the partial tail must stay
             buffered until the newline arrives *)
          let line = {|{"op":"query","q":"status"}|} in
          write_all fd (String.sub line 0 9);
          Unix.sleepf 0.05;
          write_all fd (String.sub line 9 11);
          Unix.sleepf 0.05;
          write_all fd (String.sub line 20 (String.length line - 20) ^ "\n");
          let j = Result.get_ok (J.of_string (read_response fd)) in
          Alcotest.(check bool) "split request answered" true (is_ok j);
          check_str "status kind" "status" (get_str "kind" j);
          (* two requests in one write: both answered *)
          write_all fd (line ^ "\n" ^ line ^ "\n");
          Alcotest.(check bool) "first of pair" true
            (is_ok (Result.get_ok (J.of_string (read_response fd))));
          Alcotest.(check bool) "second of pair" true
            (is_ok (Result.get_ok (J.of_string (read_response fd))))))

let test_framing_oversized_line () =
  with_server (fun socket ->
      let fd = connect_raw socket in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* a complete line just over the 1 MiB cap: rejected in-band,
             connection survives *)
          let big =
            Printf.sprintf {|{"op":"event","ev":"down","pad":"%s"}|}
              (String.make ((1 lsl 20) + 100) 'x')
          in
          write_all fd (big ^ "\n");
          let j = Result.get_ok (J.of_string (read_response fd)) in
          Alcotest.(check bool) "oversized line rejected" false (is_ok j);
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "error names the cap" true
            (match J.to_str (J.member "error" j) with
            | Some m -> contains m "1 MiB"
            | None -> false);
          (* the same connection still answers normal requests *)
          write_all fd "{\"op\":\"query\",\"q\":\"status\"}\n";
          Alcotest.(check bool) "connection survives" true
            (is_ok (Result.get_ok (J.of_string (read_response fd))))))

let suite =
  [
    ("json round trip", `Quick, test_json_roundtrip);
    ("json edge cases", `Quick, test_json_edge_cases);
    ("protocol round trip", `Quick, test_protocol_roundtrip);
    ("state ingestion", `Quick, test_state_apply);
    ("invalidation policy table", `Quick, test_policy_decide);
    ("replay deterministic across domains", `Quick, test_replay_deterministic_across_domains);
    ("now batch = sequential", `Quick, test_now_many_matches_sequential);
    ("invalidation sound on corpus", `Quick, test_invalidation_sound);
    ("down-in-support invalidates", `Quick, test_down_in_support_invalidates);
    ("budget exhaustion honest", `Quick, test_budget_exhaustion_honest);
    ("socket round trip", `Quick, test_socket_roundtrip);
    ("journal round trip", `Quick, test_journal_roundtrip);
    ("journal corrupt tail", `Quick, test_journal_corrupt_tail);
    ("crash recovery replay", `Quick, test_crash_recovery_replay);
    ("demand event invalidates", `Quick, test_demand_event_invalidates);
    ("alerting crossings", `Quick, test_alerting_crossings);
    ("alerting backpressure", `Quick, test_alerting_backpressure);
    ("alert pipeline end to end", `Quick, test_alert_pipeline_end_to_end);
    ("framing split line", `Quick, test_framing_split_line);
    ("framing oversized line", `Quick, test_framing_oversized_line);
  ]
