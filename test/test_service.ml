(* Always-on degradation service: protocol, state ingestion,
   invalidation policy, replay determinism across domain counts,
   budget-exhaustion honesty, and a fork-based socket round trip. *)

module J = Service.Json
module Ev = Service.Event

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let fig1 = Wan.Generators.fig1 ()

let make_core ?(domains = 1) ?(drift_tol = 0.5) () =
  let paths =
    Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ]
  in
  let envelope =
    Traffic.Envelope.around ~slack:0.5
      (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])
  in
  let spec =
    { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 1 }
  in
  let options = { Raha.Analysis.default_options with spec; domains } in
  Service.Core.create
    { Service.Core.paths; envelope; options; drift_tol }
    fig1

let render j = J.to_string (Service.Core.strip_volatile j)

let get_str key j =
  match J.to_str (J.member key j) with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "missing string %S in %s" key (J.to_string j))

let is_ok j = J.to_bool (J.member "ok" j) = Some true

(* a deterministic interleaved telemetry stream: per-lag exponential
   traces merged by time (fig1 has 5 single-link lags) *)
let telemetry ~seed ~horizon =
  let per_link =
    List.concat
      (List.init (Wan.Topology.num_lags fig1) (fun e ->
           let events =
             Failure.Trace.exponential ~seed:((seed * 10) + e) ~mean_uptime:40.
               ~mean_downtime:4. ~horizon ()
           in
           List.concat_map
             (fun (ev : Failure.Renewal.event) ->
               [
                 ( ev.Failure.Renewal.down_at,
                   Ev.Link_down { lag = e; link = 0; at = ev.Failure.Renewal.down_at } );
                 ( ev.Failure.Renewal.up_at,
                   Ev.Link_up { lag = e; link = 0; at = ev.Failure.Renewal.up_at } );
               ])
             events))
  in
  List.map snd (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) per_link)

(* --- wire format -------------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.float 0.1;
      J.float 1.0999999999999996;
      J.float (-1e-300);
      J.float Float.nan;
      J.float Float.infinity;
      J.float Float.neg_infinity;
      J.String "he said \"hi\"\n\tdone \\ end";
      J.List [ J.Int 1; J.List []; J.Obj [] ];
      J.Obj [ ("a", J.List [ J.Bool false ]); ("b", J.String "") ];
    ]
  in
  List.iter
    (fun j ->
      let s = J.to_string j in
      match J.of_string s with
      | Ok j' -> check_str "round trip" s (J.to_string j')
      | Error m -> Alcotest.fail (Printf.sprintf "parse %s: %s" s m))
    cases;
  (* float payloads survive to the last bit *)
  let v = 1.0999999999999996 in
  (match J.of_string (J.to_string (J.float v)) with
  | Ok j -> Alcotest.(check bool) "bit-exact float" true (J.to_float j = Some v)
  | Error m -> Alcotest.fail m);
  List.iter
    (fun bad ->
      match J.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad))
    [ ""; "{"; "[1,]"; "{\"a\":1"; "1 2"; "nul"; "\"unterminated" ]

let test_protocol_roundtrip () =
  let reqs =
    [
      Ev.Event (Ev.Link_down { lag = 1; link = 0; at = 3.5 });
      Ev.Event (Ev.Link_up { lag = 1; link = 0; at = 4.25 });
      Ev.Event (Ev.Capacity { lag = 0; link = 0; capacity = 12.; at = 5. });
      Ev.Query (Ev.Worst { budget = Some 500; max_nodes = None });
      Ev.Query (Ev.Worst { budget = None; max_nodes = Some 10 });
      Ev.Query (Ev.Now { down = None });
      Ev.Query (Ev.Now { down = Some [ (0, 0); (2, 0) ] });
      Ev.Query Ev.Status;
      Ev.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      let line = J.to_string (Ev.json_of_request req) in
      match Ev.request_of_line line with
      | Ok req' ->
        Alcotest.(check bool) (Printf.sprintf "round trip %s" line) true (req = req')
      | Error m -> Alcotest.fail (Printf.sprintf "%s: %s" line m))
    reqs;
  List.iter
    (fun bad ->
      match Ev.request_of_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %s" bad))
    [
      "{}";
      {|{"op":"nope"}|};
      {|{"op":"event","ev":"down","lag":0}|};
      {|{"op":"event","ev":"sideways","lag":0,"link":0,"t":1}|};
      {|{"op":"query","q":"worst","budget":"lots"}|};
      {|{"op":"query","q":"now","down":[[0]]}|};
      "not json at all";
    ]

(* --- state ingestion ---------------------------------------------------- *)

let test_state_apply () =
  let s = Service.State.create fig1 in
  let ok e =
    match Service.State.apply s e with
    | Ok structural -> structural
    | Error m -> Alcotest.fail m
  in
  let rejected e =
    let before = Service.State.events_applied s in
    (match Service.State.apply s e with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "event accepted");
    check_int "rejected event not applied" before (Service.State.events_applied s)
  in
  Alcotest.(check bool) "down not structural" false
    (ok (Ev.Link_down { lag = 0; link = 0; at = 10. }));
  Alcotest.(check (list (pair int int))) "live down" [ (0, 0) ]
    (Service.State.live_down s);
  rejected (Ev.Link_down { lag = 0; link = 0; at = 11. }) (* already down *);
  rejected (Ev.Link_up { lag = 0; link = 0; at = 5. }) (* time regression *);
  rejected (Ev.Link_up { lag = 9; link = 0; at = 12. }) (* bad lag *);
  rejected (Ev.Link_up { lag = 0; link = 7; at = 12. }) (* bad link *);
  rejected (Ev.Capacity { lag = 0; link = 0; capacity = -1.; at = 12. });
  Alcotest.(check bool) "up not structural" false
    (ok (Ev.Link_up { lag = 0; link = 0; at = 12. }));
  check_int "no structural change yet" 0 (Service.State.structure_generation s);
  Alcotest.(check bool) "capacity is structural" true
    (ok (Ev.Capacity { lag = 0; link = 0; capacity = 16.; at = 13. }));
  check_int "structure generation bumped" 1 (Service.State.structure_generation s);
  (* the current topology reflects both the new capacity and the
     renewal estimate for the link that produced telemetry *)
  let t = Service.State.current_topology s in
  let lag0 = Wan.Topology.lag t 0 in
  Alcotest.(check (float 1e-9)) "capacity applied" 16.
    lag0.Wan.Lag.links.(0).Wan.Lag.link_capacity;
  Alcotest.(check (float 1e-9)) "estimate = downtime fraction" (2. /. 13.)
    lag0.Wan.Lag.links.(0).Wan.Lag.fail_prob;
  (* links without telemetry keep the configured probability *)
  Alcotest.(check (float 1e-12)) "no telemetry -> configured" 0.01
    (Wan.Topology.lag t 1).Wan.Lag.links.(0).Wan.Lag.fail_prob

let test_policy_decide () =
  let d = Service.Policy.decide in
  Alcotest.(check bool) "structural wins" true
    (d ~structural_changed:true ~drift:0. ~drift_tol:1. ~down_in_support:false
    = Service.Policy.Cold);
  Alcotest.(check bool) "drift above tol" true
    (d ~structural_changed:false ~drift:0.2 ~drift_tol:0.1 ~down_in_support:false
    = Service.Policy.Warm);
  Alcotest.(check bool) "down in support" true
    (d ~structural_changed:false ~drift:0. ~drift_tol:0.1 ~down_in_support:true
    = Service.Policy.Warm);
  Alcotest.(check bool) "quiet -> cached" true
    (d ~structural_changed:false ~drift:0.05 ~drift_tol:0.1 ~down_in_support:false
    = Service.Policy.Cached);
  Alcotest.(check (float 0.)) "drift is max abs diff" 0.25
    (Service.Policy.drift [| 0.1; 0.5 |] [| 0.2; 0.25 |]);
  Alcotest.(check bool) "length mismatch -> infinite drift" true
    (Service.Policy.drift [| 0.1 |] [| 0.1; 0.2 |] = Float.infinity)

(* --- replay determinism ------------------------------------------------- *)

(* one mixed script: telemetry with worst/now/status queries woven in *)
let script ~seed =
  let events = telemetry ~seed ~horizon:200. in
  let n = ref 0 in
  List.concat_map
    (fun e ->
      incr n;
      [ Ev.Event e ]
      @ (if !n mod 5 = 2 then [ Ev.Query (Ev.Worst { budget = None; max_nodes = None }) ] else [])
      @ (if !n mod 3 = 0 then [ Ev.Query (Ev.Now { down = None }) ] else [])
      @
      if !n mod 7 = 0 then
        [ Ev.Query (Ev.Now { down = Some [ (2, 0) ] }) ]
      else [])
    events
  @ [
      Ev.Query (Ev.Worst { budget = None; max_nodes = None });
      Ev.Query (Ev.Worst { budget = None; max_nodes = None });
      Ev.Query Ev.Status;
    ]

let replay ~domains reqs =
  let core = make_core ~domains () in
  let out = List.map (fun r -> render (Service.Core.handle core r)) reqs in
  (out, Service.Core.tally core)

let test_replay_deterministic_across_domains () =
  let reqs = script ~seed:3 in
  let out1, tally1 = replay ~domains:1 reqs in
  let out4, tally4 = replay ~domains:4 reqs in
  check_int "same length" (List.length out1) (List.length out4);
  List.iteri
    (fun i (a, b) -> check_str (Printf.sprintf "answer %d bit-identical" i) a b)
    (List.combine out1 out4);
  let c1, w1, k1 = tally1 and c4, w4, k4 = tally4 in
  check_int "cached tally" c1 c4;
  check_int "warm tally" w1 w4;
  check_int "cold tally" k1 k4;
  (* the script must actually exercise the interesting paths *)
  Alcotest.(check bool) "some cached serves" true (c1 > 0);
  Alcotest.(check bool) "some warm re-solves" true (w1 > 0);
  Alcotest.(check bool) "exactly one cold solve" true (k1 >= 1);
  (* every query answer is certified *)
  List.iter2
    (fun req out ->
      match req with
      | Ev.Query (Ev.Worst _) | Ev.Query (Ev.Now _) ->
        let j = Result.get_ok (J.of_string out) in
        Alcotest.(check bool) "ok" true (is_ok j);
        check_str "cert" "ok" (get_str "cert" j)
      | _ -> ())
    reqs out1

let test_now_many_matches_sequential () =
  let downs =
    [|
      None;
      Some [ (0, 0) ];
      Some [ (1, 0); (2, 0) ];
      Some [ (0, 0); (0, 0) ] (* duplicate: must come back as an error *);
      Some [ (4, 0) ];
    |]
  in
  let batch ~domains =
    let core = make_core ~domains () in
    ignore
      (Service.Core.handle core
         (Ev.Event (Ev.Link_down { lag = 3; link = 0; at = 50. })));
    Array.map render (Service.Core.now_many core downs)
  in
  let b1 = batch ~domains:1 and b4 = batch ~domains:4 in
  Alcotest.(check (array string)) "batch identical across domains" b1 b4;
  (* and identical to serving the same queries one at a time *)
  let core = make_core ~domains:1 () in
  ignore
    (Service.Core.handle core
       (Ev.Event (Ev.Link_down { lag = 3; link = 0; at = 50. })));
  Array.iteri
    (fun i d ->
      check_str
        (Printf.sprintf "batch %d = sequential" i)
        (render (Service.Core.handle core (Ev.Query (Ev.Now { down = d }))))
        b1.(i))
    downs;
  let dup = Result.get_ok (J.of_string b1.(3)) in
  Alcotest.(check bool) "duplicate down rejected" false (is_ok dup)

(* --- invalidation soundness --------------------------------------------- *)

(* whatever the policy decides (cached / warm), the served worst-case
   answer must agree with a cold full re-solve of the same state on
   every solve-relevant field *)
let stable_fields =
  [ "status"; "degradation"; "normalized"; "bound"; "scenario"; "num_failed_links"; "cert" ]

let project j =
  J.to_string (J.Obj (List.map (fun k -> (k, J.member k j)) stable_fields))

let test_invalidation_sound () =
  let worst = Ev.Query (Ev.Worst { budget = None; max_nodes = None }) in
  let total_cached = ref 0 in
  List.iter
    (fun seed ->
      let events = List.map (fun e -> Ev.Event e) (telemetry ~seed ~horizon:150.) in
      let n = List.length events in
      Alcotest.(check bool) "corpus stream non-trivial" true (n >= 4);
      (* checkpoints: start, middle twice in a row (the second query sees
         zero drift and must be served cached), end *)
      let checkpoints = [ 0; n / 2; n / 2; n ] in
      let live = make_core () in
      let applied = ref 0 in
      List.iter
        (fun stop ->
          List.iteri
            (fun i ev ->
              if i >= !applied && i < stop then begin
                Alcotest.(check bool) "event applied" true
                  (is_ok (Service.Core.handle live ev))
              end)
            events;
          applied := max !applied stop;
          let served = Service.Core.handle live worst in
          (* reference: a fresh core replays the same prefix and solves cold *)
          let fresh = make_core () in
          List.iteri
            (fun i ev -> if i < stop then ignore (Service.Core.handle fresh ev))
            events;
          let cold = Service.Core.handle fresh worst in
          Alcotest.(check bool) "served ok" true (is_ok served);
          check_str
            (Printf.sprintf "seed %d prefix %d: %s serve agrees with cold re-solve"
               seed stop (get_str "provenance" served))
            (project cold) (project served))
        checkpoints;
      let cached, _, _ = Service.Core.tally live in
      total_cached := !total_cached + cached)
    [ 5; 11 ];
  Alcotest.(check bool) "corpus exercised the cached path" true (!total_cached > 0)

let test_down_in_support_invalidates () =
  let core = make_core () in
  let worst = Ev.Query (Ev.Worst { budget = None; max_nodes = None }) in
  let first = Service.Core.handle core worst in
  check_str "first solve is cold" "cold" (get_str "provenance" first);
  (* the worst-case support is non-empty under max_failures = 1 *)
  let support =
    match J.member "scenario" first with
    | J.List (J.List [ J.Int e; J.Int i ] :: _) -> (e, i)
    | j -> Alcotest.fail (Printf.sprintf "unexpected scenario %s" (J.to_string j))
  in
  (* a link in the cached support going down must force a re-solve even
     though the probability drift alone would be tolerated *)
  let lag, link = support in
  Alcotest.(check bool) "down event applied" true
    (is_ok (Service.Core.handle core (Ev.Event (Ev.Link_down { lag; link; at = 1e-3 }))));
  let second = Service.Core.handle core worst in
  check_str "support hit forces warm re-solve" "warm" (get_str "provenance" second)

(* --- budget exhaustion -------------------------------------------------- *)

let test_budget_exhaustion_honest () =
  let core = make_core () in
  let starved =
    Service.Core.handle core
      (Ev.Query (Ev.Worst { budget = Some 2; max_nodes = Some 1 }))
  in
  Alcotest.(check bool) "still a response" true (is_ok starved);
  let status = get_str "status" starved in
  Alcotest.(check bool)
    (Printf.sprintf "no optimality claim under starvation (got %s)" status)
    true
    (status = "feasible" || status = "unknown");
  Alcotest.(check bool) "never a false cert failure" true
    (get_str "cert" starved <> "fail");
  (* the starved answer is cached like any other; a full-budget query
     must not reuse it blindly -- same state, zero drift, yet the next
     full query upgrades to optimal *)
  let full = Service.Core.handle core (Ev.Query (Ev.Worst { budget = None; max_nodes = None })) in
  check_str "full-budget query re-solves to optimal" "optimal" (get_str "status" full)

(* --- socket round trip -------------------------------------------------- *)

let test_socket_roundtrip () =
  (* Unix.fork is unavailable once earlier suites have spawned domains,
     so the server runs on a thread; select/read/write release the
     runtime lock, and a shutdown request makes [run] return. *)
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "raha-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let server = Thread.create (fun () -> Service.Server.run ~socket (make_core ())) () in
  Fun.protect
    ~finally:(fun () -> try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      let ask line =
        match Service.Server.request ~socket line with
        | Ok resp -> Result.get_ok (J.of_string resp)
        | Error m -> Alcotest.fail m
      in
      let status = ask {|{"op":"query","q":"status"}|} in
      Alcotest.(check bool) "status ok" true (is_ok status);
      check_str "status kind" "status" (get_str "kind" status);
      Alcotest.(check bool) "event ok" true
        (is_ok (ask {|{"op":"event","ev":"down","lag":3,"link":0,"t":7.5}|}));
      let now = ask {|{"op":"query","q":"now"}|} in
      check_str "now kind" "now" (get_str "kind" now);
      check_str "now certified" "ok" (get_str "cert" now);
      let bad = ask {|{"op":"query","q":"now","down":[[0,0],[0,0]]}|} in
      Alcotest.(check bool) "protocol error reported in-band" false (is_ok bad);
      let bye = ask {|{"op":"shutdown"}|} in
      Alcotest.(check bool) "bye" true (J.to_bool (J.member "bye" bye) = Some true);
      Thread.join server;
      Alcotest.(check bool) "socket unlinked on shutdown" false
        (Sys.file_exists socket))

let suite =
  [
    ("json round trip", `Quick, test_json_roundtrip);
    ("protocol round trip", `Quick, test_protocol_roundtrip);
    ("state ingestion", `Quick, test_state_apply);
    ("invalidation policy table", `Quick, test_policy_decide);
    ("replay deterministic across domains", `Quick, test_replay_deterministic_across_domains);
    ("now batch = sequential", `Quick, test_now_many_matches_sequential);
    ("invalidation sound on corpus", `Quick, test_invalidation_sound);
    ("down-in-support invalidates", `Quick, test_down_in_support_invalidates);
    ("budget exhaustion honest", `Quick, test_budget_exhaustion_honest);
    ("socket round trip", `Quick, test_socket_roundtrip);
  ]
