(* Tests for the certification layer and the dropped-subtree bound fix:
   branch-and-bound must never claim optimality (or report an unsound
   bound) after dropping a node on a simplex iteration limit, and
   Certify.check must accept genuine answers while flagging corrupted
   points, understated bounds and broken integrality. *)

open Milp

let check_float what expected got =
  Alcotest.(check (float 1e-6)) what expected got

(* max x + y, x,y integer in [0,5], x + y <= 7 -> optimum 7 *)
let drop_model () =
  let m = Model.create ~name:"drop_regression" () in
  let x = Model.integer ~lb:0. ~ub:5. m "x" in
  let y = Model.integer ~lb:0. ~ub:5. m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Le 7.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]);
  m

(* Regression for the silently-dropped-subtree bug: a zero iteration
   budget makes the root LP hit Iter_limit, so the whole tree is dropped
   and only the warm-start incumbent (obj 2) survives. The pre-fix solver
   exhausted the empty heap and reported Optimal with bound = 2; the true
   optimum is 7. Post-fix the outcome degrades to Feasible and the bound
   keeps covering the dropped subtree. *)
let test_iter_limit_drop () =
  let m = drop_model () in
  let options =
    {
      Branch_bound.default with
      Branch_bound.sx_iters = Some 0;
      warm_start = Some [| 1.; 1. |];
    }
  in
  let r = Branch_bound.solve ~options m in
  (match r.Branch_bound.outcome with
  | Branch_bound.Feasible -> ()
  | o ->
    Alcotest.failf "expected Feasible after a dropped subtree, got %s"
      (match o with
      | Branch_bound.Optimal -> "Optimal"
      | Branch_bound.Feasible -> "Feasible"
      | Branch_bound.No_incumbent -> "No_incumbent"
      | Branch_bound.Infeasible -> "Infeasible"
      | Branch_bound.Unbounded -> "Unbounded"));
  check_float "incumbent objective" 2. r.Branch_bound.obj;
  Alcotest.(check bool)
    "bound covers the dropped subtree (>= true optimum 7)" true
    (r.Branch_bound.bound >= 7.)

(* Same forced drop without an incumbent: the pre-fix solver reported
   Infeasible for a feasible model. *)
let test_iter_limit_no_incumbent () =
  let m = drop_model () in
  let options =
    { Branch_bound.default with Branch_bound.sx_iters = Some 0 }
  in
  let r = Branch_bound.solve ~options m in
  Alcotest.(check bool)
    "No_incumbent, not Infeasible" true
    (r.Branch_bound.outcome = Branch_bound.No_incumbent);
  Alcotest.(check bool)
    "bound still covers the dropped root" true
    (r.Branch_bound.bound >= 7.)

(* Property: whatever per-LP iteration budget the search runs under, the
   reported bound must stay above the true (unrestricted) optimum and any
   incumbent must stay below it, in Maximize sense. *)
let test_bound_sound_under_limits () =
  for case = 0 to 15 do
    let rng = Random.State.make [| 0xced1f; case |] in
    let n = 2 + Random.State.int rng 4 in
    let m = Model.create ~name:(Printf.sprintf "sound_%d" case) () in
    let vars =
      Array.init n (fun i ->
          Model.integer ~lb:0. ~ub:(float_of_int (3 + Random.State.int rng 8))
            m
            (Printf.sprintf "v%d" i))
    in
    for c = 0 to 1 + Random.State.int rng 3 do
      let terms =
        Array.to_list
          (Array.map
             (fun (v : Model.var) ->
               (float_of_int (1 + Random.State.int rng 5), v.Model.vid))
             vars)
      in
      let rhs = float_of_int (5 + Random.State.int rng 30) in
      Model.add_cons m
        ~name:(Printf.sprintf "c%d" c)
        (Linexpr.of_terms terms) Model.Le rhs
    done;
    let obj =
      Array.to_list
        (Array.map
           (fun (v : Model.var) ->
             (float_of_int (1 + Random.State.int rng 9), v.Model.vid))
           vars)
    in
    Model.set_objective m Model.Maximize (Linexpr.of_terms obj);
    let reference = Branch_bound.solve m in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: reference solve optimal" case)
      true
      (reference.Branch_bound.outcome = Branch_bound.Optimal);
    let opt = reference.Branch_bound.obj in
    List.iter
      (fun budget ->
        let options =
          { Branch_bound.default with Branch_bound.sx_iters = Some budget }
        in
        let r = Branch_bound.solve ~options m in
        (match r.Branch_bound.outcome with
        | Branch_bound.Infeasible | Branch_bound.Unbounded ->
          Alcotest.failf
            "case %d budget %d: feasible model reported infeasible/unbounded"
            case budget
        | Branch_bound.Optimal | Branch_bound.Feasible ->
          if r.Branch_bound.obj > opt +. 1e-6 then
            Alcotest.failf
              "case %d budget %d: incumbent %g above true optimum %g" case
              budget r.Branch_bound.obj opt
        | Branch_bound.No_incumbent -> ());
        if r.Branch_bound.bound < opt -. 1e-6 then
          Alcotest.failf "case %d budget %d: bound %g below true optimum %g"
            case budget r.Branch_bound.bound opt)
      [ 0; 1; 3; 7 ]
  done

(* --- Certify unit tests ------------------------------------------------ *)

(* max 3x + 2y s.t. x + y <= 4; x + 3y <= 6 -> (4, 0), obj 12 *)
let lp_model () =
  let m = Model.create ~name:"certify_lp" () in
  let x = Model.continuous m "x" and y = Model.continuous m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Le 4.;
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (3., y.vid) ]) Model.Le 6.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (3., x.vid); (2., y.vid) ]);
  m

let test_certificate_pass_lp () =
  let checks0 = Certify.cumulative_checks () in
  let sol = Solver.solve (lp_model ()) in
  Alcotest.(check bool) "optimal" true (sol.Solver.status = Solver.Optimal);
  (match sol.Solver.certificate with
  | None -> Alcotest.fail "no certificate issued"
  | Some c ->
    Alcotest.(check bool) "certificate ok" true c.Certify.ok;
    Alcotest.(check bool) "point ok" true c.Certify.point_ok;
    Alcotest.(check bool) "objective ok" true c.Certify.obj_ok;
    Alcotest.(check bool) "bound ok" true c.Certify.bound_ok;
    (* pure LP through the revised engine: the dual certificate applies *)
    Alcotest.(check bool)
      "dual certificate issued and ok" true
      (c.Certify.dual_ok = Some true);
    Alcotest.(check bool)
      "no failure messages" true (c.Certify.failures = []));
  Alcotest.(check bool)
    "certify-checks counter advanced" true
    (Certify.cumulative_checks () > checks0)

let test_certificate_off () =
  let sol = Solver.solve ~certify:false (lp_model ()) in
  Alcotest.(check bool) "optimal" true (sol.Solver.status = Solver.Optimal);
  Alcotest.(check bool)
    "no certificate when disabled" true
    (sol.Solver.certificate = None)

let test_certificate_bad_point () =
  let m = lp_model () in
  let failures0 = Certify.cumulative_failures () in
  (* claim (5, 5): violates both rows and is inconsistent with obj 12 *)
  let c =
    Certify.check ~model:m ~obj:12. ~bound:12. ~values:[| 5.; 5. |]
      ~statuses:[||] ()
  in
  Alcotest.(check bool) "not ok" false c.Certify.ok;
  Alcotest.(check bool) "point flagged" false c.Certify.point_ok;
  Alcotest.(check bool)
    "residual recorded" true
    (c.Certify.max_primal_residual > 1e-3);
  Alcotest.(check bool)
    "failure message recorded" true (c.Certify.failures <> []);
  Alcotest.(check bool)
    "certify-failures counter advanced" true
    (Certify.cumulative_failures () > failures0)

let test_certificate_bad_bound () =
  let m = lp_model () in
  (* genuine point (4, 0) with obj 12, but a claimed bound of 10 asserts
     obj <= 10 in max form: unsound, must be flagged *)
  let c =
    Certify.check ~model:m ~obj:12. ~bound:10. ~values:[| 4.; 0. |]
      ~statuses:[||] ()
  in
  Alcotest.(check bool) "point fine" true c.Certify.point_ok;
  Alcotest.(check bool) "bound flagged" false c.Certify.bound_ok;
  Alcotest.(check bool)
    "violation magnitude recorded" true
    (c.Certify.bound_violation > 1.);
  Alcotest.(check bool) "not ok" false c.Certify.ok

let test_certificate_open_gap () =
  let m = lp_model () in
  (* bound 20 over obj 12 is fine for a Feasible claim but contradicts a
     claim of optimality under the default gaps *)
  let feas =
    Certify.check ~model:m ~obj:12. ~bound:20. ~values:[| 4.; 0. |]
      ~statuses:[||] ()
  in
  Alcotest.(check bool) "sound for Feasible" true feas.Certify.bound_ok;
  let opt =
    Certify.check ~optimal:true ~model:m ~obj:12. ~bound:20.
      ~values:[| 4.; 0. |] ~statuses:[||] ()
  in
  Alcotest.(check bool) "open gap flagged for Optimal" false
    opt.Certify.bound_ok

let test_certificate_integrality () =
  let m = Model.create ~name:"certify_int" () in
  let x = Model.integer ~lb:0. ~ub:5. m "x" in
  Model.set_objective m Model.Maximize (Linexpr.var x.Model.vid);
  let c =
    Certify.check ~model:m ~obj:2.5 ~bound:5. ~values:[| 2.5 |] ~statuses:[||]
      ()
  in
  Alcotest.(check bool) "fractional integer flagged" false c.Certify.point_ok;
  Alcotest.(check bool)
    "integrality residual recorded" true
    (c.Certify.max_int_residual >= 0.4)

let test_certificate_bad_objective () =
  let m = lp_model () in
  let c =
    Certify.check ~model:m ~obj:13. ~bound:13. ~values:[| 4.; 0. |]
      ~statuses:[||] ()
  in
  Alcotest.(check bool) "point fine" true c.Certify.point_ok;
  Alcotest.(check bool) "objective mismatch flagged" false c.Certify.obj_ok;
  Alcotest.(check bool)
    "relative error recorded" true
    (c.Certify.obj_error > 0.01)

(* End-to-end: a MILP solved under a drop-forcing budget must come back
   Feasible (never Optimal) through the solver facade, with a passing
   certificate for the surviving incumbent. *)
let test_solver_downgrade_on_drop () =
  let m = drop_model () in
  (* The facade does not expose sx_iters (it is a test hook), so drive
     branch-and-bound directly and certify its claim both ways. *)
  let bb =
    Branch_bound.solve
      ~options:
        {
          Branch_bound.default with
          Branch_bound.sx_iters = Some 0;
          warm_start = Some [| 1.; 1. |];
        }
      m
  in
  let c =
    Certify.check ~model:m ~obj:bb.Branch_bound.obj ~bound:bb.Branch_bound.bound
      ~values:bb.Branch_bound.values ~statuses:[||] ()
  in
  Alcotest.(check bool) "degraded claim certifies" true c.Certify.ok;
  (* the pre-fix claim — obj 2 "optimal" with bound 2 — fails the audit
     once the true optimum is known to be 7 *)
  let pre_fix =
    Certify.check ~optimal:true ~model:m ~obj:2. ~bound:7.
      ~values:bb.Branch_bound.values ~statuses:[||] ()
  in
  Alcotest.(check bool)
    "pre-fix optimality claim rejected" false pre_fix.Certify.ok

let suite =
  [
    ("iter-limit drop keeps bound sound", `Quick, test_iter_limit_drop);
    ("iter-limit drop without incumbent", `Quick, test_iter_limit_no_incumbent);
    ("bound soundness under LP budgets", `Quick, test_bound_sound_under_limits);
    ("certificate passes on a solved LP", `Quick, test_certificate_pass_lp);
    ("certification can be disabled", `Quick, test_certificate_off);
    ("corrupted point is flagged", `Quick, test_certificate_bad_point);
    ("understated bound is flagged", `Quick, test_certificate_bad_bound);
    ("open gap contradicts optimality", `Quick, test_certificate_open_gap);
    ("fractional integer is flagged", `Quick, test_certificate_integrality);
    ("objective mismatch is flagged", `Quick, test_certificate_bad_objective);
    ("dropped-subtree claim audits cleanly", `Quick, test_solver_downgrade_on_drop);
  ]
