let () =
  Alcotest.run "raha"
    [
      ("milp", Test_milp.suite);
      ("presolve", Test_presolve.suite);
      ("wan", Test_wan.suite);
      ("netpath", Test_netpath.suite);
      ("failure", Test_failure.suite);
      ("te", Test_te.suite);
      ("raha", Test_raha.suite);
      ("raha tools", Test_raha_tools.suite);
      ("traffic", Test_traffic.suite);
      ("extensions", Test_extensions.suite);
      ("simplex diff", Test_simplex_diff.suite);
      ("revised simplex", Test_revised.suite);
      ("cuts", Test_cuts.suite);
      ("batch", Test_batch.suite);
      ("certify", Test_certify.suite);
      ("parallel", Test_parallel.suite);
      ("bb parallel", Test_bb_parallel.suite);
      ("branching", Test_branching.suite);
      ("service", Test_service.suite);
    ]
