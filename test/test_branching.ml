(* Tests for reliability branching, the primal heuristics and the
   unified incumbent-acceptance tolerance (PR 9).

   The tolerance seam this pins down: branch-and-bound used to accept
   plunge-produced incumbents at [10. *. int_tol] while the certifier
   audits points at an [int_tol]-aligned window — so with a configured
   [int_tol] (say 1e-5) a heuristic incumbent could prune the tree and
   then fail certification, downgrading Optimal to Feasible. All
   incumbents now pass through [Model.check_feasible ~tol:int_tol], the
   same tolerance Certify enforces. *)

let check_float ?(eps = 1e-6) what expected got =
  Alcotest.(check (float eps)) what expected got

(* Certification tolerances exactly as Solver.certify_solution derives
   them from the solver's integrality tolerance. *)
let solver_tols int_tol =
  {
    Milp.Certify.default_tolerances with
    Milp.Certify.int_tol =
      Float.max Milp.Certify.default_tolerances.Milp.Certify.int_tol
        (10. *. int_tol);
  }

(* The seam itself, at the predicate level: a candidate point that
   violates a row (and a variable bound) by 5e-5 with int_tol = 1e-5.
   The pre-fix acceptance predicate (tolerance 10 x int_tol = 1e-4)
   admits it; the certifier rejects it (normalized feas_tol 1e-5 on a
   scale-1 row); the unified predicate rejects it like the certifier
   does — so the hole where an admitted incumbent later fails its audit
   is closed. *)
let test_tolerance_seam () =
  let int_tol = 1e-5 in
  let mdl = Milp.Model.create () in
  let x = Milp.Model.integer ~ub:1. mdl "x" in
  let t l =
    Milp.Linexpr.of_terms (List.map (fun (k, v) -> (k, v.Milp.Model.vid)) l)
  in
  Milp.Model.add_cons mdl (t [ (1., x) ]) Milp.Model.Le 1.;
  Milp.Model.set_objective mdl Milp.Model.Maximize (t [ (1., x) ]);
  let cand = [| 1.00005 |] in
  (match Milp.Model.check_feasible ~tol:(10. *. int_tol) mdl cand with
  | None -> ()
  | Some reason ->
    Alcotest.failf
      "pre-fix predicate unexpectedly rejected the seam candidate (%s)" reason);
  let cert =
    Milp.Certify.check ~tols:(solver_tols int_tol) ~model:mdl
      ~obj:(Milp.Model.objective_value mdl cand)
      ~bound:(Milp.Model.objective_value mdl cand)
      ~values:cand ~statuses:[||] ()
  in
  Alcotest.(check bool)
    "certifier rejects the 10x-tolerance candidate" false
    cert.Milp.Certify.point_ok;
  Alcotest.(check bool)
    "unified predicate rejects it too" true
    (Milp.Model.check_feasible ~tol:int_tol mdl cand <> None)

(* Corpus property: every heuristic-produced incumbent (dive, pump,
   RINS — surfaced through the on_incumbent hook, which fires only on
   the heuristic acceptance path) passes Certify.check under the
   solver's own tolerances. This is the post-fix guarantee: no admitted
   incumbent can later be certify-rejected. *)
let prop_heuristic_incumbents_certified =
  QCheck2.Test.make ~name:"heuristic incumbents pass Certify.check" ~count:64
    QCheck2.Gen.(int_range 0 63)
    (fun case ->
      let mdl = Test_revised.random_milp case in
      let int_tol = 1e-5 in
      let produced = ref [] in
      let options =
        {
          Milp.Branch_bound.default with
          int_tol;
          rins_freq = 4;
          (* root cut rounds solve most corpus cases outright; disable
             them so the search actually branches and the heuristics run *)
          cuts = Milp.Cuts.disabled;
          on_incumbent = Some (fun v -> produced := Array.copy v :: !produced);
        }
      in
      let r = Milp.Branch_bound.solve ~options mdl in
      List.iter
        (fun v ->
          (* re-checked at the unified tolerance... *)
          (match Milp.Model.check_feasible ~tol:int_tol mdl v with
          | None -> ()
          | Some reason ->
            QCheck2.Test.fail_reportf
              "case %d: admitted heuristic incumbent infeasible at int_tol: %s"
              case reason);
          (* ...and certified exactly as the solver facade would *)
          let obj = Milp.Model.objective_value mdl v in
          let cert =
            Milp.Certify.check ~tols:(solver_tols int_tol) ~model:mdl ~obj
              ~bound:r.Milp.Branch_bound.bound ~values:v ~statuses:[||] ()
          in
          if not cert.Milp.Certify.ok then
            QCheck2.Test.fail_reportf
              "case %d: heuristic incumbent failed certification: %s" case
              (String.concat "; " cert.Milp.Certify.failures))
        !produced;
      true)

(* The hook must actually fire on this corpus, or the property above is
   vacuous; the heuristic/pseudocost counters must engage (and stay
   silent in Fractional mode, which restores the legacy search). *)
let test_machinery_engages () =
  let sb0 = Milp.Branch_bound.cumulative_sb_probes () in
  let pcu0 = Milp.Branch_bound.cumulative_pseudocost_updates () in
  let hs0 = Milp.Branch_bound.cumulative_heuristic_solutions () in
  let fired = ref 0 in
  for case = 0 to 15 do
    let mdl = Test_revised.random_milp case in
    let options =
      {
        Milp.Branch_bound.default with
        cuts = Milp.Cuts.disabled;
        on_incumbent = Some (fun _ -> incr fired);
      }
    in
    ignore (Milp.Branch_bound.solve ~options mdl)
  done;
  Alcotest.(check bool) "on_incumbent fired" true (!fired > 0);
  Alcotest.(check bool) "strong-branching probes ran" true
    (Milp.Branch_bound.cumulative_sb_probes () > sb0);
  Alcotest.(check bool) "pseudocost observations recorded" true
    (Milp.Branch_bound.cumulative_pseudocost_updates () > pcu0);
  Alcotest.(check bool) "heuristic incumbents accepted" true
    (Milp.Branch_bound.cumulative_heuristic_solutions () > hs0);
  (* Fractional mode leaves the pseudocost machinery untouched *)
  let sb1 = Milp.Branch_bound.cumulative_sb_probes () in
  let pcu1 = Milp.Branch_bound.cumulative_pseudocost_updates () in
  for case = 0 to 15 do
    let mdl = Test_revised.random_milp case in
    let options =
      {
        Milp.Branch_bound.default with
        cuts = Milp.Cuts.disabled;
        branching = Milp.Branch_bound.Fractional;
      }
    in
    ignore (Milp.Branch_bound.solve ~options mdl)
  done;
  Alcotest.(check int) "no probes under fractional" sb1
    (Milp.Branch_bound.cumulative_sb_probes ());
  Alcotest.(check int) "no pseudocost updates under fractional" pcu1
    (Milp.Branch_bound.cumulative_pseudocost_updates ())

(* Full-solver differential: reliability and fractional branching visit
   different trees but must agree on status and objective across the
   corpus, with certified answers on both sides. *)
let test_branching_differential () =
  for case = 0 to 31 do
    let mdl = Test_revised.random_milp case in
    let solve branching =
      let sol =
        Milp.Solver.solve
          ~options:{ Milp.Solver.default_options with branching }
          mdl
      in
      (match (Milp.Solver.has_point sol, sol.Milp.Solver.certificate) with
      | true, Some c ->
        if not c.Milp.Certify.ok then
          Alcotest.failf "case %d: certificate failed: %s" case
            (String.concat "; " c.Milp.Certify.failures)
      | true, None -> Alcotest.failf "case %d: no certificate issued" case
      | false, _ -> ());
      sol
    in
    let r = solve Milp.Branch_bound.Reliability in
    let f = solve Milp.Branch_bound.Fractional in
    if r.Milp.Solver.status <> f.Milp.Solver.status then
      Alcotest.failf "case %d: reliability %s vs fractional %s" case
        (Format.asprintf "%a" Milp.Solver.pp_status r.Milp.Solver.status)
        (Format.asprintf "%a" Milp.Solver.pp_status f.Milp.Solver.status);
    match r.Milp.Solver.status with
    | Milp.Solver.Optimal ->
      let eps = 1e-6 *. (1. +. Float.abs f.Milp.Solver.obj) in
      check_float ~eps
        (Printf.sprintf "case %d objective" case)
        f.Milp.Solver.obj r.Milp.Solver.obj
    | _ -> ()
  done

let suite =
  [
    ("10x-tolerance incumbent is certify-rejected", `Quick, test_tolerance_seam);
    QCheck_alcotest.to_alcotest prop_heuristic_incumbents_certified;
    ("probes, pseudocosts and heuristics engage", `Quick, test_machinery_engages);
    ("corpus: reliability vs fractional", `Quick, test_branching_differential);
  ]
