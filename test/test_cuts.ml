(* Tests for the cutting-plane subsystem (Milp.Cuts): pinned cover,
   clique and Gomory separations on hand-built models, pool hygiene
   (duplicate hashing, aging, incumbent audit), dual warm starts across
   appended cut rows (Simplex.extend_basis), and the validity property
   over the random-MILP differential corpus — every pooled cut must be
   satisfied by every integer-feasible point of its model. *)

let check_float ?(eps = 1e-9) what expected got =
  Alcotest.(check (float eps)) what expected got

let t l =
  Milp.Linexpr.of_terms
    (List.map (fun (k, (v : Milp.Model.var)) -> (k, v.Milp.Model.vid)) l)

let rows_of mdl =
  Array.map
    (fun (c : Milp.Model.cons) -> (c.Milp.Model.lhs, c.Milp.Model.rhs))
    (Milp.Model.conss mdl)

let family (c : Milp.Cuts.cut) = Milp.Cuts.family_name c.Milp.Cuts.family

(* One separation round at the model's own LP relaxation (no cuts
   applied yet): the entry point most pinned tests drive. *)
let separate_at pool mdl ~point ~basis ~incumbent =
  let sp = Milp.Sparse.of_model mdl in
  Milp.Cuts.separate_round pool ~sp ~rows:(rows_of mdl) ~point ~basis
    ~incumbent

(* --- knapsack cover ----------------------------------------------------- *)

(* 3a + 4b + 5c + 6d <= 8 over binaries at the fractional point
   (0, 0, 0.8, 0.75): the greedy minimal cover is {c, d} (5 + 6 > 8)
   and its LP value 1.55 violates c + d <= 1. *)
let cover_model () =
  let mdl = Milp.Model.create () in
  let x =
    Array.init 4 (fun i ->
        Milp.Model.integer ~ub:1. mdl (Printf.sprintf "x%d" i))
  in
  Milp.Model.add_cons mdl
    (t [ (3., x.(0)); (4., x.(1)); (5., x.(2)); (6., x.(3)) ])
    Milp.Model.Le 8.;
  Milp.Model.set_objective mdl Milp.Model.Maximize
    (t [ (1., x.(2)); (1., x.(3)) ]);
  mdl

let cover_point = [| 0.; 0.; 0.8; 0.75 |]

let cover_opts =
  { Milp.Cuts.default with Milp.Cuts.gomory = false; clique = false }

let test_cover_pinned () =
  let mdl = cover_model () in
  let pool = Milp.Cuts.create cover_opts mdl in
  let added =
    separate_at pool mdl ~point:cover_point ~basis:None ~incumbent:None
  in
  Alcotest.(check int) "one cover cut activated" 1 added;
  match Milp.Cuts.active_cuts pool with
  | [ c ] ->
    Alcotest.(check string) "family" "cover" (family c);
    Alcotest.(check (array int)) "support is {x2, x3}" [| 2; 3 |]
      (Array.map snd c.Milp.Cuts.terms);
    Array.iter
      (fun (co, _) -> check_float "unit coefficient" 1. co)
      c.Milp.Cuts.terms;
    check_float "rhs |C| - 1" 1. c.Milp.Cuts.rhs;
    Alcotest.(check bool) "violated at the LP point" true
      (Milp.Cuts.eval_cut c cover_point > c.Milp.Cuts.rhs +. 1e-6);
    (* valid at every 0/1 point that satisfies the knapsack *)
    for m = 0 to 15 do
      let p =
        Array.init 4 (fun i -> if m land (1 lsl i) <> 0 then 1. else 0.)
      in
      let act =
        (3. *. p.(0)) +. (4. *. p.(1)) +. (5. *. p.(2)) +. (6. *. p.(3))
      in
      if act <= 8. then
        Alcotest.(check bool)
          (Printf.sprintf "cover valid at mask %d" m)
          true
          (Milp.Cuts.eval_cut c p <= c.Milp.Cuts.rhs +. 1e-9)
    done
  | l -> Alcotest.failf "expected 1 active cut, got %d" (List.length l)

(* --- clique ------------------------------------------------------------- *)

(* pairwise exclusions a + b <= 1, b + c <= 1, a + c <= 1: the conflict
   graph holds the triangle {a, b, c}, and the point (1/2, 1/2, 1/2)
   violates the clique inequality a + b + c <= 1 (LP value 1.5). *)
let test_clique_pinned () =
  let mdl = Milp.Model.create () in
  let x = Array.init 3 (fun i -> Milp.Model.binary mdl (Printf.sprintf "b%d" i)) in
  List.iter
    (fun (i, j) ->
      Milp.Model.add_cons mdl (t [ (1., x.(i)); (1., x.(j)) ]) Milp.Model.Le 1.)
    [ (0, 1); (1, 2); (0, 2) ];
  Milp.Model.set_objective mdl Milp.Model.Maximize
    (t [ (1., x.(0)); (1., x.(1)); (1., x.(2)) ]);
  let pool =
    Milp.Cuts.create
      { Milp.Cuts.default with Milp.Cuts.gomory = false; cover = false }
      mdl
  in
  let point = [| 0.5; 0.5; 0.5 |] in
  let added = separate_at pool mdl ~point ~basis:None ~incumbent:None in
  Alcotest.(check bool) "a clique cut activated" true (added >= 1);
  let c =
    match List.filter (fun c -> family c = "clique") (Milp.Cuts.active_cuts pool) with
    | c :: _ -> c
    | [] -> Alcotest.fail "no clique cut in the pool"
  in
  Alcotest.(check (array int)) "support is the triangle" [| 0; 1; 2 |]
    (Array.map snd c.Milp.Cuts.terms);
  check_float "rhs 1" 1. c.Milp.Cuts.rhs;
  (* valid at every 0/1 point that satisfies the pairwise rows
     (i.e. at most one variable set) *)
  for m = 0 to 7 do
    let p = Array.init 3 (fun i -> if m land (1 lsl i) <> 0 then 1. else 0.) in
    if p.(0) +. p.(1) <= 1. && p.(1) +. p.(2) <= 1. && p.(0) +. p.(2) <= 1.
    then
      Alcotest.(check bool)
        (Printf.sprintf "clique valid at mask %d" m)
        true
        (Milp.Cuts.eval_cut c p <= c.Milp.Cuts.rhs +. 1e-9)
  done

(* --- Gomory ------------------------------------------------------------- *)

(* max x + y s.t. 3x + 2y <= 6, -3x + 2y <= 0 over integers: the LP
   relaxation's optimal vertex is (1, 1.5) with y basic fractional, so
   a GMI cut must exist, cut the vertex off, and hold at every integer
   point of the feasible region. *)
let gomory_model () =
  let mdl = Milp.Model.create () in
  let x = Milp.Model.integer ~ub:10. mdl "x" in
  let y = Milp.Model.integer ~ub:10. mdl "y" in
  Milp.Model.add_cons mdl (t [ (3., x); (2., y) ]) Milp.Model.Le 6.;
  Milp.Model.add_cons mdl (t [ (-3., x); (2., y) ]) Milp.Model.Le 0.;
  Milp.Model.set_objective mdl Milp.Model.Maximize (t [ (1., x); (1., y) ]);
  mdl

let gomory_feasible px py =
  (3. *. px) +. (2. *. py) <= 6. +. 1e-9
  && (-3. *. px) +. (2. *. py) <= 1e-9

let test_gomory_pinned () =
  let mdl = gomory_model () in
  let prep = Milp.Simplex.prepare mdl in
  match Milp.Simplex.solve_prepared prep with
  | Milp.Simplex.Optimal { values; obj }, Some bas ->
    check_float ~eps:1e-6 "LP vertex x" 1. values.(0);
    check_float ~eps:1e-6 "LP vertex y" 1.5 values.(1);
    check_float ~eps:1e-6 "LP objective" 2.5 obj;
    let pool =
      Milp.Cuts.create
        { Milp.Cuts.default with Milp.Cuts.cover = false; clique = false }
        mdl
    in
    let basis =
      Some (Milp.Simplex.basis_cols bas, Milp.Simplex.basis_statuses bas)
    in
    let added =
      Milp.Cuts.separate_round pool
        ~sp:(Milp.Simplex.prep_sparse prep)
        ~rows:(rows_of mdl) ~point:values ~basis ~incumbent:None
    in
    Alcotest.(check bool) "a Gomory cut activated" true (added >= 1);
    List.iter
      (fun (c : Milp.Cuts.cut) ->
        Alcotest.(check string) "family" "gomory" (family c);
        Alcotest.(check bool) "cuts the fractional vertex off" true
          (Milp.Cuts.eval_cut c values > c.Milp.Cuts.rhs +. 1e-6);
        for xi = 0 to 10 do
          for yi = 0 to 10 do
            let p = [| float_of_int xi; float_of_int yi |] in
            if gomory_feasible p.(0) p.(1) then
              Alcotest.(check bool)
                (Printf.sprintf "gomory valid at (%d, %d)" xi yi)
                true
                (Milp.Cuts.eval_cut c p <= c.Milp.Cuts.rhs +. 1e-7)
          done
        done)
      (Milp.Cuts.active_cuts pool)
  | _ -> Alcotest.fail "LP relaxation not optimal with a basis"

(* --- warm starts across cut rows ---------------------------------------- *)

(* Cuts only append rows, so the parent's optimal basis extended with
   the new slack columns must be accepted as a dual warm start and agree
   with a cold solve of the tightened LP. *)
let test_extend_basis_warm () =
  let mdl = gomory_model () in
  let prep = Milp.Simplex.prepare mdl in
  match Milp.Simplex.solve_prepared prep with
  | Milp.Simplex.Optimal { values; _ }, Some bas ->
    let pool =
      Milp.Cuts.create
        { Milp.Cuts.default with Milp.Cuts.cover = false; clique = false }
        mdl
    in
    let basis =
      Some (Milp.Simplex.basis_cols bas, Milp.Simplex.basis_statuses bas)
    in
    let added =
      Milp.Cuts.separate_round pool
        ~sp:(Milp.Simplex.prep_sparse prep)
        ~rows:(rows_of mdl) ~point:values ~basis ~incumbent:None
    in
    Alcotest.(check bool) "cuts to extend over" true (added >= 1);
    let xprep = Milp.Simplex.prepare (Milp.Cuts.extend_model mdl pool) in
    (* same shape -> returned unchanged; cut rows -> slack-extended *)
    (match Milp.Simplex.extend_basis bas prep with
    | Some b -> Alcotest.(check bool) "same-shape extend is identity" true (b == bas)
    | None -> Alcotest.fail "same-shape extend rejected");
    (match Milp.Simplex.extend_basis bas xprep with
    | None -> Alcotest.fail "extension across cut rows rejected"
    | Some warm_basis ->
      let a0 = Milp.Simplex.cumulative_warm_attempts () in
      let warm, _ = Milp.Simplex.solve_prepared ~warm:warm_basis xprep in
      Alcotest.(check bool) "warm start attempted" true
        (Milp.Simplex.cumulative_warm_attempts () > a0);
      let cold, _ = Milp.Simplex.solve_prepared xprep in
      match (warm, cold) with
      | ( Milp.Simplex.Optimal { obj = wobj; _ },
          Milp.Simplex.Optimal { obj = cobj; _ } ) ->
        check_float ~eps:1e-6 "warm agrees with cold" cobj wobj
      | _ -> Alcotest.fail "tightened LP not optimal");
    (* a differently-shaped model must be rejected outright *)
    let other = cover_model () in
    (match Milp.Simplex.extend_basis bas (Milp.Simplex.prepare other) with
    | None -> ()
    | Some _ -> Alcotest.fail "extension across models accepted")
  | _ -> Alcotest.fail "LP relaxation not optimal with a basis"

(* --- pool hygiene: dedup, aging, audit ----------------------------------- *)

let test_dedup_and_aging () =
  let mdl = cover_model () in
  let pool =
    Milp.Cuts.create { cover_opts with Milp.Cuts.max_age = 2 } mdl
  in
  let sep point = separate_at pool mdl ~point ~basis:None ~incumbent:None in
  Alcotest.(check int) "first round activates" 1 (sep cover_point);
  Alcotest.(check int) "duplicate is hashed out" 0 (sep cover_point);
  Alcotest.(check int) "one active cut" 1 (Milp.Cuts.active_count pool);
  (* the all-zeros point leaves the cut slack: it ages out after
     max_age rounds and its hash is released, so it can re-enter *)
  let origin = [| 0.; 0.; 0.; 0. |] in
  Alcotest.(check int) "slack round 1" 0 (Milp.Cuts.age_and_prune pool ~point:origin);
  Alcotest.(check int) "slack round 2" 0 (Milp.Cuts.age_and_prune pool ~point:origin);
  Alcotest.(check int) "aged out" 1 (Milp.Cuts.age_and_prune pool ~point:origin);
  Alcotest.(check int) "pool drained" 0 (Milp.Cuts.active_count pool);
  Alcotest.(check int) "pruned cut can re-enter" 1 (sep cover_point);
  (* a tight point resets the age instead *)
  let tight = [| 0.; 0.; 1.; 0. |] in
  Alcotest.(check int) "tight round prunes nothing" 0
    (Milp.Cuts.age_and_prune pool ~point:tight);
  Alcotest.(check int) "cut survives" 1 (Milp.Cuts.active_count pool)

let test_incumbent_audit () =
  let mdl = cover_model () in
  let pool = Milp.Cuts.create cover_opts mdl in
  let incumbent = [| 0.; 0.; 1.; 0. |] in
  (* separation with an incumbent in hand audits before activation *)
  let added =
    separate_at pool mdl ~point:cover_point ~basis:None
      ~incumbent:(Some incumbent)
  in
  Alcotest.(check int) "audited cut still activates" 1 added;
  Alcotest.(check int) "re-audit keeps valid cuts" 0
    (Milp.Cuts.audit_incumbent pool incumbent);
  Alcotest.(check int) "no audit failures" 0
    (Milp.Cuts.cumulative_audit_failures ())

(* --- validity over the differential corpus ------------------------------- *)

(* Integer assignments of the model's integer variables, in
   lexicographic order, capped. *)
let int_assignments mdl cap =
  let lb, ub = Milp.Model.bounds mdl in
  let ids = Array.of_list (Milp.Model.int_var_ids mdl) in
  let acc = ref [] and count = ref 0 in
  let rec go i fixed =
    if !count < cap then
      if i = Array.length ids then begin
        incr count;
        acc := List.rev fixed :: !acc
      end
      else begin
        let id = ids.(i) in
        let lo = int_of_float (Float.ceil (lb.(id) -. 1e-9))
        and hi = int_of_float (Float.floor (ub.(id) +. 1e-9)) in
        let v = ref lo in
        while !v <= hi && !count < cap do
          go (i + 1) ((id, float_of_int !v) :: fixed);
          incr v
        done
      end
  in
  go 0 [];
  List.rev !acc

(* Root-style separation loop: re-extend the LP with the active cuts and
   separate at each new fractional vertex, like Branch_bound's root. *)
let root_separate mdl pool rounds =
  let rec go k =
    if k > 0 then begin
      let xm = Milp.Cuts.extend_model mdl pool in
      let prep = Milp.Simplex.prepare xm in
      match Milp.Simplex.solve_prepared prep with
      | Milp.Simplex.Optimal { values; _ }, bas ->
        let basis =
          Option.map
            (fun b ->
              (Milp.Simplex.basis_cols b, Milp.Simplex.basis_statuses b))
            bas
        in
        let added =
          Milp.Cuts.separate_round pool
            ~sp:(Milp.Simplex.prep_sparse prep)
            ~rows:(rows_of xm) ~point:values ~basis ~incumbent:None
        in
        if added > 0 then go (k - 1)
      | _ -> ()
    end
  in
  go rounds

(* Every pooled cut must hold at every integer-feasible point: for each
   (capped) integer assignment, maximize the cut's left-hand side over
   the remaining LP — a violation is an integer-feasible point the cut
   wrongly excludes. *)
let prop_corpus_cuts_valid =
  QCheck2.Test.make ~name:"pooled cuts are satisfied by integer points"
    ~count:64
    QCheck2.Gen.(int_range 0 63)
    (fun case ->
      let mdl = Test_revised.random_milp case in
      let pool = Milp.Cuts.create Milp.Cuts.default mdl in
      root_separate mdl pool 3;
      let cuts = Milp.Cuts.active_cuts pool in
      let assignments = int_assignments mdl 60 in
      let chk = Test_revised.random_milp case in
      let lb0, ub0 = Milp.Model.bounds chk in
      List.iteri
        (fun ci (c : Milp.Cuts.cut) ->
          if ci < 8 then begin
            Milp.Model.set_objective chk Milp.Model.Maximize
              (Milp.Linexpr.of_terms (Array.to_list c.Milp.Cuts.terms));
            let prep = Milp.Simplex.prepare chk in
            let tol = 1e-5 *. Float.max 1. (Float.abs c.Milp.Cuts.rhs) in
            List.iter
              (fun assignment ->
                let lb = Array.copy lb0 and ub = Array.copy ub0 in
                List.iter
                  (fun (id, v) ->
                    lb.(id) <- v;
                    ub.(id) <- v)
                  assignment;
                match Milp.Simplex.solve_prepared ~lb ~ub prep with
                | Milp.Simplex.Optimal { obj; _ }, _ ->
                  if obj > c.Milp.Cuts.rhs +. tol then
                    QCheck2.Test.fail_reportf
                      "case %d cut %d (%s): max lhs %.9g > rhs %.9g" case ci
                      (family c) obj c.Milp.Cuts.rhs
                | _ -> ())
              assignments
          end)
        cuts;
      true)

(* Full-solver differential: cuts on vs off must agree on status and
   objective across the corpus (cuts tighten the relaxation, never the
   answer), with certified feasible points and zero audit failures. *)
let test_solver_differential () =
  let aud0 = Milp.Cuts.cumulative_audit_failures () in
  for case = 0 to 31 do
    let mdl = Test_revised.random_milp case in
    let solve cuts =
      Milp.Solver.solve ~options:{ Milp.Solver.default_options with cuts } mdl
    in
    let on = solve Milp.Cuts.default and off = solve Milp.Cuts.disabled in
    if on.Milp.Solver.status <> off.Milp.Solver.status then
      Alcotest.failf "case %d: cuts-on %s vs cuts-off %s" case
        (Format.asprintf "%a" Milp.Solver.pp_status on.Milp.Solver.status)
        (Format.asprintf "%a" Milp.Solver.pp_status off.Milp.Solver.status);
    match on.Milp.Solver.status with
    | Milp.Solver.Optimal ->
      let eps = 1e-6 *. (1. +. Float.abs off.Milp.Solver.obj) in
      check_float ~eps
        (Printf.sprintf "case %d objective" case)
        off.Milp.Solver.obj on.Milp.Solver.obj;
      (match Milp.Model.check_feasible mdl on.Milp.Solver.values with
      | None -> ()
      | Some reason ->
        Alcotest.failf "case %d: cuts-on point infeasible: %s" case reason)
    | _ -> ()
  done;
  Alcotest.(check int) "no audit failures across the corpus" 0
    (Milp.Cuts.cumulative_audit_failures () - aud0)

let suite =
  [
    ("pinned cover cut", `Quick, test_cover_pinned);
    ("pinned clique cut", `Quick, test_clique_pinned);
    ("pinned Gomory cut at a fractional vertex", `Quick, test_gomory_pinned);
    ("warm start extends across cut rows", `Quick, test_extend_basis_warm);
    ("pool dedup and aging", `Quick, test_dedup_and_aging);
    ("incumbent audit", `Quick, test_incumbent_audit);
    QCheck_alcotest.to_alcotest prop_corpus_cuts_valid;
    ("32 random MILPs: cuts on vs off", `Quick, test_solver_differential);
  ]
