(* Tests for the revised simplex engine: a random-MILP differential
   against the legacy dense tableau, the dual-simplex warm-start
   property (a child LP warm-started from its parent's basis agrees
   with a cold solve), the Bland anti-cycling fallback on Beale's
   classical cycling LP, and the branch-and-bound heap tie-break. *)

let check_float ?(eps = 1e-6) what expected got =
  Alcotest.(check (float eps)) what expected got

(* Random MILP in the shape of the vertex-oracle suite, plus integer
   variables: max c.x, rows x <= rhs with rhs >= 0 (origin feasible),
   0 <= x <= ub (bounded). *)
let random_milp case =
  let rng = Random.State.make [| 0xbea1e; case |] in
  let n = 2 + (case mod 5) in
  let m = 1 + Random.State.int rng (n + 2) in
  let nint = Random.State.int rng (n + 1) in
  let mdl = Milp.Model.create () in
  let vars =
    Array.init n (fun i ->
        let ub = 1. +. Random.State.float rng 9. in
        if i < nint then
          Milp.Model.integer ~ub:(Float.round ub) mdl (Printf.sprintf "z%d" i)
        else Milp.Model.continuous ~ub mdl (Printf.sprintf "x%d" i))
  in
  for _ = 1 to m do
    let terms =
      Array.to_list
        (Array.map
           (fun (v : Milp.Model.var) ->
             (Random.State.float rng 4. -. 2., v.Milp.Model.vid))
           vars)
    in
    Milp.Model.add_cons mdl (Milp.Linexpr.of_terms terms) Milp.Model.Le
      (Random.State.float rng 8.)
  done;
  Milp.Model.set_objective mdl Milp.Model.Maximize
    (Milp.Linexpr.of_terms
       (Array.to_list
          (Array.map
             (fun (v : Milp.Model.var) ->
               (Random.State.float rng 10. -. 5., v.Milp.Model.vid))
             vars)));
  mdl

(* Differential: the revised and dense engines must agree on status and
   objective across random MILPs, through the full solver stack
   (presolve + branch-and-bound + warm starts on the revised side).
   Certification is on (the solver default), so every answer is also
   audited against the original model — a certificate failure would
   downgrade the status and break the status comparison below; the
   explicit per-solve check makes the audit verdict part of the
   differential contract. *)
let test_differential () =
  for case = 0 to 63 do
    let mdl = random_milp case in
    let solve dense_simplex =
      let sol =
        Milp.Solver.solve
          ~options:{ Milp.Solver.default_options with dense_simplex }
          mdl
      in
      (match (Milp.Solver.has_point sol, sol.Milp.Solver.certificate) with
      | true, None -> Alcotest.failf "case %d: no certificate issued" case
      | true, Some c ->
        if not c.Milp.Certify.ok then
          Alcotest.failf "case %d (%s): certificate failed: %s" case
            (if dense_simplex then "dense" else "revised")
            (String.concat "; " c.Milp.Certify.failures)
      | false, _ -> ());
      sol
    in
    let r = solve false and d = solve true in
    if r.Milp.Solver.status <> d.Milp.Solver.status then
      Alcotest.failf "case %d: revised %s vs dense %s" case
        (Format.asprintf "%a" Milp.Solver.pp_status r.Milp.Solver.status)
        (Format.asprintf "%a" Milp.Solver.pp_status d.Milp.Solver.status);
    match r.Milp.Solver.status with
    | Milp.Solver.Optimal ->
      let eps = 1e-6 *. (1. +. Float.abs d.Milp.Solver.obj) in
      check_float ~eps
        (Printf.sprintf "case %d objective" case)
        d.Milp.Solver.obj r.Milp.Solver.obj;
      (match Milp.Model.check_feasible mdl r.Milp.Solver.values with
      | None -> ()
      | Some reason ->
        Alcotest.failf "case %d: revised point infeasible: %s" case reason)
    | _ -> ()
  done

(* Warm-start property: branch like B&B does (tighten one bound of a
   fractional-ish variable), then the child solved dual-warm from the
   parent's optimal basis must agree with a cold solve of the child. *)
let test_warm_start_property () =
  let exercised = ref 0 in
  for case = 0 to 39 do
    let rng = Random.State.make [| 0x3a9; case |] in
    let mdl = random_milp case in
    let nv = Milp.Model.num_vars mdl in
    let prep = Milp.Simplex.prepare mdl in
    match Milp.Simplex.solve_prepared prep with
    | Milp.Simplex.Optimal { values; _ }, Some parent ->
      let lb, ub = Milp.Model.bounds mdl in
      let lb = Array.copy lb and ub = Array.copy ub in
      let id = Random.State.int rng nv in
      let x = values.(id) in
      (* branch down or up around the parent's value *)
      if Random.State.bool rng then ub.(id) <- Float.max lb.(id) (Float.floor x)
      else lb.(id) <- Float.min ub.(id) (Float.ceil x);
      let attempts0 = Milp.Simplex.cumulative_warm_attempts () in
      let warm, _ = Milp.Simplex.solve_prepared ~lb ~ub ~warm:parent prep in
      Alcotest.(check bool)
        (Printf.sprintf "case %d warm start attempted" case)
        true
        (Milp.Simplex.cumulative_warm_attempts () > attempts0);
      let cold, _ = Milp.Simplex.solve_prepared ~lb ~ub prep in
      (match (warm, cold) with
      | ( Milp.Simplex.Optimal { obj = wobj; _ },
          Milp.Simplex.Optimal { obj = cobj; _ } ) ->
        incr exercised;
        let eps = 1e-6 *. (1. +. Float.abs cobj) in
        check_float ~eps
          (Printf.sprintf "case %d warm vs cold objective" case)
          cobj wobj
      | Milp.Simplex.Infeasible, Milp.Simplex.Infeasible -> ()
      | _ ->
        Alcotest.failf "case %d: warm and cold child solves disagree" case)
    | _ -> Alcotest.failf "case %d: parent LP not optimal with basis" case
  done;
  Alcotest.(check bool) "some optimal children exercised" true (!exercised > 20)

(* Beale's classical cycling LP: Dantzig pricing cycles forever on it
   at a degenerate vertex. min -3/4 a + 150 b - 1/50 c + 6 d subject to
   two degenerate rows and c <= 1; the optimum is -1/20 at
   a = 1/25, c = 1. *)
let beale () =
  let mdl = Milp.Model.create () in
  let a = Milp.Model.continuous mdl "a" in
  let b = Milp.Model.continuous mdl "b" in
  let c = Milp.Model.continuous mdl "c" in
  let d = Milp.Model.continuous mdl "d" in
  let t l = Milp.Linexpr.of_terms (List.map (fun (k, v) -> (k, v.Milp.Model.vid)) l) in
  Milp.Model.add_cons mdl
    (t [ (0.25, a); (-60., b); (-0.04, c); (9., d) ])
    Milp.Model.Le 0.;
  Milp.Model.add_cons mdl
    (t [ (0.5, a); (-90., b); (-0.02, c); (3., d) ])
    Milp.Model.Le 0.;
  Milp.Model.add_cons mdl (t [ (1., c) ]) Milp.Model.Le 1.;
  Milp.Model.set_objective mdl Milp.Model.Minimize
    (t [ (-0.75, a); (150., b); (-0.02, c); (6., d) ]);
  mdl

let test_anti_cycling () =
  let mdl = beale () in
  let prep = Milp.Simplex.prepare mdl in
  (* a degen_limit beyond the iteration budget disables the Bland
     fallback: Dantzig pricing must then cycle until the budget runs
     out, which is exactly what the fallback exists to prevent *)
  (match Milp.Simplex.solve_prepared ~degen_limit:max_int prep with
  | Milp.Simplex.Iter_limit, _ -> ()
  | _ -> Alcotest.fail "expected a cycle without the Bland fallback");
  (* degen_limit 0: the first degenerate pivot flips to Bland's rule,
     which is guaranteed to terminate; the default limit must also stay
     well inside the iteration budget *)
  List.iter
    (fun degen_limit ->
      match Milp.Simplex.solve_prepared ?degen_limit prep with
      | Milp.Simplex.Optimal { obj; _ }, _ ->
        check_float
          (Printf.sprintf "beale optimum (degen_limit %s)"
             (match degen_limit with Some k -> string_of_int k | None -> "default"))
          (-0.05) obj
      | Milp.Simplex.Iter_limit, _ ->
        Alcotest.failf "cycled under degen_limit %s"
          (match degen_limit with Some k -> string_of_int k | None -> "default")
      | _ -> Alcotest.fail "expected optimal")
    [ Some 0; Some 5; None ]

(* Regression for the dual Bland fallback: with degen_limit 0 the
   first degenerate pivot flips both ratio tests to Bland mode, which
   must still honour the dual min-ratio requirement — a non-min-ratio
   dual pivot breaks dual feasibility and silently understates the
   objective. Warm-started children under forced Bland must therefore
   agree with default cold solves. *)
let test_dual_bland_min_ratio () =
  for case = 0 to 39 do
    let rng = Random.State.make [| 0xb1a4d; case |] in
    let mdl = random_milp case in
    let nv = Milp.Model.num_vars mdl in
    let prep = Milp.Simplex.prepare mdl in
    match Milp.Simplex.solve_prepared prep with
    | Milp.Simplex.Optimal { values; _ }, Some parent ->
      let lb, ub = Milp.Model.bounds mdl in
      let lb = Array.copy lb and ub = Array.copy ub in
      let id = Random.State.int rng nv in
      let x = values.(id) in
      if Random.State.bool rng then ub.(id) <- Float.max lb.(id) (Float.floor x)
      else lb.(id) <- Float.min ub.(id) (Float.ceil x);
      let warm, _ =
        Milp.Simplex.solve_prepared ~lb ~ub ~degen_limit:0 ~warm:parent prep
      in
      let cold, _ = Milp.Simplex.solve_prepared ~lb ~ub prep in
      (match (warm, cold) with
      | ( Milp.Simplex.Optimal { obj = wobj; _ },
          Milp.Simplex.Optimal { obj = cobj; _ } ) ->
        let eps = 1e-6 *. (1. +. Float.abs cobj) in
        check_float ~eps
          (Printf.sprintf "case %d bland warm vs cold objective" case)
          cobj wobj
      | Milp.Simplex.Infeasible, Milp.Simplex.Infeasible -> ()
      | _ -> Alcotest.failf "case %d: bland warm and cold disagree" case)
    | _ -> Alcotest.failf "case %d: parent LP not optimal with basis" case
  done

(* Basis repair: a structurally singular selection (duplicate column)
   must be repaired with slack columns rather than raise, the repair
   must be visible through [bcols], and the repaired factorization must
   actually solve. *)
let test_singular_basis_repair () =
  let mdl = Milp.Model.create () in
  let x = Milp.Model.continuous ~ub:1. mdl "x" in
  let t l =
    Milp.Linexpr.of_terms (List.map (fun (k, v) -> (k, v.Milp.Model.vid)) l)
  in
  Milp.Model.add_cons mdl (t [ (1., x) ]) Milp.Model.Le 1.;
  Milp.Model.add_cons mdl (t [ (1., x) ]) Milp.Model.Le 2.;
  Milp.Model.set_objective mdl Milp.Model.Maximize (t [ (1., x) ]);
  let sp = Milp.Sparse.of_model mdl in
  (* both positions claim structural column 0: singular, needs repair *)
  let bas = Milp.Basis.create sp [| 0; 0 |] in
  let cols = Milp.Basis.bcols bas in
  Alcotest.(check bool) "repaired columns distinct" true (cols.(0) <> cols.(1));
  let rhs = Array.make 2 0. in
  Milp.Sparse.axpy_col sp cols.(0) 1. rhs;
  let sol = Milp.Basis.ftran bas rhs in
  check_float "repaired basis solves: e_0 (0)" 1. sol.(0);
  check_float "repaired basis solves: e_0 (1)" 0. sol.(1)

let test_heap_tiebreak () =
  let better = Milp.Branch_bound.better_key in
  Alcotest.(check bool) "strictly better bound wins" true (better (2., 0) (1., 9));
  Alcotest.(check bool) "worse bound loses" false (better (1., 9) (2., 0));
  Alcotest.(check bool) "exact tie: deeper wins" true (better (1., 3) (1., 2));
  Alcotest.(check bool) "exact tie: shallower loses" false (better (1., 2) (1., 3));
  (* last-bit noise in the LP objective must not defeat the tiebreak *)
  let noisy = 1. +. 1e-13 in
  Alcotest.(check bool) "noise tie: deeper wins" true (better (1., 3) (noisy, 2));
  Alcotest.(check bool) "noise tie: shallower loses" false (better (noisy, 2) (1., 3));
  Alcotest.(check bool) "infinite root beats finite" true
    (better (infinity, 0) (5., 9));
  Alcotest.(check bool) "equal infinities: deeper wins" true
    (better (infinity, 1) (infinity, 0))

(* The solver reports optimal-basis statuses for pure LPs, lifted back
   through presolve to original variable ids. *)
let test_solver_statuses () =
  let mdl = random_milp 2 in
  (* strip integrality by rebuilding as LP via bounds-only relaxation:
     case 2 of random_milp has nint variables; solve its LP relaxation
     directly through the solver by relaxing integers is not exposed, so
     use a case with no integer variables instead. *)
  let rec find_lp case =
    let m = random_milp case in
    if Milp.Model.num_int_vars m = 0 then m else find_lp (case + 7)
  in
  let mdl = if Milp.Model.num_int_vars mdl = 0 then mdl else find_lp 3 in
  let sol = Milp.Solver.solve mdl in
  Alcotest.(check int)
    "statuses cover all original variables"
    (Milp.Model.num_vars mdl)
    (Array.length sol.Milp.Solver.statuses)

let suite =
  [
    ("64 random MILPs: revised vs dense", `Quick, test_differential);
    ("warm-started child equals cold solve", `Quick, test_warm_start_property);
    ("anti-cycling on Beale's LP", `Quick, test_anti_cycling);
    ("dual Bland keeps the min-ratio test", `Quick, test_dual_bland_min_ratio);
    ("singular basis is slack-repaired", `Quick, test_singular_basis_repair);
    ("heap tie-break tolerance", `Quick, test_heap_tiebreak);
    ("solver reports postsolved basis statuses", `Quick, test_solver_statuses);
  ]
