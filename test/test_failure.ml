(* Scenario, probability, renewal-reward, trace and enumeration tests. *)

let check_int = Alcotest.(check int)
let check_float ?(eps = 1e-9) what expected got =
  Alcotest.(check (float eps)) what expected got

let fig1 = Wan.Generators.fig1 ()

let test_scenario_basics () =
  let s = Failure.Scenario.of_links fig1 [ (0, 0); (2, 0) ] in
  check_int "failed" 2 (Failure.Scenario.num_failed s);
  Alcotest.(check bool) "down" true (Failure.Scenario.is_down s ~lag:0 ~link:0);
  Alcotest.(check bool) "up" false (Failure.Scenario.is_down s ~lag:1 ~link:0);
  check_float "capacity of failed lag" 0. (Failure.Scenario.lag_capacity fig1 s 0);
  check_float "capacity of live lag" 8. (Failure.Scenario.lag_capacity fig1 s 1);
  Alcotest.(check bool) "lag down" true (Failure.Scenario.lag_down fig1 s 0);
  Alcotest.(check bool) "path down" true (Failure.Scenario.path_down fig1 s [ 1; 2 ]);
  Alcotest.(check bool) "path up" false (Failure.Scenario.path_down fig1 s [ 1; 4 ])

let test_scenario_partial_lag () =
  (* a two-link LAG with one failed link is degraded but not down *)
  let t =
    Wan.Topology.create ~name:"t" ~num_nodes:2
      [ Wan.Lag.uniform ~id:0 ~src:0 ~dst:1 ~n:2 ~capacity:5. ~fail_prob:0.1 ]
  in
  let s = Failure.Scenario.of_links t [ (0, 0) ] in
  check_float "half capacity" 5. (Failure.Scenario.lag_capacity t s 0);
  Alcotest.(check bool) "not down" false (Failure.Scenario.lag_down t s 0);
  let s2 = Failure.Scenario.of_links t [ (0, 0); (0, 1) ] in
  Alcotest.(check bool) "down" true (Failure.Scenario.lag_down t s2 0)

let test_scenario_prob () =
  (* fig1: all links have fail_prob 0.01 *)
  let s0 = Failure.Scenario.empty in
  check_float ~eps:1e-12 "all up" (Float.pow 0.99 5.) (Failure.Scenario.prob fig1 s0);
  let s1 = Failure.Scenario.of_links fig1 [ (0, 0) ] in
  check_float ~eps:1e-12 "one down" (0.01 *. Float.pow 0.99 4.)
    (Failure.Scenario.prob fig1 s1)

let test_max_simultaneous () =
  let n, s = Failure.Probability.max_simultaneous_failures fig1 ~threshold:1e-6 in
  (* each failure costs about log10(0.01/0.99) ~ -2; base ~ -0.02;
     threshold 1e-6 -> 3 failures fit (10^-6 vs p = 1e-6 * ...) *)
  check_int "count vs scenario" n (Failure.Scenario.num_failed s);
  Alcotest.(check bool) "scenario above threshold" true
    (Failure.Scenario.prob fig1 s >= 1e-6);
  (* monotone in the threshold *)
  let n2, _ = Failure.Probability.max_simultaneous_failures fig1 ~threshold:1e-10 in
  Alcotest.(check bool) "monotone" true (n2 >= n);
  let n3, _ = Failure.Probability.max_simultaneous_failures fig1 ~threshold:0.5 in
  check_int "strict threshold" 0 n3

let test_renewal_estimate () =
  (* link down during [2,3] and [5,7] over horizon 10: p = 3/10 *)
  let events =
    [ { Failure.Renewal.down_at = 2.; up_at = 3. }; { Failure.Renewal.down_at = 5.; up_at = 7. } ]
  in
  check_float "downtime fraction" 0.3 (Failure.Renewal.estimate ~horizon:10. events);
  check_float "mttr" 1.5 (Failure.Renewal.mttr events);
  check_float "mtbf" 3. (Failure.Renewal.mtbf events);
  (* ratio form: one cycle [3,7], downtime 2 -> 0.5 *)
  check_float "ratio" 0.5 (Failure.Renewal.estimate_ratio events);
  (* clipping at the horizon *)
  check_float "clipped" 0.2 (Failure.Renewal.estimate ~horizon:5. events)

let test_renewal_validation () =
  let bad events =
    match Failure.Renewal.estimate ~horizon:10. events with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad [ { Failure.Renewal.down_at = 5.; up_at = 4. } ];
  bad
    [
      { Failure.Renewal.down_at = 2.; up_at = 6. };
      { Failure.Renewal.down_at = 5.; up_at = 7. };
    ]

let test_trace_estimation_converges () =
  (* true p = mttr / (mtbf + mttr) = 1 / (9 + 1) = 0.1 *)
  let events =
    Failure.Trace.exponential ~seed:11 ~mean_uptime:9. ~mean_downtime:1.
      ~horizon:20000. ()
  in
  let est = Failure.Renewal.estimate ~horizon:20000. events in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f within 20%% of 0.1" est)
    true
    (Float.abs (est -. 0.1) < 0.02)

let test_calibrate_topology () =
  let t = Wan.Generators.africa_like ~seed:2 ~n:8 () in
  let t' = Failure.Trace.calibrate_topology ~seed:5 ~horizon:50000. t in
  check_int "same lags" (Wan.Topology.num_lags t) (Wan.Topology.num_lags t');
  (* estimated probabilities should correlate with configured ones *)
  let pairs = ref [] in
  Array.iteri
    (fun e (lag : Wan.Lag.t) ->
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          let l' = (Wan.Topology.lag t' e).Wan.Lag.links.(i) in
          pairs := (l.Wan.Lag.fail_prob, l'.Wan.Lag.fail_prob) :: !pairs)
        lag.Wan.Lag.links)
    (Wan.Topology.lags t);
  let rel_errors =
    List.map (fun (a, b) -> Float.abs (a -. b) /. Float.max a 1e-9) !pairs
  in
  let mean = List.fold_left ( +. ) 0. rel_errors /. float_of_int (List.length rel_errors) in
  Alcotest.(check bool)
    (Printf.sprintf "mean relative error %.2f < 0.5" mean)
    true (mean < 0.5)

let test_enumerate_up_to_k () =
  (* fig1 has 5 links: 1 + 5 + 10 scenarios for k = 2 *)
  check_int "count" 16 (Failure.Enumerate.count_up_to_k fig1 ~k:2);
  let all = Failure.Enumerate.up_to_k fig1 ~k:2 in
  check_int "enumerated" 16 (List.length all);
  Alcotest.(check bool) "includes empty" true
    (List.exists (Failure.Scenario.equal Failure.Scenario.empty) all);
  (* distinct *)
  let sorted = List.sort_uniq Failure.Scenario.compare all in
  check_int "distinct" 16 (List.length sorted)

let test_enumerate_above_threshold () =
  let scenarios = Failure.Enumerate.above_threshold fig1 ~threshold:1e-4 in
  (* every enumerated scenario qualifies *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "qualifies" true (Failure.Scenario.prob fig1 s >= 1e-4))
    scenarios;
  (* and the count matches brute force over k <= 5 *)
  let brute =
    List.filter
      (fun s -> Failure.Scenario.prob fig1 s >= 1e-4)
      (Failure.Enumerate.up_to_k fig1 ~k:5)
  in
  check_int "matches brute force" (List.length brute) (List.length scenarios)

let test_lag_failures () =
  let t =
    Wan.Topology.create ~name:"t" ~num_nodes:3
      [
        Wan.Lag.uniform ~id:0 ~src:0 ~dst:1 ~n:2 ~capacity:5. ~fail_prob:0.1;
        Wan.Lag.uniform ~id:1 ~src:1 ~dst:2 ~n:3 ~capacity:5. ~fail_prob:0.1;
      ]
  in
  let ss = Failure.Enumerate.lag_failures_up_to_k t ~k:1 in
  (* empty, lag0 fully down, lag1 fully down *)
  check_int "count" 3 (List.length ss);
  Alcotest.(check bool) "lag0 scenario downs whole lag" true
    (List.exists (fun s -> Failure.Scenario.num_failed s = 2) ss);
  Alcotest.(check bool) "lag1 scenario downs whole lag" true
    (List.exists (fun s -> Failure.Scenario.num_failed s = 3) ss)

let test_srlg () =
  let g = Failure.Srlg.make ~name:"conduit" ~prob:0.05 [ (0, 0); (1, 0) ] in
  Failure.Srlg.validate fig1 g;
  let ss = Failure.Srlg.scenarios fig1 [ g ] in
  check_int "two combinations" 2 (List.length ss);
  let probs = List.map snd ss in
  check_float "probs sum to 1" 1. (List.fold_left ( +. ) 0. probs);
  (match Failure.Srlg.make ~name:"x" ~prob:0.5 [ (0, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "singleton rejected");
  match Failure.Srlg.scenarios fig1 [ g; g ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlap rejected"

let test_always_down_links () =
  (* A link with fail_prob = 1 used to make per_link_cost return +inf
     (log 1 - log1p(-1)), which poisoned the greedy running sum in
     max_simultaneous_failures with inf/nan. Always-down links are now
     mandatory members of every positive-probability scenario. *)
  let t =
    Wan.Topology.create ~name:"alwaysdown" ~num_nodes:3
      [
        Wan.Lag.uniform ~id:0 ~src:0 ~dst:1 ~n:1 ~capacity:10. ~fail_prob:1.0;
        Wan.Lag.uniform ~id:1 ~src:1 ~dst:2 ~n:2 ~capacity:10. ~fail_prob:0.01;
      ]
  in
  let costs = Failure.Probability.per_link_cost t in
  List.iter
    (fun ((lag, _), c) ->
      Alcotest.(check bool)
        (Printf.sprintf "cost of lag %d not nan" lag)
        false (Float.is_nan c);
      if lag = 0 then
        Alcotest.(check bool) "always-down cost is +inf" true (c = Float.infinity))
    costs;
  (* all-up has probability zero with an always-down link present *)
  Alcotest.(check bool) "all-up log prob -inf" true
    (Failure.Probability.log_prob_all_up t = Float.neg_infinity);
  let n, s = Failure.Probability.max_simultaneous_failures t ~threshold:1e-3 in
  Alcotest.(check bool) "down link is mandatory" true
    (Failure.Scenario.is_down s ~lag:0 ~link:0);
  check_int "count matches scenario" n (Failure.Scenario.num_failed s);
  Alcotest.(check bool) "count includes mandatory failure" true (n >= 1);
  Alcotest.(check bool) "scenario above threshold" true
    (Failure.Scenario.prob t s >= 1e-3)

let test_threshold_one_boundary () =
  (* threshold = 1.0 is the documented edge of the valid range *)
  let n, s = Failure.Probability.max_simultaneous_failures fig1 ~threshold:1.0 in
  check_int "no fig1 scenario has probability 1" 0 n;
  check_int "empty scenario" 0 (Failure.Scenario.num_failed s);
  (* with an always-down link and deterministic companions, the mandatory
     scenario itself has probability exactly 1 *)
  let t =
    Wan.Topology.create ~name:"det" ~num_nodes:3
      [
        Wan.Lag.uniform ~id:0 ~src:0 ~dst:1 ~n:1 ~capacity:10. ~fail_prob:1.0;
        Wan.Lag.uniform ~id:1 ~src:1 ~dst:2 ~n:1 ~capacity:10. ~fail_prob:0.0;
      ]
  in
  let n1, s1 = Failure.Probability.max_simultaneous_failures t ~threshold:1.0 in
  check_int "mandatory link counted" 1 n1;
  check_float "probability exactly 1" 1. (Failure.Scenario.prob t s1);
  (* out-of-range thresholds still rejected *)
  (match Failure.Probability.max_simultaneous_failures fig1 ~threshold:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threshold > 1 accepted");
  match Failure.Probability.max_simultaneous_failures fig1 ~threshold:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threshold 0 accepted"

(* qcheck: greedy max_simultaneous_failures is consistent with enumeration
   on tiny topologies *)
let prop_greedy_matches_enumeration =
  QCheck2.Test.make ~name:"greedy max-failures matches enumeration" ~count:50
    QCheck2.Gen.(
      let* seed = int_range 0 1000 in
      let* thr_exp = int_range 1 8 in
      return (seed, thr_exp))
    (fun (seed, thr_exp) ->
      let rng = Random.State.make [| seed |] in
      (* ring of 4 with random per-link failure probabilities *)
      let lags =
        List.init 4 (fun id ->
            Wan.Lag.uniform ~id ~src:id ~dst:((id + 1) mod 4) ~n:1 ~capacity:10.
              ~fail_prob:(0.001 +. Random.State.float rng 0.3))
      in
      let t = Wan.Topology.create ~name:"q" ~num_nodes:4 lags in
      let threshold = Float.pow 10. (-.float_of_int thr_exp) in
      let greedy_n, _ = Failure.Probability.max_simultaneous_failures t ~threshold in
      let best =
        List.fold_left
          (fun acc s ->
            if Failure.Scenario.prob t s >= threshold then
              max acc (Failure.Scenario.num_failed s)
            else acc)
          0
          (Failure.Enumerate.up_to_k t ~k:4)
      in
      greedy_n = best)

let test_enumerate_guards () =
  (* count guard: a 30-link topology at k=5 exceeds the cap *)
  let t = Wan.Generators.africa_like ~seed:5 ~n:12 () in
  (match Failure.Enumerate.up_to_k t ~k:5 with
  | exception Invalid_argument _ -> ()
  | l ->
    (* if it fits, the count helper must agree *)
    Alcotest.(check int) "count agrees" (Failure.Enumerate.count_up_to_k t ~k:5)
      (List.length l));
  (* above_threshold limit parameter *)
  match Failure.Enumerate.above_threshold ~limit:2 fig1 ~threshold:1e-6 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "limit enforced"

let test_enumerate_counting_properties () =
  (* up_to_k emits exactly count_up_to_k scenarios, all distinct, all
     within the failure budget — on fig1 and a generated WAN *)
  let topos =
    [ ("fig1", fig1); ("africa8", Wan.Generators.africa_like ~seed:5 ~n:8 ()) ]
  in
  List.iter
    (fun (name, t) ->
      for k = 0 to 3 do
        let label fmt = Printf.sprintf ("%s k=%d " ^^ fmt) name k in
        let l = Failure.Enumerate.up_to_k t ~k in
        check_int (label "count matches") (Failure.Enumerate.count_up_to_k t ~k)
          (List.length l);
        check_int (label "no duplicates") (List.length l)
          (List.length (List.sort_uniq Failure.Scenario.compare l));
        List.iter
          (fun s ->
            Alcotest.(check bool) (label "within budget") true
              (Failure.Scenario.num_failed s <= k))
          l;
        Alcotest.(check bool) (label "includes empty") true
          (List.exists (Failure.Scenario.equal Failure.Scenario.empty) l)
      done)
    topos

let test_binomial_matches_pascal () =
  (* float Pascal triangle is exact below 2^53, far above C(30, 15) *)
  let tbl = Array.make_matrix 31 31 0. in
  for n = 0 to 30 do
    tbl.(n).(0) <- 1.;
    for k = 1 to n do
      tbl.(n).(k) <- tbl.(n - 1).(k - 1) +. (if k <= n - 1 then tbl.(n - 1).(k) else 0.)
    done
  done;
  for n = 0 to 30 do
    for k = 0 to n do
      check_float ~eps:0.
        (Printf.sprintf "C(%d,%d)" n k)
        tbl.(n).(k)
        (float_of_int (Failure.Enumerate.binomial n k))
    done
  done;
  check_int "k < 0" 0 (Failure.Enumerate.binomial 5 (-1));
  check_int "k > n" 0 (Failure.Enumerate.binomial 5 6);
  check_int "C(0,0)" 1 (Failure.Enumerate.binomial 0 0)

let test_incr_matches_batch_on_prefixes () =
  (* the streaming estimator must agree with the batch walk to the last
     float bit on EVERY prefix of a generated trace, for every statistic *)
  let events =
    Failure.Trace.exponential ~seed:23 ~mean_uptime:7. ~mean_downtime:2.
      ~horizon:500. ()
  in
  Alcotest.(check bool) "trace non-trivial" true (List.length events > 10);
  let check_prefix prefix =
    let incr = Failure.Renewal.Incr.of_events prefix in
    let n = List.length prefix in
    check_int (Printf.sprintf "count prefix %d" n) n
      (Failure.Renewal.Incr.count incr);
    let horizon =
      match List.rev prefix with
      | [] -> 1.
      | last :: _ -> last.Failure.Renewal.up_at +. 0.5
    in
    check_float ~eps:0.
      (Printf.sprintf "estimate prefix %d" n)
      (Failure.Renewal.estimate ~horizon prefix)
      (Failure.Renewal.Incr.estimate ~horizon incr);
    if n >= 1 then
      check_float ~eps:0.
        (Printf.sprintf "mttr prefix %d" n)
        (Failure.Renewal.mttr prefix)
        (Failure.Renewal.Incr.mttr incr);
    if n >= 2 then begin
      check_float ~eps:0.
        (Printf.sprintf "mtbf prefix %d" n)
        (Failure.Renewal.mtbf prefix)
        (Failure.Renewal.Incr.mtbf incr);
      check_float ~eps:0.
        (Printf.sprintf "ratio prefix %d" n)
        (Failure.Renewal.estimate_ratio prefix)
        (Failure.Renewal.Incr.estimate_ratio incr)
    end
  in
  let rec prefixes acc = function
    | [] -> [ List.rev acc ]
    | e :: rest -> List.rev acc :: prefixes (e :: acc) rest
  in
  List.iter check_prefix (prefixes [] events)

let test_incr_open_outage () =
  (* an open outage is clipped at the horizon exactly like a batch event
     that straddles it *)
  let closed = [ { Failure.Renewal.down_at = 2.; up_at = 3. } ] in
  let incr =
    Failure.Renewal.Incr.down (Failure.Renewal.Incr.of_events closed) ~at:6.
  in
  Alcotest.(check bool) "is down" true (Failure.Renewal.Incr.is_down incr);
  check_int "open outage not counted" 1 (Failure.Renewal.Incr.count incr);
  (* batch equivalent at horizon 10: pretend the outage ends at the horizon *)
  check_float ~eps:0. "open clipped"
    (Failure.Renewal.estimate ~horizon:10.
       (closed @ [ { Failure.Renewal.down_at = 6.; up_at = 10. } ]))
    (Failure.Renewal.Incr.estimate ~horizon:10. incr);
  (* horizon before the open outage starts: no extra downtime *)
  check_float ~eps:0. "horizon before open down"
    (Failure.Renewal.estimate ~horizon:5. closed)
    (Failure.Renewal.Incr.estimate ~horizon:5. incr);
  (* closing the outage matches the batch trace *)
  let closed' = closed @ [ { Failure.Renewal.down_at = 6.; up_at = 8. } ] in
  let incr' = Failure.Renewal.Incr.up incr ~at:8. in
  check_float ~eps:0. "after repair"
    (Failure.Renewal.estimate ~horizon:10. closed')
    (Failure.Renewal.Incr.estimate ~horizon:10. incr')

let test_incr_validation () =
  let open Failure.Renewal.Incr in
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> up empty ~at:3.);
  bad (fun () -> down (down empty ~at:2.) ~at:3.);
  bad (fun () -> up (down empty ~at:2.) ~at:2.);
  bad (fun () ->
      down (add empty { Failure.Renewal.down_at = 2.; up_at = 5. }) ~at:4.);
  bad (fun () -> estimate ~horizon:0. empty);
  bad (fun () ->
      estimate ~horizon:3.
        (add empty { Failure.Renewal.down_at = 2.; up_at = 5. }))

let test_scenario_validation () =
  (match Failure.Scenario.of_links fig1 [ (99, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad lag id rejected");
  (match Failure.Scenario.of_links fig1 [ (0, 7) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad link idx rejected");
  match Failure.Scenario.of_links fig1 [ (0, 0); (0, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate rejected"

let test_probability_zero_prob_links () =
  (* a never-failing link contributes log(1) = 0 when up and -inf when down *)
  let t =
    Wan.Topology.create ~name:"z" ~num_nodes:2
      [ Wan.Lag.make ~id:0 ~src:0 ~dst:1
          [ { Wan.Lag.link_capacity = 5.; fail_prob = 0. };
            { Wan.Lag.link_capacity = 5.; fail_prob = 0.5 } ] ]
  in
  check_float "all up prob" 0.5 (Failure.Scenario.prob t Failure.Scenario.empty);
  let s = Failure.Scenario.of_links t [ (0, 0) ] in
  check_float "impossible scenario" 0. (Failure.Scenario.prob t s)


let suite =
  [
    ("scenario basics", `Quick, test_scenario_basics);
    ("scenario partial lag", `Quick, test_scenario_partial_lag);
    ("scenario probability", `Quick, test_scenario_prob);
    ("max simultaneous failures", `Quick, test_max_simultaneous);
    ("always-down links", `Quick, test_always_down_links);
    ("threshold = 1 boundary", `Quick, test_threshold_one_boundary);
    ("renewal estimate", `Quick, test_renewal_estimate);
    ("renewal validation", `Quick, test_renewal_validation);
    ("incremental matches batch on prefixes", `Quick, test_incr_matches_batch_on_prefixes);
    ("incremental open outage", `Quick, test_incr_open_outage);
    ("incremental validation", `Quick, test_incr_validation);
    ("trace estimation converges", `Quick, test_trace_estimation_converges);
    ("calibrate topology", `Quick, test_calibrate_topology);
    ("enumerate up to k", `Quick, test_enumerate_up_to_k);
    ("enumerate above threshold", `Quick, test_enumerate_above_threshold);
    ("lag failures", `Quick, test_lag_failures);
    ("srlg", `Quick, test_srlg);
    ("enumerate guards", `Quick, test_enumerate_guards);
    ("enumerate counting properties", `Quick, test_enumerate_counting_properties);
    ("binomial matches pascal triangle", `Quick, test_binomial_matches_pascal);
    ("scenario validation", `Quick, test_scenario_validation);
    ("zero-probability links", `Quick, test_probability_zero_prob_links);
    QCheck_alcotest.to_alcotest prop_greedy_matches_enumeration;
  ]
