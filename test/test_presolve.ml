(* Tests for the MILP presolve/postsolve engine: each reduction in
   isolation, the postsolve index mapping, a presolve-on/off differential
   suite over random MILPs, and the bilevel encodings' known optima
   (big-M tightening must never cut off the known worst case). *)

open Milp

let check_float what expected got =
  Alcotest.(check (float 1e-6)) what expected got

let reduced_exn = function
  | Presolve.Reduced { model; post; stats } -> (model, post, stats)
  | Presolve.Infeasible _ ->
    Alcotest.fail "expected a reduced model, got infeasible"

let solve_with presolve m =
  Solver.solve ~options:{ Solver.default_options with presolve } m

(* --- unit reductions --------------------------------------------------- *)

let test_singleton_row () =
  (* 2x <= 10 is absorbed into the bound ub(x) = 5 and removed *)
  let m = Model.create () in
  let x = Model.continuous ~ub:50. m "x" in
  let y = Model.continuous ~ub:50. m "y" in
  Model.add_cons m (Linexpr.var ~coeff:2. x.vid) Model.Le 10.;
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Le 8.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]);
  let rm, post, stats = reduced_exn (Presolve.presolve m) in
  Alcotest.(check bool) "row removed" true (Model.num_cons rm < Model.num_cons m);
  Alcotest.(check bool) "stats counted it" true (stats.Presolve.rows_removed >= 1);
  (match Postsolve.reduced_of_orig post x.vid with
  | Some rx ->
    let _, ub = Model.bounds rm in
    Alcotest.(check bool) "ub tightened to 5" true (ub.(rx) <= 5. +. 1e-6)
  | None -> ());
  check_float "optimum unchanged" 8. (solve_with true m).Solver.obj

let test_fixed_substitution () =
  (* 2x = 6 fixes x at 3; the reduced model drops the column *)
  let m = Model.create () in
  let x = Model.continuous ~ub:50. m "x" in
  let y = Model.continuous ~ub:50. m "y" in
  Model.add_cons m (Linexpr.var ~coeff:2. x.vid) Model.Eq 6.;
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Le 10.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]);
  let rm, post, _ = reduced_exn (Presolve.presolve m) in
  Alcotest.(check bool) "column dropped" true
    (Model.num_vars rm < Model.num_vars m);
  (match Postsolve.value_of_fixed post x.vid with
  | Some v -> check_float "fixed at 3" 3. v
  | None -> Alcotest.fail "x should be fixed");
  let sol = solve_with true m in
  check_float "optimum through substitution" 10. sol.Solver.obj;
  Alcotest.(check int) "values restored to original indexing"
    (Model.num_vars m)
    (Array.length sol.Solver.values);
  check_float "restored fixed value" 3. sol.Solver.values.(x.vid);
  Alcotest.(check bool) "restored point feasible on the original" true
    (Model.check_feasible ~tol:1e-5 m sol.Solver.values = None)

let test_redundant_row () =
  (* x <= 100 with ub(x) = 5 can never bind *)
  let m = Model.create () in
  let x = Model.continuous ~ub:5. m "x" in
  Model.add_cons m (Linexpr.var x.vid) Model.Le 100.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  let rm, _, _ = reduced_exn (Presolve.presolve m) in
  Alcotest.(check int) "no rows survive" 0 (Model.num_cons rm);
  check_float "optimum unchanged" 5. (solve_with true m).Solver.obj

let test_forcing_row () =
  (* x + y >= 10 with ub 5 each forces both to their upper bounds *)
  let m = Model.create () in
  let x = Model.continuous ~ub:5. m "x" in
  let y = Model.continuous ~ub:5. m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Ge 10.;
  Model.set_objective m Model.Minimize
    (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]);
  let _, _, stats = reduced_exn (Presolve.presolve m) in
  Alcotest.(check bool) "both columns fixed" true
    (stats.Presolve.cols_fixed >= 2);
  let sol = solve_with true m in
  check_float "x forced to 5" 5. sol.Solver.values.(x.vid);
  check_float "y forced to 5" 5. sol.Solver.values.(y.vid)

let test_infeasible_row () =
  let m = Model.create () in
  let x = Model.continuous ~ub:5. m "x" in
  let y = Model.continuous ~ub:5. m "y" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (1., y.vid) ]) Model.Ge 11.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  (match Presolve.presolve m with
  | Presolve.Infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "expected infeasible");
  Alcotest.(check bool) "solver agrees" true
    ((solve_with true m).Solver.status = Solver.Infeasible)

let test_integer_infeasible () =
  (* 2x = 5 with x integer: the implied fixing x = 2.5 is fractional *)
  let m = Model.create () in
  let x = Model.integer ~ub:10. m "x" in
  Model.add_cons m (Linexpr.var ~coeff:2. x.vid) Model.Eq 5.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  (match Presolve.presolve m with
  | Presolve.Infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "expected infeasible");
  Alcotest.(check bool) "statuses agree with no presolve" true
    ((solve_with true m).Solver.status = (solve_with false m).Solver.status)

let test_bigm_tightening () =
  (* x <= 4 plus the big-M row x + 9b <= 10: the M is recomputed from the
     propagated activity bound, giving x + 3b <= 4 *)
  let m = Model.create () in
  let b = Model.binary m "b" in
  let x = Model.continuous ~ub:10. m "x" in
  Model.add_cons m (Linexpr.var x.vid) Model.Le 4.;
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (9., b.vid) ]) Model.Le 10.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (1., x.vid); (1., b.vid) ]);
  let _, _, stats = reduced_exn (Presolve.presolve m) in
  Alcotest.(check bool) "a big-M was tightened" true
    (stats.Presolve.big_ms_tightened >= 1);
  (* b = 0 -> x <= 4 (obj 4) beats b = 1 -> x <= 1 (obj 2); tightening
     must not cut either branch off *)
  check_float "optimum with presolve" 4. (solve_with true m).Solver.obj;
  check_float "optimum without" 4. (solve_with false m).Solver.obj

let test_probing_fixes_binary () =
  (* b = 1 implies x <= 2 (first row) and x >= 3 (second row): only
     probing sees the conjunction and fixes b = 0 *)
  let m = Model.create () in
  let b = Model.binary m "b" in
  let x = Model.continuous ~ub:10. m "x" in
  Model.add_cons m (Linexpr.of_terms [ (1., x.vid); (5., b.vid) ]) Model.Le 7.;
  Model.add_cons m (Linexpr.of_terms [ (-1., x.vid); (5., b.vid) ]) Model.Le 2.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  let _, post, stats = reduced_exn (Presolve.presolve m) in
  Alcotest.(check bool) "probing ran" true (stats.Presolve.probed >= 1);
  Alcotest.(check bool) "probing fixed the binary" true
    (stats.Presolve.probe_fixed >= 1);
  (match Postsolve.value_of_fixed post b.vid with
  | Some v -> check_float "b fixed at 0" 0. v
  | None -> Alcotest.fail "b should be fixed by probing");
  check_float "optimum with presolve" 7. (solve_with true m).Solver.obj;
  check_float "optimum without" 7. (solve_with false m).Solver.obj

let test_warm_start_and_hints_translate () =
  (* warm starts and plunge hints are given in original indexing; the
     solver must translate them into the reduced space (x is fixed by its
     bounds and vanishes from the reduced model) *)
  let m = Model.create () in
  let x = Model.continuous ~lb:3. ~ub:3. m "x" in
  let a = Model.binary m "a" in
  let b = Model.binary m "b" in
  Model.add_cons m (Linexpr.of_terms [ (1., a.vid); (1., b.vid) ]) Model.Le 1.;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms [ (1., x.vid); (2., a.vid); (3., b.vid) ]);
  let options =
    {
      Solver.default_options with
      presolve = true;
      warm_start = Some [| 3.; 0.; 1. |];
      plunge_hints = [ [ (x.vid, 3.); (a.vid, 1.); (b.vid, 0.) ] ];
    }
  in
  let sol = Solver.solve ~options m in
  Alcotest.(check bool) "optimal" true (sol.Solver.status = Solver.Optimal);
  check_float "optimum" 6. sol.Solver.obj;
  check_float "fixed var restored" 3. sol.Solver.values.(x.vid)

let test_stats_counters_exported () =
  let names = List.map fst Solver.stats_counters in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "counter %s exported" n) true
        (List.mem n names))
    [ "simplex"; "bb-nodes"; "presolve-rows"; "presolve-cols"; "presolve-bigm" ];
  let rows0 = Presolve.cumulative_rows_removed () in
  let m = Model.create () in
  let x = Model.continuous ~ub:5. m "x" in
  Model.add_cons m (Linexpr.var x.vid) Model.Le 100.;
  Model.set_objective m Model.Maximize (Linexpr.var x.vid);
  ignore (solve_with true m);
  Alcotest.(check bool) "cumulative rows-removed counter advanced" true
    (Presolve.cumulative_rows_removed () > rows0)

(* --- differential suite: presolve on vs off on random MILPs ----------- *)

let random_model st =
  let nv = 2 + Random.State.int st 5 in
  let nc = 1 + Random.State.int st 6 in
  let m = Model.create ~name:"diff" () in
  let xs =
    Array.init nv (fun i ->
        let name = Printf.sprintf "x%d" i in
        match Random.State.int st 3 with
        | 0 ->
          Model.add_var m ~name ~kind:Model.Continuous ~lb:0.
            ~ub:(float_of_int (2 + Random.State.int st 8))
        | 1 -> Model.add_var m ~name ~kind:Model.Binary ~lb:0. ~ub:1.
        | _ ->
          Model.add_var m ~name ~kind:Model.Integer ~lb:0.
            ~ub:(float_of_int (1 + Random.State.int st 6)))
  in
  for _ = 1 to nc do
    let terms =
      Array.to_list xs
      |> List.filter_map (fun (v : Model.var) ->
             if Random.State.float st 1. < 0.7 then
               Some (Random.State.float st 8. -. 4., v.Model.vid)
             else None)
    in
    let rel =
      (* equalities with random data are usually infeasible; keep them
         rare enough that most cases exercise the optimal path *)
      match Random.State.int st 10 with
      | 0 -> Model.Eq
      | 1 | 2 | 3 -> Model.Ge
      | _ -> Model.Le
    in
    let rhs = Random.State.float st 17. -. 2. in
    Model.add_cons m (Linexpr.of_terms terms) rel rhs
  done;
  Model.set_objective m Model.Maximize
    (Linexpr.of_terms
       (Array.to_list xs
       |> List.map (fun (v : Model.var) ->
              (Random.State.float st 6. -. 3., v.Model.vid))));
  m

let test_differential () =
  let cases = 60 in
  let optimal = ref 0 in
  for case = 0 to cases - 1 do
    let st = Random.State.make [| 0x9e50; case |] in
    let m = random_model st in
    let on = solve_with true m in
    let off = solve_with false m in
    if on.Solver.status <> off.Solver.status then
      Alcotest.failf "case %d: status %a with presolve, %a without" case
        Solver.pp_status on.Solver.status Solver.pp_status off.Solver.status;
    if on.Solver.status = Solver.Optimal then begin
      incr optimal;
      let scale = 1. +. Float.abs off.Solver.obj in
      if Float.abs (on.Solver.obj -. off.Solver.obj) > 1e-5 *. scale then
        Alcotest.failf "case %d: obj %g with presolve, %g without" case
          on.Solver.obj off.Solver.obj;
      (match Model.check_feasible ~tol:1e-5 m on.Solver.values with
      | None -> ()
      | Some why ->
        Alcotest.failf "case %d: restored point infeasible: %s" case why)
    end
  done;
  (* the suite is vacuous if almost everything comes out infeasible *)
  Alcotest.(check bool)
    (Printf.sprintf "enough optimal cases (%d/%d)" !optimal cases)
    true (!optimal >= 15)

(* --- bilevel encodings: known optima survive presolve ------------------ *)

let fig1 = Wan.Generators.fig1 ()

let fig1_paths () =
  Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ]

let fig1_paths' = fig1_paths ()

let bilevel ~presolve spec envelope =
  let options = { Raha.Analysis.default_options with spec; presolve } in
  Raha.Analysis.analyze ~options fig1 fig1_paths' envelope

let spec_k1 encoding =
  {
    Raha.Bilevel.default_spec with
    Raha.Bilevel.max_failures = Some 1;
    goal = Raha.Bilevel.Max_degradation;
    encoding;
  }

let joint_envelope () =
  Traffic.Envelope.around ~slack:0.5
    (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])

let test_bilevel_strong_duality () =
  (* fig1 joint worst case is degradation 9 (test_raha); presolve's
     tightened big-Ms must not cut it off *)
  let spec = spec_k1 (Raha.Bilevel.Strong_duality { levels = 5 }) in
  let on = bilevel ~presolve:true spec (joint_envelope ()) in
  let off = bilevel ~presolve:false spec (joint_envelope ()) in
  Alcotest.(check bool) "optimal with presolve" true
    (on.Raha.Analysis.status = Solver.Optimal);
  check_float "degradation 9 with presolve" 9. on.Raha.Analysis.degradation;
  check_float "degradation 9 without" 9. off.Raha.Analysis.degradation

let test_bilevel_kkt () =
  let spec = spec_k1 Raha.Bilevel.Kkt in
  let on = bilevel ~presolve:true spec (joint_envelope ()) in
  Alcotest.(check bool) "optimal" true (on.Raha.Analysis.status = Solver.Optimal);
  check_float "degradation 9" 9. on.Raha.Analysis.degradation

let test_bilevel_fixed_demand () =
  let spec = spec_k1 (Raha.Bilevel.Strong_duality { levels = 5 }) in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let on = bilevel ~presolve:true spec (Traffic.Envelope.fixed d) in
  check_float "degradation 7" 7. on.Raha.Analysis.degradation

let suite =
  [
    ("singleton row to bound", `Quick, test_singleton_row);
    ("fixed variable substitution", `Quick, test_fixed_substitution);
    ("redundant row removal", `Quick, test_redundant_row);
    ("forcing row fixes", `Quick, test_forcing_row);
    ("infeasible row detected", `Quick, test_infeasible_row);
    ("integer infeasibility detected", `Quick, test_integer_infeasible);
    ("big-M tightening", `Quick, test_bigm_tightening);
    ("probing fixes binary", `Quick, test_probing_fixes_binary);
    ("warm start and hints translate", `Quick, test_warm_start_and_hints_translate);
    ("stats counters exported", `Quick, test_stats_counters_exported);
    ("differential: presolve on vs off", `Quick, test_differential);
    ("bilevel strong duality optimum survives", `Quick, test_bilevel_strong_duality);
    ("bilevel kkt optimum survives", `Quick, test_bilevel_kkt);
    ("bilevel fixed demand optimum survives", `Quick, test_bilevel_fixed_demand);
  ]
