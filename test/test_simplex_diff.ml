(* Differential test of the bounded-variable simplex: on small random
   LPs the optimum of [Milp.Simplex.solve] must match an independent
   oracle that enumerates every basic point (each choice of n active
   hyperplanes among the rows and the box faces), keeps the feasible
   ones, and takes the best objective. The LP optimum is attained at
   such a vertex, so on feasible bounded instances the two agree. *)

let check_float ?(eps = 1e-5) what expected got =
  Alcotest.(check (float eps)) what expected got

(* Solve [a x = b] (n x n) by Gaussian elimination with partial
   pivoting; [None] when (numerically) singular. *)
let gauss a b n =
  let a = Array.map Array.copy a and b = Array.copy b in
  let ok = ref true in
  for col = 0 to n - 1 do
    if !ok then begin
      let piv = ref col in
      for r = col + 1 to n - 1 do
        if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
      done;
      if Float.abs a.(!piv).(col) < 1e-9 then ok := false
      else begin
        let tmp = a.(col) in
        a.(col) <- a.(!piv);
        a.(!piv) <- tmp;
        let tb = b.(col) in
        b.(col) <- b.(!piv);
        b.(!piv) <- tb;
        for r = 0 to n - 1 do
          if r <> col then begin
            let f = a.(r).(col) /. a.(col).(col) in
            for c = col to n - 1 do
              a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
            done;
            b.(r) <- b.(r) -. (f *. b.(col))
          end
        done
      end
    end
  done;
  if !ok then Some (Array.init n (fun i -> b.(i) /. a.(i).(i))) else None

(* Max of [c.x] s.t. [rows x <= rhs], [0 <= x <= ub], by enumerating
   every subset of n active hyperplanes. Hyperplane j < m is row j;
   then x_i = 0, then x_i = ub_i. *)
let brute_force ~c ~rows ~rhs ~ub =
  let n = Array.length c and m = Array.length rows in
  let nh = m + (2 * n) in
  let plane j =
    if j < m then (rows.(j), rhs.(j))
    else if j < m + n then
      (Array.init n (fun i -> if i = j - m then 1. else 0.), 0.)
    else
      let i = j - m - n in
      (Array.init n (fun i' -> if i' = i then 1. else 0.), ub.(i))
  in
  let best = ref neg_infinity in
  let chosen = Array.make n 0 in
  let feasible x =
    let ok = ref true in
    Array.iteri
      (fun i xi -> if xi < -1e-7 || xi > ub.(i) +. 1e-7 then ok := false)
      x;
    Array.iteri
      (fun j row ->
        let lhs = ref 0. in
        Array.iteri (fun i a -> lhs := !lhs +. (a *. x.(i))) row;
        if !lhs > rhs.(j) +. 1e-7 then ok := false)
      rows;
    !ok
  in
  let try_vertex () =
    let a = Array.make n [||] and b = Array.make n 0. in
    Array.iteri
      (fun i j ->
        let row, r = plane j in
        a.(i) <- row;
        b.(i) <- r)
      chosen;
    match gauss a b n with
    | None -> ()
    | Some x ->
      if feasible x then begin
        let obj = ref 0. in
        Array.iteri (fun i ci -> obj := !obj +. (ci *. x.(i))) c;
        if !obj > !best then best := !obj
      end
  in
  let rec choose pos from =
    if pos = n then try_vertex ()
    else
      for j = from to nh - (n - pos) do
        chosen.(pos) <- j;
        choose (pos + 1) (j + 1)
      done
  in
  choose 0 0;
  !best

let build_model ~c ~rows ~rhs ~ub =
  let m = Milp.Model.create () in
  let vars =
    Array.mapi (fun i u -> Milp.Model.continuous ~ub:u m (Printf.sprintf "x%d" i)) ub
  in
  Array.iteri
    (fun j row ->
      let terms =
        Array.to_list (Array.mapi (fun i a -> (a, vars.(i).Milp.Model.vid)) row)
      in
      Milp.Model.add_cons m (Milp.Linexpr.of_terms terms) Milp.Model.Le rhs.(j))
    rows;
  Milp.Model.set_objective m Milp.Model.Maximize
    (Milp.Linexpr.of_terms
       (Array.to_list (Array.mapi (fun i ci -> (ci, vars.(i).Milp.Model.vid)) c)));
  m

let test_random_lps () =
  for case = 0 to 49 do
    let rng = Random.State.make [| 0xd1f; case |] in
    let n = 2 + (case mod 4) in
    let m = 1 + Random.State.int rng (n + 2) in
    let ub = Array.init n (fun _ -> 1. +. Random.State.float rng 9.) in
    let c = Array.init n (fun _ -> Random.State.float rng 10. -. 5.) in
    let rows =
      Array.init m (fun _ ->
          Array.init n (fun _ -> Random.State.float rng 4. -. 2.))
    in
    (* rhs >= 0 keeps the origin feasible, so every instance is feasible
       and the box keeps it bounded *)
    let rhs = Array.init m (fun _ -> Random.State.float rng 5.) in
    let expected = brute_force ~c ~rows ~rhs ~ub in
    let model = build_model ~c ~rows ~rhs ~ub in
    match Milp.Simplex.solve model with
    | Milp.Simplex.Optimal { obj; values } ->
      let eps = 1e-5 *. (1. +. Float.abs expected) in
      check_float ~eps
        (Printf.sprintf "case %d (n=%d m=%d): simplex %.6f vs oracle %.6f" case n
           m obj expected)
        expected obj;
      (match Milp.Model.check_feasible model values with
      | None -> ()
      | Some reason -> Alcotest.failf "case %d: infeasible solution: %s" case reason)
    | Milp.Simplex.Infeasible -> Alcotest.failf "case %d: reported infeasible" case
    | Milp.Simplex.Unbounded -> Alcotest.failf "case %d: reported unbounded" case
    | Milp.Simplex.Iter_limit -> Alcotest.failf "case %d: iteration limit" case
  done

let test_degenerate_vertex () =
  (* (1,1) is over-determined: three constraints active at the optimum *)
  let c = [| 1.; 1. |] in
  let rows = [| [| 1.; 1. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 2. |] |] in
  let rhs = [| 2.; 1.; 1.; 3. |] in
  let ub = [| 10.; 10. |] in
  match Milp.Simplex.solve (build_model ~c ~rows ~rhs ~ub) with
  | Milp.Simplex.Optimal { obj; _ } -> check_float "degenerate optimum" 2. obj
  | _ -> Alcotest.fail "expected optimal"

let test_degenerate_zero_rhs () =
  (* x <= 0 pins x at its lower bound; optimum rides y alone *)
  let c = [| 3.; 2. |] in
  let rows = [| [| 1.; 0. |]; [| 1.; 1. |] |] in
  let rhs = [| 0.; 4. |] in
  let ub = [| 5.; 5. |] in
  match Milp.Simplex.solve (build_model ~c ~rows ~rhs ~ub) with
  | Milp.Simplex.Optimal { obj; values } ->
    check_float "optimum" 8. obj;
    check_float "x pinned at 0" 0. values.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_unbounded () =
  let m = Milp.Model.create () in
  let x = Milp.Model.continuous m "x" in
  let y = Milp.Model.continuous m "y" in
  Milp.Model.add_cons m
    (Milp.Linexpr.of_terms [ (1., x.Milp.Model.vid); (-1., y.Milp.Model.vid) ])
    Milp.Model.Le 1.;
  Milp.Model.set_objective m Milp.Model.Maximize
    (Milp.Linexpr.of_terms [ (1., x.Milp.Model.vid); (1., y.Milp.Model.vid) ]);
  match Milp.Simplex.solve m with
  | Milp.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_infeasible () =
  let m = Milp.Model.create () in
  let x = Milp.Model.continuous ~ub:5. m "x" in
  Milp.Model.add_cons m
    (Milp.Linexpr.of_terms [ (1., x.Milp.Model.vid) ])
    Milp.Model.Le (-1.);
  Milp.Model.set_objective m Milp.Model.Maximize
    (Milp.Linexpr.of_terms [ (1., x.Milp.Model.vid) ]);
  match Milp.Simplex.solve m with
  | Milp.Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_minimize_sense () =
  (* min x - y over the box with x + y <= 3: optimum at x=0, y=3 *)
  let m = Milp.Model.create () in
  let x = Milp.Model.continuous ~ub:4. m "x" in
  let y = Milp.Model.continuous ~ub:4. m "y" in
  Milp.Model.add_cons m
    (Milp.Linexpr.of_terms [ (1., x.Milp.Model.vid); (1., y.Milp.Model.vid) ])
    Milp.Model.Le 3.;
  Milp.Model.set_objective m Milp.Model.Minimize
    (Milp.Linexpr.of_terms [ (1., x.Milp.Model.vid); (-1., y.Milp.Model.vid) ]);
  match Milp.Simplex.solve m with
  | Milp.Simplex.Optimal { obj; _ } -> check_float "minimum" (-3.) obj
  | _ -> Alcotest.fail "expected optimal"

let suite =
  [
    ("50 random LPs vs vertex oracle", `Quick, test_random_lps);
    ("degenerate vertex", `Quick, test_degenerate_vertex);
    ("degenerate zero rhs", `Quick, test_degenerate_zero_rhs);
    ("unbounded detected", `Quick, test_unbounded);
    ("infeasible detected", `Quick, test_infeasible);
    ("minimize sense honoured", `Quick, test_minimize_sense);
  ]
