(* Determinism contract of the parallel branch-and-bound (PR 8): for a
   fixed model the outcome, objective, bound, incumbent point, node
   count, simplex-iteration count and dropped-subtree accounting must be
   bit-identical whatever the pool width — including no pool at all.
   The corpus is the same 64 random MILPs the revised-simplex
   differential uses; [par_width = 2] and [par_grain = 4] force the
   round scheduler to engage even on these small trees. *)

let check_int = Alcotest.(check int)

let bits f = Int64.bits_of_float f

let check_bits what a b =
  if bits a <> bits b then
    Alcotest.failf "%s: %.17g <> %.17g (not bit-identical)" what a b

(* Solve the whole corpus under one pool configuration. *)
let solve_corpus ?sx_iters pool =
  Array.init 64 (fun case ->
      let mdl = Test_revised.random_milp case in
      let options =
        {
          Milp.Branch_bound.default with
          pool;
          par_width = 2;
          par_grain = 4;
          sx_iters;
          (* explicit, not just the default: the bit-identity contract
             must hold with the pseudocost machinery (frozen per-round
             tables, frontier-order merge) engaged *)
          branching = Milp.Branch_bound.Reliability;
        }
      in
      Milp.Branch_bound.solve ~options mdl)

let check_identical ~what (a : Milp.Branch_bound.t array)
    (b : Milp.Branch_bound.t array) =
  Array.iteri
    (fun case (r : Milp.Branch_bound.t) ->
      let s = b.(case) in
      let tag fmt = Printf.sprintf "%s case %d %s" what case fmt in
      Alcotest.(check bool) (tag "outcome") true (r.outcome = s.outcome);
      check_bits (tag "obj") r.Milp.Branch_bound.obj s.Milp.Branch_bound.obj;
      check_bits (tag "bound") r.bound s.bound;
      check_int (tag "values length") (Array.length r.values) (Array.length s.values);
      Array.iteri
        (fun i v -> check_bits (tag (Printf.sprintf "values.(%d)" i)) v s.values.(i))
        r.values;
      check_int (tag "nodes") r.stats.Milp.Branch_bound.nodes
        s.stats.Milp.Branch_bound.nodes;
      check_int (tag "simplex iters") r.stats.simplex_iters s.stats.simplex_iters;
      check_int (tag "rounds") r.stats.rounds s.stats.rounds;
      check_int (tag "dropped") r.stats.dropped s.stats.dropped;
      check_bits (tag "dropped key") r.stats.dropped_key s.stats.dropped_key)
    a

let with_pool domains f =
  Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters ~domains f

let test_corpus_identical_across_widths () =
  let reference = solve_corpus None in
  (* the scheduler must actually have engaged, or this test proves
     nothing about the parallel rounds *)
  let rounds =
    Array.fold_left
      (fun acc (r : Milp.Branch_bound.t) -> acc + r.stats.Milp.Branch_bound.rounds)
      0 reference
  in
  Alcotest.(check bool) "parallel rounds engaged on the corpus" true (rounds > 0);
  List.iter
    (fun domains ->
      let par = with_pool domains (fun pool -> solve_corpus (Some pool)) in
      check_identical
        ~what:(Printf.sprintf "pool=%d vs none" domains)
        reference par)
    [ 1; 2; 4 ]

(* PR 4's honest degradation must survive stealing: throttle every LP to
   a tiny pivot budget so subtrees get dropped mid-round, and require
   (a) drops actually happen, (b) a solve that dropped a subtree never
   claims Optimal or Infeasible, and (c) the degraded results — dropped
   counts and the folded bound keys included — stay bit-identical across
   pool widths. *)
let test_iter_limit_identical_across_widths () =
  let sx_iters = Some 5 in
  let reference = solve_corpus ?sx_iters None in
  let dropped =
    Array.fold_left
      (fun acc (r : Milp.Branch_bound.t) -> acc + r.stats.Milp.Branch_bound.dropped)
      0 reference
  in
  Alcotest.(check bool) "iteration budget dropped subtrees" true (dropped > 0);
  Array.iteri
    (fun case (r : Milp.Branch_bound.t) ->
      if r.stats.Milp.Branch_bound.dropped > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "case %d: dropped subtree degrades the claim" case)
          true
          (r.outcome <> Milp.Branch_bound.Optimal
          && r.outcome <> Milp.Branch_bound.Infeasible))
    reference;
  List.iter
    (fun domains ->
      let par = with_pool domains (fun pool -> solve_corpus ?sx_iters (Some pool)) in
      check_identical
        ~what:(Printf.sprintf "iter-limit pool=%d vs none" domains)
        reference par)
    [ 2; 4 ]

(* --- the full bilevel stack across domain counts ----------------------- *)

let fig1 = Wan.Generators.fig1 ()

let fig1_paths () =
  Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ]

let fig1_envelope () =
  Traffic.Envelope.around ~slack:0.5
    (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])

let spec_k1 =
  {
    Raha.Bilevel.default_spec with
    Raha.Bilevel.max_failures = Some 1;
    encoding = Raha.Bilevel.Strong_duality { levels = 5 };
  }

let test_analysis_identical_across_domains () =
  let run domains =
    let options = { Raha.Analysis.default_options with spec = spec_k1; domains } in
    Raha.Analysis.analyze ~options fig1 (fig1_paths ()) (fig1_envelope ())
  in
  let seq = run 1 in
  Alcotest.(check bool) "sequential run solved" true
    (seq.Raha.Analysis.status = Milp.Solver.Optimal);
  List.iter
    (fun domains ->
      let par = run domains in
      let tag fmt = Printf.sprintf "domains=%d %s" domains fmt in
      Alcotest.(check bool) (tag "status") true
        (par.Raha.Analysis.status = seq.Raha.Analysis.status);
      check_bits (tag "degradation") seq.Raha.Analysis.degradation
        par.Raha.Analysis.degradation;
      check_bits (tag "bound") seq.Raha.Analysis.bound par.Raha.Analysis.bound;
      check_int (tag "nodes") seq.Raha.Analysis.nodes par.Raha.Analysis.nodes;
      Alcotest.(check bool) (tag "scenario") true
        (Failure.Scenario.equal seq.Raha.Analysis.scenario
           par.Raha.Analysis.scenario);
      Alcotest.(check bool) (tag "worst demand") true
        (Traffic.Demand.entries seq.Raha.Analysis.worst_demand
        = Traffic.Demand.entries par.Raha.Analysis.worst_demand))
    [ 2; 4 ]

(* --- cluster waves ------------------------------------------------------ *)

let test_wave_budget () =
  let check_budget what expected got = Alcotest.(check (float 0.)) what expected got in
  check_budget "even split" 20. (Raha.Cluster.wave_budget ~remaining:100. ~solves_left:5);
  (* a fast early wave leaves its unused share to the remaining solves *)
  check_budget "redistribution" 30. (Raha.Cluster.wave_budget ~remaining:90. ~solves_left:3);
  check_budget "infinity passes through" Float.infinity
    (Raha.Cluster.wave_budget ~remaining:Float.infinity ~solves_left:4);
  check_budget "clamps at zero" 0. (Raha.Cluster.wave_budget ~remaining:(-1.) ~solves_left:2);
  check_budget "last solve takes everything" 7.5
    (Raha.Cluster.wave_budget ~remaining:7.5 ~solves_left:1);
  check_budget "solves_left floor" 7.5
    (Raha.Cluster.wave_budget ~remaining:7.5 ~solves_left:0)

let test_cluster_identical_across_domains () =
  let run domains =
    let options = { Raha.Analysis.default_options with spec = spec_k1; domains } in
    Raha.Cluster.analyze ~options ~clusters:2 fig1 (fig1_paths ()) (fig1_envelope ())
  in
  let seq = run 1 in
  Alcotest.(check bool) "sequential run solved" true
    (seq.Raha.Cluster.report.Raha.Analysis.status = Milp.Solver.Optimal);
  List.iter
    (fun domains ->
      let par = run domains in
      let tag fmt = Printf.sprintf "domains=%d %s" domains fmt in
      check_bits (tag "degradation")
        seq.Raha.Cluster.report.Raha.Analysis.degradation
        par.Raha.Cluster.report.Raha.Analysis.degradation;
      check_int (tag "block solves") seq.Raha.Cluster.block_solves
        par.Raha.Cluster.block_solves;
      Alcotest.(check bool) (tag "assembled demand") true
        (Traffic.Demand.entries seq.Raha.Cluster.demand
        = Traffic.Demand.entries par.Raha.Cluster.demand);
      check_int (tag "wave count")
        (List.length seq.Raha.Cluster.wave_budgets)
        (List.length par.Raha.Cluster.wave_budgets))
    [ 2; 4 ]

let test_cluster_first_wave_budget () =
  (* with an untouched budget the first wave's share is exactly
     time_limit / n_solves — the redistribution baseline *)
  let options =
    {
      Raha.Analysis.default_options with
      spec = spec_k1;
      time_limit = 100_000.;
    }
  in
  let r =
    Raha.Cluster.analyze ~options ~clusters:2 fig1 (fig1_paths ()) (fig1_envelope ())
  in
  match r.Raha.Cluster.wave_budgets with
  | [] -> Alcotest.fail "no wave budgets recorded"
  | first :: _ ->
    Alcotest.(check (float 0.))
      "first wave budget = time_limit / n_solves"
      (100_000. /. float_of_int r.Raha.Cluster.block_solves)
      first

let suite =
  [
    ("corpus identical across pool widths", `Quick, test_corpus_identical_across_widths);
    ("iter-limit degradation survives stealing", `Quick, test_iter_limit_identical_across_widths);
    ("bilevel analysis identical across domains", `Quick, test_analysis_identical_across_domains);
    ("wave budget redistribution", `Quick, test_wave_budget);
    ("cluster identical across domains", `Quick, test_cluster_identical_across_domains);
    ("cluster first wave budget", `Quick, test_cluster_first_wave_budget);
  ]
