(* The Domain worker pool, and the determinism contract of the parallel
   sweeps: for a fixed seed, results must be bit-identical whatever the
   domain count. The parallel side runs on [RAHA_TEST_DOMAINS] domains
   (default 4) — the CI alias pins it to 2 so both widths get exercised. *)

let domains =
  match Sys.getenv_opt "RAHA_TEST_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some d when d >= 2 -> d | _ -> 4)
  | None -> 4

let check_int = Alcotest.(check int)

(* --- pool units --------------------------------------------------------- *)

let test_empty_input () =
  Parallel.Pool.with_pool ~domains (fun pool ->
      check_int "map of empty" 0 (Array.length (Parallel.Pool.map_array pool succ [||]));
      Parallel.Pool.iter_array pool (fun _ -> Alcotest.fail "called on empty") [||];
      let s = Parallel.Pool.stats pool in
      check_int "no items recorded" 0 s.Parallel.Pool.items)

let test_single_item () =
  Parallel.Pool.with_pool ~domains (fun pool ->
      Alcotest.(check (array int)) "one item" [| 42 |]
        (Parallel.Pool.map_array pool (fun x -> x * 2) [| 21 |]))

let test_more_domains_than_items () =
  Parallel.Pool.with_pool ~domains:8 (fun pool ->
      Alcotest.(check (array int)) "three items, eight domains" [| 1; 4; 9 |]
        (Parallel.Pool.map_array pool (fun x -> x * x) [| 1; 2; 3 |]))

let test_order_preserved () =
  let input = Array.init 1000 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) input in
  Parallel.Pool.with_pool ~domains (fun pool ->
      Alcotest.(check (array int)) "mapi order" expected
        (Parallel.Pool.mapi_array pool (fun i x -> ignore x; i * i) input))

exception Boom of int

let test_exception_propagation () =
  Parallel.Pool.with_pool ~domains (fun pool ->
      (match Parallel.Pool.iter_array pool
               (fun i -> if i = 17 then raise (Boom i))
               (Array.init 100 Fun.id)
       with
      | () -> Alcotest.fail "exception swallowed"
      | exception Boom 17 -> ()
      | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e));
      (* the pool survives a failed sweep *)
      Alcotest.(check (array int)) "pool still usable" [| 2; 4 |]
        (Parallel.Pool.map_array pool (fun x -> 2 * x) [| 1; 2 |]))

let test_nested_map_same_pool () =
  (* re-entering the same pool from a task runs the inner sweep as an
     inline sequential sub-scope — same results, no deadlock *)
  Parallel.Pool.with_pool ~domains (fun pool ->
      let r =
        Parallel.Pool.map_array pool
          (fun x ->
            Array.fold_left ( + ) 0 (Parallel.Pool.map_array pool succ [| x; x |]))
          (Array.init 64 Fun.id)
      in
      Alcotest.(check (array int)) "nested same-pool map"
        (Array.init 64 (fun x -> 2 * (x + 1)))
        r)

let test_nested_map_other_pool () =
  (* both nesting directions across two parallel pools: the outer sweep
     owns the fan-out, the inner call degrades to sequential *)
  Parallel.Pool.with_pool ~domains (fun outer ->
      Parallel.Pool.with_pool ~domains (fun inner ->
          let r =
            Parallel.Pool.map_array outer
              (fun x ->
                Alcotest.(check bool) "inside task" true (Parallel.Pool.inside_task ());
                Array.fold_left ( + ) 0
                  (Parallel.Pool.map_array inner (fun y -> y * y) [| x; x + 1 |]))
              (Array.init 48 Fun.id)
          in
          Alcotest.(check (array int)) "outer-calls-inner"
            (Array.init 48 (fun x -> (x * x) + ((x + 1) * (x + 1))))
            r;
          (* and the reverse direction on the same two pools *)
          let r' =
            Parallel.Pool.map_array inner
              (fun x ->
                Array.fold_left ( + ) 0
                  (Parallel.Pool.map_array outer (fun y -> y * y) [| x; x + 1 |]))
              (Array.init 48 Fun.id)
          in
          Alcotest.(check (array int)) "inner-calls-outer"
            (Array.init 48 (fun x -> (x * x) + ((x + 1) * (x + 1))))
            r';
          Alcotest.(check bool) "outside task" false (Parallel.Pool.inside_task ())))

let test_nested_sequential_pool_ok () =
  (* a [domains:1] pool runs inline and is legal anywhere, including
     inside a task of a parallel pool *)
  Parallel.Pool.with_pool ~domains:1 (fun inner ->
      Parallel.Pool.with_pool ~domains (fun pool ->
          let r =
            Parallel.Pool.map_array pool
              (fun x ->
                Array.fold_left ( + ) 0 (Parallel.Pool.map_array inner succ [| x; x |]))
              [| 1; 2; 3 |]
          in
          Alcotest.(check (array int)) "inline inner pool" [| 4; 6; 8 |] r))

let test_map_reduce () =
  let input = Array.init 500 (fun i -> i + 1) in
  let expected = Array.fold_left (fun acc x -> acc + (x * x)) 0 input in
  Parallel.Pool.with_pool ~domains (fun pool ->
      check_int "sum of squares" expected
        (Parallel.Pool.map_reduce pool ~map:(fun x -> x * x)
           ~combine:( + ) ~init:0 input));
  (* order-sensitive combine: reduction folds in index order *)
  Parallel.Pool.with_pool ~domains (fun pool ->
      Alcotest.(check string) "ordered fold" "abcdef"
        (Parallel.Pool.map_reduce pool ~map:Fun.id ~combine:( ^ ) ~init:""
           [| "a"; "b"; "c"; "d"; "e"; "f" |]))

(* counter hooks read on the executing domain, so like the simplex pivot
   counter they must be domain-local for the per-chunk deltas to add up *)
let hits_key = Domain.DLS.new_key (fun () -> ref 0)

let test_stats () =
  Parallel.Pool.with_pool
    ~counters:[ ("hits", fun () -> !(Domain.DLS.get hits_key)) ]
    ~domains
    (fun pool ->
      Parallel.Pool.iter_array pool
        (fun _ -> incr (Domain.DLS.get hits_key))
        (Array.init 64 Fun.id);
      let s = Parallel.Pool.stats pool in
      check_int "domains" domains s.Parallel.Pool.domains;
      check_int "items" 64 s.Parallel.Pool.items;
      Alcotest.(check bool) "some tasks ran" true (s.Parallel.Pool.tasks >= 1);
      Alcotest.(check (list (pair string int))) "counter delta" [ ("hits", 64) ]
        s.Parallel.Pool.counters;
      let line = Format.asprintf "%a" Parallel.Pool.pp_stats s in
      Alcotest.(check bool) ("stats line: " ^ line) true
        (String.length line > 10 && String.sub line 0 10 = "[parallel:");
      Parallel.Pool.reset_stats pool;
      check_int "reset" 0 (Parallel.Pool.stats pool).Parallel.Pool.items)

let test_create_rejects_nonpositive () =
  match Parallel.Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "domains:0 accepted"
  | exception Invalid_argument _ -> ()

(* --- sequential-vs-parallel equivalence --------------------------------- *)

let fig1 = Wan.Generators.fig1 ()

let fig1_setup () =
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 fig1 [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  (fig1, paths, d)

let africa_setup () =
  let topo = Wan.Generators.africa_like ~seed:5 ~n:8 () in
  let pairs = [ (0, 5); (1, 6) ] in
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:1 topo pairs in
  let d = Traffic.Demand.of_list (List.map (fun p -> (p, 60.)) pairs) in
  (topo, paths, d)

let check_identical_runs ~seeds ~samples (topo, paths, d) () =
  List.iter
    (fun seed ->
      let seq_deg, seq_scen =
        Te.Monte_carlo.sample_degradations ~domains:1 ~seed ~samples topo paths d
      in
      let par_deg, par_scen =
        Te.Monte_carlo.sample_degradations ~domains ~seed ~samples topo paths d
      in
      Alcotest.(check bool)
        (Printf.sprintf "degradations bit-identical (seed %d, %d vs 1 domains)" seed domains)
        true (seq_deg = par_deg);
      check_int "scenario count" (Array.length seq_scen) (Array.length par_scen);
      Alcotest.(check bool)
        (Printf.sprintf "scenarios identical (seed %d)" seed)
        true
        (Array.for_all2 Failure.Scenario.equal seq_scen par_scen))
    seeds

let test_mc_equivalence_fig1 () =
  (* 200 samples spans four 64-sample RNG blocks, so chunking kicks in *)
  check_identical_runs ~seeds:[ 1; 2; 3 ] ~samples:200 (fig1_setup ()) ()

let test_mc_equivalence_africa () =
  check_identical_runs ~seeds:[ 1; 7 ] ~samples:150 (africa_setup ()) ()

let test_mc_shared_pool_equivalence () =
  (* a caller-supplied pool must give the same draw as ~domains *)
  let topo, paths, d = fig1_setup () in
  let seq, _ = Te.Monte_carlo.sample_degradations ~domains:1 ~seed:9 ~samples:200 topo paths d in
  Parallel.Pool.with_pool ~domains (fun pool ->
      let par, _ =
        Te.Monte_carlo.sample_degradations ~pool ~seed:9 ~samples:200 topo paths d
      in
      Alcotest.(check bool) "pool draw identical" true (seq = par))

let test_enumeration_equivalence () =
  let topo, paths, d = fig1_setup () in
  let seq = Raha.Baselines.enumerate_failures ~domains:1 ~k:2 topo paths d in
  let par = Raha.Baselines.enumerate_failures ~domains ~k:2 topo paths d in
  check_int "scenarios evaluated"
    seq.Raha.Baselines.scenarios_evaluated par.Raha.Baselines.scenarios_evaluated;
  Alcotest.(check (float 0.)) "worst degradation identical"
    seq.Raha.Baselines.worst par.Raha.Baselines.worst;
  Alcotest.(check bool) "same arg-max scenario" true
    (Failure.Scenario.equal seq.Raha.Baselines.worst_scenario
       par.Raha.Baselines.worst_scenario)

let test_analysis_equivalence () =
  let topo, paths, d = fig1_setup () in
  let run domains =
    let spec = { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 1 } in
    let options = { Raha.Analysis.default_options with spec; domains } in
    Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.fixed d)
  in
  let seq = run 1 and par = run domains in
  Alcotest.(check (float 0.)) "degradation identical"
    seq.Raha.Analysis.degradation par.Raha.Analysis.degradation;
  Alcotest.(check bool) "same scenario" true
    (Failure.Scenario.equal seq.Raha.Analysis.scenario par.Raha.Analysis.scenario)

let suite =
  [
    ("pool: empty input", `Quick, test_empty_input);
    ("pool: single item", `Quick, test_single_item);
    ("pool: more domains than items", `Quick, test_more_domains_than_items);
    ("pool: order preserved", `Quick, test_order_preserved);
    ("pool: exception propagation", `Quick, test_exception_propagation);
    ("pool: nested map same pool", `Quick, test_nested_map_same_pool);
    ("pool: nested map other pool", `Quick, test_nested_map_other_pool);
    ("pool: nested sequential pool ok", `Quick, test_nested_sequential_pool_ok);
    ("pool: map_reduce", `Quick, test_map_reduce);
    ("pool: stats and counters", `Quick, test_stats);
    ("pool: create rejects domains < 1", `Quick, test_create_rejects_nonpositive);
    ("monte carlo equivalence (fig1)", `Quick, test_mc_equivalence_fig1);
    ("monte carlo equivalence (africa)", `Quick, test_mc_equivalence_africa);
    ("monte carlo equivalence (shared pool)", `Quick, test_mc_shared_pool_equivalence);
    ("enumeration equivalence", `Quick, test_enumeration_equivalence);
    ("analysis equivalence", `Quick, test_analysis_equivalence);
  ]
