(* raha — command-line front end.

   Subcommands:
     raha info     print a topology and its probable-failure profile
     raha analyze  find the worst probable (failure, demand) combination
     raha augment  add capacity until no probable failure degrades the WAN
     raha alert    run the two-stage online alert pipeline

   Examples:
     raha analyze -t fig1 --pairs 1-3,2-3 --primary 2 --max-failures 1 --slack 0.5
     raha analyze -t b4 --num-pairs 4 --threshold 1e-4 --timeout 30
     raha augment -t b4 --num-pairs 4 --threshold 1e-4
     raha info -t africa:12:7 *)

open Cmdliner

(* --- topology argument ------------------------------------------------- *)

let parse_topology s =
  let fail msg = Error (`Msg msg) in
  match String.split_on_char ':' s with
  | [ "fig1" ] -> Ok (Wan.Generators.fig1 ())
  | [ "ring"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 3 -> Ok (Wan.Generators.ring n)
    | _ -> fail "ring:N needs N >= 3")
  | [ "grid"; rc ] -> (
    match String.split_on_char 'x' rc with
    | [ r; c ] -> (
      match (int_of_string_opt r, int_of_string_opt c) with
      | Some r, Some c -> Ok (Wan.Generators.grid r c)
      | _ -> fail "grid:RxC needs integers")
    | _ -> fail "grid:RxC")
  | "africa" :: rest -> (
    match rest with
    | [] -> Ok (Wan.Generators.africa_like ())
    | [ n ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (Wan.Generators.africa_like ~n ())
      | None -> fail "africa:N")
    | [ n; seed ] -> (
      match (int_of_string_opt n, int_of_string_opt seed) with
      | Some n, Some seed -> Ok (Wan.Generators.africa_like ~n ~seed ())
      | _ -> fail "africa:N:SEED")
    | _ -> fail "africa:N:SEED")
  | [ name ] -> (
    match Wan.Zoo.by_name name with
    | Some t -> Ok t
    | None ->
      if Sys.file_exists name then begin
        let load p =
          if Filename.check_suffix p ".gml" then Wan.Gml.load_file p
          else Wan.Serialize.load p
        in
        match load name with
        | t -> Ok t
        | exception Failure msg -> fail msg
      end
      else
        fail
          (Printf.sprintf
             "unknown topology %S (try %s, fig1, ring:N, grid:RxC, africa:N:SEED or a .wan/.gml file)"
             name
             (String.concat ", " Wan.Zoo.names)))
  | _ -> fail "bad topology spec"

let topology_conv = Arg.conv (parse_topology, fun ppf t -> Wan.Topology.pp ppf t)

let topology_arg =
  Arg.(
    required
    & opt (some topology_conv) None
    & info [ "t"; "topology" ] ~docv:"TOPO"
        ~doc:"Topology: a Zoo name ($(b,b4), $(b,abilene), ...), $(b,fig1), \
              $(b,ring:N), $(b,grid:RxC), $(b,africa:N:SEED), or a GML file.")

(* --- pair selection ---------------------------------------------------- *)

let parse_pairs s =
  try
    Ok
      (String.split_on_char ',' s
      |> List.map (fun p ->
             match String.split_on_char '-' p with
             | [ a; b ] -> (int_of_string a, int_of_string b)
             | _ -> failwith "bad"))
  with _ -> Error (`Msg "pairs: expected SRC-DST,SRC-DST,...")

let pairs_conv =
  Arg.conv
    ( parse_pairs,
      fun ppf l ->
        Format.pp_print_string ppf
          (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) l)) )

let pairs_arg =
  Arg.(
    value
    & opt (some pairs_conv) None
    & info [ "pairs" ] ~docv:"PAIRS" ~doc:"Demand pairs as $(i,SRC-DST,SRC-DST,...).")

let num_pairs_arg =
  Arg.(
    value & opt int 4
    & info [ "num-pairs" ]
        ~doc:"When $(b,--pairs) is absent, pick this many spread-out pairs.")

let auto_pairs topo n =
  (* deterministic spread: pair node i with the farthest unused node *)
  let nn = Wan.Topology.num_nodes topo in
  let rng = Random.State.make [| 17; nn |] in
  let pairs = ref [] in
  let attempts = ref 0 in
  while List.length !pairs < n && !attempts < 50 * n do
    incr attempts;
    let a = Random.State.int rng nn and b = Random.State.int rng nn in
    if a <> b && not (List.mem (a, b) !pairs) then pairs := (a, b) :: !pairs
  done;
  List.rev !pairs

(* --- shared analysis options ------------------------------------------ *)

let primary_arg = Arg.(value & opt int 2 & info [ "primary" ] ~doc:"Primary paths per pair.")
let backup_arg = Arg.(value & opt int 1 & info [ "backup" ] ~doc:"Backup paths per pair.")

let threshold_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "threshold" ] ~docv:"T" ~doc:"Only consider scenarios with probability >= T.")

let max_failures_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k"; "max-failures" ] ~doc:"Allow at most K failed links.")

let ce_arg =
  Arg.(value & flag & info [ "ce" ] ~doc:"Connected-enforced: never disconnect a pair.")

let slack_arg =
  Arg.(
    value & opt float 0.
    & info [ "slack" ]
        ~doc:"Demand slack: demands range over [0, (1+slack) * base]. 0 fixes demands.")

let demand_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "demand-file" ] ~docv:"CSV"
        ~doc:"Base demand matrix from a CSV file (src,dst,volume per line);               overrides $(b,--pairs)/$(b,--volume).")

let volume_arg =
  Arg.(
    value & opt (some float) None
    & info [ "volume" ] ~doc:"Base demand volume per pair (default: avg LAG capacity / 2).")

let timeout_arg =
  Arg.(value & opt float 60. & info [ "timeout" ] ~doc:"Solver budget in seconds.")

let domains_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "domains" ]
        ~doc:
          "OCaml domains used for scenario-evaluation sweeps and the MILP core               (parallel branch-and-bound subtree rounds, concurrent cluster-block               waves). Default: all cores; $(b,1) forces the sequential path —               results are bit-identical either way.")

let no_presolve_arg =
  Arg.(
    value & flag
    & info [ "no-presolve" ]
        ~doc:
          "Disable the MILP presolve reductions (bound propagation, big-M               tightening, probing) and hand the raw encoding to branch-and-bound.")

let dense_simplex_arg =
  Arg.(
    value & flag
    & info [ "dense-simplex" ]
        ~doc:
          "Solve LP relaxations with the legacy dense-tableau simplex instead of               the revised engine (sparse LU basis, dual-simplex warm starts).               Slower; kept for differential debugging.")

let no_certify_arg =
  Arg.(
    value & flag
    & info [ "no-certify" ]
        ~doc:
          "Skip the independent solution audit (primal/integrality/objective/               bound residuals against the original model, dual certificates for               pure LPs). Certified runs downgrade unsound answers instead of               reporting them.")

let no_cuts_arg =
  Arg.(
    value & flag
    & info [ "no-cuts" ]
        ~doc:
          "Disable the cutting-plane subsystem (Gomory mixed-integer, knapsack               cover and clique cuts over a managed pool) and run the cut-free               branch-and-bound search.")

let no_batch_arg =
  Arg.(
    value & flag
    & info [ "no-batch" ]
        ~doc:
          "Disable the batched scenario engine (one symbolic factorization,               rhs overlays, warm dual solves from the healthy basis) for               scenario-evaluation sweeps; every scenario rebuilds its own               formulation and factorization. Bit-identical results, kept for               differential debugging and ablation.")

let cut_rounds_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cut-rounds" ] ~docv:"N"
        ~doc:
          "Number of cut separation rounds at the branch-and-bound root               (default 6). Ignored under $(b,--no-cuts).")

let branching_arg =
  let parse = function
    | "reliability" -> Ok Milp.Branch_bound.Reliability
    | "fractional" -> Ok Milp.Branch_bound.Fractional
    | _ -> Error (`Msg "branching: reliability or fractional")
  in
  let print ppf = function
    | Milp.Branch_bound.Reliability -> Format.pp_print_string ppf "reliability"
    | Milp.Branch_bound.Fractional -> Format.pp_print_string ppf "fractional"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Milp.Branch_bound.Reliability
    & info [ "branching" ] ~docv:"RULE"
        ~doc:
          "Branch-and-bound variable selection: $(b,reliability) (pseudocost               estimates initialized by strong-branching probes; default) or               $(b,fractional) (legacy most-fractional rule).")

let no_heuristics_arg =
  Arg.(
    value & flag
    & info [ "no-heuristics" ]
        ~doc:
          "Disable the feasibility-pump and RINS primal heuristics, keeping               only the legacy diving cadence for incumbents.")

let rins_freq_arg =
  Arg.(
    value
    & opt int Milp.Solver.default_options.Milp.Solver.rins_freq
    & info [ "rins-freq" ] ~docv:"N"
        ~doc:
          "Run RINS neighborhood search every N branch-and-bound nodes once an               incumbent exists (default 200; 0 disables RINS). Ignored under               $(b,--no-heuristics).")

let clusters_arg =
  Arg.(value & opt int 1 & info [ "clusters" ] ~doc:"Clusters for Algorithm 1 (1 = off).")

let encoding_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ "kkt" ] -> Ok Raha.Bilevel.Kkt
    | [ "sd" ] -> Ok (Raha.Bilevel.Strong_duality { levels = 5 })
    | [ "sd"; n ] -> (
      match int_of_string_opt n with
      | Some levels when levels >= 2 -> Ok (Raha.Bilevel.Strong_duality { levels })
      | _ -> Error (`Msg "sd:LEVELS needs LEVELS >= 2"))
    | _ -> Error (`Msg "encoding: kkt or sd[:LEVELS]")
  in
  let print ppf = function
    | Raha.Bilevel.Kkt -> Format.pp_print_string ppf "kkt"
    | Raha.Bilevel.Strong_duality { levels } -> Format.fprintf ppf "sd:%d" levels
  in
  Arg.(
    value
    & opt (conv (parse, print)) (Raha.Bilevel.Strong_duality { levels = 4 })
    & info [ "encoding" ] ~doc:"Inner-problem encoding: $(b,sd[:LEVELS]) or $(b,kkt).")

let objective_arg =
  let parse = function
    | "total" -> Ok Te.Formulation.Total_flow
    | "mlu" -> Ok (Te.Formulation.Mlu { u_max = 10. })
    | "maxmin" -> Ok (Te.Formulation.Max_min { bins = 4; ratio = 1. })
    | _ -> Error (`Msg "objective: total, mlu or maxmin")
  in
  let print ppf = function
    | Te.Formulation.Total_flow -> Format.pp_print_string ppf "total"
    | Te.Formulation.Mlu _ -> Format.pp_print_string ppf "mlu"
    | Te.Formulation.Max_min _ -> Format.pp_print_string ppf "maxmin"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Te.Formulation.Total_flow
    & info [ "objective" ] ~doc:"TE objective: $(b,total), $(b,mlu) or $(b,maxmin).")

type setup = {
  topo : Wan.Topology.t;
  paths : Netpath.Path_set.t;
  envelope : Traffic.Envelope.t;
  options : Raha.Analysis.options;
}

let make_setup topo pairs num_pairs primary backup threshold max_failures ce slack
    volume timeout domains no_presolve dense_simplex no_certify no_cuts no_batch
    cut_rounds branching no_heuristics rins_freq encoding objective demand_file =
  let base =
    match demand_file with
    | Some path -> Traffic.Demand_io.load path
    | None ->
      let pairs = match pairs with Some p -> p | None -> auto_pairs topo num_pairs in
      let vol =
        match volume with Some v -> v | None -> Wan.Topology.avg_lag_capacity topo /. 2.
      in
      Traffic.Demand.of_list (List.map (fun p -> (p, vol)) pairs)
  in
  let pairs = Traffic.Demand.pairs base in
  let paths = Netpath.Path_set.compute ~n_primary:primary ~n_backup:backup topo pairs in
  let envelope =
    if slack > 0. then Traffic.Envelope.from_zero ~slack base
    else Traffic.Envelope.fixed base
  in
  let spec =
    {
      Raha.Bilevel.default_spec with
      Raha.Bilevel.threshold;
      max_failures;
      connected_enforced = ce;
      encoding;
      objective;
    }
  in
  let cuts =
    let base = if no_cuts then Milp.Cuts.disabled else Milp.Cuts.default in
    match cut_rounds with
    | Some r -> { base with Milp.Cuts.root_rounds = max 0 r }
    | None -> base
  in
  let options =
    {
      (Raha.Analysis.with_timeout timeout) with
      spec;
      domains = max 1 domains;
      presolve = not no_presolve;
      dense_simplex;
      certify = not no_certify;
      cuts;
      batch = not no_batch;
      branching;
      heuristics = not no_heuristics;
      rins_freq;
    }
  in
  { topo; paths; envelope; options }

let setup_term =
  Term.(
    const make_setup $ topology_arg $ pairs_arg $ num_pairs_arg $ primary_arg
    $ backup_arg $ threshold_arg $ max_failures_arg $ ce_arg $ slack_arg $ volume_arg
    $ timeout_arg $ domains_arg $ no_presolve_arg $ dense_simplex_arg
    $ no_certify_arg $ no_cuts_arg $ no_batch_arg $ cut_rounds_arg $ branching_arg
    $ no_heuristics_arg $ rins_freq_arg $ encoding_arg $ objective_arg
    $ demand_file_arg)

(* --- subcommands ------------------------------------------------------- *)

let info_cmd =
  let run topo =
    Format.printf "%a@.@." Wan.Topology.pp topo;
    Format.printf "probable-failure profile (Figure 2 style):@.";
    Format.printf "  %-12s %s@." "threshold" "max simultaneous link failures";
    List.iter
      (fun t ->
        let n, _ = Failure.Probability.max_simultaneous_failures topo ~threshold:t in
        Format.printf "  %-12g %d@." t n)
      [ 0.1; 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7 ]
  in
  Cmd.v (Cmd.info "info" ~doc:"Print a topology and its probable-failure profile.")
    Term.(const run $ topology_arg)

let analyze_cmd =
  let run setup clusters =
    let r =
      if clusters <= 1 then
        Raha.Analysis.analyze ~options:setup.options setup.topo setup.paths setup.envelope
      else begin
        let c =
          Raha.Cluster.analyze ~options:setup.options ~clusters setup.topo setup.paths
            setup.envelope
        in
        Format.printf "clustered: %d block solves, %.1fs total@." c.Raha.Cluster.block_solves
          c.Raha.Cluster.total_elapsed;
        c.Raha.Cluster.report
      end
    in
    Format.printf "%a@." Raha.Analysis.pp_report r;
    Format.printf "@.%a@." (Raha.Analysis.pp_explanation setup.topo) r;
    Format.printf "@.worst demand:@.%a@." Traffic.Demand.pp r.Raha.Analysis.worst_demand
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Find the probable failure scenario and demand maximizing degradation.")
    Term.(const run $ setup_term $ clusters_arg)

let augment_cmd =
  let tolerance_arg =
    Arg.(value & opt float 0.01 & info [ "tolerance" ] ~doc:"Acceptable normalized degradation.")
  in
  let no_fail_arg =
    Arg.(
      value & flag
      & info [ "no-fail" ] ~doc:"Assume added capacity cannot fail (prior-work setting).")
  in
  let run setup tolerance no_fail =
    let r =
      Raha.Augment.augment_lags ~options:setup.options
        ~new_capacity_can_fail:(not no_fail) ~tolerance setup.topo setup.paths
        setup.envelope
    in
    List.iteri
      (fun i (s : Raha.Augment.step) ->
        Format.printf "step %d: degradation %.3g -> add %s@." (i + 1)
          s.Raha.Augment.report.Raha.Analysis.degradation
          (String.concat ", "
             (List.map
                (fun (e, n) -> Printf.sprintf "%d links to lag%d" n e)
                s.Raha.Augment.lag_links_added)))
      r.Raha.Augment.steps;
    Format.printf "converged=%b links_added=%d residual=%.3g@." r.Raha.Augment.converged
      r.Raha.Augment.total_links_added r.Raha.Augment.final.Raha.Analysis.degradation
  in
  Cmd.v
    (Cmd.info "augment" ~doc:"Add capacity until no probable failure degrades the WAN.")
    Term.(const run $ setup_term $ tolerance_arg $ no_fail_arg)

let alert_cmd =
  let tolerance_arg =
    Arg.(value & opt float 0.5 & info [ "tolerance" ] ~doc:"Alert above this normalized degradation.")
  in
  let run setup tolerance =
    let pairs = Traffic.Envelope.pairs setup.envelope in
    let peak =
      Traffic.Demand.of_list
        (List.map
           (fun (s, d) -> ((s, d), Traffic.Envelope.hi_volume setup.envelope ~src:s ~dst:d))
           pairs)
    in
    let v =
      Raha.Alert.run ~spec:setup.options.Raha.Analysis.spec ~tolerance
        ~fast_budget:(setup.options.Raha.Analysis.time_limit /. 4.)
        ~deep_budget:setup.options.Raha.Analysis.time_limit setup.topo setup.paths ~peak
        setup.envelope
    in
    let stage =
      match v.Raha.Alert.stage with
      | Some Raha.Alert.Fast_fixed_demand -> "fast (fixed peak demand)"
      | Some Raha.Alert.Deep_variable_demand -> "deep (variable demand)"
      | None -> "none"
    in
    Format.printf "alert=%b stage=%s@.fast check:@.%a@." v.Raha.Alert.alert stage
      Raha.Analysis.pp_report v.Raha.Alert.fast;
    match v.Raha.Alert.deep with
    | Some d -> Format.printf "deep check:@.%a@." Raha.Analysis.pp_report d
    | None -> ()
  in
  Cmd.v
    (Cmd.info "alert" ~doc:"Two-stage online alert: fixed peak first, then any demand.")
    Term.(const run $ setup_term $ tolerance_arg)

let socket_arg =
  Arg.(
    value
    & opt string Service.Server.default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (shared default with the other side).")

let serve_cmd =
  let drift_tol_arg =
    Arg.(
      value & opt float 0.05
      & info [ "drift-tol" ] ~docv:"D"
          ~doc:
            "Serve the cached worst-case answer while every per-link failure               probability estimate has drifted by at most D since it was               computed; above that, re-solve warm.")
  in
  let alert_tol_arg =
    Arg.(
      value & opt float 0.1
      & info [ "alert-tol" ] ~docv:"T"
          ~doc:
            "Push-alert threshold in normalized degradation units; a               subscriber may override it per connection.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Durable event log: replay PATH through the ingest path on               startup (recovering estimators, topology and demand envelope),               then append every accepted event to it.")
  in
  let run setup socket drift_tol alert_tolerance journal =
    let core =
      Service.Core.create
        {
          Service.Core.paths = setup.paths;
          envelope = setup.envelope;
          options = setup.options;
          drift_tol;
          alert_tolerance;
        }
        setup.topo
    in
    (match journal with
    | None -> ()
    | Some path ->
      let j, recovery = Service.Journal.open_ path in
      (match recovery.Service.Journal.damage with
      | Some reason ->
        Printf.eprintf "journal %s: damaged tail discarded (%s)\n%!" path reason
      | None -> ());
      let accepted, rejected =
        Service.Core.replay core recovery.Service.Journal.events
      in
      Printf.eprintf "journal %s: replayed %d event(s)%s\n%!" path accepted
        (if rejected > 0 then Printf.sprintf ", rejected %d" rejected else "");
      Service.Core.attach_journal core j);
    Service.Server.run ~socket core
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the always-on degradation service: ingest link telemetry events,               answer certified worst-case and \"now\" queries over a Unix socket,               and push alert/clear notifications to subscribers.")
    Term.(
      const run $ setup_term $ socket_arg $ drift_tol_arg $ alert_tol_arg
      $ journal_arg)

let query_cmd =
  let line_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST" ~doc:"One protocol request as a JSON line.")
  in
  let retries_arg =
    Arg.(
      value & opt int 100
      & info [ "retries" ]
          ~doc:"Connect attempts (50ms apart) while the server starts up.")
  in
  let run socket retries line =
    match Service.Server.request ~socket ~retries line with
    | Ok resp ->
      print_endline resp;
      if
        match Service.Json.of_string resp with
        | Ok j -> Service.Json.to_bool (Service.Json.member "ok" j) = Some true
        | Error _ -> false
      then exit 0
      else exit 1
    | Error msg ->
      prerr_endline msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send one JSON request line to a running $(b,raha serve) daemon and               print the response line. Exits 0 on an $(b,ok) response, 1 on a               protocol error, 2 on a connection failure.")
    Term.(const run $ socket_arg $ retries_arg $ line_arg)

let () =
  let doc = "analyze probable WAN degradation under failures and traffic shifts" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "raha" ~version:"1.0.0" ~doc)
          [ info_cmd; analyze_cmd; augment_cmd; alert_cmd; serve_cmd; query_cmd ]))
