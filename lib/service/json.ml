type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_str x =
  if Float.is_nan x then "\"nan\""
  else if x = Float.infinity then "\"inf\""
  else if x = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" x

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float x -> Buffer.add_string b (float_str x)
    | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
    | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        l;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: a plain recursive-descent reader over the string           *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
            Buffer.add_char b e;
            go ()
          | 'n' ->
            Buffer.add_char b '\n';
            go ()
          | 't' ->
            Buffer.add_char b '\t';
            go ()
          | 'r' ->
            Buffer.add_char b '\r';
            go ()
          | 'b' ->
            Buffer.add_char b '\b';
            go ()
          | 'f' ->
            Buffer.add_char b '\012';
            go ()
          | 'u' ->
            if !pos + 4 > n then fail "bad \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* keep it simple: BMP code points via a tiny UTF-8 encoder
               (the protocol itself is ASCII) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
          | _ -> fail "bad escape")
        | c ->
          Buffer.add_char b c;
          go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match int_of_string_opt str with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt str with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" str))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj kvs -> ( match List.assoc_opt key kvs with Some v -> v | None -> Null)
  | _ -> Null

let float x = Float x

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | String "nan" -> Some Float.nan
  | String "inf" -> Some Float.infinity
  | String "-inf" -> Some Float.neg_infinity
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
