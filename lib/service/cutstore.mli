(** Cross-solve cut persistence with validity re-checking.

    {!Milp.Cuts} pools are tree-wide-valid but solve-local: they speak
    post-presolve indexing and die with the solve. The service instead
    keeps {!Milp.Cuts.structural} cuts — cover and clique inequalities
    in {e original-model} indexing, each carrying the source rows its
    derivation used — and re-admits a cut into a later solve only when
    every dependency row is still present, verbatim, in the new model.

    "Verbatim" is a fingerprint: the row's terms, relation and rhs plus
    the kind and global box of every support variable, rendered in hex
    float notation (exact, no rounding). {!Raha.Bilevel.build} is
    deterministic, so across rebuilds over unchanged inputs every
    fingerprint matches and every cut survives; when the probability
    estimates drift, the rows they enter (the log-probability threshold
    knapsack) change their fingerprints and exactly the cuts derived
    from them are dropped — validity by implication, not hope. Gomory
    cuts are never stored ({!Milp.Cuts.separate_structural} cannot emit
    them: they depend on the whole basis inverse). *)

type t

val create : Milp.Cuts.options -> t

(** Drop everything (topology structure changed). *)
val clear : t -> unit

type stats = {
  kept : int;  (** stored cuts whose dependencies all still hold *)
  dropped : int;  (** stored cuts invalidated by a changed row *)
  fresh : int;  (** cuts newly separated on this model *)
}

(** [advise t spec topo paths envelope] prepares the cut set for a
    solve of these inputs: builds the pristine bilevel model, drops
    stored cuts whose dependency fingerprints no longer match a model
    row, separates fresh cuts at the model's LP-relaxation optimum,
    and returns the surviving union (the next solve's [?extra_cuts]).
    Every returned cut is valid for this model — survivors by the
    fingerprint check, fresh cuts by construction. *)
val advise :
  t ->
  Raha.Bilevel.spec ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Envelope.t ->
  Milp.Cuts.structural list * stats

val size : t -> int
