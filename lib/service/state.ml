(* Flattened link addressing: links of lag 0, then lag 1, ... — the
   same order everywhere (estimates vector, live_down, rebuilds), so
   replay is deterministic by construction. *)

type t = {
  base : Wan.Topology.t;
  offsets : int array;  (* first flat index of each lag *)
  total : int;
  mutable est : Failure.Renewal.Incr.t array;
  capacity : float array;  (* current provisioned capacity per link *)
  configured_prob : float array;
  mutable envelope : Traffic.Envelope.t;
  mutable clock : float;
  mutable events : int;
  mutable structure_gen : int;
  mutable memo : (int * Wan.Topology.t) option;
      (* topology rebuilt at event count [fst] *)
}

let create ~envelope base =
  let nl = Wan.Topology.num_lags base in
  let offsets = Array.make nl 0 in
  let total = ref 0 in
  for e = 0 to nl - 1 do
    offsets.(e) <- !total;
    total := !total + Wan.Lag.num_links (Wan.Topology.lag base e)
  done;
  let total = !total in
  let capacity = Array.make total 0. in
  let configured_prob = Array.make total 0. in
  for e = 0 to nl - 1 do
    let lag = Wan.Topology.lag base e in
    Array.iteri
      (fun i (l : Wan.Lag.link) ->
        capacity.(offsets.(e) + i) <- l.Wan.Lag.link_capacity;
        configured_prob.(offsets.(e) + i) <- l.Wan.Lag.fail_prob)
      lag.Wan.Lag.links
  done;
  {
    base;
    offsets;
    total;
    est = Array.make total Failure.Renewal.Incr.empty;
    capacity;
    configured_prob;
    envelope;
    clock = 0.;
    events = 0;
    structure_gen = 0;
    memo = None;
  }

let flat t ~lag ~link =
  if lag < 0 || lag >= Array.length t.offsets then
    Error (Printf.sprintf "no such lag %d" lag)
  else begin
    let n = Wan.Lag.num_links (Wan.Topology.lag t.base lag) in
    if link < 0 || link >= n then
      Error (Printf.sprintf "lag %d has no link %d" lag link)
    else Ok (t.offsets.(lag) + link)
  end

let ( let* ) = Result.bind

let check_time t at =
  if Float.is_nan at then Error "event time is nan"
  else if at < t.clock then
    Error
      (Printf.sprintf "time regression: event at %g, clock at %g" at t.clock)
  else Ok ()

let apply t ev =
  let applied ?(structural = false) at =
    t.clock <- Float.max t.clock at;
    t.events <- t.events + 1;
    if structural then t.structure_gen <- t.structure_gen + 1;
    t.memo <- None;
    Ok structural
  in
  match (ev : Event.event) with
  | Event.Link_down { lag; link; at } ->
    let* k = flat t ~lag ~link in
    let* () = check_time t at in
    let* e =
      try Ok (Failure.Renewal.Incr.down t.est.(k) ~at)
      with Invalid_argument m -> Error m
    in
    t.est.(k) <- e;
    applied at
  | Event.Link_up { lag; link; at } ->
    let* k = flat t ~lag ~link in
    let* () = check_time t at in
    let* e =
      try Ok (Failure.Renewal.Incr.up t.est.(k) ~at)
      with Invalid_argument m -> Error m
    in
    t.est.(k) <- e;
    applied at
  | Event.Capacity { lag; link; capacity; at } ->
    let* k = flat t ~lag ~link in
    let* () = check_time t at in
    if not (capacity > 0. && Float.is_finite capacity) then
      Error "capacity must be positive and finite"
    else begin
      t.capacity.(k) <- capacity;
      applied ~structural:true at
    end
  | Event.Demand { src; dst; lo; hi; at } ->
    let* () = check_time t at in
    if
      not
        (Float.is_finite lo && Float.is_finite hi && lo >= 0. && hi >= lo)
    then Error "demand bounds must satisfy 0 <= lo <= hi, finite"
    else if
      (* only re-forecasts of pairs the model already carries: a brand-new
         pair would change the LP's variable set mid-stream, which no
         cached artifact (or the paper's model) anticipates *)
      not (List.mem (src, dst) (Traffic.Envelope.pairs t.envelope))
    then Error (Printf.sprintf "no demand pair (%d, %d) in the envelope" src dst)
    else begin
      t.envelope <-
        {
          Traffic.Envelope.lo =
            Traffic.Demand.set t.envelope.Traffic.Envelope.lo ~src ~dst lo;
          hi = Traffic.Demand.set t.envelope.Traffic.Envelope.hi ~src ~dst hi;
        };
      applied ~structural:true at
    end

let events_applied t = t.events
let envelope t = t.envelope
let clock t = t.clock
let structure_generation t = t.structure_gen

let live_down t =
  let out = ref [] in
  for e = Array.length t.offsets - 1 downto 0 do
    let n = Wan.Lag.num_links (Wan.Topology.lag t.base e) in
    for i = n - 1 downto 0 do
      if Failure.Renewal.Incr.is_down t.est.(t.offsets.(e) + i) then
        out := (e, i) :: !out
    done
  done;
  !out

let num_down t =
  let c = ref 0 in
  Array.iter (fun e -> if Failure.Renewal.Incr.is_down e then incr c) t.est;
  !c

(* Estimate discipline (= Failure.Trace.calibrate_topology): clamp to
   [1e-6, 0.99] so log-probabilities stay finite; links with no
   telemetry (and the whole stream before its first event) keep the
   configured probability. *)
let estimate_at t k =
  let e = t.est.(k) in
  if
    t.clock <= 0.
    || (Failure.Renewal.Incr.count e = 0 && not (Failure.Renewal.Incr.is_down e))
  then t.configured_prob.(k)
  else
    let p = Failure.Renewal.Incr.estimate ~horizon:t.clock e in
    Float.min 0.99 (Float.max 1e-6 p)

let estimates t = Array.init t.total (estimate_at t)

let current_topology t =
  match t.memo with
  | Some (ev, topo) when ev = t.events -> topo
  | _ ->
    let nl = Wan.Topology.num_lags t.base in
    let lags =
      List.init nl (fun e ->
          let lag = Wan.Topology.lag t.base e in
          let links =
            Array.to_list
              (Array.mapi
                 (fun i (_ : Wan.Lag.link) ->
                   let k = t.offsets.(e) + i in
                   {
                     Wan.Lag.link_capacity = t.capacity.(k);
                     fail_prob = estimate_at t k;
                   })
                 lag.Wan.Lag.links)
          in
          Wan.Lag.make ~id:e ~src:lag.Wan.Lag.src ~dst:lag.Wan.Lag.dst links)
    in
    let names =
      Array.init (Wan.Topology.num_nodes t.base) (Wan.Topology.node_name t.base)
    in
    let topo =
      Wan.Topology.create ~node_names:names
        ~name:(Wan.Topology.name t.base)
        ~num_nodes:(Wan.Topology.num_nodes t.base)
        lags
    in
    t.memo <- Some (t.events, topo);
    topo
