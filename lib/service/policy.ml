type verdict = Cached | Warm | Cold

let verdict_name = function
  | Cached -> "cached"
  | Warm -> "warm"
  | Cold -> "cold"

let decide ~structural_changed ~drift ~drift_tol ~down_in_support =
  if structural_changed then Cold
  else if drift > drift_tol || down_in_support then Warm
  else Cached

let drift a b =
  if Array.length a <> Array.length b then Float.infinity
  else begin
    let m = ref 0. in
    Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
    !m
  end
