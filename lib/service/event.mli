(** Telemetry events and queries of the degradation service.

    The ingest side of the daemon consumes {!event} values — the
    line-delimited JSON twin of {!Failure.Trace}-style repair logs plus
    capacity changes — and the query side consumes {!query} values. One
    JSON object per line; see README "raha serve" for the protocol. *)

type event =
  | Link_down of { lag : int; link : int; at : float }
      (** physical link [(lag, link)] went down at time [at] *)
  | Link_up of { lag : int; link : int; at : float }
      (** the link was repaired at time [at] *)
  | Capacity of { lag : int; link : int; capacity : float; at : float }
      (** the link's capacity was re-provisioned — a {e structural}
          change: every cached model artifact is invalidated *)
  | Demand of { src : int; dst : int; lo : float; hi : float; at : float }
      (** the demand envelope for pair [(src, dst)] was re-forecast to
          [\[lo, hi\]] — structural, like {!Capacity}: the worst-case
          model is built over the envelope, so every cached artifact
          (engine, cutstore, cached answer) is invalidated. Wire form is
          [{"op":"demand",...}] rather than an ["ev"] kind *)

val event_time : event -> float

type query =
  | Worst of { budget : int option; max_nodes : int option }
      (** the worst probable (failure, demand) degradation under the
          current probability estimates; [budget] caps simplex pivots
          per LP, [max_nodes] caps branch-and-bound nodes *)
  | Now of { down : (int * int) list option }
      (** degradation at the peak screening demand under an overlay
          scenario: the given [(lag, link)] set, or (default) the
          currently-down links. A pure warm-overlay read on the
          persistent engine — many of these run concurrently on the
          {!Parallel.Pool} ({!Core.now_many}) *)
  | Status  (** freshness and ingest statistics; never solves *)

type request =
  | Event of event
  | Query of query
  | Subscribe of { tolerance : float option }
      (** register the connection for push alert/clear notifications;
          [tolerance] overrides the daemon-wide alert threshold for this
          subscriber. Handled by {!Server}, not {!Core.handle} *)
  | Shutdown

(** Parse one protocol line. [Error] carries a human-readable reason
    (echoed back to the client in an ["error"] response). *)
val request_of_json : Json.t -> (request, string) result

val request_of_line : string -> (request, string) result

(** Encodings, used by the client side and the tests. *)

val json_of_event : event -> Json.t
val json_of_query : query -> Json.t
val json_of_request : request -> Json.t
