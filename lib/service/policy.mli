(** Invalidation policy: does the cached worst-case answer survive the
    events applied since it was computed?

    Pure decision logic, separated from the solving machinery so the
    soundness test can drive it over a generated corpus. The tiers:

    - {b Cached}: the structure is unchanged, no probability estimate
      drifted past the tolerance, and no currently-down link lies in
      the cached worst case's support — the answer is served as-is.
    - {b Warm}: only probability-side state moved (drift past the
      tolerance, or a live failure inside the cached support). The
      bilevel model is rebuilt over the new estimates and re-solved
      warm: screening overlays on the persistent engine, surviving
      persisted cuts, candidate plunge hints.
    - {b Cold}: the formulation structure itself changed (capacity or
      demand-envelope event).
      Engine, cut store and cache are all rebuilt from scratch. *)

type verdict = Cached | Warm | Cold

val verdict_name : verdict -> string

(** [decide ~structural_changed ~drift ~drift_tol ~down_in_support] —
    see the tier descriptions above. [drift] is the max absolute change
    of any per-link probability estimate since the cached solve
    ([infinity] when there is no cached answer). *)
val decide :
  structural_changed:bool ->
  drift:float ->
  drift_tol:float ->
  down_in_support:bool ->
  verdict

(** Max absolute componentwise difference; [infinity] on length
    mismatch (a structural change also resized the link set). *)
val drift : float array -> float array -> float
