(** Push-notification state: subscribers, crossing logic, bounded
    per-subscriber outgoing queues.

    This module is deliberately independent of the solver types: a stage
    result is just response fields plus an [exceeds] predicate, so the
    crossing/backpressure logic is unit-testable with fabricated
    results. {!Core} adapts {!Raha.Alert}'s two stages into
    {!stage_result} values and calls {!evaluate} after every accepted
    event; {!Server} owns the subscriber ids (its connection ids) and
    drains the queues onto the sockets without ever blocking the event
    loop.

    Crossing semantics, per subscriber (each may override the daemon
    tolerance): an {e alert} notification fires on the quiet→exceeding
    transition — from the fast stage immediately when it exceeds the
    subscriber's tolerance, else from the deep stage when that exceeds —
    and a {e clear} fires on the alerting→quiet transition, which
    requires {e both} stages below tolerance. While a subscriber stays
    on one side no notification is repeated. The deep stage is computed
    lazily, at most once per {!evaluate}, and only when some
    subscriber's fast stage came in below tolerance (mirroring
    {!Raha.Alert.run}, which skips the deep solve when the fast stage
    already alerted). A stage with [usable = false] (solver failure)
    freezes every affected subscriber's state — no spurious clears.

    Backpressure: each subscriber has a bounded queue of outgoing lines
    (newline-terminated). Enqueueing onto a full queue drops the {e
    oldest} queued line and bumps the global [dropped] counter; the line
    currently being written ({!next_chunk} progress) is never dropped
    mid-write. *)

type t

(** Fields of one pipeline stage plus its threshold predicate.
    [usable = false] marks a failed solve: no transition may rest on
    it. *)
type stage_result = {
  fields : (string * Json.t) list;
  exceeds : float -> bool;  (** applied to each subscriber's tolerance *)
  usable : bool;
}

type stats = {
  evaluations : int;  (** {!evaluate} calls with >= 1 subscriber *)
  alerts : int;  (** alert notifications emitted (all subscribers) *)
  clears : int;
  deep_runs : int;  (** times the lazy deep stage was actually solved *)
  dropped : int;  (** lines dropped to backpressure, all subscribers *)
}

(** [create ~tolerance ()] — [tolerance] is the daemon-wide default
    threshold; [queue_cap] bounds each subscriber's outgoing queue
    (default 64 lines). *)
val create : ?queue_cap:int -> tolerance:float -> unit -> t

(** Register subscriber [id] (idempotent: re-subscribing replaces the
    tolerance override and resets the crossing state, keeping queued
    lines). *)
val subscribe : t -> id:int -> tolerance:float option -> unit

(** Forget subscriber [id] and its queue (no-op when unknown). *)
val unsubscribe : t -> id:int -> unit

val subscribed : t -> id:int -> bool
val subscribers : t -> int

(** Run the crossing logic over every subscriber. [deep] is invoked at
    most once, and only if some subscriber needs it; [flush] is called
    after the fast-stage emissions so the caller can push them onto the
    wire before the (slow) deep solve runs. *)
val evaluate :
  t ->
  fast:stage_result ->
  deep:(unit -> stage_result) ->
  flush:(unit -> unit) ->
  unit

(** Queue an arbitrary response line for subscriber [id] (used by
    {!Server} once a connection's writes are routed through the queue).
    A missing trailing newline is added. No-op for unknown ids. *)
val enqueue : t -> id:int -> string -> unit

(** Subscribers with bytes waiting to go out. *)
val pending_ids : t -> int list

(** [next_chunk t ~id] — the line currently in flight and the offset of
    its first unwritten byte, or [None] when the queue is empty.
    Dequeues the next line when nothing is in flight. *)
val next_chunk : t -> id:int -> (string * int) option

(** [advance t ~id n]: [n] more bytes of the in-flight line were
    written. *)
val advance : t -> id:int -> int -> unit

val stats : t -> stats
