type event =
  | Link_down of { lag : int; link : int; at : float }
  | Link_up of { lag : int; link : int; at : float }
  | Capacity of { lag : int; link : int; capacity : float; at : float }
  | Demand of { src : int; dst : int; lo : float; hi : float; at : float }

let event_time = function
  | Link_down { at; _ } | Link_up { at; _ } | Capacity { at; _ }
  | Demand { at; _ } ->
    at

type query =
  | Worst of { budget : int option; max_nodes : int option }
  | Now of { down : (int * int) list option }
  | Status

type request =
  | Event of event
  | Query of query
  | Subscribe of { tolerance : float option }
  | Shutdown

let ( let* ) = Result.bind

let field_int j key =
  match Json.to_int (Json.member key j) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer %S" key)

let field_float j key =
  match Json.to_float (Json.member key j) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-numeric %S" key)

let opt_int j key =
  match Json.member key j with
  | Json.Null -> Ok None
  | v -> (
    match Json.to_int v with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "non-integer %S" key))

let opt_float j key =
  match Json.member key j with
  | Json.Null -> Ok None
  | v -> (
    match Json.to_float v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "non-numeric %S" key))

let demand_of_json j =
  let* src = field_int j "src" in
  let* dst = field_int j "dst" in
  let* lo = field_float j "lo" in
  let* hi = field_float j "hi" in
  let* at = field_float j "t" in
  Ok (Demand { src; dst; lo; hi; at })

let event_of_json j =
  let* ev =
    match Json.to_str (Json.member "ev" j) with
    | Some s -> Ok s
    | None -> Error "missing \"ev\""
  in
  let* lag = field_int j "lag" in
  let* link = field_int j "link" in
  let* at = field_float j "t" in
  match ev with
  | "down" -> Ok (Link_down { lag; link; at })
  | "up" -> Ok (Link_up { lag; link; at })
  | "capacity" ->
    let* capacity = field_float j "cap" in
    Ok (Capacity { lag; link; capacity; at })
  | "demand" -> Error "demand events use {\"op\":\"demand\",...}"
  | s -> Error (Printf.sprintf "unknown event kind %S" s)

let links_of_json j =
  match j with
  | Json.Null -> Ok None
  | Json.List items ->
    let rec go acc = function
      | [] -> Ok (Some (List.rev acc))
      | Json.List [ a; b ] :: rest -> (
        match (Json.to_int a, Json.to_int b) with
        | Some lag, Some link -> go ((lag, link) :: acc) rest
        | _ -> Error "\"down\" entries must be [lag, link] integer pairs")
      | _ -> Error "\"down\" entries must be [lag, link] integer pairs"
    in
    go [] items
  | _ -> Error "\"down\" must be a list of [lag, link] pairs"

let query_of_json j =
  match Json.to_str (Json.member "q" j) with
  | Some "worst" ->
    let* budget = opt_int j "budget" in
    let* max_nodes = opt_int j "max_nodes" in
    Ok (Worst { budget; max_nodes })
  | Some "now" ->
    let* down = links_of_json (Json.member "down" j) in
    Ok (Now { down })
  | Some "status" -> Ok Status
  | Some s -> Error (Printf.sprintf "unknown query %S" s)
  | None -> Error "missing \"q\""

let request_of_json j =
  match Json.to_str (Json.member "op" j) with
  | Some "event" ->
    let* e = event_of_json j in
    Ok (Event e)
  | Some "demand" ->
    let* e = demand_of_json j in
    Ok (Event e)
  | Some "query" ->
    let* q = query_of_json j in
    Ok (Query q)
  | Some "subscribe" ->
    let* tolerance = opt_float j "tolerance" in
    (match tolerance with
    | Some t when not (Float.is_finite t && t >= 0.) ->
      Error "\"tolerance\" must be a non-negative finite number"
    | _ -> Ok (Subscribe { tolerance }))
  | Some "shutdown" -> Ok Shutdown
  | Some s -> Error (Printf.sprintf "unknown op %S" s)
  | None -> Error "missing \"op\""

let request_of_line line =
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "bad json: %s" msg)
  | Ok j -> request_of_json j

let json_of_event e =
  let base kind lag link at rest =
    Json.Obj
      ([
         ("op", Json.String "event");
         ("ev", Json.String kind);
         ("lag", Json.Int lag);
         ("link", Json.Int link);
       ]
      @ rest
      @ [ ("t", Json.float at) ])
  in
  match e with
  | Link_down { lag; link; at } -> base "down" lag link at []
  | Link_up { lag; link; at } -> base "up" lag link at []
  | Capacity { lag; link; capacity; at } ->
    base "capacity" lag link at [ ("cap", Json.float capacity) ]
  | Demand { src; dst; lo; hi; at } ->
    Json.Obj
      [
        ("op", Json.String "demand");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("lo", Json.float lo);
        ("hi", Json.float hi);
        ("t", Json.float at);
      ]

let json_of_query q =
  let fields =
    match q with
    | Worst { budget; max_nodes } ->
      [ ("q", Json.String "worst") ]
      @ (match budget with Some b -> [ ("budget", Json.Int b) ] | None -> [])
      @ (match max_nodes with
        | Some m -> [ ("max_nodes", Json.Int m) ]
        | None -> [])
    | Now { down } ->
      [ ("q", Json.String "now") ]
      @ (match down with
        | Some links ->
          [
            ( "down",
              Json.List
                (List.map
                   (fun (e, i) -> Json.List [ Json.Int e; Json.Int i ])
                   links) );
          ]
        | None -> [])
    | Status -> [ ("q", Json.String "status") ]
  in
  Json.Obj (("op", Json.String "query") :: fields)

let json_of_request = function
  | Event e -> json_of_event e
  | Query q -> json_of_query q
  | Subscribe { tolerance } ->
    Json.Obj
      (("op", Json.String "subscribe")
      ::
      (match tolerance with
      | Some t -> [ ("tolerance", Json.float t) ]
      | None -> []))
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]
