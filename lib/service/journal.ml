let src = Logs.Src.create "service.journal" ~doc:"durable event log"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3 / zlib polynomial, reflected)                    *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)

(* A record is [u32 be length][u32 be crc32(payload)][payload]. The
   length cap rejects absurd headers produced by corruption before they
   turn into gigabyte allocations. *)
let max_record = 1 lsl 24

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode payload =
  let b = Buffer.create (String.length payload + 8) in
  put_u32 b (String.length payload);
  put_u32 b (Int32.to_int (crc32 payload) land 0xFFFFFFFF);
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scan / recovery                                                     *)

type recovery = {
  events : Event.event list;
  valid_bytes : int;
  damage : string option;
}

let scan_string data =
  let n = String.length data in
  let events = ref [] in
  let pos = ref 0 in
  let damage = ref None in
  let stop msg =
    damage := Some (Printf.sprintf "%s at offset %d" msg !pos)
  in
  (try
     while !pos < n && !damage = None do
       if !pos + 8 > n then stop "truncated record header"
       else begin
         let len = get_u32 data !pos in
         let crc = get_u32 data (!pos + 4) in
         if len < 0 || len > max_record then
           stop (Printf.sprintf "implausible record length %d" len)
         else if !pos + 8 + len > n then stop "truncated record payload"
         else begin
           let payload = String.sub data (!pos + 8) len in
           if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> crc then
             stop "crc mismatch"
           else begin
             match Json.of_string payload with
             | Error m -> stop (Printf.sprintf "unparseable payload: %s" m)
             | Ok j -> (
               match Event.request_of_json j with
               | Ok (Event.Event e) ->
                 events := e :: !events;
                 pos := !pos + 8 + len
               | Ok _ -> stop "record is not an event"
               | Error m -> stop (Printf.sprintf "bad event record: %s" m))
           end
         end
       end
     done
   with _ -> stop "unreadable record");
  { events = List.rev !events; valid_bytes = !pos; damage = !damage }

let scan path =
  if not (Sys.file_exists path) then
    { events = []; valid_bytes = 0; damage = None }
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    scan_string data
  end

(* ------------------------------------------------------------------ *)
(* Append handle                                                       *)

type t = { fd : Unix.file_descr; path : string; mutable appended : int }

let open_ path =
  let r = scan path in
  (match r.damage with
  | Some reason ->
    Log.warn (fun f ->
        f "%s: discarding damaged tail (%s); %d intact event(s) kept" path
          reason (List.length r.events))
  | None -> ());
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (* truncate away any damaged tail so appends extend a clean log *)
  Unix.ftruncate fd r.valid_bytes;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  ({ fd; path; appended = 0 }, r)

let write_all fd data =
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done

let append t ~structural ev =
  let payload = Json.to_string (Event.json_of_event ev) in
  write_all t.fd (Bytes.of_string (encode payload));
  (* structural records (capacity, demand envelope) are the ones whose
     loss forces operator intervention — push them through to disk *)
  if structural then Unix.fsync t.fd;
  t.appended <- t.appended + 1

let appended t = t.appended
let path t = t.path
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
