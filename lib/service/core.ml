let src = Logs.Src.create "service.core" ~doc:"degradation service core"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  paths : Netpath.Path_set.t;
  envelope : Traffic.Envelope.t;
  options : Raha.Analysis.options;
  drift_tol : float;
  alert_tolerance : float;
}

(* The cached worst-case answer, plus everything the invalidation
   policy compares against: the estimates vector at solve time, the
   structure generation, and the worst case's link support. *)
type cached = {
  answer : (string * Json.t) list;  (* the result fields, sans freshness *)
  report : Raha.Analysis.report;
      (* the full solve report behind [answer] — the deep alert stage
         re-reads it (normalized degradation, Report summary) without
         re-deriving anything from the JSON *)
  support : (int * int) list;
  probs : float array;
  events_at : int;
  sgen_at : int;
  proved : bool;
      (* the cached solve proved optimality; a budget-starved Feasible
         or Unknown answer is remembered (for its hints and telemetry)
         but never re-served — the next query re-solves *)
}

type t = {
  cfg : config;
  state : State.t;
  cuts : Cutstore.t;
  alerting : Alerting.t;
  mutable journal : Journal.t option;
  mutable engine : (int * Te.Simulate.engine option) option;
      (* (structure generation it was prepared at, engine); [Some None]
         records that the healthy network cannot route the screening
         demand — also a valid, cacheable fact *)
  mutable cached : cached option;
  mutable n_cached : int;
  mutable n_warm : int;
  mutable n_cold : int;
}

let create cfg topo =
  {
    cfg;
    state = State.create ~envelope:cfg.envelope topo;
    cuts = Cutstore.create cfg.options.Raha.Analysis.cuts;
    alerting = Alerting.create ~tolerance:cfg.alert_tolerance ();
    journal = None;
    engine = None;
    cached = None;
    n_cached = 0;
    n_warm = 0;
    n_cold = 0;
  }

let tally t = (t.n_cached, t.n_warm, t.n_cold)
let alerting t = t.alerting
let attach_journal t j = t.journal <- Some j

(* ------------------------------------------------------------------ *)
(* Response plumbing                                                   *)

let err msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]
let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let status_str s = Format.asprintf "%a" Milp.Solver.pp_status s

let scenario_json links =
  Json.List (List.map (fun (e, i) -> Json.List [ Json.Int e; Json.Int i ]) links)

let counters_json (report : Milp.Lp_stats.scope_report) =
  Json.Obj
    (List.filter_map
       (fun (k, v) -> if v = 0 then None else Some (k, Json.Int v))
       report.Milp.Lp_stats.scope_counters)

(* cert verdict from the scope: every certification and audit that ran
   inside this query must have passed *)
let cert_of_scope ~enabled (report : Milp.Lp_stats.scope_report) =
  if not enabled then "none"
  else begin
    let read k =
      match List.assoc_opt k report.Milp.Lp_stats.scope_counters with
      | Some v -> v
      | None -> 0
    in
    if read "certify-failures" = 0 && read "cut-audit-failures" = 0 then "ok"
    else "fail"
  end

let rec strip_volatile = function
  | Json.Obj kvs ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "elapsed" || k = "counters" then None
           else Some (k, strip_volatile v))
         kvs)
  | Json.List l -> Json.List (List.map strip_volatile l)
  | j -> j

(* ------------------------------------------------------------------ *)
(* Engine lifecycle                                                    *)

let engine_for t =
  let sgen = State.structure_generation t.state in
  match t.engine with
  | Some (g, e) when g = sgen -> e
  | _ ->
    let topo = State.current_topology t.state in
    let e =
      Raha.Analysis.screening_engine ~spec:t.cfg.options.Raha.Analysis.spec topo
        t.cfg.paths (State.envelope t.state)
    in
    t.engine <- Some (sgen, e);
    e

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let freshness ~provenance ~events_at t =
  [
    ("provenance", Json.String provenance);
    ("events_applied", Json.Int events_at);
    ("staleness", Json.Int (State.events_applied t.state - events_at));
  ]

let solve_worst t ~verdict ~budget ~max_nodes =
  let topo = State.current_topology t.state in
  let envelope = State.envelope t.state in
  let spec = t.cfg.options.Raha.Analysis.spec in
  if verdict = Policy.Cold then begin
    (* structure moved: engine and persisted cuts are built over rows
       that no longer exist *)
    t.engine <- None;
    Cutstore.clear t.cuts
  end;
  let screen = engine_for t in
  let extra_cuts, cstats =
    Cutstore.advise t.cuts spec topo t.cfg.paths envelope
  in
  let options =
    {
      t.cfg.options with
      Raha.Analysis.sx_iters =
        (match budget with
        | Some _ -> budget
        | None -> t.cfg.options.Raha.Analysis.sx_iters);
      max_nodes =
        (match max_nodes with
        | Some m -> min m t.cfg.options.Raha.Analysis.max_nodes
        | None -> t.cfg.options.Raha.Analysis.max_nodes);
    }
  in
  let r =
    Raha.Analysis.analyze ?screen ~extra_cuts ~options topo t.cfg.paths envelope
  in
  let support = Failure.Scenario.links r.Raha.Analysis.scenario in
  let answer =
    [
      ("kind", Json.String "worst");
      ("status", Json.String (status_str r.Raha.Analysis.status));
      ("degradation", Json.float r.Raha.Analysis.degradation);
      ("normalized", Json.float r.Raha.Analysis.normalized);
      ("bound", Json.float r.Raha.Analysis.bound);
      ("scenario", scenario_json support);
      ("scenario_prob", Json.float r.Raha.Analysis.scenario_prob);
      ("num_failed_links", Json.Int r.Raha.Analysis.num_failed_links);
      ("nodes", Json.Int r.Raha.Analysis.nodes);
      ("cuts_kept", Json.Int cstats.Cutstore.kept);
      ("cuts_fresh", Json.Int cstats.Cutstore.fresh);
    ]
  in
  t.cached <-
    Some
      {
        answer;
        report = r;
        support;
        probs = State.estimates t.state;
        events_at = State.events_applied t.state;
        sgen_at = State.structure_generation t.state;
        proved = r.Raha.Analysis.status = Milp.Solver.Optimal;
      };
  (answer, r.Raha.Analysis.elapsed, r.Raha.Analysis.certificate)

(* The invalidation verdict a worst query (or a deep alert evaluation)
   would act on right now. *)
let worst_verdict t =
  let est = State.estimates t.state in
  let sgen = State.structure_generation t.state in
  let verdict =
    match t.cached with
    | None ->
      Policy.decide ~structural_changed:true ~drift:Float.infinity
        ~drift_tol:t.cfg.drift_tol ~down_in_support:false
    | Some c ->
      Policy.decide
        ~structural_changed:(c.sgen_at <> sgen)
        ~drift:(Policy.drift est c.probs) ~drift_tol:t.cfg.drift_tol
        ~down_in_support:
          (List.exists
             (fun l -> List.mem l c.support)
             (State.live_down t.state))
  in
  (* an unproven cached answer (budget starvation) is never re-served *)
  match (verdict, t.cached) with
  | Policy.Cached, Some c when not c.proved -> Policy.Warm
  | v, _ -> v

(* Solve inside a counter scope, fold the cert verdict into the cached
   answer, return the wire fields plus the scope report. *)
let solve_scoped t ~verdict ~budget ~max_nodes =
  let certify_on = t.cfg.options.Raha.Analysis.certify in
  let scope = Milp.Lp_stats.scope_enter ~hooks:Milp.Solver.stats_counters () in
  let answer, elapsed, certificate = solve_worst t ~verdict ~budget ~max_nodes in
  let report = Milp.Lp_stats.scope_exit scope in
  let cert =
    (* the MILP's own certificate is authoritative; overlay/cut audit
       failures inside the scope also taint the verdict *)
    match certificate with
    | Some c when not c.Milp.Certify.ok -> "fail"
    | Some _ | None -> cert_of_scope ~enabled:certify_on report
  in
  let answer = answer @ [ ("cert", Json.String cert) ] in
  (* fold the verdict into the cache so later cached serves repeat it *)
  (match t.cached with
  | Some c -> t.cached <- Some { c with answer }
  | None -> ());
  (answer, elapsed, report)

let query_worst t ~budget ~max_nodes =
  let verdict = worst_verdict t in
  match (verdict, t.cached) with
  | Policy.Cached, Some c ->
    t.n_cached <- t.n_cached + 1;
    (* no solver work; [c.answer] already carries the cached solve's
       cert verdict *)
    ok
      (c.answer
      @ freshness ~provenance:"cached" ~events_at:c.events_at t
      @ [ ("elapsed", Json.float 0.); ("counters", Json.Obj []) ])
  | _ ->
    let answer, elapsed, report = solve_scoped t ~verdict ~budget ~max_nodes in
    (match verdict with
    | Policy.Warm -> t.n_warm <- t.n_warm + 1
    | Policy.Cached | Policy.Cold -> t.n_cold <- t.n_cold + 1);
    ok
      (answer
      @ freshness
          ~provenance:(Policy.verdict_name verdict)
          ~events_at:(State.events_applied t.state) t
      @ [ ("elapsed", Json.float elapsed); ("counters", counters_json report) ])

let now_answer t ~down ~deg ~prob ~cert ~counters =
  let events_at = State.events_applied t.state in
  ok
    ([
       ("kind", Json.String "now");
       ("down", scenario_json down);
       ( "degradation",
         match deg with Some d -> Json.float d | None -> Json.Null );
       ("prob", Json.float prob);
       ("cert", Json.String cert);
     ]
    @ freshness ~provenance:"overlay" ~events_at t
    @ [ ("counters", counters) ])

let query_now t ~down =
  let scope = Milp.Lp_stats.scope_enter ~hooks:Milp.Solver.stats_counters () in
  let topo = State.current_topology t.state in
  let down =
    match down with Some d -> d | None -> State.live_down t.state
  in
  let result =
    match engine_for t with
    | None -> Error "healthy network cannot route the screening demand"
    | Some eng -> (
      match Failure.Scenario.of_links topo down with
      | exception Invalid_argument m -> Error m
      | scenario ->
        Ok
          ( Te.Simulate.degradation_prepared eng scenario,
            Failure.Scenario.prob topo scenario ))
  in
  let report = Milp.Lp_stats.scope_exit scope in
  match result with
  | Error m -> err m
  | Ok (deg, prob) ->
    now_answer t ~down ~deg ~prob
      ~cert:(cert_of_scope ~enabled:t.cfg.options.Raha.Analysis.certify report)
      ~counters:(counters_json report)

(* Concurrent overlay evaluation: the engine is immutable and overlay
   solves are pure, so a batch of "now" queries fans out on the
   parallel pool. Order-preserving map + per-batch counter aggregation
   keep the answer sequence bit-identical whatever the domain count
   (per-query counter attribution is impossible under work stealing,
   so the batch shares one counters/cert verdict — a failure of any
   overlay audit taints the whole batch). *)
let now_many t downs =
  let topo = State.current_topology t.state in
  match engine_for t with
  | None ->
    Array.map
      (fun _ -> err "healthy network cannot route the screening demand")
      downs
  | Some eng ->
    let live = State.live_down t.state in
    let items =
      Array.map
        (fun d ->
          let down = match d with Some d -> d | None -> live in
          match Failure.Scenario.of_links topo down with
          | scenario -> Ok (down, scenario)
          | exception Invalid_argument m -> Error m)
        downs
    in
    let domains = max 1 t.cfg.options.Raha.Analysis.domains in
    let evaluate = function
      | Error m -> Error m
      | Ok (down, scenario) ->
        Ok
          ( down,
            Te.Simulate.degradation_prepared eng scenario,
            Failure.Scenario.prob topo scenario )
    in
    let results, counters =
      Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters ~domains
        (fun pool ->
          let r = Parallel.Pool.map_array pool evaluate items in
          (r, (Parallel.Pool.stats pool).Parallel.Pool.counters))
    in
    let read k =
      match List.assoc_opt k counters with Some v -> v | None -> 0
    in
    let cert =
      if not t.cfg.options.Raha.Analysis.certify then "none"
      else if read "certify-failures" = 0 && read "cut-audit-failures" = 0 then
        "ok"
      else "fail"
    in
    let counters =
      Json.Obj
        (List.filter_map
           (fun (k, v) -> if v = 0 then None else Some (k, Json.Int v))
           counters)
    in
    Array.map
      (function
        | Error m -> err m
        | Ok (down, deg, prob) -> now_answer t ~down ~deg ~prob ~cert ~counters)
      results

(* ------------------------------------------------------------------ *)
(* Push alerting                                                       *)

let stage_fields t (r : Raha.Analysis.report) =
  [
    ("status", Json.String (status_str r.Raha.Analysis.status));
    ("degradation", Json.float r.Raha.Analysis.degradation);
    ("normalized", Json.float r.Raha.Analysis.normalized);
    ("scenario", scenario_json (Failure.Scenario.links r.Raha.Analysis.scenario));
    ("scenario_prob", Json.float r.Raha.Analysis.scenario_prob);
    ("events_applied", Json.Int (State.events_applied t.state));
    ("clock", Json.float (State.clock t.state));
  ]

let stage_of_report t r =
  {
    Alerting.fields = stage_fields t r;
    exceeds = (fun tol -> Raha.Alert.exceeds r ~tolerance:tol);
    usable = true;
  }

let unusable_stage =
  { Alerting.fields = []; exceeds = (fun _ -> false); usable = false }

(* Fast stage (Raha.Alert stage 1): worst case at the demand fixed to
   the envelope's upper corner — the observed peak — under a quarter of
   the configured time budget. No screening engine or persisted cuts:
   both are built over the variable envelope, not this fixed one. *)
let alert_fast t =
  let topo = State.current_topology t.state in
  let peak = (State.envelope t.state).Traffic.Envelope.hi in
  let options =
    {
      t.cfg.options with
      Raha.Analysis.time_limit = t.cfg.options.Raha.Analysis.time_limit /. 4.;
    }
  in
  Raha.Analysis.analyze ~options topo t.cfg.paths (Traffic.Envelope.fixed peak)

(* Deep stage (stage 2): the worst query over the live envelope — same
   invalidation policy, same cache: a Cached verdict re-reads the cached
   report, and a deep solve conversely warms the cache for later worst
   queries. Alert evaluations keep their own tallies
   ({!Alerting.stats}), not the cached/warm/cold ones. *)
let alert_deep t =
  (match worst_verdict t with
  | Policy.Cached -> ()
  | verdict -> ignore (solve_scoped t ~verdict ~budget:None ~max_nodes:None));
  match t.cached with
  | Some c -> c.report
  | None -> assert false (* solve_scoped always fills the cache *)

let evaluate_alert ?(flush = fun () -> ()) t =
  if Alerting.subscribers t.alerting > 0 then begin
    let fast =
      match alert_fast t with
      | r -> stage_of_report t r
      | exception e ->
        Log.warn (fun f ->
            f "alert fast stage failed: %s" (Printexc.to_string e));
        unusable_stage
    in
    let deep () =
      match alert_deep t with
      | r ->
        let s = stage_of_report t r in
        {
          s with
          Alerting.fields =
            s.Alerting.fields
            @ [ ("report", Json.String (Raha.Report.summary_row r)) ];
        }
      | exception e ->
        Log.warn (fun f ->
            f "alert deep stage failed: %s" (Printexc.to_string e));
        unusable_stage
    in
    Alerting.evaluate t.alerting ~fast ~deep ~flush
  end

let query_status t =
  let cached, warm, cold = tally t in
  ok
    [
      ("kind", Json.String "status");
      ("clock", Json.float (State.clock t.state));
      ("events_applied", Json.Int (State.events_applied t.state));
      ("live_down", Json.Int (State.num_down t.state));
      ("structure_generation", Json.Int (State.structure_generation t.state));
      ( "cache",
        match t.cached with
        | None -> Json.Null
        | Some c ->
          Json.Obj
            [
              ("events_at", Json.Int c.events_at);
              ( "staleness",
                Json.Int (State.events_applied t.state - c.events_at) );
              ( "drift",
                Json.float (Policy.drift (State.estimates t.state) c.probs) );
            ] );
      ("cuts_stored", Json.Int (Cutstore.size t.cuts));
      ( "served",
        Json.Obj
          [
            ("cached", Json.Int cached);
            ("warm", Json.Int warm);
            ("cold", Json.Int cold);
          ] );
      ( "alerting",
        let s = Alerting.stats t.alerting in
        Json.Obj
          [
            ("subscribers", Json.Int (Alerting.subscribers t.alerting));
            ("evaluations", Json.Int s.Alerting.evaluations);
            ("alerts", Json.Int s.Alerting.alerts);
            ("clears", Json.Int s.Alerting.clears);
            ("deep_runs", Json.Int s.Alerting.deep_runs);
            ("dropped", Json.Int s.Alerting.dropped);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let handle t = function
  | Event.Event e -> (
    match State.apply t.state e with
    | Ok structural ->
      (* durable before acknowledged: a crash after this append replays
         the event on restart; a crash before it loses only an event the
         client never saw accepted *)
      (match t.journal with
      | Some j -> Journal.append j ~structural e
      | None -> ());
      ok
        [
          ("applied", Json.Int (State.events_applied t.state));
          ("structural", Json.Bool structural);
        ]
    | Error m -> err m)
  | Event.Subscribe _ ->
    (* Server intercepts subscribe (it owns the connection identity);
       reaching Core means there is no connection to register *)
    err "subscribe requires a socket connection"
  | Event.Query (Event.Worst { budget; max_nodes }) -> (
    try query_worst t ~budget ~max_nodes
    with e -> err (Printf.sprintf "solve failed: %s" (Printexc.to_string e)))
  | Event.Query (Event.Now { down }) -> (
    try query_now t ~down
    with e -> err (Printf.sprintf "overlay failed: %s" (Printexc.to_string e)))
  | Event.Query Event.Status -> query_status t
  | Event.Shutdown -> ok [ ("bye", Json.Bool true) ]

let handle_line t line =
  match Event.request_of_line line with
  | Error m -> err m
  | Ok req -> handle t req

(* Journal recovery: fold the recovered events through the same ingest
   path live events take (State.apply), without re-journaling them —
   the journal is attached after replay, so the log is not rewritten. *)
let replay t events =
  let accepted = ref 0 and rejected = ref 0 in
  List.iter
    (fun e ->
      match State.apply t.state e with
      | Ok _ -> incr accepted
      | Error m ->
        incr rejected;
        Log.warn (fun f -> f "replay: rejected event: %s" m))
    events;
  (!accepted, !rejected)
