(** The always-on degradation service, minus the socket.

    One {!t} owns the streaming {!State}, the persistent screening
    engine ({!Te.Simulate.prepare}, rebuilt only on structural change),
    the {!Cutstore}, and the cached worst-case answer. {!handle} maps
    every protocol request to a response deterministically: replaying
    the same request sequence yields bit-identical responses (after
    {!strip_volatile}) whatever the domain count — the seeding sweeps
    inside {!Raha.Analysis.analyze} are order-preserving and the rest
    is sequential.

    Query answers carry, besides the result itself:
    - ["cert"]: ["ok"] when the independent audits ({!Milp.Certify} for
      the MILP, {!Milp.Batch.check} for warm overlays) all passed
      inside this query's counter scope, ["fail"] otherwise, ["none"]
      when certification was disabled;
    - freshness: ["events_applied"] (ingested events folded into the
      answer), ["staleness"] (events since the answer was computed — 0
      unless the invalidation policy ruled the cache still valid);
    - provenance: ["cached"], ["warm"] or ["cold"] ({!Policy});
    - ["counters"]: per-query {!Milp.Lp_stats} scope deltas. *)

type config = {
  paths : Netpath.Path_set.t;
  envelope : Traffic.Envelope.t;
      (** the {e configured} demand envelope; {!Event.Demand} events
          re-forecast it per pair from then on ({!State.envelope}) *)
  options : Raha.Analysis.options;
      (** per-solve options; [spec], [domains], budgets, toggles *)
  drift_tol : float;
      (** max per-link probability-estimate drift a cached answer
          survives ({!Policy.decide}) *)
  alert_tolerance : float;
      (** daemon-wide push-alert threshold in normalized degradation
          units; subscribers may override it per connection *)
}

type t

(** [create config topo] — [topo] is the {e configured} topology
    (structure + provisioned capacities + configured probabilities);
    nothing is solved until the first query. *)
val create : config -> Wan.Topology.t -> t

(** Handle one request; total (protocol errors become
    [{"ok":false,"error":...}] responses, never exceptions). *)
val handle : t -> Event.request -> Json.t

(** Convenience: parse a protocol line and handle it. *)
val handle_line : t -> string -> Json.t

(** [now_many t downs] answers a batch of "now" overlay queries
    concurrently on the {!Parallel.Pool} ([options.domains] wide):
    element [i] is the answer for overlay scenario [downs.(i)] ([None]
    = the live-down set). Bit-identical to handling them one by one
    {e except} for the volatile fields: counters (and hence the cert
    verdict) are aggregated per batch, since work stealing cannot
    attribute worker counters per query — an overlay-audit failure
    anywhere taints the whole batch's cert, conservatively. *)
val now_many : t -> (int * int) list option array -> Json.t array

(** Drop the keys that legitimately differ between runs — ["elapsed"]
    (wall clock) and ["counters"] (work-stealing attributes worker
    counters nondeterministically when [domains > 1]) — for the replay
    determinism comparisons. Everything else must be bit-identical. *)
val strip_volatile : Json.t -> Json.t

(** Served-query tallies: (cached, warm, cold). *)
val tally : t -> int * int * int

(** The push-notification state (subscribers, queues, crossing logic).
    {!Server} registers subscribe verbs here and drains the queues onto
    the sockets. *)
val alerting : t -> Alerting.t

(** Run {!Raha.Alert}'s two-stage pipeline over the current state and
    every subscriber ({!Alerting.evaluate}): the fast stage solves the
    worst case at the envelope's peak (upper corner) under a quarter of
    the time budget; the deep stage is the worst query over the live
    envelope, sharing its invalidation policy and cache. No-op with no
    subscribers. [flush] is invoked after the fast-stage notifications
    are queued, before the deep solve starts. Called by {!Server} after
    each accepted {e structural} event. *)
val evaluate_alert : ?flush:(unit -> unit) -> t -> unit

(** Attach a journal: from now on every event {!handle} accepts is
    appended ({!Journal.append}) before it is acknowledged. *)
val attach_journal : t -> Journal.t -> unit

(** [replay t events] folds recovered journal events through the normal
    ingest path (no journaling, no notifications); returns
    [(accepted, rejected)] — rejections are logged and skipped. *)
val replay : t -> Event.event list -> int * int
