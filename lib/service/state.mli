(** Current network state under a stream of telemetry events.

    Holds, per physical link, an incremental renewal-reward estimator
    ({!Failure.Renewal.Incr} — O(1) per event, bit-identical to the
    batch estimate on the folded prefix), the live up/down flag, and the
    current provisioned capacity. From these it derives the {e current
    topology}: the configured topology with per-link failure
    probabilities replaced by the running estimates (clamped to
    [[1e-6, 0.99]], the {!Failure.Trace.calibrate_topology} discipline)
    and capacities replaced by the provisioned values. Links that have
    produced no telemetry keep their configured probability.

    Event times must be globally non-decreasing; a violation is
    rejected (the event is not applied) rather than silently reordered. *)

type t

(** [create ~envelope topo] — all links up, no telemetry, clock at 0,
    demand envelope as configured. *)
val create : envelope:Traffic.Envelope.t -> Wan.Topology.t -> t

(** Apply one event. [Error] (bad link address, time regression,
    down/up mismatch, non-positive capacity, bad demand bounds or an
    unknown demand pair) leaves the state untouched. [Ok structural] is
    [true] when the event changed the worst-case {e model structure} (a
    capacity or demand-envelope change) — every cached model artifact is
    then invalid, not just probability-dependent ones. *)
val apply : t -> Event.event -> (bool, string) result

val events_applied : t -> int

(** Time of the last applied event ([0.] initially). *)
val clock : t -> float

(** Links currently down, as [(lag, link)] pairs in address order. *)
val live_down : t -> (int * int) list

val num_down : t -> int

(** Current per-link failure-probability estimates, flattened in
    address order — the vector the drift policy compares. *)
val estimates : t -> float array

(** The configured topology with current estimates and capacities. *)
val current_topology : t -> Wan.Topology.t

(** The current demand envelope: configured bounds overridden per-pair
    by accepted {!Event.Demand} re-forecasts. *)
val envelope : t -> Traffic.Envelope.t

(** Monotonic count of structural (capacity / demand-envelope) changes,
    for cheap "did the structure move since generation g?" checks. *)
val structure_generation : t -> int
