let src = Logs.Src.create "service.cutstore" ~doc:"persisted cuts"

module Log = (val Logs.src_log src : Logs.LOG)

type entry = {
  sc : Milp.Cuts.structural;
  deps_fp : string list;  (* fingerprints of the source rows *)
}

type t = { opts : Milp.Cuts.options; mutable entries : entry list }

let create opts = { opts; entries = [] }
let clear t = t.entries <- []
let size t = List.length t.entries

type stats = { kept : int; dropped : int; fresh : int }

(* Exact row identity: terms (already id-sorted by Linexpr), relation,
   rhs, and the kind + global box of every support variable — all
   floats in hex notation, so equal fingerprints mean equal rows, not
   rows that round alike. *)
let row_fingerprint model (c : Milp.Model.cons) =
  let b = Buffer.create 128 in
  let vars = Milp.Model.vars model in
  Milp.Linexpr.iter
    (fun id k ->
      let v = vars.(id) in
      let kind =
        match v.Milp.Model.kind with
        | Milp.Model.Continuous -> 'c'
        | Milp.Model.Binary -> 'b'
        | Milp.Model.Integer -> 'i'
      in
      Buffer.add_string b
        (Printf.sprintf "%d:%h:%c:%h:%h;" id k kind v.Milp.Model.lb
           v.Milp.Model.ub))
    c.Milp.Model.lhs;
  Buffer.add_string b
    (Printf.sprintf "|%s%h"
       (match c.Milp.Model.rel with
       | Milp.Model.Le -> "<="
       | Milp.Model.Ge -> ">="
       | Milp.Model.Eq -> "=")
       c.Milp.Model.rhs);
  Buffer.contents b

let cut_key (sc : Milp.Cuts.structural) =
  let b = Buffer.create 64 in
  List.iter
    (fun (k, id) -> Buffer.add_string b (Printf.sprintf "%d:%h;" id k))
    sc.Milp.Cuts.s_terms;
  Buffer.add_string b (Printf.sprintf "|%h" sc.Milp.Cuts.s_rhs);
  Buffer.contents b

let advise t spec topo paths envelope =
  let built = Raha.Bilevel.build spec topo paths envelope in
  let model = built.Raha.Bilevel.model in
  let conss = Milp.Model.conss model in
  let row_fps = Hashtbl.create (Array.length conss) in
  Array.iter (fun c -> Hashtbl.replace row_fps (row_fingerprint model c) ()) conss;
  (* 1. survivors: every dependency row must still be present verbatim *)
  let kept, droppedl =
    List.partition
      (fun e -> List.for_all (Hashtbl.mem row_fps) e.deps_fp)
      t.entries
  in
  (* 2. fresh separation at the LP-relaxation optimum of this model *)
  let fresh =
    match Milp.Simplex.solve model with
    | Milp.Simplex.Optimal { values; _ } ->
      let fp_of_dep i = row_fingerprint model conss.(i) in
      List.map
        (fun (sc : Milp.Cuts.structural) ->
          { sc; deps_fp = List.map fp_of_dep sc.Milp.Cuts.s_deps })
        (Milp.Cuts.separate_structural t.opts model ~point:values)
    | Milp.Simplex.Infeasible | Milp.Simplex.Unbounded
    | Milp.Simplex.Iter_limit ->
      []
  in
  (* union, survivors first (their cuts proved useful once), deduped,
     bounded by the pool size *)
  let seen = Hashtbl.create 32 in
  let out = ref [] and nfresh = ref 0 in
  let admit ~is_fresh e =
    let key = cut_key e.sc in
    if
      List.length !out < t.opts.Milp.Cuts.pool_size
      && not (Hashtbl.mem seen key)
    then begin
      Hashtbl.replace seen key ();
      if is_fresh then incr nfresh;
      out := e :: !out
    end
  in
  List.iter (admit ~is_fresh:false) kept;
  List.iter (admit ~is_fresh:true) fresh;
  let entries = List.rev !out in
  t.entries <- entries;
  let stats =
    { kept = List.length kept; dropped = List.length droppedl; fresh = !nfresh }
  in
  Log.debug (fun f ->
      f "advise: %d kept, %d dropped, %d fresh (store %d)" stats.kept
        stats.dropped stats.fresh (List.length entries));
  (List.map (fun e -> e.sc) entries, stats)
