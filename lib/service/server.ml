let src = Logs.Src.create "service.server" ~doc:"socket front end"

module Log = (val Logs.src_log src : Logs.LOG)

let default_socket = "/tmp/raha.sock"

(* Reject request lines beyond this instead of buffering without
   bound. *)
let max_line = 1 lsl 20

type conn = { id : int; fd : Unix.file_descr; buf : Buffer.t }

let send_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write fd data !off (len - !off)
    done;
    true
  with Unix.Unix_error _ -> false

(* Pull complete lines out of a connection buffer, leaving the partial
   tail in place. *)
let drain_lines conn =
  let s = Buffer.contents conn.buf in
  let lines = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub s !start (i - !start) :: !lines;
        start := i + 1
      end)
    s;
  Buffer.clear conn.buf;
  Buffer.add_string conn.buf (String.sub s !start (String.length s - !start));
  List.rev !lines

let oversize_msg = "request line exceeds 1 MiB"

let error_json msg =
  Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let run ~socket ?(backlog = 16) core =
  let al = Core.alerting core in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd backlog;
  Log.info (fun f -> f "listening on %s" socket);
  let conns = ref [] in
  let next_id = ref 0 in
  let closed conn =
    Alerting.unsubscribe al ~id:conn.id;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun c -> c != conn) !conns
  in
  (* Drain subscriber queues onto their (nonblocking) sockets: write
     until the kernel pushes back, track per-line progress in the
     Alerting buffers, never wait. *)
  let flush_subscribers () =
    List.iter
      (fun id ->
        match List.find_opt (fun c -> c.id = id) !conns with
        | None -> Alerting.unsubscribe al ~id
        | Some conn ->
          let rec drain () =
            match Alerting.next_chunk al ~id with
            | None -> ()
            | Some (line, off) -> (
              let data = Bytes.of_string line in
              match Unix.write conn.fd data off (Bytes.length data - off) with
              | 0 -> ()
              | n ->
                Alerting.advance al ~id n;
                drain ()
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()
              | exception Unix.Unix_error _ -> closed conn)
          in
          drain ())
      (Alerting.pending_ids al)
  in
  (* A subscribed connection's responses all flow through its bounded
     queue (so a slow reader costs dropped notifications, not a stalled
     event loop); everyone else gets a direct blocking write. *)
  let respond conn json =
    if Alerting.subscribed al ~id:conn.id then begin
      Alerting.enqueue al ~id:conn.id (Json.to_string json);
      flush_subscribers ()
    end
    else ignore (send_line conn.fd (Json.to_string json))
  in
  let shutdown_requested = ref false in
  (* Answer one readiness round. Requests are answered in arrival
     order; maximal runs of "now" queries fan out on the pool. *)
  let process batch =
    let flush_now_run run =
      match List.rev run with
      | [] -> ()
      | items ->
        let arr = Array.of_list items in
        let downs =
          Array.map
            (fun (_, req) ->
              match req with
              | Event.Query (Event.Now { down }) -> down
              | _ -> assert false)
            arr
        in
        let answers = Core.now_many core downs in
        Array.iteri (fun i (conn, _) -> respond conn answers.(i)) arr
    in
    let structural_ok resp =
      Json.to_bool (Json.member "ok" resp) = Some true
      && Json.to_bool (Json.member "structural" resp) = Some true
    in
    let rec go now_run = function
      | [] -> flush_now_run now_run
      | (conn, Error msg) :: rest ->
        flush_now_run now_run;
        respond conn (error_json msg);
        go [] rest
      | (conn, Ok (Event.Query (Event.Now _) as req)) :: rest ->
        go ((conn, req) :: now_run) rest
      | (conn, Ok (Event.Subscribe { tolerance })) :: rest ->
        flush_now_run now_run;
        Alerting.subscribe al ~id:conn.id ~tolerance;
        (* nonblocking from here on: pushes must never stall the loop *)
        Unix.set_nonblock conn.fd;
        respond conn
          (Json.Obj
             ([ ("ok", Json.Bool true); ("subscribed", Json.Bool true) ]
             @
             match tolerance with
             | Some tol -> [ ("tolerance", Json.float tol) ]
             | None -> []));
        go [] rest
      | (conn, Ok req) :: rest ->
        flush_now_run now_run;
        let resp = Core.handle core req in
        respond conn resp;
        (* the push pipeline runs after each accepted structural ingest:
           fast-stage notifications hit the wire before the deep solve *)
        (match req with
        | Event.Event _ when structural_ok resp ->
          Core.evaluate_alert ~flush:flush_subscribers core
        | _ -> ());
        if req = Event.Shutdown then shutdown_requested := true;
        go [] rest
    in
    go [] batch
  in
  let stop = ref false in
  let chunk = Bytes.create 65536 in
  while not !stop do
    let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
    let wfds =
      List.filter_map
        (fun id ->
          Option.map
            (fun c -> c.fd)
            (List.find_opt (fun c -> c.id = id) !conns))
        (Alerting.pending_ids al)
    in
    match Unix.select fds wfds [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, writable, _ ->
      if writable <> [] then flush_subscribers ();
      if List.mem listen_fd ready then begin
        let fd, _ = Unix.accept listen_fd in
        incr next_id;
        conns := !conns @ [ { id = !next_id; fd; buf = Buffer.create 256 } ]
      end;
      (* gather every complete request line that arrived this round *)
      let batch = ref [] in
      List.iter
        (fun conn ->
          if List.mem conn.fd ready then begin
            match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
            | 0 -> closed conn
            | n ->
              Buffer.add_subbytes conn.buf chunk 0 n;
              List.iter
                (fun line ->
                  if String.length line > max_line then
                    batch := (conn, Error oversize_msg) :: !batch
                  else if String.trim line <> "" then
                    batch := (conn, Event.request_of_line line) :: !batch)
                (drain_lines conn);
              if Buffer.length conn.buf > max_line + Bytes.length chunk then begin
                (* the partial line is past the cap by more than one
                   read chunk (so this cannot be a complete oversized
                   line about to finish in the next read); answer
                   in-band and drop the connection — there is no line
                   boundary left to resync on *)
                ignore (send_line conn.fd (Json.to_string (error_json oversize_msg)));
                closed conn
              end
            | exception Unix.Unix_error _ -> closed conn
          end)
        !conns;
      process (List.rev !batch);
      if !shutdown_requested then stop := true
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink socket with Unix.Unix_error _ -> ()

let request ~socket ?(retries = 100) line =
  let rec connect attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt >= retries then
        Error
          (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))
      else begin
        Unix.sleepf 0.05;
        connect (attempt + 1)
      end
  in
  match connect 0 with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        if not (send_line fd line) then Error "write failed"
        else begin
          let buf = Buffer.create 256 in
          let one = Bytes.create 4096 in
          let rec read_line () =
            match Unix.read fd one 0 (Bytes.length one) with
            | 0 ->
              if Buffer.length buf > 0 then Ok (Buffer.contents buf)
              else Error "connection closed before a response"
            | n ->
              Buffer.add_subbytes buf one 0 n;
              let s = Buffer.contents buf in
              (match String.index_opt s '\n' with
              | Some i -> Ok (String.sub s 0 i)
              | None -> read_line ())
            | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)
          in
          read_line ()
        end)
