let src = Logs.Src.create "service.server" ~doc:"socket front end"

module Log = (val Logs.src_log src : Logs.LOG)

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let send_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write fd data !off (len - !off)
    done;
    true
  with Unix.Unix_error _ -> false

(* Pull complete lines out of a connection buffer, leaving the partial
   tail in place. *)
let drain_lines conn =
  let s = Buffer.contents conn.buf in
  let lines = ref [] and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub s !start (i - !start) :: !lines;
        start := i + 1
      end)
    s;
  Buffer.clear conn.buf;
  Buffer.add_string conn.buf (String.sub s !start (String.length s - !start));
  List.rev !lines

(* Answer one readiness round. Requests are answered in arrival order;
   maximal runs of "now" queries fan out on the pool. Returns [true]
   when a shutdown was requested. *)
let process core batch =
  let shutdown = ref false in
  let flush_now_run run =
    match List.rev run with
    | [] -> ()
    | items ->
      let arr = Array.of_list items in
      let downs =
        Array.map
          (fun (_, req) ->
            match req with
            | Event.Query (Event.Now { down }) -> down
            | _ -> assert false)
          arr
      in
      let answers = Core.now_many core downs in
      Array.iteri
        (fun i (conn, _) ->
          ignore (send_line conn.fd (Json.to_string answers.(i))))
        arr
  in
  let rec go now_run = function
    | [] -> flush_now_run now_run
    | (conn, Error msg) :: rest ->
      flush_now_run now_run;
      ignore
        (send_line conn.fd
           (Json.to_string
              (Json.Obj
                 [ ("ok", Json.Bool false); ("error", Json.String msg) ])));
      go [] rest
    | (conn, Ok (Event.Query (Event.Now _) as req)) :: rest ->
      go ((conn, req) :: now_run) rest
    | (conn, Ok req) :: rest ->
      flush_now_run now_run;
      let resp = Core.handle core req in
      ignore (send_line conn.fd (Json.to_string resp));
      if req = Event.Shutdown then shutdown := true;
      go [] rest
  in
  go [] batch;
  !shutdown

let run ~socket ?(backlog = 16) core =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd backlog;
  Log.info (fun f -> f "listening on %s" socket);
  let conns = ref [] in
  let closed conn =
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun c -> c != conn) !conns
  in
  let stop = ref false in
  let chunk = Bytes.create 65536 in
  while not !stop do
    let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
    match Unix.select fds [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      if List.mem listen_fd ready then begin
        let fd, _ = Unix.accept listen_fd in
        conns := !conns @ [ { fd; buf = Buffer.create 256 } ]
      end;
      (* gather every complete request line that arrived this round *)
      let batch = ref [] in
      List.iter
        (fun conn ->
          if List.mem conn.fd ready then begin
            match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
            | 0 -> closed conn
            | n ->
              Buffer.add_subbytes conn.buf chunk 0 n;
              List.iter
                (fun line ->
                  if String.trim line <> "" then
                    batch := (conn, Event.request_of_line line) :: !batch)
                (drain_lines conn)
            | exception Unix.Unix_error _ -> closed conn
          end)
        !conns;
      if process core (List.rev !batch) then stop := true
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink socket with Unix.Unix_error _ -> ()

let request ~socket ?(retries = 100) line =
  let rec connect attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt >= retries then
        Error
          (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))
      else begin
        Unix.sleepf 0.05;
        connect (attempt + 1)
      end
  in
  match connect 0 with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        if not (send_line fd line) then Error "write failed"
        else begin
          let buf = Buffer.create 256 in
          let one = Bytes.create 4096 in
          let rec read_line () =
            match Unix.read fd one 0 (Bytes.length one) with
            | 0 ->
              if Buffer.length buf > 0 then Ok (Buffer.contents buf)
              else Error "connection closed before a response"
            | n ->
              Buffer.add_subbytes buf one 0 n;
              let s = Buffer.contents buf in
              (match String.index_opt s '\n' with
              | Some i -> Ok (String.sub s 0 i)
              | None -> read_line ())
            | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)
          in
          read_line ()
        end)
