(** Minimal JSON for the line-delimited service protocol.

    Hand-rolled on purpose: the repository takes no external JSON
    dependency, and the protocol needs exactly objects, arrays, strings,
    numbers, booleans and null. Two properties matter beyond RFC 8259:

    - {b float round-tripping}: numbers are printed with [%.17g], so
      [of_string (to_string (Float x))] recovers [x] to the last bit —
      the replay-determinism checks compare protocol lines verbatim;
    - {b non-finite floats}: JSON has no [nan]/[inf]; {!float} encodes
      them as the strings ["nan"], ["inf"], ["-inf"] and {!to_float}
      decodes those strings back, so solver statuses with no point
      survive the wire unambiguously.

    Strings are emitted with the double quote, the backslash, and
    every control byte below 0x20 escaped (backslash-n/r/t short
    forms, [\u00XX] otherwise), so an encoded value never contains a
    raw newline and one value always fits one protocol line. The
    parser additionally accepts the [\b], [\f] and [\/] escapes, and
    decodes [\uXXXX] escapes for Basic Multilingual Plane code points
    to UTF-8 bytes (astral pairs are out of scope — the protocol
    itself is ASCII); all other bytes pass through verbatim, so UTF-8
    payloads survive unchanged. The json-edge-cases test in
    [test_service] pins this wire format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Parse one JSON value; trailing non-whitespace is an error. *)
val of_string : string -> (t, string) result

(** [member key json] is the value under [key], or [Null] when absent or
    [json] is not an object. *)
val member : string -> t -> t

(** Encode a float, mapping non-finite values to their string forms. *)
val float : float -> t

(** Decode [Int], [Float], or the non-finite string forms. *)
val to_float : t -> float option

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
