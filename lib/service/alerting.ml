type stage_result = {
  fields : (string * Json.t) list;
  exceeds : float -> bool;
  usable : bool;
}

type stats = {
  evaluations : int;
  alerts : int;
  clears : int;
  deep_runs : int;
  dropped : int;
}

type sub = {
  id : int;
  tolerance : float option;
  mutable alerting : bool;
  queue : string Queue.t;  (* complete newline-terminated lines *)
  mutable inflight : string option;  (* line being written *)
  mutable inflight_off : int;
}

type t = {
  default_tolerance : float;
  queue_cap : int;
  mutable subs : sub list;  (* in subscription order, for determinism *)
  mutable evaluations : int;
  mutable alerts : int;
  mutable clears : int;
  mutable deep_runs : int;
  mutable dropped : int;
}

let create ?(queue_cap = 64) ~tolerance () =
  {
    default_tolerance = tolerance;
    queue_cap;
    subs = [];
    evaluations = 0;
    alerts = 0;
    clears = 0;
    deep_runs = 0;
    dropped = 0;
  }

let find t id = List.find_opt (fun s -> s.id = id) t.subs

let subscribe t ~id ~tolerance =
  match find t id with
  | Some _ ->
    (* keep the queue (lines already owed to the client) but take the
       new tolerance and restart the crossing state *)
    t.subs <-
      List.map
        (fun s -> if s.id = id then { s with tolerance; alerting = false } else s)
        t.subs
  | None ->
    t.subs <-
      t.subs
      @ [
          {
            id;
            tolerance;
            alerting = false;
            queue = Queue.create ();
            inflight = None;
            inflight_off = 0;
          };
        ]

let unsubscribe t ~id = t.subs <- List.filter (fun s -> s.id <> id) t.subs
let subscribed t ~id = find t id <> None
let subscribers t = List.length t.subs

let push t s line =
  let line =
    if String.length line > 0 && line.[String.length line - 1] = '\n' then line
    else line ^ "\n"
  in
  if Queue.length s.queue >= t.queue_cap then begin
    ignore (Queue.pop s.queue);
    t.dropped <- t.dropped + 1
  end;
  Queue.push line s.queue

let enqueue t ~id line =
  match find t id with None -> () | Some s -> push t s line

let tolerance_of t s = Option.value s.tolerance ~default:t.default_tolerance

let notification ~push ~stage ~tolerance fields =
  Json.to_string
    (Json.Obj
       ([
          ("push", Json.String push);
          ("stage", Json.String stage);
          ("tolerance", Json.float tolerance);
        ]
       @ fields))

let evaluate t ~fast ~deep ~flush =
  if t.subs <> [] then begin
    t.evaluations <- t.evaluations + 1;
    (* stage 1: fast exceeders alert immediately *)
    let emitted = ref false in
    List.iter
      (fun s ->
        let tol = tolerance_of t s in
        if fast.usable && fast.exceeds tol && not s.alerting then begin
          s.alerting <- true;
          t.alerts <- t.alerts + 1;
          push t s (notification ~push:"alert" ~stage:"fast" ~tolerance:tol fast.fields);
          emitted := true
        end)
      t.subs;
    if !emitted then flush ();
    (* stage 2: anyone below the fast threshold needs the deep answer,
       either to alert on it or to clear *)
    let needs_deep =
      fast.usable
      && List.exists (fun s -> not (fast.exceeds (tolerance_of t s))) t.subs
    in
    if needs_deep then begin
      t.deep_runs <- t.deep_runs + 1;
      let d = deep () in
      if d.usable then begin
        List.iter
          (fun s ->
            let tol = tolerance_of t s in
            if not (fast.exceeds tol) then
              if d.exceeds tol then begin
                if not s.alerting then begin
                  s.alerting <- true;
                  t.alerts <- t.alerts + 1;
                  push t s
                    (notification ~push:"alert" ~stage:"deep" ~tolerance:tol
                       d.fields)
                end
              end
              else if s.alerting then begin
                (* both stages below tolerance: the degradation cleared *)
                s.alerting <- false;
                t.clears <- t.clears + 1;
                push t s
                  (notification ~push:"clear" ~stage:"deep" ~tolerance:tol
                     d.fields)
              end)
          t.subs;
        flush ()
      end
    end
  end

let has_pending s = s.inflight <> None || not (Queue.is_empty s.queue)

let pending_ids t =
  List.filter_map (fun s -> if has_pending s then Some s.id else None) t.subs

let next_chunk t ~id =
  match find t id with
  | None -> None
  | Some s -> (
    match s.inflight with
    | Some line -> Some (line, s.inflight_off)
    | None ->
      if Queue.is_empty s.queue then None
      else begin
        let line = Queue.pop s.queue in
        s.inflight <- Some line;
        s.inflight_off <- 0;
        Some (line, 0)
      end)

let advance t ~id n =
  match find t id with
  | None -> ()
  | Some s -> (
    match s.inflight with
    | None -> ()
    | Some line ->
      s.inflight_off <- s.inflight_off + n;
      if s.inflight_off >= String.length line then begin
        s.inflight <- None;
        s.inflight_off <- 0
      end)

let stats t =
  {
    evaluations = t.evaluations;
    alerts = t.alerts;
    clears = t.clears;
    deep_runs = t.deep_runs;
    dropped = t.dropped;
  }
