(** Durable event log: crash recovery for the always-on daemon.

    Every event the daemon {e accepts} is appended as one record before
    the acknowledgement goes back to the client, so a crashed daemon
    restarted with [raha serve --journal PATH] replays the log through
    the normal ingest path and recovers its renewal estimators, live
    topology and demand envelope {e bit-identically}: the journal stores
    the exact event values ({!Event.json_of_event} / parse round-trips
    losslessly — floats print [%.17g]), and replayed ingestion performs
    the same floating-point folds as live ingestion.

    On-disk format, per record:

    {v [u32 be length][u32 be crc32(payload)][payload bytes] v}

    where the payload is the event's JSON line. Writes go straight to
    the file descriptor (no userland buffering), so a SIGKILL loses at
    most the record being written; {e structural} events (capacity and
    demand-envelope changes, the expensive-to-lose ones) are followed by
    an [fsync], so they survive power loss too.

    Recovery is total: a truncated or corrupt tail record (short length
    header, short payload, CRC mismatch, unparseable JSON, absurd
    length) is detected, reported, and {e skipped} — never an exception.
    {!open_} truncates the file back to the last intact record so
    subsequent appends extend a clean log. *)

type t

(** What {!open_} found in an existing journal. *)
type recovery = {
  events : Event.event list;  (** intact records, in append order *)
  valid_bytes : int;  (** offset of the first damaged byte (= file size
                          when the log is clean) *)
  damage : string option;
      (** [Some reason] when a truncated/corrupt tail was discarded *)
}

(** [open_ path] opens (creating if missing) the journal for appending,
    first scanning any existing records: the returned {!recovery} holds
    every intact event for replay, and the file is truncated to
    [valid_bytes] so the damaged tail cannot shadow future appends.
    @raise Sys_error when the path cannot be opened. *)
val open_ : string -> t * recovery

(** Append one record. [structural] events are fsynced through to disk
    before returning; live (up/down) events are written but not synced. *)
val append : t -> structural:bool -> Event.event -> unit

(** Records appended through this handle (excludes replayed ones). *)
val appended : t -> int

val path : t -> string
val close : t -> unit

(** Read-only scan of a journal file — what {!open_} would recover,
    without opening for append or truncating. Missing file = empty log. *)
val scan : string -> recovery

(** CRC-32 (IEEE 802.3, the zlib polynomial) of a string — exposed for
    the format tests. *)
val crc32 : string -> int32
