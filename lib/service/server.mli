(** Unix-domain-socket front end: line-delimited JSON over a stream
    socket, one request per line, one response line per request.

    The accept loop multiplexes any number of client connections with
    [select]. Requests that arrived in the same readiness round are
    answered in arrival order, with one twist: a maximal run of
    consecutive "now" overlay queries is evaluated concurrently on the
    parallel pool ({!Core.now_many}) — the engine is immutable and
    overlays are pure reads, so this is safe, order-preserving and
    deterministic. Everything that mutates the core (events, worst-case
    solves) stays strictly sequential.

    A ["shutdown"] request is acknowledged, then the loop closes every
    connection, unlinks the socket and returns. *)

(** [run ~socket core] binds [socket] (unlinking any stale file first)
    and serves until a shutdown request. Blocking. *)
val run : socket:string -> ?backlog:int -> Core.t -> unit

(** [request ~socket line] — client side: connect, send [line], return
    the response line. Retries the connect (with a short sleep, up to
    [retries ~ 100] times) while the server is still starting, so a CI
    smoke test can launch daemon and client together.  *)
val request : socket:string -> ?retries:int -> string -> (string, string) result
