(** Unix-domain-socket front end: line-delimited JSON over a stream
    socket, one request per line, one response line per request.

    The accept loop multiplexes any number of client connections with
    [select]. Requests that arrived in the same readiness round are
    answered in arrival order, with one twist: a maximal run of
    consecutive "now" overlay queries is evaluated concurrently on the
    parallel pool ({!Core.now_many}) — the engine is immutable and
    overlays are pure reads, so this is safe, order-preserving and
    deterministic. Everything that mutates the core (events, worst-case
    solves) stays strictly sequential.

    Framing: a partial line survives any split across [select] wakeups
    (the tail stays buffered until its newline arrives); a line longer
    than 1 MiB is rejected with an in-band [{"ok":false,...}] error —
    complete oversized lines (up to one 64 KiB read chunk past the cap)
    cost one error response, a partial line that outgrows the cap by
    more than a read chunk additionally costs the connection, since no
    line boundary is left to resync on.

    Push notifications: a [{"op":"subscribe"}] request registers the
    connection with the core's {!Alerting} state (optionally overriding
    the alert tolerance) and switches the socket to nonblocking — every
    later write to it flows through a bounded per-subscriber queue,
    drained opportunistically (and via the [select] write set) so a slow
    reader costs dropped notifications, never a stalled event loop.
    After each accepted {e structural} event the loop runs
    {!Core.evaluate_alert}; fast-stage notifications are flushed onto
    the wire before the deep solve starts.

    A ["shutdown"] request is acknowledged, then the loop closes every
    connection, unlinks the socket and returns. *)

(** The conventional socket path, shared by [raha serve] and
    [raha query]. *)
val default_socket : string

(** [run ~socket core] binds [socket] (unlinking any stale file first)
    and serves until a shutdown request. Blocking. *)
val run : socket:string -> ?backlog:int -> Core.t -> unit

(** [request ~socket line] — client side: connect, send [line], return
    the response line. Retries the connect (with a short sleep, up to
    [retries ~ 100] times) while the server is still starting, so a CI
    smoke test can launch daemon and client together. The connect-failure
    message names the socket path it tried. *)
val request : socket:string -> ?retries:int -> string -> (string, string) result
