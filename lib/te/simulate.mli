(** Direct routing of a concrete (demand, failure scenario) pair.

    Solves the TE LP with the scenario baked in as constants — no outer
    problem. This is (a) the independent oracle the test suite checks
    Raha's bi-level MILP against, and (b) the engine behind the
    enumeration baselines ("up to k failures") of §8. *)

type reaction =
  | Optimal_failover
      (** the network re-optimizes over all available paths (the paper's
          default model of §5) *)
  | Naive_failover
      (** each backup path may carry at most what its corresponding
          primary carried in the healthy network (§5.1) *)

type result = {
  performance : float;
      (** total flow (Total_flow / Max_min) or MLU (Mlu) *)
  flows : float array;  (** per spec column *)
  index : Formulation.index;
}

(** [availability topo pair scenario] marks which of a pair's paths may
    carry traffic under the scenario, per Eq. 5's fail-over discipline:
    path [j] (0-indexed, primaries first) is available iff
    [#failed higher-priority paths + n_primary - j - 1 >= 0]. *)
val availability :
  Wan.Topology.t -> Netpath.Path_set.pair -> Failure.Scenario.t -> bool array

(** [route ~objective topo paths demand scenario] routes [demand] on the
    failed network. Infeasible MLU instances (a pair fully disconnected)
    return [None].

    With [reaction = Naive_failover], [healthy] must be a previous result
    for the same paths on the healthy network. *)
val route :
  ?objective:Formulation.objective ->
  ?reaction:reaction ->
  ?healthy:result ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  Failure.Scenario.t ->
  result option

(** [healthy ~objective topo paths demand] routes on the design point
    (no failures; only primary paths are active). *)
val healthy :
  ?objective:Formulation.objective ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  result option

(** [degradation ~objective topo paths demand scenario] is the paper's
    headline metric: healthy performance minus failed performance for
    Total_flow (traffic the healthy network carries but the failed one
    drops), or failed MLU minus healthy MLU for Mlu. [None] when either
    LP is infeasible. *)
val degradation :
  ?objective:Formulation.objective ->
  ?reaction:reaction ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  Failure.Scenario.t ->
  float option

(** {1 Batched scenario engine}

    One symbolic factorization, thousands of warm-started scenario
    solves (DESIGN.md §12). [prepare] builds the TE LP once with every
    extension-capacity row present and runs one cold solve of the
    healthy network; each scenario is then a pure rhs overlay
    ([Milp.Batch]) solved by the dual simplex warm-started from the
    healthy optimal basis. An engine is immutable after [prepare] and
    safe to share across domains. *)

type engine

(** [prepare ~objective topo paths demand] builds the shared structure
    and solves the healthy network (the warm-start seed). [None] when
    even the healthy network cannot route the demand (same condition as
    {!healthy} returning [None]). Only [Optimal_failover] reactions are
    supported — naive fail-over changes the row structure per scenario. *)
val prepare :
  ?objective:Formulation.objective ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  engine option

(** The healthy-network routing computed by [prepare]. Its performance
    can differ from {!healthy}'s last bits: the engine's LP carries
    extension rows for every path whereas {!route} omits rows for open
    paths, so the simplex may stop at a different optimal vertex. The
    optimal objective value is the same up to solver tolerance. *)
val engine_healthy : engine -> result

(** [route_prepared ~rebuild eng scenario] routes the engine's demand
    under [scenario]. [rebuild = false] (default) is the batched path:
    rhs overlay + warm dual solve on the shared prepared structure.
    [rebuild = true] is the per-scenario-prepare comparator (the
    [--no-batch] arm): formulation, model, CSC structure and
    factorization are rebuilt from scratch for this scenario and solved
    with the same warm basis — bit-identical solver inputs, hence
    bit-identical results, while paying the full structural cost the
    batch path amortizes. *)
val route_prepared : ?rebuild:bool -> engine -> Failure.Scenario.t -> result option

(** {!degradation} against the engine's healthy baseline: healthy minus
    failed performance (Total_flow / Max_min), failed minus healthy MLU
    (Mlu). [None] when the scenario LP is infeasible. *)
val degradation_prepared :
  ?rebuild:bool -> engine -> Failure.Scenario.t -> float option
