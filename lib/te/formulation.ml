type value = C of float | E of Milp.Linexpr.t

type objective =
  | Total_flow
  | Mlu of { u_max : float }
  | Max_min of { bins : int; ratio : float }

type pair_cols = {
  src : int;
  dst : int;
  n_primary : int;
  paths : Netpath.Path.t array;
  path_cols : int array;
}

type index = {
  pair_arr : pair_cols array;
  u_col : int option;
  cap_rows : int array;
  ext_rows : int array array;
}

let rhs_of_value = function
  | C c -> Lp_spec.Const c
  | E e -> Lp_spec.Outer e

let scale_value k = function
  | C c -> C (k *. c)
  | E e -> E (Milp.Linexpr.scale k e)

let build ~objective ~topo ~paths ~lag_cap ~demand ?path_cap ~d_max () =
  let cols = ref [] and n_cols = ref 0 in
  let add_col cname obj ub_hint =
    let i = !n_cols in
    incr n_cols;
    cols := { Lp_spec.cname; obj; ub_hint } :: !cols;
    i
  in
  let rows = ref [] and n_rows = ref 0 in
  (* row index = order of add_row calls (the list is reversed below),
     which is also the model constraint / sparse rhs index Lp_spec
     preserves — what the batch overlay path patches by *)
  let add_row rname terms rel rhs slack_bound =
    incr n_rows;
    rows := { Lp_spec.rname; terms; rel; rhs; slack_bound } :: !rows
  in
  (* flow columns, one per (pair, path) *)
  let pair_arr =
    Array.of_list
      (List.mapi
         (fun k (p : Netpath.Path_set.pair) ->
           let all = Netpath.Path_set.all_paths p in
           let path_cols =
             Array.of_list
               (List.mapi
                  (fun j _ ->
                    add_col (Printf.sprintf "f_k%d_p%d" k j)
                      (match objective with Total_flow -> 1. | Mlu _ | Max_min _ -> 0.)
                      d_max)
                  all)
           in
           {
             src = p.Netpath.Path_set.src;
             dst = p.Netpath.Path_set.dst;
             n_primary = Netpath.Path_set.num_primary p;
             paths = Array.of_list all;
             path_cols;
           })
         paths)
  in
  let n_pairs = Array.length pair_arr in
  (* objective-specific columns *)
  let u_col, bin_cols =
    match objective with
    | Total_flow -> (None, [||])
    | Mlu { u_max } -> (Some (add_col "U" 1. u_max), [||])
    | Max_min { bins; ratio } ->
      if bins < 1 then invalid_arg "Formulation: bins < 1";
      if ratio < 1. then invalid_arg "Formulation: ratio < 1";
      let eps = 1. /. (2. *. float_of_int (max 1 n_pairs)) in
      let cols =
        Array.init n_pairs (fun k ->
            Array.init bins (fun i ->
                add_col (Printf.sprintf "t_k%d_b%d" k i)
                  (Float.pow eps (float_of_int i))
                  d_max))
      in
      (None, cols)
  in
  (* demand rows *)
  Array.iteri
    (fun k pc ->
      let terms = Array.to_list (Array.map (fun c -> (c, 1.)) pc.path_cols) in
      let dval = demand ~src:pc.src ~dst:pc.dst in
      match objective with
      | Mlu _ ->
        (* MLU routes the full demand (Appendix A) *)
        add_row (Printf.sprintf "dem_k%d" k) terms Lp_spec.Eq (rhs_of_value dval) 0.
      | Total_flow ->
        add_row (Printf.sprintf "dem_k%d" k) terms Lp_spec.Le (rhs_of_value dval) d_max
      | Max_min { bins; ratio } ->
        (* flow equals the sum of bin allocations; bins partition [0, d] *)
        let t_terms = Array.to_list (Array.map (fun c -> (c, -1.)) bin_cols.(k)) in
        add_row (Printf.sprintf "bin_link_k%d" k) (terms @ t_terms) Lp_spec.Eq
          (Lp_spec.Const 0.) 0.;
        let widths =
          if ratio = 1. then Array.make bins (1. /. float_of_int bins)
          else begin
            let q = ratio in
            let denom = (Float.pow q (float_of_int bins)) -. 1. in
            Array.init bins (fun i -> (q -. 1.) *. Float.pow q (float_of_int i) /. denom)
          end
        in
        Array.iteri
          (fun i tcol ->
            add_row
              (Printf.sprintf "bin_k%d_b%d" k i)
              [ (tcol, 1.) ]
              Lp_spec.Le
              (rhs_of_value (scale_value widths.(i) dval))
              d_max)
          bin_cols.(k))
    pair_arr;
  (* LAG capacity / utilization rows *)
  let num_lags = Wan.Topology.num_lags topo in
  (* only Total_flow/Max_min capacity rows carry a scenario-dependent
     rhs (MLU keeps its utilization rows constant, Appendix A), so only
     those get a row index for the batch overlay path *)
  let cap_rows = Array.make num_lags (-1) in
  for e = 0 to num_lags - 1 do
    let terms = ref [] in
    Array.iter
      (fun pc ->
        Array.iteri
          (fun j path ->
            if Netpath.Path.mem_lag path e then terms := (pc.path_cols.(j), 1.) :: !terms)
          pc.paths)
      pair_arr;
    if !terms <> [] then
      match objective with
      | Total_flow | Max_min _ ->
        let cap = lag_cap e in
        let bound = match cap with C c -> c | E _ -> Wan.Lag.capacity (Wan.Topology.lag topo e) in
        cap_rows.(e) <- !n_rows;
        add_row (Printf.sprintf "cap_e%d" e) !terms Lp_spec.Le (rhs_of_value cap) bound
      | Mlu { u_max } -> (
        match lag_cap e with
        | C cap ->
          let u = Option.get u_col in
          add_row (Printf.sprintf "util_e%d" e)
            ((u, -.cap) :: !terms)
            Lp_spec.Le (Lp_spec.Const 0.) (cap *. u_max)
        | E _ -> invalid_arg "Formulation: MLU requires constant LAG capacities")
  done;
  (* MLU variable cap (keeps duals bounded) *)
  (match (objective, u_col) with
  | Mlu { u_max }, Some u -> add_row "u_cap" [ (u, 1.) ] Lp_spec.Le (Lp_spec.Const u_max) u_max
  | _ -> ());
  (* path extension capacity rows (Eq. 5) *)
  let ext_rows =
    Array.map (fun pc -> Array.make (Array.length pc.path_cols) (-1)) pair_arr
  in
  (match path_cap with
  | None -> ()
  | Some f ->
    Array.iteri
      (fun k pc ->
        Array.iteri
          (fun j col ->
            match f ~pair:k ~path:j with
            | None -> ()
            | Some v ->
              ext_rows.(k).(j) <- !n_rows;
              add_row
                (Printf.sprintf "ext_k%d_p%d" k j)
                [ (col, 1.) ]
                Lp_spec.Le (rhs_of_value v) d_max)
          pc.path_cols)
      pair_arr);
  let sense, dual_bound =
    match objective with
    | Total_flow -> (Lp_spec.Max, 1.)
    | Max_min _ -> (Lp_spec.Max, 2.)
    | Mlu _ -> (Lp_spec.Min, 50.)
  in
  let spec =
    {
      Lp_spec.sense;
      cols = Array.of_list (List.rev !cols);
      rows = Array.of_list (List.rev !rows);
      dual_bound;
    }
  in
  (spec, { pair_arr; u_col; cap_rows; ext_rows })

let add_rows spec extra =
  { spec with Lp_spec.rows = Array.append spec.Lp_spec.rows (Array.of_list extra) }

let pair_flow index k xs =
  Array.fold_left (fun acc c -> acc +. xs.(c)) 0. index.pair_arr.(k).path_cols

let total_flow index xs =
  let acc = ref 0. in
  Array.iteri (fun k _ -> acc := !acc +. pair_flow index k xs) index.pair_arr;
  !acc

let performance objective index xs =
  match objective with
  | Total_flow | Max_min _ -> total_flow index xs
  | Mlu _ -> ( match index.u_col with Some u -> xs.(u) | None -> nan)
