(** Monte Carlo dataplane simulation.

    The production workflow the paper starts from (§1, §4.2) simulates
    the WAN under sampled failure combinations at peak load — and the
    motivating incident is precisely a scenario such sampling missed.
    This module reproduces that workflow: sample failure scenarios from
    the per-link probabilities, route each with {!Simulate}, and report
    the degradation distribution. Benchmarks contrast its tail estimates
    with Raha's exact worst case. *)

type summary = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max_seen : float;
  worst_scenario : Failure.Scenario.t;  (** scenario realizing [max_seen] *)
}

(** [sample_degradations ~seed ~samples topo paths demand] draws
    [samples] independent scenarios (each link fails independently with
    its configured probability) and returns the degradations in the
    order drawn. Scenarios whose routing is infeasible (MLU with a
    disconnected pair) count as the healthy network's full performance.

    Samples are drawn in fixed 64-sample blocks, each from an RNG seeded
    [Random.State.make [| seed; block |]], and routed across [domains]
    OCaml domains (or a caller-supplied [pool], which takes precedence).
    The block layout is independent of the parallelism, so the returned
    arrays are bit-identical for a given [seed] whatever [domains] is;
    [domains = 1] (the default) runs inline on the caller.

    Scenarios are solved through the batched engine ({!Simulate.prepare}):
    one shared prepared structure, rhs overlays, warm dual solves from
    the healthy basis. [batch = false] (the [--no-batch] arm) rebuilds
    formulation + prepared structure per scenario instead — bit-identical
    results, full per-scenario cost. [batch_size] (default 64) only sets
    the chunk granularity fanned over domains; every scenario warm-starts
    from the same healthy basis, never from a neighbour, so results are
    independent of [batch], [batch_size], [domains] and scheduling. *)
val sample_degradations :
  ?objective:Formulation.objective ->
  ?domains:int ->
  ?pool:Parallel.Pool.t ->
  ?batch:bool ->
  ?batch_size:int ->
  seed:int ->
  samples:int ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  float array * Failure.Scenario.t array

(** Summarize a sample run; percentiles follow the nearest-rank rule
    (the ceil(q*n)-th smallest value).
    @raise Invalid_argument on empty input. *)
val summarize : float array -> Failure.Scenario.t array -> summary

(** [prob_degradation_above degradations x] is the empirical probability
    of a degradation strictly above [x]. *)
val prob_degradation_above : float array -> float -> float

val pp_summary : Format.formatter -> summary -> unit
