(** Builders for the TE objectives Raha supports.

    - {!Total_flow}: the production SWAN/B4-style LP of Eq. 2 (maximize
      total demand met);
    - {!Mlu}: minimize the maximum link utilization (Appendix A). LAG
      capacities stay constant and failures act through path extension
      capacities, exactly as the appendix prescribes;
    - {!Max_min}: the single-shot geometric/equi-depth binning
      approximation of max-min fairness (Appendix A, citing Soroush).

    Each builder returns an {!Lp_spec} plus an index mapping (pair, path)
    to spec columns, so callers can attach extension-capacity rows,
    naive-failover rows, or read flows back from solutions. *)

(** A model input that is either a constant (red in the paper's Table 2)
    or an affine expression over the outer model's variables (blue). *)
type value = C of float | E of Milp.Linexpr.t

type objective =
  | Total_flow
  | Mlu of { u_max : float }  (** cap on the MLU variable *)
  | Max_min of { bins : int; ratio : float }
      (** [ratio = 1.] is equi-depth binning; [> 1.] geometric *)

type pair_cols = {
  src : int;
  dst : int;
  n_primary : int;
  paths : Netpath.Path.t array;  (** priority order: primaries then backups *)
  path_cols : int array;  (** spec column of each path's flow *)
}

type index = {
  pair_arr : pair_cols array;
  u_col : int option;  (** the MLU variable's column, if any *)
  cap_rows : int array;
      (** per LAG: spec-row index of its capacity row, [-1] when absent
          (no path crosses the LAG, or MLU mode — whose utilization
          rows are scenario-independent, Appendix A). Row indices match
          the model-constraint / sparse-rhs order {!Lp_spec.to_model}
          preserves: what {!Milp.Batch} patches. *)
  ext_rows : int array array;
      (** per (pair, path): spec-row index of the extension-capacity
          row, [-1] when [path_cap] returned [None] for it *)
}

(** [build ~objective ~topo ~paths ~lag_cap ~demand ?path_cap ~d_max ()]
    assembles the LP.

    [lag_cap e] is LAG [e]'s capacity (variable under failures);
    [demand ~src ~dst] the demand volume; [path_cap ~pair ~path], when
    [Some], adds the extension-capacity row [f_kp <= path_cap] (Eq. 5's
    C_kp) — return [None] for paths that need no row (always-available
    primaries). [d_max] bounds every demand from above (big-M
    tightness).

    @raise Invalid_argument if [Mlu] is combined with non-constant
    [lag_cap] (Appendix A keeps MLU capacity rows constant). *)
val build :
  objective:objective ->
  topo:Wan.Topology.t ->
  paths:Netpath.Path_set.t ->
  lag_cap:(int -> value) ->
  demand:(src:int -> dst:int -> value) ->
  ?path_cap:(pair:int -> path:int -> value option) ->
  d_max:float ->
  unit ->
  Lp_spec.t * index

(** Append extra rows (e.g. naive fail-over coupling, §5.1). *)
val add_rows : Lp_spec.t -> Lp_spec.row list -> Lp_spec.t

(** Total flow routed for a pair in a solution vector. *)
val pair_flow : index -> int -> float array -> float

(** Total flow across all pairs. *)
val total_flow : index -> float array -> float

(** The objective the spec reports, interpreted per [objective]:
    total flow for [Total_flow] and [Max_min] (not the binned surrogate),
    the MLU for [Mlu]. *)
val performance : objective -> index -> float array -> float
