type reaction = Optimal_failover | Naive_failover

type result = {
  performance : float;
  flows : float array;
  index : Formulation.index;
}

let availability topo (pair : Netpath.Path_set.pair) scenario =
  let all = Array.of_list (Netpath.Path_set.all_paths pair) in
  let n_primary = Netpath.Path_set.num_primary pair in
  let down =
    Array.map
      (fun p -> Failure.Scenario.path_down topo scenario (Netpath.Path.lag_list p))
      all
  in
  let failed_before = Array.make (Array.length all) 0 in
  for j = 1 to Array.length all - 1 do
    failed_before.(j) <- failed_before.(j - 1) + (if down.(j - 1) then 1 else 0)
  done;
  Array.mapi (fun j _ -> failed_before.(j) + n_primary - j - 1 >= 0) all

let d_max_of demand =
  List.fold_left (fun acc (_, v) -> Float.max acc v) 1. (Traffic.Demand.entries demand)

let route ?(objective = Formulation.Total_flow) ?(reaction = Optimal_failover) ?healthy
    topo paths demand scenario =
  let d_max = d_max_of demand in
  let lag_cap e = Formulation.C (Failure.Scenario.lag_capacity topo scenario e) in
  let lag_cap =
    match objective with
    | Formulation.Mlu _ ->
      (* Appendix A: MLU keeps capacity rows constant; failures act via
         path availability only *)
      fun e -> Formulation.C (Wan.Lag.capacity (Wan.Topology.lag topo e))
    | Formulation.Total_flow | Formulation.Max_min _ -> lag_cap
  in
  let avail =
    Array.of_list (List.map (fun p -> availability topo p scenario) paths)
  in
  (* In MLU mode the capacity rows stay constant (Appendix A), so a down
     path must additionally be blocked through its extension capacity;
     for the other objectives a down LAG's zero capacity already blocks
     it. *)
  let is_mlu = match objective with Formulation.Mlu _ -> true | _ -> false in
  let down =
    Array.of_list
      (List.map
         (fun (p : Netpath.Path_set.pair) ->
           Array.of_list
             (List.map
                (fun path ->
                  Failure.Scenario.path_down topo scenario (Netpath.Path.lag_list path))
                (Netpath.Path_set.all_paths p)))
         paths)
  in
  let path_cap ~pair ~path =
    let blocked =
      (not avail.(pair).(path)) || (is_mlu && down.(pair).(path))
    in
    if blocked then Some (Formulation.C 0.) else None
  in
  let demand_f ~src ~dst = Formulation.C (Traffic.Demand.volume demand ~src ~dst) in
  let spec, index =
    Formulation.build ~objective ~topo ~paths ~lag_cap ~demand:demand_f ~path_cap ~d_max ()
  in
  let spec =
    match (reaction, healthy) with
    | Optimal_failover, _ -> spec
    | Naive_failover, None -> invalid_arg "Simulate.route: naive fail-over needs healthy flows"
    | Naive_failover, Some h ->
      (* primaries capped by their healthy flow; the r-th backup capped by
         the r-th primary's healthy flow (§5.1) *)
      let extra = ref [] in
      Array.iteri
        (fun k (pc : Formulation.pair_cols) ->
          let hpc = h.index.Formulation.pair_arr.(k) in
          Array.iteri
            (fun j col ->
              let cap_col =
                if j < pc.Formulation.n_primary then Some j
                else begin
                  let r = j - pc.Formulation.n_primary in
                  if r < pc.Formulation.n_primary then Some r else None
                end
              in
              match cap_col with
              | None -> ()
              | Some jh ->
                let healthy_flow = h.flows.(hpc.Formulation.path_cols.(jh)) in
                extra :=
                  {
                    Lp_spec.rname = Printf.sprintf "naive_k%d_p%d" k j;
                    terms = [ (col, 1.) ];
                    rel = Lp_spec.Le;
                    rhs = Lp_spec.Const healthy_flow;
                    slack_bound = d_max;
                  }
                  :: !extra)
            pc.Formulation.path_cols)
        index.Formulation.pair_arr;
      Formulation.add_rows spec !extra
  in
  match Lp_spec.solve spec with
  | `Optimal (_, xs) ->
    Some { performance = Formulation.performance objective index xs; flows = xs; index }
  | `Infeasible -> None
  | `Unbounded -> failwith "Simulate.route: unbounded TE LP"

let healthy ?objective topo paths demand =
  route ?objective topo paths demand Failure.Scenario.empty

(* ------------------------------------------------------------------ *)
(* Batched scenario engine (DESIGN.md §12)

   One base LP is built with every extension-capacity row present (rhs
   d_max = unconstrained) and healthy LAG capacities; a scenario is
   then a pure rhs patch: capacity rows take the scenario's live LAG
   capacities, blocked paths' extension rows drop to 0. The matrix
   never changes, so one Milp.Batch prepare (CSC + symbolic
   factorization) serves every scenario, warm-started from the healthy
   network's optimal basis.

   The [rebuild] escape hatch (--no-batch) solves the same scenario LP
   by rebuilding formulation, model and prepared structure from
   scratch — the per-scenario-prepare path. Both paths hand the
   simplex bit-identical inputs (structure, bounds, rhs, warm basis),
   so their results are bit-identical by construction; the differential
   test suite holds them to that. *)

type engine = {
  eng_topo : Wan.Topology.t;
  eng_paths : Netpath.Path_set.t;
  eng_demand : Traffic.Demand.t;
  eng_objective : Formulation.objective;
  eng_d_max : float;
  eng_n_cols : int;
  eng_index : Formulation.index;
  eng_batch : Milp.Batch.t;
  eng_healthy : result;
  eng_basis : Milp.Simplex.basis option;
}

let is_mlu = function Formulation.Mlu _ -> true | _ -> false

(* Scenario overlay: every capacity row re-patched with the scenario's
   live capacity (bit-equal to what a from-scratch build would compute,
   even for untouched LAGs), blocked extension rows to 0. Open
   extension rows keep the base d_max. *)
let scenario_patch ~objective topo paths (index : Formulation.index) scenario =
  let mlu = is_mlu objective in
  let patch = ref [] in
  if not mlu then
    Array.iteri
      (fun e row ->
        if row >= 0 then
          patch := (row, Failure.Scenario.lag_capacity topo scenario e) :: !patch)
      index.Formulation.cap_rows;
  List.iteri
    (fun k (p : Netpath.Path_set.pair) ->
      let avail = availability topo p scenario in
      List.iteri
        (fun j path ->
          let blocked =
            (not avail.(j))
            || (mlu
               && Failure.Scenario.path_down topo scenario (Netpath.Path.lag_list path))
          in
          if blocked then
            patch := (index.Formulation.ext_rows.(k).(j), 0.) :: !patch)
        (Netpath.Path_set.all_paths p))
    paths;
  !patch

(* The base build: healthy capacities, every extension row present and
   open at d_max. [lag_cap] values are irrelevant for the non-MLU
   objectives (the scenario patch rewrites every capacity row,
   including the healthy overlay's), but MLU's utilization rows bake
   the constant capacities into the matrix. *)
let base_build ~objective topo paths demand =
  let d_max = d_max_of demand in
  let lag_cap e = Formulation.C (Wan.Lag.capacity (Wan.Topology.lag topo e)) in
  let demand_f ~src ~dst = Formulation.C (Traffic.Demand.volume demand ~src ~dst) in
  let path_cap ~pair:_ ~path:_ = Some (Formulation.C d_max) in
  ( d_max,
    Formulation.build ~objective ~topo ~paths ~lag_cap ~demand:demand_f ~path_cap
      ~d_max () )

let finish_result eng = function
  | Milp.Simplex.Optimal { obj = _; values } ->
    let xs = Array.sub values 0 eng.eng_n_cols in
    Some
      {
        performance = Formulation.performance eng.eng_objective eng.eng_index xs;
        flows = xs;
        index = eng.eng_index;
      }
  | Milp.Simplex.Infeasible -> None
  | Milp.Simplex.Unbounded -> failwith "Simulate.route_prepared: unbounded TE LP"
  | Milp.Simplex.Iter_limit ->
    failwith "Simulate.route_prepared: simplex iteration limit"

let prepare ?(objective = Formulation.Total_flow) topo paths demand =
  let d_max, (spec, index) = base_build ~objective topo paths demand in
  let model, _vars = Lp_spec.to_model spec in
  let batch = Milp.Batch.prepare model in
  let eng0 =
    {
      eng_topo = topo;
      eng_paths = paths;
      eng_demand = demand;
      eng_objective = objective;
      eng_d_max = d_max;
      eng_n_cols = Array.length spec.Lp_spec.cols;
      eng_index = index;
      eng_batch = batch;
      eng_healthy =
        { performance = nan; flows = [||]; index } (* placeholder *);
      eng_basis = None;
    }
  in
  (* cold-solve the healthy overlay: its optimal basis is the shared
     warm seed for every scenario *)
  let hpatch =
    scenario_patch ~objective topo paths index Failure.Scenario.empty
  in
  let out = Milp.Batch.solve ~patch:hpatch batch in
  match finish_result eng0 out.Milp.Batch.result with
  | None -> None
  | Some h -> Some { eng0 with eng_healthy = h; eng_basis = out.Milp.Batch.basis }

let engine_healthy eng = eng.eng_healthy

(* Per-scenario-prepare comparator: bake the same scenario rhs into a
   from-scratch build (same row shape as the base: every extension row
   present, blocked ones at 0) and pay model + CSC + factorization per
   scenario. *)
let rebuild_solve eng scenario =
  let topo = eng.eng_topo and objective = eng.eng_objective in
  let mlu = is_mlu objective in
  let lag_cap e =
    if mlu then Formulation.C (Wan.Lag.capacity (Wan.Topology.lag topo e))
    else Formulation.C (Failure.Scenario.lag_capacity topo scenario e)
  in
  let avail =
    Array.of_list (List.map (fun p -> availability topo p scenario) eng.eng_paths)
  in
  let down =
    Array.of_list
      (List.map
         (fun (p : Netpath.Path_set.pair) ->
           Array.of_list
             (List.map
                (fun path ->
                  Failure.Scenario.path_down topo scenario (Netpath.Path.lag_list path))
                (Netpath.Path_set.all_paths p)))
         eng.eng_paths)
  in
  let path_cap ~pair ~path =
    let blocked = (not avail.(pair).(path)) || (mlu && down.(pair).(path)) in
    Some (Formulation.C (if blocked then 0. else eng.eng_d_max))
  in
  let demand_f ~src ~dst =
    Formulation.C (Traffic.Demand.volume eng.eng_demand ~src ~dst)
  in
  let spec, _index =
    Formulation.build ~objective ~topo ~paths:eng.eng_paths ~lag_cap
      ~demand:demand_f ~path_cap ~d_max:eng.eng_d_max ()
  in
  let model, _vars = Lp_spec.to_model spec in
  let prep = Milp.Simplex.prepare model in
  fst (Milp.Simplex.solve_prepared ?warm:eng.eng_basis prep)

let route_prepared ?(rebuild = false) eng scenario =
  if rebuild then finish_result eng (rebuild_solve eng scenario)
  else begin
    let patch =
      scenario_patch ~objective:eng.eng_objective eng.eng_topo eng.eng_paths
        eng.eng_index scenario
    in
    let out = Milp.Batch.solve ?warm:eng.eng_basis ~patch eng.eng_batch in
    (* independent overlay audit (Milp.Batch.check): the verdict lands in
       the certify counters, which the bench prints and CI gates on —
       a failed audit must never pass silently as a solved scenario *)
    (match out.Milp.Batch.result with
    | Milp.Simplex.Optimal { obj; values } ->
      (match Milp.Batch.check ~patch ~obj ~values eng.eng_batch with
      | Ok () | Error _ -> ())
    | _ -> ());
    finish_result eng out.Milp.Batch.result
  end

let degradation_prepared ?rebuild eng scenario =
  match route_prepared ?rebuild eng scenario with
  | None -> None
  | Some f -> (
    let h = eng.eng_healthy.performance in
    match eng.eng_objective with
    | Formulation.Mlu _ -> Some (f.performance -. h)
    | Formulation.Total_flow | Formulation.Max_min _ ->
      Some (h -. f.performance))

let degradation ?(objective = Formulation.Total_flow) ?reaction topo paths demand scenario =
  match healthy ~objective topo paths demand with
  | None -> None
  | Some h -> (
    let failed = route ~objective ?reaction ~healthy:h topo paths demand scenario in
    match failed with
    | None -> None
    | Some f -> (
      match objective with
      | Formulation.Total_flow | Formulation.Max_min _ ->
        Some (h.performance -. f.performance)
      | Formulation.Mlu _ -> Some (f.performance -. h.performance)))
