type summary = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max_seen : float;
  worst_scenario : Failure.Scenario.t;
}

let sample_scenario rng topo =
  let links = ref [] in
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          if l.Wan.Lag.fail_prob > 0. && Random.State.float rng 1. < l.Wan.Lag.fail_prob
          then links := (lag.Wan.Lag.lag_id, i) :: !links)
        lag.Wan.Lag.links)
    (Wan.Topology.lags topo);
  Failure.Scenario.of_links topo !links

(* Samples are drawn in fixed blocks of [rng_block], each from its own
   RNG seeded with [| seed; block |]. The block layout never depends on
   the domain count (the pool's scheduling chunks are independent of
   it), so a run is bit-identical for any [~domains] given the same
   [~seed] — the determinism contract DESIGN.md documents. *)
let rng_block = 64

let sample_degradations ?(objective = Formulation.Total_flow) ?(domains = 1) ?pool
    ?(batch = true) ?(batch_size = rng_block) ~seed ~samples topo paths demand =
  if samples <= 0 then invalid_arg "Monte_carlo.sample_degradations: samples <= 0";
  if batch_size <= 0 then
    invalid_arg "Monte_carlo.sample_degradations: batch_size <= 0";
  let eng =
    match Simulate.prepare ~objective topo paths demand with
    | Some e -> e
    | None -> invalid_arg "Monte_carlo: healthy network cannot route the demand"
  in
  let healthy = Simulate.engine_healthy eng in
  (* phase 1: draw every scenario up front, in the fixed block layout —
     the draws are exactly the ones the pre-batch implementation made *)
  let scenarios = Array.make samples Failure.Scenario.empty in
  for b = 0 to ((samples + rng_block - 1) / rng_block) - 1 do
    let rng = Random.State.make [| seed; b |] in
    let hi = min samples ((b + 1) * rng_block) in
    for i = b * rng_block to hi - 1 do
      scenarios.(i) <- sample_scenario rng topo
    done
  done;
  (* phase 2: solve in chunks of [batch_size]. Every scenario
     warm-starts from the same shared healthy basis (never chained), so
     the values are independent of batch_size, domain count and
     scheduling; batch_size only sets the work-chunk granularity. *)
  let degradations = Array.make samples 0. in
  let rebuild = not batch in
  let solve_chunk c =
    let hi = min samples ((c + 1) * batch_size) in
    for i = c * batch_size to hi - 1 do
      degradations.(i) <-
        (match Simulate.degradation_prepared ~rebuild eng scenarios.(i) with
        | Some d -> d
        | None -> healthy.Simulate.performance)
    done
  in
  let chunks = Array.init ((samples + batch_size - 1) / batch_size) Fun.id in
  (match pool with
  | Some pool -> Parallel.Pool.iter_array pool solve_chunk chunks
  | None ->
    if domains <= 1 then Array.iter solve_chunk chunks
    else
      Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters ~domains (fun pool ->
          Parallel.Pool.iter_array pool solve_chunk chunks));
  (degradations, scenarios)

let summarize degradations scenarios =
  let n = Array.length degradations in
  if n = 0 || Array.length scenarios <> n then invalid_arg "Monte_carlo.summarize";
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare degradations.(a) degradations.(b)) idx;
  (* nearest-rank percentile: the q-quantile of n sorted values is the
     ceil(q*n)-th smallest (1-based), so small samples round toward the
     lower order statistic instead of past it *)
  let at q =
    let rank = int_of_float (Float.ceil (q *. Float.of_int n)) in
    degradations.(idx.(min (n - 1) (max 0 (rank - 1))))
  in
  let worst = idx.(n - 1) in
  {
    samples = n;
    mean = Array.fold_left ( +. ) 0. degradations /. float_of_int n;
    p50 = at 0.5;
    p95 = at 0.95;
    p99 = at 0.99;
    max_seen = degradations.(worst);
    worst_scenario = scenarios.(worst);
  }

let prob_degradation_above degradations x =
  let n = Array.length degradations in
  if n = 0 then 0.
  else begin
    let count = Array.fold_left (fun acc d -> if d > x then acc + 1 else acc) 0 degradations in
    float_of_int count /. float_of_int n
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "%d samples: mean %.3g, p50 %.3g, p95 %.3g, p99 %.3g, max %.3g (scenario %a)"
    s.samples s.mean s.p50 s.p95 s.p99 s.max_seen Failure.Scenario.pp s.worst_scenario
