type summary = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max_seen : float;
  worst_scenario : Failure.Scenario.t;
}

let sample_scenario rng topo =
  let links = ref [] in
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          if l.Wan.Lag.fail_prob > 0. && Random.State.float rng 1. < l.Wan.Lag.fail_prob
          then links := (lag.Wan.Lag.lag_id, i) :: !links)
        lag.Wan.Lag.links)
    (Wan.Topology.lags topo);
  Failure.Scenario.of_links topo !links

(* Samples are drawn in fixed blocks of [rng_block], each from its own
   RNG seeded with [| seed; block |]. The block layout never depends on
   the domain count (the pool's scheduling chunks are independent of
   it), so a run is bit-identical for any [~domains] given the same
   [~seed] — the determinism contract DESIGN.md documents. *)
let rng_block = 64

let sample_degradations ?(objective = Formulation.Total_flow) ?(domains = 1) ?pool ~seed
    ~samples topo paths demand =
  if samples <= 0 then invalid_arg "Monte_carlo.sample_degradations: samples <= 0";
  let healthy =
    match Simulate.healthy ~objective topo paths demand with
    | Some h -> h
    | None -> invalid_arg "Monte_carlo: healthy network cannot route the demand"
  in
  let degradations = Array.make samples 0. in
  let scenarios = Array.make samples Failure.Scenario.empty in
  let sample_block b =
    let rng = Random.State.make [| seed; b |] in
    let hi = min samples ((b + 1) * rng_block) in
    for i = b * rng_block to hi - 1 do
      let s = sample_scenario rng topo in
      scenarios.(i) <- s;
      degradations.(i) <-
        (match Simulate.route ~objective ~healthy topo paths demand s with
        | Some f -> (
          match objective with
          | Formulation.Mlu _ -> f.Simulate.performance -. healthy.Simulate.performance
          | Formulation.Total_flow | Formulation.Max_min _ ->
            healthy.Simulate.performance -. f.Simulate.performance)
        | None -> healthy.Simulate.performance)
    done
  in
  let blocks = Array.init ((samples + rng_block - 1) / rng_block) Fun.id in
  (match pool with
  | Some pool -> Parallel.Pool.iter_array pool sample_block blocks
  | None ->
    if domains <= 1 then Array.iter sample_block blocks
    else
      Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters ~domains (fun pool ->
          Parallel.Pool.iter_array pool sample_block blocks));
  (degradations, scenarios)

let summarize degradations scenarios =
  let n = Array.length degradations in
  if n = 0 || Array.length scenarios <> n then invalid_arg "Monte_carlo.summarize";
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare degradations.(a) degradations.(b)) idx;
  (* nearest-rank percentile: the q-quantile of n sorted values is the
     ceil(q*n)-th smallest (1-based), so small samples round toward the
     lower order statistic instead of past it *)
  let at q =
    let rank = int_of_float (Float.ceil (q *. Float.of_int n)) in
    degradations.(idx.(min (n - 1) (max 0 (rank - 1))))
  in
  let worst = idx.(n - 1) in
  {
    samples = n;
    mean = Array.fold_left ( +. ) 0. degradations /. float_of_int n;
    p50 = at 0.5;
    p95 = at 0.95;
    p99 = at 0.99;
    max_seen = degradations.(worst);
    worst_scenario = scenarios.(worst);
  }

let prob_degradation_above degradations x =
  let n = Array.length degradations in
  if n = 0 then 0.
  else begin
    let count = Array.fold_left (fun acc d -> if d > x then acc + 1 else acc) 0 degradations in
    float_of_int count /. float_of_int n
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "%d samples: mean %.3g, p50 %.3g, p95 %.3g, p99 %.3g, max %.3g (scenario %a)"
    s.samples s.mean s.p50 s.p95 s.p99 s.max_seen Failure.Scenario.pp s.worst_scenario
