(** Fixed-size [Domain] worker pool for scenario-level parallelism.

    Raha's sweeps — Monte Carlo sampling, scenario enumeration, grid
    experiments — are embarrassingly parallel: many independent LP/MILP
    solves over a shared, immutable topology. This pool runs such sweeps
    across OCaml 5 domains with chunked work-stealing over arrays.

    Contract:
    - results are position-stable: [map_array pool f a] returns exactly
      [Array.map f a] (each element evaluated once, order preserved), so
      a sweep is bit-identical no matter how many domains execute it;
    - [f] must not mutate shared state — all solver state in this
      repository is per-call (the only process-global counter,
      {!Milp.Simplex}'s pivot count, is domain-local and aggregated
      through the counter hooks below);
    - a pool created with [~domains:1] spawns no worker domains and runs
      everything inline on the caller — the exact old sequential path.

    Nested parallelism degrades to a sequential sub-scope: calling a
    mapping function of a pool that has workers from inside a pool task
    (of the same pool or another) runs the items inline on the calling
    domain instead of fanning out again — fanning out would
    oversubscribe the machine, and re-entering the same pool could
    deadlock. Both nesting directions compose this way: a scenario sweep
    may call the parallel branch-and-bound and vice versa; the inner
    level takes the exact sequential path, so results are unchanged.
    Nested work is accounted to the enclosing chunk's busy time and
    counter deltas, not recorded as separate tasks. Sequential pools
    ([~domains:1]) record their own stats and may be used anywhere. *)

type t

(** Aggregated execution counters for one pool. [counters] holds the
    summed deltas of the hooks passed to {!create} (e.g. simplex pivots
    via [Milp.Solver.stats_counters]), sampled around every chunk on the
    domain that ran it. *)
type stats = {
  domains : int;
  tasks : int;  (** chunks executed (one per sequential call) *)
  items : int;  (** array elements processed *)
  busy : float;  (** summed wall-clock seconds inside chunks, all domains *)
  wall : float;  (** wall-clock seconds the submitter spent in sweeps *)
  counters : (string * int) list;
}

(** [create ~domains ()] starts a pool of [domains - 1] worker domains;
    the submitting domain participates in every sweep, so [domains] is
    the total parallelism. Each [counters] hook must read a
    domain-local cumulative counter; the pool aggregates per-chunk
    deltas into {!stats}.
    @raise Invalid_argument if [domains < 1]. *)
val create : ?counters:(string * (unit -> int)) list -> domains:int -> unit -> t

val domains : t -> int

(** [map_array pool f a] is [Array.map f a], evaluated in parallel.
    The first exception raised by [f] is re-raised (with its backtrace)
    after outstanding chunks are cancelled. *)
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** [mapi_array pool f a] is [Array.mapi f a], evaluated in parallel. *)
val mapi_array : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [iter_array pool f a] is [Array.iter f a], evaluated in parallel. *)
val iter_array : t -> ('a -> unit) -> 'a array -> unit

(** [map_reduce pool ~map ~combine ~init a] maps in parallel, then folds
    [combine] sequentially in index order — the fold order is fixed so
    floating-point reductions stay deterministic. *)
val map_reduce :
  t -> map:('a -> 'b) -> combine:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c

(** [inside_task ()] is [true] while the calling domain is executing a
    pool task (any pool). Components that would otherwise create their
    own pool can consult this to stay sequential inside a sweep. *)
val inside_task : unit -> bool

val stats : t -> stats
val reset_stats : t -> unit

(** One-line rendering, e.g.
    ["[parallel: 4 domains, 16 tasks/2000 items, busy 3.1s, wall 0.9s, simplex=123456]"]. *)
val pp_stats : Format.formatter -> stats -> unit

(** Stop and join the worker domains. The pool must be idle. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down,
    also on exception. *)
val with_pool :
  ?counters:(string * (unit -> int)) list -> domains:int -> (t -> 'a) -> 'a
