(* Fixed-size Domain pool with chunked work-stealing over arrays.

   A sweep is posted as a [job]: an item count plus a [run] closure for
   one item. Executors (the workers and the submitting domain) claim
   chunks of indices from an atomic cursor until none remain, so a slow
   chunk never blocks the others (work-stealing at chunk granularity).
   Chunk boundaries affect scheduling only — [run] is called once per
   index either way — so results never depend on the domain count.

   The pool mutex guards job hand-off and the stats record; the hot path
   (claiming a chunk) is a single fetch-and-add. *)

type job = {
  n : int;
  chunk : int;
  nchunks : int;
  next : int Atomic.t; (* next chunk to claim *)
  mutable completed : int; (* chunks retired; guarded by the pool mutex *)
  run : int -> unit; (* one item *)
  error : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type stats = {
  domains : int;
  tasks : int;
  items : int;
  busy : float;
  wall : float;
  counters : (string * int) list;
}

type t = {
  domains : int;
  counters : (string * (unit -> int)) array;
  mutex : Mutex.t;
  work : Condition.t; (* a job was posted or the pool is shutting down *)
  finished : Condition.t; (* the current job retired its last chunk *)
  mutable job : job option;
  mutable generation : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  (* stats, guarded by [mutex] *)
  mutable s_tasks : int;
  mutable s_items : int;
  mutable s_busy : float;
  mutable s_wall : float;
  s_counters : int array;
}

(* True while this domain is executing a pool task. Mapping functions
   called then run their items as an inline *sequential sub-scope*
   instead of fanning out again: a nested parallel sweep would
   oversubscribe the machine and can deadlock on the same pool, while a
   sequential one composes — a scenario sweep may call the parallel
   branch-and-bound and vice versa, and both degrade to the exact
   sequential path at the inner level. *)
let in_task = Domain.DLS.new_key (fun () -> false)

let inside_task () = Domain.DLS.get in_task

let merge_chunk t ~items ~elapsed ~deltas ~job =
  Mutex.lock t.mutex;
  t.s_tasks <- t.s_tasks + 1;
  t.s_items <- t.s_items + items;
  t.s_busy <- t.s_busy +. elapsed;
  Array.iteri (fun i d -> t.s_counters.(i) <- t.s_counters.(i) + d) deltas;
  job.completed <- job.completed + 1;
  if job.completed = job.nchunks then Condition.broadcast t.finished;
  Mutex.unlock t.mutex

(* Claim and execute chunks of [job] until the cursor is exhausted. Safe
   to call on an already-drained job (the worker loop may race a stale
   generation): it returns immediately without touching [completed]. *)
let exec_chunks t job =
  let rec loop () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < job.nchunks then begin
      let lo = c * job.chunk in
      let hi = min job.n (lo + job.chunk) in
      let t0 = Unix.gettimeofday () in
      let before = Array.map (fun (_, read) -> read ()) t.counters in
      (* after a failure, remaining chunks are claimed but skipped *)
      if Atomic.get job.error = None then begin
        Domain.DLS.set in_task true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set in_task false)
          (fun () ->
            try
              for i = lo to hi - 1 do
                job.run i
              done
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set job.error None (Some (e, bt))))
      end;
      let deltas =
        Array.mapi (fun i (_, read) -> read () - before.(i)) t.counters
      in
      merge_chunk t ~items:(hi - lo) ~elapsed:(Unix.gettimeofday () -. t0) ~deltas
        ~job;
      loop ()
    end
  in
  loop ()

let worker t =
  let rec loop gen =
    Mutex.lock t.mutex;
    while t.generation = gen && not t.stopping do
      Condition.wait t.work t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      let gen' = t.generation in
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with Some j -> exec_chunks t j | None -> ());
      loop gen'
    end
  in
  loop 0

let create ?(counters = []) ~domains () =
  if domains < 1 then invalid_arg "Parallel.Pool.create: domains < 1";
  let counters = Array.of_list counters in
  let t =
    {
      domains;
      counters;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      stopping = false;
      workers = [];
      s_tasks = 0;
      s_items = 0;
      s_busy = 0.;
      s_wall = 0.;
      s_counters = Array.map (fun _ -> 0) counters;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let domains t = t.domains

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers

let with_pool ?counters ~domains f =
  let t = create ?counters ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [run] over [0, n): inline when the pool has no workers (the exact
   sequential path), otherwise fanned out over the pool. *)
let run_items t n run =
  if n = 0 then ()
  else if t.workers = [] then begin
    let t0 = Unix.gettimeofday () in
    let before = Array.map (fun (_, read) -> read ()) t.counters in
    Fun.protect
      ~finally:(fun () ->
        let elapsed = Unix.gettimeofday () -. t0 in
        let deltas =
          Array.mapi (fun i (_, read) -> read () - before.(i)) t.counters
        in
        Mutex.lock t.mutex;
        t.s_tasks <- t.s_tasks + 1;
        t.s_items <- t.s_items + n;
        t.s_busy <- t.s_busy +. elapsed;
        t.s_wall <- t.s_wall +. elapsed;
        Array.iteri (fun i d -> t.s_counters.(i) <- t.s_counters.(i) + d) deltas;
        Mutex.unlock t.mutex)
      (fun () ->
        for i = 0 to n - 1 do
          run i
        done)
  end
  else if Domain.DLS.get in_task then
    (* Nested sub-scope: this domain is already executing a pool task
       (of this pool or another), so fanning out would oversubscribe or
       deadlock. Run the items inline instead — the enclosing chunk's
       busy time and counter deltas already cover this work, so nothing
       is recorded here and the nesting is invisible in the stats. *)
    for i = 0 to n - 1 do
      run i
    done
  else begin
    let t0 = Unix.gettimeofday () in
    (* ~4 chunks per domain: coarse enough to amortize claiming, fine
       enough that uneven solve times still balance *)
    let chunk = max 1 ((n + (4 * t.domains) - 1) / (4 * t.domains)) in
    let job =
      {
        n;
        chunk;
        nchunks = (n + chunk - 1) / chunk;
        next = Atomic.make 0;
        completed = 0;
        run;
        error = Atomic.make None;
      }
    in
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    exec_chunks t job;
    Mutex.lock t.mutex;
    while job.completed < job.nchunks do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    t.s_wall <- t.s_wall +. (Unix.gettimeofday () -. t0);
    Mutex.unlock t.mutex;
    match Atomic.get job.error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let iter_array t f a = run_items t (Array.length a) (fun i -> f a.(i))

let mapi_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* element 0 runs on the submitter to seed the result array with the
       right runtime representation (flat float arrays included); it is
       accounted as its own chunk so stats stay exact. The remaining
       items run through the pool. *)
    let t0 = Unix.gettimeofday () in
    let before = Array.map (fun (_, read) -> read ()) t.counters in
    (* element 0 counts as a task of a parallel pool, exactly like the
       chunks behind it, so a nested map from inside it stays inline;
       sequential pools remain transparent *)
    let was_in_task = Domain.DLS.get in_task in
    if t.workers <> [] then Domain.DLS.set in_task true;
    let r0 =
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_task was_in_task)
        (fun () -> f 0 a.(0))
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let deltas = Array.mapi (fun i (_, read) -> read () - before.(i)) t.counters in
    Mutex.lock t.mutex;
    t.s_tasks <- t.s_tasks + 1;
    t.s_items <- t.s_items + 1;
    t.s_busy <- t.s_busy +. elapsed;
    t.s_wall <- t.s_wall +. elapsed;
    Array.iteri (fun i d -> t.s_counters.(i) <- t.s_counters.(i) + d) deltas;
    Mutex.unlock t.mutex;
    let out = Array.make n r0 in
    run_items t (n - 1) (fun i -> out.(i + 1) <- f (i + 1) a.(i + 1));
    out
  end

let map_array t f a = mapi_array t (fun _ x -> f x) a

let map_reduce t ~map ~combine ~init a =
  Array.fold_left combine init (map_array t map a)

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      domains = t.domains;
      tasks = t.s_tasks;
      items = t.s_items;
      busy = t.s_busy;
      wall = t.s_wall;
      counters =
        Array.to_list (Array.mapi (fun i (name, _) -> (name, t.s_counters.(i))) t.counters);
    }
  in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  t.s_tasks <- 0;
  t.s_items <- 0;
  t.s_busy <- 0.;
  t.s_wall <- 0.;
  Array.iteri (fun i _ -> t.s_counters.(i) <- 0) t.s_counters;
  Mutex.unlock t.mutex

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "[parallel: %d domains, %d tasks/%d items, busy %.2fs, wall %.2fs%t]"
    s.domains s.tasks s.items s.busy s.wall (fun ppf ->
      List.iter (fun (name, v) -> Format.fprintf ppf ", %s=%d" name v) s.counters)
