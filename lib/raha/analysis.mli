(** Raha's front door: find the probable failure scenario and demand
    matrix that maximize WAN degradation (Fig. 4).

    Wraps {!Bilevel} with solving, limits (the §6 timeout feature — a
    solve interrupted by its time budget still reports the incumbent and
    the remaining optimality gap), result extraction, and the
    normalization the paper reports (degradation / average LAG
    capacity, §8.1). *)

type options = {
  spec : Bilevel.spec;
  time_limit : float;  (** seconds; [infinity] disables *)
  max_nodes : int;
  rel_gap : float;
  log : bool;
  seed_enumeration : int option;
      (** number of candidate scenarios (single-LAG failures, the greedy
          most-probable multi-failure, the empty scenario) simulated and
          fed to the solver as warm-start hints. [None] defaults to 6;
          [Some 0] disables seeding. *)
  domains : int;
      (** OCaml domains used for the scenario-evaluation sweeps (seed
          candidate scoring here, enumeration in {!Baselines}) and for
          the MILP core itself: one pool per {!analyze} is shared by the
          screening sweep and the branch-and-bound subtree rounds
          ({!Milp.Branch_bound.options.pool}). [1] (the default) is the
          exact sequential path; results are identical for any value. *)
  presolve : bool;
      (** run the {!Milp.Presolve} reductions (big-M tightening, probing
          on the failure binaries, …) before branch-and-bound; default
          [true]. Disable with the CLI/bench [--no-presolve] flags. *)
  dense_simplex : bool;
      (** solve LP relaxations with the legacy dense tableau instead of
          the revised simplex (no sparse factorization, no dual-simplex
          warm starts); default [false]. Enable with the CLI/bench
          [--dense-simplex] flags. *)
  certify : bool;
      (** independently re-validate the solver's answer against the
          original model ({!Milp.Certify}); a failed certificate
          downgrades [status] instead of reporting an unsound result.
          Default [true]; disable with the CLI/bench [--no-certify]
          flags. *)
  cuts : Milp.Cuts.options;
      (** cutting planes for the branch-and-bound solve
          ({!Milp.Cuts}: Gomory mixed-integer, knapsack cover and clique
          cuts over a managed pool). Default {!Milp.Cuts.default};
          [Milp.Cuts.disabled] (the CLI/bench [--no-cuts] flags)
          restores the cut-free search exactly, and [--cut-rounds N]
          overrides the number of root separation rounds. *)
  batch : bool;
      (** route scenario-evaluation sweeps (seed candidate scoring here,
          Monte Carlo and enumeration in {!Te.Monte_carlo} /
          {!Baselines}) through the batched engine
          ({!Te.Simulate.prepare}): one symbolic factorization, rhs
          overlays, warm dual solves. Default [true]; [false] (the
          CLI/bench [--no-batch] flags) rebuilds the per-scenario
          structures instead — bit-identical results, full per-scenario
          cost. *)
  sx_iters : int option;
      (** simplex pivot budget per LP relaxation
          ({!Milp.Solver.options.sx_iters}); default [None] = unlimited.
          Exhaustion degrades the status honestly ([Optimal] →
          [Feasible], no incumbent → [Unknown]) — the per-query
          admission budget of the serving layer. *)
  bb_width : int;
      (** frontier width at which branch-and-bound switches to parallel
          subtree rounds ({!Milp.Solver.options.bb_width}); default 32.
          [<= 0] restores the pure sequential search. Results are
          bit-identical for any value — this only moves the
          sequential/parallel crossover. *)
  bb_grain : int;
      (** per-subtree node budget within one parallel round
          ({!Milp.Solver.options.bb_grain}); default 64. *)
  branching : Milp.Branch_bound.branching;
      (** branching-variable rule for the bilevel MILP
          ({!Milp.Solver.options.branching}); default
          {!Milp.Branch_bound.Reliability}. *)
  heuristics : bool;
      (** enable the feasibility-pump and RINS primal heuristics
          ({!Milp.Solver.options.heuristics}); default [true]. *)
  rins_freq : int;
      (** RINS cadence in branch-and-bound nodes; [<= 0] disables
          ({!Milp.Solver.options.rins_freq}); default 200. *)
}

val default_options : options

(** [with_timeout seconds] — default options under a solver time budget. *)
val with_timeout : float -> options

type report = {
  status : Milp.Solver.status;
  degradation : float;  (** absolute, in traffic units (or MLU delta) *)
  normalized : float;  (** degradation / average LAG capacity *)
  bound : float;  (** proven upper bound on the degradation *)
  scenario : Failure.Scenario.t;
  scenario_prob : float;
  num_failed_links : int;
  worst_demand : Traffic.Demand.t;
  healthy_performance : float;
  failed_performance : float;
  per_pair : ((int * int) * float * float) list;
      (** per (src, dst): flow carried by the healthy network and by the
          failed network at the worst-case demand — the §9 "isolate and
          explain" breakdown. Empty when no incumbent exists. *)
  certificate : Milp.Certify.t option;
      (** the solution-audit verdict and residuals ({!Milp.Certify});
          [None] when certification is disabled or the outcome carries
          no point *)
  elapsed : float;
  nodes : int;
}

(** [analyze ~options topo paths envelope] solves the bi-level problem.
    Reports with [status = Feasible] carry a valid incumbent plus bound
    (timeout behaviour, §6); [Infeasible] means no scenario satisfies the
    operator's constraints (e.g. threshold too high).

    [?screen] lends the candidate-screening sweep a prepared scenario
    engine for these exact (spec, topo, paths, screening-demand) inputs
    — {!screening_engine} builds one — skipping the per-call prepare; a
    long-lived caller keeps one engine across many analyses.
    [?extra_cuts] appends caller-supplied valid inequalities (variable
    ids in {!Bilevel.build}'s deterministic indexing, e.g. cuts
    persisted from a previous solve of the same structure) to the model
    before solving; supplying an inequality that is {e not} valid for
    this model makes answers wrong, so callers must re-check validity —
    see {!Milp.Cuts.structural}.

    [?pool] lends an existing domain pool to the screening sweep and
    the branch-and-bound rounds; without it one pool is created per
    call when [options.domains > 1] (never from inside a pool task —
    nested calls run their exact sequential paths). Results are
    bit-identical with or without a pool, at any width. *)
val analyze :
  ?screen:Te.Simulate.engine ->
  ?extra_cuts:Milp.Cuts.structural list ->
  ?pool:Parallel.Pool.t ->
  ?options:options ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Envelope.t ->
  report

(** The batched scenario engine {!analyze}'s screening sweep uses,
    prepared once for reuse via [?screen]: the TE LP at the envelope
    corner matching [spec.goal]. [None] when the healthy network cannot
    route that demand. *)
val screening_engine :
  spec:Bilevel.spec ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Envelope.t ->
  Te.Simulate.engine option

val pp_report : Format.formatter -> report -> unit

(** Operator-facing incident explanation: the failed LAGs, the pairs that
    lose traffic (healthy vs failed flow), and the demand that realizes
    it. *)
val pp_explanation : Wan.Topology.t -> Format.formatter -> report -> unit
