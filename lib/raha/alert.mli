(** Raha's online alerting pipeline (§1, §3).

    Operationally Raha runs after every failure/topology change:
    1. a {e fast} check (budgeted ~10 minutes in production) with the
       demand fixed to the observed per-pair peak — alerts immediately if
       a probable failure scenario degrades the network beyond the
       operator's tolerance;
    2. otherwise a {e deep} check (budgeted ~1 hour) over the whole
       demand envelope, which alerts if {e any} admissible demand can be
       degraded.

    Budgets here are solver wall-clock seconds, scaled to the instance
    size rather than the paper's production numbers. *)

type stage = Fast_fixed_demand | Deep_variable_demand

type verdict = {
  alert : bool;
  stage : stage option;  (** which stage raised the alert, if any *)
  fast : Analysis.report;
  deep : Analysis.report option;  (** [None] when the fast stage alerted *)
}

(** The pipeline's threshold test: normalized degradation beyond
    [tolerance], on a solved ([Optimal]/[Feasible]) report only — an
    [Unknown]/[Infeasible] answer never raises an alert by itself.
    Exposed for the service's push pipeline ({!Service.Core}), which
    applies it per-subscriber. *)
val exceeds : Analysis.report -> tolerance:float -> bool

val stage_name : stage -> string

(** [run ~tolerance ~fast_budget ~deep_budget ~spec topo paths ~peak
    envelope] executes the pipeline. [tolerance] is in normalized
    degradation units (fractions of the average LAG capacity, §8.1). *)
val run :
  ?spec:Bilevel.spec ->
  ?tolerance:float ->
  ?fast_budget:float ->
  ?deep_budget:float ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  peak:Traffic.Demand.t ->
  Traffic.Envelope.t ->
  verdict
