type stage = Fast_fixed_demand | Deep_variable_demand

type verdict = {
  alert : bool;
  stage : stage option;
  fast : Analysis.report;
  deep : Analysis.report option;
}

let stage_name = function
  | Fast_fixed_demand -> "fast"
  | Deep_variable_demand -> "deep"

let exceeds report ~tolerance =
  match report.Analysis.status with
  | Milp.Solver.Optimal | Milp.Solver.Feasible -> report.Analysis.normalized > tolerance
  | _ -> false

let run ?(spec = Bilevel.default_spec) ?(tolerance = 0.1) ?(fast_budget = 60.)
    ?(deep_budget = 360.) topo paths ~peak envelope =
  let fast_options =
    { Analysis.default_options with spec; time_limit = fast_budget }
  in
  let fast = Analysis.analyze ~options:fast_options topo paths (Traffic.Envelope.fixed peak) in
  if exceeds fast ~tolerance then
    { alert = true; stage = Some Fast_fixed_demand; fast; deep = None }
  else begin
    let deep_options =
      { Analysis.default_options with spec; time_limit = deep_budget }
    in
    let deep = Analysis.analyze ~options:deep_options topo paths envelope in
    if exceeds deep ~tolerance then
      { alert = true; stage = Some Deep_variable_demand; fast; deep = Some deep }
    else { alert = false; stage = None; fast; deep = Some deep }
  end
