(** The clustering scheme of §6 (Algorithm 1).

    Solving jointly for demands and failures on a large topology is slow;
    Algorithm 1 approximates the worst-case demand matrix block by block:
    nodes are partitioned into clusters, and for every (source cluster,
    destination cluster) pair the demands of that block are freed while
    all other demands stay fixed at the values found so far (initially
    zero). Every block solve still sees the full topology, all paths and
    all failure scenarios. A final solve with the assembled fixed demand
    matrix produces the failure scenario.

    Clustering trades optimality for runtime (§8.5: ~69% faster at ~15%
    lower degradation in the paper's setup). *)

(** [partition topo ~clusters] assigns each node a cluster id in
    [0, clusters), by BFS growth from spread-out seeds (balanced,
    connectivity-aware). *)
val partition : Wan.Topology.t -> clusters:int -> int array

type result = {
  report : Analysis.report;  (** final full solve at the fixed demand *)
  demand : Traffic.Demand.t;  (** the assembled demand matrix *)
  block_solves : int;
  total_elapsed : float;
  wave_budgets : float list;
      (** per-solve time budget assigned to each wave (source clusters
          in order, then the final solve) — exposes the deterministic
          redistribution of unused budget for tests and reports *)
}

(** Per-solve budget for the next wave: [remaining] seconds spread
    evenly over [solves_left] upcoming solves ([infinity] passes
    through). {!analyze} re-evaluates this at every wave boundary, so
    budget unused by fast early blocks flows to the remaining ones in
    wave order (exposed for unit tests). *)
val wave_budget : remaining:float -> solves_left:int -> float

(** [analyze ~options ~clusters topo paths envelope] runs Algorithm 1.
    [options.time_limit] is split across solver invocations: each wave's
    solves get an even share of the budget still unspent when the wave
    starts ({!wave_budget}), so hard late blocks inherit what fast early
    blocks did not use. [clusters = 1] degenerates to a single
    free-demand solve followed by a fixed-demand solve.

    The (source, destination) blocks of one source cluster are
    independent — they free disjoint demand sets and read the pre-wave
    matrix — and solve concurrently on the pool ([?pool], or one
    created per call when [options.domains > 1]); their demands are
    adopted in destination order, so the assembled matrix does not
    depend on the execution schedule. The final fixed-demand solve runs
    the parallel branch-and-bound on the same pool. *)
val analyze :
  ?pool:Parallel.Pool.t ->
  ?options:Analysis.options ->
  clusters:int ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Envelope.t ->
  result
