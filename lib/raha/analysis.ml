type options = {
  spec : Bilevel.spec;
  time_limit : float;
  max_nodes : int;
  rel_gap : float;
  log : bool;
  seed_enumeration : int option;
  domains : int;
  presolve : bool;
  dense_simplex : bool;
  certify : bool;
  cuts : Milp.Cuts.options;
  batch : bool;
  sx_iters : int option;
  bb_width : int;
  bb_grain : int;
  branching : Milp.Branch_bound.branching;
  heuristics : bool;
  rins_freq : int;
}

let default_options =
  {
    spec = Bilevel.default_spec;
    time_limit = Float.infinity;
    max_nodes = 500_000;
    rel_gap = 1e-4;
    log = false;
    seed_enumeration = None;
    domains = 1;
    presolve = true;
    dense_simplex = false;
    certify = true;
    cuts = Milp.Cuts.default;
    batch = true;
    sx_iters = None;
    bb_width = Milp.Solver.default_options.Milp.Solver.bb_width;
    bb_grain = Milp.Solver.default_options.Milp.Solver.bb_grain;
    branching = Milp.Solver.default_options.Milp.Solver.branching;
    heuristics = Milp.Solver.default_options.Milp.Solver.heuristics;
    rins_freq = Milp.Solver.default_options.Milp.Solver.rins_freq;
  }

let with_timeout t = { default_options with time_limit = t }

type report = {
  status : Milp.Solver.status;
  degradation : float;
  normalized : float;
  bound : float;
  scenario : Failure.Scenario.t;
  scenario_prob : float;
  num_failed_links : int;
  worst_demand : Traffic.Demand.t;
  healthy_performance : float;
  failed_performance : float;
  per_pair : ((int * int) * float * float) list;
  certificate : Milp.Certify.t option;
  elapsed : float;
  nodes : int;
}

(* Candidate (scenario, demand) seeds: the empty scenario, each single
   whole-LAG failure, and the greedy most-probable multi-failure scenario
   — filtered by the spec's constraints and ranked by simulated impact.
   Each becomes a plunge hint (a warm start for the MILP search). *)
(* Evaluate [f] over the array on [domains] domains; order-preserving,
   so downstream ranking is identical whatever the parallelism. A
   caller-supplied pool (one per [analyze], shared with the MILP core)
   is used directly; otherwise a transient pool serves this one sweep. *)
let par_map ?pool ~domains f arr =
  match pool with
  | Some pool when Array.length arr >= 2 -> Parallel.Pool.map_array pool f arr
  | Some _ | None ->
    if domains <= 1 || Array.length arr < 2 || Parallel.Pool.inside_task () then
      Array.map f arr
    else
      Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters ~domains (fun pool ->
          Parallel.Pool.map_array pool f arr)

(* The demand the candidate screening sweeps route: the envelope corner
   matching the spec's goal. *)
let screening_demand spec envelope =
  let pairs = Traffic.Envelope.pairs envelope in
  let corner volume =
    Traffic.Demand.of_list
      (List.map (fun (s, d) -> ((s, d), volume envelope ~src:s ~dst:d)) pairs)
  in
  match spec.Bilevel.goal with
  | Bilevel.Max_degradation -> corner Traffic.Envelope.hi_volume
  | Bilevel.Min_failed_performance -> corner Traffic.Envelope.lo_volume

let screening_engine ~spec topo paths envelope =
  Te.Simulate.prepare ~objective:spec.Bilevel.objective topo paths
    (screening_demand spec envelope)

let seed_candidates ?screen ?pool spec topo paths envelope ~limit ~domains ~batch =
  let admissible s =
    (match spec.Bilevel.threshold with
    | Some t -> Failure.Scenario.prob topo s >= t
    | None -> true)
    && (match spec.Bilevel.max_failures with
       | Some k -> Failure.Scenario.num_failed s <= k
       | None -> true)
    && ((not spec.Bilevel.connected_enforced)
       || List.for_all
            (fun (p : Netpath.Path_set.pair) ->
              List.exists
                (fun path ->
                  not (Failure.Scenario.path_down topo s (Netpath.Path.lag_list path)))
                (Netpath.Path_set.all_paths p))
            paths)
  in
  let whole_lag e =
    let lag = Wan.Topology.lag topo e in
    Failure.Scenario.of_links topo
      (List.init (Wan.Lag.num_links lag) (fun i -> (e, i)))
  in
  let candidates =
    Failure.Scenario.empty
    :: List.init (Wan.Topology.num_lags topo) whole_lag
    @ (match spec.Bilevel.threshold with
      | Some t -> [ snd (Failure.Probability.max_simultaneous_failures topo ~threshold:t) ]
      | None -> [])
  in
  let candidates = List.filter admissible candidates in
  let demand_for = screening_demand spec envelope in
  (* one engine for the whole candidate sweep: prepare + healthy solve
     once, then a warm overlay (or full rebuild, when batch is off) per
     candidate. A caller holding a persistent engine for this
     (spec, topo, paths, envelope) — the always-on service — passes it
     as [?screen] and skips the prepare entirely. *)
  let eng =
    match screen with
    | Some _ -> screen
    | None -> screening_engine ~spec topo paths envelope
  in
  let rebuild = not batch in
  let score s =
    match eng with
    | None -> neg_infinity (* healthy network cannot route the demand *)
    | Some eng -> (
      match spec.Bilevel.goal with
      | Bilevel.Max_degradation -> (
        match Te.Simulate.degradation_prepared ~rebuild eng s with
        | Some d -> d
        | None -> neg_infinity)
      | Bilevel.Min_failed_performance -> (
        match Te.Simulate.route_prepared ~rebuild eng s with
        | Some r -> (
          match spec.Bilevel.objective with
          | Te.Formulation.Mlu _ -> r.Te.Simulate.performance
          | Te.Formulation.Total_flow | Te.Formulation.Max_min _ ->
            -.r.Te.Simulate.performance)
        | None -> neg_infinity))
  in
  let scored =
    (* one independent scenario solve per candidate: the sweep the pool
       parallelizes; scores come back in candidate order *)
    let arr = Array.of_list candidates in
    Array.to_list (par_map ?pool ~domains (fun s -> (score s, s)) arr)
    |> List.filter (fun (sc, _) -> sc > neg_infinity)
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  List.map (fun (_, s) -> (s, demand_for)) (take limit scored)

let analyze_with ?screen ?(extra_cuts = []) ?pool ~options topo paths envelope =
  let built = Bilevel.build options.spec topo paths envelope in
  (* Caller-supplied valid inequalities (e.g. cuts persisted from a
     previous solve of the same structure; see Milp.Cuts.structural)
     join the model as ordinary rows before presolve. Their ids must
     speak this build's variable indexing — Bilevel.build is
     deterministic, so two builds over equal inputs agree. *)
  List.iteri
    (fun i (c : Milp.Cuts.structural) ->
      Milp.Model.add_cons built.Bilevel.model
        ~name:(Printf.sprintf "persist_%s_cut%d" (Milp.Cuts.family_name c.Milp.Cuts.s_family) i)
        (Milp.Linexpr.of_terms c.Milp.Cuts.s_terms)
        Milp.Model.Le c.Milp.Cuts.s_rhs)
    extra_cuts;
  let hints =
    match options.seed_enumeration with
    | Some 0 -> []
    | limit ->
      let limit = Option.value limit ~default:6 in
      seed_candidates ?screen ?pool options.spec topo paths envelope ~limit
        ~domains:options.domains ~batch:options.batch
      |> List.map (fun (s, d) -> Bilevel.hint built ~scenario:s ~demand:d)
  in
  let solver_options =
    {
      Milp.Solver.default_options with
      time_limit = options.time_limit;
      max_nodes = options.max_nodes;
      rel_gap = options.rel_gap;
      log = options.log;
      branch_priority = built.Bilevel.branch_priority;
      plunge_hints = hints;
      presolve = options.presolve;
      dense_simplex = options.dense_simplex;
      certify = options.certify;
      cuts = options.cuts;
      sx_iters = options.sx_iters;
      pool;
      bb_width = options.bb_width;
      bb_grain = options.bb_grain;
      branching = options.branching;
      heuristics = options.heuristics;
      rins_freq = options.rins_freq;
    }
  in
  let sol = Milp.Solver.solve ~options:solver_options built.Bilevel.model in
  let have_point = Milp.Solver.has_point sol in
  let scenario =
    if have_point then Failure_model.scenario_of_solution built.Bilevel.fm sol
    else Failure.Scenario.empty
  in
  let worst_demand =
    if have_point then Bilevel.demand_of_solution built sol else Traffic.Demand.empty
  in
  let evale e = if have_point then Milp.Linexpr.eval sol.Milp.Solver.values e else nan in
  (* For Max_min the optimizer maximizes the binned-surrogate gap
     (Appendix A) but the performance reported to operators is the total
     flow the networks carry, read off the primal flow columns. *)
  let flow_perf (inner : Inner.t) index =
    if not have_point then nan
    else begin
      let xs =
        Array.map (fun (v : Milp.Model.var) -> sol.Milp.Solver.values.(v.Milp.Model.vid))
          inner.Inner.xs
      in
      Te.Formulation.total_flow index xs
    end
  in
  let healthy_performance, failed_performance =
    match options.spec.Bilevel.objective with
    | Te.Formulation.Max_min _ ->
      ( flow_perf built.Bilevel.healthy built.Bilevel.healthy_index,
        flow_perf built.Bilevel.failed built.Bilevel.failed_index )
    | Te.Formulation.Mlu _ | Te.Formulation.Total_flow ->
      ( evale built.Bilevel.healthy.Inner.objective,
        evale built.Bilevel.failed.Inner.objective )
  in
  let degradation =
    if not have_point then nan
    else
      match options.spec.Bilevel.objective with
      | Te.Formulation.Max_min _ -> healthy_performance -. failed_performance
      | Te.Formulation.Mlu _ | Te.Formulation.Total_flow ->
        evale built.Bilevel.degradation
  in
  (* per-pair healthy/failed flows at the worst-case demand: from the
     embedded primal columns when present, otherwise (fixed-demand fast
     path) by replaying the healthy network in the simulator *)
  let per_pair =
    if not have_point then []
    else begin
      let failed_flows =
        Array.map
          (fun (v : Milp.Model.var) -> sol.Milp.Solver.values.(v.Milp.Model.vid))
          built.Bilevel.failed.Inner.xs
      in
      let healthy_flow_of =
        if Array.length built.Bilevel.healthy.Inner.xs > 0 then begin
          let xs =
            Array.map
              (fun (v : Milp.Model.var) -> sol.Milp.Solver.values.(v.Milp.Model.vid))
              built.Bilevel.healthy.Inner.xs
          in
          fun k -> Te.Formulation.pair_flow built.Bilevel.healthy_index k xs
        end
        else begin
          match
            Te.Simulate.healthy ~objective:options.spec.Bilevel.objective topo paths
              worst_demand
          with
          | Some h ->
            fun k -> Te.Formulation.pair_flow h.Te.Simulate.index k h.Te.Simulate.flows
          | None -> fun _ -> nan
        end
      in
      Array.to_list
        (Array.mapi
           (fun k (pc : Te.Formulation.pair_cols) ->
             ( (pc.Te.Formulation.src, pc.Te.Formulation.dst),
               healthy_flow_of k,
               Te.Formulation.pair_flow built.Bilevel.failed_index k failed_flows ))
           built.Bilevel.failed_index.Te.Formulation.pair_arr)
    end
  in
  let avg_cap = Float.max 1e-9 (Wan.Topology.avg_lag_capacity topo) in
  {
    status = sol.Milp.Solver.status;
    degradation;
    normalized = degradation /. avg_cap;
    bound = sol.Milp.Solver.bound;
    scenario;
    scenario_prob =
      (if have_point then Failure.Scenario.prob topo scenario else nan);
    num_failed_links = Failure.Scenario.num_failed scenario;
    worst_demand;
    healthy_performance;
    failed_performance;
    per_pair;
    certificate = sol.Milp.Solver.certificate;
    elapsed = sol.Milp.Solver.elapsed;
    nodes = sol.Milp.Solver.nodes;
  }

(* One pool per analysis, shared by the candidate-screening sweep and
   the branch-and-bound subtree rounds. A caller-held pool ([?pool]) is
   borrowed instead; inside a pool task no pool is created at all — the
   nested levels run their exact sequential paths, so results are
   identical either way. *)
let analyze ?screen ?extra_cuts ?pool ?(options = default_options) topo paths
    envelope =
  match pool with
  | None when options.domains > 1 && not (Parallel.Pool.inside_task ()) ->
    Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters
      ~domains:options.domains (fun pool ->
        analyze_with ?screen ?extra_cuts ~pool ~options topo paths envelope)
  | None -> analyze_with ?screen ?extra_cuts ~options topo paths envelope
  | Some pool -> analyze_with ?screen ?extra_cuts ~pool ~options topo paths envelope

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>status: %a@,degradation: %.4g (normalized %.4g, bound %.4g)@,\
     healthy: %.4g  failed: %.4g@,scenario: %a (%d links, p = %.3g)@,\
     elapsed: %.2fs over %d nodes@]"
    Milp.Solver.pp_status r.status r.degradation r.normalized r.bound
    r.healthy_performance r.failed_performance Failure.Scenario.pp r.scenario
    r.num_failed_links r.scenario_prob r.elapsed r.nodes

let pp_explanation topo ppf r =
  Format.fprintf ppf "@[<v>";
  (match Failure.Scenario.links r.scenario with
  | [] -> Format.fprintf ppf "no failure needed: the network is not at risk@,"
  | links ->
    Format.fprintf ppf "failure scenario (probability %.3g):@," r.scenario_prob;
    List.iter
      (fun (e, i) ->
        let lag = Wan.Topology.lag topo e in
        Format.fprintf ppf "  link %d of LAG %s-%s goes down%s@," i
          (Wan.Topology.node_name topo lag.Wan.Lag.src)
          (Wan.Topology.node_name topo lag.Wan.Lag.dst)
          (if Failure.Scenario.lag_down topo r.scenario e then " (LAG fully down)"
           else ""))
      links);
  Format.fprintf ppf "impact at the worst-case demand:@,";
  List.iter
    (fun ((src, dst), h, f) ->
      if h -. f > 1e-6 then
        Format.fprintf ppf "  %s -> %s: carries %.4g of %.4g (loses %.4g)@,"
          (Wan.Topology.node_name topo src)
          (Wan.Topology.node_name topo dst)
          f h (h -. f))
    r.per_pair;
  Format.fprintf ppf
    "total: healthy %.4g, failed %.4g — degradation %.4g (%.3g LAG capacities)@]"
    r.healthy_performance r.failed_performance r.degradation r.normalized
