let partition topo ~clusters =
  let n = Wan.Topology.num_nodes topo in
  if clusters < 1 then invalid_arg "Cluster.partition: clusters < 1";
  let k = min clusters n in
  let assign = Array.make n (-1) in
  (* seeds: spread by repeated farthest-first traversal on hop distance *)
  let bfs_dist src =
    let dist = Array.make n max_int in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (w, _) ->
          if dist.(w) = max_int then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end)
        (Wan.Topology.neighbors topo v)
    done;
    dist
  in
  let seeds = ref [ 0 ] in
  while List.length !seeds < k do
    (* farthest node from all current seeds *)
    let dists = List.map bfs_dist !seeds in
    let best = ref (-1) and bestd = ref (-1) in
    for v = 0 to n - 1 do
      let d =
        List.fold_left (fun acc dist -> min acc (if dist.(v) = max_int then 0 else dist.(v))) max_int dists
      in
      if d > !bestd && not (List.mem v !seeds) then begin
        best := v;
        bestd := d
      end
    done;
    seeds := !best :: !seeds
  done;
  (* multi-source BFS growth: each seed claims nodes in rounds *)
  let q = Queue.create () in
  List.iteri
    (fun c s ->
      assign.(s) <- c;
      Queue.add s q)
    (List.rev !seeds);
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (w, _) ->
        if assign.(w) = -1 then begin
          assign.(w) <- assign.(v);
          Queue.add w q
        end)
      (Wan.Topology.neighbors topo v)
  done;
  (* isolated leftovers (disconnected graphs): cluster 0 *)
  Array.iteri (fun v c -> if c = -1 then assign.(v) <- 0) assign;
  assign

type result = {
  report : Analysis.report;
  demand : Traffic.Demand.t;
  block_solves : int;
  total_elapsed : float;
  wave_budgets : float list;
}

(* Per-solve time budget for the next wave: the unspent remainder of the
   total limit spread evenly over the solves still to come. Fast early
   blocks therefore hand their unused budget to the hard later ones —
   deterministically, because waves are budgeted in a fixed order and
   every solve of a wave gets the same figure. *)
let wave_budget ~remaining ~solves_left =
  if remaining = Float.infinity then Float.infinity
  else Float.max 0. (remaining /. float_of_int (max 1 solves_left))

let analyze ?pool ?(options = Analysis.default_options) ~clusters topo paths
    envelope =
  let assign = partition topo ~clusters in
  let k = Array.fold_left max 0 assign + 1 in
  let pairs = Traffic.Envelope.pairs envelope in
  let in_block ci cj (s, d) = assign.(s) = ci && assign.(d) = cj in
  (* destination clusters that actually hold pairs, per source wave *)
  let wave_blocks ci =
    List.filter
      (fun cj -> List.exists (in_block ci cj) pairs)
      (List.init k Fun.id)
  in
  let n_solves =
    List.fold_left (fun acc ci -> acc + List.length (wave_blocks ci)) 1
      (List.init k Fun.id)
  in
  let remaining = ref options.Analysis.time_limit in
  let solves_left = ref n_solves in
  (* demands found so far; start from zero (Algorithm 1 line 3) *)
  let current = ref (Traffic.Demand.of_list (List.map (fun p -> (p, 0.)) pairs)) in
  let solves = ref 0 and elapsed = ref 0. in
  let budgets = ref [] in
  let run pool =
    (* One wave per source cluster: its (ci, _) blocks free disjoint
       demand sets and all read the pre-wave matrix, so they solve
       concurrently on the pool (each block solve runs its inner
       machinery sequentially — it is inside a task) and their demands
       are adopted in destination order. The assembled matrix is
       independent of the execution schedule. *)
    for ci = 0 to k - 1 do
      match wave_blocks ci with
      | [] -> ()
      | bs ->
        let budget = wave_budget ~remaining:!remaining ~solves_left:!solves_left in
        budgets := budget :: !budgets;
        let options = { options with Analysis.time_limit = budget } in
        let base = !current in
        let solve_block cj =
          (* free the block's demands, fix the rest at pre-wave values *)
          let env' =
            {
              Traffic.Envelope.lo =
                Traffic.Demand.map
                  (fun ~src ~dst v ->
                    if in_block ci cj (src, dst) then
                      Traffic.Envelope.lo_volume envelope ~src ~dst
                    else v)
                  base;
              hi =
                Traffic.Demand.map
                  (fun ~src ~dst v ->
                    if in_block ci cj (src, dst) then
                      Traffic.Envelope.hi_volume envelope ~src ~dst
                    else v)
                  base;
            }
          in
          Analysis.analyze ~options topo paths env'
        in
        let blocks = Array.of_list bs in
        let results =
          match pool with
          | Some pool -> Parallel.Pool.map_array pool solve_block blocks
          | None -> Array.map solve_block blocks
        in
        let wave_elapsed = ref 0. in
        Array.iteri
          (fun i (r : Analysis.report) ->
            let cj = blocks.(i) in
            incr solves;
            wave_elapsed := !wave_elapsed +. r.Analysis.elapsed;
            if
              r.Analysis.status = Milp.Solver.Optimal
              || r.Analysis.status = Milp.Solver.Feasible
            then
              (* adopt the block's demands (Algorithm 1 line 11) *)
              List.iter
                (fun (s, d) ->
                  if in_block ci cj (s, d) then
                    current :=
                      Traffic.Demand.set !current ~src:s ~dst:d
                        (Traffic.Demand.volume r.Analysis.worst_demand ~src:s
                           ~dst:d))
                pairs)
          results;
        elapsed := !elapsed +. !wave_elapsed;
        solves_left := !solves_left - Array.length blocks;
        if !remaining <> Float.infinity then
          remaining := Float.max 0. (!remaining -. !wave_elapsed)
    done;
    (* final fixed-demand solve for the failure scenario, on the whole
       pool (its branch-and-bound runs the parallel subtree rounds) and
       the whole unspent budget *)
    let budget = wave_budget ~remaining:!remaining ~solves_left:!solves_left in
    budgets := budget :: !budgets;
    let options = { options with Analysis.time_limit = budget } in
    let report =
      Analysis.analyze ?pool ~options topo paths (Traffic.Envelope.fixed !current)
    in
    incr solves;
    elapsed := !elapsed +. report.Analysis.elapsed;
    {
      report;
      demand = !current;
      block_solves = !solves;
      total_elapsed = !elapsed;
      wave_budgets = List.rev !budgets;
    }
  in
  match pool with
  | Some _ -> run pool
  | None ->
    if options.Analysis.domains > 1 && not (Parallel.Pool.inside_task ()) then
      Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters
        ~domains:options.Analysis.domains (fun pool -> run (Some pool))
    else run None
