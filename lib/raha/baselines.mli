(** The baselines Raha is evaluated against (§8.1 "Benchmark", Fig. 3).

    - {!k_failures}: tools that bound the number of simultaneous failures
      (FFC-style, k typically <= 2) — Raha's own engine with a
      [max_failures] cap and no probability constraint;
    - {!worst_failures_at_demand}: tools that minimize the {e failed}
      network's performance at a fixed demand (QARC / Robust style),
      ignoring the design point. The report's [degradation] field is the
      implied degradation: healthy performance at the same demand minus
      the failed performance — the quantity Fig. 3 plots. *)

(** Result of {!enumerate_failures}: the worst simulated degradation
    over every scenario with at most [k] failed links. *)
type enumeration = {
  worst : float;
  worst_scenario : Failure.Scenario.t;
  scenarios_evaluated : int;
  elapsed : float;
}

(** [enumerate_failures ~k topo paths demand] is the brute-force variant
    of the "up to k failures" baseline: enumerate
    {!Failure.Enumerate.up_to_k} and route every scenario with
    {!Te.Simulate} at the fixed [demand], in parallel over [domains]
    OCaml domains (or on [pool], which takes precedence). The result is
    identical for any parallelism (ties break toward the first scenario
    in enumeration order).

    Scenarios go through the batched engine ({!Te.Simulate.prepare}):
    one prepare, one healthy solve, rhs overlays warm-started from the
    healthy basis. [batch = false] rebuilds the per-scenario structure
    instead ([--no-batch]); results are bit-identical either way.
    @raise Invalid_argument when the scenario count explodes (see
    {!Failure.Enumerate.up_to_k}). *)
val enumerate_failures :
  ?objective:Te.Formulation.objective ->
  ?domains:int ->
  ?pool:Parallel.Pool.t ->
  ?batch:bool ->
  k:int ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  enumeration

(** [k_failures ~options ~k topo paths envelope]. *)
val k_failures :
  ?options:Analysis.options ->
  k:int ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Envelope.t ->
  Analysis.report

(** [worst_failures_at_demand ~options topo paths demand] fixes [demand],
    finds failures minimizing the failed network's performance
    (optionally within [threshold]/[max_failures] from [options.spec]),
    and rewrites [degradation]/[normalized] as the implied degradation. *)
val worst_failures_at_demand :
  ?options:Analysis.options ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  Analysis.report
