type enumeration = {
  worst : float;
  worst_scenario : Failure.Scenario.t;
  scenarios_evaluated : int;
  elapsed : float;
}

let enumerate_failures ?(objective = Te.Formulation.Total_flow) ?(domains = 1) ?pool
    ?(batch = true) ~k topo paths demand =
  let t0 = Unix.gettimeofday () in
  let scenarios = Array.of_list (Failure.Enumerate.up_to_k topo ~k) in
  (* One engine for the whole sweep: the healthy LP is solved exactly
     once (the pre-batch implementation re-solved it inside every
     [Simulate.degradation] call) and, on the batch path, so are the
     formulation, CSC structure and symbolic factorization. *)
  let eng = Te.Simulate.prepare ~objective topo paths demand in
  let rebuild = not batch in
  let eval s =
    match eng with
    | None -> neg_infinity (* healthy network cannot route the demand *)
    | Some eng -> (
      match Te.Simulate.degradation_prepared ~rebuild eng s with
      | Some d -> d
      | None -> neg_infinity (* infeasible routing (disconnected MLU pair) *))
  in
  let degs =
    match pool with
    | Some pool -> Parallel.Pool.map_array pool eval scenarios
    | None ->
      if domains <= 1 then Array.map eval scenarios
      else
        Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters ~domains
          (fun pool -> Parallel.Pool.map_array pool eval scenarios)
  in
  (* deterministic arg-max: first index attaining the maximum *)
  let worst_i = ref 0 in
  Array.iteri (fun i d -> if d > degs.(!worst_i) then worst_i := i) degs;
  {
    worst = degs.(!worst_i);
    worst_scenario = scenarios.(!worst_i);
    scenarios_evaluated = Array.length scenarios;
    elapsed = Unix.gettimeofday () -. t0;
  }

let k_failures ?(options = Analysis.default_options) ~k topo paths envelope =
  let spec =
    { options.Analysis.spec with Bilevel.max_failures = Some k; threshold = None }
  in
  Analysis.analyze ~options:{ options with Analysis.spec } topo paths envelope

let worst_failures_at_demand ?(options = Analysis.default_options) topo paths demand =
  let spec =
    { options.Analysis.spec with Bilevel.goal = Bilevel.Min_failed_performance }
  in
  let r =
    Analysis.analyze
      ~options:{ options with Analysis.spec }
      topo paths (Traffic.Envelope.fixed demand)
  in
  (* implied degradation relative to the design point at the same demand *)
  match Te.Simulate.healthy ~objective:spec.Bilevel.objective topo paths demand with
  | None -> r
  | Some h ->
    let healthy = h.Te.Simulate.performance in
    let degradation =
      match spec.Bilevel.objective with
      | Te.Formulation.Mlu _ -> r.Analysis.failed_performance -. healthy
      | Te.Formulation.Total_flow | Te.Formulation.Max_min _ ->
        healthy -. r.Analysis.failed_performance
    in
    let avg_cap = Float.max 1e-9 (Wan.Topology.avg_lag_capacity topo) in
    {
      r with
      Analysis.degradation;
      normalized = degradation /. avg_cap;
      healthy_performance = healthy;
    }
