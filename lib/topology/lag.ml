type link = { link_capacity : float; fail_prob : float }

type t = { lag_id : int; src : int; dst : int; links : link array }

let make ~id ~src ~dst links =
  if src = dst then invalid_arg "Lag.make: self-loop";
  if src < 0 || dst < 0 then invalid_arg "Lag.make: negative node id";
  if links = [] then invalid_arg "Lag.make: empty link bundle";
  List.iter
    (fun l ->
      if l.link_capacity <= 0. then invalid_arg "Lag.make: non-positive capacity";
      if l.fail_prob < 0. || l.fail_prob > 1. then
        invalid_arg "Lag.make: fail_prob outside [0, 1]")
    links;
  { lag_id = id; src; dst; links = Array.of_list links }

let uniform ~id ~src ~dst ~n ~capacity ~fail_prob =
  if n <= 0 then invalid_arg "Lag.uniform: n <= 0";
  make ~id ~src ~dst
    (List.init n (fun _ -> { link_capacity = capacity; fail_prob }))

let capacity t = Array.fold_left (fun acc l -> acc +. l.link_capacity) 0. t.links

let num_links t = Array.length t.links

let capacity_with_failures t down =
  if Array.length down <> Array.length t.links then
    invalid_arg "Lag.capacity_with_failures: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i l -> if not down.(i) then acc := !acc +. l.link_capacity) t.links;
  !acc

let other_end t node =
  if node = t.src then t.dst
  else if node = t.dst then t.src
  else invalid_arg "Lag.other_end: node not an endpoint"

let prob_all_links_down t =
  Array.fold_left (fun acc l -> acc *. l.fail_prob) 1. t.links

let pp ppf t =
  Format.fprintf ppf "lag%d(%d-%d, %d links, cap %g)" t.lag_id t.src t.dst
    (num_links t) (capacity t)
