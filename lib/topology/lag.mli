(** Link aggregation groups (LAGs).

    A WAN edge is a LAG: a bundle of physical links, each with its own
    capacity and failure probability (§4.2 of the paper). A LAG's capacity
    is the sum of its live links' capacities; a LAG is {e down} only when
    every constituent link is down (Eq. 3). *)

type link = {
  link_capacity : float;  (** Gbps (or any consistent unit) *)
  fail_prob : float;
      (** steady-state probability the link is down; [1.] models an
          always-down link (e.g. a renewal-reward estimate over a
          telemetry window the link spent entirely down) *)
}

type t = {
  lag_id : int;  (** dense id within the owning topology *)
  src : int;
  dst : int;  (** endpoint node ids; LAGs are undirected *)
  links : link array;
}

(** [make ~id ~src ~dst links] validates and builds a LAG.
    @raise Invalid_argument on self-loops, empty bundles, non-positive
    capacities or probabilities outside [0, 1]. *)
val make : id:int -> src:int -> dst:int -> link list -> t

(** [uniform ~id ~src ~dst ~n ~capacity ~fail_prob] builds a LAG of [n]
    identical links. *)
val uniform :
  id:int -> src:int -> dst:int -> n:int -> capacity:float -> fail_prob:float -> t

(** Total capacity with all links up. *)
val capacity : t -> float

val num_links : t -> int

(** [capacity_with_failures lag down] is the live capacity when
    [down.(i)] marks link [i] failed. *)
val capacity_with_failures : t -> bool array -> float

(** [other_end lag node] is the endpoint that is not [node].
    @raise Invalid_argument if [node] is not an endpoint. *)
val other_end : t -> int -> int

(** Probability that every link in the LAG is simultaneously down
    (independent links). *)
val prob_all_links_down : t -> float

val pp : Format.formatter -> t -> unit
