type event = { down_at : float; up_at : float }

let validate events =
  let rec check prev_up = function
    | [] -> ()
    | e :: rest ->
      if e.down_at < prev_up then invalid_arg "Renewal: overlapping or unordered events";
      if e.up_at <= e.down_at then invalid_arg "Renewal: non-positive outage duration";
      check e.up_at rest
  in
  check Float.neg_infinity events

let estimate ~horizon events =
  if horizon <= 0. then invalid_arg "Renewal.estimate: non-positive horizon";
  validate events;
  let downtime =
    List.fold_left
      (fun acc e ->
        let d = Float.min e.up_at horizon -. Float.min e.down_at horizon in
        acc +. Float.max 0. d)
      0. events
  in
  Float.min 1. (downtime /. horizon)

let estimate_ratio events =
  validate events;
  match events with
  | [] | [ _ ] -> invalid_arg "Renewal.estimate_ratio: need at least two events"
  | first :: _ ->
    (* cycles run repair to repair: X_i = up_{i+1} - up_i, R_i = downtime
       of outage i+1 *)
    let rec cycles prev acc_x acc_r n = function
      | [] -> (acc_x, acc_r, n)
      | e :: rest ->
        cycles e (acc_x +. (e.up_at -. prev.up_at)) (acc_r +. (e.up_at -. e.down_at)) (n + 1) rest
    in
    let x, r, n = cycles first 0. 0. 0 (List.tl events) in
    if n = 0 || x <= 0. then invalid_arg "Renewal.estimate_ratio: degenerate trace"
    else r /. x

let mtbf events =
  validate events;
  match events with
  | [] | [ _ ] -> invalid_arg "Renewal.mtbf: need at least two events"
  | first :: rest ->
    let last = List.fold_left (fun _ e -> e) first rest in
    (last.down_at -. first.down_at) /. float_of_int (List.length rest)

let mttr events =
  validate events;
  if events = [] then invalid_arg "Renewal.mttr: empty trace";
  List.fold_left (fun acc e -> acc +. (e.up_at -. e.down_at)) 0. events
  /. float_of_int (List.length events)

(* Incremental estimator: the running-sum form of the batch functions
   above. Each closed outage is folded once, in chronological order, with
   the same floating-point operations the batch folds perform, so every
   reading is bit-identical to the batch function applied to the folded
   prefix (the test suite checks this on every prefix of generated
   traces). An open outage (link currently down, repair pending) is
   carried separately and clipped at the estimation horizon. *)
module Incr = struct
  type t = {
    n : int;  (* closed outages folded *)
    down_sum : float;  (* sum of closed-outage downtimes, fold order *)
    tail_down_sum : float;  (* same sum excluding the first outage *)
    cycle_sum : float;  (* last_up - first_up accumulated per event *)
    first_down : float;
    first_up : float;
    last_down : float;
    last_up : float;
    open_at : float option;  (* down_at of the open outage, if any *)
  }

  let empty =
    {
      n = 0;
      down_sum = 0.;
      tail_down_sum = 0.;
      cycle_sum = 0.;
      first_down = nan;
      first_up = nan;
      last_down = nan;
      last_up = Float.neg_infinity;
      open_at = None;
    }

  let count t = t.n
  let is_down t = t.open_at <> None

  let down t ~at =
    if t.open_at <> None then invalid_arg "Renewal.Incr.down: link already down";
    if at < t.last_up then invalid_arg "Renewal.Incr.down: out-of-order event";
    { t with open_at = Some at }

  let up t ~at =
    match t.open_at with
    | None -> invalid_arg "Renewal.Incr.up: link is not down"
    | Some down_at ->
      if at <= down_at then invalid_arg "Renewal.Incr.up: non-positive outage";
      let d = at -. down_at in
      if t.n = 0 then
        {
          n = 1;
          down_sum = 0. +. d;
          tail_down_sum = 0.;
          cycle_sum = 0.;
          first_down = down_at;
          first_up = at;
          last_down = down_at;
          last_up = at;
          open_at = None;
        }
      else
        {
          t with
          n = t.n + 1;
          down_sum = t.down_sum +. d;
          (* the batch estimate_ratio fold accumulates (up - prev_up) and
             the tail downtimes in repair-to-repair order *)
          tail_down_sum = t.tail_down_sum +. d;
          cycle_sum = t.cycle_sum +. (at -. t.last_up);
          last_down = down_at;
          last_up = at;
          open_at = None;
        }

  let add t (e : event) = up (down t ~at:e.down_at) ~at:e.up_at

  let of_events events = List.fold_left add empty events

  let estimate ~horizon t =
    if horizon <= 0. then invalid_arg "Renewal.Incr.estimate: non-positive horizon";
    if t.n > 0 && horizon < t.last_up then
      invalid_arg "Renewal.Incr.estimate: horizon precedes folded events";
    let downtime =
      match t.open_at with
      | None -> t.down_sum
      | Some down_at ->
        (* matches the batch fold on events @ [open outage clipped at the
           horizon]: min up h -. min down h = max 0 (h -. down) here, so
           an outage opening past the horizon contributes nothing *)
        t.down_sum +. Float.max 0. (horizon -. down_at)
    in
    Float.min 1. (downtime /. horizon)

  let estimate_ratio t =
    if t.n < 2 || t.cycle_sum <= 0. then
      invalid_arg "Renewal.Incr.estimate_ratio: degenerate trace";
    t.tail_down_sum /. t.cycle_sum

  let mtbf t =
    if t.n < 2 then invalid_arg "Renewal.Incr.mtbf: need at least two events";
    (t.last_down -. t.first_down) /. float_of_int (t.n - 1)

  let mttr t =
    if t.n = 0 then invalid_arg "Renewal.Incr.mttr: empty trace";
    t.down_sum /. float_of_int t.n
end
