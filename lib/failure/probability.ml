let log_prob_all_up topo = Scenario.log_prob topo Scenario.empty

let per_link_cost topo =
  let entries = ref [] in
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          let p = l.Wan.Lag.fail_prob in
          let cost =
            (* p >= 1 would make [log1p (-p)] equal -inf and the cost
               +inf -. -inf = nan through the subtraction below; an
               always-down link is special-cased to +inf (failing it is
               mandatory, not merely free) *)
            if p >= 1. then Float.infinity
            else if p > 0. then Float.log p -. Float.log1p (-.p)
            else Float.neg_infinity
          in
          entries := ((lag.Wan.Lag.lag_id, i), cost) :: !entries)
        lag.Wan.Lag.links)
    (Wan.Topology.lags topo);
  List.sort (fun (_, a) (_, b) -> compare b a) !entries

let max_simultaneous_failures topo ~threshold =
  if threshold <= 0. || threshold > 1. then
    invalid_arg "Probability.max_simultaneous_failures: threshold outside (0, 1]";
  let log_t = Float.log threshold in
  (* Always-down links (cost +inf) are mandatory: any scenario keeping
     one of them up has probability zero. They are failed unconditionally
     and the greedy base is that seed scenario's log probability — the
     all-up log probability is -inf whenever such links exist, which
     would otherwise poison the running sum. *)
  let mandatory, optional =
    List.partition (fun (_, c) -> c = Float.infinity) (per_link_cost topo)
  in
  let mandatory = List.map fst mandatory in
  let base = Scenario.log_prob topo (Scenario.of_links topo mandatory) in
  let rec greedy acc logp = function
    | [] -> (acc, logp)
    | (link, cost) :: rest ->
      let logp' = logp +. cost in
      if logp' >= log_t then greedy (link :: acc) logp' rest else (acc, logp)
  in
  let chosen, logp = greedy mandatory base optional in
  if logp >= log_t then (List.length chosen, Scenario.of_links topo chosen)
  else (0, Scenario.empty)
