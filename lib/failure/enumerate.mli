(** Exhaustive scenario enumeration.

    Serves two roles: (1) the "up to k failures" baseline tools Raha is
    compared against in every figure (§8.1 "Benchmark"); (2) an
    independent oracle used by the test suite to validate the MILP
    encodings on small instances. *)

(** [up_to_k topo ~k] lists every scenario with at most [k] failed links
    (including the empty scenario).
    @raise Invalid_argument if the count would exceed ~2 million. *)
val up_to_k : Wan.Topology.t -> k:int -> Scenario.t list

(** [above_threshold topo ~threshold] lists every scenario with
    probability >= threshold, by DFS over links ordered by failure cost
    with log-probability pruning.
    @raise Invalid_argument if more than [limit] (default 2_000_000)
    scenarios qualify. *)
val above_threshold : ?limit:int -> Wan.Topology.t -> threshold:float -> Scenario.t list

(** [lag_failures_up_to_k topo ~k] lists scenarios in which up to [k]
    whole LAGs fail (all their links down) — the granularity of prior
    work such as FFC (§2.2). *)
val lag_failures_up_to_k : Wan.Topology.t -> k:int -> Scenario.t list

(** Number of scenarios [up_to_k] would produce (no allocation). *)
val count_up_to_k : Wan.Topology.t -> k:int -> int

(** [binomial n k] is the exact binomial coefficient C(n, k) (0 when
    [k < 0] or [k > n]). Exposed for the counting identities the tests
    check [count_up_to_k] against. *)
val binomial : int -> int -> int
