(** Scenario-probability utilities.

    The probability-threshold constraint (§5.1) compares the log
    probability of a failure scenario against [log T]. These helpers
    answer questions like Figure 2's: how many links can simultaneously
    fail while the scenario probability stays above a threshold? *)

(** Log probability of the all-links-up scenario ([-inf] when some link
    has [fail_prob = 1]: such a link is never up). *)
val log_prob_all_up : Wan.Topology.t -> float

(** [max_simultaneous_failures topo ~threshold] is the largest number of
    links that can be simultaneously down in a scenario with probability
    >= threshold, with one maximizing scenario. Always-down links
    ([fail_prob = 1]) are failed unconditionally — every
    positive-probability scenario has them down; the remaining links are
    failed greedily in decreasing [log p - log (1 - p)] order, which is
    optimal for maximizing the count. Returns [0, empty scenario] when no
    greedily-reachable scenario meets the threshold. *)
val max_simultaneous_failures : Wan.Topology.t -> threshold:float -> int * Scenario.t

(** [per_link_cost topo] lists [((lag, link), log p - log (1-p))] — the
    log-probability cost of failing each link, sorted most-likely first.
    An always-down link ([fail_prob = 1]) has cost [+inf]: failing it is
    mandatory for the scenario to have positive probability at all. *)
val per_link_cost : Wan.Topology.t -> ((int * int) * float) list
