(** Renewal-reward estimation of link failure probabilities (Appendix B).

    The renewal process splits time at repair instants; the reward of a
    cycle is the downtime inside it. By the renewal reward theorem the
    long-run fraction of time the link is down — its failure probability
    — equals [E(R) / E(X)]. *)

type event = { down_at : float; up_at : float }
(** One outage: the link went down at [down_at] and was repaired at
    [up_at]. *)

(** [estimate ~horizon events] estimates the probability that the link is
    down: total downtime / observation horizon. Events must be
    chronological and non-overlapping; downtime past the horizon is
    clipped.
    @raise Invalid_argument on malformed traces. *)
val estimate : horizon:float -> event list -> float

(** [estimate_ratio events] uses the per-cycle renewal-reward form
    [mean downtime per cycle / mean cycle length], where cycles run
    repair-to-repair (needs >= 2 events). *)
val estimate_ratio : event list -> float

(** Mean time between failures of a trace (down_at deltas). *)
val mtbf : event list -> float

(** Mean time to repair. *)
val mttr : event list -> float

(** Incremental renewal-reward estimation for streaming telemetry.

    The batch functions above re-walk the whole event list per reading —
    O(events) per update, which a long-lived ingestion loop cannot
    afford. [Incr] folds one transition at a time into running cycle
    sums (O(1) per event) and is {e bit-identical} to the batch
    functions on every prefix: [Incr.estimate ~horizon (Incr.of_events
    es) = estimate ~horizon es] to the last float bit whenever [horizon]
    does not precede the folded events, and likewise for
    [estimate_ratio], [mtbf] and [mttr]. Unlike the batch API it also
    carries an {e open} outage (link currently down, repair pending),
    clipped at the estimation horizon exactly as {!estimate} clips
    events straddling its horizon. *)
module Incr : sig
  type t

  val empty : t

  (** Closed outages folded so far. *)
  val count : t -> int

  (** True when an open outage is pending ([down] seen, no [up] yet). *)
  val is_down : t -> bool

  (** [down t ~at] opens an outage.
      @raise Invalid_argument if the link is already down or [at]
      precedes the last repair. *)
  val down : t -> at:float -> t

  (** [up t ~at] closes the open outage.
      @raise Invalid_argument if no outage is open or [at] is not after
      its start. *)
  val up : t -> at:float -> t

  (** Fold one closed outage ([down] then [up]). *)
  val add : t -> event -> t

  val of_events : event list -> t

  (** Downtime fraction over [0, horizon], the open outage clipped at
      the horizon. Bit-identical to {!Renewal.estimate} on the folded
      events (plus the clipped open outage).
      @raise Invalid_argument when [horizon] is non-positive or precedes
      folded events. *)
  val estimate : horizon:float -> t -> float

  (** Per-cycle renewal-reward form; needs >= 2 closed outages. *)
  val estimate_ratio : t -> float

  val mtbf : t -> float
  val mttr : t -> float
end
