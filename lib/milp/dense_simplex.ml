(* Bounded-variable two-phase primal simplex on a dense tableau.

   Internal form: minimize c'x subject to A x = b with per-column bounds
   [l_j, u_j]. Rows of the user model become equalities by adding slack
   columns; artificial columns provide the initial basis for rows whose
   slack cannot absorb the initial residual. Nonbasic columns rest at a
   finite bound (or at 0 for free columns); the tableau stores B^-1 A and
   two reduced-cost rows (phase-1 and phase-2 objectives) that are updated
   on every pivot. Current values of all columns are tracked explicitly in
   [value] so that nonzero nonbasic bounds need no RHS translation. *)

type result =
  | Optimal of { obj : float; values : float array }
  | Infeasible
  | Unbounded
  | Iter_limit

type status = Basic | At_lower | At_upper | At_zero (* free, nonbasic at 0 *)

let eps_pivot = 1e-9
let eps_cost = 1e-9
let eps_feas = 1e-7

(* Pivots are counted into the shared domain-local counter so dense and
   revised solves aggregate identically under Parallel.Pool hooks. *)

type tab = {
  m : int; (* rows *)
  n : int; (* columns *)
  a : float array; (* m*n dense, row-major: B^-1 A *)
  c1 : float array; (* phase-1 reduced costs, length n *)
  c2 : float array; (* phase-2 reduced costs, length n *)
  lo : float array;
  hi : float array;
  value : float array; (* current value of every column *)
  st : status array;
  basis : int array; (* column basic in each row *)
}

let aij t i j = t.a.((i * t.n) + j)

(* Eliminate column [jc] from all rows and both cost rows using pivot row
   [r]. Afterwards column jc is the [r]-th unit vector. *)
let pivot t r jc =
  let n = t.n in
  let prow = r * n in
  let piv = t.a.(prow + jc) in
  let inv = 1. /. piv in
  for j = 0 to n - 1 do
    t.a.(prow + j) <- t.a.(prow + j) *. inv
  done;
  t.a.(prow + jc) <- 1.;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let f = t.a.((i * n) + jc) in
      if Float.abs f > 1e-12 then begin
        let row = i * n in
        for j = 0 to n - 1 do
          t.a.(row + j) <- t.a.(row + j) -. (f *. t.a.(prow + j))
        done;
        t.a.(row + jc) <- 0.
      end
    end
  done;
  let elim_cost c =
    let f = c.(jc) in
    if Float.abs f > 1e-12 then begin
      for j = 0 to n - 1 do
        c.(j) <- c.(j) -. (f *. t.a.(prow + j))
      done;
      c.(jc) <- 0.
    end
  in
  elim_cost t.c1;
  elim_cost t.c2

(* One simplex phase: minimize the cost row [c] until no eligible entering
   column remains. [blocked j] columns may not enter. Returns [`Optimal],
   [`Unbounded] or [`Iters]. *)
let run_phase t c ~blocked ~max_iters =
  let n = t.n and m = t.m in
  let stall = ref 0 and bland = ref false in
  let rec loop iters =
    if iters > max_iters then `Iters
    else begin
      (* Entering column: nonbasic with profitable reduced cost. *)
      let best = ref (-1) and best_score = ref eps_cost and best_dir = ref 1. in
      (try
         for j = 0 to n - 1 do
           if (not (blocked j)) && t.st.(j) <> Basic then begin
             let d = c.(j) in
             let dir =
               match t.st.(j) with
               | At_lower -> if d < -.eps_cost then 1. else 0.
               | At_upper -> if d > eps_cost then -1. else 0.
               | At_zero -> if d < -.eps_cost then 1. else if d > eps_cost then -1. else 0.
               | Basic -> 0.
             in
             if dir <> 0. then
               if !bland then begin
                 best := j;
                 best_dir := dir;
                 raise Exit
               end
               else if Float.abs d > !best_score then begin
                 best := j;
                 best_score := Float.abs d;
                 best_dir := dir
               end
           end
         done
       with Exit -> ());
      if !best < 0 then `Optimal
      else begin
        Lp_stats.incr Lp_stats.pivots;
        let jc = !best and dir = !best_dir in
        (* Ratio test: how far can column jc move in direction [dir]? *)
        let theta = ref (t.hi.(jc) -. t.lo.(jc)) in
        (* own bound flip distance; infinite for free/one-sided columns *)
        if Float.is_nan !theta then theta := Float.infinity;
        let leave = ref (-1) and leave_to_upper = ref false in
        for i = 0 to m - 1 do
          let y = dir *. aij t i jc in
          let b = t.basis.(i) in
          if y > eps_pivot then begin
            (* basic b decreases, limited by its lower bound *)
            let cap = (t.value.(b) -. t.lo.(b)) /. y in
            if cap < !theta -. 1e-12 || (cap < !theta +. 1e-12 && (!leave < 0 || b < t.basis.(!leave))) then begin
              theta := Float.max 0. cap;
              leave := i;
              leave_to_upper := false
            end
          end
          else if y < -.eps_pivot then begin
            (* basic b increases, limited by its upper bound *)
            let cap = (t.hi.(b) -. t.value.(b)) /. -.y in
            if cap < !theta -. 1e-12 || (cap < !theta +. 1e-12 && (!leave < 0 || b < t.basis.(!leave))) then begin
              theta := Float.max 0. cap;
              leave := i;
              leave_to_upper := true
            end
          end
        done;
        if Float.is_nan !theta || !theta = Float.infinity then
          if !leave < 0 then `Unbounded else `Iters (* cannot happen *)
        else begin
          let step = dir *. !theta in
          (* update basic values and the entering column's value *)
          if !theta > 0. then begin
            for i = 0 to m - 1 do
              let b = t.basis.(i) in
              t.value.(b) <- t.value.(b) -. (step *. aij t i jc)
            done;
            t.value.(jc) <- t.value.(jc) +. step;
            stall := 0
          end
          else begin
            incr stall;
            if !stall > (2 * (m + n)) + 50 then bland := true
          end;
          if !leave < 0 then begin
            (* bound flip: jc moves across its whole range, stays nonbasic *)
            t.st.(jc) <- (if dir > 0. then At_upper else At_lower);
            t.value.(jc) <- (if dir > 0. then t.hi.(jc) else t.lo.(jc));
            loop (iters + 1)
          end
          else begin
            let r = !leave in
            let out = t.basis.(r) in
            (* snap the leaving variable exactly onto the bound it hit *)
            t.value.(out) <- (if !leave_to_upper then t.hi.(out) else t.lo.(out));
            t.st.(out) <- (if !leave_to_upper then At_upper else At_lower);
            if t.lo.(out) = Float.neg_infinity && not !leave_to_upper then t.st.(out) <- At_zero;
            t.basis.(r) <- jc;
            t.st.(jc) <- Basic;
            pivot t r jc;
            loop (iters + 1)
          end
        end
      end
    end
  in
  loop 0

let solve ?lb ?ub ?max_iters model =
  let nv = Model.num_vars model in
  let mlb, mub = Model.bounds model in
  let lb = match lb with Some a -> a | None -> mlb in
  let ub = match ub with Some a -> a | None -> mub in
  let conss = Model.conss model in
  let nc = Array.length conss in
  let sense, obj = Model.objective model in
  (* Column layout: structural vars [0, nv), then one slack per Le/Ge row,
     then artificials as needed. *)
  let n_slack =
    Array.fold_left
      (fun acc (c : Model.cons) -> match c.rel with Model.Le | Model.Ge -> acc + 1 | Model.Eq -> acc)
      0 conss
  in
  let n = nv + n_slack + nc (* upper bound incl. artificials; trim later *) in
  let lo = Array.make n 0. and hi = Array.make n Float.infinity in
  Array.blit lb 0 lo 0 nv;
  Array.blit ub 0 hi 0 nv;
  for i = 0 to nv - 1 do
    if lo.(i) > hi.(i) +. 1e-12 then raise Exit
  done;
  (* initial nonbasic value for structural columns *)
  let init_value j =
    if Float.is_finite lo.(j) then lo.(j)
    else if Float.is_finite hi.(j) then hi.(j)
    else 0.
  in
  try
    let value = Array.make n 0. in
    let st = Array.make n At_lower in
    for j = 0 to nv - 1 do
      value.(j) <- init_value j;
      st.(j) <-
        (if Float.is_finite lo.(j) then At_lower
         else if Float.is_finite hi.(j) then At_upper
         else At_zero)
    done;
    let m = nc in
    let a = Array.make (m * n) 0. in
    let basis = Array.make (max m 1) (-1) in
    let c1 = Array.make n 0. and c2 = Array.make n 0. in
    (* phase-2 costs: minimize internal objective *)
    let osign = match sense with Model.Minimize -> 1. | Model.Maximize -> -1. in
    Linexpr.iter (fun id coef -> c2.(id) <- osign *. coef) obj;
    let next_col = ref nv in
    let n_art = ref 0 in
    let art_flags = Array.make n false in
    for i = 0 to m - 1 do
      let c = conss.(i) in
      let row = i * n in
      (* Normalize Ge rows to Le by negation so slack coefficients are +1. *)
      let flip = match c.rel with Model.Ge -> -1. | Model.Le | Model.Eq -> 1. in
      Linexpr.iter (fun id coef -> a.(row + id) <- a.(row + id) +. (flip *. coef)) c.lhs;
      let rhs = flip *. c.rhs in
      (* residual with structural columns at their initial values *)
      let r = ref rhs in
      Linexpr.iter (fun id coef -> r := !r -. (flip *. coef *. value.(id))) c.lhs;
      let add_col coef =
        let j = !next_col in
        incr next_col;
        a.(row + j) <- coef;
        lo.(j) <- 0.;
        hi.(j) <- Float.infinity;
        j
      in
      let negate_row () =
        for j = 0 to n - 1 do
          a.(row + j) <- -.a.(row + j)
        done;
        r := -. !r
      in
      let add_artificial () =
        if !r < 0. then negate_row ();
        let t = add_col 1. in
        incr n_art;
        c1.(t) <- 1.;
        art_flags.(t) <- true;
        basis.(i) <- t;
        st.(t) <- Basic;
        value.(t) <- !r
      in
      match c.rel with
      | Model.Le | Model.Ge ->
        let s = add_col 1. in
        if !r >= 0. then begin
          basis.(i) <- s;
          st.(s) <- Basic;
          value.(s) <- !r
        end
        else begin
          st.(s) <- At_lower;
          value.(s) <- 0.;
          add_artificial ()
        end
      | Model.Eq -> add_artificial ()
    done;
    let n = !next_col in
    (* Shrink arrays to the actual column count. *)
    let shrink arr = Array.sub arr 0 n in
    let a' = Array.make (m * n) 0. in
    for i = 0 to m - 1 do
      Array.blit a (i * (nv + n_slack + nc)) a' (i * n) n
    done;
    let t =
      {
        m;
        n;
        a = a';
        c1 = shrink c1;
        c2 = shrink c2;
        lo = shrink lo;
        hi = shrink hi;
        value = shrink value;
        st = shrink st;
        basis;
      }
    in
    let max_iters =
      match max_iters with Some k -> k | None -> (50 * (m + n)) + 200
    in
    (* Make both cost rows consistent with the initial basis: eliminate
       basic columns from the cost rows. *)
    let fix_costs c =
      for i = 0 to m - 1 do
        let b = t.basis.(i) in
        let f = c.(b) in
        if Float.abs f > 1e-12 then begin
          let row = i * t.n in
          for j = 0 to t.n - 1 do
            c.(j) <- c.(j) -. (f *. t.a.(row + j))
          done;
          c.(b) <- 0.
        end
      done
    in
    fix_costs t.c1;
    fix_costs t.c2;
    let art = Array.sub art_flags 0 t.n in
    let extract () = Array.sub t.value 0 nv in
    let finish_phase2 () =
      match run_phase t t.c2 ~blocked:(fun j -> art.(j)) ~max_iters with
      | `Optimal ->
        let values = extract () in
        Optimal { obj = Linexpr.eval values obj; values }
      | `Unbounded -> Unbounded
      | `Iters -> Iter_limit
    in
    if !n_art = 0 then finish_phase2 ()
    else begin
      (* artificials were assigned c1 = 1 before elimination; recompute a
         clean phase-1 cost row = sum of artificial rows' negation trick is
         already handled by fix_costs above. *)
      match run_phase t t.c1 ~blocked:(fun _ -> false) ~max_iters with
      | `Unbounded -> Infeasible (* phase-1 objective is bounded below by 0 *)
      | `Iters -> Iter_limit
      | `Optimal ->
        let infeas =
          Array.to_list (Array.mapi (fun j v -> if art.(j) then v else 0.) t.value)
          |> List.fold_left ( +. ) 0.
        in
        if infeas > eps_feas then Infeasible
        else begin
          (* Lock artificials at zero so phase 2 cannot use them. *)
          for j = 0 to t.n - 1 do
            if art.(j) then begin
              t.lo.(j) <- 0.;
              t.hi.(j) <- 0.;
              if t.st.(j) <> Basic then begin
                t.st.(j) <- At_lower;
                t.value.(j) <- 0.
              end
            end
          done;
          finish_phase2 ()
        end
    end
  with Exit -> Infeasible
