(** MILP presolve: an iterated fixpoint of primal reductions over a
    {!Model}, run by {!Solver.solve} before branch-and-bound.

    Reductions, in fixpoint order per pass: infeasible/redundant row
    detection from activity bounds, singleton-row-to-bound conversion,
    forcing-row variable fixing, coefficient (big-M) tightening on
    inequality rows with binaries, and bound propagation; plus, after the
    fixpoint, probing on binary variables (set each to 0 and to 1,
    propagate, and harvest fixings and implied bounds from the branches —
    the Raha link-failure binaries [u_e_l] carry the lowest ids, so they
    are probed first).

    Big-M tightening is the reduction the bilevel encodings care about:
    the blanket implication constants emitted by {!Linearize} (and the
    KKT complementarity rows of [Raha.Inner]) appear as rows
    [e + M b <= ub] that are redundant in one branch of the binary; the
    coefficient and right-hand side are then brought down to the
    propagated activity bound of [e], exactly recomputing the minimal M.

    Every reduction preserves the set of feasible points over the
    surviving variables (no dual reductions are performed), so a reduced
    optimum maps back to an original optimum and the known optimum is
    never cut off. Fixed variables' objective contribution is moved into
    the reduced objective's constant term, which {!Simplex} evaluates, so
    objective values and dual bounds need no postsolve correction. *)

type stats = {
  passes : int;  (** fixpoint passes executed (across probing restarts) *)
  rows_removed : int;
  cols_fixed : int;
  bounds_tightened : int;
  big_ms_tightened : int;  (** coefficient-tightening applications *)
  probed : int;  (** binaries probed *)
  probe_fixed : int;  (** variables fixed as a result of probing *)
}

type result =
  | Reduced of { model : Model.t; post : Postsolve.t; stats : stats }
  | Infeasible of stats
      (** the reductions proved the model infeasible outright *)

(** [presolve model] runs the reductions and builds the reduced model.
    [max_passes] bounds fixpoint iterations (default 20); [probe_limit]
    bounds the number of binaries probed (default 512, [0] disables
    probing). The input model is not modified. *)
val presolve : ?max_passes:int -> ?probe_limit:int -> Model.t -> result

(** Domain-local cumulative reduction counters (rows removed, variables
    fixed, big-Ms tightened), in the shape [Parallel.Pool ~counters]
    expects — see {!Solver.stats_counters}. *)
val cumulative_rows_removed : unit -> int

val cumulative_cols_fixed : unit -> int
val cumulative_big_ms_tightened : unit -> int
