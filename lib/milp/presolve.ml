(* Iterated fixpoint of primal presolve reductions. See the .mli for the
   catalogue. Implementation notes:

   - Rows are normalized to [sum a_j x_j <= rhs] (Ge rows negated) or
     [= rhs]. Coefficients are mutable only for coefficient tightening;
     removal is a tombstone flag.
   - Fixing a variable just collapses its bounds (lb = ub = v): activity
     computations then account for it automatically, and the actual
     substitution happens once, when the reduced model is rebuilt. This
     keeps mid-pass state consistent — a fix never edits a row that is
     currently being swept.
   - Within one row sweep the activity bounds are computed once and go
     stale as bounds tighten. Stale activities were computed from looser
     bounds, so every deduction drawn from them is valid, merely weaker;
     the fixpoint loop recovers the rest.
   - Tolerances are asymmetric by design: declaring infeasibility or
     fixing a variable uses a generous 1e-6-scaled tolerance (matching
     the solver's feasibility/integrality tolerance), while redundancy
     and forcing detection use a tight 1e-9 so a row is only dropped when
     the box genuinely pins it. Continuous bounds are tightened with a
     tiny outward slack and integer bounds are rounded outward, so the
     reduced feasible set never loses a point of the original one. *)

type stats = {
  passes : int;
  rows_removed : int;
  cols_fixed : int;
  bounds_tightened : int;
  big_ms_tightened : int;
  probed : int;
  probe_fixed : int;
}

type result =
  | Reduced of { model : Model.t; post : Postsolve.t; stats : stats }
  | Infeasible of stats

(* Domain-local cumulative counters, aggregated across a Parallel.Pool's
   workers the same way as the simplex pivot counter. *)
let rows_key = Domain.DLS.new_key (fun () -> ref 0)
let cols_key = Domain.DLS.new_key (fun () -> ref 0)
let bigm_key = Domain.DLS.new_key (fun () -> ref 0)
let cumulative_rows_removed () = !(Domain.DLS.get rows_key)
let cumulative_cols_fixed () = !(Domain.DLS.get cols_key)
let cumulative_big_ms_tightened () = !(Domain.DLS.get bigm_key)

exception Infeasible_model
exception Probe_infeasible

type row = {
  rname : string;
  eq : bool; (* true: [= rhs]; false: [<= rhs] *)
  rvars : int array;
  coefs : float array;
  mutable rhs : float;
  mutable alive : bool;
}

type state = {
  nv : int;
  kind : Model.var_kind array;
  lb : float array;
  ub : float array;
  is_fixed : bool array;
  fixval : float array;
  rows : row array;
  mutable n_rows_removed : int;
  mutable n_cols_fixed : int;
  mutable n_bounds : int;
  mutable n_bigm : int;
  mutable changed : bool;
}

let is_int_kind = function Model.Continuous -> false | Model.Binary | Model.Integer -> true

(* Minimum/maximum possible row activity over the bound box, as a finite
   part plus a count of infinite contributions (so the activity without
   one term is recoverable even when that term is the sole infinity). *)
let activities lb ub r =
  let mn = ref 0. and mn_inf = ref 0 and mx = ref 0. and mx_inf = ref 0 in
  Array.iteri
    (fun k id ->
      let a = r.coefs.(k) in
      if a <> 0. then begin
        let l = lb.(id) and u = ub.(id) in
        if a > 0. then begin
          if l = Float.neg_infinity then incr mn_inf else mn := !mn +. (a *. l);
          if u = Float.infinity then incr mx_inf else mx := !mx +. (a *. u)
        end
        else begin
          if u = Float.infinity then incr mn_inf else mn := !mn +. (a *. u);
          if l = Float.neg_infinity then incr mx_inf else mx := !mx +. (a *. l)
        end
      end)
    r.rvars;
  (!mn, !mn_inf, !mx, !mx_inf)

(* Generic bound updates over explicit arrays (shared between the main
   fixpoint and probing). Integer bounds round outward; continuous bounds
   get a relative outward slack and only move on a material improvement,
   so epsilon nudges cannot keep the fixpoint spinning. Raises [infeas]
   when the domain empties. Returns whether the bound moved. *)
let gen_tighten_ub kind lb ub j v ~infeas =
  let isint = is_int_kind kind.(j) in
  let v = if isint then Float.floor (v +. 1e-6) else v +. (1e-9 *. (1. +. Float.abs v)) in
  let improves =
    if ub.(j) = Float.infinity then v < Float.infinity
    else if isint then v <= ub.(j) -. 0.5
    else ub.(j) -. v > 1e-7 *. (1. +. Float.abs ub.(j))
  in
  if improves then begin
    if v < lb.(j) -. (1e-6 *. (1. +. Float.abs v)) then raise infeas;
    ub.(j) <- Float.max v lb.(j);
    true
  end
  else false

let gen_tighten_lb kind lb ub j v ~infeas =
  let isint = is_int_kind kind.(j) in
  let v = if isint then Float.ceil (v -. 1e-6) else v -. (1e-9 *. (1. +. Float.abs v)) in
  let improves =
    if lb.(j) = Float.neg_infinity then v > Float.neg_infinity
    else if isint then v >= lb.(j) +. 0.5
    else v -. lb.(j) > 1e-7 *. (1. +. Float.abs lb.(j))
  in
  if improves then begin
    if v > ub.(j) +. (1e-6 *. (1. +. Float.abs v)) then raise infeas;
    lb.(j) <- Float.min v ub.(j);
    true
  end
  else false

let fix st j v =
  if st.is_fixed.(j) then begin
    if Float.abs (v -. st.fixval.(j)) > 1e-6 *. (1. +. Float.abs v) then
      raise Infeasible_model
  end
  else begin
    let tol = 1e-6 *. (1. +. Float.abs v) in
    if v < st.lb.(j) -. tol || v > st.ub.(j) +. tol then raise Infeasible_model;
    let v =
      if is_int_kind st.kind.(j) then begin
        let r = Float.round v in
        if Float.abs (v -. r) > 1e-6 then raise Infeasible_model;
        r
      end
      else Float.min (Float.max v st.lb.(j)) st.ub.(j)
    in
    st.is_fixed.(j) <- true;
    st.fixval.(j) <- v;
    st.lb.(j) <- v;
    st.ub.(j) <- v;
    st.n_cols_fixed <- st.n_cols_fixed + 1;
    st.changed <- true
  end

let tighten_ub st j v =
  if (not st.is_fixed.(j))
     && gen_tighten_ub st.kind st.lb st.ub j v ~infeas:Infeasible_model
  then begin
    st.n_bounds <- st.n_bounds + 1;
    st.changed <- true;
    if
      Float.is_finite st.lb.(j)
      && st.ub.(j) -. st.lb.(j) <= 1e-9 *. (1. +. Float.abs st.lb.(j))
    then fix st j st.lb.(j)
  end

let tighten_lb st j v =
  if (not st.is_fixed.(j))
     && gen_tighten_lb st.kind st.lb st.ub j v ~infeas:Infeasible_model
  then begin
    st.n_bounds <- st.n_bounds + 1;
    st.changed <- true;
    if
      Float.is_finite st.lb.(j)
      && st.ub.(j) -. st.lb.(j) <= 1e-9 *. (1. +. Float.abs st.lb.(j))
    then fix st j st.lb.(j)
  end

let kill_row st r =
  if r.alive then begin
    r.alive <- false;
    st.n_rows_removed <- st.n_rows_removed + 1;
    st.changed <- true
  end

(* Coefficient tightening on [<=] rows with {0,1} variables — the big-M
   reduction. For a binary b with coefficient a > 0 in [R + a b <= rhs],
   let Mr = max activity of R. If Mr <= rhs the row is redundant in the
   b = 0 branch, and the equivalent row [R + (Mr + a - rhs) b <= Mr] has
   the same integer feasible set with a strictly tighter LP relaxation:
   for an implication gadget [e + (ub - k) b <= ub] this rewrites the
   blanket M = ub - k to the minimal M = max(e) - k. Symmetrically for
   a < 0 when the row is redundant in the b = 1 branch. At most one
   application per row per pass, since the activities go stale. *)
let coefficient_tighten st r mx mx_inf =
  if r.eq || mx_inf > 0 then false
  else begin
    let applied = ref false in
    let n = Array.length r.rvars in
    let k = ref 0 in
    while (not !applied) && !k < n do
      let a = r.coefs.(!k) and j = r.rvars.(!k) in
      if
        a <> 0.
        && (not st.is_fixed.(j))
        && is_int_kind st.kind.(j)
        && st.lb.(j) = 0.
        && st.ub.(j) = 1.
      then begin
        let itol = 1e-7 *. (1. +. Float.abs a) in
        if a > 0. then begin
          let mr = mx -. a in
          (* binary contributes a to mx *)
          if mr <= r.rhs && mx > r.rhs +. itol then begin
            let a' = mx -. r.rhs in
            if a' < a -. itol then begin
              r.coefs.(!k) <- a';
              r.rhs <- mr;
              applied := true
            end
          end
        end
        else begin
          let mr = mx in
          (* binary contributes 0 to mx *)
          if mr <= r.rhs -. a && mr > r.rhs +. itol then begin
            let a' = r.rhs -. mr in
            if a' > a +. itol then begin
              r.coefs.(!k) <- a';
              applied := true
            end
          end
        end
      end;
      incr k
    done;
    if !applied then begin
      st.n_bigm <- st.n_bigm + 1;
      st.changed <- true
    end;
    !applied
  end

(* Implied per-variable bounds from one row's activity residuals. *)
let propagate_row st r mn mn_inf mx mx_inf =
  Array.iteri
    (fun k j ->
      let a = r.coefs.(k) in
      if a <> 0. && not st.is_fixed.(j) then begin
        let l = st.lb.(j) and u = st.ub.(j) in
        (* <= direction: a x_j <= rhs - min(rest) *)
        let cmin_inf = if a > 0. then l = Float.neg_infinity else u = Float.infinity in
        let rest_known = if cmin_inf then mn_inf = 1 else mn_inf = 0 in
        if rest_known then begin
          let cmin = if cmin_inf then 0. else if a > 0. then a *. l else a *. u in
          let rest = if cmin_inf then mn else mn -. cmin in
          let cap = (r.rhs -. rest) /. a in
          if a > 0. then tighten_ub st j cap else tighten_lb st j cap
        end;
        (* equalities also bound from below: a x_j >= rhs - max(rest) *)
        if r.eq then begin
          let cmax_inf = if a > 0. then u = Float.infinity else l = Float.neg_infinity in
          let rest_known = if cmax_inf then mx_inf = 1 else mx_inf = 0 in
          if rest_known then begin
            let cmax = if cmax_inf then 0. else if a > 0. then a *. u else a *. l in
            let rest = if cmax_inf then mx else mx -. cmax in
            let low = (r.rhs -. rest) /. a in
            if a > 0. then tighten_lb st j low else tighten_ub st j low
          end
        end
      end)
    r.rvars

let process_row st r =
  if r.alive then begin
    let mn, mn_inf, mx, mx_inf = activities st.lb st.ub r in
    let scale =
      1. +. Float.abs r.rhs
      +. Float.max (if mn_inf = 0 then Float.abs mn else 0.) (if mx_inf = 0 then Float.abs mx else 0.)
    in
    let ftol = 1e-6 *. scale in
    let eps = 1e-9 *. scale in
    if mn_inf = 0 && mn > r.rhs +. ftol then raise Infeasible_model;
    if r.eq && mx_inf = 0 && mx < r.rhs -. ftol then raise Infeasible_model;
    let n_live = ref 0 and last_live = ref (-1) in
    Array.iteri
      (fun k id ->
        if r.coefs.(k) <> 0. && not st.is_fixed.(id) then begin
          incr n_live;
          last_live := k
        end)
      r.rvars;
    if !n_live = 0 then kill_row st r
    else if (not r.eq) && mx_inf = 0 && mx <= r.rhs +. eps then
      (* redundant: satisfied everywhere in the box *)
      kill_row st r
    else if !n_live = 1 then begin
      (* singleton row: convert to a bound (Le) or a fixing (Eq) *)
      let k = !last_live in
      let j = r.rvars.(k) and a = r.coefs.(k) in
      let fc = ref 0. in
      Array.iteri
        (fun k' id ->
          if k' <> k && r.coefs.(k') <> 0. then
            fc := !fc +. (r.coefs.(k') *. st.fixval.(id)))
        r.rvars;
      let b = (r.rhs -. !fc) /. a in
      if r.eq then fix st j b
      else if a > 0. then tighten_ub st j b
      else tighten_lb st j b;
      kill_row st r
    end
    else if mn_inf = 0 && mn >= r.rhs -. eps then begin
      (* forcing: the activity is pinned at its minimum (for an equality
         this is the min-side case; feasible by the checks above) *)
      Array.iteri
        (fun k id ->
          let a = r.coefs.(k) in
          if a <> 0. && not st.is_fixed.(id) then
            fix st id (if a > 0. then st.lb.(id) else st.ub.(id)))
        r.rvars;
      kill_row st r
    end
    else if r.eq && mx_inf = 0 && mx <= r.rhs +. eps then begin
      (* forcing from above: activity pinned at its maximum *)
      Array.iteri
        (fun k id ->
          let a = r.coefs.(k) in
          if a <> 0. && not st.is_fixed.(id) then
            fix st id (if a > 0. then st.ub.(id) else st.lb.(id)))
        r.rvars;
      kill_row st r
    end
    else if not (coefficient_tighten st r mx mx_inf) then
      propagate_row st r mn mn_inf mx mx_inf
  end

let fixpoint ~max_passes st =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < max_passes do
    incr n;
    st.changed <- false;
    Array.iter (process_row st) st.rows;
    if not st.changed then continue_ := false
  done;
  !n

(* Pure bound propagation over cloned bound arrays: evaluates a probe
   branch without touching the shared state. *)
let probe_propagate st lb ub ~rounds =
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < rounds do
    incr round;
    changed := false;
    Array.iter
      (fun r ->
        if r.alive then begin
          let mn, mn_inf, mx, mx_inf = activities lb ub r in
          let scale =
            1. +. Float.abs r.rhs +. (if mn_inf = 0 then Float.abs mn else 0.)
          in
          if mn_inf = 0 && mn > r.rhs +. (1e-6 *. scale) then raise Probe_infeasible;
          if r.eq && mx_inf = 0 && mx < r.rhs -. (1e-6 *. scale) then
            raise Probe_infeasible;
          Array.iteri
            (fun k j ->
              let a = r.coefs.(k) in
              if a <> 0. && lb.(j) < ub.(j) then begin
                let l = lb.(j) and u = ub.(j) in
                let cmin_inf =
                  if a > 0. then l = Float.neg_infinity else u = Float.infinity
                in
                let rest_known = if cmin_inf then mn_inf = 1 else mn_inf = 0 in
                if rest_known then begin
                  let cmin = if cmin_inf then 0. else if a > 0. then a *. l else a *. u in
                  let rest = if cmin_inf then mn else mn -. cmin in
                  let cap = (r.rhs -. rest) /. a in
                  if a > 0. then begin
                    if gen_tighten_ub st.kind lb ub j cap ~infeas:Probe_infeasible then
                      changed := true
                  end
                  else if gen_tighten_lb st.kind lb ub j cap ~infeas:Probe_infeasible
                  then changed := true
                end;
                if r.eq then begin
                  let cmax_inf =
                    if a > 0. then u = Float.infinity else l = Float.neg_infinity
                  in
                  let rest_known = if cmax_inf then mx_inf = 1 else mx_inf = 0 in
                  if rest_known then begin
                    let cmax =
                      if cmax_inf then 0. else if a > 0. then a *. u else a *. l
                    in
                    let rest = if cmax_inf then mx else mx -. cmax in
                    let low = (r.rhs -. rest) /. a in
                    if a > 0. then begin
                      if gen_tighten_lb st.kind lb ub j low ~infeas:Probe_infeasible
                      then changed := true
                    end
                    else if gen_tighten_ub st.kind lb ub j low ~infeas:Probe_infeasible
                    then changed := true
                  end
                end
              end)
            r.rvars
        end)
      st.rows
  done

(* Adopt bounds proven valid for the whole remaining feasible set. *)
let adopt st l u =
  for k = 0 to st.nv - 1 do
    if not st.is_fixed.(k) then begin
      if l.(k) > st.lb.(k) then tighten_lb st k l.(k);
      if u.(k) < st.ub.(k) then tighten_ub st k u.(k)
    end
  done

(* Probing: temporarily fix each {0,1} variable to both values and
   propagate. An infeasible branch fixes the variable to the other value
   (both infeasible proves the model infeasible); two feasible branches
   still yield the branch-union bounds, valid globally since every
   feasible point lives in one branch. Variables are visited in id order,
   which reaches the Raha link-failure binaries first. *)
let probe st ~limit =
  let n_probed = ref 0 in
  let j = ref 0 in
  while !j < st.nv && !n_probed < limit do
    let id = !j in
    if
      (not st.is_fixed.(id))
      && is_int_kind st.kind.(id)
      && st.lb.(id) = 0.
      && st.ub.(id) = 1.
    then begin
      incr n_probed;
      let branch v =
        let lb = Array.copy st.lb and ub = Array.copy st.ub in
        lb.(id) <- v;
        ub.(id) <- v;
        match probe_propagate st lb ub ~rounds:3 with
        | () -> Some (lb, ub)
        | exception Probe_infeasible -> None
      in
      match (branch 0., branch 1.) with
      | None, None -> raise Infeasible_model
      | None, Some (l1, u1) ->
        fix st id 1.;
        adopt st l1 u1
      | Some (l0, u0), None ->
        fix st id 0.;
        adopt st l0 u0
      | Some (l0, u0), Some (l1, u1) ->
        for k = 0 to st.nv - 1 do
          if not st.is_fixed.(k) then begin
            let nl = Float.min l0.(k) l1.(k) and nu = Float.max u0.(k) u1.(k) in
            if nl > st.lb.(k) then tighten_lb st k nl;
            if nu < st.ub.(k) then tighten_ub st k nu
          end
        done
    end;
    incr j
  done;
  !n_probed

let build_state model =
  let nv = Model.num_vars model in
  let lb, ub = Model.bounds model in
  let kind = Array.map (fun (v : Model.var) -> v.Model.kind) (Model.vars model) in
  let rows =
    Array.map
      (fun (c : Model.cons) ->
        let flip = match c.Model.rel with Model.Ge -> -1. | Model.Le | Model.Eq -> 1. in
        let terms = Linexpr.terms c.Model.lhs in
        let rvars = Array.of_list (List.map snd terms) in
        let coefs = Array.of_list (List.map (fun (a, _) -> flip *. a) terms) in
        {
          rname = c.Model.cname;
          eq = c.Model.rel = Model.Eq;
          rvars;
          coefs;
          rhs = (flip *. c.Model.rhs) -. (flip *. Linexpr.constant c.Model.lhs);
          alive = true;
        })
      (Model.conss model)
  in
  {
    nv;
    kind;
    lb;
    ub;
    is_fixed = Array.make nv false;
    fixval = Array.make nv 0.;
    rows;
    n_rows_removed = 0;
    n_cols_fixed = 0;
    n_bounds = 0;
    n_bigm = 0;
    changed = false;
  }

let build_reduced st model =
  let post = Postsolve.make ~is_fixed:st.is_fixed ~value:st.fixval in
  let rid = Array.make st.nv (-1) in
  let rm = Model.create ~name:(Model.name model ^ "+presolve") () in
  for j = 0 to st.nv - 1 do
    if not st.is_fixed.(j) then
      rid.(j) <-
        (Model.add_var rm ~name:(Model.var_name model j) ~kind:st.kind.(j)
           ~lb:st.lb.(j) ~ub:st.ub.(j))
          .Model.vid
  done;
  Array.iter
    (fun r ->
      if r.alive then begin
        let terms = ref [] and fc = ref 0. in
        Array.iteri
          (fun k j ->
            let a = r.coefs.(k) in
            if a <> 0. then
              if st.is_fixed.(j) then fc := !fc +. (a *. st.fixval.(j))
              else terms := (a, rid.(j)) :: !terms)
          r.rvars;
        let rhs = r.rhs -. !fc in
        match !terms with
        | [] ->
          (* everything in the row got fixed after the last sweep *)
          let viol = if r.eq then Float.abs rhs else Float.max 0. (-.rhs) in
          if viol > 1e-6 *. (1. +. Float.abs r.rhs) then raise Infeasible_model
        | ts ->
          Model.add_cons rm ~name:r.rname (Linexpr.of_terms ts)
            (if r.eq then Model.Eq else Model.Le)
            rhs
      end)
    st.rows;
  let sense, obj = Model.objective model in
  let oterms = ref [] and oconst = ref (Linexpr.constant obj) in
  Linexpr.iter
    (fun j c ->
      if st.is_fixed.(j) then oconst := !oconst +. (c *. st.fixval.(j))
      else oterms := (c, rid.(j)) :: !oterms)
    obj;
  Model.set_objective rm sense (Linexpr.of_terms ~const:!oconst !oterms);
  (rm, post)

let presolve ?(max_passes = 20) ?(probe_limit = 512) model =
  let st = build_state model in
  let total_passes = ref 0 and probed = ref 0 and probe_fixed = ref 0 in
  let run () =
    (* initial normalization: round integer bounds, fix collapsed boxes *)
    for j = 0 to st.nv - 1 do
      if is_int_kind st.kind.(j) then begin
        st.lb.(j) <- Float.ceil (st.lb.(j) -. 1e-6);
        st.ub.(j) <- Float.floor (st.ub.(j) +. 1e-6)
      end;
      if st.lb.(j) > st.ub.(j) then raise Infeasible_model;
      if
        Float.is_finite st.lb.(j)
        && st.ub.(j) -. st.lb.(j) <= 1e-9 *. (1. +. Float.abs st.lb.(j))
      then fix st j st.lb.(j)
    done;
    total_passes := fixpoint ~max_passes st;
    if probe_limit > 0 then begin
      let fixed0 = st.n_cols_fixed and bounds0 = st.n_bounds in
      probed := probe st ~limit:probe_limit;
      probe_fixed := st.n_cols_fixed - fixed0;
      if st.n_cols_fixed > fixed0 || st.n_bounds > bounds0 then
        total_passes := !total_passes + fixpoint ~max_passes st
    end;
    build_reduced st model
  in
  let mk_stats () =
    {
      passes = !total_passes;
      rows_removed = st.n_rows_removed;
      cols_fixed = st.n_cols_fixed;
      bounds_tightened = st.n_bounds;
      big_ms_tightened = st.n_bigm;
      probed = !probed;
      probe_fixed = !probe_fixed;
    }
  in
  let bump key n =
    let r = Domain.DLS.get key in
    r := !r + n
  in
  let finish stats =
    bump rows_key stats.rows_removed;
    bump cols_key stats.cols_fixed;
    bump bigm_key stats.big_ms_tightened
  in
  match run () with
  | exception Infeasible_model ->
    let stats = mk_stats () in
    finish stats;
    Infeasible stats
  | rm, post ->
    let stats = mk_stats () in
    finish stats;
    Reduced { model = rm; post; stats }
