(** CPLEX-LP-format export and import of models.

    Lets any encoding be inspected or cross-checked with an external
    solver (the role Gurobi's model dumps play in the paper's workflow).
    Only the subset needed for these models is emitted: objective, linear
    constraints, bounds, binaries and generals. *)

val to_string : Model.t -> string

val write : Model.t -> string -> unit

exception Parse_error of string

val of_string : string -> Model.t
(** Parse a model from the LP subset emitted by {!to_string}: an
    objective section ([Maximize]/[Minimize], optionally with a bare
    constant term), [Subject To] rows with optional labels, [Bounds]
    lines (including [free] and two-sided ranges), [Binaries] and
    [Generals]. The writer's canonical [x<id>] names keep their variable
    ids, so [of_string (to_string m)] reproduces [m]'s indexing exactly;
    other naming schemes get ids in order of first appearance.

    @raise Parse_error on input outside the supported subset. *)

val read : string -> Model.t
(** [read path] parses the LP file at [path] with {!of_string}. *)
