(* Batched scenario solves over one prepared model.

   One Simplex.prepare pays for the CSC standard form and the symbolic
   side of the LU work; every scenario is then a numeric overlay — a
   sparse patch of the row right-hand sides — solved through
   Simplex.solve_prepared ?b ?warm. Changing only the rhs never touches
   duals or reduced costs, so an optimal basis of the base problem
   (typically the healthy network) stays dual feasible for every
   overlay and the dual simplex repairs primal feasibility in a few
   pivots; numerical trouble on the warm path falls back to the cold
   primal inside solve_prepared itself.

   Thread-safety / determinism: a [t] is immutable after [prepare] and
   may be shared read-only across domains — each [solve] call builds a
   fresh rhs copy and a fresh solver state, and [Basis.create] copies
   the warm basis' column selection, so concurrent overlay solves never
   alias mutable state. A solve's pivot sequence depends only on
   (structure, bounds, patched rhs, warm basis), never on what other
   overlays ran before or beside it, which is what makes batched sweeps
   bit-identical across batch sizes and domain counts. *)

type t = {
  prep : Simplex.prepared;
  base_b : float array; (* private copy of the base rhs, length m *)
}

type outcome = {
  result : Simplex.result;
  basis : Simplex.basis option;
  warm_hit : bool;
}

let of_prepared prep =
  let sp = Simplex.prep_sparse prep in
  Lp_stats.incr Lp_stats.batch_prepares;
  { prep; base_b = Array.sub sp.Sparse.b 0 sp.Sparse.m }

let prepare model = of_prepared (Simplex.prepare model)

let prep t = t.prep
let num_rows t = Array.length t.base_b
let base_rhs t = Array.copy t.base_b

let cumulative_prepares = Lp_stats.read Lp_stats.batch_prepares
let cumulative_overlays = Lp_stats.read Lp_stats.batch_overlays
let cumulative_warm_hits = Lp_stats.read Lp_stats.batch_warm_hits

let patched_rhs t patch =
  let m = Array.length t.base_b in
  let b = Array.copy t.base_b in
  List.iter
    (fun (i, v) ->
      if i < 0 || i >= m then invalid_arg "Batch.solve: patch row out of range";
      b.(i) <- v)
    patch;
  b

let solve ?lb ?ub ?max_iters ?degen_limit ?warm ?(patch = []) t =
  let b = patched_rhs t patch in
  Lp_stats.incr Lp_stats.batch_overlays;
  (* [solve_prepared] bumps warm_hits exactly when the dual-simplex warm
     attempt finished the solve; diffing the domain-local counter around
     the call attributes the hit to this overlay without racing other
     domains. *)
  let wh0 = Lp_stats.read Lp_stats.warm_hits () in
  let result, basis =
    Simplex.solve_prepared ?lb ?ub ~b ?max_iters ?degen_limit ?warm t.prep
  in
  let warm_hit = Lp_stats.read Lp_stats.warm_hits () > wh0 in
  if warm_hit then Lp_stats.incr Lp_stats.batch_warm_hits;
  { result; basis; warm_hit }

(* ------------------------------------------------------------------ *)
(* Independent overlay audit                                           *)

(* Kahan-compensated row activity; also returns the largest |term|, the
   natural scale for the row's residual tolerance (same discipline as
   Certify.kahan_eval). *)
let kahan_eval values e =
  let s = ref 0. and c = ref 0. and scale = ref 0. in
  Linexpr.iter
    (fun id k ->
      let term = k *. values.(id) in
      let a = Float.abs term in
      if a > !scale then scale := a;
      let y = term -. !c in
      let t = !s +. y in
      c := (t -. !s) -. y;
      s := t)
    e;
  let k0 = Linexpr.constant e in
  ((!s +. (k0 -. !c)), !scale)

let feas_tol = 1e-5
let obj_tol = 1e-6

(* Re-validate an overlay's claimed optimum against the original model
   rows with the patched rhs substituted: row senses, variable bounds,
   and the recomputed objective. Purely from model data — none of the
   solver's internal state is trusted. Bumps the certify counters so
   batched sweeps show up in the same audit accounting as certified
   MILP solves. *)
let check ?(patch = []) ~obj ~values t =
  Lp_stats.incr Lp_stats.certify_checks;
  let model = Simplex.prep_model t.prep in
  let b = patched_rhs t patch in
  let conss = Model.conss model in
  let lbs, ubs = Model.bounds model in
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  Array.iteri
    (fun j v ->
      let eps = feas_tol *. (1. +. Float.abs v) in
      if v < lbs.(j) -. eps || v > ubs.(j) +. eps then
        fail "column %d = %g outside [%g, %g]" j v lbs.(j) ubs.(j))
    values;
  Array.iteri
    (fun i (c : Model.cons) ->
      let act, scale = kahan_eval values c.Model.lhs in
      let tol = feas_tol *. (1. +. Float.max scale (Float.abs b.(i))) in
      let viol =
        match c.Model.rel with
        | Model.Le -> act -. b.(i)
        | Model.Ge -> b.(i) -. act
        | Model.Eq -> Float.abs (act -. b.(i))
      in
      if viol > tol then
        fail "row %s violated by %g (activity %g, rhs %g)" c.Model.cname
          (viol -. tol) act b.(i))
    conss;
  let _, objx = Model.objective model in
  let recomputed, oscale = kahan_eval values objx in
  if Float.abs (recomputed -. obj) > obj_tol *. (1. +. Float.abs oscale) then
    fail "objective %g <> recomputed %g" obj recomputed;
  match !fails with
  | [] -> Ok ()
  | fs ->
    Lp_stats.incr Lp_stats.certify_failures;
    Error (String.concat "; " (List.rev fs))
