(** Batched scenario solves: one {!Simplex.prepare}, many cheap
    right-hand-side overlays (DESIGN.md §12).

    Scenario-heavy workloads (Monte Carlo sampling, failure
    enumeration, sweep grids) solve near-identical LPs that differ only
    in a few row right-hand sides — link capacities and path
    availability caps. A {!t} pays the CSC build and symbolic
    factorization work once; {!solve} then patches the rhs vector and
    re-solves through [Simplex.solve_prepared ?b ?warm]. Because duals
    and reduced costs never depend on the rhs, an optimal basis of the
    base problem stays dual feasible for {e every} overlay, so
    warm-started solves finish in a handful of dual pivots (with the
    cold-primal fallback on numerical trouble built into the simplex
    driver).

    A [t] is immutable and safe to share read-only across domains:
    every {!solve} works on fresh copies, and its pivot sequence
    depends only on (structure, bounds, patched rhs, warm basis) — the
    determinism that keeps batched sweeps bit-identical across batch
    sizes and domain counts. *)

type t

(** Result of one overlay solve. [warm_hit] is true when the
    dual-simplex warm attempt finished the solve (no cold fallback). *)
type outcome = {
  result : Simplex.result;
  basis : Simplex.basis option;
  warm_hit : bool;
}

(** [prepare model] builds the shared structure ([Simplex.prepare] +
    a private copy of the base rhs). Bumps the batch-prepares
    counter. *)
val prepare : Model.t -> t

(** Wrap an already-prepared model. *)
val of_prepared : Simplex.prepared -> t

(** The underlying prepared model (shared, do not mutate). *)
val prep : t -> Simplex.prepared

val num_rows : t -> int

(** Fresh copy of the base rhs (row order = model constraint order). *)
val base_rhs : t -> float array

(** [solve ?warm ?patch t] solves the overlay whose rhs is the base rhs
    with each [(row, value)] of [patch] substituted (later entries win).
    [?warm] is typically the base problem's optimal basis. Other
    optionals forward to {!Simplex.solve_prepared}.
    @raise Invalid_argument on an out-of-range patch row. *)
val solve :
  ?lb:float array ->
  ?ub:float array ->
  ?max_iters:int ->
  ?degen_limit:int ->
  ?warm:Simplex.basis ->
  ?patch:(int * float) list ->
  t ->
  outcome

(** [check ?patch ~obj ~values t] independently re-validates a claimed
    overlay optimum against the original model rows with the patched
    rhs substituted: variable bounds, row senses (Kahan-compensated
    activities, scaled tolerances), and the recomputed objective.
    Bumps the certify-checks/failures counters. [Error] carries a
    human-readable description of every violated check. *)
val check :
  ?patch:(int * float) list ->
  obj:float ->
  values:float array ->
  t ->
  (unit, string) result

(** Domain-local cumulative counters ({!Lp_stats} discipline, exported
    through [Solver.stats_counters]). *)

val cumulative_prepares : unit -> int
val cumulative_overlays : unit -> int
val cumulative_warm_hits : unit -> int
