(** Cutting-plane subsystem: Gomory mixed-integer cuts, knapsack cover
    cuts and clique (implication) cuts over a managed cut pool.

    The Raha bilevel MILPs mix big-M complementarity rows with small
    cardinality/knapsack rows (the [<= k] failure budget and the
    log-probability threshold), whose LP relaxations are weak. This
    module tightens them with three classic cut families:

    - {b Gomory mixed-integer (GMI) cuts} read a tableau row of a
      fractional integer basic variable through {!Basis.btran} /
      {!Sparse.col_dot} and apply the mixed-integer rounding formula.
      Nonbasic columns are shifted to their {e solve-global} bounds
      (never node-local branching bounds), so every emitted cut is valid
      for the whole tree, not just the node that separated it.
    - {b Knapsack cover cuts} greedily separate minimal covers on rows
      whose support is all binary (negative coefficients are
      complemented), yielding [sum_{j in C} x_j <= |C| - 1].
    - {b Clique cuts} come from a pairwise conflict graph built once
      from the rows' minimal activities — exactly the structure
      [Linearize.implies_le]'s big-M implications produce — and are
      separated as greedy violated cliques [sum of literals <= 1].

    Cuts are plain [<=] rows over structural variables (slack columns
    of the separation LP are substituted out), normalized to max |coeff|
    = 1, and held in a pool with duplicate hashing on the normalized
    support, activity-based aging and a bounded size. {!Branch_bound}
    applies the active set by re-preparing the LP with
    {!extend_model} and keeps dual warm starts valid through
    {!Simplex.extend_basis} (cuts only append rows).

    Every candidate is audited before activation — finite coefficients,
    bounded dynamism, and satisfaction by the current incumbent under a
    compensated dot product (the {!Certify} discipline) — and the active
    set is re-audited against every new incumbent. A failed audit drops
    the cut and bumps the [cut-audit-failures] counter instead of
    corrupting the search. *)

type family = Gomory | Cover | Clique

val family_name : family -> string

type options = {
  enable : bool;  (** master switch ([--no-cuts] at the CLI) *)
  root_rounds : int;  (** separation rounds at the root node *)
  node_interval : int;
      (** separate one round every this many B&B nodes ([0] disables
          in-tree separation) *)
  max_per_round : int;  (** cuts activated per separation round *)
  pool_size : int;  (** bound on the active cut set *)
  max_age : int;
      (** rounds a cut may stay slack at the separation point before it
          is pruned from the pool *)
  gomory : bool;  (** per-family toggles *)
  cover : bool;
  clique : bool;
  max_support : int;  (** reject cuts with more nonzeros than this *)
}

(** Cuts enabled: 6 root rounds, an in-tree round every 200 nodes, at
    most 20 activations per round into a pool of 200. *)
val default : options

(** [default] with [enable = false]. *)
val disabled : options

(** A pooled cut: [sum terms <= rhs] over structural variable ids, with
    max |coefficient| = 1. *)
type cut = private {
  terms : (float * int) array;  (** (coefficient, var id), id-sorted *)
  rhs : float;
  family : family;
  mutable age : int;  (** consecutive slack separation rounds *)
}

type pool

(** [create opts model] scans the model's rows once, collecting the
    binary knapsack candidates and the pairwise conflict graph, and
    records the solve-global variable bounds GMI shifts use. [model]
    must be the model branch-and-bound solves (post-presolve). *)
val create : options -> Model.t -> pool

(** [separate_round pool ~sp ~rows ~point ~basis ~incumbent] runs one
    separation round at the fractional [point] (structural values) and
    returns the number of cuts activated. [sp] and [rows] describe the
    {e extended} LP the point was solved on ([rows] maps each row to
    its structural terms and rhs, used to substitute slack columns out
    of GMI cuts); [basis] supplies the final basis columns and statuses
    when the revised engine produced one — without it the Gomory family
    is skipped. Candidates are audited against [incumbent] before
    activation; rejects bump [cut-audit-failures]. *)
val separate_round :
  pool ->
  sp:Sparse.t ->
  rows:(Linexpr.t * float) array ->
  point:float array ->
  basis:(int array * Simplex.vstat array) option ->
  incumbent:float array option ->
  int

(** Age the active cuts against the current LP point — tight resets the
    age, slack increments it — and prune cuts over [max_age]. Returns
    the number pruned (pruning invalidates extended bases built on the
    previous row set; see {!Simplex.extend_basis}). *)
val age_and_prune : pool -> point:float array -> int

(** Re-audit the active cuts against a new incumbent; failing cuts are
    removed (and counted in [cut-audit-failures]). Returns the number
    removed — nonzero means the caller must re-prepare and may no
    longer claim optimality. *)
val audit_incumbent : pool -> float array -> int

(** [extend_model base pool] is [base] with the active cuts appended as
    [<=] rows (a fresh model; [base] itself is never mutated). With an
    empty active set, [base] is returned unchanged, so row indices of
    the extension are always: base rows first, then the active cuts in
    activation order. *)
val extend_model : Model.t -> pool -> Model.t

val active_count : pool -> int

(** A cut whose validity rests only on named rows of the separating
    model, for {e cross-solve} persistence: [sum s_terms <= s_rhs]
    (structural ids, max |coeff| = 1) is valid for {e any} model that
    contains an equal copy of every row in [s_deps] (indices into the
    separating model's [Model.conss]) with the same variable boxes on
    the cut's support. Only the row-local families qualify — a cover
    cut depends on its knapsack row, a clique cut on the rows behind
    its conflict edges. Gomory cuts are never emitted here: they are
    derived through the basis inverse from {e all} rows, so no
    dependency list can license reuse. *)
type structural = {
  s_terms : (float * int) list;
  s_rhs : float;
  s_family : family;
  s_deps : int list;  (** source-row indices, sorted, duplicate-free *)
}

(** [separate_structural opts model ~point] runs one cover + clique
    separation round against [point] (structural values of [model]'s
    LP relaxation) and returns the violated candidates with their row
    dependencies — cleaned, normalized, most-violated-first, capped at
    [opts.pool_size]. Pure: builds a throwaway pool, bumps no counters,
    never touches [model]. *)
val separate_structural :
  options -> Model.t -> point:float array -> structural list

(** Active cuts in activation order (for tests and diagnostics). *)
val active_cuts : pool -> cut list

(** Compensated evaluation of the cut's left-hand side at a point. *)
val eval_cut : cut -> float array -> float

(** Domain-local cumulative counters ({!Lp_stats} discipline):
    candidates separated, cuts activated, cuts pruned by aging, and
    audit rejections. *)

val cumulative_generated : unit -> int
val cumulative_applied : unit -> int
val cumulative_pruned : unit -> int
val cumulative_audit_failures : unit -> int
