(** Sparse (CSC) standard form of a model, shared by the revised simplex.

    The internal form is [minimize c'x  s.t.  A x = b,  l <= x <= u] where
    the first [nv] columns are the model's structural variables and column
    [nv + i] is the logical (slack) column of row [i] with coefficient
    [+1]. Slack bounds encode the row sense: [Le] rows get [[0, +inf)],
    [Ge] rows [(-inf, 0]], [Eq] rows the fixed interval [[0, 0]]. The
    matrix depends only on the model's rows — never on variable bounds —
    so one [of_model] result is shared by every branch-and-bound node. *)

type t = private {
  m : int;  (** rows *)
  n : int;  (** columns: [nv] structurals + [m] slacks *)
  nv : int;  (** structural columns *)
  colptr : int array;  (** length [n + 1] *)
  rowind : int array;
  values : float array;
  b : float array;  (** row right-hand sides, length [m] *)
  cost : float array;
      (** minimization costs, length [n] (slack entries are [0.]) *)
  slack_lo : float array;  (** slack lower bounds, length [m] *)
  slack_hi : float array;  (** slack upper bounds, length [m] *)
}

(** Build the CSC standard form. The objective is normalized to
    minimization ([Maximize] objectives are negated). *)
val of_model : Model.t -> t

val nnz : t -> int

(** [col_iter a j f] applies [f row value] to every entry of column [j]. *)
val col_iter : t -> int -> (int -> float -> unit) -> unit

(** [col_dot a j y] is the dot product of column [j] with the dense
    row-indexed vector [y]. *)
val col_dot : t -> int -> float array -> float

(** [axpy_col a j alpha x] adds [alpha * column j] into the dense
    row-indexed vector [x]. *)
val axpy_col : t -> int -> float -> float array -> unit
