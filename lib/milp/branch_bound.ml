let src = Logs.Src.create "milp.bb" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  max_nodes : int;
  time_limit : float;
  abs_gap : float;
  rel_gap : float;
  int_tol : float;
  log : bool;
  branch_priority : int -> int;
  warm_start : float array option;
  plunge_hints : (int * float) list list;
  engine : Simplex.engine;
  sx_iters : int option;
  cuts : Cuts.options;
  pool : Parallel.Pool.t option;
  par_width : int;
  par_grain : int;
}

let default =
  {
    max_nodes = 200_000;
    time_limit = Float.infinity;
    abs_gap = 1e-6;
    rel_gap = 1e-6;
    int_tol = 1e-6;
    log = false;
    branch_priority = (fun _ -> 0);
    warm_start = None;
    plunge_hints = [];
    engine = Simplex.Revised;
    sx_iters = None;
    cuts = Cuts.default;
    pool = None;
    par_width = 32;
    par_grain = 64;
  }

type outcome = Optimal | Feasible | No_incumbent | Infeasible | Unbounded

(* Node counter. Domain-local like the simplex pivot counter, so a
   Parallel.Pool can aggregate per-domain deltas without races. *)
let nodes_key = Domain.DLS.new_key (fun () -> ref 0)
let cumulative_nodes () = !(Domain.DLS.get nodes_key)

let rounds_key = Domain.DLS.new_key (fun () -> ref 0)
let cumulative_rounds () = !(Domain.DLS.get rounds_key)

type stats = {
  nodes : int;
  simplex_iters : int;
  elapsed : float;
  rounds : int;
  dropped : int;
  dropped_key : float;
}

type t = {
  outcome : outcome;
  obj : float;
  bound : float;
  values : float array;
  stats : stats;
}

type node = {
  nlb : float array;
  nub : float array;
  depth : int;
  parent_bound : float;
  pbasis : Simplex.basis option;
      (* the parent's optimal basis — bound changes keep it dual
         feasible, so the child LP warm-starts in the dual simplex *)
  pgen : int;
      (* cut-pool generation [pbasis] was extracted under. Later
         generations only append cut rows as long as no pruning
         happened, so the basis extends with the new slacks
         (Simplex.extend_basis) and stays dual feasible; a basis from
         before the last pruning generation is unusable. *)
}

(* Heap ordering: prefer the better parent bound; bounds within a
   relative tolerance of each other count as ties and fall through to
   the depth tiebreak (diving). Exact float equality would make the
   tiebreak vanish under harmless last-bit noise in the LP objective,
   flattening the dive order. *)
let better_key (k1, d1) (k2, d2) =
  if k1 = k2 then d1 > d2
  else begin
    let tol = 1e-9 *. Float.max 1. (Float.min (Float.abs k1) (Float.abs k2)) in
    if Float.abs (k1 -. k2) <= tol then d1 > d2 else k1 > k2
  end

(* Max-heap of nodes keyed on (parent bound, depth): explore the most
   promising bound first, diving deeper on ties. *)
module Heap = struct
  type elt = { key : float; depth : int; node : node }
  type h = { mutable a : elt array; mutable len : int }

  let dummy_node =
    { nlb = [||]; nub = [||]; depth = 0; parent_bound = 0.; pbasis = None;
      pgen = 0 }
  let dummy = { key = neg_infinity; depth = 0; node = dummy_node }
  let create () = { a = Array.make 64 dummy; len = 0 }
  let better x y = better_key (x.key, x.depth) (y.key, y.depth)

  let push h e =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && better h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.len && better h.a.(l) h.a.(!best) then best := l;
        if r < h.len && better h.a.(r) h.a.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let tmp = h.a.(!best) in
          h.a.(!best) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !best
        end
      done;
      Some top
    end

  let best_key h = if h.len = 0 then None else Some h.a.(0).key
end

(* --- shared incumbent for concurrent subtree solves -------------------- *)

(* An incumbent candidate offered by a subtree task. [iorigin] is the
   task's frontier index — the canonical ordinal of the subtree in the
   round's deterministic pop order. Candidates are totally ordered:
   higher objective wins, ties go to the smaller origin (the subtree the
   sequential algorithm would have reached first). The final cell value
   is the maximum under that order, independent of CAS interleaving, so
   the merged incumbent is bit-identical across domain counts. *)
type inc_cand = { iobj : float; iorigin : int; ivalues : float array }

(* Monotone CAS publish: retry until [cand] is installed or provably not
   better than the current value under the total order. *)
let rec offer_incumbent cell cand =
  let cur = Atomic.get cell in
  let better =
    match cur with
    | None -> true
    | Some c ->
      cand.iobj > c.iobj || (cand.iobj = c.iobj && cand.iorigin < c.iorigin)
  in
  if better && not (Atomic.compare_and_set cell cur (Some cand)) then
    offer_incumbent cell cand

(* What a subtree task hands back at the round barrier. [tr_left] holds
   the open nodes the task did not process (grain budget or task-local
   gap stop), in the task's canonical best-first order. *)
type task_result = {
  tr_nodes : int;
  tr_iters : int;
  tr_dropped : int;
  tr_dropped_key : float;
  tr_left : Heap.elt list;
}

let solve ?(options = default) model =
  let t0 = Unix.gettimeofday () in
  let sense, _ = Model.objective model in
  (* Work internally as maximization. *)
  let osign = match sense with Model.Maximize -> 1. | Model.Minimize -> -1. in
  let int_ids = Array.of_list (Model.int_var_ids model) in
  let nv = Model.num_vars model in
  let lb0, ub0 = Model.bounds model in
  let nodes = ref 0 and simplex0 = Simplex.last_iterations () in
  (* Cutting planes. The pool holds globally valid <= rows over the
     structural variables; the active set is materialized by
     re-preparing the LP on an extended model whenever it changes.
     [gen] numbers the preparations, [last_prune] is the generation of
     the last active-set shrink: a basis from generation [g] extends to
     the current LP iff [g >= last_prune] (rows were only appended
     since). *)
  let copts = options.cuts in
  let pool =
    if
      copts.Cuts.enable
      && Array.length int_ids > 0
      && (copts.Cuts.root_rounds > 0 || copts.Cuts.node_interval > 0)
    then Some (Cuts.create copts model)
    else None
  in
  let rows_of m =
    Array.map (fun (c : Model.cons) -> (c.Model.lhs, c.Model.rhs)) (Model.conss m)
  in
  let prep = ref (Simplex.prepare model) in
  let xrows = ref (rows_of model) in
  let gen = ref 0 and last_prune = ref 0 in
  let cut_taint = ref false in
  let reprep () =
    match pool with
    | None -> ()
    | Some pool ->
      incr gen;
      let xm = Cuts.extend_model model pool in
      prep := Simplex.prepare xm;
      xrows := rows_of xm
  in
  (* [keep_factor]: bases extracted here are shared across child nodes —
     and, in parallel rounds, across concurrently solved subtrees — so
     publish the LU snapshot eagerly. Every warm start then reinstates
     in O(m) and the factorization counter stays schedule-independent. *)
  let lp ?warm ~lb ~ub () =
    Simplex.solve_prepared ~engine:options.engine ?max_iters:options.sx_iters
      ?warm ~keep_factor:true ~lb ~ub !prep
  in
  (* Nodes whose LP hit the iteration budget are dropped from the search,
     but their subtree is unexplored: remember the tightest parent bound
     over all of them so the final bound and outcome stay sound. *)
  let dropped = ref 0 in
  let dropped_bound = ref neg_infinity in
  let total_nodes = Domain.DLS.get nodes_key in
  let incumbent = ref None in
  let incumbent_obj = ref neg_infinity in
  let consider_incumbent values obj =
    if obj > !incumbent_obj then begin
      incumbent := Some (Array.copy values);
      incumbent_obj := obj;
      (* Certify-style audit: every active cut must admit the incumbent.
         A failure means an invalid cut may have pruned integer points,
         so drop it, rebuild the LP and taint the outcome (Optimal can
         no longer be claimed). *)
      (match pool with
      | Some pool when Cuts.active_count pool > 0 ->
        let removed = Cuts.audit_incumbent pool values in
        if removed > 0 then begin
          cut_taint := true;
          reprep ();
          last_prune := !gen;
          if options.log then
            Log.warn (fun f ->
                f "dropped %d cut(s) violated by the incumbent at node %d"
                  removed !nodes)
        end
      | Some _ | None -> ());
      if options.log then
        Log.info (fun f -> f "new incumbent %.6g at node %d" (osign *. obj) !nodes)
    end
  in
  (match options.warm_start with
  | Some v when Model.check_feasible ~tol:options.int_tol model v = None ->
    consider_incumbent v (osign *. Model.objective_value model v)
  | Some _ | None -> ());
  (* Plunge heuristic: from a node's bounds, repeatedly fix the most
     fractional integer variable to its rounded value and re-solve the
     LP. One flip retry per variable on infeasibility. Produces integral
     incumbents early, which best-first search alone can fail to do. *)
  let plunge ?basis nlb nub =
    let lb = Array.copy nlb and ub = Array.copy nub in
    let budget = (2 * Array.length int_ids) + 20 in
    (* each fixing step only tightens bounds, so the previous step's
       optimal basis warm-starts the next LP *)
    let warm = ref basis in
    let lp_step () =
      let r, fb = lp ?warm:!warm ~lb ~ub () in
      (match fb with Some _ -> warm := fb | None -> ());
      r
    in
    (* [go] consumes the LP result of the current bounds, so each fixing
       costs exactly one LP solve: the result of re-solving after a fix
       is threaded straight into the next recursion instead of being
       discarded and recomputed. *)
    let rec go iters res =
      if iters > budget then None
      else
        match res with
        | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit -> None
        | Simplex.Optimal { obj; values } ->
          let bound = osign *. obj in
          if bound <= !incumbent_obj +. options.abs_gap then None
          else begin
            (* most fractional *)
            let best = ref (-1) and best_frac = ref options.int_tol in
            Array.iter
              (fun id ->
                let x = values.(id) in
                let frac = Float.abs (x -. Float.round x) in
                if frac > !best_frac then begin
                  best := id;
                  best_frac := frac
                end)
              int_ids;
            if !best < 0 then Some (values, bound)
            else begin
              let id = !best in
              let r = Float.round values.(id) in
              let saved_lb = lb.(id) and saved_ub = ub.(id) in
              lb.(id) <- r;
              ub.(id) <- r;
              match lp_step () with
              | Simplex.Optimal _ as res' -> go (iters + 1) res'
              | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit ->
                (* flip once *)
                let r' = if r > values.(id) then Float.floor values.(id) else Float.ceil values.(id) in
                if r' >= saved_lb -. 1e-9 && r' <= saved_ub +. 1e-9 && r' <> r then begin
                  lb.(id) <- r';
                  ub.(id) <- r';
                  go (iters + 1) (lp_step ())
                end
                else None
            end
          end
    in
    go 0 (lp_step ())
  in
  let try_plunge ?basis nlb nub =
    match plunge ?basis nlb nub with
    | Some (values, obj) ->
      (match Model.check_feasible ~tol:(10. *. options.int_tol) model values with
      | None -> consider_incumbent values obj
      | Some _ -> ())
    | None -> ()
  in
  let find_fractional values =
    (* most fractional among the highest branch priority class *)
    let best = ref (-1) and best_pri = ref min_int and best_frac = ref options.int_tol in
    Array.iter
      (fun id ->
        let x = values.(id) in
        let frac = Float.abs (x -. Float.round x) in
        if frac > options.int_tol then begin
          let pri = options.branch_priority id in
          if pri > !best_pri || (pri = !best_pri && frac > !best_frac) then begin
            best := id;
            best_pri := pri;
            best_frac := frac
          end
        end)
      int_ids;
    if !best < 0 then None else Some !best
  in
  (* Seed incumbents from caller-provided partial assignments: fix the
     hinted variables and plunge. When a hint fixes all the structural
     binaries the plunge is a single LP solve. *)
  List.iter
    (fun hint ->
      let lb = Array.copy lb0 and ub = Array.copy ub0 in
      let ok =
        List.for_all
          (fun (id, v) ->
            id >= 0 && id < nv && v >= lb.(id) -. 1e-9 && v <= ub.(id) +. 1e-9)
          hint
      in
      if ok then begin
        List.iter
          (fun (id, v) ->
            lb.(id) <- v;
            ub.(id) <- v)
          hint;
        try_plunge lb ub
      end)
    options.plunge_hints;
  let heap = Heap.create () in
  let root =
    { nlb = lb0; nub = ub0; depth = 0; parent_bound = infinity; pbasis = None;
      pgen = 0 }
  in
  Heap.push heap { key = infinity; depth = 0; node = root };
  let status = ref `Running in
  let time_up () = Unix.gettimeofday () -. t0 > options.time_limit in
  let gap_closed bound =
    match !incumbent with
    | None -> false
    | Some _ ->
      bound -. !incumbent_obj <= options.abs_gap
      || bound -. !incumbent_obj <= options.rel_gap *. Float.max 1. (Float.abs !incumbent_obj)
  in
  (* One legacy best-first node step: pop, solve, separate, branch. This
     is the exact sequential algorithm; it also serves as the ramp-up
     and narrow-frontier path of the parallel scheduler below, so small
     trees behave exactly as before. *)
  let sequential_step () =
    match Heap.pop heap with
    | None -> status := `Exhausted
    | Some { key = parent_key; node; _ } ->
      if gap_closed parent_key then status := `Gap_closed
      else if !nodes >= options.max_nodes || time_up () then status := `Limit
      else begin
        incr nodes;
        incr total_nodes;
        (* lift the parent basis onto the current (possibly extended)
           LP; unusable shapes and pre-pruning generations cold-start *)
        let warm =
          match node.pbasis with
          | Some b when node.pgen >= !last_prune -> Simplex.extend_basis b !prep
          | Some _ | None -> None
        in
        match lp ?warm ~lb:node.nlb ~ub:node.nub () with
        | Simplex.Infeasible, _ -> ()
        | Simplex.Iter_limit, _ ->
          (* Unresolved node: re-queueing would loop, so the node is
             dropped — but its subtree may still hold the optimum, so its
             parent bound must survive into the final bound and the
             outcome may no longer claim optimality. *)
          incr dropped;
          if parent_key > !dropped_bound then dropped_bound := parent_key;
          if options.log then Log.warn (fun f -> f "simplex iteration limit at node %d" !nodes)
        | Simplex.Unbounded, _ ->
          if node.depth = 0 && !incumbent = None then status := `Unbounded_root
          else ()
        | Simplex.Optimal { obj; values }, fbasis ->
          if osign *. obj <= !incumbent_obj +. options.abs_gap then ()
            (* pruned *)
          else begin
            (* Cutting planes: a batch of rounds at the root, one round
               every [node_interval] in-tree nodes. Each round separates
               at the node's LP optimum, re-prepares the extended LP and
               re-solves — warm from the extended final basis when the
               active set only grew (appended rows keep it dual
               feasible), cold after a prune. *)
            let sep =
              match pool with
              | None -> `Ok (obj, values, fbasis)
              | Some pool ->
                let rounds =
                  if node.depth = 0 && !nodes = 1 then copts.Cuts.root_rounds
                  else if
                    copts.Cuts.node_interval > 0
                    && !nodes mod copts.Cuts.node_interval = 0
                  then 1
                  else 0
                in
                let rec cut_loop k obj values fbasis =
                  if k = 0 || find_fractional values = None then
                    `Ok (obj, values, fbasis)
                  else begin
                    let basis =
                      Option.map
                        (fun b ->
                          (Simplex.basis_cols b, Simplex.basis_statuses b))
                        fbasis
                    in
                    let added =
                      Cuts.separate_round pool
                        ~sp:(Simplex.prep_sparse !prep)
                        ~rows:!xrows ~point:values ~basis
                        ~incumbent:!incumbent
                    in
                    let pruned = Cuts.age_and_prune pool ~point:values in
                    if added = 0 && pruned = 0 then `Ok (obj, values, fbasis)
                    else begin
                      reprep ();
                      if pruned > 0 then last_prune := !gen;
                      let warm =
                        if pruned = 0 then
                          Option.bind fbasis (fun b ->
                              Simplex.extend_basis b !prep)
                        else None
                      in
                      match lp ?warm ~lb:node.nlb ~ub:node.nub () with
                      | Simplex.Optimal { obj; values }, fb ->
                        cut_loop (k - 1) obj values fb
                      | Simplex.Infeasible, _ -> `Cut_off
                      | Simplex.Iter_limit, _ -> `Budget
                      | Simplex.Unbounded, _ -> `Ok (obj, values, fbasis)
                    end
                  end
                in
                if rounds = 0 then `Ok (obj, values, fbasis)
                else cut_loop rounds obj values fbasis
            in
            match sep with
            | `Cut_off ->
              (* the tightened LP is infeasible: the (globally valid)
                 cuts prove the node holds no integer-feasible point *)
              ()
            | `Budget ->
              (* an in-loop LP hit the iteration budget: same contract
                 as the Iter_limit node outcome above *)
              incr dropped;
              if parent_key > !dropped_bound then dropped_bound := parent_key;
              if options.log then
                Log.warn (fun f ->
                    f "simplex iteration limit during cut rounds at node %d"
                      !nodes)
            | `Ok (obj, values, fbasis) ->
              let bound = osign *. obj in
              if bound <= !incumbent_obj +. options.abs_gap then () (* pruned *)
              else begin
                let branch_on id =
                  let x = values.(id) in
                  let fl = Float.floor x and ce = Float.ceil x in
                  let mk which =
                    let nlb = Array.copy node.nlb
                    and nub = Array.copy node.nub in
                    (match which with
                    | `Down -> nub.(id) <- fl
                    | `Up -> nlb.(id) <- ce);
                    if nlb.(id) <= nub.(id) +. 1e-12 then
                      Heap.push heap
                        {
                          key = bound;
                          depth = node.depth + 1;
                          node =
                            {
                              nlb;
                              nub;
                              depth = node.depth + 1;
                              parent_bound = bound;
                              pbasis = fbasis;
                              pgen = !gen;
                            };
                        }
                  in
                  (* dive toward the rounded value first (heap tiebreak
                     on depth) *)
                  if x -. fl > 0.5 then (mk `Down; mk `Up)
                  else (mk `Up; mk `Down)
                in
                match find_fractional values with
                | None -> consider_incumbent values bound
                | Some id ->
                  (* dive for an incumbent at the root and periodically
                     until one exists, then keep branching *)
                  if
                    !nodes = 1
                    || (!incumbent = None && !nodes mod 40 = 0)
                    || !nodes mod 400 = 0
                  then try_plunge ?basis:fbasis node.nlb node.nub;
                  if bound > !incumbent_obj +. options.abs_gap then
                    branch_on id
              end
          end
      end
  in
  (* --- parallel rounds --------------------------------------------------
     When the frontier is wide enough, a round drains the heap in
     canonical pop order into an array of subtree tasks. Each task is a
     pure function of (its root node, the round-start incumbent, the
     frozen LP/cut state): it explores its subtree best-first up to
     [par_grain] nodes with the same pruning rule, publishing incumbent
     candidates to a shared cell (monotone CAS under a total order) but
     never reading it mid-round. At the barrier, results merge in
     frontier index order — node counts, dropped-subtree accounting and
     the adopted incumbent are therefore bit-identical whether the tasks
     ran inline, on 2 domains or on 8. Cut separation and plunging stay
     owner-side (sequential steps and barriers), so the pool, [prep] and
     the incumbent refs are never touched concurrently. *)
  let par_width = if options.par_width <= 0 then max_int else max 2 options.par_width in
  let par_grain = max 1 options.par_grain in
  let rounds = ref 0 in
  (* Owner-side simplex iterations are metered as deltas of the
     domain-local counter between rounds ([sync_owner]); task iterations
     are metered inside each task on whatever domain ran it. Summing the
     two never double-counts — after an inline round the owner's counter
     advance is discarded via [mark] — and keeps [stats.simplex_iters]
     identical across pool widths. *)
  let task_iters = ref 0 in
  let seq_iters = ref 0 in
  let mark = ref simplex0 in
  let sync_owner () =
    let now = Simplex.last_iterations () in
    seq_iters := !seq_iters + (now - !mark);
    mark := now
  in
  let parallel_round () =
    match Heap.best_key heap with
    | None -> status := `Exhausted
    | Some top_key ->
      if gap_closed top_key then status := `Gap_closed
      else if !nodes >= options.max_nodes || time_up () then status := `Limit
      else begin
        sync_owner ();
        incr rounds;
        incr (Domain.DLS.get rounds_key);
        (* bound the round by the remaining node budget so [max_nodes]
           cannot be overshot by more than one round's grain *)
        let budget_tasks =
          let remaining = options.max_nodes - !nodes in
          max 1 ((remaining + par_grain - 1) / par_grain)
        in
        let ntasks = min heap.Heap.len (min (4 * par_width) budget_tasks) in
        let frontier = Array.make ntasks Heap.dummy in
        for i = 0 to ntasks - 1 do
          match Heap.pop heap with
          | Some e -> frontier.(i) <- e
          | None -> assert false
        done;
        (* freeze the LP and cut-pool state for the round: tasks solve
           against [prep0] read-only and tag children with [gen0] *)
        let prep0 = !prep and gen0 = !gen and last_prune0 = !last_prune in
        let inc0_obj = !incumbent_obj in
        let inc0_exists = !incumbent <> None in
        let cell = Atomic.make None in
        let task i (elt : Heap.elt) =
          let s0 = Simplex.last_iterations () in
          let total = Domain.DLS.get nodes_key in
          let lheap = Heap.create () in
          Heap.push lheap elt;
          let tn = ref 0 and tdropped = ref 0 and tdropped_key = ref neg_infinity in
          let lbest = ref inc0_obj and lhave = ref inc0_exists in
          let left = ref [] in
          let lgap_closed k =
            !lhave
            && (k -. !lbest <= options.abs_gap
                || k -. !lbest <= options.rel_gap *. Float.max 1. (Float.abs !lbest))
          in
          let stop = ref false in
          while not !stop do
            match Heap.pop lheap with
            | None -> stop := true
            | Some ({ key; node; _ } as e) ->
              (* a gap-closed top or an exhausted grain stops the task;
                 the node goes back unprocessed (the local heap is
                 best-first, so everything below it is no better) *)
              if lgap_closed key || !tn >= par_grain then begin
                left := [ e ];
                stop := true
              end
              else begin
                incr tn;
                incr total;
                let warm =
                  match node.pbasis with
                  | Some b when node.pgen >= last_prune0 ->
                    Simplex.extend_basis b prep0
                  | Some _ | None -> None
                in
                match
                  Simplex.solve_prepared ~engine:options.engine
                    ?max_iters:options.sx_iters ?warm ~keep_factor:true
                    ~lb:node.nlb ~ub:node.nub prep0
                with
                | Simplex.Infeasible, _ -> ()
                | Simplex.Unbounded, _ ->
                  (* in-tree nodes only (the root is always processed in
                     the sequential ramp), same as the sequential step *)
                  ()
                | Simplex.Iter_limit, _ ->
                  incr tdropped;
                  if key > !tdropped_key then tdropped_key := key
                | Simplex.Optimal { obj; values }, fbasis ->
                  let bound = osign *. obj in
                  if bound <= !lbest +. options.abs_gap then () (* pruned *)
                  else begin
                    match find_fractional values with
                    | None ->
                      if bound > !lbest then begin
                        lbest := bound;
                        lhave := true;
                        offer_incumbent cell
                          { iobj = bound; iorigin = i; ivalues = Array.copy values }
                      end
                    | Some id ->
                      let x = values.(id) in
                      let fl = Float.floor x and ce = Float.ceil x in
                      let mk which =
                        let nlb = Array.copy node.nlb and nub = Array.copy node.nub in
                        (match which with
                        | `Down -> nub.(id) <- fl
                        | `Up -> nlb.(id) <- ce);
                        if nlb.(id) <= nub.(id) +. 1e-12 then
                          Heap.push lheap
                            {
                              key = bound;
                              depth = node.depth + 1;
                              node =
                                {
                                  nlb;
                                  nub;
                                  depth = node.depth + 1;
                                  parent_bound = bound;
                                  pbasis = fbasis;
                                  pgen = gen0;
                                };
                            }
                      in
                      if x -. fl > 0.5 then (mk `Down; mk `Up) else (mk `Up; mk `Down)
                  end
              end
          done;
          let rec drain acc =
            match Heap.pop lheap with
            | None -> List.rev acc
            | Some e -> drain (e :: acc)
          in
          {
            tr_nodes = !tn;
            tr_iters = Simplex.last_iterations () - s0;
            tr_dropped = !tdropped;
            tr_dropped_key = !tdropped_key;
            tr_left = !left @ drain [];
          }
        in
        let results =
          match options.pool with
          | Some pool -> Parallel.Pool.mapi_array pool task frontier
          | None -> Array.mapi task frontier
        in
        (* inline tasks advanced the owner's counter; their iterations
           are already in [tr_iters], so drop the owner delta *)
        mark := Simplex.last_iterations ();
        Array.iter
          (fun tr ->
            nodes := !nodes + tr.tr_nodes;
            task_iters := !task_iters + tr.tr_iters;
            dropped := !dropped + tr.tr_dropped;
            if tr.tr_dropped_key > !dropped_bound then
              dropped_bound := tr.tr_dropped_key;
            List.iter (fun e -> Heap.push heap e) tr.tr_left)
          results;
        (* adopt the round's merged incumbent last: the cut audit inside
           may prune the pool and bump [last_prune], correctly voiding
           the leftover nodes' frozen-generation bases *)
        match Atomic.get cell with
        | Some w -> consider_incumbent w.ivalues w.iobj
        | None -> ()
      end
  in
  while !status = `Running do
    if heap.Heap.len >= par_width then parallel_round () else sequential_step ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let best_bound =
    let live =
      match (!status, Heap.best_key heap) with
      | `Exhausted, _ | `Gap_closed, None -> !incumbent_obj
      | _, Some k -> Float.max k !incumbent_obj
      | _, None -> !incumbent_obj
    in
    (* never report a bound below a dropped subtree's key *)
    Float.max live !dropped_bound
  in
  sync_owner ();
  let stats =
    {
      nodes = !nodes;
      simplex_iters = !seq_iters + !task_iters;
      elapsed;
      rounds = !rounds;
      dropped = !dropped;
      dropped_key = !dropped_bound;
    }
  in
  let values = match !incumbent with Some v -> v | None -> Array.make nv 0. in
  let mk outcome obj bound = { outcome; obj; bound; values; stats } in
  match (!status, !incumbent) with
  | `Unbounded_root, _ -> mk Unbounded infinity infinity
  | (`Exhausted | `Gap_closed), Some _ ->
    (* a dropped subtree may hold something better than the incumbent,
       and a cut that failed its incumbent audit may have pruned
       integer points before it was caught: either way exhausting the
       heap no longer proves optimality *)
    if !dropped > 0 || !cut_taint then
      mk Feasible (osign *. !incumbent_obj) (osign *. best_bound)
    else mk Optimal (osign *. !incumbent_obj) (osign *. best_bound)
  | `Exhausted, None ->
    if !dropped > 0 || !cut_taint then mk No_incumbent nan (osign *. best_bound)
    else mk Infeasible nan nan
  | `Limit, Some _ -> mk Feasible (osign *. !incumbent_obj) (osign *. best_bound)
  | (`Limit | `Gap_closed), None -> mk No_incumbent nan (osign *. best_bound)
  | `Running, _ -> assert false
