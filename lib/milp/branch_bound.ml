let src = Logs.Src.create "milp.bb" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

type branching = Reliability | Fractional

type options = {
  max_nodes : int;
  time_limit : float;
  abs_gap : float;
  rel_gap : float;
  int_tol : float;
  log : bool;
  branch_priority : int -> int;
  warm_start : float array option;
  plunge_hints : (int * float) list list;
  engine : Simplex.engine;
  sx_iters : int option;
  cuts : Cuts.options;
  pool : Parallel.Pool.t option;
  par_width : int;
  par_grain : int;
  branching : branching;
  heuristics : bool;
  rins_freq : int;
  on_incumbent : (float array -> unit) option;
}

let default =
  {
    max_nodes = 200_000;
    time_limit = Float.infinity;
    abs_gap = 1e-6;
    rel_gap = 1e-6;
    int_tol = 1e-6;
    log = false;
    branch_priority = (fun _ -> 0);
    warm_start = None;
    plunge_hints = [];
    engine = Simplex.Revised;
    sx_iters = None;
    cuts = Cuts.default;
    pool = None;
    par_width = 32;
    par_grain = 64;
    branching = Reliability;
    heuristics = true;
    rins_freq = 200;
    on_incumbent = None;
  }

type outcome = Optimal | Feasible | No_incumbent | Infeasible | Unbounded

(* Node counter. Domain-local like the simplex pivot counter, so a
   Parallel.Pool can aggregate per-domain deltas without races. *)
let nodes_key = Domain.DLS.new_key (fun () -> ref 0)
let cumulative_nodes () = !(Domain.DLS.get nodes_key)

let rounds_key = Domain.DLS.new_key (fun () -> ref 0)
let cumulative_rounds () = !(Domain.DLS.get rounds_key)

let cumulative_sb_probes () = Lp_stats.read Lp_stats.sb_probes ()
let cumulative_pseudocost_updates () = Lp_stats.read Lp_stats.pseudocost_updates ()
let cumulative_heuristic_solutions () = Lp_stats.read Lp_stats.heuristic_solutions ()
let cumulative_heuristic_rejections () = Lp_stats.read Lp_stats.heuristic_rejections ()

(* --- pseudocost / reliability branching -------------------------------- *)

(* Per-variable up/down degradation estimates, indexed by the variable's
   position in the solve's [int_ids]. [*_sum] accumulates observed bound
   degradations per unit of fractional distance, [*_cnt] the number of
   observations (strong-branching probes and real child LPs alike)
   backing the estimate. *)
type pc = {
  dn_sum : float array;
  dn_cnt : int array;
  up_sum : float array;
  up_cnt : int array;
}

let pc_create n =
  { dn_sum = Array.make n 0.; dn_cnt = Array.make n 0;
    up_sum = Array.make n 0.; up_cnt = Array.make n 0 }

let pc_copy pc =
  { dn_sum = Array.copy pc.dn_sum; dn_cnt = Array.copy pc.dn_cnt;
    up_sum = Array.copy pc.up_sum; up_cnt = Array.copy pc.up_cnt }

let pc_update pc pos ~up g =
  if up then begin
    pc.up_sum.(pos) <- pc.up_sum.(pos) +. g;
    pc.up_cnt.(pos) <- pc.up_cnt.(pos) + 1
  end
  else begin
    pc.dn_sum.(pos) <- pc.dn_sum.(pos) +. g;
    pc.dn_cnt.(pos) <- pc.dn_cnt.(pos) + 1
  end

(* Average observed pseudocost per direction — the standard initializer
   for variables without observations of their own; 1.0 when the table
   is empty, so fresh scores reduce to the product of fractionalities. *)
let pc_avg sum cnt =
  let s = ref 0. and n = ref 0 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        s := !s +. (sum.(i) /. float_of_int c);
        incr n
      end)
    cnt;
  if !n = 0 then 1.0 else !s /. float_of_int !n

let pc_reliability pc pos = min pc.dn_cnt.(pos) pc.up_cnt.(pos)

(* observations per direction before an estimate is trusted without a
   fresh strong-branching probe *)
let pc_rel_threshold = 4

(* strong-branching probe budget per node *)
let pc_probe_cap = 8

(* Fractional candidates restricted to the highest branch-priority
   class, in ascending variable-id order. *)
let branch_candidates ~int_tol ~priority int_ids values =
  let best_pri = ref min_int in
  Array.iter
    (fun id ->
      if Float.abs (values.(id) -. Float.round values.(id)) > int_tol then begin
        let pri = priority id in
        if pri > !best_pri then best_pri := pri
      end)
    int_ids;
  if !best_pri = min_int then [||]
  else
    Array.of_seq
      (Seq.filter
         (fun id ->
           Float.abs (values.(id) -. Float.round values.(id)) > int_tol
           && priority id = !best_pri)
         (Array.to_seq int_ids))

(* Pseudocost selection under the product rule. [gains] optionally
   carries per-candidate strong-branching measurements for this node
   ([nan] = no measurement for that direction, [infinity] = the probe
   proved the child infeasible — the best possible branching outcome).
   Candidates arrive in ascending id order and only a strictly better
   score displaces the leader, so ties break deterministically to the
   lowest variable id. *)
let pc_select pc ~ipos ?gains cands values =
  let avg_dn = pc_avg pc.dn_sum pc.dn_cnt in
  let avg_up = pc_avg pc.up_sum pc.up_cnt in
  let best = ref (-1) and best_score = ref neg_infinity in
  Array.iteri
    (fun k id ->
      let pos = ipos.(id) in
      let x = values.(id) in
      let fd = x -. Float.floor x and fu = Float.ceil x -. x in
      let est sum cnt avg = if cnt > 0 then sum /. float_of_int cnt else avg in
      let gd, gu = match gains with Some g -> g.(k) | None -> (nan, nan) in
      let dd =
        if Float.is_nan gd then est pc.dn_sum.(pos) pc.dn_cnt.(pos) avg_dn *. fd
        else gd
      and du =
        if Float.is_nan gu then est pc.up_sum.(pos) pc.up_cnt.(pos) avg_up *. fu
        else gu
      in
      let score = Float.max dd 1e-6 *. Float.max du 1e-6 in
      if score > !best_score then begin
        best := id;
        best_score := score
      end)
    cands;
  if !best < 0 then None else Some !best

type stats = {
  nodes : int;
  simplex_iters : int;
  elapsed : float;
  rounds : int;
  dropped : int;
  dropped_key : float;
}

type t = {
  outcome : outcome;
  obj : float;
  bound : float;
  values : float array;
  stats : stats;
}

type node = {
  nlb : float array;
  nub : float array;
  depth : int;
  parent_bound : float;
  pbasis : Simplex.basis option;
      (* the parent's optimal basis — bound changes keep it dual
         feasible, so the child LP warm-starts in the dual simplex *)
  pgen : int;
      (* cut-pool generation [pbasis] was extracted under. Later
         generations only append cut rows as long as no pruning
         happened, so the basis extends with the new slacks
         (Simplex.extend_basis) and stays dual feasible; a basis from
         before the last pruning generation is unusable. *)
  bvar : int;
      (* variable the parent branched on to create this node (-1 at the
         root): solving this node's LP measures the true bound
         degradation of that decision, feeding the pseudocost table *)
  bup : bool;  (* branch direction *)
  bfrac : float;  (* fractional distance covered by the branch *)
}

(* Heap ordering: prefer the better parent bound; bounds within a
   relative tolerance of each other count as ties and fall through to
   the depth tiebreak (diving). Exact float equality would make the
   tiebreak vanish under harmless last-bit noise in the LP objective,
   flattening the dive order. *)
let better_key (k1, d1) (k2, d2) =
  if k1 = k2 then d1 > d2
  else begin
    let tol = 1e-9 *. Float.max 1. (Float.min (Float.abs k1) (Float.abs k2)) in
    if Float.abs (k1 -. k2) <= tol then d1 > d2 else k1 > k2
  end

(* Max-heap of nodes keyed on (parent bound, depth): explore the most
   promising bound first, diving deeper on ties. *)
module Heap = struct
  type elt = { key : float; depth : int; node : node }
  type h = { mutable a : elt array; mutable len : int }

  let dummy_node =
    { nlb = [||]; nub = [||]; depth = 0; parent_bound = 0.; pbasis = None;
      pgen = 0; bvar = -1; bup = false; bfrac = 0. }
  let dummy = { key = neg_infinity; depth = 0; node = dummy_node }
  let create () = { a = Array.make 64 dummy; len = 0 }
  let better x y = better_key (x.key, x.depth) (y.key, y.depth)

  let push h e =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && better h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.len && better h.a.(l) h.a.(!best) then best := l;
        if r < h.len && better h.a.(r) h.a.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let tmp = h.a.(!best) in
          h.a.(!best) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !best
        end
      done;
      Some top
    end

  let best_key h = if h.len = 0 then None else Some h.a.(0).key
end

(* --- shared incumbent for concurrent subtree solves -------------------- *)

(* An incumbent candidate offered by a subtree task. [iorigin] is the
   task's frontier index — the canonical ordinal of the subtree in the
   round's deterministic pop order. Candidates are totally ordered:
   higher objective wins, ties go to the smaller origin (the subtree the
   sequential algorithm would have reached first). The final cell value
   is the maximum under that order, independent of CAS interleaving, so
   the merged incumbent is bit-identical across domain counts. *)
type inc_cand = { iobj : float; iorigin : int; ivalues : float array }

(* Monotone CAS publish: retry until [cand] is installed or provably not
   better than the current value under the total order. *)
let rec offer_incumbent cell cand =
  let cur = Atomic.get cell in
  let better =
    match cur with
    | None -> true
    | Some c ->
      cand.iobj > c.iobj || (cand.iobj = c.iobj && cand.iorigin < c.iorigin)
  in
  if better && not (Atomic.compare_and_set cell cur (Some cand)) then
    offer_incumbent cell cand

(* What a subtree task hands back at the round barrier. [tr_left] holds
   the open nodes the task did not process (grain budget or task-local
   gap stop), in the task's canonical best-first order. *)
type task_result = {
  tr_nodes : int;
  tr_iters : int;
  tr_dropped : int;
  tr_dropped_key : float;
  tr_left : Heap.elt list;
  tr_pc : (int * bool * float) list;
      (* pseudocost observations (position, direction, gain-per-frac) in
         the task's generation order, merged into the master table at
         the barrier in frontier index order *)
}

let solve ?(options = default) model =
  let t0 = Unix.gettimeofday () in
  let sense, _ = Model.objective model in
  (* Work internally as maximization. *)
  let osign = match sense with Model.Maximize -> 1. | Model.Minimize -> -1. in
  let int_ids = Array.of_list (Model.int_var_ids model) in
  let nv = Model.num_vars model in
  let nint = Array.length int_ids in
  let ipos = Array.make (max nv 1) (-1) in
  Array.iteri (fun k id -> ipos.(id) <- k) int_ids;
  let pc = pc_create nint in
  let reliability = options.branching = Reliability && nint > 0 in
  let lb0, ub0 = Model.bounds model in
  let nodes = ref 0 and simplex0 = Simplex.last_iterations () in
  (* Cutting planes. The pool holds globally valid <= rows over the
     structural variables; the active set is materialized by
     re-preparing the LP on an extended model whenever it changes.
     [gen] numbers the preparations, [last_prune] is the generation of
     the last active-set shrink: a basis from generation [g] extends to
     the current LP iff [g >= last_prune] (rows were only appended
     since). *)
  let copts = options.cuts in
  let pool =
    if
      copts.Cuts.enable
      && Array.length int_ids > 0
      && (copts.Cuts.root_rounds > 0 || copts.Cuts.node_interval > 0)
    then Some (Cuts.create copts model)
    else None
  in
  let rows_of m =
    Array.map (fun (c : Model.cons) -> (c.Model.lhs, c.Model.rhs)) (Model.conss m)
  in
  let prep = ref (Simplex.prepare model) in
  let xrows = ref (rows_of model) in
  let gen = ref 0 and last_prune = ref 0 in
  let cut_taint = ref false in
  let reprep () =
    match pool with
    | None -> ()
    | Some pool ->
      incr gen;
      let xm = Cuts.extend_model model pool in
      prep := Simplex.prepare xm;
      xrows := rows_of xm
  in
  (* [keep_factor]: bases extracted here are shared across child nodes —
     and, in parallel rounds, across concurrently solved subtrees — so
     publish the LU snapshot eagerly. Every warm start then reinstates
     in O(m) and the factorization counter stays schedule-independent. *)
  let lp ?warm ~lb ~ub () =
    Simplex.solve_prepared ~engine:options.engine ?max_iters:options.sx_iters
      ?warm ~keep_factor:true ~lb ~ub !prep
  in
  (* Nodes whose LP hit the iteration budget are dropped from the search,
     but their subtree is unexplored: remember the tightest parent bound
     over all of them so the final bound and outcome stay sound. *)
  let dropped = ref 0 in
  let dropped_bound = ref neg_infinity in
  let total_nodes = Domain.DLS.get nodes_key in
  let incumbent = ref None in
  let incumbent_obj = ref neg_infinity in
  let consider_incumbent values obj =
    if obj > !incumbent_obj then begin
      incumbent := Some (Array.copy values);
      incumbent_obj := obj;
      (* Certify-style audit: every active cut must admit the incumbent.
         A failure means an invalid cut may have pruned integer points,
         so drop it, rebuild the LP and taint the outcome (Optimal can
         no longer be claimed). *)
      (match pool with
      | Some pool when Cuts.active_count pool > 0 ->
        let removed = Cuts.audit_incumbent pool values in
        if removed > 0 then begin
          cut_taint := true;
          reprep ();
          last_prune := !gen;
          if options.log then
            Log.warn (fun f ->
                f "dropped %d cut(s) violated by the incumbent at node %d"
                  removed !nodes)
        end
      | Some _ | None -> ());
      if options.log then
        Log.info (fun f -> f "new incumbent %.6g at node %d" (osign *. obj) !nodes)
    end
  in
  (match options.warm_start with
  | Some v when Model.check_feasible ~tol:options.int_tol model v = None ->
    consider_incumbent v (osign *. Model.objective_value model v)
  | Some _ | None -> ());
  (* Primal heuristics ({!Heuristics}): LP-guided diving (the original
     plunge), a feasibility pump, and RINS. They produce integral
     incumbents early, which best-first search alone can fail to do. *)
  let heur_env =
    {
      Heuristics.lp = (fun warm ~lb ~ub -> lp ?warm ~lb ~ub ());
      int_ids;
      int_tol = options.int_tol;
      abs_gap = options.abs_gap;
      osign;
      cutoff = (fun () -> !incumbent_obj);
    }
  in
  (* Unified incumbent gate: every heuristic candidate is re-checked
     against the original model at [options.int_tol] — the same
     tolerance the warm-start path uses and the certifier enforces — so
     no admitted incumbent can later be certify-rejected. A candidate
     failing here is counted and dropped instead of silently pruning
     the tree and failing certification afterwards. *)
  let try_candidate ~what cand =
    match cand with
    | None -> ()
    | Some (values, obj) -> (
      match Model.check_feasible ~tol:options.int_tol model values with
      | None ->
        Lp_stats.incr Lp_stats.heuristic_solutions;
        (match options.on_incumbent with Some f -> f values | None -> ());
        consider_incumbent values obj
      | Some reason ->
        Lp_stats.incr Lp_stats.heuristic_rejections;
        if options.log then
          Log.warn (fun f ->
              f "%s incumbent rejected at node %d: %s" what !nodes reason))
  in
  let find_fractional values =
    (* most fractional among the highest branch priority class *)
    let best = ref (-1) and best_pri = ref min_int and best_frac = ref options.int_tol in
    Array.iter
      (fun id ->
        let x = values.(id) in
        let frac = Float.abs (x -. Float.round x) in
        if frac > options.int_tol then begin
          let pri = options.branch_priority id in
          if pri > !best_pri || (pri = !best_pri && frac > !best_frac) then begin
            best := id;
            best_pri := pri;
            best_frac := frac
          end
        end)
      int_ids;
    if !best < 0 then None else Some !best
  in
  (* Seed incumbents from caller-provided partial assignments: fix the
     hinted variables and plunge. When a hint fixes all the structural
     binaries the plunge is a single LP solve. *)
  List.iter
    (fun hint ->
      let lb = Array.copy lb0 and ub = Array.copy ub0 in
      (* hint values must sit inside the root bounds to within the
         solver's configured integrality tolerance — the same epsilon
         the incumbent gate enforces, not an unrelated hardcoded one *)
      let ok =
        List.for_all
          (fun (id, v) ->
            id >= 0 && id < nv
            && v >= lb.(id) -. options.int_tol
            && v <= ub.(id) +. options.int_tol)
          hint
      in
      if ok then begin
        List.iter
          (fun (id, v) ->
            lb.(id) <- v;
            ub.(id) <- v)
          hint;
        try_candidate ~what:"hint dive" (Heuristics.dive heur_env lb ub)
      end)
    options.plunge_hints;
  (* Reliability branching, owner-side: strong-branching probes
     initialize the pseudocosts of unreliable candidates (most
     fractional first, a bounded number per node), then the product
     rule scores every candidate. Probes are ordinary dual-warm LP
     solves against the current prepared LP, so their iterations land
     in the owner's deterministic meter. *)
  let reliability_branch ~nlb ~nub ~fbasis ~bound values =
    let cands =
      branch_candidates ~int_tol:options.int_tol
        ~priority:options.branch_priority int_ids values
    in
    if Array.length cands = 0 then None
    else begin
      let gains = Array.make (Array.length cands) (nan, nan) in
      let frac id = Float.abs (values.(id) -. Float.round values.(id)) in
      let order = Array.init (Array.length cands) Fun.id in
      Array.sort
        (fun a b ->
          let fa = frac cands.(a) and fb = frac cands.(b) in
          if fa = fb then compare cands.(a) cands.(b) else compare fb fa)
        order;
      let probed = ref 0 in
      Array.iter
        (fun k ->
          let id = cands.(k) in
          let pos = ipos.(id) in
          if !probed < pc_probe_cap && pc_reliability pc pos < pc_rel_threshold
          then begin
            incr probed;
            let x = values.(id) in
            let probe up =
              Lp_stats.incr Lp_stats.sb_probes;
              let lb = Array.copy nlb and ub = Array.copy nub in
              if up then lb.(id) <- Float.ceil x else ub.(id) <- Float.floor x;
              match lp ?warm:fbasis ~lb ~ub () with
              | Simplex.Optimal { obj; _ }, _ ->
                let g = Float.max 0. (bound -. (osign *. obj)) in
                let f =
                  Float.max options.int_tol
                    (if up then Float.ceil x -. x else x -. Float.floor x)
                in
                pc_update pc pos ~up (g /. f);
                Lp_stats.incr Lp_stats.pseudocost_updates;
                g
              | Simplex.Infeasible, _ -> infinity
              | (Simplex.Unbounded | Simplex.Iter_limit), _ -> nan
            in
            let gd = probe false in
            let gu = probe true in
            gains.(k) <- (gd, gu)
          end)
        order;
      (* hand the selected variable's probe gains back to the caller:
         they are valid child LP bounds, so branching can push the
         children under probe-tightened keys (or skip a probe-proven
         infeasible child outright) *)
      match pc_select pc ~ipos ~gains cands values with
      | None -> None
      | Some id ->
        let sel = ref (nan, nan) in
        Array.iteri (fun k c -> if c = id then sel := gains.(k)) cands;
        let gd, gu = !sel in
        Some (id, gd, gu)
    end
  in
  (* Heuristic schedule, owner-side: dive at the root, periodically
     until an incumbent exists and occasionally after (the original
     plunge cadence); the feasibility pump backs the dive up while no
     incumbent exists; RINS explores the incumbent/relaxation
     neighborhood every [rins_freq] nodes. *)
  let run_heuristics ~fbasis ~values ~nlb ~nub =
    let dive_now =
      !nodes = 1
      || (!incumbent = None && !nodes mod 40 = 0)
      || !nodes mod 400 = 0
    in
    if dive_now then begin
      try_candidate ~what:"dive" (Heuristics.dive heur_env ?basis:fbasis nlb nub);
      if options.heuristics && !incumbent = None then
        try_candidate ~what:"pump"
          (Heuristics.pump heur_env ?basis:fbasis ~relax:values nlb nub)
    end;
    if
      options.heuristics && options.rins_freq > 0 && !nodes > 1
      && !nodes mod options.rins_freq = 0
    then
      match !incumbent with
      | Some inc ->
        try_candidate ~what:"rins"
          (Heuristics.rins heur_env ?basis:fbasis ~incumbent:inc ~relax:values
             nlb nub)
      | None -> ()
  in
  let heap = Heap.create () in
  let root =
    { nlb = lb0; nub = ub0; depth = 0; parent_bound = infinity; pbasis = None;
      pgen = 0; bvar = -1; bup = false; bfrac = 0. }
  in
  Heap.push heap { key = infinity; depth = 0; node = root };
  let status = ref `Running in
  let time_up () = Unix.gettimeofday () -. t0 > options.time_limit in
  let gap_closed bound =
    match !incumbent with
    | None -> false
    | Some _ ->
      bound -. !incumbent_obj <= options.abs_gap
      || bound -. !incumbent_obj <= options.rel_gap *. Float.max 1. (Float.abs !incumbent_obj)
  in
  (* One legacy best-first node step: pop, solve, separate, branch. This
     is the exact sequential algorithm; it also serves as the ramp-up
     and narrow-frontier path of the parallel scheduler below, so small
     trees behave exactly as before. *)
  let sequential_step () =
    match Heap.pop heap with
    | None -> status := `Exhausted
    | Some { key = parent_key; node; _ } ->
      if gap_closed parent_key then status := `Gap_closed
      else if !nodes >= options.max_nodes || time_up () then status := `Limit
      else begin
        incr nodes;
        incr total_nodes;
        (* lift the parent basis onto the current (possibly extended)
           LP; unusable shapes and pre-pruning generations cold-start *)
        let warm =
          match node.pbasis with
          | Some b when node.pgen >= !last_prune -> Simplex.extend_basis b !prep
          | Some _ | None -> None
        in
        match lp ?warm ~lb:node.nlb ~ub:node.nub () with
        | Simplex.Infeasible, _ -> ()
        | Simplex.Iter_limit, _ ->
          (* Unresolved node: re-queueing would loop, so the node is
             dropped — but its subtree may still hold the optimum, so its
             parent bound must survive into the final bound and the
             outcome may no longer claim optimality. *)
          incr dropped;
          if parent_key > !dropped_bound then dropped_bound := parent_key;
          if options.log then Log.warn (fun f -> f "simplex iteration limit at node %d" !nodes)
        | Simplex.Unbounded, _ ->
          if node.depth = 0 && !incumbent = None then status := `Unbounded_root
          else ()
        | Simplex.Optimal { obj; values }, fbasis ->
          (* pseudocost observation: this node's raw LP measures the
             true bound degradation of the parent's branching decision *)
          if reliability && node.bvar >= 0 then begin
            let g = Float.max 0. (node.parent_bound -. (osign *. obj)) in
            pc_update pc ipos.(node.bvar) ~up:node.bup
              (g /. Float.max node.bfrac options.int_tol);
            Lp_stats.incr Lp_stats.pseudocost_updates
          end;
          if osign *. obj <= !incumbent_obj +. options.abs_gap then ()
            (* pruned *)
          else begin
            (* Cutting planes: a batch of rounds at the root, one round
               every [node_interval] in-tree nodes. Each round separates
               at the node's LP optimum, re-prepares the extended LP and
               re-solves — warm from the extended final basis when the
               active set only grew (appended rows keep it dual
               feasible), cold after a prune. *)
            let sep =
              match pool with
              | None -> `Ok (obj, values, fbasis)
              | Some pool ->
                let rounds =
                  if node.depth = 0 && !nodes = 1 then copts.Cuts.root_rounds
                  else if
                    copts.Cuts.node_interval > 0
                    && !nodes mod copts.Cuts.node_interval = 0
                  then 1
                  else 0
                in
                let rec cut_loop k obj values fbasis =
                  if k = 0 || find_fractional values = None then
                    `Ok (obj, values, fbasis)
                  else begin
                    let basis =
                      Option.map
                        (fun b ->
                          (Simplex.basis_cols b, Simplex.basis_statuses b))
                        fbasis
                    in
                    let added =
                      Cuts.separate_round pool
                        ~sp:(Simplex.prep_sparse !prep)
                        ~rows:!xrows ~point:values ~basis
                        ~incumbent:!incumbent
                    in
                    let pruned = Cuts.age_and_prune pool ~point:values in
                    if added = 0 && pruned = 0 then `Ok (obj, values, fbasis)
                    else begin
                      reprep ();
                      if pruned > 0 then last_prune := !gen;
                      let warm =
                        if pruned = 0 then
                          Option.bind fbasis (fun b ->
                              Simplex.extend_basis b !prep)
                        else None
                      in
                      match lp ?warm ~lb:node.nlb ~ub:node.nub () with
                      | Simplex.Optimal { obj; values }, fb ->
                        cut_loop (k - 1) obj values fb
                      | Simplex.Infeasible, _ -> `Cut_off
                      | Simplex.Iter_limit, _ -> `Budget
                      | Simplex.Unbounded, _ -> `Ok (obj, values, fbasis)
                    end
                  end
                in
                if rounds = 0 then `Ok (obj, values, fbasis)
                else cut_loop rounds obj values fbasis
            in
            match sep with
            | `Cut_off ->
              (* the tightened LP is infeasible: the (globally valid)
                 cuts prove the node holds no integer-feasible point *)
              ()
            | `Budget ->
              (* an in-loop LP hit the iteration budget: same contract
                 as the Iter_limit node outcome above *)
              incr dropped;
              if parent_key > !dropped_bound then dropped_bound := parent_key;
              if options.log then
                Log.warn (fun f ->
                    f "simplex iteration limit during cut rounds at node %d"
                      !nodes)
            | `Ok (obj, values, fbasis) ->
              let bound = osign *. obj in
              if bound <= !incumbent_obj +. options.abs_gap then () (* pruned *)
              else begin
                let branch_on id gd gu =
                  let x = values.(id) in
                  let fl = Float.floor x and ce = Float.ceil x in
                  let mk which =
                    let nlb = Array.copy node.nlb
                    and nub = Array.copy node.nub in
                    let up = which = `Up in
                    (match which with
                    | `Down -> nub.(id) <- fl
                    | `Up -> nlb.(id) <- ce);
                    (* a strong-branching probe of this child already
                       solved its LP: its measured bound is the child's
                       true key, so push under it — best-first then never
                       pops the child once the gap closes over it — and an
                       infinite gain (probe-infeasible child) skips the
                       push entirely *)
                    let g = if up then gu else gd in
                    let key = if Float.is_nan g then bound else bound -. g in
                    if nlb.(id) <= nub.(id) +. 1e-12 && key > neg_infinity then
                      Heap.push heap
                        {
                          key;
                          depth = node.depth + 1;
                          node =
                            {
                              nlb;
                              nub;
                              depth = node.depth + 1;
                              parent_bound = bound;
                              pbasis = fbasis;
                              pgen = !gen;
                              bvar = id;
                              bup = up;
                              bfrac = (if up then ce -. x else x -. fl);
                            };
                        }
                  in
                  (* dive toward the rounded value first (heap tiebreak
                     on depth) *)
                  if x -. fl > 0.5 then (mk `Down; mk `Up)
                  else (mk `Up; mk `Down)
                in
                let pick =
                  if reliability then
                    reliability_branch ~nlb:node.nlb ~nub:node.nub ~fbasis
                      ~bound values
                  else
                    Option.map (fun id -> (id, nan, nan))
                      (find_fractional values)
                in
                match pick with
                | None -> consider_incumbent values bound
                | Some (id, gd, gu) ->
                  run_heuristics ~fbasis ~values ~nlb:node.nlb ~nub:node.nub;
                  if bound > !incumbent_obj +. options.abs_gap then
                    branch_on id gd gu
              end
          end
      end
  in
  (* --- parallel rounds --------------------------------------------------
     When the frontier is wide enough, a round drains the heap in
     canonical pop order into an array of subtree tasks. Each task is a
     pure function of (its root node, the round-start incumbent, the
     frozen LP/cut state): it explores its subtree best-first up to
     [par_grain] nodes with the same pruning rule, publishing incumbent
     candidates to a shared cell (monotone CAS under a total order) but
     never reading it mid-round. At the barrier, results merge in
     frontier index order — node counts, dropped-subtree accounting and
     the adopted incumbent are therefore bit-identical whether the tasks
     ran inline, on 2 domains or on 8. Cut separation and plunging stay
     owner-side (sequential steps and barriers), so the pool, [prep] and
     the incumbent refs are never touched concurrently. *)
  let par_width = if options.par_width <= 0 then max_int else max 2 options.par_width in
  let par_grain = max 1 options.par_grain in
  let rounds = ref 0 in
  (* Owner-side simplex iterations are metered as deltas of the
     domain-local counter between rounds ([sync_owner]); task iterations
     are metered inside each task on whatever domain ran it. Summing the
     two never double-counts — after an inline round the owner's counter
     advance is discarded via [mark] — and keeps [stats.simplex_iters]
     identical across pool widths. *)
  let task_iters = ref 0 in
  let seq_iters = ref 0 in
  let mark = ref simplex0 in
  let sync_owner () =
    let now = Simplex.last_iterations () in
    seq_iters := !seq_iters + (now - !mark);
    mark := now
  in
  let parallel_round () =
    match Heap.best_key heap with
    | None -> status := `Exhausted
    | Some top_key ->
      if gap_closed top_key then status := `Gap_closed
      else if !nodes >= options.max_nodes || time_up () then status := `Limit
      else begin
        sync_owner ();
        incr rounds;
        incr (Domain.DLS.get rounds_key);
        (* bound the round by the remaining node budget so [max_nodes]
           cannot be overshot by more than one round's grain *)
        let budget_tasks =
          let remaining = options.max_nodes - !nodes in
          max 1 ((remaining + par_grain - 1) / par_grain)
        in
        let ntasks = min heap.Heap.len (min (4 * par_width) budget_tasks) in
        let frontier = Array.make ntasks Heap.dummy in
        for i = 0 to ntasks - 1 do
          match Heap.pop heap with
          | Some e -> frontier.(i) <- e
          | None -> assert false
        done;
        (* freeze the LP and cut-pool state for the round: tasks solve
           against [prep0] read-only and tag children with [gen0] *)
        let prep0 = !prep and gen0 = !gen and last_prune0 = !last_prune in
        let inc0_obj = !incumbent_obj in
        let inc0_exists = !incumbent <> None in
        let cell = Atomic.make None in
        let task i (elt : Heap.elt) =
          let s0 = Simplex.last_iterations () in
          let total = Domain.DLS.get nodes_key in
          let lheap = Heap.create () in
          Heap.push lheap elt;
          (* Pseudocost state is frozen for the round like the cut pool:
             each task branches on a private copy of the table extended
             by its own observations only, and hands the observation log
             back for a deterministic frontier-order merge. The master
             table is read-only until the barrier, so the copies are
             identical whether tasks run inline or on any pool width. *)
          let lpc = if reliability then pc_copy pc else pc in
          let tpc = ref [] in
          let tn = ref 0 and tdropped = ref 0 and tdropped_key = ref neg_infinity in
          let lbest = ref inc0_obj and lhave = ref inc0_exists in
          let left = ref [] in
          let lgap_closed k =
            !lhave
            && (k -. !lbest <= options.abs_gap
                || k -. !lbest <= options.rel_gap *. Float.max 1. (Float.abs !lbest))
          in
          let stop = ref false in
          while not !stop do
            match Heap.pop lheap with
            | None -> stop := true
            | Some ({ key; node; _ } as e) ->
              (* a gap-closed top or an exhausted grain stops the task;
                 the node goes back unprocessed (the local heap is
                 best-first, so everything below it is no better) *)
              if lgap_closed key || !tn >= par_grain then begin
                left := [ e ];
                stop := true
              end
              else begin
                incr tn;
                incr total;
                let warm =
                  match node.pbasis with
                  | Some b when node.pgen >= last_prune0 ->
                    Simplex.extend_basis b prep0
                  | Some _ | None -> None
                in
                match
                  Simplex.solve_prepared ~engine:options.engine
                    ?max_iters:options.sx_iters ?warm ~keep_factor:true
                    ~lb:node.nlb ~ub:node.nub prep0
                with
                | Simplex.Infeasible, _ -> ()
                | Simplex.Unbounded, _ ->
                  (* in-tree nodes only (the root is always processed in
                     the sequential ramp), same as the sequential step *)
                  ()
                | Simplex.Iter_limit, _ ->
                  incr tdropped;
                  if key > !tdropped_key then tdropped_key := key
                | Simplex.Optimal { obj; values }, fbasis ->
                  if reliability && node.bvar >= 0 then begin
                    let g = Float.max 0. (node.parent_bound -. (osign *. obj)) in
                    let gpf = g /. Float.max node.bfrac options.int_tol in
                    pc_update lpc ipos.(node.bvar) ~up:node.bup gpf;
                    Lp_stats.incr Lp_stats.pseudocost_updates;
                    tpc := (ipos.(node.bvar), node.bup, gpf) :: !tpc
                  end;
                  let bound = osign *. obj in
                  if bound <= !lbest +. options.abs_gap then () (* pruned *)
                  else begin
                    (* pure pseudocost selection in-task: no probes (the
                       frozen LP would make them owner-state-dependent),
                       same deterministic product rule *)
                    let pick =
                      if reliability then
                        pc_select lpc ~ipos
                          (branch_candidates ~int_tol:options.int_tol
                             ~priority:options.branch_priority int_ids values)
                          values
                      else find_fractional values
                    in
                    match pick with
                    | None ->
                      if bound > !lbest then begin
                        lbest := bound;
                        lhave := true;
                        offer_incumbent cell
                          { iobj = bound; iorigin = i; ivalues = Array.copy values }
                      end
                    | Some id ->
                      let x = values.(id) in
                      let fl = Float.floor x and ce = Float.ceil x in
                      let mk which =
                        let nlb = Array.copy node.nlb and nub = Array.copy node.nub in
                        let up = which = `Up in
                        (match which with
                        | `Down -> nub.(id) <- fl
                        | `Up -> nlb.(id) <- ce);
                        if nlb.(id) <= nub.(id) +. 1e-12 then
                          Heap.push lheap
                            {
                              key = bound;
                              depth = node.depth + 1;
                              node =
                                {
                                  nlb;
                                  nub;
                                  depth = node.depth + 1;
                                  parent_bound = bound;
                                  pbasis = fbasis;
                                  pgen = gen0;
                                  bvar = id;
                                  bup = up;
                                  bfrac = (if up then ce -. x else x -. fl);
                                };
                            }
                      in
                      if x -. fl > 0.5 then (mk `Down; mk `Up) else (mk `Up; mk `Down)
                  end
              end
          done;
          let rec drain acc =
            match Heap.pop lheap with
            | None -> List.rev acc
            | Some e -> drain (e :: acc)
          in
          {
            tr_nodes = !tn;
            tr_iters = Simplex.last_iterations () - s0;
            tr_dropped = !tdropped;
            tr_dropped_key = !tdropped_key;
            tr_left = !left @ drain [];
            tr_pc = List.rev !tpc;
          }
        in
        let results =
          match options.pool with
          | Some pool -> Parallel.Pool.mapi_array pool task frontier
          | None -> Array.mapi task frontier
        in
        (* inline tasks advanced the owner's counter; their iterations
           are already in [tr_iters], so drop the owner delta *)
        mark := Simplex.last_iterations ();
        Array.iter
          (fun tr ->
            nodes := !nodes + tr.tr_nodes;
            task_iters := !task_iters + tr.tr_iters;
            dropped := !dropped + tr.tr_dropped;
            if tr.tr_dropped_key > !dropped_bound then
              dropped_bound := tr.tr_dropped_key;
            (* merge pseudocost observations in frontier index order —
               the counter was already bumped at generation time *)
            List.iter (fun (pos, up, g) -> pc_update pc pos ~up g) tr.tr_pc;
            List.iter (fun e -> Heap.push heap e) tr.tr_left)
          results;
        (* adopt the round's merged incumbent last: the cut audit inside
           may prune the pool and bump [last_prune], correctly voiding
           the leftover nodes' frozen-generation bases *)
        match Atomic.get cell with
        | Some w -> consider_incumbent w.ivalues w.iobj
        | None -> ()
      end
  in
  while !status = `Running do
    if heap.Heap.len >= par_width then parallel_round () else sequential_step ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let best_bound =
    let live =
      match (!status, Heap.best_key heap) with
      | `Exhausted, _ | `Gap_closed, None -> !incumbent_obj
      | _, Some k -> Float.max k !incumbent_obj
      | _, None -> !incumbent_obj
    in
    (* never report a bound below a dropped subtree's key *)
    Float.max live !dropped_bound
  in
  sync_owner ();
  let stats =
    {
      nodes = !nodes;
      simplex_iters = !seq_iters + !task_iters;
      elapsed;
      rounds = !rounds;
      dropped = !dropped;
      dropped_key = !dropped_bound;
    }
  in
  let values = match !incumbent with Some v -> v | None -> Array.make nv 0. in
  let mk outcome obj bound = { outcome; obj; bound; values; stats } in
  match (!status, !incumbent) with
  | `Unbounded_root, _ -> mk Unbounded infinity infinity
  | (`Exhausted | `Gap_closed), Some _ ->
    (* a dropped subtree may hold something better than the incumbent,
       and a cut that failed its incumbent audit may have pruned
       integer points before it was caught: either way exhausting the
       heap no longer proves optimality *)
    if !dropped > 0 || !cut_taint then
      mk Feasible (osign *. !incumbent_obj) (osign *. best_bound)
    else mk Optimal (osign *. !incumbent_obj) (osign *. best_bound)
  | `Exhausted, None ->
    if !dropped > 0 || !cut_taint then mk No_incumbent nan (osign *. best_bound)
    else mk Infeasible nan nan
  | `Limit, Some _ -> mk Feasible (osign *. !incumbent_obj) (osign *. best_bound)
  | (`Limit | `Gap_closed), None -> mk No_incumbent nan (osign *. best_bound)
  | `Running, _ -> assert false
