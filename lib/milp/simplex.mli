(** Bounded-variable revised simplex on a sparse CSC matrix with an
    LU-factorized basis ({!Basis}), plus a dual simplex for
    warm-started re-solves.

    This is the default LP kernel. A cold solve runs a composite
    phase-1 primal (dynamic infeasibility costs on out-of-bound basics,
    no artificial columns — every row carries a logical slack, so the
    all-slack basis is always a valid start) followed by the primal
    phase 2. A warm solve re-installs a caller-supplied basis and runs
    the dual simplex: after a branch-and-bound bound change the
    parent's optimal basis stays dual feasible, so children typically
    finish in a handful of dual pivots. Numerical trouble on the warm
    path falls back to a cold primal solve on the remaining iteration
    budget.

    The legacy dense tableau ({!Dense_simplex}) remains reachable
    through [~engine:Dense] ([--dense-simplex] at the CLI) for
    differential testing.

    Anti-cycling: after [degen_limit] consecutive degenerate pivots
    both primal and dual ratio tests switch to Bland's rule (lowest
    eligible index) for the rest of the solve. *)

type result =
  | Optimal of { obj : float; values : float array }
      (** Proven optimal; [values] is indexed by model variable id. *)
  | Infeasible
  | Unbounded
  | Iter_limit
      (** The iteration budget was exhausted before optimality. *)

(** Status of a column in a returned basis. [At_zero] marks a free
    nonbasic column resting at 0. *)
type vstat = Basic | At_lower | At_upper | At_zero

type engine = Revised | Dense

(** An optimal (or final) basis: statuses and basic-column selection
    for the internal standard form (structurals followed by one slack
    per row). Opaque enough to pass back as [?warm]; use
    {!var_statuses} for the structural statuses. *)
type basis

(** A model together with its CSC standard form, built once and shared
    across re-solves (the matrix depends only on the rows, never on
    variable bounds, so it is safe to share across B&B nodes). *)
type prepared

val prepare : Model.t -> prepared

(** The CSC standard form of a prepared model (shared, do not mutate).
    Exposed for row-generation clients ({!Cuts}) that need tableau
    access through {!Basis}/{!Sparse}. *)
val prep_sparse : prepared -> Sparse.t

(** The model a prepared form was built from (the audit target for
    {!Batch.check}). *)
val prep_model : prepared -> Model.t

(** [solve ?engine ?lb ?ub ?max_iters model] solves the LP relaxation
    of [model] (integrality is ignored). [lb]/[ub] override the model's
    variable bounds. The default iteration budget is
    [50 * (rows + cols) + 200]. Cold-starts; for warm starts use
    {!prepare} + {!solve_prepared}. *)
val solve :
  ?engine:engine ->
  ?lb:float array ->
  ?ub:float array ->
  ?max_iters:int ->
  Model.t ->
  result

(** [solve_prepared ?engine ?lb ?ub ?b ?max_iters ?degen_limit ?warm prep]
    is {!solve} on a prepared model, returning the final basis alongside
    the result (for [Optimal] under the revised engine; [None]
    otherwise). [?warm] supplies a starting basis — ignored if it was
    extracted from a differently-shaped model. [?degen_limit] sets the
    number of consecutive degenerate pivots tolerated before switching
    to Bland's rule (default [max 50 (rows + cols)]).

    [?b] overlays the row right-hand sides (length = rows) without
    rebuilding the CSC structure — the batched scenario path
    ({!Batch}). Duals and reduced costs never depend on the rhs, so any
    dual-feasible basis (in particular an optimal one) stays dual
    feasible under an overlay, making [?warm] + [?b] the cheap re-solve
    combination. Revised engine only; with an overlay the pathological
    dense-tableau degradation is unavailable and {!Basis.Singular}
    propagates instead.

    [?keep_factor] (default [false]) publishes the returned basis' LU
    snapshot eagerly instead of caching it on first warm use. The
    parallel branch-and-bound shares parent bases across concurrently
    solved subtrees; an eager snapshot makes every sharer reinstate in
    O(m) and keeps the factorization counter independent of the
    execution schedule (a lazy fill lets racing sharers each pay a
    factorization).
    @raise Invalid_argument on a wrong-length overlay or [engine=Dense]
    with an overlay. *)
val solve_prepared :
  ?engine:engine ->
  ?lb:float array ->
  ?ub:float array ->
  ?b:float array ->
  ?max_iters:int ->
  ?degen_limit:int ->
  ?warm:basis ->
  ?keep_factor:bool ->
  prepared ->
  result * basis option

(** Statuses of the structural (model) variables in a basis, indexed by
    variable id. *)
val var_statuses : basis -> vstat array

(** Statuses of every internal column (structurals followed by one slack
    per row; fresh copy). For tableau-row cut separation. *)
val basis_statuses : basis -> vstat array

(** Basic internal column of every row position (fresh copy), in the
    shape {!Basis.create} expects. *)
val basis_cols : basis -> int array

(** [extend_basis b prep] lifts a basis onto a prepared model that
    appended rows (cutting planes) to the model [b] came from: the new
    rows' slack columns enter as basic, making the basis matrix block
    lower triangular, so dual values and reduced costs — and hence dual
    feasibility — carry over unchanged. [None] when the shapes are
    incompatible (different structural count or fewer rows). Passing a
    basis of the same shape returns it as-is. *)
val extend_basis : basis -> prepared -> basis option

(** Domain-local cumulative counters (see {!Lp_stats}). [pivots] counts
    primal and dual pivots of both engines; the rest are revised-engine
    only. *)

val cumulative_iterations : unit -> int

(** Alias of {!cumulative_iterations}, kept for callers that diff the
    counter around a solve. *)
val last_iterations : unit -> int

val cumulative_dual_pivots : unit -> int
val cumulative_factorizations : unit -> int
val cumulative_eta_updates : unit -> int
val cumulative_warm_attempts : unit -> int
val cumulative_warm_hits : unit -> int
