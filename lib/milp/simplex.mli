(** Two-phase primal simplex for linear programs.

    Implements the bounded-variable simplex method on a dense tableau:
    variable bounds are handled natively (no bound rows), which keeps the
    tableau small when branch-and-bound repeatedly tightens bounds.
    Anti-cycling falls back to Bland's rule after a stall is detected. *)

type result =
  | Optimal of { obj : float; values : float array }
      (** Proven optimal; [values] is indexed by model variable id. *)
  | Infeasible
  | Unbounded
  | Iter_limit
      (** The iteration budget was exhausted before optimality. *)

(** [solve ?lb ?ub ?max_iters model] solves the LP relaxation of [model]
    (integrality is ignored). [lb]/[ub] override the model's variable
    bounds — branch-and-bound uses this to explore nodes without copying
    the model. The default iteration budget is [50 * (rows + cols) + 200].

    Integer kinds are ignored; the objective honours the model's sense. *)
val solve :
  ?lb:float array ->
  ?ub:float array ->
  ?max_iters:int ->
  Model.t ->
  result

(** Cumulative number of simplex pivots performed on the {e calling
    domain}. The counter is domain-local, so concurrent solves on a
    worker pool never race; read it before and after a region to get
    that region's pivot count (diagnostic; useful for benchmarking and
    as a [Parallel.Pool] counter hook). *)
val cumulative_iterations : unit -> int

(** Alias of {!cumulative_iterations} (historical name). *)
val last_iterations : unit -> int
