let src = Logs.Src.create "milp.certify" ~doc:"independent solution certification"

module Log = (val Logs.src_log src : Logs.LOG)

type tolerances = {
  feas_tol : float;
  int_tol : float;
  obj_tol : float;
  abs_gap : float;
  rel_gap : float;
  dual_tol : float;
  dual_gap_tol : float;
}

let default_tolerances =
  {
    feas_tol = 1e-5;
    int_tol = 1e-5;
    obj_tol = 1e-6;
    abs_gap = 1e-6;
    rel_gap = 1e-6;
    dual_tol = 1e-6;
    dual_gap_tol = 1e-5;
  }

type t = {
  ok : bool;
  point_ok : bool;
  obj_ok : bool;
  bound_ok : bool;
  dual_ok : bool option;
  max_primal_residual : float;
  max_int_residual : float;
  obj_error : float;
  bound_violation : float;
  dual_gap : float;
  dual_infeas : float;
  failures : string list;
}

let cumulative_checks = Lp_stats.read Lp_stats.certify_checks
let cumulative_failures = Lp_stats.read Lp_stats.certify_failures
let max_primal_residual = Lp_stats.fread Lp_stats.certify_max_primal_residual
let max_dual_gap = Lp_stats.fread Lp_stats.certify_max_dual_gap

(* Kahan-compensated evaluation of a linear expression at a point; also
   returns the largest |term| seen, the natural scale for the residual
   tolerance of the row it came from. *)
let kahan_eval values e =
  let s = ref 0. and c = ref 0. and scale = ref 0. in
  Linexpr.iter
    (fun id k ->
      let term = k *. values.(id) in
      let a = Float.abs term in
      if a > !scale then scale := a;
      let y = term -. !c in
      let t = !s +. y in
      c := (t -. !s) -. y;
      s := t)
    e;
  let k0 = Linexpr.constant e in
  ((!s +. (k0 -. !c)), !scale)

(* ------------------------------------------------------------------ *)
(* Dual-feasibility / weak-duality certificate for pure LPs.

   The engines solve a presolved model, and presolve rewrites and drops
   rows, so their dual values cannot certify the original model.
   Instead we rebuild multipliers from scratch, using only the returned
   structural statuses and the claimed point:

   1. Work in minimization form (negate a Maximize objective).
   2. A column must have zero reduced cost if its status is [Basic] or
      its value is strictly interior to its original bounds
      (complementary slackness covers presolve-fixed columns whose
      postsolved status is a synthetic [At_lower]).
   3. Pick one pivot row per such column by Gaussian elimination on the
      column set, preferring *tight* rows — a row whose slack is
      strictly interior must have a basic slack, i.e. multiplier 0.
   4. Solve the square system [A_B' y = c_B] on the pivot rows (y = 0
      elsewhere), form reduced costs d = c - A'y for every column, and
      clamp |d| below tolerance to zero, recording the clamp magnitude.
   5. Dual feasibility: d may not point at a missing (infinite) bound,
      and row multipliers must respect the row sense (Le: y <= 0 in min
      form; Ge: y >= 0; Eq free).
   6. The Lagrangian bound L(y) = y'b + sum_j min over [lb_j, ub_j] of
      d_j x_j is a valid lower bound for ANY y; certification of
      optimality is |c'x - L(y)| within tolerance. *)

type dual_result =
  | Dual of { gap : float; infeas : float; fails : string list }
  | Dual_unavailable of string

(* Cap the O(k^2 m) reconstruction; pure-LP solves through the full
   Solver facade are small in this codebase (the big models are MILPs). *)
let dual_size_limit = 4_000_000

let dual_certificate ~tols model ~values ~statuses ~acts ~obj =
  let sense, objx = Model.objective model in
  let osign = match sense with Model.Maximize -> -1. | Model.Minimize -> 1. in
  let nv = Model.num_vars model in
  let conss = Model.conss model in
  let m = Array.length conss in
  let lbs, ubs = Model.bounds model in
  let cost = Array.make nv 0. in
  Linexpr.iter (fun id k -> cost.(id) <- cost.(id) +. (osign *. k)) objx;
  (* columns whose reduced cost must vanish *)
  let enforce = ref [] in
  for j = nv - 1 downto 0 do
    let eps = 1e-7 *. (1. +. Float.abs values.(j)) in
    let interior = values.(j) > lbs.(j) +. eps && values.(j) < ubs.(j) -. eps in
    if statuses.(j) = Simplex.Basic || interior then enforce := j :: !enforce
  done;
  let basics = Array.of_list !enforce in
  let k = Array.length basics in
  if k * m > dual_size_limit then Dual_unavailable "model too large"
  else begin
    let pos = Array.make nv (-1) in
    Array.iteri (fun t j -> pos.(j) <- t) basics;
    let cols = Array.init k (fun _ -> Array.make m 0.) in
    Array.iteri
      (fun i (c : Model.cons) ->
        Linexpr.iter
          (fun id kf ->
            if pos.(id) >= 0 then
              cols.(pos.(id)).(i) <- cols.(pos.(id)).(i) +. kf)
          c.Model.lhs)
      conss;
    let tight = Array.make m false in
    Array.iteri
      (fun i (c : Model.cons) ->
        let scale = 1. +. Float.abs c.Model.rhs +. Float.abs acts.(i) in
        tight.(i) <-
          (match c.Model.rel with
          | Model.Eq -> true
          | Model.Le | Model.Ge ->
            Float.abs (c.Model.rhs -. acts.(i)) <= 1e-7 *. scale))
      conss;
    (* One pivot row per enforced column; elimination keeps the chosen
       rows independent (each pivot zeroes its row in later columns).
       Only tight rows are eligible: a row with interior slack has a
       basic slack, hence multiplier 0, so it cannot carry a pivot. A
       column with no tight-row pivot left is dropped — its reduced
       cost then lands in the clamp/failure accounting below. *)
    let colnorm =
      Array.map
        (fun col -> Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0. col)
        cols
    in
    let work = Array.map Array.copy cols in
    let used = Array.make m false in
    let pivot_row = Array.make k (-1) in
    for t = 0 to k - 1 do
      let wt = work.(t) in
      let best = ref (-1) and bestv = ref 0. in
      for i = 0 to m - 1 do
        if tight.(i) && not used.(i) then begin
          let a = Float.abs wt.(i) in
          if a > !bestv then begin
            best := i;
            bestv := a
          end
        end
      done;
      if !best >= 0 && !bestv > 1e-9 *. Float.max 1. colnorm.(t) then begin
        let p = !best in
        pivot_row.(t) <- p;
        used.(p) <- true;
        for t' = t + 1 to k - 1 do
          let w' = work.(t') in
          if w'.(p) <> 0. then begin
            let f = w'.(p) /. wt.(p) in
            for i = 0 to m - 1 do
              w'.(i) <- w'.(i) -. (f *. wt.(i))
            done;
            w'.(p) <- 0.
          end
        done
      end
    done;
    (* square system on the selected (column, pivot row) pairs *)
    let sel = ref [] in
    for t = k - 1 downto 0 do
      if pivot_row.(t) >= 0 then sel := t :: !sel
    done;
    let sel = Array.of_list !sel in
    let ks = Array.length sel in
    let mat = Array.init ks (fun _ -> Array.make (ks + 1) 0.) in
    Array.iteri
      (fun r t ->
        Array.iteri (fun cidx s -> mat.(r).(cidx) <- cols.(t).(pivot_row.(s))) sel;
        mat.(r).(ks) <- cost.(basics.(t)))
      sel;
    let singular = ref false in
    for cidx = 0 to ks - 1 do
      let piv = ref cidx in
      for r = cidx + 1 to ks - 1 do
        if Float.abs mat.(r).(cidx) > Float.abs mat.(!piv).(cidx) then piv := r
      done;
      let tmp = mat.(cidx) in
      mat.(cidx) <- mat.(!piv);
      mat.(!piv) <- tmp;
      if Float.abs mat.(cidx).(cidx) <= 1e-12 then singular := true
      else
        for r = cidx + 1 to ks - 1 do
          if mat.(r).(cidx) <> 0. then begin
            let f = mat.(r).(cidx) /. mat.(cidx).(cidx) in
            for cc = cidx to ks do
              mat.(r).(cc) <- mat.(r).(cc) -. (f *. mat.(cidx).(cc))
            done
          end
        done
    done;
    if !singular then Dual_unavailable "singular basis reconstruction"
    else begin
      let ysol = Array.make ks 0. in
      for r = ks - 1 downto 0 do
        let s = ref mat.(r).(ks) in
        for cc = r + 1 to ks - 1 do
          s := !s -. (mat.(r).(cc) *. ysol.(cc))
        done;
        ysol.(r) <- !s /. mat.(r).(r)
      done;
      let y = Array.make m 0. in
      Array.iteri (fun cidx s -> y.(pivot_row.(s)) <- ysol.(cidx)) sel;
      (* reduced costs and per-column scales *)
      let d = Array.copy cost in
      let cscale = Array.map (fun cj -> 1. +. Float.abs cj) cost in
      Array.iteri
        (fun i (c : Model.cons) ->
          let yi = y.(i) in
          if yi <> 0. then
            Linexpr.iter
              (fun id kf ->
                d.(id) <- d.(id) -. (yi *. kf);
                cscale.(id) <- cscale.(id) +. Float.abs (yi *. kf))
              c.Model.lhs)
        conss;
      let infeas = ref 0. and fails = ref [] in
      let record_fail msg v =
        if v > !infeas then infeas := v;
        if List.length !fails < 3 then
          fails := Printf.sprintf "%s (%.3e)" msg v :: !fails
      in
      (* Lagrangian bound, Kahan-accumulated *)
      let l = ref 0. and lc = ref 0. in
      let kadd v =
        let yv = v -. !lc in
        let t = !l +. yv in
        lc := (t -. !l) -. yv;
        l := t
      in
      Array.iteri (fun i (c : Model.cons) -> kadd (y.(i) *. c.Model.rhs)) conss;
      for j = 0 to nv - 1 do
        let dj = d.(j) in
        let ztol = tols.dual_tol *. cscale.(j) in
        if Float.abs dj <= ztol then begin
          (* clamped to zero: contributes nothing, but the clamp size is
             part of the certificate's error budget *)
          let v = Float.abs dj /. cscale.(j) in
          if v > !infeas then infeas := v
        end
        else if dj > 0. then
          if Float.is_finite lbs.(j) then kadd (dj *. lbs.(j))
          else record_fail (Printf.sprintf "dual infeasible on column %d" j) (dj /. cscale.(j))
        else if Float.is_finite ubs.(j) then kadd (dj *. ubs.(j))
        else record_fail (Printf.sprintf "dual infeasible on column %d" j) (-.dj /. cscale.(j))
      done;
      (* slack columns: cost 0, reduced cost -y_i; their bound intervals
         ([0,inf) for Le, (-inf,0] for Ge, {0} for Eq) contribute 0 to
         L(y) but constrain the sign of y *)
      Array.iteri
        (fun i (c : Model.cons) ->
          let yt = tols.dual_tol *. (1. +. Float.abs y.(i)) in
          match c.Model.rel with
          | Model.Le ->
            if y.(i) > yt then
              record_fail (Printf.sprintf "row %d multiplier sign" i) (y.(i) /. (1. +. Float.abs y.(i)))
          | Model.Ge ->
            if y.(i) < -.yt then
              record_fail (Printf.sprintf "row %d multiplier sign" i) (-.y.(i) /. (1. +. Float.abs y.(i)))
          | Model.Eq -> ())
        conss;
      let lagrangian = !l +. (osign *. Linexpr.constant objx) in
      let obj_min = osign *. obj in
      let gap = Float.abs (obj_min -. lagrangian) /. (1. +. Float.abs obj_min) in
      Dual { gap; infeas = !infeas; fails = List.rev !fails }
    end
  end

(* ------------------------------------------------------------------ *)

let check ?(tols = default_tolerances) ?(optimal = false) ~model ~obj ~bound
    ~values ~statuses () =
  let nv = Model.num_vars model in
  let conss = Model.conss model in
  let m = Array.length conss in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let point_ok, max_primal, max_int, acts =
    if Array.length values <> nv || not (Float.is_finite obj) then begin
      fail "claimed point missing or objective not finite";
      (false, infinity, infinity, [||])
    end
    else begin
      let acts = Array.make m 0. in
      let max_res = ref 0. and first = ref true in
      let bump ?ctx res =
        if res > !max_res then max_res := res;
        if res > tols.feas_tol && !first then begin
          first := false;
          match ctx with Some s -> fail "%s: residual %.3e" s res | None -> ()
        end
      in
      Array.iteri
        (fun i (c : Model.cons) ->
          let lhs, tscale = kahan_eval values c.Model.lhs in
          acts.(i) <- lhs;
          let scale = 1. +. Float.abs c.Model.rhs +. tscale in
          let viol =
            match c.Model.rel with
            | Model.Le -> lhs -. c.Model.rhs
            | Model.Ge -> c.Model.rhs -. lhs
            | Model.Eq -> Float.abs (lhs -. c.Model.rhs)
          in
          bump ~ctx:(Printf.sprintf "row %d (%s)" i c.Model.cname)
            (Float.max 0. viol /. scale))
        conss;
      Array.iter
        (fun (v : Model.var) ->
          let x = values.(v.Model.vid) in
          if Float.is_finite v.Model.lb then
            bump ~ctx:(Printf.sprintf "lower bound of %s" v.Model.vname)
              ((v.Model.lb -. x) /. (1. +. Float.abs v.Model.lb));
          if Float.is_finite v.Model.ub then
            bump ~ctx:(Printf.sprintf "upper bound of %s" v.Model.vname)
              ((x -. v.Model.ub) /. (1. +. Float.abs v.Model.ub)))
        (Model.vars model);
      let max_int = ref 0. in
      List.iter
        (fun id ->
          let x = values.(id) in
          let frac = Float.abs (x -. Float.round x) in
          if frac > !max_int then max_int := frac;
          if frac > tols.int_tol && frac = !max_int then
            fail "variable %s not integral: frac %.3e" (Model.var_name model id) frac)
        (Model.int_var_ids model);
      (!max_res <= tols.feas_tol && !max_int <= tols.int_tol, !max_res, !max_int, acts)
    end
  in
  let obj_error, obj_ok =
    if not (Float.is_finite obj) || Array.length values <> nv then (infinity, false)
    else begin
      let _, objx = Model.objective model in
      let recomputed, _ = kahan_eval values objx in
      let err = Float.abs (recomputed -. obj) /. (1. +. Float.abs obj) in
      if err > tols.obj_tol then
        fail "objective mismatch: reported %.9g, recomputed %.9g" obj recomputed;
      (err, err <= tols.obj_tol)
    end
  in
  let bound_violation, bound_ok =
    (* normalize to maximization form, where bound is an upper bound *)
    let sense, _ = Model.objective model in
    let maxf x = match sense with Model.Maximize -> x | Model.Minimize -> -.x in
    let obj_max = maxf obj and bound_max = maxf bound in
    if Float.is_nan bound_max then begin
      fail "bound is nan";
      (infinity, false)
    end
    else begin
      let gap =
        Float.max tols.abs_gap (tols.rel_gap *. Float.max 1. (Float.abs obj_max))
      in
      let slack = 1e-9 *. (1. +. Float.abs obj_max) in
      let over = obj_max -. bound_max -. gap -. slack in
      if over > 0. then
        fail "objective %.9g exceeds claimed bound %.9g" obj_max bound_max;
      let opt_gap =
        if optimal then bound_max -. obj_max -. (gap *. (1. +. 1e-6)) -. slack
        else neg_infinity
      in
      if opt_gap > 0. then
        fail "claimed optimal but gap open: bound %.9g vs objective %.9g"
          bound_max obj_max;
      (Float.max 0. (Float.max over opt_gap), over <= 0. && opt_gap <= 0.)
    end
  in
  let dual_ok, dual_gap, dual_infeas =
    if
      (not optimal) || (not point_ok)
      || Model.num_int_vars model > 0
      || Array.length statuses <> nv
    then (None, nan, nan)
    else
      match dual_certificate ~tols model ~values ~statuses ~acts ~obj with
      | Dual_unavailable reason ->
        Log.debug (fun f -> f "dual certificate unavailable: %s" reason);
        (None, nan, nan)
      | Dual { gap; infeas; fails } ->
        List.iter (fun s -> fail "%s" s) fails;
        let ok = fails = [] && gap <= tols.dual_gap_tol in
        if not ok && fails = [] then
          fail "weak-duality gap %.3e exceeds %.3e" gap tols.dual_gap_tol;
        (Some ok, gap, infeas)
  in
  let ok = point_ok && obj_ok && bound_ok && dual_ok <> Some false in
  let cert =
    {
      ok;
      point_ok;
      obj_ok;
      bound_ok;
      dual_ok;
      max_primal_residual = max_primal;
      max_int_residual = max_int;
      obj_error;
      bound_violation;
      dual_gap;
      dual_infeas;
      failures = List.rev !failures;
    }
  in
  Lp_stats.incr Lp_stats.certify_checks;
  if not ok then Lp_stats.incr Lp_stats.certify_failures;
  if Float.is_finite max_primal then
    Lp_stats.fmax Lp_stats.certify_max_primal_residual max_primal;
  if Float.is_finite dual_gap then
    Lp_stats.fmax Lp_stats.certify_max_dual_gap dual_gap;
  if not ok then
    Log.warn (fun f ->
        f "certificate FAILED for %s: %s" (Model.name model)
          (String.concat "; " cert.failures));
  cert

let pp ppf c =
  Format.fprintf ppf
    "@[<h>certificate: %s (residual %.2e, int %.2e, obj err %.2e%s)@]"
    (if c.ok then "ok" else "FAILED")
    c.max_primal_residual c.max_int_residual c.obj_error
    (match c.dual_ok with
    | Some true -> Format.sprintf ", dual gap %.2e" c.dual_gap
    | Some false -> Format.sprintf ", dual FAILED gap %.2e" c.dual_gap
    | None -> "")
