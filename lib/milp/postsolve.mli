(** Mapping between a presolve-reduced model and its original.

    {!Presolve} fixes variables and renumbers the survivors densely; this
    module carries that mapping so reduced-space solutions can be lifted
    back to the original indexing (making the reduction invisible to
    {!Solver} callers) and original-space warm starts / plunge hints /
    branch priorities can be pushed forward into the reduced space. All
    reductions performed by {!Presolve} are primal-feasibility preserving,
    so postsolve is pure index-and-value translation: objective and dual
    bound need no correction (the fixed contribution lives in the reduced
    objective's constant term). *)

type t

(** [make ~is_fixed ~value] builds the mapping: [is_fixed.(j)] marks
    original variable [j] as fixed at [value.(j)]; the remaining
    variables keep their relative order in the reduced indexing. *)
val make : is_fixed:bool array -> value:float array -> t

val num_original : t -> int
val num_reduced : t -> int

(** Original id of reduced variable [rid]. *)
val orig_of_reduced : t -> int -> int

(** Reduced id of original variable [j], or [None] when it was fixed. *)
val reduced_of_orig : t -> int -> int option

(** Fixed value of original variable [j] ([None] when it survived). *)
val value_of_fixed : t -> int -> float option

(** [restore t reduced] lifts a reduced-space point to the original
    indexing, filling fixed variables with their presolved values.
    Arrays shorter than the reduced dimension (e.g. the empty point of
    an infeasible solution) are returned unchanged. *)
val restore : t -> float array -> float array

(** [restore_statuses t ~fill reduced] lifts any reduced-indexed
    per-variable annotation array (e.g. {!Simplex.vstat} basis statuses)
    to the original indexing; fixed variables get [fill] (a fixed
    variable sits at its — collapsed — bounds, so a bound status is the
    natural fill). Arrays shorter than the reduced dimension are
    returned unchanged, mirroring {!restore}. *)
val restore_statuses : t -> fill:'a -> 'a array -> 'a array

(** Project an original-space point into the reduced space by dropping
    the fixed coordinates; [None] when the array is too short. *)
val reduce_point : t -> float array -> float array option

(** Translate a partial assignment [(var id, value)] into reduced ids.
    Entries on fixed or out-of-range variables are dropped: either they
    are already enforced by the reduction, or they contradict a presolve
    deduction, in which case the surviving entries still make a useful
    plunge. *)
val reduce_hint : t -> (int * float) list -> (int * float) list
