type options = {
  time_limit : float;
  max_nodes : int;
  rel_gap : float;
  log : bool;
  branch_priority : int -> int;
  warm_start : float array option;
  plunge_hints : (int * float) list list;
}

let default_options =
  {
    time_limit = Float.infinity;
    max_nodes = 200_000;
    rel_gap = 1e-6;
    log = false;
    branch_priority = (fun _ -> 0);
    warm_start = None;
    plunge_hints = [];
  }

let with_time_limit t = { default_options with time_limit = t }

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type solution = {
  status : status;
  obj : float;
  bound : float;
  values : float array;
  nodes : int;
  elapsed : float;
}

let solve ?(options = default_options) model =
  let t0 = Unix.gettimeofday () in
  if Model.num_int_vars model = 0 then
    match Simplex.solve model with
    | Simplex.Optimal { obj; values } ->
      { status = Optimal; obj; bound = obj; values; nodes = 0;
        elapsed = Unix.gettimeofday () -. t0 }
    | Simplex.Infeasible ->
      { status = Infeasible; obj = nan; bound = nan; values = [||]; nodes = 0;
        elapsed = Unix.gettimeofday () -. t0 }
    | Simplex.Unbounded ->
      { status = Unbounded; obj = infinity; bound = infinity; values = [||]; nodes = 0;
        elapsed = Unix.gettimeofday () -. t0 }
    | Simplex.Iter_limit ->
      { status = Unknown; obj = nan; bound = nan; values = [||]; nodes = 0;
        elapsed = Unix.gettimeofday () -. t0 }
  else begin
    let bb_options =
      {
        Branch_bound.default with
        max_nodes = options.max_nodes;
        time_limit = options.time_limit;
        rel_gap = options.rel_gap;
        log = options.log;
        branch_priority = options.branch_priority;
        warm_start = options.warm_start;
        plunge_hints = options.plunge_hints;
      }
    in
    let r = Branch_bound.solve ~options:bb_options model in
    let status =
      match r.Branch_bound.outcome with
      | Branch_bound.Optimal -> Optimal
      | Branch_bound.Feasible -> Feasible
      | Branch_bound.No_incumbent -> Unknown
      | Branch_bound.Infeasible -> Infeasible
      | Branch_bound.Unbounded -> Unbounded
    in
    {
      status;
      obj = r.Branch_bound.obj;
      bound = r.Branch_bound.bound;
      values = r.Branch_bound.values;
      nodes = r.Branch_bound.stats.Branch_bound.nodes;
      elapsed = r.Branch_bound.stats.Branch_bound.elapsed;
    }
  end

let value sol (v : Model.var) =
  if Array.length sol.values = 0 then nan else sol.values.(v.vid)

let bool_value sol v = value sol v > 0.5

let has_point sol = match sol.status with Optimal | Feasible -> true | _ -> false

let stats_counters = [ ("simplex", Simplex.cumulative_iterations) ]

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Feasible -> Format.pp_print_string ppf "feasible"
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Unknown -> Format.pp_print_string ppf "unknown"
