let log_src = Logs.Src.create "milp.solver" ~doc:"solver facade"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  time_limit : float;
  max_nodes : int;
  abs_gap : float;
  rel_gap : float;
  int_tol : float;
  log : bool;
  branch_priority : int -> int;
  warm_start : float array option;
  plunge_hints : (int * float) list list;
  presolve : bool;
  dense_simplex : bool;
  certify : bool;
  cuts : Cuts.options;
  sx_iters : int option;
  pool : Parallel.Pool.t option;
  bb_width : int;
  bb_grain : int;
  branching : Branch_bound.branching;
  heuristics : bool;
  rins_freq : int;
}

(* The values shared with branch-and-bound are derived from
   Branch_bound.default rather than hand-copied. *)
let default_options =
  let d = Branch_bound.default in
  {
    time_limit = d.Branch_bound.time_limit;
    max_nodes = d.Branch_bound.max_nodes;
    abs_gap = d.Branch_bound.abs_gap;
    rel_gap = d.Branch_bound.rel_gap;
    int_tol = d.Branch_bound.int_tol;
    log = d.Branch_bound.log;
    branch_priority = d.Branch_bound.branch_priority;
    warm_start = d.Branch_bound.warm_start;
    plunge_hints = d.Branch_bound.plunge_hints;
    presolve = true;
    dense_simplex = false;
    certify = true;
    cuts = d.Branch_bound.cuts;
    sx_iters = d.Branch_bound.sx_iters;
    pool = d.Branch_bound.pool;
    bb_width = d.Branch_bound.par_width;
    bb_grain = d.Branch_bound.par_grain;
    branching = d.Branch_bound.branching;
    heuristics = d.Branch_bound.heuristics;
    rins_freq = d.Branch_bound.rins_freq;
  }

let engine_of options =
  if options.dense_simplex then Simplex.Dense else Simplex.Revised

let with_time_limit t = { default_options with time_limit = t }

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Feasible -> Format.pp_print_string ppf "feasible"
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Unknown -> Format.pp_print_string ppf "unknown"

type solution = {
  status : status;
  obj : float;
  bound : float;
  values : float array;
  statuses : Simplex.vstat array;
  certificate : Certify.t option;
  nodes : int;
  elapsed : float;
}

(* Solve a model as-is (no presolve), with [t0] as the wall-clock origin
   so elapsed times include any reduction work done by the caller. *)
let solve_direct ~options ~t0 model =
  let finish ?(statuses = [||]) status obj bound values nodes =
    { status; obj; bound; values; statuses; certificate = None; nodes;
      elapsed = Unix.gettimeofday () -. t0 }
  in
  if Model.num_int_vars model = 0 then
    match
      Simplex.solve_prepared ~engine:(engine_of options)
        ?max_iters:options.sx_iters (Simplex.prepare model)
    with
    | Simplex.Optimal { obj; values }, basis ->
      let statuses =
        match basis with Some b -> Simplex.var_statuses b | None -> [||]
      in
      finish ~statuses Optimal obj obj values 0
    | Simplex.Infeasible, _ -> finish Infeasible nan nan [||] 0
    | Simplex.Unbounded, _ -> finish Unbounded infinity infinity [||] 0
    | Simplex.Iter_limit, _ -> finish Unknown nan nan [||] 0
  else begin
    let bb_options =
      {
        Branch_bound.max_nodes = options.max_nodes;
        time_limit = options.time_limit;
        abs_gap = options.abs_gap;
        rel_gap = options.rel_gap;
        int_tol = options.int_tol;
        log = options.log;
        branch_priority = options.branch_priority;
        warm_start = options.warm_start;
        plunge_hints = options.plunge_hints;
        engine = engine_of options;
        cuts = options.cuts;
        sx_iters = options.sx_iters;
        (* a solve already running inside a pool task (cluster blocks in
           a sweep) must not re-enter the pool: rounds then run inline,
           which the scheduler keeps bit-identical anyway *)
        pool =
          (match options.pool with
          | Some _ when Parallel.Pool.inside_task () -> None
          | p -> p);
        par_width = options.bb_width;
        par_grain = options.bb_grain;
        branching = options.branching;
        heuristics = options.heuristics;
        rins_freq = options.rins_freq;
        on_incumbent = None;
      }
    in
    let r = Branch_bound.solve ~options:bb_options model in
    let status =
      match r.Branch_bound.outcome with
      | Branch_bound.Optimal -> Optimal
      | Branch_bound.Feasible -> Feasible
      | Branch_bound.No_incumbent -> Unknown
      | Branch_bound.Infeasible -> Infeasible
      | Branch_bound.Unbounded -> Unbounded
    in
    finish status r.Branch_bound.obj r.Branch_bound.bound r.Branch_bound.values
      r.Branch_bound.stats.Branch_bound.nodes
  end

(* Re-validate a claimed solution against the original, pre-presolve
   model and degrade the status when the certificate fails: a bad point
   means nothing usable survives (Unknown), while a bad bound, gap or
   dual certificate invalidates only the optimality claim (Feasible). *)
let certify_solution ~options model sol =
  match sol.status with
  | Infeasible | Unbounded | Unknown -> sol
  | Optimal | Feasible ->
    let tols =
      {
        Certify.default_tolerances with
        int_tol =
          Float.max Certify.default_tolerances.Certify.int_tol
            (10. *. options.int_tol);
        abs_gap = options.abs_gap;
        rel_gap = options.rel_gap;
      }
    in
    let cert =
      Certify.check ~tols ~optimal:(sol.status = Optimal) ~model ~obj:sol.obj
        ~bound:sol.bound ~values:sol.values ~statuses:sol.statuses ()
    in
    if cert.Certify.ok then { sol with certificate = Some cert }
    else begin
      let status =
        if not cert.Certify.point_ok then Unknown
        else if sol.status = Optimal then Feasible
        else sol.status
      in
      Log.warn (fun f ->
          f "%s: certificate failed, downgrading %a -> %a (%a)"
            (Model.name model) pp_status sol.status pp_status status Certify.pp
            cert);
      { sol with status; certificate = Some cert }
    end

let solve ?certify ?(options = default_options) model =
  let t0 = Unix.gettimeofday () in
  let certify = Option.value certify ~default:options.certify in
  let finish sol = if certify then certify_solution ~options model sol else sol in
  if not options.presolve then finish (solve_direct ~options ~t0 model)
  else
    match Presolve.presolve model with
    | Presolve.Infeasible _ ->
      { status = Infeasible; obj = nan; bound = nan; values = [||];
        statuses = [||]; certificate = None; nodes = 0;
        elapsed = Unix.gettimeofday () -. t0 }
    | Presolve.Reduced { model = rm; post; stats = _ } ->
      (* Caller-supplied vectors and priorities speak original ids;
         translate them into the reduced space before solving, and lift
         the solution point back afterwards. Objective and bound carry
         over unchanged: the fixed contribution lives in the reduced
         objective's constant term. *)
      let options =
        {
          options with
          branch_priority =
            (fun rid -> options.branch_priority (Postsolve.orig_of_reduced post rid));
          warm_start = Option.bind options.warm_start (Postsolve.reduce_point post);
          plunge_hints =
            List.filter_map
              (fun h ->
                match Postsolve.reduce_hint post h with [] -> None | h' -> Some h')
              options.plunge_hints;
        }
      in
      let sol = solve_direct ~options ~t0 rm in
      (* lift the point and any basis statuses back to original ids; a
         presolve-fixed variable sits at its collapsed bounds, so
         At_lower is its natural status. Certification runs after the
         lift, against the original model. *)
      finish
        {
          sol with
          values = Postsolve.restore post sol.values;
          statuses =
            (if Array.length sol.statuses = 0 then [||]
             else
               Postsolve.restore_statuses post ~fill:Simplex.At_lower
                 sol.statuses);
        }

let value sol (v : Model.var) =
  if Array.length sol.values = 0 then nan else sol.values.(v.vid)

let bool_value sol v = value sol v > 0.5

let has_point sol = match sol.status with Optimal | Feasible -> true | _ -> false

let stats_counters =
  [
    ("simplex", Simplex.cumulative_iterations);
    ("dual-pivots", Simplex.cumulative_dual_pivots);
    ("factorizations", Simplex.cumulative_factorizations);
    ("eta-updates", Simplex.cumulative_eta_updates);
    ("warm-attempts", Simplex.cumulative_warm_attempts);
    ("warm-hits", Simplex.cumulative_warm_hits);
    ("bb-nodes", Branch_bound.cumulative_nodes);
    ("presolve-rows", Presolve.cumulative_rows_removed);
    ("presolve-cols", Presolve.cumulative_cols_fixed);
    ("presolve-bigm", Presolve.cumulative_big_ms_tightened);
    ("certify-checks", Certify.cumulative_checks);
    ("certify-failures", Certify.cumulative_failures);
    ("cuts-generated", Cuts.cumulative_generated);
    ("cuts-applied", Cuts.cumulative_applied);
    ("cuts-pruned", Cuts.cumulative_pruned);
    ("cut-audit-failures", Cuts.cumulative_audit_failures);
    ("batch-prepares", Batch.cumulative_prepares);
    ("batch-overlays", Batch.cumulative_overlays);
    ("batch-warm-hits", Batch.cumulative_warm_hits);
    ("sb-probes", Branch_bound.cumulative_sb_probes);
    ("pseudocost-updates", Branch_bound.cumulative_pseudocost_updates);
    ("heuristic-solutions", Branch_bound.cumulative_heuristic_solutions);
    ("heuristic-rejections", Branch_bound.cumulative_heuristic_rejections);
  ]
