(* Revised simplex with a sparse CSC matrix and an LU-factorized basis
   (Basis / Sparse), plus a bounded-variable dual simplex for
   warm-started re-solves. The legacy dense tableau (Dense_simplex)
   stays reachable through [~engine:Dense] for differential testing.

   Internal form (Sparse.of_model): minimize c'x over A x = b with
   per-column bounds; columns are the nv structurals followed by one
   logical (slack) column per row, so the all-slack basis is always
   available as a trivially factorizable cold start. A cold solve runs
   a composite phase 1 (dynamic infeasibility costs on out-of-bound
   basics, no artificial columns) and then the primal phase 2; a warm
   solve re-installs the caller's basis and runs the dual simplex —
   after a branch-and-bound bound change the parent's optimal basis
   stays dual feasible, so children typically need a handful of dual
   pivots. Any numerical trouble in the warm path falls back to the
   cold primal within the same iteration budget. *)

type result =
  | Optimal of { obj : float; values : float array }
  | Infeasible
  | Unbounded
  | Iter_limit

type vstat = Basic | At_lower | At_upper | At_zero

type engine = Revised | Dense

type basis = {
  bn : int; (* internal columns (nv + rows) — guards cross-model reuse *)
  bnv : int;
  bstat : vstat array;
  bbcols : int array;
  bfactor : Basis.snapshot option Atomic.t;
      (* LU of bbcols, cached on first warm use so repeated warm starts
         from the same basis (the batched scenario engine) skip the
         refactorization. Deterministic: a racy publish from another
         domain stores an identical value. *)
}

type prepared = { pmodel : Model.t; sp : Sparse.t }

let eps_cost = 1e-9
let eps_pivot = 1e-9
let eps_feas = 1e-7
let eps_dual = 1e-6
let eps_degen = 1e-10

let cumulative_iterations = Lp_stats.read Lp_stats.pivots
let last_iterations = cumulative_iterations
let cumulative_dual_pivots = Lp_stats.read Lp_stats.dual_pivots
let cumulative_factorizations = Lp_stats.read Lp_stats.factorizations
let cumulative_eta_updates = Lp_stats.read Lp_stats.eta_updates
let cumulative_warm_attempts = Lp_stats.read Lp_stats.warm_attempts
let cumulative_warm_hits = Lp_stats.read Lp_stats.warm_hits

let prepare model = { pmodel = model; sp = Sparse.of_model model }

let prep_sparse prep = prep.sp
let prep_model prep = prep.pmodel

let var_statuses b = Array.sub b.bstat 0 b.bnv

let basis_statuses b = Array.copy b.bstat
let basis_cols b = Array.copy b.bbcols

(* Extend a basis to a prepared model that appended rows (cutting
   planes) to the one the basis came from. The new rows' slack columns
   enter the basis, so the basis matrix becomes block lower triangular
   [[B 0]; [C I]]: the old dual values and reduced costs carry over
   unchanged (the new rows price at y = 0), which keeps a dual-feasible
   basis dual feasible in the extended problem. Returns [None] when the
   shapes are incompatible (different structural count, or fewer rows
   than the basis was built for). *)
let extend_basis b prep =
  let sp = prep.sp in
  if b.bnv <> sp.Sparse.nv || b.bn > sp.Sparse.n then None
  else if b.bn = sp.Sparse.n then Some b
  else begin
    let n = sp.Sparse.n in
    let bstat = Array.make n Basic in
    Array.blit b.bstat 0 bstat 0 b.bn;
    let extra = Array.init (n - b.bn) (fun i -> b.bn + i) in
    Some
      { bn = n; bnv = b.bnv; bstat; bbcols = Array.append b.bbcols extra;
        bfactor = Atomic.make None }
  end

(* ------------------------------------------------------------------ *)
(* Mutable solve state                                                 *)

type st = {
  sp : Sparse.t;
  rhs : float array; (* effective row rhs: sp.b or a caller overlay *)
  lo : float array; (* length n: structural overrides ++ slack bounds *)
  hi : float array;
  x : float array; (* current value of every column *)
  stat : vstat array;
  bcols : int array; (* basic column per row position, length m *)
  mutable bas : Basis.t;
  mutable bland : bool;
  mutable degen : int; (* consecutive degenerate pivots *)
  degen_limit : int;
  mutable iters : int; (* remaining pivot budget *)
}

exception Box_infeasible

let fresh_bounds (prep : prepared) ?lb ?ub () =
  let sp = prep.sp in
  let nv = sp.Sparse.nv and m = sp.Sparse.m and n = sp.Sparse.n in
  let mlb, mub = Model.bounds prep.pmodel in
  let lb = match lb with Some a -> a | None -> mlb in
  let ub = match ub with Some a -> a | None -> mub in
  let lo = Array.make n 0. and hi = Array.make n 0. in
  Array.blit lb 0 lo 0 nv;
  Array.blit ub 0 hi 0 nv;
  for i = 0 to m - 1 do
    lo.(nv + i) <- sp.Sparse.slack_lo.(i);
    hi.(nv + i) <- sp.Sparse.slack_hi.(i)
  done;
  for j = 0 to nv - 1 do
    if lo.(j) > hi.(j) +. 1e-12 then raise Box_infeasible
  done;
  (lo, hi)

(* Recompute basic values from scratch: x_B = B^-1 (b - A_N x_N).
   Called after every refactorization to shed accumulated drift. *)
let compute_xb st =
  let sp = st.sp in
  let m = sp.Sparse.m in
  if m > 0 then begin
    let rhs = Array.sub st.rhs 0 m in
    for j = 0 to sp.Sparse.n - 1 do
      if st.stat.(j) <> Basic && st.x.(j) <> 0. then
        Sparse.axpy_col sp j (-.st.x.(j)) rhs
    done;
    let xb = Basis.ftran st.bas rhs in
    for r = 0 to m - 1 do
      st.x.(st.bcols.(r)) <- xb.(r)
    done
  end

let nonbasic_value st j =
  match st.stat.(j) with
  | At_lower -> st.lo.(j)
  | At_upper -> st.hi.(j)
  | At_zero -> 0.
  | Basic -> st.x.(j)

(* Cold state: structural columns rest at a finite bound (0 for free
   columns), every slack is basic. *)
let cold_state (prep : prepared) ~rhs (lo, hi) ~max_iters ~degen_limit =
  let sp = prep.sp in
  let nv = sp.Sparse.nv and m = sp.Sparse.m and n = sp.Sparse.n in
  let stat = Array.make n At_lower in
  let x = Array.make n 0. in
  for j = 0 to nv - 1 do
    stat.(j) <-
      (if Float.is_finite lo.(j) then At_lower
       else if Float.is_finite hi.(j) then At_upper
       else At_zero)
  done;
  let bcols = Array.init m (fun i -> nv + i) in
  for i = 0 to m - 1 do
    stat.(nv + i) <- Basic
  done;
  let st =
    {
      sp;
      rhs;
      lo;
      hi;
      x;
      stat;
      bcols;
      bas = Basis.create sp bcols;
      bland = false;
      degen = 0;
      degen_limit;
      iters = max_iters;
    }
  in
  for j = 0 to n - 1 do
    if st.stat.(j) <> Basic then st.x.(j) <- nonbasic_value st j
  done;
  compute_xb st;
  st

(* Warm state from a caller-provided basis: re-install statuses, clamp
   nonbasics onto the (possibly tightened) bounds, refactorize. The
   factorization may repair a singular selection, in which case the
   statuses are reconciled with the repaired column set. *)
let warm_state (prep : prepared) ~rhs (lo, hi) (b : basis) ~max_iters ~degen_limit =
  let sp = prep.sp in
  let n = sp.Sparse.n in
  let stat = Array.copy b.bstat in
  let x = Array.make n 0. in
  let bas =
    (* reuse the cached factorization when this basis was already warm-
       installed against this very matrix (the batched engine warm-starts
       thousands of overlay solves from one healthy basis); otherwise
       factorize and publish. Basis.of_snapshot refuses any other matrix,
       and reinstating is bit-identical to refactorizing, so a cache hit
       never changes results. *)
    match Option.bind (Atomic.get b.bfactor) (Basis.of_snapshot sp) with
    | Some bas -> bas
    | None ->
      let bas = Basis.create sp b.bbcols in
      Atomic.set b.bfactor (Some (Basis.snapshot bas));
      bas
  in
  let bcols = Basis.bcols bas in
  (* repair reconciliation: exactly the bcols entries are basic *)
  Array.iteri (fun j s -> if s = Basic then stat.(j) <- At_lower) stat;
  Array.iter (fun j -> stat.(j) <- Basic) bcols;
  let st =
    { sp; rhs; lo; hi; x; stat; bcols; bas; bland = false; degen = 0;
      degen_limit; iters = max_iters }
  in
  for j = 0 to n - 1 do
    if st.stat.(j) <> Basic then begin
      (* clamp statuses onto finite/tightened bounds *)
      (match st.stat.(j) with
      | At_lower when not (Float.is_finite lo.(j)) ->
        st.stat.(j) <- (if Float.is_finite hi.(j) then At_upper else At_zero)
      | At_upper when not (Float.is_finite hi.(j)) ->
        st.stat.(j) <- (if Float.is_finite lo.(j) then At_lower else At_zero)
      | At_zero when lo.(j) > 0. -> st.stat.(j) <- At_lower
      | At_zero when hi.(j) < 0. -> st.stat.(j) <- At_upper
      | _ -> ());
      st.x.(j) <- nonbasic_value st j
    end
  done;
  compute_xb st;
  st

(* ------------------------------------------------------------------ *)
(* Shared pivot machinery                                              *)

let track_degeneracy st theta =
  if Float.abs theta > eps_degen then st.degen <- 0
  else begin
    st.degen <- st.degen + 1;
    if st.degen > st.degen_limit then st.bland <- true
  end

let dense_column st j =
  let m = st.sp.Sparse.m in
  let col = Array.make (max m 1) 0. in
  Sparse.axpy_col st.sp j 1. col;
  col

(* A refactorization may repair a singular basis by swapping slack
   columns into some positions (see Basis.build_lu). Reconcile
   [st.bcols]/[st.stat] with the basis' actual column set — the same
   way [warm_state] does — so [compute_xb] writes basic values to the
   right columns. *)
let sync_repair st =
  let actual = Basis.bcols st.bas in
  let changed = ref false in
  Array.iteri
    (fun r c -> if st.bcols.(r) <> c then changed := true)
    actual;
  if !changed then begin
    Array.blit actual 0 st.bcols 0 (Array.length actual);
    Array.iteri
      (fun j s ->
        if s = Basic then begin
          st.stat.(j) <-
            (if Float.is_finite st.lo.(j) then At_lower
             else if Float.is_finite st.hi.(j) then At_upper
             else At_zero);
          st.x.(j) <- nonbasic_value st j
        end)
      st.stat;
    Array.iter (fun j -> st.stat.(j) <- Basic) st.bcols
  end

(* Install column [j] as basic in row position [r]; [w] is its FTRAN
   image. Returns after recomputing values if the basis refactorized. *)
let basis_exchange st ~r ~j ~w =
  st.bcols.(r) <- j;
  st.stat.(j) <- Basic;
  let refactored = Basis.replace st.bas ~r ~col:j ~w in
  if refactored then begin
    sync_repair st;
    compute_xb st
  end

(* ------------------------------------------------------------------ *)
(* Primal simplex (phases 1 and 2)                                     *)

(* Phase-aware entering direction for a nonbasic column with reduced
   cost [d]: +1 to increase, -1 to decrease, 0 when ineligible. *)
let entering_dir st j d =
  if st.stat.(j) = Basic || st.hi.(j) -. st.lo.(j) <= 1e-12 then 0.
  else
    match st.stat.(j) with
    | At_lower -> if d < -.eps_cost then 1. else 0.
    | At_upper -> if d > eps_cost then -1. else 0.
    | At_zero -> if d < -.eps_cost then 1. else if d > eps_cost then -1. else 0.
    | Basic -> 0.

(* Bounded-variable ratio test. In phase 1, basic variables that are
   outside their bounds block only when the step would carry them back
   onto the violated bound (movement deeper into infeasibility is paid
   for by the dynamic cost, never blocked). Returns the blocking row
   (or [-1] for a bound flip), the step, and the bound hit. *)
let ratio_test st ~phase1 ~dir ~w ~j =
  let m = st.sp.Sparse.m in
  let theta = ref (st.hi.(j) -. st.lo.(j)) in
  if Float.is_nan !theta then theta := Float.infinity;
  let leave = ref (-1) and to_upper = ref false in
  for r = 0 to m - 1 do
    let y = dir *. w.(r) in
    if Float.abs y > eps_pivot then begin
      let b = st.bcols.(r) in
      let xb = st.x.(b) in
      let cap, up =
        if phase1 && xb < st.lo.(b) -. eps_feas then
          (* infeasible below: blocks only when rising back to lower *)
          if y < 0. then ((st.lo.(b) -. xb) /. -.y, false)
          else (Float.infinity, false)
        else if phase1 && xb > st.hi.(b) +. eps_feas then
          if y > 0. then ((xb -. st.hi.(b)) /. y, true)
          else (Float.infinity, false)
        else if y > 0. then ((xb -. st.lo.(b)) /. y, false)
        else ((st.hi.(b) -. xb) /. -.y, true)
      in
      if cap < Float.infinity then
        if
          cap < !theta -. 1e-12
          || (cap < !theta +. 1e-12
             && (!leave < 0 || b < st.bcols.(!leave)))
        then begin
          theta := Float.max 0. cap;
          leave := r;
          to_upper := up
        end
    end
  done;
  (!leave, !theta, !to_upper)

let apply_primal_step st ~j ~dir ~w ~leave ~theta ~to_upper =
  let m = st.sp.Sparse.m in
  let step = dir *. theta in
  if theta > 0. then begin
    for r = 0 to m - 1 do
      let b = st.bcols.(r) in
      st.x.(b) <- st.x.(b) -. (step *. w.(r))
    done;
    st.x.(j) <- st.x.(j) +. step
  end;
  track_degeneracy st theta;
  Lp_stats.incr Lp_stats.pivots;
  st.iters <- st.iters - 1;
  if leave < 0 then begin
    (* bound flip: [j] crosses its whole range, stays nonbasic *)
    st.stat.(j) <- (if dir > 0. then At_upper else At_lower);
    st.x.(j) <- (if dir > 0. then st.hi.(j) else st.lo.(j))
  end
  else begin
    let out = st.bcols.(leave) in
    st.x.(out) <- (if to_upper then st.hi.(out) else st.lo.(out));
    st.stat.(out) <- (if to_upper then At_upper else At_lower);
    basis_exchange st ~r:leave ~j ~w
  end

(* One primal phase. Phase 1 minimizes total bound infeasibility of the
   basic variables (dynamic ±1 costs); phase 2 minimizes the real
   objective. *)
let run_primal st ~phase1 =
  let sp = st.sp in
  let m = sp.Sparse.m and n = sp.Sparse.n in
  let cb = Array.make (max m 1) 0. in
  let rec loop () =
    if st.iters <= 0 then `Iters
    else begin
      (* basic cost row + feasibility measure *)
      let maxviol = ref 0. in
      for r = 0 to m - 1 do
        let b = st.bcols.(r) in
        let xb = st.x.(b) in
        if xb < st.lo.(b) -. eps_feas then begin
          maxviol := Float.max !maxviol (st.lo.(b) -. xb);
          cb.(r) <- -1.
        end
        else if xb > st.hi.(b) +. eps_feas then begin
          maxviol := Float.max !maxviol (xb -. st.hi.(b));
          cb.(r) <- 1.
        end
        else cb.(r) <- (if phase1 then 0. else sp.Sparse.cost.(b))
      done;
      if phase1 && !maxviol <= eps_feas then `Feasible
      else begin
        let y = Basis.btran st.bas cb in
        (* pricing: d_j = c_j - y . a_j over nonbasic columns *)
        let best = ref (-1) and best_score = ref eps_cost and best_dir = ref 1. in
        (try
           for j = 0 to n - 1 do
             if st.stat.(j) <> Basic then begin
               let cj = if phase1 then 0. else sp.Sparse.cost.(j) in
               let d = cj -. Sparse.col_dot sp j y in
               let dir = entering_dir st j d in
               if dir <> 0. then
                 if st.bland then begin
                   best := j;
                   best_dir := dir;
                   raise Exit
                 end
                 else if Float.abs d > !best_score then begin
                   best := j;
                   best_score := Float.abs d;
                   best_dir := dir
                 end
             end
           done
         with Exit -> ());
        if !best < 0 then
          if phase1 then `Still_infeasible
          else if !maxviol > eps_feas then
            (* refactorization drift pushed a basic outside its bounds:
               pricing is clean but the point is not feasible, so this
               is not an optimum *)
            `Lost_feas
          else `Optimal
        else begin
          let j = !best and dir = !best_dir in
          let w = Basis.ftran st.bas (dense_column st j) in
          let leave, theta, to_upper = ratio_test st ~phase1 ~dir ~w ~j in
          if leave < 0 && theta = Float.infinity then
            if phase1 then `Still_infeasible (* numerically stuck ray *)
            else `Unbounded
          else begin
            apply_primal_step st ~j ~dir ~w ~leave ~theta ~to_upper;
            loop ()
          end
        end
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Dual simplex                                                        *)

(* Reduced costs of all columns for the real objective. *)
let reduced_costs st =
  let sp = st.sp in
  let m = sp.Sparse.m and n = sp.Sparse.n in
  let cb = Array.make (max m 1) 0. in
  for r = 0 to m - 1 do
    cb.(r) <- sp.Sparse.cost.(st.bcols.(r))
  done;
  let y = Basis.btran st.bas cb in
  Array.init n (fun j ->
      if st.stat.(j) = Basic then 0.
      else sp.Sparse.cost.(j) -. Sparse.col_dot sp j y)

let dual_feasible st d =
  let ok = ref true in
  Array.iteri
    (fun j s ->
      if !ok && s <> Basic && st.hi.(j) -. st.lo.(j) > 1e-12 then
        match s with
        | At_lower -> if d.(j) < -.eps_dual then ok := false
        | At_upper -> if d.(j) > eps_dual then ok := false
        | At_zero -> if Float.abs d.(j) > eps_dual then ok := false
        | Basic -> ())
    st.stat;
  !ok

(* Dual simplex loop: repair primal feasibility while keeping dual
   feasibility. Assumes the caller verified dual feasibility. *)
let run_dual st =
  let sp = st.sp in
  let m = sp.Sparse.m and n = sp.Sparse.n in
  let rec loop () =
    if st.iters <= 0 then `Iters
    else begin
      (* leaving: the most violated basic variable *)
      let r = ref (-1) and viol = ref eps_feas and below = ref false in
      for i = 0 to m - 1 do
        let b = st.bcols.(i) in
        let xb = st.x.(b) in
        if st.lo.(b) -. xb > !viol then begin
          viol := st.lo.(b) -. xb;
          r := i;
          below := true
        end
        else if xb -. st.hi.(b) > !viol then begin
          viol := xb -. st.hi.(b);
          r := i;
          below := false
        end
      done;
      if !r < 0 then `Optimal
      else begin
        let r = !r and below = !below in
        let d = reduced_costs st in
        let er = Array.make (max m 1) 0. in
        er.(r) <- 1.;
        let rho = Basis.btran st.bas er in
        (* dual ratio test over the pivot row alpha_j = rho . a_j *)
        let bestj = ref (-1)
        and best_ratio = ref Float.infinity
        and best_mag = ref 0. in
        (try
           for j = 0 to n - 1 do
             if st.stat.(j) <> Basic && st.hi.(j) -. st.lo.(j) > 1e-12 then begin
               let alpha = Sparse.col_dot sp j rho in
               if Float.abs alpha > eps_pivot then begin
                 let eligible =
                   match (st.stat.(j), below) with
                   | At_lower, true -> alpha < 0.
                   | At_lower, false -> alpha > 0.
                   | At_upper, true -> alpha > 0.
                   | At_upper, false -> alpha < 0.
                   | At_zero, _ -> true
                   | Basic, _ -> false
                 in
                 if eligible then begin
                   let ratio = Float.abs d.(j) /. Float.abs alpha in
                   if st.bland then begin
                     (* Bland mode still needs the min-ratio test (a
                        non-min-ratio dual pivot breaks dual
                        feasibility); the scan runs in column order, so
                        taking only strict improvements keeps the
                        lowest index among ratio ties *)
                     if ratio < !best_ratio -. 1e-12 then begin
                       bestj := j;
                       best_ratio := ratio;
                       best_mag := Float.abs alpha
                     end
                   end
                   else if
                     ratio < !best_ratio -. 1e-12
                     || (ratio < !best_ratio +. 1e-12
                        && Float.abs alpha > !best_mag)
                   then begin
                     bestj := j;
                     best_ratio := ratio;
                     best_mag := Float.abs alpha
                   end
                 end
               end
             end
           done
         with Exit -> ());
        if !bestj < 0 then `Infeasible (* dual unbounded *)
        else begin
          let q = !bestj in
          let w = Basis.ftran st.bas (dense_column st q) in
          if Float.abs w.(r) < 1e-9 then `Numerical
          else begin
            let out = st.bcols.(r) in
            let bound = if below then st.lo.(out) else st.hi.(out) in
            let t = (st.x.(out) -. bound) /. w.(r) in
            for i = 0 to m - 1 do
              let b = st.bcols.(i) in
              st.x.(b) <- st.x.(b) -. (t *. w.(i))
            done;
            st.x.(q) <- st.x.(q) +. t;
            st.x.(out) <- bound;
            st.stat.(out) <- (if below then At_lower else At_upper);
            track_degeneracy st (Float.abs d.(q));
            Lp_stats.incr Lp_stats.dual_pivots;
            Lp_stats.incr Lp_stats.pivots;
            st.iters <- st.iters - 1;
            basis_exchange st ~r ~j:q ~w;
            loop ()
          end
        end
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)

let extract_basis ?(keep_factor = false) st =
  (* [keep_factor] publishes the LU snapshot at extraction time instead
     of on first warm use. A basis shared across concurrent subtree
     solves then carries its factorization from birth: every sharer
     reinstates in O(m) (Basis.of_snapshot), and the factorization
     counter stays independent of which domain warms first — a lazy
     fill would let racing sharers each pay (and count) a Basis.create. *)
  let bfactor =
    if keep_factor then Atomic.make (Some (Basis.snapshot st.bas))
    else Atomic.make None
  in
  Some
    {
      bn = st.sp.Sparse.n;
      bnv = st.sp.Sparse.nv;
      bstat = Array.copy st.stat;
      bbcols = Array.copy st.bcols;
      bfactor;
    }

let finish_optimal ?keep_factor (prep : prepared) st =
  let values = Array.sub st.x 0 st.sp.Sparse.nv in
  let _, obj = Model.objective prep.pmodel in
  (Optimal { obj = Linexpr.eval values obj; values }, extract_basis ?keep_factor st)

let cold_solve ?keep_factor prep ~rhs bounds ~max_iters ~degen_limit =
  let st = cold_state prep ~rhs bounds ~max_iters ~degen_limit in
  let rec go () =
    match run_primal st ~phase1:true with
    | `Iters -> (Iter_limit, None)
    | `Still_infeasible | `Optimal | `Unbounded | `Lost_feas ->
      (Infeasible, None)
    | `Feasible -> (
      match run_primal st ~phase1:false with
      | `Optimal -> finish_optimal ?keep_factor prep st
      | `Lost_feas ->
        (* restore feasibility with another phase 1 on the remaining
           budget (Lost_feas implies at least one pivot was spent, so
           this terminates) *)
        if st.iters > 0 then go () else (Iter_limit, None)
      | `Unbounded -> (Unbounded, None)
      | `Iters -> (Iter_limit, None)
      | `Feasible | `Still_infeasible -> assert false)
  in
  go ()

let default_iters sp = (50 * (sp.Sparse.m + sp.Sparse.n)) + 200

let of_dense = function
  | Dense_simplex.Optimal { obj; values } -> Optimal { obj; values }
  | Dense_simplex.Infeasible -> Infeasible
  | Dense_simplex.Unbounded -> Unbounded
  | Dense_simplex.Iter_limit -> Iter_limit

let solve_prepared ?(engine = Revised) ?lb ?ub ?b ?max_iters ?degen_limit ?warm
    ?keep_factor (prep : prepared) =
  (match b with
  | Some rhs when Array.length rhs <> prep.sp.Sparse.m ->
    invalid_arg "Simplex.solve_prepared: rhs overlay length <> rows"
  | Some _ when engine = Dense ->
    invalid_arg "Simplex.solve_prepared: rhs overlay needs the revised engine"
  | _ -> ());
  match engine with
  | Dense -> (of_dense (Dense_simplex.solve ?lb ?ub ?max_iters prep.pmodel), None)
  | Revised -> (
    let sp = prep.sp in
    let rhs = match b with Some rhs -> rhs | None -> sp.Sparse.b in
    let max_iters = match max_iters with Some k -> k | None -> default_iters sp in
    let degen_limit =
      match degen_limit with
      | Some k -> k
      | None -> max 50 (sp.Sparse.m + sp.Sparse.n)
    in
    try
      let bounds = fresh_bounds prep ?lb ?ub () in
      let cold iters =
        try cold_solve ?keep_factor prep ~rhs bounds ~max_iters:iters ~degen_limit
        with Basis.Singular _ when b = None ->
          (* pathological basis beyond slack repair: degrade to the
             dense tableau rather than crash the solve. With a rhs
             overlay the dense engine would solve the wrong rhs, so
             Singular propagates to the caller instead. *)
          (of_dense (Dense_simplex.solve ?lb ?ub ~max_iters prep.pmodel), None)
      in
      let warm =
        match warm with
        | Some b when b.bn = sp.Sparse.n && b.bnv = sp.Sparse.nv -> Some b
        | _ -> None
      in
      match warm with
      | None -> cold max_iters
      | Some wb -> (
        Lp_stats.incr Lp_stats.warm_attempts;
        let attempt =
          try
            let st = warm_state prep ~rhs bounds wb ~max_iters ~degen_limit in
            if not (dual_feasible st (reduced_costs st)) then
              `Cold max_iters
            else begin
              match run_dual st with
              | `Optimal ->
                (* a mid-solve repair/refactorization can perturb the
                   reduced costs; only trust a basis the dual simplex
                   left dual feasible, otherwise its bound may be
                   understated *)
                if dual_feasible st (reduced_costs st) then
                  `Done (finish_optimal ?keep_factor prep st)
                else `Cold (max 1 st.iters)
              | `Infeasible ->
                (* dual unboundedness proves primal infeasibility only
                   from a dual-feasible basis *)
                if dual_feasible st (reduced_costs st) then
                  `Done (Infeasible, None)
                else `Cold (max 1 st.iters)
              | `Numerical | `Iters ->
                (* fall back to a cold solve on the remaining budget *)
                `Cold (max 1 st.iters)
            end
          with Basis.Singular _ -> `Cold max_iters
        in
        match attempt with
        | `Done r ->
          Lp_stats.incr Lp_stats.warm_hits;
          r
        | `Cold iters -> cold iters)
    with Box_infeasible -> (Infeasible, None))

let solve ?engine ?lb ?ub ?max_iters model =
  fst (solve_prepared ?engine ?lb ?ub ?max_iters (prepare model))
