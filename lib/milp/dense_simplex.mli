(** Legacy two-phase primal simplex on a dense tableau.

    Kept as the reference engine behind [--dense-simplex] for
    differential testing of the revised engine ({!Simplex}); the
    bounded-variable semantics, tolerances and pivot rules are
    unchanged from when this was the only LP kernel. Pivots count into
    the shared {!Lp_stats.pivots} counter. *)

type result =
  | Optimal of { obj : float; values : float array }
      (** Proven optimal; [values] is indexed by model variable id. *)
  | Infeasible
  | Unbounded
  | Iter_limit
      (** The iteration budget was exhausted before optimality. *)

(** [solve ?lb ?ub ?max_iters model] solves the LP relaxation of [model]
    (integrality is ignored). [lb]/[ub] override the model's variable
    bounds. The default iteration budget is [50 * (rows + cols) + 200]. *)
val solve :
  ?lb:float array ->
  ?ub:float array ->
  ?max_iters:int ->
  Model.t ->
  result
