(** LU-factorized simplex basis with product-form (eta) updates.

    A basis is an ordered selection of [m] columns of a {!Sparse}
    matrix, one per row position. The factorization is a sparse LU with
    Markowitz ordering and threshold pivoting; each basis exchange
    appends an eta transformation instead of refactorizing, and the
    factorization is rebuilt when the eta file grows past its cap or a
    pivot falls below the stability threshold (with a residual check on
    every rebuild). All counters are domain-local ({!Lp_stats}). *)

type t

(** Raised (by {!create} or a refactorizing {!replace}) when a basis
    stays singular after the slack-repair attempts. Callers should
    degrade — e.g. restart from the all-slack basis or another
    engine — rather than treat this as fatal. *)
exception Singular of string

(** [create a bcols] factorizes the basis formed by columns
    [bcols.(0..m-1)] of [a] (the array is copied). Structurally or
    numerically singular selections are repaired by replacing the
    offending positions with their rows' slack columns — the repair is
    visible through {!bcols}. *)
val create : Sparse.t -> int array -> t

(** Current basis column of every row position (fresh copy). *)
val bcols : t -> int array

(** [ftran t b] solves [B x = b]. [b] is dense, indexed by row; the
    result is indexed by basis position. [b] is not modified. *)
val ftran : t -> float array -> float array

(** [btran t c] solves [B^T y = c]. [c] is dense, indexed by basis
    position; the result is indexed by row. [c] is not modified. *)
val btran : t -> float array -> float array

(** [replace t ~r ~col ~w] installs [col] as the basic column of
    position [r], where [w = ftran t (column col)] is the pivot column
    in position space. Appends an eta update, or refactorizes when the
    eta file is full or [w.(r)] is unstable. Returns [true] when a
    refactorization happened; the rebuild may repair a singular
    selection (as in {!create}), so callers must then re-read {!bcols}
    to reconcile their own column/status bookkeeping and recompute
    values from scratch to shed accumulated drift. *)
val replace : t -> r:int -> col:int -> w:float array -> bool

(** Positive when [replace] refactorized due to instability at least
    once for this basis (diagnostic). *)
val refactor_count : t -> int

(** {1 Factorization snapshots}

    A snapshot freezes a basis's column selection together with its LU
    factors; {!of_snapshot} reinstates them in O(m) without
    refactorizing. The batched scenario engine uses this to pay for one
    symbolic+numeric factorization of the healthy-network basis and
    reuse it across thousands of warm overlay solves. A snapshot is an
    immutable value: sharing it between domains is safe, and reinstating
    it yields bit-identical FTRAN/BTRAN results to a fresh {!create} of
    the same columns (the factorization is deterministic). *)

type snapshot

(** [snapshot t] captures [t]'s current basis. Refactorizes first if
    eta updates have accumulated, so the snapshot is always pure LU. *)
val snapshot : t -> snapshot

(** [of_snapshot a s] reinstates [s] against [a]. Returns [None] unless
    [a] is physically the matrix [s] was factorized from — the factors
    are meaningless for any other matrix, even a structurally equal
    one. *)
val of_snapshot : Sparse.t -> snapshot -> t option
