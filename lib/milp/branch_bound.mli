(** Branch-and-bound MILP solver over the {!Simplex} LP solver.

    Best-bound search with a depth tiebreak, variable branching priorities
    (the Raha encodings branch on link-failure binaries first), an optional
    warm-start incumbent, and node/time limits. Time limits make the solver
    return its best incumbent together with the remaining bound — this is
    the "timeout" behaviour §6 of the paper relies on. *)

(** Branching-variable selection rule. *)
type branching =
  | Reliability
      (** Pseudocost branching with strong-branching initialization:
          per-variable up/down degradation estimates, seeded by dual
          warm-started probes of both children until a variable has
          enough observations to be reliable, then maintained from every
          child LP solved in the tree. Ties break on (score, lowest id),
          so the selection is deterministic and bit-identical across
          pool widths. Default. *)
  | Fractional
      (** Legacy most-fractional rule: branch on the variable whose LP
          value is furthest from an integer. *)

type options = {
  max_nodes : int;  (** node budget; default 200_000 *)
  time_limit : float;  (** wall-clock seconds; default [infinity] *)
  abs_gap : float;  (** stop when [bound - incumbent <= abs_gap] *)
  rel_gap : float;  (** stop on relative gap; default 1e-6 *)
  int_tol : float;  (** integrality tolerance; default 1e-6 *)
  log : bool;  (** emit progress on [Logs] *)
  branch_priority : int -> int;
      (** Higher priority variables are branched first; default [fun _ -> 0]. *)
  warm_start : float array option;
      (** Candidate solution checked for feasibility and used as the
          initial incumbent. *)
  plunge_hints : (int * float) list list;
      (** Partial assignments [(var id, value)]: each is fixed into the
          root bounds and plunged for an initial incumbent. Raha seeds
          these with concrete candidate failure scenarios. *)
  engine : Simplex.engine;
      (** LP kernel for node relaxations; default {!Simplex.Revised}.
          Under the revised engine every child node warm-starts from its
          parent's optimal basis via the dual simplex. *)
  sx_iters : int option;
      (** Per-LP simplex iteration budget; default [None] (the engine's
          own default). A node whose LP exhausts this budget is dropped
          from the search with its parent bound folded into the final
          bound, and the outcome degrades [Optimal] -> [Feasible]
          (exposed mainly so tests can force the degradation path). *)
  cuts : Cuts.options;
      (** Cutting planes ({!Cuts}): separation rounds run at the root
          and every [node_interval] in-tree nodes, the LP is re-prepared
          on the extended row set, and parent bases extend over appended
          cut rows so dual warm starts survive. Default {!Cuts.default};
          [Cuts.disabled] ([--no-cuts]) restores the pre-cut search
          exactly. A cut that fails its incumbent audit is dropped and
          taints the outcome ([Optimal] -> [Feasible]). *)
  pool : Parallel.Pool.t option;
      (** Domain pool for concurrent subtree solves; default [None]
          (rounds run inline). The round scheduler is the same algorithm
          either way — it engages purely on frontier width — so results
          and all counters are bit-identical for any pool width,
          including no pool at all. *)
  par_width : int;
      (** Open-node frontier size at which the search switches from
          sequential best-first steps to parallel subtree rounds
          (clamped to [>= 2] so the root is always processed
          sequentially); [<= 0] disables rounds entirely, restoring the
          pure legacy loop. Default 32. *)
  par_grain : int;
      (** Per-task node budget within one round: each frontier subtree
          explores at most this many nodes before handing its open
          nodes back at the barrier. Default 64. *)
  branching : branching;
      (** Branching-variable selection rule; default {!Reliability}.
          [Fractional] restores the pre-pseudocost search exactly (no
          probes, no pseudocost bookkeeping). *)
  heuristics : bool;
      (** Enable the feasibility pump and RINS ({!Heuristics});
          default [true]. [false] keeps only the legacy diving cadence.
          Every heuristic candidate is re-checked against the model at
          [int_tol] — the same tolerance {!Certify} enforces — before it
          can become the incumbent, so heuristics can never admit an
          incumbent the certifier would reject. *)
  rins_freq : int;
      (** Run RINS every this many nodes once an incumbent exists;
          [<= 0] disables RINS. Default 200. *)
  on_incumbent : (float array -> unit) option;
      (** Called with each accepted incumbent point (after the
          feasibility re-check, before cut audit); default [None].
          Exposed for tests that assert properties of every incumbent
          the search admits. *)
}

val default : options

(** Node-heap ordering on [(parent bound, depth)]: true when the first
    node should be explored before the second. Bounds within a relative
    tolerance count as ties and fall through to the deeper-first
    tiebreak (exposed for unit tests). *)
val better_key : float * int -> float * int -> bool

(** Domain-local cumulative node count across all solves on the calling
    domain, in the shape {!Parallel.Pool} counter hooks expect (see
    {!Simplex.cumulative_iterations}). *)
val cumulative_nodes : unit -> int

(** Domain-local cumulative count of parallel subtree rounds. Rounds
    are scheduled by the solve's owner domain, so reading this before
    and after a solve on the calling domain gives that solve's round
    count whatever pool (if any) ran the subtree tasks. *)
val cumulative_rounds : unit -> int

(** Domain-local cumulative strong-branching probes (child LPs solved
    purely to initialize pseudocosts), pool-hook shaped like
    {!cumulative_nodes}. *)
val cumulative_sb_probes : unit -> int

(** Domain-local cumulative pseudocost observations folded into the
    table — probe gains plus per-child-LP gains, counted once at
    generation (parallel-round merges do not re-count). *)
val cumulative_pseudocost_updates : unit -> int

(** Domain-local cumulative incumbents produced by primal heuristics
    (diving, pump, RINS) and accepted by the [int_tol] re-check. *)
val cumulative_heuristic_solutions : unit -> int

(** Domain-local cumulative heuristic candidates rejected by the
    [int_tol] re-check before reaching the incumbent path. *)
val cumulative_heuristic_rejections : unit -> int

type outcome =
  | Optimal  (** incumbent proven optimal within the gap *)
  | Feasible
      (** limits hit with an incumbent in hand, or a node's LP hit its
          iteration budget and was dropped — either way an unexplored
          subtree remains, covered by [bound] *)
  | No_incumbent  (** limits hit before any incumbent was found *)
  | Infeasible
  | Unbounded

type stats = {
  nodes : int;
  simplex_iters : int;
      (** owner-side iteration deltas plus per-task deltas — identical
          across pool widths, unlike a raw domain-local counter diff *)
  elapsed : float;
  rounds : int;  (** parallel subtree rounds executed (0 = pure sequential) *)
  dropped : int;  (** subtrees dropped on a per-LP iteration budget *)
  dropped_key : float;
      (** tightest parent bound over the dropped subtrees, in the
          internal maximization sense; [neg_infinity] when none. Folded
          into the reported [bound]; exposed so determinism tests can
          compare the dropped-subtree accounting directly. *)
}

type t = {
  outcome : outcome;
  obj : float;  (** incumbent objective (meaningful for Optimal/Feasible) *)
  bound : float;  (** best remaining dual bound *)
  values : float array;  (** incumbent point, indexed by variable id *)
  stats : stats;
}

(** Solve the MILP. The returned [bound] always brackets the true optimum:
    for maximization, [obj <= optimum <= bound]. *)
val solve : ?options:options -> Model.t -> t
