type t = {
  orig_nv : int;
  fixed : float array; (* per original id; meaningful where reduced_of < 0 *)
  kept : int array; (* reduced id -> original id *)
  reduced_of : int array; (* original id -> reduced id, -1 when fixed *)
}

let make ~is_fixed ~value =
  let orig_nv = Array.length is_fixed in
  let reduced_of = Array.make orig_nv (-1) in
  let n = ref 0 in
  for j = 0 to orig_nv - 1 do
    if not is_fixed.(j) then begin
      reduced_of.(j) <- !n;
      incr n
    end
  done;
  let kept = Array.make !n 0 in
  for j = 0 to orig_nv - 1 do
    if reduced_of.(j) >= 0 then kept.(reduced_of.(j)) <- j
  done;
  { orig_nv; fixed = Array.copy value; kept; reduced_of }

let num_original t = t.orig_nv
let num_reduced t = Array.length t.kept
let orig_of_reduced t rid = t.kept.(rid)

let reduced_of_orig t j =
  if t.reduced_of.(j) < 0 then None else Some t.reduced_of.(j)

let value_of_fixed t j = if t.reduced_of.(j) < 0 then Some t.fixed.(j) else None

let restore t reduced =
  if Array.length reduced < Array.length t.kept then reduced
  else begin
    let out = Array.copy t.fixed in
    Array.iteri (fun rid j -> out.(j) <- reduced.(rid)) t.kept;
    out
  end

let restore_statuses t ~fill reduced =
  if Array.length reduced < Array.length t.kept then reduced
  else begin
    let out = Array.make t.orig_nv fill in
    Array.iteri (fun rid j -> out.(j) <- reduced.(rid)) t.kept;
    out
  end

let reduce_point t orig =
  if Array.length orig < t.orig_nv then None
  else Some (Array.map (fun j -> orig.(j)) t.kept)

let reduce_hint t hint =
  List.filter_map
    (fun (j, v) ->
      if j < 0 || j >= t.orig_nv || t.reduced_of.(j) < 0 then None
      else Some (t.reduced_of.(j), v))
    hint
