(** Facade over {!Simplex} and {!Branch_bound}.

    Dispatches pure LPs to the simplex and mixed-integer models to
    branch-and-bound, with a single option record mirroring how Raha
    configures its backend (§6: timeouts; §8: node budgets). *)

type options = {
  time_limit : float;  (** seconds of wall clock; default [infinity] *)
  max_nodes : int;
  abs_gap : float;
      (** absolute optimality gap, shared with branch-and-bound and the
          certifier (derived from {!Branch_bound.default}) *)
  rel_gap : float;
  int_tol : float;
      (** integrality tolerance, shared with branch-and-bound and the
          certifier (derived from {!Branch_bound.default}) *)
  log : bool;
  branch_priority : int -> int;
  warm_start : float array option;
  plunge_hints : (int * float) list list;
      (** partial assignments plunged for initial incumbents; see
          {!Branch_bound.options} *)
  presolve : bool;
      (** run {!Presolve} before solving (default [true]); solutions are
          postsolved back to the original indexing, so this is externally
          invisible apart from speed *)
  dense_simplex : bool;
      (** solve LP relaxations with the legacy dense tableau
          ({!Dense_simplex}) instead of the revised engine (default
          [false]); forfeits warm starts and basis statuses *)
  certify : bool;
      (** independently re-validate every answer against the original
          model via {!Certify} (default [true]; [--no-certify] at the
          CLI). A failed certificate downgrades the status — see
          {!solve} — rather than raising. *)
  cuts : Cuts.options;
      (** cutting planes for MILP solves ({!Cuts}: Gomory mixed-integer,
          knapsack cover and clique cuts over a managed pool). Default
          {!Cuts.default}; [Cuts.disabled] ([--no-cuts] at the CLI)
          restores the cut-free search exactly. *)
  sx_iters : int option;
      (** simplex pivot budget per LP (default [None] = unlimited),
          threaded to {!Branch_bound.options.sx_iters} and the pure-LP
          path. Exhaustion is honest, never silent: a budget-dropped
          subtree degrades [Optimal] to [Feasible] (or [Infeasible] to
          [Unknown]) with the bound folded over the dropped parents —
          the admission-control knob a serving layer needs. *)
  pool : Parallel.Pool.t option;
      (** domain pool for concurrent branch-and-bound subtree solves
          (default [None] = inline). Results and counters are
          bit-identical for any pool width — see
          {!Branch_bound.options.pool}. A solve issued from inside a
          pool task never re-enters the pool (rounds run inline). *)
  bb_width : int;
      (** frontier width that triggers parallel subtree rounds; [<= 0]
          restores the pure sequential search. See
          {!Branch_bound.options.par_width}. *)
  bb_grain : int;
      (** per-subtree node budget within a round; see
          {!Branch_bound.options.par_grain}. *)
  branching : Branch_bound.branching;
      (** branching-variable selection rule (default
          {!Branch_bound.Reliability}; [--branching=fractional] at the
          CLI restores the legacy most-fractional rule exactly) *)
  heuristics : bool;
      (** enable the feasibility pump and RINS primal heuristics
          (default [true]; [--no-heuristics] at the CLI keeps only the
          legacy diving cadence); see {!Branch_bound.options.heuristics} *)
  rins_freq : int;
      (** RINS cadence in nodes once an incumbent exists; [<= 0]
          disables RINS (default 200, [--rins-freq] at the CLI) *)
}

(** Defaults shared with branch-and-bound are derived from
    {!Branch_bound.default}; [presolve] defaults to [true]. *)
val default_options : options

val with_time_limit : float -> options

type status =
  | Optimal
  | Feasible  (** limits hit; incumbent available, bound reported *)
  | Infeasible
  | Unbounded
  | Unknown  (** limits hit before any feasible point was found *)

type solution = {
  status : status;
  obj : float;
  bound : float;
  values : float array;
  statuses : Simplex.vstat array;
      (** optimal-basis status per variable (original indexing, presolve
          fixings filled with [At_lower]); empty for MILPs, non-optimal
          outcomes, and the dense engine *)
  certificate : Certify.t option;
      (** the certification verdict and residuals; [None] when
          certification is off or the outcome carries no point *)
  nodes : int;
  elapsed : float;
}

(** [solve model] solves and — unless [?certify] (or [options.certify])
    is [false] — re-validates the answer against the original model with
    {!Certify.check}. A failed certificate never raises: a bad claimed
    point degrades the status to [Unknown], a bad bound / open gap /
    failed dual certificate degrades [Optimal] to [Feasible], and the
    diagnostics land in [certificate], the [milp.solver]/[milp.certify]
    log sources and the [certify-failures] counter. *)
val solve : ?certify:bool -> ?options:options -> Model.t -> solution

(** [value sol v] reads variable [v] from the solution point. *)
val value : solution -> Model.var -> float

(** [bool_value sol v] rounds a binary variable to [true]/[false]. *)
val bool_value : solution -> Model.var -> bool

(** True when the solution carries a usable point (Optimal or Feasible). *)
val has_point : solution -> bool

(** Domain-local cumulative counter hooks — simplex pivots ([simplex],
    primal + dual across both engines), revised-engine internals
    ([dual-pivots], [factorizations], [eta-updates], [warm-attempts],
    [warm-hits]), branch-and-bound nodes ([bb-nodes]), presolve
    reductions ([presolve-rows]/[presolve-cols]/[presolve-bigm]),
    certification verdicts ([certify-checks]/[certify-failures]) and
    cutting-plane activity ([cuts-generated]/[cuts-applied]/
    [cuts-pruned]/[cut-audit-failures]) — in the shape
    [Parallel.Pool.create ~counters] expects; pass this to a pool to
    have solver work aggregated into its one-line stats summaries. *)
val stats_counters : (string * (unit -> int)) list

val pp_status : Format.formatter -> status -> unit
