(** Primal heuristics for the branch-and-bound search.

    Three incumbent finders over the node LP relaxation, all driven by
    bound changes only (the prepared LP is never re-built):

    - {!dive}: LP-guided diving — repeatedly fix the most fractional
      integer variable to its rounded value and re-solve, with one flip
      retry per variable on infeasibility. This is the solver's original
      "plunge", generalized so RINS can run it over restricted bounds.
    - {!pump}: a feasibility pump over roundings — fix every integer
      variable to the rounding of the relaxation point and let the LP
      repair the continuous part; on infeasibility, flip the most
      ambiguous roundings (fractional part closest to 1/2) one at a
      time, cumulatively, until the fixing becomes feasible or the flip
      budget runs out.
    - {!rins}: relaxation-induced neighborhood search — fix the integer
      variables on which the incumbent and the node relaxation agree,
      then {!dive} the remaining free neighborhood.

    Every candidate returned here is only a *proposal*: branch-and-bound
    re-checks it against the original model at the solver's integrality
    tolerance (the same tolerance the certifier enforces) before it can
    become the incumbent.

    All heuristics run owner-side in the search (never inside parallel
    subtree tasks) and read the shared incumbent only through
    {!env.cutoff}, so they preserve the bit-identity of results across
    pool widths. *)

type env = {
  lp :
    Simplex.basis option ->
    lb:float array ->
    ub:float array ->
    Simplex.result * Simplex.basis option;
      (** solve the prepared node LP under the given bounds, warm from
          an optional basis *)
  int_ids : int array;  (** integer-constrained variable ids *)
  int_tol : float;  (** integrality tolerance (also the flip epsilon) *)
  abs_gap : float;
  osign : float;  (** +1 for maximization, -1 for minimization *)
  cutoff : unit -> float;
      (** current incumbent objective in the internal maximization
          sense; [neg_infinity] when none *)
}

(** [dive env ?basis lb ub] fixes toward integrality from the LP optimum
    under [lb, ub]. Returns [(point, obj)] in the internal maximization
    sense when it reaches a point that is integral within [int_tol] and
    beats [cutoff () + abs_gap]. Bounds arrays are not modified. *)
val dive :
  env -> ?basis:Simplex.basis -> float array -> float array ->
  (float array * float) option

(** [pump env ?basis ~relax lb ub] starts from relaxation point [relax]
    (the current node's LP optimum) instead of re-solving it. *)
val pump :
  env -> ?basis:Simplex.basis -> relax:float array ->
  float array -> float array -> (float array * float) option

(** [rins env ?basis ~incumbent ~relax lb ub] dives the neighborhood
    where [incumbent] and [relax] disagree. Returns [None] without
    solving anything when the agreement set is empty or total (no
    neighborhood to search). *)
val rins :
  env -> ?basis:Simplex.basis -> incumbent:float array ->
  relax:float array -> float array -> float array ->
  (float array * float) option
