(* CSC standard form: structural columns from the model rows, one +1
   logical (slack) column per row. See sparse.mli for the layout. *)

type t = {
  m : int;
  n : int;
  nv : int;
  colptr : int array;
  rowind : int array;
  values : float array;
  b : float array;
  cost : float array;
  slack_lo : float array;
  slack_hi : float array;
}

let of_model model =
  let nv = Model.num_vars model in
  let conss = Model.conss model in
  let m = Array.length conss in
  let n = nv + m in
  (* column entry counts: structural from the rows, one per slack *)
  let count = Array.make n 0 in
  Array.iter
    (fun (c : Model.cons) ->
      Linexpr.iter (fun id v -> if v <> 0. then count.(id) <- count.(id) + 1) c.lhs)
    conss;
  for i = 0 to m - 1 do
    count.(nv + i) <- 1
  done;
  let colptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    colptr.(j + 1) <- colptr.(j) + count.(j)
  done;
  let nnz = colptr.(n) in
  let rowind = Array.make (max nnz 1) 0 in
  let values = Array.make (max nnz 1) 0. in
  let next = Array.copy colptr in
  let b = Array.make (max m 1) 0. in
  let slack_lo = Array.make (max m 1) 0. in
  let slack_hi = Array.make (max m 1) 0. in
  Array.iteri
    (fun i (c : Model.cons) ->
      Linexpr.iter
        (fun id v ->
          if v <> 0. then begin
            rowind.(next.(id)) <- i;
            values.(next.(id)) <- v;
            next.(id) <- next.(id) + 1
          end)
        c.lhs;
      let j = nv + i in
      rowind.(next.(j)) <- i;
      values.(next.(j)) <- 1.;
      next.(j) <- next.(j) + 1;
      b.(i) <- c.rhs;
      (match c.rel with
      | Model.Le ->
        slack_lo.(i) <- 0.;
        slack_hi.(i) <- Float.infinity
      | Model.Ge ->
        slack_lo.(i) <- Float.neg_infinity;
        slack_hi.(i) <- 0.
      | Model.Eq ->
        slack_lo.(i) <- 0.;
        slack_hi.(i) <- 0.))
    conss;
  let cost = Array.make n 0. in
  let sense, obj = Model.objective model in
  let osign = match sense with Model.Minimize -> 1. | Model.Maximize -> -1. in
  Linexpr.iter (fun id v -> cost.(id) <- osign *. v) obj;
  { m; n; nv; colptr; rowind; values; b; cost; slack_lo; slack_hi }

let nnz a = a.colptr.(a.n)

let col_iter a j f =
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    f a.rowind.(k) a.values.(k)
  done

let col_dot a j y =
  let acc = ref 0. in
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    acc := !acc +. (a.values.(k) *. y.(a.rowind.(k)))
  done;
  !acc

let axpy_col a j alpha x =
  for k = a.colptr.(j) to a.colptr.(j + 1) - 1 do
    let i = a.rowind.(k) in
    x.(i) <- x.(i) +. (alpha *. a.values.(k))
  done
