(* Domain-local counters shared by the LP engines.

   Every counter follows the Parallel.Pool hook contract (see
   Simplex.cumulative_iterations): a per-domain cumulative int that the
   pool samples around each chunk, so concurrent solves never race.
   Both the revised engine and the legacy dense tableau bump [pivots];
   the factorization/eta/dual/warm counters are revised-engine only. *)

let key () = Domain.DLS.new_key (fun () -> ref 0)

let pivots = key ()
let dual_pivots = key ()
let factorizations = key ()
let eta_updates = key ()
let warm_attempts = key ()
let warm_hits = key ()
let certify_checks = key ()
let certify_failures = key ()
let cuts_generated = key ()
let cuts_applied = key ()
let cuts_pruned = key ()
let cut_audit_failures = key ()
let batch_prepares = key ()
let batch_overlays = key ()
let batch_warm_hits = key ()
let sb_probes = key ()
let pseudocost_updates = key ()
let heuristic_solutions = key ()
let heuristic_rejections = key ()

let int_keys =
  [
    pivots; dual_pivots; factorizations; eta_updates; warm_attempts;
    warm_hits; certify_checks; certify_failures; cuts_generated;
    cuts_applied; cuts_pruned; cut_audit_failures; batch_prepares;
    batch_overlays; batch_warm_hits; sb_probes; pseudocost_updates;
    heuristic_solutions; heuristic_rejections;
  ]

let incr k = incr (Domain.DLS.get k)
let add k n = Domain.DLS.get k := !(Domain.DLS.get k) + n
let read k () = !(Domain.DLS.get k)

(* Float high-water marks, same domain-local discipline as the int
   counters. Maxes (unlike sums) cannot be delta-aggregated by a pool,
   so these are read directly — diagnostics, not pool counters. *)

let fkey () = Domain.DLS.new_key (fun () -> ref 0.)

let certify_max_primal_residual = fkey ()
let certify_max_dual_gap = fkey ()

let float_keys = [ certify_max_primal_residual; certify_max_dual_gap ]

let fmax k v =
  let r = Domain.DLS.get k in
  if v > !r then r := v

let fread k () = !(Domain.DLS.get k)

(* Zero every counter and high-water mark of the calling domain. Bench
   cells call this between runs so cumulative readings double as
   per-cell absolutes and the certify-* maxes cannot leak across cells.
   Per-domain by construction: a Parallel.Pool worker's counters are
   untouched (the pool aggregates those by delta instead). *)
let reset_all () =
  List.iter (fun k -> Domain.DLS.get k := 0) int_keys;
  List.iter (fun k -> Domain.DLS.get k := 0.) float_keys

(* --- per-query scopes --------------------------------------------------

   [reset_all] is a one-shot-CLI tool: in a long-lived daemon it would
   wipe the process-lifetime telemetry, and two queries separated only
   by cumulative reads would smear into each other. A scope instead
   samples the calling domain's counters at entry and reports
   since-entry deltas at exit, leaving the cumulative values untouched.
   The float high-water marks cannot be delta'd (they are maxes), so a
   scope saves them, zeroes them for the query, and folds the query's
   marks back into the saved values at exit — the global high-water
   mark is preserved as the max over queries. Scopes must therefore be
   exited in LIFO order on their own domain (the service serves queries
   sequentially per domain, so this holds by construction). *)

let float_names = [ "certify-max-primal-residual"; "certify-max-dual-gap" ]

type scope = {
  sc_hooks : (string * (unit -> int)) list;
  sc_ints : int array;  (* hook readings at entry *)
  sc_floats : float array;  (* saved high-water marks, [float_keys] order *)
}

let scope_enter ?(hooks = []) () =
  let sc_ints = Array.of_list (List.map (fun (_, f) -> f ()) hooks) in
  let sc_floats =
    Array.of_list
      (List.map
         (fun k ->
           let r = Domain.DLS.get k in
           let v = !r in
           r := 0.;
           v)
         float_keys)
  in
  { sc_hooks = hooks; sc_ints; sc_floats }

type scope_report = {
  scope_counters : (string * int) list;  (* per-scope hook deltas *)
  scope_fmax : (string * float) list;  (* per-scope high-water marks *)
}

let scope_exit scope =
  let scope_counters =
    List.mapi
      (fun i (name, f) -> (name, f () - scope.sc_ints.(i)))
      scope.sc_hooks
  in
  let scope_fmax =
    List.mapi
      (fun i k ->
        let r = Domain.DLS.get k in
        let query_max = !r in
        (* restore: global mark = max of the pre-scope mark and this
           query's *)
        r := Float.max query_max scope.sc_floats.(i);
        (List.nth float_names i, query_max))
      float_keys
  in
  { scope_counters; scope_fmax }
