(* Domain-local counters shared by the LP engines.

   Every counter follows the Parallel.Pool hook contract (see
   Simplex.cumulative_iterations): a per-domain cumulative int that the
   pool samples around each chunk, so concurrent solves never race.
   Both the revised engine and the legacy dense tableau bump [pivots];
   the factorization/eta/dual/warm counters are revised-engine only. *)

let key () = Domain.DLS.new_key (fun () -> ref 0)

let pivots = key ()
let dual_pivots = key ()
let factorizations = key ()
let eta_updates = key ()
let warm_attempts = key ()
let warm_hits = key ()
let certify_checks = key ()
let certify_failures = key ()

let incr k = incr (Domain.DLS.get k)
let add k n = Domain.DLS.get k := !(Domain.DLS.get k) + n
let read k () = !(Domain.DLS.get k)

(* Float high-water marks, same domain-local discipline as the int
   counters. Maxes (unlike sums) cannot be delta-aggregated by a pool,
   so these are read directly — diagnostics, not pool counters. *)

let fkey () = Domain.DLS.new_key (fun () -> ref 0.)

let certify_max_primal_residual = fkey ()
let certify_max_dual_gap = fkey ()

let fmax k v =
  let r = Domain.DLS.get k in
  if v > !r then r := v

let fread k () = !(Domain.DLS.get k)
