(* Domain-local counters shared by the LP engines.

   Every counter follows the Parallel.Pool hook contract (see
   Simplex.cumulative_iterations): a per-domain cumulative int that the
   pool samples around each chunk, so concurrent solves never race.
   Both the revised engine and the legacy dense tableau bump [pivots];
   the factorization/eta/dual/warm counters are revised-engine only. *)

let key () = Domain.DLS.new_key (fun () -> ref 0)

let pivots = key ()
let dual_pivots = key ()
let factorizations = key ()
let eta_updates = key ()
let warm_attempts = key ()
let warm_hits = key ()
let certify_checks = key ()
let certify_failures = key ()
let cuts_generated = key ()
let cuts_applied = key ()
let cuts_pruned = key ()
let cut_audit_failures = key ()
let batch_prepares = key ()
let batch_overlays = key ()
let batch_warm_hits = key ()

let int_keys =
  [
    pivots; dual_pivots; factorizations; eta_updates; warm_attempts;
    warm_hits; certify_checks; certify_failures; cuts_generated;
    cuts_applied; cuts_pruned; cut_audit_failures; batch_prepares;
    batch_overlays; batch_warm_hits;
  ]

let incr k = incr (Domain.DLS.get k)
let add k n = Domain.DLS.get k := !(Domain.DLS.get k) + n
let read k () = !(Domain.DLS.get k)

(* Float high-water marks, same domain-local discipline as the int
   counters. Maxes (unlike sums) cannot be delta-aggregated by a pool,
   so these are read directly — diagnostics, not pool counters. *)

let fkey () = Domain.DLS.new_key (fun () -> ref 0.)

let certify_max_primal_residual = fkey ()
let certify_max_dual_gap = fkey ()

let float_keys = [ certify_max_primal_residual; certify_max_dual_gap ]

let fmax k v =
  let r = Domain.DLS.get k in
  if v > !r then r := v

let fread k () = !(Domain.DLS.get k)

(* Zero every counter and high-water mark of the calling domain. Bench
   cells call this between runs so cumulative readings double as
   per-cell absolutes and the certify-* maxes cannot leak across cells.
   Per-domain by construction: a Parallel.Pool worker's counters are
   untouched (the pool aggregates those by delta instead). *)
let reset_all () =
  List.iter (fun k -> Domain.DLS.get k := 0) int_keys;
  List.iter (fun k -> Domain.DLS.get k := 0.) float_keys
