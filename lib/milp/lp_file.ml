(* Variable names must be LP-format safe: alphanumerics plus a few
   symbols, not starting with a digit or 'e'. We emit x<id> and keep the
   human name in a comment header. *)

let var_name id = Printf.sprintf "x%d" id

let append_expr b e =
  let first = ref true in
  Linexpr.iter
    (fun id c ->
      if c <> 0. then begin
        if c < 0. then Buffer.add_string b (if !first then "-" else "- ")
        else if not !first then Buffer.add_string b "+ ";
        let mag = Float.abs c in
        if mag <> 1. then Buffer.add_string b (Printf.sprintf "%.12g " mag);
        Buffer.add_string b (var_name id);
        Buffer.add_char b ' ';
        first := false
      end)
    e;
  if !first then Buffer.add_string b "0 "

let to_string m =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "\\ model: %s\n" (Model.name m));
  Array.iter
    (fun (v : Model.var) ->
      Buffer.add_string b (Printf.sprintf "\\ %s = %s\n" (var_name v.Model.vid) v.Model.vname))
    (Model.vars m);
  let sense, obj = Model.objective m in
  Buffer.add_string b
    (match sense with Model.Maximize -> "Maximize\n obj: " | Model.Minimize -> "Minimize\n obj: ");
  append_expr b obj;
  (* Presolved models carry the fixed variables' contribution as an
     objective constant; CPLEX LP format allows a bare constant term. *)
  (match Linexpr.constant obj with
  | 0. -> ()
  | c ->
    Buffer.add_string b
      (Printf.sprintf "%s %.12g " (if c < 0. then "-" else "+") (Float.abs c)));
  Buffer.add_string b "\nSubject To\n";
  Array.iteri
    (fun i (c : Model.cons) ->
      Buffer.add_string b (Printf.sprintf " c%d: " i);
      append_expr b c.Model.lhs;
      let rel = match c.Model.rel with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "=" in
      Buffer.add_string b (Printf.sprintf "%s %.12g\n" rel c.Model.rhs))
    (Model.conss m);
  Buffer.add_string b "Bounds\n";
  Array.iter
    (fun (v : Model.var) ->
      let name = var_name v.Model.vid in
      let lb =
        if v.Model.lb = Float.neg_infinity then "-inf" else Printf.sprintf "%.12g" v.Model.lb
      in
      let ub =
        if v.Model.ub = Float.infinity then "+inf" else Printf.sprintf "%.12g" v.Model.ub
      in
      Buffer.add_string b (Printf.sprintf " %s <= %s <= %s\n" lb name ub))
    (Model.vars m);
  let of_kind k =
    Array.to_list (Model.vars m)
    |> List.filter_map (fun (v : Model.var) ->
           if v.Model.kind = k then Some (var_name v.Model.vid) else None)
  in
  (match of_kind Model.Binary with
  | [] -> ()
  | bins ->
    Buffer.add_string b "Binaries\n ";
    Buffer.add_string b (String.concat " " bins);
    Buffer.add_char b '\n');
  (match of_kind Model.Integer with
  | [] -> ()
  | ints ->
    Buffer.add_string b "Generals\n ";
    Buffer.add_string b (String.concat " " ints);
    Buffer.add_char b '\n');
  Buffer.add_string b "End\n";
  Buffer.contents b

let write m path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string m))

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let number_of t = float_of_string_opt t

let is_rel t = t = "<=" || t = ">=" || t = "=" || t = "<" || t = ">"

let is_label t = String.length t > 0 && t.[String.length t - 1] = ':'

(* Whitespace tokens, with a sign glued onto a name split off ("-x3" ->
   "-" "x3") while signed numbers ("-2.5", "-inf", "1e-06") stay whole. *)
let tokens_of line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun t -> t <> "")
  |> List.concat_map (fun t ->
         if
           String.length t > 1
           && (t.[0] = '-' || t.[0] = '+')
           && number_of t = None
         then [ String.make 1 t.[0]; String.sub t 1 (String.length t - 1) ]
         else [ t ])

let of_string s =
  (* collect the sections line by line *)
  let sense = ref None in
  let obj_toks = ref [] (* reversed *) in
  let cons_toks = ref [] (* reversed *) in
  let bound_lines = ref [] (* reversed token lists *) in
  let bins = ref [] and gens = ref [] in
  let section = ref `None in
  List.iter
    (fun line ->
      let line =
        match String.index_opt line '\\' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match String.lowercase_ascii (String.trim line) with
      | "maximize" | "max" ->
        sense := Some Model.Maximize;
        section := `Obj
      | "minimize" | "min" ->
        sense := Some Model.Minimize;
        section := `Obj
      | "subject to" | "st" | "s.t." | "such that" -> section := `Cons
      | "bounds" | "bound" -> section := `Bounds
      | "binaries" | "binary" | "bin" -> section := `Bin
      | "generals" | "general" | "gen" | "integers" | "integer" -> section := `Gen
      | "end" -> section := `End
      | "" -> ()
      | _ -> (
        let toks = tokens_of line in
        match !section with
        | `Obj -> obj_toks := List.rev_append toks !obj_toks
        | `Cons -> cons_toks := List.rev_append toks !cons_toks
        | `Bounds -> bound_lines := toks :: !bound_lines
        | `Bin -> bins := !bins @ toks
        | `Gen -> gens := !gens @ toks
        | `None | `End -> fail "unexpected content outside any section: %s" line))
    (String.split_on_char '\n' s);
  (* variable names, in order of first appearance *)
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let note name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      order := name :: !order
    end
  in
  (* [terms, constant, next] from a token array, stopping at a relation *)
  let parse_linear toks i0 =
    let n = Array.length toks in
    let terms = ref [] and const = ref 0. and sign = ref 1. and i = ref i0 in
    while !i < n && not (is_rel toks.(!i)) do
      let t = toks.(!i) in
      if is_label t then incr i
      else if t = "+" then incr i
      else if t = "-" then begin
        sign := -. !sign;
        incr i
      end
      else begin
        (match number_of t with
        | Some v ->
          if !i + 1 < n && number_of toks.(!i + 1) = None
             && (not (is_rel toks.(!i + 1)))
             && (not (is_label toks.(!i + 1)))
             && toks.(!i + 1) <> "+" && toks.(!i + 1) <> "-"
          then begin
            note toks.(!i + 1);
            terms := (!sign *. v, toks.(!i + 1)) :: !terms;
            incr i
          end
          else const := !const +. (!sign *. v)
        | None ->
          note t;
          terms := (!sign, t) :: !terms);
        sign := 1.;
        incr i
      end
    done;
    (List.rev !terms, !const, !i)
  in
  let read_num toks i what =
    let n = Array.length toks in
    let sign = ref 1. and i = ref i in
    while !i < n && (toks.(!i) = "+" || toks.(!i) = "-") do
      if toks.(!i) = "-" then sign := -. !sign;
      incr i
    done;
    if !i >= n then fail "missing number for %s" what;
    match number_of toks.(!i) with
    | Some v -> (!sign *. v, !i + 1)
    | None -> fail "expected a number for %s, got %s" what toks.(!i)
  in
  (* objective *)
  let sense = match !sense with Some s -> s | None -> fail "no objective section" in
  let obj_terms, obj_const, _ =
    parse_linear (Array.of_list (List.rev !obj_toks)) 0
  in
  (* constraints: label? expr rel rhs, repeated *)
  let conss = ref [] in
  let ctoks = Array.of_list (List.rev !cons_toks) in
  let nc = Array.length ctoks in
  let i = ref 0 in
  while !i < nc do
    let label =
      if is_label ctoks.(!i) then begin
        let t = ctoks.(!i) in
        incr i;
        Some (String.sub t 0 (String.length t - 1))
      end
      else None
    in
    let terms, const, i' = parse_linear ctoks !i in
    if i' >= nc then fail "constraint without relation";
    let rel =
      match ctoks.(i') with
      | "<=" | "<" -> Model.Le
      | ">=" | ">" -> Model.Ge
      | "=" -> Model.Eq
      | t -> fail "unknown relation %s" t
    in
    let rhs, i'' = read_num ctoks (i' + 1) "constraint rhs" in
    conss := (label, terms, const, rel, rhs) :: !conss;
    i := i''
  done;
  let conss = List.rev !conss in
  (* bounds *)
  let lbs = Hashtbl.create 64 and ubs = Hashtbl.create 64 in
  let set_lb name v = Hashtbl.replace lbs name v in
  let set_ub name v = Hashtbl.replace ubs name v in
  List.iter
    (fun toks ->
      let toks = Array.of_list (List.filter (fun t -> not (is_label t)) toks) in
      let n = Array.length toks in
      if n > 0 then begin
        let is_name t = number_of t = None && not (is_rel t) in
        if n = 2 && is_name toks.(0) && String.lowercase_ascii toks.(1) = "free"
        then begin
          note toks.(0);
          set_lb toks.(0) Float.neg_infinity;
          set_ub toks.(0) Float.infinity
        end
        else if is_name toks.(0) then begin
          (* x rel num *)
          note toks.(0);
          if n < 3 || not (is_rel toks.(1)) then fail "malformed bound line";
          let v, _ = read_num toks 2 "bound" in
          match toks.(1) with
          | "<=" | "<" -> set_ub toks.(0) v
          | ">=" | ">" -> set_lb toks.(0) v
          | _ ->
            set_lb toks.(0) v;
            set_ub toks.(0) v
        end
        else begin
          (* num rel x [rel num] *)
          let v, i1 = read_num toks 0 "bound" in
          if i1 >= n || not (is_rel toks.(i1)) then fail "malformed bound line";
          let rel1 = toks.(i1) in
          if i1 + 1 >= n || not (is_name toks.(i1 + 1)) then
            fail "malformed bound line";
          let name = toks.(i1 + 1) in
          note name;
          (match rel1 with
          | "<=" | "<" -> set_lb name v
          | ">=" | ">" -> set_ub name v
          | _ ->
            set_lb name v;
            set_ub name v);
          if i1 + 2 < n then begin
            if not (is_rel toks.(i1 + 2)) then fail "malformed bound line";
            let v2, _ = read_num toks (i1 + 3) "bound" in
            match toks.(i1 + 2) with
            | "<=" | "<" -> set_ub name v2
            | ">=" | ">" -> set_lb name v2
            | _ ->
              set_lb name v2;
              set_ub name v2
          end
        end
      end)
    (List.rev !bound_lines);
  List.iter note !bins;
  List.iter note !gens;
  (* id resolution: the writer's canonical x<id> names keep their ids
     (unmentioned ids in between become default continuous variables);
     any other naming falls back to first-appearance order *)
  let order = List.rev !order in
  let canonical name =
    let n = String.length name in
    if n >= 2 && name.[0] = 'x' then
      match int_of_string_opt (String.sub name 1 (n - 1)) with
      | Some d when d >= 0 -> Some d
      | _ -> None
    else None
  in
  let all_canonical = List.for_all (fun n -> canonical n <> None) order in
  let id_of, nv, name_of_id =
    if all_canonical then begin
      let nv =
        List.fold_left (fun acc n -> max acc (1 + Option.get (canonical n))) 0 order
      in
      ((fun n -> Option.get (canonical n)), nv, fun j -> var_name j)
    end
    else begin
      let tbl = Hashtbl.create 64 in
      List.iteri (fun i n -> Hashtbl.add tbl n i) order;
      let names = Array.of_list order in
      ((fun n -> Hashtbl.find tbl n), Array.length names, fun j -> names.(j))
    end
  in
  let kind = Array.make (max nv 1) Model.Continuous in
  List.iter (fun n -> kind.(id_of n) <- Model.Binary) !bins;
  List.iter (fun n -> kind.(id_of n) <- Model.Integer) !gens;
  let lb = Array.make (max nv 1) 0. and ub = Array.make (max nv 1) Float.infinity in
  Hashtbl.iter (fun n v -> lb.(id_of n) <- v) lbs;
  Hashtbl.iter (fun n v -> ub.(id_of n) <- v) ubs;
  let m = Model.create ~name:"lp" () in
  for j = 0 to nv - 1 do
    ignore (Model.add_var m ~name:(name_of_id j) ~kind:kind.(j) ~lb:lb.(j) ~ub:ub.(j))
  done;
  List.iter
    (fun (label, terms, const, rel, rhs) ->
      let e =
        Linexpr.of_terms ~const (List.map (fun (c, n) -> (c, id_of n)) terms)
      in
      match label with
      | Some name -> Model.add_cons m ~name e rel rhs
      | None -> Model.add_cons m e rel rhs)
    conss;
  Model.set_objective m sense
    (Linexpr.of_terms ~const:obj_const
       (List.map (fun (c, n) -> (c, id_of n)) obj_terms));
  m

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
