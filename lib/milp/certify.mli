(** Independent certification of solver answers.

    Every check here re-derives its verdict from the *original* model the
    caller built — never from the presolved/reduced model the engines
    actually solved — so a bug anywhere in the presolve → simplex →
    branch-and-bound → postsolve pipeline shows up as a failed
    certificate rather than a silently wrong report. The checks:

    - primal feasibility: per-row residuals of the claimed point, with
      compensated (Kahan) dot products, normalized by row scale;
    - variable bounds and integrality of integer-constrained variables;
    - objective recomputation against the reported objective value;
    - bound sanity: in maximization form, [obj <= bound + gap] always,
      and [bound - obj <= gap] when the result claims optimality;
    - for pure LPs with basis statuses, a dual-feasibility /
      weak-duality certificate: dual multipliers are reconstructed from
      the returned statuses against the original rows, reduced costs
      below a tolerance are clamped to zero (the clamp magnitude is part
      of the certificate), and the Lagrangian bound they imply must meet
      the claimed objective within [dual_gap_tol].

    Certificates are toleranced, not exact rational proofs: a pass means
    the answer is consistent with the model to the stated tolerances. *)

type tolerances = {
  feas_tol : float;
      (** max normalized primal residual / bound violation; default 1e-5
          (matches the absolute tolerance branch-and-bound accepts
          incumbents at, since row scales are >= 1) *)
  int_tol : float;  (** max distance to integrality; default 1e-5 *)
  obj_tol : float;
      (** max relative error between the reported objective and its
          recomputation at the claimed point; default 1e-6 *)
  abs_gap : float;  (** absolute optimality gap the solver ran with *)
  rel_gap : float;  (** relative optimality gap the solver ran with *)
  dual_tol : float;
      (** reduced costs within [dual_tol * scale] of zero are clamped
          when building the Lagrangian bound; default 1e-6 *)
  dual_gap_tol : float;
      (** max relative gap between the claimed objective and the
          reconstructed dual bound; default 1e-5 *)
}

val default_tolerances : tolerances

type t = {
  ok : bool;  (** every applicable check passed *)
  point_ok : bool;  (** primal feasibility + bounds + integrality *)
  obj_ok : bool;  (** reported objective matches recomputation *)
  bound_ok : bool;  (** bound sanity (and gap closure when optimal) *)
  dual_ok : bool option;
      (** [None] when no dual certificate applies (MILPs, missing basis
          statuses, or a numerically unusable reconstruction) *)
  max_primal_residual : float;  (** normalized; includes bound violations *)
  max_int_residual : float;
  obj_error : float;  (** relative recomputation error *)
  bound_violation : float;
      (** positive part of the violated bound inequality, 0 when sane *)
  dual_gap : float;
      (** |claimed objective - Lagrangian bound|, relative; [nan] when
          [dual_ok = None] *)
  dual_infeas : float;
      (** largest clamped reduced cost / dual sign violation, normalized;
          [nan] when [dual_ok = None] *)
  failures : string list;  (** human-readable description per failed check *)
}

(** [check ~model ~obj ~bound ~values ~statuses ()] certifies a claimed
    solution of [model]. [optimal] asks for the optimality-gap and dual
    checks on top of the consistency checks (default [false]).
    [statuses] are the structural basis statuses in original variable
    indexing ([[||]] when unavailable — skips the dual certificate).
    Bumps the [certify-checks]/[certify-failures] counters and the
    residual high-water marks in {!Lp_stats}, and logs a structured
    warning on the [milp.certify] source when a check fails. *)
val check :
  ?tols:tolerances ->
  ?optimal:bool ->
  model:Model.t ->
  obj:float ->
  bound:float ->
  values:float array ->
  statuses:Simplex.vstat array ->
  unit ->
  t

val pp : Format.formatter -> t -> unit

(** Domain-local cumulative counters in the {!Parallel.Pool} hook shape
    (see {!Simplex.cumulative_iterations}). *)

val cumulative_checks : unit -> int
val cumulative_failures : unit -> int

(** Domain-local high-water marks of the normalized primal residual and
    relative dual gap over every certificate issued on this domain. *)

val max_primal_residual : unit -> float
val max_dual_gap : unit -> float
