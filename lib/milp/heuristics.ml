type env = {
  lp :
    Simplex.basis option ->
    lb:float array ->
    ub:float array ->
    Simplex.result * Simplex.basis option;
  int_ids : int array;
  int_tol : float;
  abs_gap : float;
  osign : float;
  cutoff : unit -> float;
}

(* LP-guided diving: from the LP optimum under [lb, ub], repeatedly fix
   the most fractional integer variable to its rounded value and
   re-solve. One flip retry per variable on infeasibility. Each fixing
   only tightens bounds, so the previous step's optimal basis
   warm-starts the next LP in the dual simplex. *)
let dive env ?basis lb ub =
  let lb = Array.copy lb and ub = Array.copy ub in
  let budget = (2 * Array.length env.int_ids) + 20 in
  let warm = ref basis in
  let lp_step () =
    let r, fb = env.lp !warm ~lb ~ub in
    (match fb with Some _ -> warm := fb | None -> ());
    r
  in
  (* [go] consumes the LP result of the current bounds, so each fixing
     costs exactly one LP solve: the result of re-solving after a fix
     is threaded straight into the next recursion instead of being
     discarded and recomputed. *)
  let rec go iters res =
    if iters > budget then None
    else
      match res with
      | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit -> None
      | Simplex.Optimal { obj; values } ->
        let bound = env.osign *. obj in
        if bound <= env.cutoff () +. env.abs_gap then None
        else begin
          (* most fractional *)
          let best = ref (-1) and best_frac = ref env.int_tol in
          Array.iter
            (fun id ->
              let x = values.(id) in
              let frac = Float.abs (x -. Float.round x) in
              if frac > !best_frac then begin
                best := id;
                best_frac := frac
              end)
            env.int_ids;
          if !best < 0 then Some (values, bound)
          else begin
            let id = !best in
            let r = Float.round values.(id) in
            let saved_lb = lb.(id) and saved_ub = ub.(id) in
            lb.(id) <- r;
            ub.(id) <- r;
            match lp_step () with
            | Simplex.Optimal _ as res' -> go (iters + 1) res'
            | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit ->
              (* flip once; the bounds-compatibility epsilon is the
                 solver's integrality tolerance, not an unrelated
                 hardcoded one *)
              let r' =
                if r > values.(id) then Float.floor values.(id)
                else Float.ceil values.(id)
              in
              if
                r' >= saved_lb -. env.int_tol
                && r' <= saved_ub +. env.int_tol
                && r' <> r
              then begin
                lb.(id) <- r';
                ub.(id) <- r';
                go (iters + 1) (lp_step ())
              end
              else None
          end
        end
  in
  go 0 (lp_step ())

(* Feasibility pump over roundings. Fix every integer variable to the
   rounding of the relaxation point (clamped into its bounds) and solve
   the LP: the continuous variables repair themselves and the point is
   integral by construction. When the fixing is infeasible, flip the
   most ambiguous rounding (fractional part closest to 1/2) that has
   not been flipped yet and retry — flips are cumulative, so the pump
   cannot cycle, and the candidate order is deterministic. *)
let pump env ?basis ~relax lb ub =
  let nint = Array.length env.int_ids in
  if nint = 0 then None
  else begin
    let flb = Array.copy lb and fub = Array.copy ub in
    let clamp id v = Float.min ub.(id) (Float.max lb.(id) v) in
    let target = Array.map (fun id -> clamp id (Float.round relax.(id))) env.int_ids in
    (* flip candidates: fractional roundings, most ambiguous first *)
    let flips =
      env.int_ids
      |> Array.to_list
      |> List.mapi (fun k id ->
             let frac = Float.abs (relax.(id) -. Float.round relax.(id)) in
             (k, id, frac))
      |> List.filter (fun (_, _, frac) -> frac > env.int_tol)
      |> List.sort (fun (k1, id1, f1) (k2, id2, f2) ->
             let a1 = Float.abs (f1 -. 0.5) and a2 = Float.abs (f2 -. 0.5) in
             if a1 = a2 then compare (id1, k1) (id2, k2) else compare a1 a2)
    in
    let warm = ref basis in
    let solve_fixed () =
      Array.iteri (fun k id ->
          flb.(id) <- target.(k);
          fub.(id) <- target.(k))
        env.int_ids;
      let r, fb = env.lp !warm ~lb:flb ~ub:fub in
      (match fb with Some _ -> warm := fb | None -> ());
      r
    in
    let rec go flips =
      match solve_fixed () with
      | Simplex.Optimal { obj; values } ->
        let bound = env.osign *. obj in
        if bound > env.cutoff () +. env.abs_gap then Some (values, bound)
        else None
      | Simplex.Unbounded | Simplex.Iter_limit -> None
      | Simplex.Infeasible -> (
        match flips with
        | [] -> None
        | (k, id, _) :: rest ->
          (* flip: round the other way, staying inside the bounds *)
          let x = relax.(id) in
          let other =
            if target.(k) >= x then Float.floor x else Float.ceil x
          in
          if other >= lb.(id) -. env.int_tol && other <= ub.(id) +. env.int_tol
          then target.(k) <- clamp id other;
          go rest)
    in
    go flips
  end

(* RINS: fix the integer variables where the incumbent and the node
   relaxation agree on the same integer value, then dive the free
   neighborhood. Skips (without any LP work) when the neighborhood is
   empty or when nothing was fixed — the dive would then just repeat
   the node's ordinary plunge. *)
let rins env ?basis ~incumbent ~relax lb ub =
  let nint = Array.length env.int_ids in
  if nint = 0 then None
  else begin
    let rlb = Array.copy lb and rub = Array.copy ub in
    let fixed = ref 0 and free = ref 0 in
    Array.iter
      (fun id ->
        let inc = Float.round incumbent.(id) in
        if
          Float.abs (Float.round relax.(id) -. inc) <= env.int_tol
          && inc >= lb.(id) -. env.int_tol
          && inc <= ub.(id) +. env.int_tol
        then begin
          rlb.(id) <- inc;
          rub.(id) <- inc;
          incr fixed
        end
        else incr free)
      env.int_ids;
    if !fixed = 0 || !free = 0 then None else dive env ?basis rlb rub
  end
