(* Sparse LU basis factorization (Markowitz ordering, threshold
   pivoting) with product-form eta updates. See basis.mli.

   Factor representation: Gaussian elimination with explicit pivot
   order. Step [k] pivots on (row [prow.(k)], basis position
   [pcol.(k)]) with pivot value [pval.(k)]; [lmults.(k)] are the
   (row, multiplier) pairs eliminated below the pivot, [urows.(k)] the
   off-pivot entries (position, value) of the pivot row at elimination
   time. With M = E_{m-1}...E_0 the product of elimination steps and U
   the permuted upper factor:

     FTRAN  x = B^-1 b : t := M b, then back-substitute U x = t
     BTRAN  y = B^-T c : solve U^T w = c, then y := M^T w

   Basis exchanges append product-form etas on top: B' = B E, so
   FTRAN applies eta inverses after the LU solve (in append order) and
   BTRAN applies eta transpose-inverses before it (reverse order). *)

type lu = {
  nsteps : int;
  prow : int array;
  pcol : int array;
  pval : float array;
  lmults : (int * float) array array;
  urows : (int * float) array array;
  ucols : (int * float) list array; (* position -> (step, value) U column *)
}

type eta = { er : int; epiv : float; entries : (int * float) array }

type t = {
  a : Sparse.t;
  cols : int array;
  mutable lu : lu;
  mutable etas : eta array;
  mutable neta : int;
  max_eta : int;
  mutable refactors : int;
}

exception Singular of string

let drop_tol = 1e-12
let stab_tol = 1e-7

(* One Markowitz-ordered elimination. Returns the factors plus any rows
   and basis positions left unpivoted (structural/numerical
   singularity). *)
let factorize a cols ~threshold =
  Lp_stats.incr Lp_stats.factorizations;
  let m = a.Sparse.m in
  let rows = Array.init m (fun _ -> Hashtbl.create 8) in
  let colrows = Array.make (max m 1) [] in
  let rcount = Array.make (max m 1) 0 in
  let ccount = Array.make (max m 1) 0 in
  let rowact = Array.make (max m 1) true in
  let colact = Array.make (max m 1) true in
  for k = 0 to m - 1 do
    Sparse.col_iter a cols.(k) (fun i v ->
        if Float.abs v > drop_tol then begin
          Hashtbl.replace rows.(i) k v;
          colrows.(k) <- i :: colrows.(k);
          rcount.(i) <- rcount.(i) + 1;
          ccount.(k) <- ccount.(k) + 1
        end)
  done;
  (* Compact a column's candidate list: drop stale rows, dedup. *)
  let seen = Array.make (max m 1) (-1) in
  let stamp = ref 0 in
  let active_rows k =
    incr stamp;
    let s = !stamp in
    let live =
      List.filter
        (fun r ->
          rowact.(r) && seen.(r) <> s && Hashtbl.mem rows.(r) k
          && (seen.(r) <- s;
              true))
        colrows.(k)
    in
    colrows.(k) <- live;
    live
  in
  let prow = Array.make (max m 1) (-1) in
  let pcol = Array.make (max m 1) (-1) in
  let pval = Array.make (max m 1) 0. in
  let lmults = Array.make (max m 1) [||] in
  let urows = Array.make (max m 1) [||] in
  let nsteps = ref 0 in
  (try
     for _step = 0 to m - 1 do
       (* Markowitz pivot search: min (r-1)(c-1) among entries passing
          the threshold test against their column's max magnitude. *)
       let best_cost = ref max_int
       and best_mag = ref 0.
       and best = ref None in
       (try
          for k = 0 to m - 1 do
            if colact.(k) then begin
              let live = active_rows k in
              let colmax =
                List.fold_left
                  (fun acc r -> Float.max acc (Float.abs (Hashtbl.find rows.(r) k)))
                  0. live
              in
              if colmax > drop_tol then
                List.iter
                  (fun r ->
                    let v = Hashtbl.find rows.(r) k in
                    if Float.abs v >= threshold *. colmax then begin
                      let cost = (rcount.(r) - 1) * (ccount.(k) - 1) in
                      if
                        cost < !best_cost
                        || (cost = !best_cost && Float.abs v > !best_mag)
                      then begin
                        best_cost := cost;
                        best_mag := Float.abs v;
                        best := Some (r, k, v);
                        if cost = 0 then raise Exit
                      end
                    end)
                  live
            end
          done
        with Exit -> ());
       match !best with
       | None -> raise Exit (* singular remainder *)
       | Some (pr, pc, v) ->
         let step = !nsteps in
         incr nsteps;
         prow.(step) <- pr;
         pcol.(step) <- pc;
         pval.(step) <- v;
         (* pivot row snapshot (off-pivot entries) *)
         let off = ref [] in
         Hashtbl.iter (fun kc pv -> if kc <> pc then off := (kc, pv) :: !off) rows.(pr);
         let off = Array.of_list !off in
         (* deterministic order keeps float sums reproducible *)
         Array.sort (fun (c1, _) (c2, _) -> compare c1 c2) off;
         urows.(step) <- off;
         (* eliminate the pivot column below/above the pivot *)
         let lm = ref [] in
         List.iter
           (fun r ->
             if r <> pr then begin
               let arpc = Hashtbl.find rows.(r) pc in
               let mult = arpc /. v in
               lm := (r, mult) :: !lm;
               Hashtbl.remove rows.(r) pc;
               rcount.(r) <- rcount.(r) - 1;
               Array.iter
                 (fun (kc, pv) ->
                   let cur =
                     match Hashtbl.find_opt rows.(r) kc with Some x -> x | None -> 0.
                   in
                   let nv = cur -. (mult *. pv) in
                   if Float.abs nv <= drop_tol then begin
                     if cur <> 0. then begin
                       Hashtbl.remove rows.(r) kc;
                       rcount.(r) <- rcount.(r) - 1;
                       ccount.(kc) <- ccount.(kc) - 1
                     end
                   end
                   else begin
                     if cur = 0. then begin
                       colrows.(kc) <- r :: colrows.(kc);
                       rcount.(r) <- rcount.(r) + 1;
                       ccount.(kc) <- ccount.(kc) + 1
                     end;
                     Hashtbl.replace rows.(r) kc nv
                   end)
                 off
             end)
           (active_rows pc);
         let lm = Array.of_list !lm in
         Array.sort (fun (r1, _) (r2, _) -> compare r1 r2) lm;
         lmults.(step) <- lm;
         (* retire the pivot row and column *)
         rowact.(pr) <- false;
         colact.(pc) <- false;
         Array.iter (fun (kc, _) -> ccount.(kc) <- ccount.(kc) - 1) off;
         Hashtbl.reset rows.(pr)
     done
   with Exit -> ());
  let ucols = Array.make (max m 1) [] in
  for k = 0 to !nsteps - 1 do
    Array.iter (fun (c, v) -> ucols.(c) <- (k, v) :: ucols.(c)) urows.(k)
  done;
  let bad_rows = ref [] and bad_pos = ref [] in
  for i = m - 1 downto 0 do
    if rowact.(i) then bad_rows := i :: !bad_rows;
    if colact.(i) then bad_pos := i :: !bad_pos
  done;
  ( { nsteps = !nsteps; prow; pcol; pval; lmults; urows; ucols },
    !bad_rows,
    !bad_pos )

(* FTRAN/BTRAN against the LU factors only (no etas). *)
let ftran_lu lu m b =
  let x = Array.copy b in
  for k = 0 to lu.nsteps - 1 do
    let t = x.(lu.prow.(k)) in
    if t <> 0. then
      Array.iter (fun (r, mult) -> x.(r) <- x.(r) -. (mult *. t)) lu.lmults.(k)
  done;
  let out = Array.make (max m 1) 0. in
  for k = lu.nsteps - 1 downto 0 do
    let s = ref x.(lu.prow.(k)) in
    Array.iter (fun (c, v) -> s := !s -. (v *. out.(c))) lu.urows.(k);
    out.(lu.pcol.(k)) <- !s /. lu.pval.(k)
  done;
  if m = 0 then [||] else out

let btran_lu lu m c =
  let z = Array.make (max m 1) 0. in
  for k = 0 to lu.nsteps - 1 do
    let s = ref c.(lu.pcol.(k)) in
    List.iter (fun (j, v) -> s := !s -. (v *. z.(j))) lu.ucols.(lu.pcol.(k));
    z.(k) <- !s /. lu.pval.(k)
  done;
  let w = Array.make (max m 1) 0. in
  for k = 0 to lu.nsteps - 1 do
    w.(lu.prow.(k)) <- z.(k)
  done;
  for k = lu.nsteps - 1 downto 0 do
    let acc = ref w.(lu.prow.(k)) in
    Array.iter (fun (r, mult) -> acc := !acc -. (mult *. w.(r))) lu.lmults.(k);
    w.(lu.prow.(k)) <- !acc
  done;
  if m = 0 then [||] else w

(* Residual check of a fresh factorization: FTRAN of basis column 0
   must reproduce the unit vector e_0. *)
let residual_ok a lu cols =
  let m = a.Sparse.m in
  if m = 0 then true
  else begin
    let b = Array.make m 0. in
    Sparse.axpy_col a cols.(0) 1. b;
    let x = ftran_lu lu m b in
    let err = ref 0. in
    for i = 0 to m - 1 do
      let expect = if i = 0 then 1. else 0. in
      err := Float.max !err (Float.abs (x.(i) -. expect))
    done;
    !err <= 1e-6
  end

let build_lu a cols =
  let nv = a.Sparse.nv in
  let rec attempt threshold tries =
    let lu, bad_rows, bad_pos = factorize a cols ~threshold in
    if bad_rows <> [] then begin
      if tries > 3 then raise (Singular "singular basis beyond repair");
      (* Repair: give every unpivoted position its own unpivoted row's
         slack column (a fresh unit column in exactly that row). *)
      let used = Array.make a.Sparse.n false in
      Array.iteri
        (fun p c -> if not (List.mem p bad_pos) then used.(c) <- true)
        cols;
      let remaining = ref bad_rows in
      List.iter
        (fun p ->
          let rec pick acc = function
            | [] -> raise (Singular "no slack available for repair")
            | r :: tl ->
              if used.(nv + r) then pick (r :: acc) tl
              else begin
                used.(nv + r) <- true;
                cols.(p) <- nv + r;
                remaining := List.rev_append acc tl
              end
          in
          pick [] !remaining)
        bad_pos;
      attempt threshold (tries + 1)
    end
    else if (not (residual_ok a lu cols)) && threshold < 0.5 then
      attempt 0.99 (tries + 1) (* near partial pivoting *)
    else lu
  in
  attempt 0.01 0

let create a bcols =
  let cols = Array.copy bcols in
  let lu = build_lu a cols in
  { a; cols; lu; etas = [||]; neta = 0; max_eta = 64; refactors = 0 }

let bcols t = Array.copy t.cols

let ftran t b =
  let x = ftran_lu t.lu t.a.Sparse.m b in
  for e = 0 to t.neta - 1 do
    let { er; epiv; entries } = t.etas.(e) in
    let xr = x.(er) /. epiv in
    Array.iter (fun (i, w) -> x.(i) <- x.(i) -. (w *. xr)) entries;
    x.(er) <- xr
  done;
  x

let btran t c =
  let c =
    if t.neta = 0 then c
    else begin
      let c = Array.copy c in
      for e = t.neta - 1 downto 0 do
        let { er; epiv; entries } = t.etas.(e) in
        let acc = ref c.(er) in
        Array.iter (fun (i, w) -> acc := !acc -. (w *. c.(i))) entries;
        c.(er) <- !acc /. epiv
      done;
      c
    end
  in
  btran_lu t.lu t.a.Sparse.m c

let refactorize t =
  t.lu <- build_lu t.a t.cols;
  t.etas <- [||];
  t.neta <- 0

(* A snapshot shares the immutable [lu] value (replaced wholesale on
   refactorization, never mutated in place; FTRAN/BTRAN allocate their
   own scratch) plus a private copy of the — possibly repaired — basic
   column selection. [of_snapshot] reinstates it in O(m) with zero
   factorization work, and is domain-safe: every field it reads is
   immutable. The snapshot remembers which matrix it factors; reuse
   against any other Sparse.t is refused (the factors would be wrong),
   so callers fall back to a fresh [create]. *)
type snapshot = { sa : Sparse.t; scols : int array; slu : lu }

let snapshot t =
  if t.neta > 0 then refactorize t;
  { sa = t.a; scols = Array.copy t.cols; slu = t.lu }

let of_snapshot a s =
  if a != s.sa then None
  else
    Some
      { a; cols = Array.copy s.scols; lu = s.slu; etas = [||]; neta = 0;
        max_eta = 64; refactors = 0 }

let replace t ~r ~col ~w =
  t.cols.(r) <- col;
  let unstable = Float.abs w.(r) < stab_tol in
  if unstable || t.neta >= t.max_eta then begin
    if unstable then t.refactors <- t.refactors + 1;
    refactorize t;
    true
  end
  else begin
    let entries = ref [] in
    Array.iteri
      (fun i v -> if i <> r && Float.abs v > drop_tol then entries := (i, v) :: !entries)
      w;
    let eta = { er = r; epiv = w.(r); entries = Array.of_list !entries } in
    if t.neta = Array.length t.etas then begin
      let grown = Array.make (max 8 (2 * t.neta)) eta in
      Array.blit t.etas 0 grown 0 t.neta;
      t.etas <- grown
    end;
    t.etas.(t.neta) <- eta;
    t.neta <- t.neta + 1;
    Lp_stats.incr Lp_stats.eta_updates;
    false
  end

let refactor_count t = t.refactors
