(* Cutting planes: Gomory mixed-integer, knapsack cover and clique cuts
   over a managed pool. See cuts.mli for the contract; the notes here
   are about validity.

   Every cut is a globally valid inequality for the model handed to
   [create]: separations may use a node's LP point (to find violated
   candidates) but never its branching bounds. GMI shifts use the
   solve-global bounds recorded at [create]; cover and clique cuts only
   use row data and integrality. That makes the pool shareable across
   the whole branch-and-bound tree.

   Dropping a term from a derived inequality is never done silently:
   removing [c * x_j] from a [<=] row is only sound after relaxing the
   rhs by the term's minimum over the variable's global box (and is
   skipped when that box is unbounded). Strengthening-by-truncation is
   exactly the kind of bug the audit layer exists to catch, so we do
   not rely on the audit to excuse it. *)

let src = Logs.Src.create "milp.cuts" ~doc:"cutting planes"

module Log = (val Logs.src_log src : Logs.LOG)

type family = Gomory | Cover | Clique

let family_name = function
  | Gomory -> "gomory"
  | Cover -> "cover"
  | Clique -> "clique"

type options = {
  enable : bool;
  root_rounds : int;
  node_interval : int;
  max_per_round : int;
  pool_size : int;
  max_age : int;
  gomory : bool;
  cover : bool;
  clique : bool;
  max_support : int;
}

let default =
  {
    enable = true;
    root_rounds = 6;
    node_interval = 200;
    max_per_round = 20;
    pool_size = 200;
    max_age = 12;
    gomory = true;
    cover = true;
    clique = true;
    max_support = 200;
  }

let disabled = { default with enable = false }

let cumulative_generated = Lp_stats.read Lp_stats.cuts_generated
let cumulative_applied = Lp_stats.read Lp_stats.cuts_applied
let cumulative_pruned = Lp_stats.read Lp_stats.cuts_pruned
let cumulative_audit_failures = Lp_stats.read Lp_stats.cut_audit_failures

type cut = {
  terms : (float * int) array;
  rhs : float;
  family : family;
  mutable age : int;
}

(* A knapsack row normalized to [sum a_j y_j <= cap] with a_j > 0 over
   literals y_j = x_j ([true]) or 1 - x_j ([false]). [krow] is the
   index (into [Model.conss]) of the row it was derived from — the
   cut's only premise, recorded so callers persisting cuts across
   solves can check the premise still holds. *)
type knap = { kcap : float; krow : int; kitems : (float * int * bool) array }

(* Literals of the conflict graph: [2 * id + 1] for x_id = 1, [2 * id]
   for x_id = 0. *)
let lit_pos id = (2 * id) + 1
let lit_neg id = 2 * id
let lit_id l = l / 2
let lit_is_pos l = l land 1 = 1
let lit_value x l = if lit_is_pos l then x.(lit_id l) else 1. -. x.(lit_id l)
let conflict_key a b = if a < b then (a, b) else (b, a)

type pool = {
  opts : options;
  glo : float array;  (* solve-global structural bounds *)
  ghi : float array;
  is_int : bool array;
  knaps : knap array;
  conflict : (int * int, int) Hashtbl.t;  (* edge -> source row index *)
  graph_lits : int array;  (* sorted literals present in the graph *)
  mutable active : cut list;  (* activation order *)
  mutable nactive : int;
  seen : (string, unit) Hashtbl.t;  (* normalized-support dedup *)
}

(* ------------------------------------------------------------------ *)
(* Cut hygiene: normalization, hashing, evaluation, audit              *)

let eval_cut cut x =
  (* compensated (Kahan) dot: the audit compares against Certify-grade
     residuals, so the evaluation itself must not drown them in
     accumulation error *)
  let s = ref 0. and c = ref 0. in
  Array.iter
    (fun (a, id) ->
      let y = (a *. x.(id)) -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    cut.terms;
  !s

let key_of cut =
  let b = Buffer.create 64 in
  Array.iter
    (fun (c, id) -> Buffer.add_string b (Printf.sprintf "%d:%.6g;" id c))
    cut.terms;
  Buffer.add_string b (Printf.sprintf "|%.6g" cut.rhs);
  Buffer.contents b

(* Drop negligible coefficients from [sum terms <= rhs] by relaxing the
   rhs with the term's minimum over the global box (never strengthen),
   then reject numerically hopeless rows: empty or over-wide support,
   dynamism beyond 1e7, wild rhs. *)
let clean_le pool terms rhs =
  let maxc =
    List.fold_left (fun a (c, _) -> Float.max a (Float.abs c)) 0. terms
  in
  if not (Float.is_finite maxc) || maxc < 1e-9 then None
  else begin
    let rhs = ref rhs and kept = ref [] in
    List.iter
      (fun (c, id) ->
        if Float.abs c <= 1e-10 *. maxc then begin
          if c <> 0. then begin
            let mn = Float.min (c *. pool.glo.(id)) (c *. pool.ghi.(id)) in
            if Float.is_finite mn then rhs := !rhs -. mn
            else kept := (c, id) :: !kept
          end
        end
        else kept := (c, id) :: !kept)
      terms;
    let kept = List.rev !kept in
    let minc =
      List.fold_left (fun a (c, _) -> Float.min a (Float.abs c)) infinity kept
    in
    if
      kept = []
      || List.length kept > pool.opts.max_support
      || maxc /. minc > 1e7
      || (not (Float.is_finite !rhs))
      || Float.abs !rhs > 1e10 *. maxc
    then None
    else Some (kept, !rhs)
  end

(* Scale to max |coeff| = 1 and sort the support by id. *)
let normalize terms rhs family =
  let maxc =
    List.fold_left (fun a (c, _) -> Float.max a (Float.abs c)) 0. terms
  in
  if maxc <= 0. then None
  else begin
    let s = 1. /. maxc in
    let arr = Array.of_list (List.map (fun (c, id) -> (c *. s, id)) terms) in
    Array.sort (fun (_, a) (_, b) -> compare a b) arr;
    Some { terms = arr; rhs = rhs *. s; family; age = 0 }
  end

(* Generation-time audit: finite data, and — when an incumbent exists —
   the incumbent satisfies the cut within a residual tolerance scaled
   like Certify's row checks. A rejection bumps [cut-audit-failures]. *)
let audit ~incumbent cut =
  let finite =
    Float.is_finite cut.rhs
    && Array.for_all (fun (c, _) -> Float.is_finite c) cut.terms
  in
  let ok =
    finite
    &&
    match incumbent with
    | None -> true
    | Some x ->
      let lhs = eval_cut cut x in
      let scale =
        Array.fold_left
          (fun a (c, id) -> Float.max a (Float.abs (c *. x.(id))))
          (Float.max 1. (Float.abs cut.rhs))
          cut.terms
      in
      lhs <= cut.rhs +. (1e-5 *. scale)
  in
  if not ok then begin
    Lp_stats.incr Lp_stats.cut_audit_failures;
    Log.warn (fun f ->
        f "audit rejected %s cut (support %d)" (family_name cut.family)
          (Array.length cut.terms))
  end;
  ok

(* ------------------------------------------------------------------ *)
(* Pool construction: knapsack candidates and the conflict graph       *)

let le_rows model =
  (* every row as <= rows over its structural terms (Eq contributes
     both directions), each tagged with the index of the source
     constraint in [Model.conss]; Model.add_cons already moved lhs
     constants to the rhs *)
  List.concat
    (List.mapi
       (fun i (c : Model.cons) ->
         let ts = Linexpr.terms c.lhs in
         let neg () = List.map (fun (k, id) -> (-.k, id)) ts in
         match c.rel with
         | Model.Le -> [ (ts, c.rhs, i) ]
         | Model.Ge -> [ (neg (), -.c.rhs, i) ]
         | Model.Eq -> [ (ts, c.rhs, i); (neg (), -.c.rhs, i) ])
       (Array.to_list (Model.conss model)))

let collect_knaps ~is_bin rows =
  List.filter_map
    (fun (ts, rhs, row) ->
      let w = List.length ts in
      if w < 2 || w > 64 then None
      else if not (List.for_all (fun (_, id) -> is_bin id) ts) then None
      else begin
        (* complement negative coefficients so all items are positive *)
        let cap = ref rhs and items = ref [] in
        List.iter
          (fun (c, id) ->
            if c > 0. then items := (c, id, true) :: !items
            else if c < 0. then begin
              items := (-.c, id, false) :: !items;
              cap := !cap -. c
            end)
          ts;
        let items = List.rev !items in
        let total = List.fold_left (fun a (c, _, _) -> a +. c) 0. items in
        (* rows no subset of items can overflow yield no covers; rows
           with a nonpositive cap are presolve's (or infeasibility's)
           business *)
        if List.length items < 2 || !cap <= 1e-9 || total <= !cap +. 1e-9 then
          None
        else Some { kcap = !cap; krow = row; kitems = Array.of_list items }
      end)
    rows

let collect_conflicts ~is_bin ~glo ~ghi rows =
  let conflict = Hashtbl.create 256 and lit_set = Hashtbl.create 64 in
  let budget = ref 100_000 in
  List.iter
    (fun (ts, rhs, row) ->
      let bins = List.filter (fun (_, id) -> is_bin id) ts in
      let nbin = List.length bins in
      if nbin >= 2 && nbin <= 40 && !budget > 0 then begin
        (* minimal activity over the global box; rows with an unbounded
           side can imply nothing pairwise *)
        let minact = ref 0. and ok = ref true in
        List.iter
          (fun (c, id) ->
            let a = Float.min (c *. glo.(id)) (c *. ghi.(id)) in
            if Float.is_finite a then minact := !minact +. a else ok := false)
          ts;
        if !ok then begin
          let bins = Array.of_list bins in
          let tol = 1e-7 *. Float.max 1. (Float.abs rhs) in
          for i = 0 to Array.length bins - 1 do
            for j = i + 1 to Array.length bins - 1 do
              if !budget > 0 then begin
                let ci, idi = bins.(i) and cj, idj = bins.(j) in
                let base = !minact -. Float.min 0. ci -. Float.min 0. cj in
                List.iter
                  (fun (vi, vj) ->
                    (* both literals true already overflows the row *)
                    if base +. (ci *. vi) +. (cj *. vj) > rhs +. tol then begin
                      let li = if vi > 0.5 then lit_pos idi else lit_neg idi in
                      let lj = if vj > 0.5 then lit_pos idj else lit_neg idj in
                      let k = conflict_key li lj in
                      if not (Hashtbl.mem conflict k) then begin
                        Hashtbl.replace conflict k row;
                        Hashtbl.replace lit_set li ();
                        Hashtbl.replace lit_set lj ();
                        decr budget
                      end
                    end)
                  [ (1., 1.); (1., 0.); (0., 1.); (0., 0.) ]
              end
            done
          done
        end
      end)
    rows;
  let lits = Hashtbl.fold (fun l () acc -> l :: acc) lit_set [] in
  (conflict, Array.of_list (List.sort compare lits))

let create opts model =
  let nv = Model.num_vars model in
  let glo, ghi = Model.bounds model in
  let is_int = Array.make nv false in
  Array.iter
    (fun (v : Model.var) ->
      match v.kind with
      | Model.Binary | Model.Integer -> is_int.(v.vid) <- true
      | Model.Continuous -> ())
    (Model.vars model);
  let is_bin id =
    is_int.(id) && glo.(id) >= -1e-9 && ghi.(id) <= 1. +. 1e-9
  in
  let rows = le_rows model in
  let knaps =
    if opts.cover then Array.of_list (collect_knaps ~is_bin rows) else [||]
  in
  let conflict, graph_lits =
    if opts.clique then collect_conflicts ~is_bin ~glo ~ghi rows
    else (Hashtbl.create 1, [||])
  in
  if opts.enable then
    Log.debug (fun f ->
        f "%s: %d knapsack rows, %d conflict pairs over %d literals"
          (Model.name model) (Array.length knaps) (Hashtbl.length conflict)
          (Array.length graph_lits));
  {
    opts;
    glo;
    ghi;
    is_int;
    knaps;
    conflict;
    graph_lits;
    active = [];
    nactive = 0;
    seen = Hashtbl.create 64;
  }

(* ------------------------------------------------------------------ *)
(* Separators. Each pushes (terms, rhs, family, deps) candidates, with
   terms over structural ids and [deps] the source-row indices the
   cut's validity rests on ([] when it rests on the whole model, as a
   Gomory cut derived through B^-1 does).                              *)

(* Greedy minimal-cover separation: minimize sum (1 - y) over the LP
   point subject to overflowing the capacity, taking items by ascending
   (1 - y) / a. *)
let sep_cover pool x acc =
  Array.iter
    (fun k ->
      let n = Array.length k.kitems in
      let yval i =
        let _, id, pos = k.kitems.(i) in
        let y = if pos then x.(id) else 1. -. x.(id) in
        Float.min 1. (Float.max 0. y)
      in
      let order = Array.init n Fun.id in
      Array.sort
        (fun i j ->
          let ai, _, _ = k.kitems.(i) and aj, _, _ = k.kitems.(j) in
          compare ((1. -. yval i) /. ai, i) ((1. -. yval j) /. aj, j))
        order;
      let sum = ref 0. and cover = ref [] and enough = ref false in
      Array.iter
        (fun i ->
          if not !enough then begin
            let a, _, _ = k.kitems.(i) in
            sum := !sum +. a;
            cover := i :: !cover;
            if !sum > k.kcap +. 1e-9 then enough := true
          end)
        order;
      if !enough then begin
        let cover = List.rev !cover in
        let size = List.length cover in
        let ysum = List.fold_left (fun s i -> s +. yval i) 0. cover in
        (* violated cover inequality sum_{C} y <= |C| - 1 *)
        if ysum > float_of_int (size - 1) +. 1e-4 then begin
          let nneg = ref 0 in
          let terms =
            List.map
              (fun i ->
                let _, id, pos = k.kitems.(i) in
                if pos then (1., id)
                else begin
                  incr nneg;
                  (-1., id)
                end)
              cover
          in
          acc := (terms, float_of_int (size - 1 - !nneg), Cover, [ k.krow ]) :: !acc
        end
      end)
    pool.knaps

(* Greedy clique separation on the conflict graph: grow maximal cliques
   from the highest-value literals; emit when the LP mass exceeds 1. *)
let sep_clique pool x acc =
  let conflicts a b = Hashtbl.mem pool.conflict (conflict_key a b) in
  let cands =
    Array.to_list (Array.map (fun l -> (lit_value x l, l)) pool.graph_lits)
  in
  let cands = List.filter (fun (v, _) -> v > 0.05) cands in
  let cands =
    List.sort
      (fun (v1, l1) (v2, l2) ->
        let c = compare v2 v1 in
        if c <> 0 then c else compare l1 l2)
      cands
  in
  let arr = Array.of_list cands in
  let tried = ref 0 in
  Array.iter
    (fun (v0, seed) ->
      if !tried < 8 && v0 > 0.3 then begin
        incr tried;
        let clique = ref [ seed ] and vsum = ref v0 in
        Array.iter
          (fun (v, l) ->
            if l <> seed && List.for_all (conflicts l) !clique then begin
              clique := l :: !clique;
              vsum := !vsum +. v
            end)
          arr;
        if List.length !clique >= 2 && !vsum > 1. +. 1e-4 then begin
          let nneg = ref 0 in
          let terms =
            List.map
              (fun l ->
                if lit_is_pos l then (1., lit_id l)
                else begin
                  incr nneg;
                  (-1., lit_id l)
                end)
              !clique
          in
          (* the clique cut rests on every pairwise conflict it uses;
             each edge was derived from exactly one source row *)
          let deps = ref [] in
          let rec edges = function
            | [] -> ()
            | l :: rest ->
              List.iter
                (fun l' ->
                  let row = Hashtbl.find pool.conflict (conflict_key l l') in
                  if not (List.mem row !deps) then deps := row :: !deps)
                rest;
              edges rest
          in
          edges !clique;
          acc := (terms, 1. -. float_of_int !nneg, Clique, !deps) :: !acc
        end
      end)
    arr

(* Gomory mixed-integer cuts from the tableau rows of fractional
   integer basic variables.

   For basic row r of the extended LP (columns shifted to their global
   bounds so every nonbasic x' >= 0):
     x_B(r) + sum_q alpha_q x_q = rho . b,   rho = B^-T e_r,
   the GMI inequality with f0 = frac(beta') is
     sum_{int, f_q <= f0} f_q x'_q
     + sum_{int, f_q > f0} f0 (1 - f_q) / (1 - f0) x'_q
     + sum_{cont, a'_q > 0} a'_q x'_q
     + sum_{cont, a'_q < 0} f0 / (1 - f0) (-a'_q) x'_q  >=  f0.
   Unshifting and substituting the slack columns back out of the >=
   row yields a pure-structural <= inequality. Rows where a nonbasic
   column with meaningful alpha has no finite global bound on the
   shifted side are skipped — the shift (hence the cut) would be
   unsound. *)
let away = 5e-3

let sep_gomory pool ~sp ~rows ~bcols ~stats x acc =
  let m = sp.Sparse.m and n = sp.Sparse.n and nv = sp.Sparse.nv in
  match (try Some (Basis.create sp bcols) with Basis.Singular _ -> None) with
  | None -> ()
  | Some bas when Basis.bcols bas <> bcols ->
    (* the factorization repaired the selection: the tableau no longer
       matches the caller's statuses, skip this round *)
    ()
  | Some bas ->
    (* full internal point: structurals ++ implied slack values *)
    let fx = Array.make n 0. in
    Array.blit x 0 fx 0 nv;
    if m > 0 then begin
      let rhs = Array.sub sp.Sparse.b 0 m in
      for j = 0 to nv - 1 do
        if fx.(j) <> 0. then Sparse.axpy_col sp j (-.fx.(j)) rhs
      done;
      for i = 0 to m - 1 do
        fx.(nv + i) <- rhs.(i)
      done
    end;
    let col_lo q = if q < nv then pool.glo.(q) else sp.Sparse.slack_lo.(q - nv)
    and col_hi q = if q < nv then pool.ghi.(q) else sp.Sparse.slack_hi.(q - nv)
    in
    (* candidate rows: fractional integer basics, most fractional first *)
    let cands = ref [] in
    Array.iteri
      (fun r j ->
        if j < nv && pool.is_int.(j) then begin
          let f = fx.(j) -. Float.floor fx.(j) in
          if f > away && f < 1. -. away then
            cands := (Float.abs (f -. 0.5), r) :: !cands
        end)
      bcols;
    let cands = List.sort compare !cands in
    let cands = List.filteri (fun i _ -> i < pool.opts.max_per_round) cands in
    List.iter
      (fun (_, r) ->
        let er = Array.make (max m 1) 0. in
        er.(r) <- 1.;
        let rho = Basis.btran bas er in
        let beta = ref 0. in
        for i = 0 to m - 1 do
          beta := !beta +. (rho.(i) *. sp.Sparse.b.(i))
        done;
        (* shift every nonbasic column to a finite global bound *)
        let ok = ref true in
        let shifted = ref [] in
        for q = 0 to n - 1 do
          if !ok && stats.(q) <> Simplex.Basic then begin
            let alpha = Sparse.col_dot sp q rho in
            if Float.abs alpha > 1e-11 then begin
              let lo = col_lo q and hi = col_hi q in
              if hi -. lo <= 1e-12 then
                (* fixed column (e.g. an Eq slack): pure constant *)
                if Float.is_finite lo then beta := !beta -. (alpha *. lo)
                else ok := false
              else begin
                let prefer_lower =
                  match stats.(q) with
                  | Simplex.At_upper -> false
                  | Simplex.At_lower | Simplex.At_zero | Simplex.Basic -> true
                in
                let choice =
                  if prefer_lower then
                    if Float.is_finite lo then Some (lo, 1.)
                    else if Float.is_finite hi then Some (hi, -1.)
                    else None
                  else if Float.is_finite hi then Some (hi, -1.)
                  else if Float.is_finite lo then Some (lo, 1.)
                  else None
                in
                match choice with
                | None -> ok := false
                | Some (shift, sgn) ->
                  beta := !beta -. (alpha *. shift);
                  shifted := (q, alpha *. sgn, sgn, shift) :: !shifted
              end
            end
          end
        done;
        if !ok then begin
          let f0 = !beta -. Float.floor !beta in
          if f0 > away && f0 < 1. -. away then begin
            (* assemble the >= cut over original columns, substituting
               slacks with their defining rows *)
            let acc_s = Array.make nv 0. in
            let grhs = ref f0 in
            let ok2 = ref true in
            let add_col q g =
              if q < nv then acc_s.(q) <- acc_s.(q) +. g
              else begin
                let lhs, b_i = rows.(q - nv) in
                Linexpr.iter (fun id c -> acc_s.(id) <- acc_s.(id) -. (g *. c)) lhs;
                grhs := !grhs -. (g *. b_i)
              end
            in
            List.iter
              (fun (q, a', sgn, shift) ->
                let int_ok =
                  q < nv && pool.is_int.(q)
                  && Float.abs (shift -. Float.round shift) < 1e-9
                in
                let ghat =
                  if int_ok then begin
                    let fq = a' -. Float.floor a' in
                    if fq <= f0 +. 1e-12 then fq
                    else f0 *. (1. -. fq) /. (1. -. f0)
                  end
                  else if a' >= 0. then a'
                  else f0 /. (1. -. f0) *. -.a'
                in
                if ghat > 1e-11 then begin
                  (* ghat * x' = ghat * sgn * (x_q - shift) *)
                  let g = ghat *. sgn in
                  grhs := !grhs +. (g *. shift);
                  add_col q g
                end
                else if ghat > 0. then begin
                  (* dropping a positive term from a >= lhs strengthens
                     it; pay for the drop from the rhs, or keep the row
                     only if the range is finite *)
                  let range = col_hi q -. col_lo q in
                  if Float.is_finite range then grhs := !grhs -. (ghat *. range)
                  else ok2 := false
                end)
              (List.rev !shifted);
            if !ok2 then begin
              (* >= to <= *)
              let terms = ref [] in
              for k = nv - 1 downto 0 do
                if acc_s.(k) <> 0. then terms := (-.acc_s.(k), k) :: !terms
              done;
              acc := (!terms, -. !grhs, Gomory, []) :: !acc
            end
          end
        end)
      cands

(* ------------------------------------------------------------------ *)
(* Pool lifecycle                                                      *)

let active_count pool = pool.nactive
let active_cuts pool = pool.active

let separate_round pool ~sp ~rows ~point ~basis ~incumbent =
  if pool.nactive >= pool.opts.pool_size then 0
  else begin
    let raw = ref [] in
    if pool.opts.cover then sep_cover pool point raw;
    if pool.opts.clique then sep_clique pool point raw;
    (match basis with
    | Some (bcols, stats) when pool.opts.gomory ->
      sep_gomory pool ~sp ~rows ~bcols ~stats point raw
    | Some _ | None -> ());
    (* clean, normalize and keep the violated candidates *)
    let cands =
      List.filter_map
        (fun (terms, rhs, fam, _deps) ->
          Lp_stats.incr Lp_stats.cuts_generated;
          match clean_le pool terms rhs with
          | None -> None
          | Some (terms, rhs) -> (
            match normalize terms rhs fam with
            | None -> None
            | Some cut ->
              let viol = eval_cut cut point -. cut.rhs in
              if viol > 1e-6 *. Float.max 1. (Float.abs cut.rhs) then
                Some (viol, cut)
              else None))
        !raw
    in
    (* most violated first; key tiebreak keeps the order deterministic *)
    let cands =
      List.sort
        (fun (v1, c1) (v2, c2) ->
          let c = compare v2 v1 in
          if c <> 0 then c else compare (key_of c1) (key_of c2))
        cands
    in
    let added = ref 0 in
    List.iter
      (fun (_, cut) ->
        if
          !added < pool.opts.max_per_round
          && pool.nactive < pool.opts.pool_size
        then begin
          let key = key_of cut in
          if (not (Hashtbl.mem pool.seen key)) && audit ~incumbent cut then begin
            Hashtbl.replace pool.seen key ();
            pool.active <- pool.active @ [ cut ];
            pool.nactive <- pool.nactive + 1;
            incr added;
            Lp_stats.incr Lp_stats.cuts_applied
          end
        end)
      cands;
    !added
  end

let age_and_prune pool ~point =
  let pruned = ref 0 in
  let keep =
    List.filter
      (fun cut ->
        let slack = cut.rhs -. eval_cut cut point in
        if slack > 1e-7 *. Float.max 1. (Float.abs cut.rhs) then
          cut.age <- cut.age + 1
        else cut.age <- 0;
        if cut.age > pool.opts.max_age then begin
          incr pruned;
          (* allow the cut back in if it ever separates again *)
          Hashtbl.remove pool.seen (key_of cut);
          Lp_stats.incr Lp_stats.cuts_pruned;
          false
        end
        else true)
      pool.active
  in
  pool.active <- keep;
  pool.nactive <- List.length keep;
  !pruned

let audit_incumbent pool x =
  let dropped = ref 0 in
  let keep =
    List.filter
      (fun cut ->
        if audit ~incumbent:(Some x) cut then true
        else begin
          incr dropped;
          Hashtbl.remove pool.seen (key_of cut);
          false
        end)
      pool.active
  in
  pool.active <- keep;
  pool.nactive <- List.length keep;
  !dropped

(* ------------------------------------------------------------------ *)
(* Structural separation for cross-solve persistence                   *)

type structural = {
  s_terms : (float * int) list;
  s_rhs : float;
  s_family : family;
  s_deps : int list;
}

let separate_structural opts model ~point =
  (* Only the row-local families: a cover cut rests on its single
     knapsack row and a clique cut on the rows behind its conflict
     edges, so each survives any later solve whose model still contains
     (an equal copy of) those rows. Gomory cuts are derived through
     B^-1 from the whole row system and are excluded — no per-row
     dependency list can license reusing one. *)
  let pool = create { opts with gomory = false } model in
  let raw = ref [] in
  if opts.cover then sep_cover pool point raw;
  if opts.clique then sep_clique pool point raw;
  let cands =
    List.filter_map
      (fun (terms, rhs, fam, deps) ->
        match clean_le pool terms rhs with
        | None -> None
        | Some (terms, rhs) -> (
          match normalize terms rhs fam with
          | None -> None
          | Some cut ->
            let viol = eval_cut cut point -. cut.rhs in
            if viol > 1e-6 *. Float.max 1. (Float.abs cut.rhs) then
              Some (viol, cut, List.sort_uniq compare deps)
            else None))
      !raw
  in
  let cands =
    List.sort
      (fun (v1, c1, _) (v2, c2, _) ->
        let c = compare v2 v1 in
        if c <> 0 then c else compare (key_of c1) (key_of c2))
      cands
  in
  let seen = Hashtbl.create 16 in
  let out = ref [] and n = ref 0 in
  List.iter
    (fun (_, cut, deps) ->
      let key = key_of cut in
      if !n < opts.pool_size && not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        incr n;
        out :=
          {
            s_terms = Array.to_list cut.terms;
            s_rhs = cut.rhs;
            s_family = cut.family;
            s_deps = deps;
          }
          :: !out
      end)
    cands;
  List.rev !out

let extend_model base pool =
  match pool.active with
  | [] -> base
  | cuts ->
    let m = Model.create ~name:(Model.name base) () in
    Array.iter
      (fun (v : Model.var) ->
        ignore (Model.add_var m ~name:v.vname ~kind:v.kind ~lb:v.lb ~ub:v.ub))
      (Model.vars base);
    Array.iter
      (fun (c : Model.cons) -> Model.add_cons m ~name:c.cname c.lhs c.rel c.rhs)
      (Model.conss base);
    let sense, obj = Model.objective base in
    Model.set_objective m sense obj;
    List.iteri
      (fun i cut ->
        Model.add_cons m
          ~name:(Printf.sprintf "%s_cut%d" (family_name cut.family) i)
          (Linexpr.of_terms (Array.to_list cut.terms))
          Model.Le cut.rhs)
      cuts;
    m
