(* One experiment per table/figure of the paper's evaluation (§8 and
   Appendix D). Each prints the series the paper plots; EXPERIMENTS.md
   records paper-vs-measured shapes. *)

open Common

(* ----------------------------------------------------------------- fig1 *)

let fig1 ctx =
  section ctx ~id:"fig1" ~paper:"the §2.1 worked example (three analyses)"
    ~config:"4-node network, 2 paths/pair, single failures, +/-50% demand envelope";
  let topo = Wan.Generators.fig1 () in
  let paths = paths_of ~primary:2 ~backup:0 topo [ (1, 3); (2, 3) ] in
  let typical = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let sp = spec ~max_failures:1 ~levels:5 () in
  let fixed = analyze ctx sp topo paths (Traffic.Envelope.fixed typical) in
  let naive =
    Raha.Baselines.worst_failures_at_demand ~options:(options ctx sp) topo paths
      (Traffic.Demand.of_list [ ((1, 3), 6.); ((2, 3), 5.) ])
  in
  let joint = analyze ctx sp topo paths (Traffic.Envelope.around ~slack:0.5 typical) in
  row "%-24s %-10s %s@." "analysis" "measured" "paper";
  row "%-24s %-10.0f %s@." "fixed demand" fixed.Raha.Analysis.degradation "7";
  row "%-24s %-10.0f %s@." "naive worst case" naive.Raha.Analysis.degradation "1";
  row "%-24s %-10.0f %s@." "raha joint" joint.Raha.Analysis.degradation "9"

(* ----------------------------------------------------------------- fig2 *)

let fig2 ctx =
  section ctx ~id:"fig2" ~paper:"max # simultaneously failing links vs probability threshold"
    ~config:"africa-like WAN and B4; greedy-optimal count (validated against enumeration)";
  let topos = [ fst (wan_large ()); Wan.Zoo.b4 () ] in
  row "%-14s" "threshold";
  List.iter (fun t -> row " %-14s" (Wan.Topology.name t)) topos;
  row "@.";
  List.iter
    (fun thr ->
      row "%-14g" thr;
      List.iter
        (fun topo ->
          let n, _ = Failure.Probability.max_simultaneous_failures topo ~threshold:thr in
          row " %-14d" n)
        topos;
      row "@.")
    [ 1e-1; 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7 ];
  row "(paper: decreases from 15-20 at 1e-7 to ~0 at 0.1 on the production WAN)@."

(* ----------------------------------------------------------------- fig3 *)

let fig3 ctx =
  section ctx ~id:"fig3"
    ~paper:"Raha vs naive fixed-demand baselines (Max / Average) across slack"
    ~config:"africa-like WAN (8 nodes), 1 backup path, threshold 1e-5";
  let topo, pairs = wan_small () in
  let paths = paths_of ~primary:1 ~backup:1 topo pairs in
  let avg = base_demand pairs in
  let sp = spec ~threshold:1e-5 () in
  let sp_min = spec ~threshold:1e-5 ~goal:Raha.Bilevel.Min_failed_performance () in
  row "%-10s %-10s %-10s %-10s@." "slack(%)" "raha" "max" "average";
  let slacks = if ctx.quick then [ 0.; 0.8 ] else [ 0.; 0.2; 0.4; 0.6; 0.8; 1.0; 1.2; 1.4 ] in
  List.iter
    (fun slack ->
      let raha = analyze ctx sp topo paths (Traffic.Envelope.from_zero ~slack avg) in
      let mx =
        Raha.Baselines.worst_failures_at_demand ~options:(options ctx sp_min) topo paths
          (Traffic.Demand.scale (1. +. slack) avg)
      in
      let av =
        Raha.Baselines.worst_failures_at_demand ~options:(options ctx sp_min) topo paths avg
      in
      row "%-10.0f %-10s %-10s %-10s@." (100. *. slack) (deg_str raha) (deg_str mx)
        (deg_str av))
    slacks;
  row "(paper: raha dominates both baselines and grows with slack)@.";
  (* Second panel: the §2.3 subtlety — "set both networks to peak demand"
     does NOT reveal the worst degradation. Two pairs share the primary
     LAG X-T; pair 1's backup is larger than its primary, so pushing its
     demand past the primary's capacity feeds the FAILED network more
     than the healthy one and shrinks the gap. *)
  row "@.[backup-rich topology: peak demand is not the worst demand]@.";
  (* The only failure that hurts pair X->T (tiny backup) is the shared
     X-T LAG, which also moves pair S1->T onto a backup LARGER than its
     primary — so inflating S1's demand past its primary feeds the failed
     network more than the healthy one and shrinks the gap. *)
  let topo2 =
    Wan.Topology.create ~name:"backup_rich" ~num_nodes:5
      ~node_names:[| "S1"; "X"; "Y"; "Z"; "T" |]
      [
        Wan.Lag.uniform ~id:0 ~src:0 ~dst:1 ~n:1 ~capacity:10. ~fail_prob:0.01;
        Wan.Lag.uniform ~id:1 ~src:1 ~dst:4 ~n:1 ~capacity:30. ~fail_prob:0.01;
        Wan.Lag.uniform ~id:2 ~src:0 ~dst:2 ~n:1 ~capacity:40. ~fail_prob:0.01;
        Wan.Lag.uniform ~id:3 ~src:2 ~dst:4 ~n:1 ~capacity:40. ~fail_prob:0.01;
        Wan.Lag.uniform ~id:4 ~src:1 ~dst:3 ~n:1 ~capacity:2. ~fail_prob:0.01;
        Wan.Lag.uniform ~id:5 ~src:3 ~dst:4 ~n:1 ~capacity:2. ~fail_prob:0.01;
      ]
  in
  let paths2 =
    [
      {
        Netpath.Path_set.src = 0;
        dst = 4;
        primary = [ Netpath.Path.make topo2 [ 0; 1; 4 ] ];
        backup = [ Netpath.Path.make topo2 [ 0; 2; 4 ] ];
      };
      {
        Netpath.Path_set.src = 1;
        dst = 4;
        primary = [ Netpath.Path.make topo2 [ 1; 4 ] ];
        backup = [ Netpath.Path.make topo2 [ 1; 3; 4 ] ];
      };
    ]
  in
  let base2 = Traffic.Demand.of_list [ ((0, 4), 10.); ((1, 4), 20.) ] in
  let sp2 = spec ~max_failures:1 ~levels:5 () in
  let sp2_min = spec ~max_failures:1 ~goal:Raha.Bilevel.Min_failed_performance () in
  row "%-10s %-10s %-10s@." "slack(%)" "raha" "max";
  List.iter
    (fun slack ->
      let raha = analyze ctx sp2 topo2 paths2 (Traffic.Envelope.from_zero ~slack base2) in
      let mx =
        Raha.Baselines.worst_failures_at_demand ~options:(options ctx sp2_min) topo2
          paths2
          (Traffic.Demand.scale (1. +. slack) base2)
      in
      row "%-10.0f %-10.1f %-10.1f@." (100. *. slack) raha.Raha.Analysis.degradation
        mx.Raha.Analysis.degradation)
    (if ctx.quick then [ 1. ] else [ 0.; 0.5; 1.; 1.5 ]);
  row "(raha holds the interior optimum while the peak-demand baseline decays)@."

(* ------------------------------------------------------------- fig5/6 *)

let fig56 ~ce ctx =
  let id = if ce then "fig6" else "fig5" in
  section ctx ~id
    ~paper:
      (Printf.sprintf "degradation vs threshold x max-failures%s"
         (if ce then " under CE constraints" else ""))
    ~config:"africa-like WAN (8 nodes), 2+1 paths; demand: avg | 1.3x max | variable";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let avg = base_demand pairs in
  let mx = Traffic.Demand.scale 1.3 avg in
  let modes =
    [
      ("fixed avg", Traffic.Envelope.fixed avg);
      ("fixed max", Traffic.Envelope.fixed mx);
      ("variable", Traffic.Envelope.from_zero ~slack:0.3 avg);
    ]
  in
  (* the whole modes x thresholds x k grid is one scenario sweep: every
     cell is an independent bi-level solve, fanned out over ctx.domains *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun (_, envelope) ->
           List.concat_map
             (fun thr -> List.map (fun k -> (envelope, thr, k)) (ks ctx))
             (thresholds ctx))
         modes)
  in
  let results =
    par_cells ctx
      (fun (envelope, thr, k) ->
        let sp = spec ~threshold:thr ?max_failures:k ~ce () in
        deg_str (analyze ctx sp topo paths envelope))
      cells
  in
  let nk = List.length (ks ctx) and nthr = List.length (thresholds ctx) in
  List.iteri
    (fun mi (mode, _) ->
      row "@.[%s demand]@." mode;
      row "%-12s" "threshold";
      List.iter (fun k -> row " k=%-8s" (k_str k)) (ks ctx);
      row "@.";
      List.iteri
        (fun ti thr ->
          row "%-12g" thr;
          List.iteri
            (fun ki _ -> row " %-10s" results.((((mi * nthr) + ti) * nk) + ki))
            (ks ctx);
          row "@.")
        (thresholds ctx))
    modes;
  row "(paper: k<=2 underestimates by 2-20x at low thresholds)@."

let fig5 = fig56 ~ce:false
let fig6 = fig56 ~ce:true

(* ----------------------------------------------------------------- fig7 *)

let fig7 ctx =
  section ctx ~id:"fig7" ~paper:"degradation grows with the demand slack"
    ~config:"africa-like WAN (8 nodes), 2+1 paths, threshold 1e-5";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let avg = base_demand pairs in
  let slacks = if ctx.quick then [ 0.; 2. ] else [ 0.; 0.5; 1.; 2.; 4. ] in
  let cells =
    Array.of_list
      (List.concat_map (fun slack -> List.map (fun k -> (slack, k)) (ks ctx)) slacks)
  in
  let results =
    par_cells ctx
      (fun (slack, k) ->
        let sp = spec ~threshold:1e-5 ?max_failures:k () in
        deg_str (analyze ctx sp topo paths (Traffic.Envelope.from_zero ~slack avg)))
      cells
  in
  let nk = List.length (ks ctx) in
  row "%-10s" "slack(%)";
  List.iter (fun k -> row " k=%-8s" (k_str k)) (ks ctx);
  row "@.";
  List.iteri
    (fun si slack ->
      row "%-10.0f" (100. *. slack);
      List.iteri (fun ki _ -> row " %-10s" results.((si * nk) + ki)) (ks ctx);
      row "@.")
    slacks;
  row "(paper: monotone growth, larger for larger k)@."

(* ----------------------------------------------------------------- fig8 *)

let fig8 ctx =
  section ctx ~id:"fig8" ~paper:"Uninett2010: clustering when the search space is large"
    ~config:
      "uninett2010 stand-in (20-node reduction by default), 4+1 paths, demands \
       capped at half the avg LAG capacity";
  let ctx = { ctx with budget = 2. *. ctx.budget } in
  let topo = if ctx.full then Wan.Zoo.uninett2010 () else Wan.Zoo.uninett2010_reduced () in
  let n = Wan.Topology.num_nodes topo in
  let pairs = [ (0, n / 2); (1, (n / 2) + 1); (2, (n / 2) + 2); (3, (n / 2) + 3) ] in
  let paths = paths_of ~primary:4 ~backup:1 topo pairs in
  let cap = Wan.Topology.avg_lag_capacity topo /. 2. in
  let envelope = Traffic.Envelope.unbounded ~cap pairs in
  row "%-12s %-14s %-14s@." "threshold" "no clusters" "2 clusters";
  List.iter
    (fun thr ->
      let sp = spec ~threshold:thr () in
      let plain = analyze ctx sp topo paths envelope in
      let clustered =
        Raha.Cluster.analyze ~options:(options ctx sp) ~clusters:2 topo paths envelope
      in
      row "%-12g %-14s %-14s@." thr (deg_str plain)
        (deg_str clustered.Raha.Cluster.report))
    (if ctx.quick then [ 1e-3 ] else [ 1e-1; 1e-3; 1e-5 ]);
  row "(paper: without clustering the solver stalls below threshold 1e-4)@."

(* ----------------------------------------------------------------- fig9 *)

let fig9 ctx =
  section ctx ~id:"fig9" ~paper:"impact of the number of clusters on quality and runtime"
    ~config:"africa-like WAN (10 nodes), fixed total solver budget split across solves";
  let topo, pairs = wan_large () in
  let paths = paths_of topo pairs in
  (* a hard instance: wide demand envelope and a low probability threshold *)
  let envelope = Traffic.Envelope.from_zero ~slack:1.0 (base_demand pairs) in
  let total_budget = 4. *. ctx.budget in
  row "%-10s %-14s %-12s@." "clusters" "degradation" "runtime(s)";
  List.iter
    (fun clusters ->
      let sp = spec ~threshold:1e-7 ~levels:5 () in
      let opt = { (options ctx sp) with Raha.Analysis.time_limit = total_budget } in
      let t0 = Unix.gettimeofday () in
      let r =
        if clusters = 1 then
          let rep = Raha.Analysis.analyze ~options:opt topo paths envelope in
          rep
        else
          (Raha.Cluster.analyze ~options:opt ~clusters topo paths envelope).Raha.Cluster.report
      in
      row "%-10d %-14s %-12.1f@." clusters (deg_str r) (Unix.gettimeofday () -. t0))
    (if ctx.quick then [ 1; 2 ] else [ 1; 2; 4; 8 ]);
  row "(paper: clustering trades ~15%% degradation for ~69%% less runtime)@."

(* ---------------------------------------------------------------- fig10 *)

let fig10 ctx =
  section ctx ~id:"fig10" ~paper:"runtime vs #primary paths / threshold / max failures"
    ~config:"africa-like WAN (10 nodes), variable demand; includes path computation";
  let topo, pairs = wan_large () in
  let envelope = Traffic.Envelope.from_zero ~slack:0.3 (base_demand pairs) in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  row "%-22s %-12s %-12s@." "sweep" "value" "runtime(s)";
  List.iter
    (fun primary ->
      let _, dt =
        timed (fun () ->
            let paths = paths_of ~primary ~backup:1 topo pairs in
            analyze ctx (spec ~threshold:1e-5 ()) topo paths envelope)
      in
      row "%-22s %-12d %-12.2f@." "primary paths" primary dt)
    (if ctx.quick then [ 2 ] else [ 1; 2; 3; 4 ]);
  let paths = paths_of topo pairs in
  List.iter
    (fun thr ->
      let _, dt = timed (fun () -> analyze ctx (spec ~threshold:thr ()) topo paths envelope) in
      row "%-22s %-12g %-12.2f@." "threshold" thr dt)
    (thresholds ctx);
  List.iter
    (fun k ->
      let _, dt =
        timed (fun () -> analyze ctx (spec ?max_failures:k ()) topo paths envelope)
      in
      row "%-22s %-12s %-12.2f@." "max failures" (k_str k) dt)
    (ks ctx);
  row "(paper: runtime grows with #paths and with stricter probability thresholds;@.";
  row " removing the constraints entirely is fastest)@."

(* ------------------------------------------------------------ fig11/17 *)

let augment_sweep ~id ~can_fail ctx =
  section ctx ~id
    ~paper:
      (Printf.sprintf "LAG augmentation until no probable degradation (%s capacity)"
         (if can_fail then "failable new" else "non-failable new"))
    ~config:"africa-like WAN (8 nodes), threshold 1e-4, 2+1 paths";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let avg = base_demand pairs in
  row "%-10s %-8s %-16s %-12s %-12s@." "slack(%)" "steps" "avg reduction(%)" "links added"
    "converged";
  List.iter
    (fun slack ->
      let sp = spec ~threshold:1e-4 () in
      let r =
        Raha.Augment.augment_lags ~options:(options ctx sp)
          ~new_capacity_can_fail:can_fail ~tolerance:0.01 ~max_steps:8 topo paths
          (Traffic.Envelope.from_zero ~slack avg)
      in
      let n_steps = List.length r.Raha.Augment.steps in
      let reduction =
        match r.Raha.Augment.steps with
        | [] -> 100.
        | first :: _ ->
          let d0 = first.Raha.Augment.report.Raha.Analysis.degradation in
          let df = Float.max 0. r.Raha.Augment.final.Raha.Analysis.degradation in
          if d0 <= 0. then 100. else 100. *. (d0 -. df) /. d0
      in
      row "%-10.0f %-8d %-16.0f %-12d %-12b@." (100. *. slack) n_steps reduction
        r.Raha.Augment.total_links_added r.Raha.Augment.converged)
    (if ctx.quick then [ 0.; 1. ] else [ 0.; 0.5; 1.; 2. ]);
  row "(paper: converges in <= 6 steps; links added grow with slack)@."

let fig11 = augment_sweep ~id:"fig11" ~can_fail:true
let fig17 = augment_sweep ~id:"fig17" ~can_fail:false

(* ------------------------------------------------------- fig12/13/15 *)

let path_sweep ~id ~fixed_max ~scheme ctx =
  let demand_desc = if fixed_max then "fixed 1.3x max demand" else "variable demand" in
  section ctx ~id
    ~paper:
      (match id with
      | "fig13" -> "weighted path selection: degradation vs #primary paths"
      | "fig15" -> "Fig. 12 with fixed maximum demands"
      | _ -> "degradation vs #primary (plain + CE) and #backup paths")
    ~config:(Printf.sprintf "africa-like WAN (8 nodes), %s, threshold 1e-5" demand_desc);
  let topo, pairs = wan_small () in
  let avg = base_demand pairs in
  let envelope =
    if fixed_max then Traffic.Envelope.fixed (Traffic.Demand.scale 1.3 avg)
    else Traffic.Envelope.from_zero ~slack:0.3 avg
  in
  let sweep name mk_paths values ~ce =
    row "@.[%s%s]@." name (if ce then ", CE" else "");
    row "%-10s" name;
    List.iter (fun k -> row " k=%-8s" (k_str k)) (ks ctx);
    row "@.";
    List.iter
      (fun v ->
        row "%-10d" v;
        let paths = mk_paths v in
        List.iter
          (fun k ->
            let sp = spec ~threshold:1e-5 ?max_failures:k ~ce () in
            let r = analyze ctx sp topo paths envelope in
            row " %-10s" (deg_str r))
          (ks ctx);
        row "@.")
      values
  in
  let primaries = if ctx.quick then [ 2 ] else [ 1; 2; 3; 4 ] in
  let backups = if ctx.quick then [ 1 ] else [ 0; 1; 2; 3 ] in
  sweep "primary" (fun p -> paths_of ?scheme ~primary:p ~backup:1 topo pairs) primaries
    ~ce:false;
  if id <> "fig13" then begin
    sweep "primary" (fun p -> paths_of ?scheme ~primary:p ~backup:1 topo pairs) primaries
      ~ce:true;
    sweep "backup" (fun b -> paths_of ?scheme ~primary:2 ~backup:b topo pairs) backups
      ~ce:false
  end;
  row
    "(paper: with plain k-shortest paths more paths can RAISE the degradation \
     (fate sharing);@. weighted selection (fig13) restores the expected decrease; \
     fixed demands (fig15) flatten it)@."

let fig12 = path_sweep ~id:"fig12" ~fixed_max:false ~scheme:None
let fig13 =
  path_sweep ~id:"fig13" ~fixed_max:false ~scheme:(Some Netpath.Path_set.Usage_penalized)
let fig15 = path_sweep ~id:"fig15" ~fixed_max:true ~scheme:None

(* ---------------------------------------------------------------- fig14 *)

let fig14 ctx =
  section ctx ~id:"fig14" ~paper:"runtime vs #backup paths (incl. path computation)"
    ~config:"africa-like WAN (10 nodes), variable demand, threshold 1e-5";
  let topo, pairs = wan_large () in
  let envelope = Traffic.Envelope.from_zero ~slack:0.3 (base_demand pairs) in
  row "%-10s %-12s %-14s@." "backups" "runtime(s)" "degradation";
  List.iter
    (fun backup ->
      let t0 = Unix.gettimeofday () in
      let paths = paths_of ~primary:2 ~backup topo pairs in
      let r = analyze ctx (spec ~threshold:1e-5 ()) topo paths envelope in
      row "%-10d %-12.2f %-14s@." backup (Unix.gettimeofday () -. t0) (deg_str r))
    (if ctx.quick then [ 1 ] else [ 0; 1; 2; 3 ]);
  row "(paper: runtime grows with backups, mostly due to path computation)@."

(* ---------------------------------------------------------------- fig16 *)

let fig16 ctx =
  section ctx ~id:"fig16" ~paper:"timeouts affect runtime, not solution quality"
    ~config:"africa-like WAN (10 nodes, a budget-bound instance), variable demand";
  let topo, pairs = wan_large () in
  let paths = paths_of topo pairs in
  let envelope = Traffic.Envelope.from_zero ~slack:0.3 (base_demand pairs) in
  row "%-12s %-12s %-14s %-12s@." "timeout(s)" "runtime(s)" "degradation" "bound";
  List.iter
    (fun budget ->
      let sp = spec ~threshold:1e-5 () in
      let opt = { (options ctx sp) with Raha.Analysis.time_limit = budget } in
      let t0 = Unix.gettimeofday () in
      let r = Raha.Analysis.analyze ~options:opt topo paths envelope in
      row "%-12.0f %-12.1f %-14s %-12.1f@." budget
        (Unix.gettimeofday () -. t0)
        (deg_str r) (r.Raha.Analysis.bound /. Wan.Topology.avg_lag_capacity topo))
    (if ctx.quick then [ 2.; 10. ] else [ 2.; 5.; 15.; 40. ]);
  row "(paper: the incumbent degradation is stable across timeouts)@."

(* ---------------------------------------------------------------- fig18 *)

let fig18 ctx =
  section ctx ~id:"fig18" ~paper:"adding new LAGs (edges) until failures cannot degrade"
    ~config:"africa-like WAN (8 nodes), threshold 1e-4, candidate edges between spokes";
  let topo, pairs = wan_small () in
  let avg = base_demand pairs in
  let n = Wan.Topology.num_nodes topo in
  (* candidates: node pairs with no existing LAG *)
  let candidates =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if a < b && Wan.Topology.lag_between topo a b = None then Some (a, b) else None)
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let repath t = paths_of t pairs in
  row "%-10s %-8s %-14s %-12s@." "slack(%)" "steps" "links added" "converged";
  List.iter
    (fun slack ->
      let sp = spec ~threshold:1e-4 () in
      let r =
        Raha.Augment.augment_new_lags ~options:(options ctx sp) ~candidates ~repath
          ~tolerance:0.01 ~max_steps:6 topo (Traffic.Envelope.from_zero ~slack avg)
      in
      row "%-10.0f %-8d %-14d %-12b@." (100. *. slack)
        (List.length r.Raha.Augment.steps)
        r.Raha.Augment.total_links_added r.Raha.Augment.converged)
    (if ctx.quick then [ 0. ] else [ 0.; 1.; 2. ]);
  row "(paper: a small set of new edges removes all probable degradation)@."

(* ----------------------------------------------------------------- tab3 *)

let tab3 ctx =
  section ctx ~id:"tab3" ~paper:"B4: degradation per (threshold, #backup, max failures)"
    ~config:"B4 (12 nodes, 19 LAGs), 4 primary paths, demands in [0, half avg capacity]";
  let topo = Wan.Zoo.b4 () in
  let pairs = [ (0, 11); (1, 10); (2, 9); (3, 8) ] in
  let cap = Wan.Topology.avg_lag_capacity topo /. 2. in
  let envelope = Traffic.Envelope.unbounded ~cap pairs in
  row "%-12s %-10s %-8s %-14s@." "threshold" "backups" "k" "degradation";
  let grid =
    if ctx.quick then [ (1e-2, 1); (1e-4, 1) ]
    else [ (1e-2, 1); (1e-2, 2); (1e-3, 1); (1e-4, 1); (1e-5, 1) ]
  in
  List.iter
    (fun (thr, backup) ->
      let paths = paths_of ~primary:4 ~backup topo pairs in
      List.iter
        (fun k ->
          let sp = spec ~threshold:thr ?max_failures:k () in
          let r = analyze ctx sp topo paths envelope in
          row "%-12g %-10d %-8s %-14s@." thr backup (k_str k) (deg_str r))
        (ks ctx))
    grid;
  row "(paper: degradation = min(#backup+1, allowed failures) LAG capacities, \
       growing with both)@."

(* ----------------------------------------------------------------- tab4 *)

let tab4 ctx =
  section ctx ~id:"tab4" ~paper:"Cogentco: degradation with 8 clusters"
    ~config:
      "cogentco stand-in (24-node reduction, 4 clusters by default; 197 nodes, 8 \
       clusters with --full), 4+1 paths, demands in [0, half avg capacity]";
  (* clustering splits the budget across ~17 block solves, so this
     experiment gets a larger share *)
  let ctx = { ctx with budget = 3. *. ctx.budget } in
  let topo = if ctx.full then Wan.Zoo.cogentco () else Wan.Zoo.cogentco_reduced () in
  let n = Wan.Topology.num_nodes topo in
  let clusters = if ctx.full then 8 else 4 in
  let pairs =
    [ (0, n / 2); (1, (n / 2) + 2); (3, (n / 2) + 4); (5, (n / 2) + 6);
      (2, (n / 2) + 1); (4, (n / 2) + 3) ]
  in
  let paths = paths_of ~primary:4 ~backup:1 topo pairs in
  let cap = Wan.Topology.avg_lag_capacity topo /. 2. in
  let envelope = Traffic.Envelope.unbounded ~cap pairs in
  row "%-12s %-8s %-14s@." "threshold" "k" "degradation";
  List.iter
    (fun (thr, k) ->
      let sp = spec ~threshold:thr ?max_failures:k () in
      let r =
        Raha.Cluster.analyze ~options:(options ctx sp) ~clusters topo paths envelope
      in
      row "%-12g %-8s %-14s@." thr (k_str k) (deg_str r.Raha.Cluster.report))
    (if ctx.quick then [ (1e-4, Some 2); (1e-4, None) ]
     else
       [ (1e-4, Some 1); (1e-4, Some 2); (1e-4, Some 4); (1e-4, None); (1e-6, None) ]);
  row "(paper: 1 / 2 / 4 / 6 / 10.5 for these rows)@."

(* ------------------------------------------------------------------ mlu *)

let mlu ctx =
  section ctx ~id:"mlu" ~paper:"§8.5: worst-case MLU degradation vs slack"
    ~config:"africa-like WAN (8 nodes), gravity demands, CE enforced, threshold 1e-5";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let demand = Traffic.Gravity.generate ~pairs ~scale:30. ~seed:4 topo () in
  row "%-10s %-14s@." "slack(%)" "MLU degradation";
  List.iter
    (fun slack ->
      let sp =
        spec ~objective:(Te.Formulation.Mlu { u_max = 10. }) ~threshold:1e-5 ~ce:true ()
      in
      let envelope =
        if slack = 0. then Traffic.Envelope.fixed demand
        else Traffic.Envelope.from_zero ~slack demand
      in
      let r = analyze ctx sp topo paths envelope in
      let s =
        match r.Raha.Analysis.status with
        | Milp.Solver.Optimal -> Printf.sprintf "%.3f" r.Raha.Analysis.degradation
        | Milp.Solver.Feasible -> Printf.sprintf "%.3f*" r.Raha.Analysis.degradation
        | _ -> "-"
      in
      row "%-10.0f %-14s@." (100. *. slack) s)
    (if ctx.quick then [ 0.; 0.4 ] else [ 0.; 0.1; 0.2; 0.4 ]);
  row "(paper: 1.06 / 1.32 / 1.26 at 0-20%% slack, jumping to 3.12 at 40%%)@."

(* ------------------------------------------------------------- ablation *)

let ablation ctx =
  section ctx ~id:"ablation"
    ~paper:"design choice: strong-duality vs KKT encoding (DESIGN.md)"
    ~config:"africa-like WAN (8 nodes), threshold 1e-5, fixed and variable demand";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let avg = base_demand pairs in
  let run name encoding envelope =
    let sp = { (spec ~threshold:1e-5 ()) with Raha.Bilevel.encoding } in
    let t0 = Unix.gettimeofday () in
    let r = analyze ctx sp topo paths envelope in
    row "%-26s %-12s %-10.2f %-8d@." name (deg_str r)
      (Unix.gettimeofday () -. t0)
      r.Raha.Analysis.nodes
  in
  row "%-26s %-12s %-10s %-8s@." "encoding" "degradation" "time(s)" "nodes";
  run "sd:3 / fixed" (Raha.Bilevel.Strong_duality { levels = 3 }) (Traffic.Envelope.fixed avg);
  run "kkt  / fixed" Raha.Bilevel.Kkt (Traffic.Envelope.fixed avg);
  let var = Traffic.Envelope.from_zero ~slack:0.3 avg in
  run "sd:3 / variable" (Raha.Bilevel.Strong_duality { levels = 3 }) var;
  run "sd:5 / variable" (Raha.Bilevel.Strong_duality { levels = 5 }) var;
  if not ctx.quick then run "kkt  / variable" Raha.Bilevel.Kkt var;
  row
    "(strong duality explores far fewer nodes; KKT is exact for continuous demands      but searches more)@."

(* ------------------------------------------------------------- presolve *)

(* Presolve ablation over the bilevel encodings: model shrinkage from the
   Milp.Presolve reductions, then the end-to-end solve cost (nodes,
   simplex pivots, wall time) with presolve on vs off. The measured rows
   are recorded in BENCH_presolve.json. *)
let presolve_bench ctx =
  section ctx ~id:"presolve"
    ~paper:"MILP presolve / big-M tightening ablation (DESIGN.md)"
    ~config:"fig1 worked example (sd:5, kkt) + africa-like WAN (8 nodes, sd:3)";
  let cells =
    let f1 = Wan.Generators.fig1 () in
    let f1_paths = paths_of ~primary:2 ~backup:0 f1 [ (1, 3); (2, 3) ] in
    let f1_env =
      Traffic.Envelope.around ~slack:0.5
        (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])
    in
    let sp5 = spec ~max_failures:1 ~levels:5 () in
    let topo, pairs = wan_small () in
    let paths = paths_of topo pairs in
    let env = Traffic.Envelope.from_zero ~slack:0.3 (base_demand pairs) in
    [
      ("fig1 / sd:5", sp5, f1, f1_paths, f1_env);
      ("fig1 / kkt", { sp5 with Raha.Bilevel.encoding = Raha.Bilevel.Kkt }, f1,
       f1_paths, f1_env);
      ("wan8 / sd:3", spec ~threshold:1e-5 (), topo, paths, env);
    ]
  in
  row "%-14s %8s %6s %5s %4s %8s %6s %5s %6s %6s@." "model" "rows" "cols" "int"
    "->" "rows" "cols" "bigM" "fixed" "passes";
  List.iter
    (fun (name, sp, topo, paths, env) ->
      let built = Raha.Bilevel.build sp topo paths env in
      let m = built.Raha.Bilevel.model in
      match Milp.Presolve.presolve m with
      | Milp.Presolve.Reduced { model = rm; stats; _ } ->
        row "%-14s %8d %6d %5d %4s %8d %6d %5d %6d %6d@." name
          (Milp.Model.num_cons m) (Milp.Model.num_vars m)
          (Milp.Model.num_int_vars m) "->" (Milp.Model.num_cons rm)
          (Milp.Model.num_vars rm) stats.Milp.Presolve.big_ms_tightened
          stats.Milp.Presolve.cols_fixed stats.Milp.Presolve.passes
      | Milp.Presolve.Infeasible _ -> row "%-14s infeasible@." name)
    cells;
  row "@.%-14s %-9s %-12s %-8s %-8s %-10s@." "cell" "presolve" "degradation"
    "time(s)" "nodes" "pivots";
  List.iter
    (fun (name, sp, topo, paths, env) ->
      List.iter
        (fun ps ->
          let opts = { (options ctx sp) with Raha.Analysis.presolve = ps } in
          let p0 = Milp.Simplex.cumulative_iterations () in
          let t0 = Unix.gettimeofday () in
          let r = Raha.Analysis.analyze ~options:opts topo paths env in
          row "%-14s %-9s %-12s %-8.2f %-8d %-10d@." name
            (if ps then "on" else "off")
            (deg_str r)
            (Unix.gettimeofday () -. t0)
            r.Raha.Analysis.nodes
            (Milp.Simplex.cumulative_iterations () - p0))
        [ true; false ])
    cells

(* -------------------------------------------------------------- revised *)

(* Revised-simplex ablation: the same cells as the presolve experiment,
   solved end-to-end with the legacy dense tableau vs the revised engine
   (sparse LU basis + dual-simplex warm starts across B&B nodes). The
   [counters:] lines carry only deterministic quantities (no wall
   clock), so CI can run the experiment twice and diff them. The
   measured rows are recorded in BENCH_revised.json. *)
let revised_bench ctx =
  section ctx ~id:"revised"
    ~paper:"revised simplex / dual warm-start ablation (DESIGN.md §9)"
    ~config:
      "fig1 worked example (sd:5, kkt) + africa-like WAN (8 nodes, sd:3); cuts disabled (pure engine ablation)";
  let cells =
    let f1 = Wan.Generators.fig1 () in
    let f1_paths = paths_of ~primary:2 ~backup:0 f1 [ (1, 3); (2, 3) ] in
    let f1_env =
      Traffic.Envelope.around ~slack:0.5
        (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])
    in
    let sp5 = spec ~max_failures:1 ~levels:5 () in
    let topo, pairs = wan_small () in
    let paths = paths_of topo pairs in
    let env = Traffic.Envelope.from_zero ~slack:0.3 (base_demand pairs) in
    let base =
      [
        ("fig1 / sd:5", sp5, f1, f1_paths, f1_env);
        ("fig1 / kkt", { sp5 with Raha.Bilevel.encoding = Raha.Bilevel.Kkt }, f1,
         f1_paths, f1_env);
      ]
    in
    if ctx.quick then base
    else base @ [ ("wan8 / sd:3", spec ~threshold:1e-5 (), topo, paths, env) ]
  in
  row "%-14s %-8s %-12s %-8s %-7s %-8s %-6s %-5s %-5s %-9s@." "cell" "engine"
    "degradation" "time(s)" "nodes" "pivots" "dual" "fact" "eta" "warm";
  List.iter
    (fun (name, sp, topo, paths, env) ->
      List.iter
        (fun dense ->
          (* fresh counters per cell: residual high-water marks and the
             cumulative cut counters must not leak across cells *)
          Milp.Lp_stats.reset_all ();
          (* cuts off in both arms so this stays a pure engine ablation
             (the cut ablation is the "cuts" experiment) and the
             BENCH_revised.json baselines remain comparable *)
          let opts =
            { (options ctx sp) with Raha.Analysis.dense_simplex = dense;
              cuts = Milp.Cuts.disabled }
          in
          let p0 = Milp.Simplex.cumulative_iterations ()
          and d0 = Milp.Simplex.cumulative_dual_pivots ()
          and f0 = Milp.Simplex.cumulative_factorizations ()
          and e0 = Milp.Simplex.cumulative_eta_updates ()
          and wa0 = Milp.Simplex.cumulative_warm_attempts ()
          and wh0 = Milp.Simplex.cumulative_warm_hits ()
          and c0 = Milp.Certify.cumulative_checks ()
          and cf0 = Milp.Certify.cumulative_failures () in
          let t0 = Unix.gettimeofday () in
          let r = Raha.Analysis.analyze ~options:opts topo paths env in
          let dt = Unix.gettimeofday () -. t0 in
          let pivots = Milp.Simplex.cumulative_iterations () - p0
          and duals = Milp.Simplex.cumulative_dual_pivots () - d0
          and facts = Milp.Simplex.cumulative_factorizations () - f0
          and etas = Milp.Simplex.cumulative_eta_updates () - e0
          and wa = Milp.Simplex.cumulative_warm_attempts () - wa0
          and wh = Milp.Simplex.cumulative_warm_hits () - wh0 in
          let engine = if dense then "dense" else "revised" in
          row "%-14s %-8s %-12s %-8.2f %-7d %-8d %-6d %-5d %-5d %-9s@." name
            engine (deg_str r) dt r.Raha.Analysis.nodes pivots duals facts etas
            (if wa = 0 then "-" else Printf.sprintf "%d/%d" wh wa);
          let cc = Milp.Certify.cumulative_checks () - c0
          and cf = Milp.Certify.cumulative_failures () - cf0 in
          row
            "counters: %s | %s | deg=%s nodes=%d pivots=%d dual=%d fact=%d        eta=%d warm=%d/%d certify=%d/%d cert=%s@."
            name engine (deg_str r) r.Raha.Analysis.nodes pivots duals facts
            etas wh wa cf cc (cert_str r))
        [ true; false ])
    cells;
  row
    "(warm column is dual-simplex hits/attempts; identical node counts with      fewer pivots show the per-node saving)@."

(* ----------------------------------------------------------------- cuts *)

(* Cutting-plane ablation: the same cells as the revised-simplex
   experiment, solved with the cut subsystem enabled vs disabled (the
   revised engine in both arms). Cuts are globally valid tightenings of
   the LP relaxation, so the two arms must report bit-identical
   degradations while branch-and-bound visits fewer nodes with cuts on.
   The [counters:] lines add the cut-pool counters — gen (candidates
   generated), app (cuts admitted to the pool), pruned (aged out or
   removed by audit), aud (incumbent-audit failures, must stay 0) — all
   deterministic, so CI runs the experiment twice and diffs them. The
   measured rows are recorded in BENCH_cuts.json. *)
let cuts_bench ctx =
  section ctx ~id:"cuts"
    ~paper:"cutting-plane ablation: Gomory/cover/clique pool (DESIGN.md §11)"
    ~config:
      "fig1 worked example (sd:5, kkt) + africa-like WAN (8 nodes, sd:3); revised engine";
  let cells =
    let f1 = Wan.Generators.fig1 () in
    let f1_paths = paths_of ~primary:2 ~backup:0 f1 [ (1, 3); (2, 3) ] in
    let f1_env =
      Traffic.Envelope.around ~slack:0.5
        (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])
    in
    let sp5 = spec ~max_failures:1 ~levels:5 () in
    let topo, pairs = wan_small () in
    let paths = paths_of topo pairs in
    let env = Traffic.Envelope.from_zero ~slack:0.3 (base_demand pairs) in
    let base =
      [
        ("fig1 / sd:5", sp5, f1, f1_paths, f1_env);
        ("fig1 / kkt", { sp5 with Raha.Bilevel.encoding = Raha.Bilevel.Kkt }, f1,
         f1_paths, f1_env);
      ]
    in
    if ctx.quick then base
    else base @ [ ("wan8 / sd:3", spec ~threshold:1e-5 (), topo, paths, env) ]
  in
  row "%-14s %-5s %-12s %-8s %-7s %-8s %-6s %-5s %-7s %-5s %-9s@." "cell"
    "cuts" "degradation" "time(s)" "nodes" "pivots" "gen" "app" "pruned" "aud"
    "warm";
  List.iter
    (fun (name, sp, topo, paths, env) ->
      List.iter
        (fun cuts_on ->
          (* fresh counters per cell (Lp_stats.reset_all): the raw
             cumulative reads below are then per-cell values *)
          Milp.Lp_stats.reset_all ();
          let copts =
            if cuts_on then cut_options { ctx with cuts = true }
            else Milp.Cuts.disabled
          in
          let opts = { (options ctx sp) with Raha.Analysis.cuts = copts } in
          let t0 = Unix.gettimeofday () in
          let r = Raha.Analysis.analyze ~options:opts topo paths env in
          let dt = Unix.gettimeofday () -. t0 in
          let pivots = Milp.Simplex.cumulative_iterations ()
          and duals = Milp.Simplex.cumulative_dual_pivots ()
          and wa = Milp.Simplex.cumulative_warm_attempts ()
          and wh = Milp.Simplex.cumulative_warm_hits ()
          and gen = Milp.Cuts.cumulative_generated ()
          and app = Milp.Cuts.cumulative_applied ()
          and pruned = Milp.Cuts.cumulative_pruned ()
          and aud = Milp.Cuts.cumulative_audit_failures ()
          and cc = Milp.Certify.cumulative_checks ()
          and cf = Milp.Certify.cumulative_failures () in
          let arm = if cuts_on then "on" else "off" in
          row "%-14s %-5s %-12s %-8.2f %-7d %-8d %-6d %-5d %-7d %-5d %-9s@."
            name arm (deg_str r) dt r.Raha.Analysis.nodes pivots gen app pruned
            aud
            (if wa = 0 then "-" else Printf.sprintf "%d/%d" wh wa);
          row
            "counters: %s | cuts=%s | deg=%s nodes=%d pivots=%d dual=%d warm=%d/%d gen=%d app=%d pruned=%d aud=%d certify=%d/%d cert=%s@."
            name arm (deg_str r) r.Raha.Analysis.nodes pivots duals wh wa gen
            app pruned aud cf cc (cert_str r))
        [ true; false ])
    cells;
  row
    "(bit-identical degradations with fewer nodes when cuts are on; aud      counts incumbent-audit failures and must be 0)@."

(* ---------------------------------------------------------- monte carlo *)

let montecarlo ctx =
  section ctx ~id:"montecarlo"
    ~paper:"§1: why the production Monte Carlo simulator missed the incident"
    ~config:"africa-like WAN (8 nodes), peak demand, 20k sampled scenarios vs Raha";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let peak = Traffic.Demand.scale 1.3 (base_demand pairs) in
  let samples = if ctx.quick then 2000 else 20_000 in
  let avg_cap = Wan.Topology.avg_lag_capacity topo in
  let degs, scens, oracle =
    Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters ~domains:ctx.domains
      (fun pool ->
        let degs, scens =
          Te.Monte_carlo.sample_degradations ~pool ~seed:1 ~samples topo paths peak
        in
        (* brute-force enumeration to k=2 on the same pool: the oracle
           the sampled tail is compared against *)
        let oracle = Raha.Baselines.enumerate_failures ~pool ~k:2 topo paths peak in
        if ctx.domains > 1 then
          row "%a@." Parallel.Pool.pp_stats (Parallel.Pool.stats pool);
        (degs, scens, oracle))
  in
  let s = Te.Monte_carlo.summarize degs scens in
  row "monte carlo (%d samples): mean %.3f p99 %.3f max %.3f (normalized)@."
    s.Te.Monte_carlo.samples
    (s.Te.Monte_carlo.mean /. avg_cap)
    (s.Te.Monte_carlo.p99 /. avg_cap)
    (s.Te.Monte_carlo.max_seen /. avg_cap);
  row "enumeration to k=2 (%d scenarios, %.1fs): worst %.3f (normalized)@."
    oracle.Raha.Baselines.scenarios_evaluated oracle.Raha.Baselines.elapsed
    (oracle.Raha.Baselines.worst /. avg_cap);
  List.iter
    (fun thr ->
      let sp = spec ~threshold:thr () in
      let r = analyze ctx sp topo paths (Traffic.Envelope.fixed peak) in
      row "raha worst case (T=%g): %s, scenario probability %.2g@." thr (deg_str r)
        r.Raha.Analysis.scenario_prob)
    [ 1e-4; 1e-6 ];
  row
    "(the optimizer surfaces probable scenarios far beyond the sampled p99 — the      incident §2 describes)@."

(* -------------------------------------------------------------------- batch *)

(* Batched scenario engine ablation (DESIGN.md §12): the same Monte
   Carlo and k-enumeration sweeps solved through one shared prepared
   structure + rhs overlays + warm dual solves from the healthy basis
   (batch=on) vs a full formulation/model/factorization rebuild per
   scenario (batch=off). Both arms hand the simplex bit-identical
   inputs, so every per-scenario degradation must match to the last
   bit — the "identical=true" diff line asserts it. The [counters:]
   lines carry no wall clock and are deterministic, so CI runs the
   experiment twice and diffs them; it also gates on bwarm (batched
   warm hits) staying nonzero and cert=ok (zero Batch.check audit
   failures) in the on arm. Measured scenarios/sec rows are recorded
   in BENCH_batch.json. *)
let batch_bench ctx =
  section ctx ~id:"batch"
    ~paper:"batched scenario engine: one symbolic factorization, warm overlay solves (DESIGN.md §12)"
    ~config:"africa-like WAN (8 nodes), Monte Carlo + k-enumeration sweeps, batch on/off";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let peak = Traffic.Demand.scale 1.3 (base_demand pairs) in
  let mc_samples = if ctx.quick then 512 else 2048 in
  let bits = Array.map Int64.bits_of_float in
  row "%-10s %-4s %-6s %-8s %-8s %-11s %-9s %-6s@." "cell" "arm" "scen"
    "time(s)" "scen/s" "warm" "overlays" "prep";
  let run_cell name scen_count solve =
    let arm arm_name batch =
      (* fresh counters per arm: the cumulative reads below are then
         per-arm values *)
      Milp.Lp_stats.reset_all ();
      let t0 = Unix.gettimeofday () in
      let degs = solve ~batch in
      let dt = Unix.gettimeofday () -. t0 in
      let wa = Milp.Simplex.cumulative_warm_attempts ()
      and wh = Milp.Simplex.cumulative_warm_hits ()
      and bwh = Milp.Batch.cumulative_warm_hits ()
      and ov = Milp.Batch.cumulative_overlays ()
      and np = Milp.Batch.cumulative_prepares ()
      and facts = Milp.Simplex.cumulative_factorizations ()
      and cc = Milp.Certify.cumulative_checks ()
      and cf = Milp.Certify.cumulative_failures () in
      row "%-10s %-4s %-6d %-8.2f %-8.0f %-11s %-9d %-6d@." name arm_name
        scen_count dt
        (float_of_int scen_count /. Float.max 1e-9 dt)
        (if wa = 0 then "-" else Printf.sprintf "%d/%d" wh wa)
        ov np;
      row
        "counters: %s | batch=%s | scen=%d warm=%d/%d bwarm=%d overlays=%d prepares=%d fact=%d certify=%d/%d cert=%s@."
        name arm_name scen_count wh wa bwh ov np facts cf cc
        (if cf = 0 then "ok" else "FAIL");
      (degs, dt)
    in
    let degs_off, dt_off = arm "off" false in
    let degs_on, dt_on = arm "on" true in
    let identical = bits degs_on = bits degs_off in
    row "%s: speedup %.1fx (off %.2fs / on %.2fs), degradations %s@." name
      (dt_off /. Float.max 1e-9 dt_on)
      dt_off dt_on
      (if identical then "bit-identical" else "MISMATCH");
    row "counters: %s | diff | identical=%b@." name identical
  in
  run_cell "mc" mc_samples (fun ~batch ->
      fst
        (Te.Monte_carlo.sample_degradations ~domains:ctx.domains ~batch ~seed:1
           ~samples:mc_samples topo paths peak));
  List.iter
    (fun k ->
      let scen_count = List.length (Failure.Enumerate.up_to_k topo ~k) in
      run_cell
        (Printf.sprintf "enum k=%d" k)
        scen_count
        (fun ~batch ->
          let r =
            Raha.Baselines.enumerate_failures ~domains:ctx.domains ~batch ~k topo
              paths peak
          in
          [| r.Raha.Baselines.worst |]))
    (if ctx.quick then [ 1 ] else [ 1; 2 ]);
  row
    "(off rebuilds formulation+factorization per scenario; on pays them once.      bwarm counts warm dual overlay solves, certify the Batch.check audits —      failures must be 0)@."

(* ----------------------------------------------------------- bb-parallel *)

(* Parallel branch-and-bound (DESIGN.md §14): bilevel cells solved twice
   — domains=1 (no pool, rounds run inline) and domains=ctx (pool) —
   with a tiny round width/grain so the parallel scheduler engages even
   on these small trees. Everything on the [counters:] lines is
   schedule-independent (degradation bits, bound bits, node and round
   counts, certificates, cut audits), so CI runs the whole experiment
   at --domains 1 and --domains 4 and diffs the lines; the per-cell
   [identical=] flag additionally compares the two arms of a single run
   bit for bit. Wall-clock and the pool's busy/wall overlap are printed
   as plain rows (not diffed) and recorded in BENCH_bb_parallel.json. *)
let bb_parallel ctx =
  section ctx ~id:"bb-parallel"
    ~paper:"parallel branch-and-bound: subtree rounds, shared incumbent (DESIGN.md §14)"
    ~config:"fig1 + africa-like bilevel cells, bb_width=2 bb_grain=4, domains 1 vs N";
  let fig1_topo = Wan.Generators.fig1 () in
  let fig1_paths = paths_of ~primary:2 ~backup:0 fig1_topo [ (1, 3); (2, 3) ] in
  let typical = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  let fig1_env = Traffic.Envelope.around ~slack:0.5 typical in
  let topo2, pairs2 = wan_small () in
  let paths2 = paths_of topo2 pairs2 in
  let env2 = Traffic.Envelope.from_zero ~slack:0.2 (base_demand pairs2) in
  let cells =
    [
      ("fig1 k=1", spec ~max_failures:1 ~levels:5 (), fig1_topo, fig1_paths, fig1_env);
      ("fig1 k=2", spec ~max_failures:2 ~levels:5 (), fig1_topo, fig1_paths, fig1_env);
      ("africa", spec ~threshold:1e-4 ~max_failures:2 (), topo2, paths2, env2);
    ]
  in
  let total_rounds = ref 0 in
  row "%-10s %-6s %-12s %-8s %-8s %-8s@." "cell" "arm" "deg" "nodes" "rounds"
    "time(s)";
  List.iter
    (fun (name, sp, topo, paths, env) ->
      let opt domains =
        { (options ctx sp) with Raha.Analysis.domains; bb_width = 2; bb_grain = 4 }
      in
      let arm arm_name pool domains =
        let r0 = Milp.Branch_bound.cumulative_rounds () in
        let a0 = Milp.Cuts.cumulative_audit_failures () in
        let t0 = Unix.gettimeofday () in
        let r = Raha.Analysis.analyze ?pool ~options:(opt domains) topo paths env in
        let dt = Unix.gettimeofday () -. t0 in
        let rounds = Milp.Branch_bound.cumulative_rounds () - r0 in
        let aud = Milp.Cuts.cumulative_audit_failures () - a0 in
        row "%-10s %-6s %-12s %-8d %-8d %-8.2f@." name arm_name (deg_str r)
          r.Raha.Analysis.nodes rounds dt;
        (r, rounds, aud)
      in
      let seq, seq_rounds, seq_aud = arm "dom=1" None 1 in
      let (par, par_rounds, par_aud), pool_line =
        if ctx.domains <= 1 then (arm "dom=1b" None 1, None)
        else
          Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters
            ~domains:ctx.domains (fun pool ->
              let r = arm (Printf.sprintf "dom=%d" ctx.domains) (Some pool) ctx.domains in
              (r, Some (Format.asprintf "%a" Parallel.Pool.pp_stats (Parallel.Pool.stats pool))))
      in
      (match pool_line with Some l -> row "%s@." l | None -> ());
      total_rounds := !total_rounds + par_rounds;
      let identical =
        Int64.bits_of_float seq.Raha.Analysis.degradation
        = Int64.bits_of_float par.Raha.Analysis.degradation
        && Int64.bits_of_float seq.Raha.Analysis.bound
           = Int64.bits_of_float par.Raha.Analysis.bound
        && seq.Raha.Analysis.nodes = par.Raha.Analysis.nodes
        && seq_rounds = par_rounds
        && Failure.Scenario.equal seq.Raha.Analysis.scenario par.Raha.Analysis.scenario
      in
      row
        "counters: bb-parallel | cell=%s | deg=%s bound=%016Lx nodes=%d rounds=%d cert=%s aud=%d identical=%b@."
        name (deg_str par)
        (Int64.bits_of_float par.Raha.Analysis.bound)
        par.Raha.Analysis.nodes par_rounds (cert_str par) (seq_aud + par_aud)
        identical)
    cells;
  row "counters: bb-parallel | total | rounds=%d engaged=%b@." !total_rounds
    (!total_rounds > 0);
  row
    "(both arms run the same round scheduler — it engages on frontier width, the      pool only moves where subtrees solve — so every line above must be identical      at --domains 1 and --domains 4, and aud must be 0)@."

(* ----------------------------------------------------------- branching *)

(* Branching-rule and primal-heuristics ablation: the cuts-bench cells
   solved with the legacy search (most-fractional branching, plunge-only
   incumbents — the exact pre-pseudocost code path) versus the default
   reliability branching with the pump/RINS heuristics enabled. Both
   arms solve the same bilevel MILPs to optimality, so the degradations
   must agree; the reliability arm must visit fewer nodes (recorded in
   BENCH_branching.json against BENCH_cuts.json's 53/15-node baselines).
   The [counters:] lines add sb (strong-branching probes), pcu
   (pseudocost observations), hs/hr (heuristic incumbents accepted /
   rejected by the unified-tolerance re-check — hr must stay 0 on this
   corpus, and every hs passed the same tolerance Certify enforces) and
   the usual aud/certify gates. Everything printed is deterministic (no
   wall clock), so CI double-runs the experiment and diffs, and an
   in-run identity check re-solves the reliability arm at bb_width=2
   under domains 1 vs N — pseudocost tables are frozen during parallel
   rounds and merged in frontier order, so the [identical=] flag must
   hold at any pool width. *)
let branching_bench ctx =
  section ctx ~id:"branching"
    ~paper:"reliability branching + primal heuristics vs most-fractional (DESIGN.md §15)"
    ~config:
      "fig1 worked example (sd:5, kkt) + africa-like WAN (8 nodes, sd:3); revised engine";
  let cells =
    let f1 = Wan.Generators.fig1 () in
    let f1_paths = paths_of ~primary:2 ~backup:0 f1 [ (1, 3); (2, 3) ] in
    let f1_env =
      Traffic.Envelope.around ~slack:0.5
        (Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ])
    in
    let sp5 = spec ~max_failures:1 ~levels:5 () in
    let topo, pairs = wan_small () in
    let paths = paths_of topo pairs in
    let env = Traffic.Envelope.from_zero ~slack:0.3 (base_demand pairs) in
    let base =
      [
        ("fig1 / sd:5", sp5, f1, f1_paths, f1_env);
        ("fig1 / kkt", { sp5 with Raha.Bilevel.encoding = Raha.Bilevel.Kkt }, f1,
         f1_paths, f1_env);
      ]
    in
    if ctx.quick then base
    else base @ [ ("wan8 / sd:3", spec ~threshold:1e-5 (), topo, paths, env) ]
  in
  let total_sb = ref 0 and total_pcu = ref 0 in
  let total_hs = ref 0 and total_hr = ref 0 in
  row "%-14s %-5s %-12s %-8s %-7s %-8s %-5s %-6s %-5s %-5s %-5s@." "cell" "arm"
    "degradation" "time(s)" "nodes" "pivots" "sb" "pcu" "hs" "hr" "aud";
  List.iter
    (fun (name, sp, topo, paths, env) ->
      let run arm_name opts =
        (* fresh counters per arm (Lp_stats.reset_all): the raw
           cumulative reads below are then per-arm values *)
        Milp.Lp_stats.reset_all ();
        let t0 = Unix.gettimeofday () in
        let r = Raha.Analysis.analyze ~options:opts topo paths env in
        let dt = Unix.gettimeofday () -. t0 in
        let pivots = Milp.Simplex.cumulative_iterations ()
        and duals = Milp.Simplex.cumulative_dual_pivots ()
        and sb = Milp.Branch_bound.cumulative_sb_probes ()
        and pcu = Milp.Branch_bound.cumulative_pseudocost_updates ()
        and hs = Milp.Branch_bound.cumulative_heuristic_solutions ()
        and hr = Milp.Branch_bound.cumulative_heuristic_rejections ()
        and aud = Milp.Cuts.cumulative_audit_failures ()
        and cc = Milp.Certify.cumulative_checks ()
        and cf = Milp.Certify.cumulative_failures () in
        total_sb := !total_sb + sb;
        total_pcu := !total_pcu + pcu;
        total_hs := !total_hs + hs;
        total_hr := !total_hr + hr;
        row "%-14s %-5s %-12s %-8.2f %-7d %-8d %-5d %-6d %-5d %-5d %-5d@." name
          arm_name (deg_str r) dt r.Raha.Analysis.nodes pivots sb pcu hs hr aud;
        row
          "counters: %s | arm=%s | deg=%s nodes=%d pivots=%d dual=%d sb=%d pcu=%d hs=%d hr=%d aud=%d certify=%d/%d cert=%s@."
          name arm_name (deg_str r) r.Raha.Analysis.nodes pivots duals sb pcu hs
          hr aud cf cc (cert_str r);
        r
      in
      (* frac arm = the exact pre-pseudocost search: most-fractional
         branching, plunge-only incumbents, no pump/RINS *)
      let frac_opts =
        { (options ctx sp) with
          Raha.Analysis.branching = Milp.Branch_bound.Fractional;
          heuristics = false }
      in
      let rel_opts =
        { (options ctx sp) with
          Raha.Analysis.branching = Milp.Branch_bound.Reliability;
          heuristics = true }
      in
      let _frac = run "frac" frac_opts in
      let _rel = run "rel" rel_opts in
      (* identity check: reliability branching under parallel rounds
         (bb_width=2 so rounds engage on these small trees) must be
         bit-identical at domains 1 vs N — frozen pseudocost tables,
         frontier-order merge *)
      let ident domains pool =
        Milp.Lp_stats.reset_all ();
        let opts =
          { rel_opts with Raha.Analysis.domains; bb_width = 2; bb_grain = 4 }
        in
        Raha.Analysis.analyze ?pool ~options:opts topo paths env
      in
      let seq = ident 1 None in
      let par =
        if ctx.domains <= 1 then ident 1 None
        else
          Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters
            ~domains:ctx.domains (fun pool -> ident ctx.domains (Some pool))
      in
      let identical =
        Int64.bits_of_float seq.Raha.Analysis.degradation
        = Int64.bits_of_float par.Raha.Analysis.degradation
        && Int64.bits_of_float seq.Raha.Analysis.bound
           = Int64.bits_of_float par.Raha.Analysis.bound
        && seq.Raha.Analysis.nodes = par.Raha.Analysis.nodes
        && Failure.Scenario.equal seq.Raha.Analysis.scenario
             par.Raha.Analysis.scenario
      in
      row
        "counters: %s | ident | deg=%s bound=%016Lx nodes=%d cert=%s identical=%b@."
        name (deg_str par)
        (Int64.bits_of_float par.Raha.Analysis.bound)
        par.Raha.Analysis.nodes (cert_str par) identical)
    cells;
  row "counters: branching | total | sb=%d pcu=%d hs=%d hr=%d engaged=%b@."
    !total_sb !total_pcu !total_hs !total_hr
    (!total_sb > 0 && !total_pcu > 0);
  row
    "(same degradations both arms; fewer nodes under rel; hr must be 0 — every      heuristic incumbent is re-checked at the certifier's tolerance before      acceptance; identical= must hold at any --domains)@."

(* ---------------------------------------------------------------- service *)

(* Always-on degradation service (DESIGN.md §13): a recorded telemetry
   stream with interleaved worst-case / "now" / status queries, replayed
   through the Service.Core ingestion + invalidation + incremental
   re-solve loop (service arm) versus an arm that reconstructs state and
   solves cold for every query (cold arm). The service arm is run at
   domains=1 and domains=4 and the two stripped answer sequences must be
   bit-identical; the per-worst-query solve-relevant fields must also
   agree between the service and cold arms — an answer is only ever
   reused when a full re-solve would have said the same thing. The
   [counters:] lines carry no wall clock (CI double-runs and diffs
   them); measured queries/sec rows go to BENCH_service.json. *)
let service_bench ctx =
  section ctx ~id:"service"
    ~paper:"always-on service: streaming ingestion, invalidation, incremental re-solve (DESIGN.md §13)"
    ~config:"africa-like WAN (8 nodes), telemetry replay with interleaved queries, service vs cold-per-query";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let envelope = Traffic.Envelope.around ~slack:0.3 (base_demand pairs) in
  let sp = spec ~max_failures:1 () in
  let cfg domains =
    {
      Service.Core.paths;
      envelope;
      options = { (options ctx sp) with Raha.Analysis.domains };
      drift_tol = 0.30;
      alert_tolerance = 0.1;
    }
  in
  (* recorded stream: exponential outage traces on the first 6 lags,
     merged by time, with queries woven in — a "now" check after every
     event, a hypothetical overlay every 2nd, a worst-case refresh every
     4th *)
  let module Ev = Service.Event in
  let events =
    let per_link =
      List.concat
        (List.init (min 6 (Wan.Topology.num_lags topo)) (fun e ->
             List.concat_map
               (fun (o : Failure.Renewal.event) ->
                 [
                   (o.Failure.Renewal.down_at,
                    Ev.Link_down { lag = e; link = 0; at = o.Failure.Renewal.down_at });
                   (o.Failure.Renewal.up_at,
                    Ev.Link_up { lag = e; link = 0; at = o.Failure.Renewal.up_at });
                 ])
               (Failure.Trace.exponential ~seed:(31 + e) ~mean_uptime:60.
                  ~mean_downtime:3. ~horizon:(if ctx.quick then 90. else 150.) ())))
    in
    List.map snd (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) per_link)
  in
  let worst = Ev.Query (Ev.Worst { budget = None; max_nodes = None }) in
  let script =
    let n = ref 0 in
    List.concat_map
      (fun e ->
        incr n;
        [ Ev.Event e; Ev.Query (Ev.Now { down = None }) ]
        @ (if !n mod 2 = 0 then
             [ Ev.Query (Ev.Now { down = Some [ (!n mod 6, 0) ] }) ]
           else [])
        @ if !n mod 2 = 1 then [ worst ] else [])
      events
    @ [ worst; Ev.Query Ev.Status ]
  in
  let n_events = List.length events in
  let n_queries = List.length script - n_events in
  let n_worst =
    List.length (List.filter (function Ev.Query (Ev.Worst _) -> true | _ -> false) script)
  in
  let render j = Service.Json.to_string (Service.Core.strip_volatile j) in
  let is_query = function Ev.Query _ -> true | _ -> false in
  let cert_ok rendered =
    match Service.Json.of_string rendered with
    | Error _ -> false
    | Ok j -> (
      match Service.Json.to_str (Service.Json.member "cert" j) with
      | Some c -> c = "ok"
      | None -> true (* status / event acks carry no cert *))
  in
  (* solve-relevant projection for the service-vs-cold agreement check *)
  let stable rendered =
    match Service.Json.of_string rendered with
    | Error m -> "unparseable: " ^ m
    | Ok j ->
      Service.Json.to_string
        (Service.Json.Obj
           (List.map
              (fun k -> (k, Service.Json.member k j))
              [ "status"; "degradation"; "normalized"; "bound"; "scenario"; "num_failed_links" ]))
  in
  let service_arm domains =
    let core = Service.Core.create (cfg domains) topo in
    let t0 = Unix.gettimeofday () in
    let out = List.map (fun r -> (r, render (Service.Core.handle core r))) script in
    let dt = Unix.gettimeofday () -. t0 in
    (List.filter_map (fun (r, o) -> if is_query r then Some o else None) out,
     dt, Service.Core.tally core)
  in
  let cold_arm () =
    (* fresh core per query: replay the event prefix, then solve cold *)
    let t0 = Unix.gettimeofday () in
    let prefix = ref [] in
    let out =
      List.filter_map
        (fun r ->
          match r with
          | Ev.Event _ ->
            prefix := r :: !prefix;
            None
          | _ ->
            let core = Service.Core.create (cfg 1) topo in
            List.iter
              (fun e -> ignore (Service.Core.handle core e))
              (List.rev !prefix);
            Some (render (Service.Core.handle core r)))
        script
    in
    (out, Unix.gettimeofday () -. t0)
  in
  let out1, dt1, (n_cached, n_warm, n_cold) = service_arm 1 in
  let out4, _, _ = service_arm 4 in
  let outc, dtc = cold_arm () in
  let identical = out1 = out4 in
  let worsts outs =
    List.filter_map
      (fun (r, o) -> match r with Ev.Query (Ev.Worst _) -> Some (stable o) | _ -> None)
      (List.combine (List.filter is_query script) outs)
  in
  let agree = worsts out1 = worsts outc in
  let all_cert outs = List.for_all cert_ok outs in
  let cert = all_cert out1 && all_cert outc in
  let qps dt = float_of_int n_queries /. Float.max 1e-9 dt in
  row "%-10s %-8s %-9s %-8s %-22s@." "arm" "queries" "time(s)" "q/s" "worst served c/w/k";
  row "%-10s %-8d %-9.2f %-8.0f %d/%d/%d@." "service" n_queries dt1 (qps dt1)
    n_cached n_warm n_cold;
  row "%-10s %-8d %-9.2f %-8.0f 0/0/%d@." "cold" n_queries dtc (qps dtc) n_worst;
  row
    "service answers %.1fx more queries/sec; warm-hit rate %d/%d worst queries (%d cached + %d warm), %d cold@."
    (dtc /. Float.max 1e-9 dt1)
    (n_cached + n_warm) n_worst n_cached n_warm n_cold;
  row
    "counters: service | events=%d queries=%d worst=%d served c/w/k=%d/%d/%d cert=%s identical(domains 1v4)=%b agree(service=cold)=%b@."
    n_events n_queries n_worst n_cached n_warm n_cold
    (if cert then "ok" else "FAIL")
    identical agree;
  row
    "(the cold arm reconstructs state and solves from scratch per query;      the service invalidation policy re-solves only on estimate drift,      support hits or structural change — warm re-solves reuse the      persisted cut pool and the screening engine's basis overlays)@."

(* --------------------------------------------------------------- alerting *)

(* Push alerting pipeline (DESIGN.md §16): subscribers with distinct
   tolerance overrides ride the event loop; each accepted structural
   event triggers the two-stage Raha.Alert evaluation — a
   quarter-budget fixed-envelope fast screen immediately, the full
   worst-case solve lazily and at most once, shared with the query
   cache. The stream alternates capacity-degrade waves (heavy demand
   envelope + a lag shaved to 1 unit) with relief waves (envelope
   squeezed to ~0), so every sensitive subscriber crosses into alert
   and back out repeatedly. Push lines drain through the same bounded
   queues the socket server uses — the [counters:] line carries only
   deterministic quantities and must show dropped=0. *)
let alerting_bench ctx =
  section ctx ~id:"alerting"
    ~paper:"push alerting: two-stage crossing notifications on the live event stream (DESIGN.md §16)"
    ~config:"africa-like WAN (8 nodes), degrade/relief waves, 3 subscribers (tol 0 / 0.05 / default 0.1)";
  let topo, pairs = wan_small () in
  let paths = paths_of topo pairs in
  let envelope = Traffic.Envelope.around ~slack:0.3 (base_demand pairs) in
  let sp = spec ~max_failures:1 () in
  let cfg =
    { Service.Core.paths; envelope; options = options ctx sp;
      drift_tol = 0.30; alert_tolerance = 0.1 }
  in
  let core = Service.Core.create cfg topo in
  let al = Service.Core.alerting core in
  (* all three tolerances are crossable, so once every subscriber is
     alerting and the fast stage still exceeds, the deep solve is
     skipped entirely — the bench shows both all-fast and deep-needed
     evaluations *)
  Service.Alerting.subscribe al ~id:1 ~tolerance:(Some 0.);
  Service.Alerting.subscribe al ~id:2 ~tolerance:(Some 0.05);
  Service.Alerting.subscribe al ~id:3 ~tolerance:None;
  let pushes = ref 0 and bad_push = ref 0 in
  let drain () =
    List.iter
      (fun id ->
        let rec go () =
          match Service.Alerting.next_chunk al ~id with
          | None -> ()
          | Some (line, off) ->
            Service.Alerting.advance al ~id (String.length line - off);
            incr pushes;
            (match Service.Json.of_string (String.trim line) with
            | Ok j
              when Service.Json.to_str (Service.Json.member "push" j) <> None ->
              ()
            | _ -> incr bad_push);
            go ()
        in
        go ())
      (Service.Alerting.pending_ids al)
  in
  let module Ev = Service.Event in
  let nlags = Wan.Topology.num_lags topo in
  let waves = if ctx.quick then 2 else 6 in
  let events = ref [] in
  for w = 1 to waves do
    let t0 = 10. *. float_of_int w in
    (* degrade: demand back to the heavy envelope, then shave a lag *)
    List.iteri
      (fun i (src, dst) ->
        events :=
          Ev.Demand
            { src; dst; lo = 42.; hi = 300.; at = t0 +. (0.1 *. float_of_int i) }
          :: !events)
      pairs;
    events :=
      Ev.Capacity { lag = (w - 1) mod nlags; link = 0; capacity = 1.; at = t0 +. 1. }
      :: !events;
    (* relief: squeeze the envelope to (near) zero — nothing left to lose *)
    List.iteri
      (fun i (src, dst) ->
        events :=
          Ev.Demand
            { src; dst; lo = 0.01; hi = 0.02;
              at = t0 +. 2. +. (0.1 *. float_of_int i) }
          :: !events)
      pairs
  done;
  let events = List.rev !events in
  let fast_t = ref 0. and fast_n = ref 0 in
  let deep_t = ref 0. and deep_n = ref 0 in
  List.iter
    (fun e ->
      let resp = Service.Core.handle core (Ev.Event e) in
      (match Service.Json.to_bool (Service.Json.member "ok" resp) with
      | Some true -> ()
      | _ -> row "rejected event: %s@." (Service.Json.to_string resp));
      let before = (Service.Alerting.stats al).Service.Alerting.deep_runs in
      let t0 = Unix.gettimeofday () in
      Service.Core.evaluate_alert ~flush:drain core;
      let dt = Unix.gettimeofday () -. t0 in
      drain ();
      let after = (Service.Alerting.stats al).Service.Alerting.deep_runs in
      if after > before then begin
        deep_t := !deep_t +. dt;
        incr deep_n
      end
      else begin
        fast_t := !fast_t +. dt;
        incr fast_n
      end)
    events;
  (* final worst query: the alert pipeline shares the query cache, so
     this should carry a passing certificate without a fresh cold solve *)
  let final =
    Service.Core.handle core (Ev.Query (Ev.Worst { budget = None; max_nodes = None }))
  in
  let cert =
    match Service.Json.to_str (Service.Json.member "cert" final) with
    | Some "ok" -> true
    | _ -> false
  in
  let s = Service.Alerting.stats al in
  let ms t n = 1000. *. t /. float_of_int (max 1 n) in
  row "%-22s %-8s %-10s@." "stage mix" "evals" "ms/eval";
  row "%-22s %-8d %-10.1f@." "fast only" !fast_n (ms !fast_t !fast_n);
  row "%-22s %-8d %-10.1f@." "fast+deep" !deep_n (ms !deep_t !deep_n);
  row
    "%d structural events -> %d evaluations, %d alerts / %d clears across 3 subscribers (%d deep solves), %d push lines, %d dropped@."
    (List.length events) s.Service.Alerting.evaluations s.Service.Alerting.alerts
    s.Service.Alerting.clears s.Service.Alerting.deep_runs !pushes
    s.Service.Alerting.dropped;
  row
    "counters: alerting | events=%d evaluations=%d alerts=%d clears=%d deep=%d dropped=%d pushes=%d badpush=%d cert=%s@."
    (List.length events) s.Service.Alerting.evaluations s.Service.Alerting.alerts
    s.Service.Alerting.clears s.Service.Alerting.deep_runs
    s.Service.Alerting.dropped !pushes !bad_push
    (if cert then "ok" else "FAIL");
  row
    "(the fast stage screens the envelope's high corner on a quarter of the      solve budget; the deep stage is the normal worst-case machinery and      shares its cache, so alert evaluations warm later queries and a quiet      network costs no MILP solves at all; dropped=0 must hold — nothing      here outruns the drain)@."

(* -------------------------------------------------------------------- ffc *)

let ffc ctx =
  section ctx ~id:"ffc"
    ~paper:"§2.2: k-failure-resilient TE (FFC) is safe by design — until the k+1-th failure"
    ~config:"africa-like WAN (8 nodes), 1+1 paths, FFC grant for k=1";
  let topo, pairs = wan_small () in
  let paths = paths_of ~primary:1 ~backup:1 topo pairs in
  let demand = base_demand pairs in
  match Te.Ffc.allocate ~k:1 topo paths demand with
  | None -> row "FFC allocation failed@."
  | Some r ->
    row "FFC grants %.0f of %.0f demanded (%d scenarios enforced)@."
      r.Te.Ffc.total_granted r.Te.Ffc.total_demand r.Te.Ffc.scenarios_considered;
    let grant = Te.Ffc.grant_to_demand r in
    (match Te.Ffc.verify ~k:1 topo paths r with
    | None -> row "verified: the grant survives every single-LAG failure@."
    | Some s -> row "verification FAILED on %a@." Failure.Scenario.pp s);
    row "%-26s %-14s@." "raha analysis of the grant" "degradation";
    List.iter
      (fun (name, sp) ->
        let rep = analyze ctx sp topo paths (Traffic.Envelope.fixed grant) in
        row "%-26s %-14s@." name (deg_str rep))
      [
        ("k <= 1 link (partial LAG)", spec ~max_failures:1 ());
        ("k <= 2 links", spec ~max_failures:2 ());
        ("T >= 1e-5", spec ~threshold:1e-5 ());
        ("T >= 1e-7", spec ~threshold:1e-7 ());
      ];
    row
      "(FFC's LAG-granular guarantee holds, yet Raha exposes two blind spots:        partial-LAG link failures and probable multi-failure scenarios — the §2.2        incident mechanism)@."

(* --------------------------------------------------------------- registry *)

let all : (string * string * (ctx -> unit)) list =
  [
    ("fig1", "worked example (§2.1): fixed 7 / naive 1 / raha 9", fig1);
    ("fig2", "max simultaneous failures vs threshold", fig2);
    ("fig3", "raha vs Max/Average baselines across slack", fig3);
    ("fig5", "degradation vs threshold x k (avg/max/variable demand)", fig5);
    ("fig6", "fig5 under connected-enforced constraints", fig6);
    ("fig7", "degradation vs demand slack", fig7);
    ("fig8", "Uninett2010 with and without clustering", fig8);
    ("fig9", "cluster count vs quality and runtime", fig9);
    ("fig10", "runtime vs paths / threshold / max failures", fig10);
    ("fig11", "LAG augmentation, failable new capacity", fig11);
    ("fig12", "degradation vs #primary (plain+CE) and #backup", fig12);
    ("fig13", "weighted path selection variant", fig13);
    ("fig14", "runtime vs #backup paths", fig14);
    ("fig15", "fig12 with fixed max demand", fig15);
    ("fig16", "timeout sensitivity", fig16);
    ("fig17", "LAG augmentation, non-failable new capacity", fig17);
    ("fig18", "new-LAG (edge) augmentation", fig18);
    ("tab3", "B4 degradation table", tab3);
    ("tab4", "Cogentco degradation table (8 clusters)", tab4);
    ("mlu", "worst-case MLU degradation vs slack (§8.5)", mlu);
    ("ablation", "strong-duality vs KKT encoding (design choice)", ablation);
    ("presolve", "MILP presolve / big-M tightening on vs off", presolve_bench);
    ("revised", "revised simplex + dual warm starts vs dense tableau", revised_bench);
    ("cuts", "cutting planes (Gomory/cover/clique pool) on vs off", cuts_bench);
    ("montecarlo", "Monte Carlo sampling vs Raha's worst case (§1)", montecarlo);
    ("batch", "batched scenario engine (overlay + warm) on vs off", batch_bench);
    ("bb-parallel", "parallel branch-and-bound rounds, domains 1 vs N", bb_parallel);
    ("branching", "reliability branching + heuristics vs most-fractional", branching_bench);
    ("service", "always-on service vs cold-solve-per-query replay", service_bench);
    ("alerting", "push alerting: crossings, deep-solve sharing, backpressure", alerting_bench);
    ("ffc", "FFC-protected network still degrades beyond k (§2.2)", ffc);
  ]
