(* Bechamel micro-benchmarks of the solver substrate: simplex, branch &
   bound, the bi-level encoding, and a full fixed-demand analysis. *)

open Bechamel
open Toolkit

let lp_instance () =
  let m = Milp.Model.create ~name:"bench_lp" () in
  let rng = Random.State.make [| 99 |] in
  let xs = Array.init 40 (fun i -> Milp.Model.continuous ~ub:50. m (Printf.sprintf "x%d" i)) in
  for _ = 1 to 60 do
    let terms =
      Array.to_list xs
      |> List.filter_map (fun (v : Milp.Model.var) ->
             if Random.State.float rng 1. < 0.3 then
               Some (Random.State.float rng 4., v.Milp.Model.vid)
             else None)
    in
    if terms <> [] then
      Milp.Model.add_cons m (Milp.Linexpr.of_terms terms) Milp.Model.Le
        (5. +. Random.State.float rng 40.)
  done;
  Milp.Model.set_objective m Milp.Model.Maximize
    (Milp.Linexpr.sum
       (Array.to_list
          (Array.map (fun (v : Milp.Model.var) -> Milp.Linexpr.var v.Milp.Model.vid) xs)));
  m

let milp_instance () =
  let m = Milp.Model.create ~name:"bench_milp" () in
  let rng = Random.State.make [| 7 |] in
  let xs = Array.init 16 (fun i -> Milp.Model.binary m (Printf.sprintf "b%d" i)) in
  let weights = Array.map (fun _ -> 1. +. Random.State.float rng 9.) xs in
  let values = Array.map (fun _ -> 1. +. Random.State.float rng 9.) xs in
  Milp.Model.add_cons m
    (Milp.Linexpr.of_terms
       (Array.to_list
          (Array.mapi (fun i (v : Milp.Model.var) -> (weights.(i), v.Milp.Model.vid)) xs)))
    Milp.Model.Le 30.;
  Milp.Model.set_objective m Milp.Model.Maximize
    (Milp.Linexpr.of_terms
       (Array.to_list
          (Array.mapi (fun i (v : Milp.Model.var) -> (values.(i), v.Milp.Model.vid)) xs)));
  m

let fig1_setup () =
  let topo = Wan.Generators.fig1 () in
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 topo [ (1, 3); (2, 3) ] in
  let d = Traffic.Demand.of_list [ ((1, 3), 12.); ((2, 3), 10.) ] in
  (topo, paths, d)

(* Kernels of the revised engine, on the 40x60 LP's standard form: LU
   factorization of a mixed structural/slack basis, and FTRAN/BTRAN
   through the factors. The basis alternates structural and slack
   columns so the LU is non-trivial (the all-slack basis would
   factorize to the identity). *)
let basis_setup () =
  let sp = Milp.Sparse.of_model (lp_instance ()) in
  let m = sp.Milp.Sparse.m and nv = sp.Milp.Sparse.nv in
  let bcols =
    Array.init m (fun r -> if r mod 2 = 0 && r / 2 < nv then r / 2 else nv + r)
  in
  let rhs = Array.init m (fun r -> Float.of_int ((r mod 7) - 3)) in
  (sp, bcols, rhs)

let tests () =
  let lp = lp_instance () in
  let milp = milp_instance () in
  let topo, paths, d = fig1_setup () in
  let sp = { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 1 } in
  let grid = Wan.Generators.grid 4 4 in
  let bsp, bcols, rhs = basis_setup () in
  let basis = Milp.Basis.create bsp bcols in
  Test.make_grouped ~name:"raha" ~fmt:"%s %s"
    [
      Test.make ~name:"simplex: 40x60 LP (revised)"
        (Staged.stage (fun () -> ignore (Milp.Simplex.solve lp)));
      Test.make ~name:"simplex: 40x60 LP (dense)"
        (Staged.stage (fun () ->
             ignore (Milp.Simplex.solve ~engine:Milp.Simplex.Dense lp)));
      Test.make ~name:"basis: factorize 60-row LU"
        (Staged.stage (fun () -> ignore (Milp.Basis.create bsp bcols)));
      Test.make ~name:"basis: ftran"
        (Staged.stage (fun () -> ignore (Milp.Basis.ftran basis rhs)));
      Test.make ~name:"basis: btran"
        (Staged.stage (fun () -> ignore (Milp.Basis.btran basis rhs)));
      Test.make ~name:"b&b: 16-item knapsack"
        (Staged.stage (fun () -> ignore (Milp.Solver.solve milp)));
      Test.make ~name:"bilevel build (fig1)"
        (Staged.stage (fun () ->
             ignore (Raha.Bilevel.build sp topo paths (Traffic.Envelope.fixed d))));
      Test.make ~name:"full analysis (fig1, fixed demand)"
        (Staged.stage (fun () ->
             ignore (Raha.Analysis.analyze topo paths (Traffic.Envelope.fixed d))));
      Test.make ~name:"yen 4-shortest (grid 4x4)"
        (Staged.stage (fun () -> ignore (Netpath.Shortest.yen grid ~src:0 ~dst:15 4)));
    ]

let run () =
  Format.printf "@.=== micro: solver substrate timings (Bechamel) ===@.";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ t ] ->
        if t > 1e6 then Format.printf "%-44s %10.3f ms/run@." name (t /. 1e6)
        else Format.printf "%-44s %10.1f ns/run@." name t
      | _ -> Format.printf "%-44s (no estimate)@." name)
    (List.sort compare rows)
