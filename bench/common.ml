(* Shared scaffolding for the per-figure/per-table experiments.

   Every experiment prints its configuration first: the bundled MILP
   solver replaces Gurobi, so defaults are scaled-down versions of the
   paper's setups (DESIGN.md, "Substitutions"); the [--full] flag raises
   sizes and budgets. *)

type ctx = {
  budget : float;  (** per-solve wall-clock budget, seconds *)
  full : bool;
  quick : bool;  (** trimmed grids for smoke runs *)
  domains : int;
      (** OCaml domains for the scenario-sweep experiments and the MILP
          core (parallel branch-and-bound rounds, concurrent cluster
          blocks); results are bit-identical for any value *)
  presolve : bool;  (** MILP presolve for every solve ([--no-presolve]) *)
  dense_simplex : bool;  (** legacy dense LP engine ([--dense-simplex]) *)
  certify : bool;  (** independent solution audit ([--no-certify]) *)
  cuts : bool;  (** cutting planes for every MILP solve ([--no-cuts]) *)
  cut_rounds : int option;  (** root separation rounds ([--cut-rounds]) *)
  batch : bool;  (** batched scenario engine for the sweeps ([--no-batch]) *)
  branching : Milp.Branch_bound.branching;
      (** branch-and-bound variable selection ([--branching]) *)
  heuristics : bool;  (** pump/RINS primal heuristics ([--no-heuristics]) *)
  rins_freq : int;  (** RINS cadence in nodes, 0 disables ([--rins-freq]) *)
}

let default_ctx =
  { budget = 10.; full = false; quick = false; domains = 1; presolve = true;
    dense_simplex = false; certify = true; cuts = true; cut_rounds = None;
    batch = true; branching = Milp.Branch_bound.Reliability; heuristics = true;
    rins_freq = Milp.Solver.default_options.Milp.Solver.rins_freq }

let printf = Format.printf

let section ctx ~id ~paper ~config =
  printf "@.=== %s: %s ===@." id paper;
  printf "config: %s (budget %gs/solve%s)@." config ctx.budget
    (if ctx.full then ", full" else "")

let row fmt = Format.printf fmt

(* --- reference topologies --------------------------------------------- *)

(* Variable-demand workhorse: solves to optimality in well under a
   second, with the multi-link LAGs and flaky-south structure of the
   production WAN (§8.1). *)
let wan_small () =
  let topo = Wan.Generators.africa_like ~seed:5 ~n:8 () in
  (topo, [ (0, 5); (1, 6); (2, 7) ])

(* Larger stand-in used by fixed-demand experiments. *)
let wan_large () =
  let topo = Wan.Generators.africa_like ~seed:5 ~n:10 () in
  (topo, [ (0, 7); (1, 8); (2, 9); (5, 8) ])

let paths_of ?scheme ?(primary = 2) ?(backup = 1) topo pairs =
  Netpath.Path_set.compute ?scheme ~n_primary:primary ~n_backup:backup topo pairs

let base_demand ?(volume = 60.) pairs =
  Traffic.Demand.of_list (List.map (fun p -> (p, volume)) pairs)

(* --- solving helpers ---------------------------------------------------- *)

let spec ?(objective = Te.Formulation.Total_flow) ?threshold ?max_failures ?(ce = false)
    ?(levels = 3) ?(goal = Raha.Bilevel.Max_degradation) () =
  {
    Raha.Bilevel.default_spec with
    Raha.Bilevel.objective;
    threshold;
    max_failures;
    connected_enforced = ce;
    goal;
    encoding = Raha.Bilevel.Strong_duality { levels };
  }

let cut_options ctx =
  let base = if ctx.cuts then Milp.Cuts.default else Milp.Cuts.disabled in
  match ctx.cut_rounds with
  | Some r -> { base with Milp.Cuts.root_rounds = max 0 r }
  | None -> base

let options ctx spec =
  { (Raha.Analysis.with_timeout ctx.budget) with spec; presolve = ctx.presolve;
    dense_simplex = ctx.dense_simplex; certify = ctx.certify;
    cuts = cut_options ctx; batch = ctx.batch; domains = ctx.domains;
    branching = ctx.branching; heuristics = ctx.heuristics;
    rins_freq = ctx.rins_freq }

(* Deterministic certificate summary for the [counters:] lines CI diffs:
   verdict plus the max primal residual rounded to one significant digit
   (full-precision residuals are engine-version noise, their magnitude is
   the signal). *)
let cert_str (r : Raha.Analysis.report) =
  match r.Raha.Analysis.certificate with
  | None -> "-"
  | Some c ->
    if not c.Milp.Certify.ok then "FAIL"
    else if c.Milp.Certify.max_primal_residual = 0. then "ok@0"
    else Printf.sprintf "ok@%.0e" c.Milp.Certify.max_primal_residual

let analyze ctx sp topo paths envelope =
  Raha.Analysis.analyze ~options:(options ctx sp) topo paths envelope

(* Evaluate one independent cell per array entry across ctx.domains
   domains, order-preserving, and emit the per-sweep stats line. Cells
   carry options.domains = ctx.domains, but a cell running inside a
   pool task never creates a pool of its own — nested scopes run their
   exact sequential paths — so the parallelism stays at the sweep
   level here and results match the sequential run bit for bit. *)
let par_cells ctx f cells =
  if ctx.domains <= 1 || Array.length cells < 2 then Array.map f cells
  else
    Parallel.Pool.with_pool ~counters:Milp.Solver.stats_counters ~domains:ctx.domains
      (fun pool ->
        let out = Parallel.Pool.map_array pool f cells in
        row "%a@." Parallel.Pool.pp_stats (Parallel.Pool.stats pool);
        out)

(* Normalized degradation string with a gap marker when the solve hit its
   budget (the paper's timeout behaviour, §6). *)
let deg_str (r : Raha.Analysis.report) =
  match r.Raha.Analysis.status with
  | Milp.Solver.Optimal -> Printf.sprintf "%.2f" r.Raha.Analysis.normalized
  | Milp.Solver.Feasible -> Printf.sprintf "%.2f*" r.Raha.Analysis.normalized
  | Milp.Solver.Infeasible -> "infeas"
  | Milp.Solver.Unbounded -> "unbnd"
  | Milp.Solver.Unknown -> "?"

let k_str = function Some k -> string_of_int k | None -> "inf"

let thresholds ctx = if ctx.quick then [ 1e-3; 1e-7 ] else [ 1e-1; 1e-3; 1e-5; 1e-7 ]
let ks ctx = if ctx.quick then [ Some 2; None ] else [ Some 1; Some 2; Some 4; None ]
