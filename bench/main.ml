(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation on the scaled-down reference topologies.

   Usage:
     dune exec bench/main.exe                 run everything (default budgets)
     dune exec bench/main.exe -- --list       list experiments
     dune exec bench/main.exe -- --only fig5,tab3
     dune exec bench/main.exe -- --quick      trimmed grids (smoke run)
     dune exec bench/main.exe -- --full       larger topologies and budgets
     dune exec bench/main.exe -- --budget 30  per-solve budget (seconds)
     dune exec bench/main.exe -- --domains 4  parallelism of the scenario sweeps
     dune exec bench/main.exe -- --skip-micro skip the Bechamel timings *)

let () =
  let only = ref [] and list = ref false in
  let budget = ref Common.default_ctx.Common.budget in
  let domains = ref (Domain.recommended_domain_count ()) in
  let quick = ref false and full = ref false and skip_micro = ref false in
  let no_presolve = ref false and dense_simplex = ref false in
  let no_certify = ref false in
  let no_cuts = ref false and cut_rounds = ref 0 and cut_rounds_set = ref false in
  let no_batch = ref false in
  let branching = ref Milp.Branch_bound.Reliability in
  let no_heuristics = ref false in
  let rins_freq = ref Common.default_ctx.Common.rins_freq in
  let args =
    [
      ("--list", Arg.Set list, " list experiment ids");
      ("--only", Arg.String (fun s -> only := String.split_on_char ',' s), "IDS comma-separated ids");
      ("--budget", Arg.Set_float budget, "SECONDS per-solve budget (default 10)");
      ("--domains", Arg.Set_int domains,
       "N OCaml domains for the scenario sweeps and the MILP core (default: all cores; 1 = sequential; results bit-identical either way)");
      ("--quick", Arg.Set quick, " trimmed grids");
      ("--full", Arg.Set full, " larger topologies and budgets");
      ("--skip-micro", Arg.Set skip_micro, " skip the Bechamel micro-benchmarks");
      ("--no-presolve", Arg.Set no_presolve, " disable the MILP presolve reductions");
      ("--dense-simplex", Arg.Set dense_simplex,
       " use the legacy dense-tableau LP engine (no warm starts)");
      ("--no-certify", Arg.Set no_certify,
       " skip the independent solution audit of every solver answer");
      ("--no-cuts", Arg.Set no_cuts,
       " disable the cutting-plane subsystem (Gomory/cover/clique pool)");
      ("--cut-rounds",
       Arg.Int (fun n -> cut_rounds := n; cut_rounds_set := true),
       "N cut separation rounds at the branch-and-bound root (default 6)");
      ("--no-batch", Arg.Set no_batch,
       " disable the batched scenario engine (per-scenario prepares instead)");
      ("--branching",
       Arg.String
         (function
           | "reliability" -> branching := Milp.Branch_bound.Reliability
           | "fractional" -> branching := Milp.Branch_bound.Fractional
           | s -> raise (Arg.Bad ("unknown branching rule " ^ s))),
       "RULE branch-and-bound variable selection: reliability (default) or fractional");
      ("--no-heuristics", Arg.Set no_heuristics,
       " disable the feasibility-pump and RINS primal heuristics");
      ("--rins-freq", Arg.Set_int rins_freq,
       "N RINS cadence in branch-and-bound nodes (default 200; 0 disables)");
    ]
  in
  Arg.parse (Arg.align args) (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "bench/main.exe [--list] [--only IDS] [--budget S] [--domains N] [--quick|--full]";
  if !list then begin
    List.iter
      (fun (id, desc, _) -> Format.printf "%-8s %s@." id desc)
      Experiments.all;
    Format.printf "%-8s %s@." "micro" "Bechamel micro-benchmarks of the solver substrate"
  end
  else begin
    let ctx =
      {
        Common.budget = (if !full then 4. *. !budget else !budget);
        full = !full;
        quick = !quick;
        domains = max 1 !domains;
        presolve = not !no_presolve;
        dense_simplex = !dense_simplex;
        certify = not !no_certify;
        cuts = not !no_cuts;
        cut_rounds = (if !cut_rounds_set then Some !cut_rounds else None);
        batch = not !no_batch;
        branching = !branching;
        heuristics = not !no_heuristics;
        rins_freq = !rins_freq;
      }
    in
    (* an unknown id in --only would otherwise be silently skipped *)
    let known = List.map (fun (id, _, _) -> id) Experiments.all @ [ "micro" ] in
    (match List.filter (fun id -> not (List.mem id known)) !only with
    | [] -> ()
    | unknown ->
      Format.eprintf "unknown experiment id%s: %s@.available ids: %s@."
        (if List.length unknown > 1 then "s" else "")
        (String.concat ", " unknown)
        (String.concat ", " known);
      exit 2);
    let selected = function
      | [] -> fun _ -> true
      | ids -> fun id -> List.mem id ids
    in
    let want = selected !only in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (id, _, fn) ->
        if want id then begin
          let t = Unix.gettimeofday () in
          fn ctx;
          Format.printf "[%s took %.1fs]@." id (Unix.gettimeofday () -. t)
        end)
      Experiments.all;
    if (not !skip_micro) && want "micro" then Micro.run ();
    Format.printf "@.total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
  end
