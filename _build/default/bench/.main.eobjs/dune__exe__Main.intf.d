bench/main.mli:
