bench/experiments.ml: Common Failure Float Fun List Milp Netpath Printf Raha Te Traffic Unix Wan
