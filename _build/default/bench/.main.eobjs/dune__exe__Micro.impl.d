bench/micro.ml: Analyze Array Bechamel Benchmark Format Hashtbl Instance List Measure Milp Netpath Printf Raha Random Staged Test Time Toolkit Traffic Wan
