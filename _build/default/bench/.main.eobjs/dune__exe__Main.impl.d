bench/main.ml: Arg Common Experiments Format List Micro String Unix
