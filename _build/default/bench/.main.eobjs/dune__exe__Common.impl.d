bench/common.ml: Format List Milp Netpath Printf Raha Te Traffic Wan
