(* Quickstart: the paper's Figure 1 worked example, end to end.

   Builds the four-node network of §2.1, then reproduces the three
   analyses the paper contrasts:
   (a) fixed demands              -> worst failure degrades by 7;
   (c) naive worst-case demands   -> implied degradation only 1;
   (e) Raha's joint optimization  -> degradation 9.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let topo = Wan.Generators.fig1 () in
  Format.printf "topology: %a@.@." Wan.Topology.pp topo;
  let b = Wan.Topology.node_id topo "B"
  and c = Wan.Topology.node_id topo "C"
  and d = Wan.Topology.node_id topo "D" in
  (* two configured paths per pair (Figure 1) *)
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:0 topo [ (b, d); (c, d) ] in
  List.iter
    (fun (p : Netpath.Path_set.pair) ->
      Format.printf "paths %s -> %s: %s@."
        (Wan.Topology.node_name topo p.Netpath.Path_set.src)
        (Wan.Topology.node_name topo p.Netpath.Path_set.dst)
        (String.concat ", "
           (List.map
              (Format.asprintf "%a" (Netpath.Path.pp topo))
              (Netpath.Path_set.all_paths p))))
    paths;
  let typical = Traffic.Demand.of_list [ ((b, d), 12.); ((c, d), 10.) ] in
  let spec =
    { Raha.Bilevel.default_spec with Raha.Bilevel.max_failures = Some 1 }
  in
  let options = { Raha.Analysis.default_options with spec } in

  (* (a) fixed demands *)
  let fixed = Raha.Analysis.analyze ~options topo paths (Traffic.Envelope.fixed typical) in
  Format.printf "@.(a) fixed demands (12, 10):@.%a@." Raha.Analysis.pp_report fixed;

  (* (c) the naive approach: minimize the failed network's performance *)
  let envelope = Traffic.Envelope.around ~slack:0.5 typical in
  let naive = Raha.Baselines.worst_failures_at_demand ~options topo paths
      (Traffic.Demand.of_list [ ((b, d), 6.); ((c, d), 5.) ])
  in
  Format.printf "@.(c) naive worst case (demands at the envelope floor):@.%a@."
    Raha.Analysis.pp_report naive;

  (* (e) Raha: jointly optimize demands and failures *)
  let raha = Raha.Analysis.analyze ~options topo paths envelope in
  Format.printf "@.(e) Raha joint analysis over the +/-50%% envelope:@.%a@."
    Raha.Analysis.pp_report raha;
  Format.printf "@.worst demand found:@.%a@." Traffic.Demand.pp
    raha.Raha.Analysis.worst_demand;
  Format.printf
    "@.summary: fixed=%.0f, naive=%.0f, raha=%.0f  (paper: 7, 1, 9)@."
    fixed.Raha.Analysis.degradation naive.Raha.Analysis.degradation
    raha.Raha.Analysis.degradation
