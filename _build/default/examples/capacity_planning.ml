(* Capacity planning on the B4 topology (§7, §8.6).

   Finds the probable failure scenario (T = 1e-4) with the worst
   degradation, then iteratively augments LAG capacities until no
   probable failure can degrade the network, printing each step.

   Run with: dune exec examples/capacity_planning.exe *)

let () =
  let topo = Wan.Zoo.b4 () in
  Format.printf "topology: %a@.@." Wan.Topology.pp topo;
  (* a handful of site pairs, 2 primaries + 1 backup each (B4 LAGs have a
     single link, like the paper's Zoo experiments) *)
  let pairs = [ (0, 11); (1, 10); (2, 9); (3, 8) ] in
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:1 topo pairs in
  (* demands capped at half the average LAG capacity so no single demand
     bottlenecks (the Appendix D.2 setup) *)
  let cap = Wan.Topology.avg_lag_capacity topo /. 2. in
  let base = Traffic.Demand.of_list (List.map (fun p -> (p, cap)) pairs) in
  let spec =
    {
      Raha.Bilevel.default_spec with
      Raha.Bilevel.threshold = Some 1e-4;
      encoding = Raha.Bilevel.Strong_duality { levels = 3 };
    }
  in
  let options = { (Raha.Analysis.with_timeout 20.) with spec } in
  Format.printf "running the augmentation loop (threshold 1e-4)...@.";
  let t0 = Unix.gettimeofday () in
  let r =
    Raha.Augment.augment_lags ~options ~new_capacity_can_fail:true ~tolerance:0.01
      ~max_steps:6 topo paths (Traffic.Envelope.fixed base)
  in
  List.iteri
    (fun i (step : Raha.Augment.step) ->
      Format.printf
        "step %d: degradation %.1f (normalized %.3f), scenario %a -> add %s@." (i + 1)
        step.Raha.Augment.report.Raha.Analysis.degradation
        step.Raha.Augment.report.Raha.Analysis.normalized Failure.Scenario.pp
        step.Raha.Augment.report.Raha.Analysis.scenario
        (String.concat ", "
           (List.map
              (fun (e, n) -> Printf.sprintf "%d links to lag%d" n e)
              step.Raha.Augment.lag_links_added)))
    r.Raha.Augment.steps;
  Format.printf
    "@.converged: %b after %d steps, %d links added, residual degradation %.2f (%.1fs)@."
    r.Raha.Augment.converged
    (List.length r.Raha.Augment.steps)
    r.Raha.Augment.total_links_added r.Raha.Augment.final.Raha.Analysis.degradation
    (Unix.gettimeofday () -. t0);
  Format.printf "augmented topology: %a@." Wan.Topology.pp r.Raha.Augment.topo
