(* Raha's two-stage online alerting (§1, §3).

   Stage 1 checks the observed peak demand under all probable failures
   (fast); stage 2 checks every demand in the envelope (deep). The
   example runs the pipeline at three operator tolerance levels to show
   each outcome: fast alert, deep alert, and all-clear.

   Run with: dune exec examples/alert_pipeline.exe *)

let () =
  let topo = Wan.Generators.africa_like ~seed:11 ~n:9 () in
  Format.printf "topology: %a@.@." Wan.Topology.pp topo;
  let pairs = [ (0, 6); (1, 7); (2, 8) ] in
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:1 topo pairs in
  (* a month of synthetic history gives the peak and the envelope *)
  let series =
    Traffic.Traffic_gen.generate ~seed:3 ~days:30 ~samples_per_day:4 ~pairs
      ~mean_volume:50. topo ()
  in
  let peak = Traffic.Traffic_gen.maximum series in
  Format.printf "peak demand (over the month):@.%a@." Traffic.Demand.pp peak;
  (* the deep stage searches every demand up to 30% above the peak *)
  let envelope = Traffic.Envelope.from_zero ~slack:0.3 peak in
  let spec =
    {
      Raha.Bilevel.default_spec with
      Raha.Bilevel.threshold = Some 1e-4;
      encoding = Raha.Bilevel.Strong_duality { levels = 3 };
    }
  in
  let stage_name = function
    | Some Raha.Alert.Fast_fixed_demand -> "FAST (fixed peak demand)"
    | Some Raha.Alert.Deep_variable_demand -> "DEEP (variable demand)"
    | None -> "none"
  in
  List.iter
    (fun tolerance ->
      let v =
        Raha.Alert.run ~spec ~tolerance ~fast_budget:15. ~deep_budget:45. topo paths
          ~peak envelope
      in
      Format.printf
        "tolerance %.2f: alert=%b stage=%s (fast found %.3f normalized%s)@." tolerance
        v.Raha.Alert.alert (stage_name v.Raha.Alert.stage)
        v.Raha.Alert.fast.Raha.Analysis.normalized
        (match v.Raha.Alert.deep with
        | Some d -> Printf.sprintf ", deep found %.3f" d.Raha.Analysis.normalized
        | None -> ""))
    [ 0.05; 0.45; 10. ]
