(* Post-mortem of a §2-style incident on a synthetic continental WAN.

   The incident: a seismic event cut several fibers in one region while
   demands were shifting; capacity planning against k <= 2 failures had
   declared the network safe. This example rebuilds that story:

   1. estimate per-link failure probabilities from (synthetic) repair
      telemetry with renewal-reward (Appendix B);
   2. show what a k <= 2 analysis predicts;
   3. show what Raha predicts when it considers every probable scenario
      (threshold 1e-6) and demand shifts of up to 30% (§1);
   4. replay Raha's scenario in the simulator to confirm the impact.

   Run with: dune exec examples/outage_postmortem.exe *)

let () =
  (* the continental WAN: flaky fiber in the "south" (§2's seismic zone) *)
  let designed = Wan.Generators.africa_like ~seed:5 ~n:10 () in
  Format.printf "designed topology: %a@." Wan.Topology.pp designed;

  (* 1. probability estimation from telemetry *)
  let topo = Failure.Trace.calibrate_topology ~seed:42 ~horizon:5000. designed in
  Format.printf "calibrated link failure probabilities from %d days of telemetry@.@."
    5000;

  let pairs = [ (0, 7); (1, 8); (2, 9); (5, 8) ] in
  let paths = Netpath.Path_set.compute ~n_primary:2 ~n_backup:1 topo pairs in
  let demand = Traffic.Demand.of_list (List.map (fun p -> (p, 60.)) pairs) in
  let envelope = Traffic.Envelope.around ~slack:0.3 demand in

  (* 2. what a k <= 2 failure analysis predicts *)
  let k2 =
    Raha.Baselines.k_failures ~options:(Raha.Analysis.with_timeout 30.) ~k:2 topo paths
      envelope
  in
  Format.printf "k <= 2 analysis:@.%a@.@." Raha.Analysis.pp_report k2;

  (* 3. Raha over all probable scenarios *)
  let spec =
    {
      Raha.Bilevel.default_spec with
      Raha.Bilevel.threshold = Some 1e-6;
      encoding = Raha.Bilevel.Strong_duality { levels = 3 };
    }
  in
  let options = { (Raha.Analysis.with_timeout 60.) with spec } in
  let raha = Raha.Analysis.analyze ~options topo paths envelope in
  Format.printf "Raha (all scenarios with probability >= 1e-6):@.%a@.@."
    Raha.Analysis.pp_report raha;

  (* 4. replay in the simulator *)
  (match
     Te.Simulate.degradation topo paths raha.Raha.Analysis.worst_demand
       raha.Raha.Analysis.scenario
   with
  | Some deg ->
    Format.printf "replayed in the simulator: the network drops %.1f units (%.0f%% of \
                   what the healthy network carries)@."
      deg
      (100. *. deg /. Float.max 1e-9 raha.Raha.Analysis.healthy_performance)
  | None -> Format.printf "replay infeasible@.");
  let ratio =
    raha.Raha.Analysis.degradation /. Float.max 1e-9 k2.Raha.Analysis.degradation
  in
  Format.printf
    "@.the probable-scenario analysis finds %.1fx the degradation the k <= 2 tools \
     saw — the §2 incident in miniature@."
    ratio
