examples/capacity_planning.ml: Failure Format List Netpath Printf Raha String Traffic Unix Wan
