examples/quickstart.ml: Format List Netpath Raha String Traffic Wan
