examples/quickstart.mli:
