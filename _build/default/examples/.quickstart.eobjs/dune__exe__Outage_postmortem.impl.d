examples/outage_postmortem.ml: Failure Float Format List Netpath Raha Te Traffic Wan
