examples/outage_postmortem.mli:
