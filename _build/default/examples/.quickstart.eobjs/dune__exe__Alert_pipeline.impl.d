examples/alert_pipeline.ml: Format List Netpath Printf Raha Traffic Wan
