(** Synthetic link up/down telemetry.

    Stands in for the production repair logs of §8.1 ("we know when a
    link goes down and when it is repaired"): alternating exponential
    up-times and down-times, so the true steady-state down probability is
    [mttr / (mtbf_up + mttr)] and {!Renewal.estimate} can be validated
    against it. *)

(** [exponential ~seed ~mean_uptime ~mean_downtime ~horizon ()] simulates
    one link until [horizon]. *)
val exponential :
  seed:int ->
  mean_uptime:float ->
  mean_downtime:float ->
  horizon:float ->
  unit ->
  Renewal.event list

(** [calibrate_topology ~seed ~horizon topo] simulates telemetry for every
    link of [topo] whose failure probability matches its configured
    [fail_prob], estimates probabilities with {!Renewal.estimate}, and
    returns a topology with the estimated probabilities — the full
    §8.1 pipeline, end to end. *)
val calibrate_topology : seed:int -> horizon:float -> Wan.Topology.t -> Wan.Topology.t
