lib/failure/trace.ml: Array Float List Random Renewal Wan
