lib/failure/scenario.mli: Format Wan
