lib/failure/enumerate.mli: Scenario Wan
