lib/failure/trace.mli: Renewal Wan
