lib/failure/probability.mli: Scenario Wan
