lib/failure/srlg.ml: Array List Scenario Wan
