lib/failure/srlg.mli: Scenario Wan
