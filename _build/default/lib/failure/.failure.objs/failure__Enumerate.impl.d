lib/failure/enumerate.ml: Array Float List Printf Probability Scenario Wan
