lib/failure/renewal.ml: Float List
