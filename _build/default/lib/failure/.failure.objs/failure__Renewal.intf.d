lib/failure/renewal.mli:
