lib/failure/scenario.ml: Array Float Format List Printf Set String Wan
