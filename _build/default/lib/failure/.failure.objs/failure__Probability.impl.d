lib/failure/probability.ml: Array Float List Scenario Wan
