type event = { down_at : float; up_at : float }

let validate events =
  let rec check prev_up = function
    | [] -> ()
    | e :: rest ->
      if e.down_at < prev_up then invalid_arg "Renewal: overlapping or unordered events";
      if e.up_at <= e.down_at then invalid_arg "Renewal: non-positive outage duration";
      check e.up_at rest
  in
  check Float.neg_infinity events

let estimate ~horizon events =
  if horizon <= 0. then invalid_arg "Renewal.estimate: non-positive horizon";
  validate events;
  let downtime =
    List.fold_left
      (fun acc e ->
        let d = Float.min e.up_at horizon -. Float.min e.down_at horizon in
        acc +. Float.max 0. d)
      0. events
  in
  Float.min 1. (downtime /. horizon)

let estimate_ratio events =
  validate events;
  match events with
  | [] | [ _ ] -> invalid_arg "Renewal.estimate_ratio: need at least two events"
  | first :: _ ->
    (* cycles run repair to repair: X_i = up_{i+1} - up_i, R_i = downtime
       of outage i+1 *)
    let rec cycles prev acc_x acc_r n = function
      | [] -> (acc_x, acc_r, n)
      | e :: rest ->
        cycles e (acc_x +. (e.up_at -. prev.up_at)) (acc_r +. (e.up_at -. e.down_at)) (n + 1) rest
    in
    let x, r, n = cycles first 0. 0. 0 (List.tl events) in
    if n = 0 || x <= 0. then invalid_arg "Renewal.estimate_ratio: degenerate trace"
    else r /. x

let mtbf events =
  validate events;
  match events with
  | [] | [ _ ] -> invalid_arg "Renewal.mtbf: need at least two events"
  | first :: rest ->
    let last = List.fold_left (fun _ e -> e) first rest in
    (last.down_at -. first.down_at) /. float_of_int (List.length rest)

let mttr events =
  validate events;
  if events = [] then invalid_arg "Renewal.mttr: empty trace";
  List.fold_left (fun acc e -> acc +. (e.up_at -. e.down_at)) 0. events
  /. float_of_int (List.length events)
