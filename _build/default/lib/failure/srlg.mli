(** Shared risk link groups.

    Links that share a conduit, landing station or seismic zone fail
    together (§1: "RAHA can model ... shared risk groups (SRLGs)"). An
    SRLG couples the failure state of its member links: in the MILP the
    members' failure binaries are forced equal; in enumeration-based
    baselines a group fails atomically with probability [prob]. *)

type t = {
  srlg_name : string;
  members : (int * int) list;  (** (lag_id, link_index) pairs, >= 2 *)
  prob : float;  (** probability the shared resource is down *)
}

(** @raise Invalid_argument on fewer than two members, duplicates across
    the group, or probability outside [0, 1). *)
val make : name:string -> prob:float -> (int * int) list -> t

(** [validate topo t] checks all members exist in the topology. *)
val validate : Wan.Topology.t -> t -> unit

(** [scenarios topo groups] enumerates the 2^|groups| atomic-failure
    combinations as scenarios (groups must be disjoint;
    |groups| <= 20). *)
val scenarios : Wan.Topology.t -> t list -> (Scenario.t * float) list
