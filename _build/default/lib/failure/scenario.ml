module S = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = S.t

let empty = S.empty

let of_links topo links =
  List.fold_left
    (fun acc (lag_id, link_idx) ->
      let lag =
        try Wan.Topology.lag topo lag_id
        with Invalid_argument _ -> invalid_arg "Scenario.of_links: bad lag id"
      in
      if link_idx < 0 || link_idx >= Wan.Lag.num_links lag then
        invalid_arg "Scenario.of_links: bad link index";
      if S.mem (lag_id, link_idx) acc then invalid_arg "Scenario.of_links: duplicate link";
      S.add (lag_id, link_idx) acc)
    S.empty links

let links t = S.elements t
let num_failed t = S.cardinal t
let is_down t ~lag ~link = S.mem (lag, link) t

let lag_capacity topo t lag_id =
  let lag = Wan.Topology.lag topo lag_id in
  let acc = ref 0. in
  Array.iteri
    (fun i (l : Wan.Lag.link) ->
      if not (S.mem (lag_id, i) t) then acc := !acc +. l.Wan.Lag.link_capacity)
    lag.Wan.Lag.links;
  !acc

let lag_down topo t lag_id =
  let lag = Wan.Topology.lag topo lag_id in
  let n = Wan.Lag.num_links lag in
  let rec all i = i >= n || (S.mem (lag_id, i) t && all (i + 1)) in
  all 0

let path_down topo t lag_ids = List.exists (lag_down topo t) lag_ids

let log_prob topo t =
  let acc = ref 0. in
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          let p = l.Wan.Lag.fail_prob in
          if S.mem (lag.Wan.Lag.lag_id, i) t then
            acc := !acc +. (if p > 0. then Float.log p else Float.neg_infinity)
          else acc := !acc +. Float.log1p (-.p))
        lag.Wan.Lag.links)
    (Wan.Topology.lags topo);
  !acc

let prob topo t = Float.exp (log_prob topo t)

let equal = S.equal
let compare = S.compare

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (fun (l, i) -> Printf.sprintf "lag%d.%d" l i) (S.elements t)))
