(** Failure scenarios: sets of simultaneously-failed physical links.

    A link is addressed as [(lag_id, link_index)]. A LAG is down only when
    all of its links are down; partial failures reduce its capacity
    (§1: "RAHA can model partial failures"). *)

type t

val empty : t

(** [of_links topo links] validates indices and builds a scenario.
    @raise Invalid_argument on out-of-range or duplicate links. *)
val of_links : Wan.Topology.t -> (int * int) list -> t

val links : t -> (int * int) list

(** Number of failed physical links — the paper's "number of failures"
    metric (§8.1). *)
val num_failed : t -> int

val is_down : t -> lag:int -> link:int -> bool

(** Live capacity of a LAG under the scenario. *)
val lag_capacity : Wan.Topology.t -> t -> int -> float

(** True when every link of the LAG is failed (Eq. 3). *)
val lag_down : Wan.Topology.t -> t -> int -> bool

(** [path_down topo t lag_ids] is true when some LAG on the path is fully
    down (Eq. 4). *)
val path_down : Wan.Topology.t -> t -> int list -> bool

(** Steady-state probability of exactly this scenario: failed links down,
    all other links up (independent links). *)
val prob : Wan.Topology.t -> t -> float

(** [log_prob] is numerically safe for tiny probabilities; [-inf] when
    some failed link has probability 0. *)
val log_prob : Wan.Topology.t -> t -> float

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
