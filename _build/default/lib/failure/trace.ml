let exp_sample rng mean = -.mean *. Float.log (Float.max 1e-12 (Random.State.float rng 1.))

let exponential ~seed ~mean_uptime ~mean_downtime ~horizon () =
  if mean_uptime <= 0. || mean_downtime <= 0. || horizon <= 0. then
    invalid_arg "Trace.exponential";
  let rng = Random.State.make [| seed |] in
  let rec run t acc =
    let up = exp_sample rng mean_uptime in
    let down_at = t +. up in
    if down_at >= horizon then List.rev acc
    else
      let down = exp_sample rng mean_downtime in
      let up_at = Float.min (down_at +. down) horizon in
      run up_at ({ Renewal.down_at; up_at } :: acc)
  in
  run 0. []

let calibrate_topology ~seed ~horizon topo =
  let lags = Wan.Topology.lags topo in
  let counter = ref 0 in
  let new_lags =
    Array.to_list lags
    |> List.map (fun (lag : Wan.Lag.t) ->
           let links =
             Array.to_list lag.Wan.Lag.links
             |> List.map (fun (l : Wan.Lag.link) ->
                    incr counter;
                    let p = l.Wan.Lag.fail_prob in
                    if p <= 0. then l
                    else begin
                      (* choose mean up/down times consistent with p:
                         p = mttr / (mtbf + mttr); fix mttr = 1 day *)
                      let mttr = 1. in
                      let mtbf = mttr *. ((1. /. p) -. 1.) in
                      let events =
                        exponential ~seed:(seed + !counter) ~mean_uptime:mtbf
                          ~mean_downtime:mttr ~horizon ()
                      in
                      let est = Renewal.estimate ~horizon events in
                      (* keep strictly inside [0, 1) for downstream log *)
                      { l with Wan.Lag.fail_prob = Float.min 0.99 (Float.max 1e-6 est) }
                    end)
           in
           Wan.Lag.make ~id:lag.Wan.Lag.lag_id ~src:lag.Wan.Lag.src ~dst:lag.Wan.Lag.dst
             links)
  in
  Wan.Topology.create
    ~node_names:(Array.init (Wan.Topology.num_nodes topo) (Wan.Topology.node_name topo))
    ~name:(Wan.Topology.name topo ^ "_calibrated")
    ~num_nodes:(Wan.Topology.num_nodes topo)
    new_lags
