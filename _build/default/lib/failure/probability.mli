(** Scenario-probability utilities.

    The probability-threshold constraint (§5.1) compares the log
    probability of a failure scenario against [log T]. These helpers
    answer questions like Figure 2's: how many links can simultaneously
    fail while the scenario probability stays above a threshold? *)

(** Log probability of the all-links-up scenario. *)
val log_prob_all_up : Wan.Topology.t -> float

(** [max_simultaneous_failures topo ~threshold] is the largest number of
    links that can be simultaneously down in a scenario with probability
    >= threshold, with one maximizing scenario. Links are failed greedily
    in decreasing [log p - log (1 - p)] order, which is optimal for
    maximizing the count. Returns [0, empty scenario] when even one
    failure drops below the threshold. *)
val max_simultaneous_failures : Wan.Topology.t -> threshold:float -> int * Scenario.t

(** [per_link_cost topo] lists [((lag, link), log p - log (1-p))] — the
    log-probability cost of failing each link, sorted most-likely first. *)
val per_link_cost : Wan.Topology.t -> ((int * int) * float) list
