type t = { srlg_name : string; members : (int * int) list; prob : float }

let make ~name ~prob members =
  if List.length members < 2 then invalid_arg "Srlg.make: fewer than two members";
  if prob < 0. || prob >= 1. then invalid_arg "Srlg.make: prob outside [0, 1)";
  let sorted = List.sort_uniq compare members in
  if List.length sorted <> List.length members then invalid_arg "Srlg.make: duplicate members";
  { srlg_name = name; members = sorted; prob }

let validate topo t =
  List.iter
    (fun (lag_id, link_idx) ->
      let lag =
        try Wan.Topology.lag topo lag_id
        with Invalid_argument _ -> invalid_arg "Srlg.validate: bad lag id"
      in
      if link_idx < 0 || link_idx >= Wan.Lag.num_links lag then
        invalid_arg "Srlg.validate: bad link index")
    t.members

let scenarios topo groups =
  List.iter (validate topo) groups;
  let n = List.length groups in
  if n > 20 then invalid_arg "Srlg.scenarios: too many groups";
  (* check disjointness *)
  let all = List.concat_map (fun g -> g.members) groups in
  if List.length (List.sort_uniq compare all) <> List.length all then
    invalid_arg "Srlg.scenarios: groups overlap";
  let garr = Array.of_list groups in
  let out = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let links = ref [] and p = ref 1. in
    Array.iteri
      (fun i g ->
        if mask land (1 lsl i) <> 0 then begin
          links := g.members @ !links;
          p := !p *. g.prob
        end
        else p := !p *. (1. -. g.prob))
      garr;
    out := (Scenario.of_links topo !links, !p) :: !out
  done;
  List.rev !out
