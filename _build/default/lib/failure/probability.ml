let log_prob_all_up topo = Scenario.log_prob topo Scenario.empty

let per_link_cost topo =
  let entries = ref [] in
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          let p = l.Wan.Lag.fail_prob in
          let cost =
            if p > 0. then Float.log p -. Float.log1p (-.p) else Float.neg_infinity
          in
          entries := ((lag.Wan.Lag.lag_id, i), cost) :: !entries)
        lag.Wan.Lag.links)
    (Wan.Topology.lags topo);
  List.sort (fun (_, a) (_, b) -> compare b a) !entries

let max_simultaneous_failures topo ~threshold =
  if threshold <= 0. || threshold > 1. then
    invalid_arg "Probability.max_simultaneous_failures: threshold outside (0, 1]";
  let log_t = Float.log threshold in
  let base = log_prob_all_up topo in
  let rec greedy acc logp = function
    | [] -> acc
    | (link, cost) :: rest ->
      let logp' = logp +. cost in
      if logp' >= log_t then greedy (link :: acc) logp' rest else acc
  in
  let chosen = greedy [] base (per_link_cost topo) in
  (List.length chosen, Scenario.of_links topo chosen)
