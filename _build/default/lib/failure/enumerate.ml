let all_links topo =
  let acc = ref [] in
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      Array.iteri (fun i _ -> acc := (lag.Wan.Lag.lag_id, i) :: !acc) lag.Wan.Lag.links)
    (Wan.Topology.lags topo);
  List.rev !acc

let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let count_up_to_k topo ~k =
  let n = List.length (all_links topo) in
  let rec sum i acc = if i > min k n then acc else sum (i + 1) (acc + binomial n i) in
  sum 0 0

let up_to_k topo ~k =
  if k < 0 then invalid_arg "Enumerate.up_to_k: k < 0";
  let total = count_up_to_k topo ~k in
  if total > 2_000_000 then
    invalid_arg (Printf.sprintf "Enumerate.up_to_k: %d scenarios is too many" total);
  let links = Array.of_list (all_links topo) in
  let n = Array.length links in
  let out = ref [] in
  let rec choose start chosen remaining =
    out := Scenario.of_links topo chosen :: !out;
    if remaining > 0 then
      for i = start to n - 1 do
        choose (i + 1) (links.(i) :: chosen) (remaining - 1)
      done
  in
  choose 0 [] (min k n);
  List.rev !out

let above_threshold ?(limit = 2_000_000) topo ~threshold =
  if threshold <= 0. || threshold > 1. then
    invalid_arg "Enumerate.above_threshold: threshold outside (0, 1]";
  let log_t = Float.log threshold in
  let base = Probability.log_prob_all_up topo in
  if base < log_t then []
  else begin
    (* links sorted by decreasing cost so DFS can prune: once a link's
       cost drops the running sum below log_t, so do all later links *)
    let costs = Array.of_list (Probability.per_link_cost topo) in
    let n = Array.length costs in
    let out = ref [] and count = ref 0 in
    let rec dfs i chosen logp =
      incr count;
      if !count > limit then invalid_arg "Enumerate.above_threshold: too many scenarios";
      out := Scenario.of_links topo chosen :: !out;
      let rec extend j =
        if j < n then begin
          let link, cost = costs.(j) in
          let logp' = logp +. cost in
          if logp' >= log_t then begin
            dfs (j + 1) (link :: chosen) logp';
            extend (j + 1)
          end
          (* costs are sorted descending: later j cannot qualify either *)
        end
      in
      extend i
    in
    dfs 0 [] base;
    List.rev !out
  end

let lag_failures_up_to_k topo ~k =
  if k < 0 then invalid_arg "Enumerate.lag_failures_up_to_k: k < 0";
  let lags = Wan.Topology.lags topo in
  let m = Array.length lags in
  let whole_lag (lag : Wan.Lag.t) =
    List.init (Wan.Lag.num_links lag) (fun i -> (lag.Wan.Lag.lag_id, i))
  in
  let out = ref [] in
  let rec choose start chosen remaining =
    out := Scenario.of_links topo (List.concat chosen) :: !out;
    if remaining > 0 then
      for i = start to m - 1 do
        choose (i + 1) (whole_lag lags.(i) :: chosen) (remaining - 1)
      done
  in
  choose 0 [] (min k m);
  List.rev !out
