(** Renewal-reward estimation of link failure probabilities (Appendix B).

    The renewal process splits time at repair instants; the reward of a
    cycle is the downtime inside it. By the renewal reward theorem the
    long-run fraction of time the link is down — its failure probability
    — equals [E(R) / E(X)]. *)

type event = { down_at : float; up_at : float }
(** One outage: the link went down at [down_at] and was repaired at
    [up_at]. *)

(** [estimate ~horizon events] estimates the probability that the link is
    down: total downtime / observation horizon. Events must be
    chronological and non-overlapping; downtime past the horizon is
    clipped.
    @raise Invalid_argument on malformed traces. *)
val estimate : horizon:float -> event list -> float

(** [estimate_ratio events] uses the per-cycle renewal-reward form
    [mean downtime per cycle / mean cycle length], where cycles run
    repair-to-repair (needs >= 2 events). *)
val estimate_ratio : event list -> float

(** Mean time between failures of a trace (down_at deltas). *)
val mtbf : event list -> float

(** Mean time to repair. *)
val mttr : event list -> float
