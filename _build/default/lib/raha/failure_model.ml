type t = {
  topo : Wan.Topology.t;
  paths : Netpath.Path_set.t;
  link_down : Milp.Model.var array array;
  lag_down : Milp.Model.var array;
  path_down : Milp.Model.var array array;
  avail : Milp.Model.var option array array;
  lag_cap : Milp.Linexpr.t array;
}

let evar (v : Milp.Model.var) = Milp.Linexpr.var v.Milp.Model.vid

let build m topo paths =
  let lags = Wan.Topology.lags topo in
  let link_down =
    Array.map
      (fun (lag : Wan.Lag.t) ->
        Array.mapi
          (fun i _ ->
            Milp.Model.binary m (Printf.sprintf "u_e%d_l%d" lag.Wan.Lag.lag_id i))
          lag.Wan.Lag.links)
      lags
  in
  (* c_e = sum_l c_le (1 - u_le) *)
  let lag_cap =
    Array.map
      (fun (lag : Wan.Lag.t) ->
        let e = lag.Wan.Lag.lag_id in
        Array.to_list lag.Wan.Lag.links
        |> List.mapi (fun i (l : Wan.Lag.link) ->
               let c = l.Wan.Lag.link_capacity in
               Milp.Linexpr.of_terms ~const:c [ (-.c, link_down.(e).(i).Milp.Model.vid) ])
        |> Milp.Linexpr.sum)
      lags
  in
  (* Eq. 3: N_e u_e + aux = sum_l u_le with 0 <= aux <= N_e - 1 *)
  let lag_down =
    Array.map
      (fun (lag : Wan.Lag.t) ->
        let e = lag.Wan.Lag.lag_id in
        let n_e = Wan.Lag.num_links lag in
        let u_e = Milp.Model.binary m (Printf.sprintf "u_e%d" e) in
        let aux =
          Milp.Model.continuous ~lb:0. ~ub:(float_of_int (n_e - 1)) m
            (Printf.sprintf "aux_e%d" e)
        in
        let lhs =
          Milp.Linexpr.add
            (Milp.Linexpr.var ~coeff:(float_of_int n_e) u_e.Milp.Model.vid)
            (evar aux)
        in
        let rhs =
          Milp.Linexpr.sum (Array.to_list (Array.map evar link_down.(e)))
        in
        Milp.Model.add_cons_expr m ~name:(Printf.sprintf "lagdown_e%d" e) lhs
          Milp.Model.Eq rhs;
        u_e)
      lags
  in
  (* Eq. 4: N_kp u_kp >= sum_{e in p} u_e *)
  let path_down =
    Array.of_list
      (List.mapi
         (fun k (pair : Netpath.Path_set.pair) ->
           let all = Array.of_list (Netpath.Path_set.all_paths pair) in
           Array.mapi
             (fun j path ->
               let u_kp = Milp.Model.binary m (Printf.sprintf "u_k%d_p%d" k j) in
               let n_kp = Netpath.Path.length path in
               let rhs =
                 Milp.Linexpr.sum
                   (List.map (fun e -> evar lag_down.(e)) (Netpath.Path.lag_list path))
               in
               Milp.Model.add_cons_expr m
                 ~name:(Printf.sprintf "pathdown_k%d_p%d" k j)
                 (Milp.Linexpr.var ~coeff:(float_of_int n_kp) u_kp.Milp.Model.vid)
                 Milp.Model.Ge rhs;
               u_kp)
             all)
         paths)
  in
  (* Eq. 5 indicator: z_kpj = 1 iff sum_{i<j} u_kpi + n_primary - j - 1 >= 0.
     Primaries (j < n_primary) are unconditionally available. *)
  let avail =
    Array.of_list
      (List.mapi
         (fun k (pair : Netpath.Path_set.pair) ->
           let n_primary = Netpath.Path_set.num_primary pair in
           let n_all = n_primary + Netpath.Path_set.num_backup pair in
           Array.init n_all (fun j ->
               if j < n_primary then None
               else begin
                 let prior =
                   Milp.Linexpr.sum
                     (List.init j (fun i -> evar path_down.(k).(i)))
                 in
                 let expr =
                   Milp.Linexpr.add prior
                     (Milp.Linexpr.const (float_of_int (n_primary - j - 1)))
                 in
                 let lb = float_of_int (n_primary - j - 1) in
                 let ub = float_of_int (n_primary - 1) in
                 Some
                   (Milp.Linearize.indicator_ge0 m
                      ~name:(Printf.sprintf "z_k%d_p%d" k j)
                      expr ~lb ~ub)
               end))
         paths)
  in
  { topo; paths; link_down; lag_down; path_down; avail; lag_cap }

let avail_expr t ~pair ~path =
  match t.avail.(pair).(path) with
  | None -> Milp.Linexpr.const 1.
  | Some z -> evar z

let add_probability_threshold m t ~threshold =
  if threshold <= 0. || threshold > 1. then
    invalid_arg "Failure_model.add_probability_threshold: threshold outside (0, 1]";
  let log_t = Float.log threshold in
  let expr = ref Milp.Linexpr.zero in
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      let e = lag.Wan.Lag.lag_id in
      Array.iteri
        (fun i (l : Wan.Lag.link) ->
          let p = l.Wan.Lag.fail_prob in
          if p <= 0. then begin
            (* a link that never fails: pin its binary instead of adding a
               -inf coefficient *)
            Milp.Model.add_cons m
              ~name:(Printf.sprintf "nofail_e%d_l%d" e i)
              (evar t.link_down.(e).(i))
              Milp.Model.Le 0.
          end
          else begin
            let lp = Float.log p and lq = Float.log1p (-.p) in
            (* u * log p + (1 - u) * log (1 - p) = lq + u (lp - lq) *)
            expr :=
              Milp.Linexpr.add !expr
                (Milp.Linexpr.of_terms ~const:lq
                   [ (lp -. lq, t.link_down.(e).(i).Milp.Model.vid) ])
          end)
        lag.Wan.Lag.links)
    (Wan.Topology.lags t.topo);
  Milp.Model.add_cons_expr m ~name:"prob_threshold" !expr Milp.Model.Ge
    (Milp.Linexpr.const log_t)

let add_max_failures m t ~k =
  if k < 0 then invalid_arg "Failure_model.add_max_failures: k < 0";
  let expr =
    Milp.Linexpr.sum
      (Array.to_list t.link_down
      |> List.concat_map (fun row -> Array.to_list (Array.map evar row)))
  in
  Milp.Model.add_cons m ~name:"max_failures" expr Milp.Model.Le (float_of_int k)

let add_connected_enforced m t =
  Array.iteri
    (fun k row ->
      let n = Array.length row in
      let expr = Milp.Linexpr.sum (Array.to_list (Array.map evar row)) in
      Milp.Model.add_cons m
        ~name:(Printf.sprintf "ce_k%d" k)
        expr Milp.Model.Le
        (float_of_int (n - 1)))
    t.path_down

let add_srlgs m t groups =
  List.iter
    (fun (g : Failure.Srlg.t) ->
      Failure.Srlg.validate t.topo g;
      match g.Failure.Srlg.members with
      | [] | [ _ ] -> ()
      | (l0, i0) :: rest ->
        let first = evar t.link_down.(l0).(i0) in
        List.iteri
          (fun idx (l, i) ->
            Milp.Model.add_cons_expr m
              ~name:(Printf.sprintf "srlg_%s_%d" g.Failure.Srlg.srlg_name idx)
              first Milp.Model.Eq
              (evar t.link_down.(l).(i)))
          rest)
    groups

let scenario_of_solution t sol =
  let links = ref [] in
  Array.iteri
    (fun e row ->
      Array.iteri (fun i u -> if Milp.Solver.bool_value sol u then links := (e, i) :: !links) row)
    t.link_down;
  Failure.Scenario.of_links t.topo !links
