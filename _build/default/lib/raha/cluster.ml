let partition topo ~clusters =
  let n = Wan.Topology.num_nodes topo in
  if clusters < 1 then invalid_arg "Cluster.partition: clusters < 1";
  let k = min clusters n in
  let assign = Array.make n (-1) in
  (* seeds: spread by repeated farthest-first traversal on hop distance *)
  let bfs_dist src =
    let dist = Array.make n max_int in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (w, _) ->
          if dist.(w) = max_int then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end)
        (Wan.Topology.neighbors topo v)
    done;
    dist
  in
  let seeds = ref [ 0 ] in
  while List.length !seeds < k do
    (* farthest node from all current seeds *)
    let dists = List.map bfs_dist !seeds in
    let best = ref (-1) and bestd = ref (-1) in
    for v = 0 to n - 1 do
      let d =
        List.fold_left (fun acc dist -> min acc (if dist.(v) = max_int then 0 else dist.(v))) max_int dists
      in
      if d > !bestd && not (List.mem v !seeds) then begin
        best := v;
        bestd := d
      end
    done;
    seeds := !best :: !seeds
  done;
  (* multi-source BFS growth: each seed claims nodes in rounds *)
  let q = Queue.create () in
  List.iteri
    (fun c s ->
      assign.(s) <- c;
      Queue.add s q)
    (List.rev !seeds);
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (w, _) ->
        if assign.(w) = -1 then begin
          assign.(w) <- assign.(v);
          Queue.add w q
        end)
      (Wan.Topology.neighbors topo v)
  done;
  (* isolated leftovers (disconnected graphs): cluster 0 *)
  Array.iteri (fun v c -> if c = -1 then assign.(v) <- 0) assign;
  assign

type result = {
  report : Analysis.report;
  demand : Traffic.Demand.t;
  block_solves : int;
  total_elapsed : float;
}

let analyze ?(options = Analysis.default_options) ~clusters topo paths envelope =
  let assign = partition topo ~clusters in
  let k = Array.fold_left max 0 assign + 1 in
  let pairs = Traffic.Envelope.pairs envelope in
  let n_solves = (k * k) + 1 in
  let per_solve_budget =
    if options.Analysis.time_limit = Float.infinity then Float.infinity
    else options.Analysis.time_limit /. float_of_int n_solves
  in
  let options = { options with Analysis.time_limit = per_solve_budget } in
  (* demands found so far; start from zero (Algorithm 1 line 3) *)
  let current = ref (Traffic.Demand.of_list (List.map (fun p -> (p, 0.)) pairs)) in
  let solves = ref 0 and elapsed = ref 0. in
  for ci = 0 to k - 1 do
    for cj = 0 to k - 1 do
      let in_block (s, d) = assign.(s) = ci && assign.(d) = cj in
      if List.exists in_block pairs then begin
        (* free the block's demands, fix the rest at current values *)
        let env' =
          {
            Traffic.Envelope.lo =
              Traffic.Demand.map
                (fun ~src ~dst v ->
                  if in_block (src, dst) then
                    Traffic.Envelope.lo_volume envelope ~src ~dst
                  else v)
                !current;
            hi =
              Traffic.Demand.map
                (fun ~src ~dst v ->
                  if in_block (src, dst) then
                    Traffic.Envelope.hi_volume envelope ~src ~dst
                  else v)
                !current;
          }
        in
        let r = Analysis.analyze ~options topo paths env' in
        incr solves;
        elapsed := !elapsed +. r.Analysis.elapsed;
        if r.Analysis.status = Milp.Solver.Optimal || r.Analysis.status = Milp.Solver.Feasible
        then
          (* adopt the block's demands (Algorithm 1 line 11) *)
          List.iter
            (fun (s, d) ->
              if in_block (s, d) then
                current :=
                  Traffic.Demand.set !current ~src:s ~dst:d
                    (Traffic.Demand.volume r.Analysis.worst_demand ~src:s ~dst:d))
            pairs
      end
    done
  done;
  (* final fixed-demand solve for the failure scenario *)
  let report = Analysis.analyze ~options topo paths (Traffic.Envelope.fixed !current) in
  incr solves;
  elapsed := !elapsed +. report.Analysis.elapsed;
  { report; demand = !current; block_solves = !solves; total_elapsed = !elapsed }
