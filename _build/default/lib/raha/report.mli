(** Structured export of analysis results.

    Operators feed Raha's findings into ticketing and capacity-planning
    pipelines; this module renders {!Analysis.report} values as CSV rows
    (one summary row per analysis, one detail row per affected pair). *)

(** Header line matching {!summary_row}. *)
val summary_header : string

(** One CSV line: status, degradation, normalized, bound, #failed links,
    scenario probability, healthy and failed performance, elapsed
    seconds, B&B nodes. *)
val summary_row : Analysis.report -> string

(** Header line matching {!pair_rows}. *)
val pair_header : string

(** One CSV line per demand pair: src, dst, worst-case demand, healthy
    flow, failed flow, loss. *)
val pair_rows : Analysis.report -> string list

(** Full CSV document (summary section then per-pair section). *)
val to_csv : Analysis.report -> string

val save : Analysis.report -> string -> unit
