(** The clustering scheme of §6 (Algorithm 1).

    Solving jointly for demands and failures on a large topology is slow;
    Algorithm 1 approximates the worst-case demand matrix block by block:
    nodes are partitioned into clusters, and for every (source cluster,
    destination cluster) pair the demands of that block are freed while
    all other demands stay fixed at the values found so far (initially
    zero). Every block solve still sees the full topology, all paths and
    all failure scenarios. A final solve with the assembled fixed demand
    matrix produces the failure scenario.

    Clustering trades optimality for runtime (§8.5: ~69% faster at ~15%
    lower degradation in the paper's setup). *)

(** [partition topo ~clusters] assigns each node a cluster id in
    [0, clusters), by BFS growth from spread-out seeds (balanced,
    connectivity-aware). *)
val partition : Wan.Topology.t -> clusters:int -> int array

type result = {
  report : Analysis.report;  (** final full solve at the fixed demand *)
  demand : Traffic.Demand.t;  (** the assembled demand matrix *)
  block_solves : int;
  total_elapsed : float;
}

(** [analyze ~options ~clusters topo paths envelope] runs Algorithm 1.
    [options.time_limit] is split evenly across all solver invocations
    (the §8.5 experiment design). [clusters = 1] degenerates to a single
    free-demand solve followed by a fixed-demand solve. *)
val analyze :
  ?options:Analysis.options ->
  clusters:int ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Envelope.t ->
  result
