type encoding = Kkt | Strong_duality of { levels : int }

type goal = Max_degradation | Min_failed_performance

type spec = {
  objective : Te.Formulation.objective;
  encoding : encoding;
  goal : goal;
  threshold : float option;
  max_failures : int option;
  connected_enforced : bool;
  naive_failover : bool;
  srlgs : Failure.Srlg.t list;
}

let default_spec =
  {
    objective = Te.Formulation.Total_flow;
    encoding = Strong_duality { levels = 5 };
    goal = Max_degradation;
    threshold = None;
    max_failures = None;
    connected_enforced = false;
    naive_failover = false;
    srlgs = [];
  }

type built = {
  model : Milp.Model.t;
  fm : Failure_model.t;
  healthy : Inner.t;
  failed : Inner.t;
  demand_exprs : ((int * int) * Milp.Linexpr.t) list;
  degradation : Milp.Linexpr.t;
  healthy_index : Te.Formulation.index;
  failed_index : Te.Formulation.index;
  branch_priority : int -> int;
}

let evar (v : Milp.Model.var) = Milp.Linexpr.var v.Milp.Model.vid

(* Demand variables per the chosen encoding. Returns (expr per pair,
   binary var ids introduced). *)
let make_demands m spec envelope =
  let pairs = Traffic.Envelope.pairs envelope in
  List.map
    (fun (src, dst) ->
      let lo = Traffic.Envelope.lo_volume envelope ~src ~dst in
      let hi = Traffic.Envelope.hi_volume envelope ~src ~dst in
      let expr =
        if Float.abs (hi -. lo) < 1e-12 then Milp.Linexpr.const lo
        else
          match spec.encoding with
          | Kkt ->
            let d =
              Milp.Model.continuous ~lb:lo ~ub:hi m (Printf.sprintf "d_%d_%d" src dst)
            in
            evar d
          | Strong_duality { levels } ->
            if levels < 2 then invalid_arg "Bilevel: need >= 2 demand levels";
            (* d = sum_q level_q * delta_q with exactly one delta set *)
            let deltas =
              List.init levels (fun q ->
                  Milp.Model.binary m (Printf.sprintf "dq_%d_%d_%d" src dst q))
            in
            Milp.Model.add_cons m
              ~name:(Printf.sprintf "dlvl_%d_%d" src dst)
              (Milp.Linexpr.sum (List.map evar deltas))
              Milp.Model.Eq 1.;
            let step = (hi -. lo) /. float_of_int (levels - 1) in
            Milp.Linexpr.sum
              (List.mapi
                 (fun q dv ->
                   Milp.Linexpr.var
                     ~coeff:(lo +. (step *. float_of_int q))
                     dv.Milp.Model.vid)
                 deltas)
      in
      ((src, dst), expr))
    pairs

let primaries_only paths =
  List.map (fun (p : Netpath.Path_set.pair) -> { p with Netpath.Path_set.backup = [] }) paths

let build spec topo paths envelope =
  if spec.naive_failover && spec.encoding <> Kkt then
    invalid_arg "Bilevel.build: naive fail-over requires the Kkt encoding";
  let m = Milp.Model.create ~name:"raha" () in
  let fm = Failure_model.build m topo paths in
  (match spec.threshold with
  | Some t -> Failure_model.add_probability_threshold m fm ~threshold:t
  | None -> ());
  (match spec.max_failures with
  | Some k -> Failure_model.add_max_failures m fm ~k
  | None -> ());
  if spec.connected_enforced then Failure_model.add_connected_enforced m fm;
  Failure_model.add_srlgs m fm spec.srlgs;
  let demand_exprs = make_demands m spec envelope in
  let demand_of ~src ~dst =
    match List.assoc_opt (src, dst) demand_exprs with
    | Some e ->
      if Milp.Linexpr.is_constant e then Te.Formulation.C (Milp.Linexpr.constant e)
      else Te.Formulation.E e
    | None -> Te.Formulation.C 0.
  in
  let d_max = Float.max 1e-9 (Traffic.Envelope.max_hi envelope) in
  let is_mlu = match spec.objective with Te.Formulation.Mlu _ -> true | _ -> false in
  (* --- healthy network: primaries only, full capacities, folded in.
     §6 fast path: with a fixed demand matrix the healthy optimum is a
     constant that we solve independently, shrinking the MILP. --- *)
  let fixed_fast =
    Traffic.Envelope.is_fixed envelope
    && (not spec.naive_failover)
    && (match spec.objective with Te.Formulation.Max_min _ -> false | _ -> true)
  in
  let healthy_spec, healthy_index =
    Te.Formulation.build ~objective:spec.objective ~topo ~paths:(primaries_only paths)
      ~lag_cap:(fun e -> Te.Formulation.C (Wan.Lag.capacity (Wan.Topology.lag topo e)))
      ~demand:demand_of ~d_max ()
  in
  let healthy =
    if fixed_fast then begin
      let d =
        Traffic.Demand.of_list
          (List.map
             (fun (src, dst) ->
               ((src, dst), Traffic.Envelope.lo_volume envelope ~src ~dst))
             (Traffic.Envelope.pairs envelope))
      in
      match Te.Simulate.healthy ~objective:spec.objective topo paths d with
      | Some h ->
        {
          Inner.xs = [||];
          duals = [||];
          objective = Milp.Linexpr.const h.Te.Simulate.performance;
        }
      | None ->
        invalid_arg "Bilevel.build: the healthy network cannot route the fixed demand"
    end
    else Inner.embed_primal m ~prefix:"h" healthy_spec
  in
  ignore healthy_spec;
  (* --- failed network --- *)
  let lag_cap e =
    if is_mlu then Te.Formulation.C (Wan.Lag.capacity (Wan.Topology.lag topo e))
    else Te.Formulation.E fm.Failure_model.lag_cap.(e)
  in
  (* MLU availability must combine Eq. 5 activation with the path being
     up (Appendix A: capacity rows stay constant, so a down path must be
     blocked through its extension capacity). *)
  let mlu_avail = Hashtbl.create 16 in
  let path_cap ~pair ~path =
    let n_primary =
      (List.nth paths pair : Netpath.Path_set.pair) |> Netpath.Path_set.num_primary
    in
    if not is_mlu then begin
      if path < n_primary then None (* primaries: capacity rows suffice *)
      else
        match fm.Failure_model.avail.(pair).(path) with
        | Some z -> Some (Te.Formulation.E (Milp.Linexpr.var ~coeff:d_max z.Milp.Model.vid))
        | None -> None
    end
    else begin
      let u_kp = fm.Failure_model.path_down.(pair).(path) in
      if path < n_primary then
        (* cap = d_max * (1 - u_kp) *)
        Some
          (Te.Formulation.E
             (Milp.Linexpr.of_terms ~const:d_max [ (-.d_max, u_kp.Milp.Model.vid) ]))
      else begin
        match fm.Failure_model.avail.(pair).(path) with
        | None -> None
        | Some z ->
          let a =
            match Hashtbl.find_opt mlu_avail (pair, path) with
            | Some a -> a
            | None ->
              let not_down =
                Milp.Model.binary m (Printf.sprintf "nd_k%d_p%d" pair path)
              in
              Milp.Model.add_cons_expr m
                ~name:(Printf.sprintf "nd_def_k%d_p%d" pair path)
                (evar not_down) Milp.Model.Eq
                (Milp.Linexpr.of_terms ~const:1. [ (-1., u_kp.Milp.Model.vid) ]);
              let a =
                Milp.Linearize.bool_and m
                  ~name:(Printf.sprintf "av_k%d_p%d" pair path)
                  [ z; not_down ]
              in
              Hashtbl.replace mlu_avail (pair, path) a;
              a
          in
          Some (Te.Formulation.E (Milp.Linexpr.var ~coeff:d_max a.Milp.Model.vid))
      end
    end
  in
  let failed_spec, failed_index =
    Te.Formulation.build ~objective:spec.objective ~topo ~paths ~lag_cap ~demand:demand_of
      ~path_cap ~d_max ()
  in
  (* naive fail-over: failed flows capped by healthy primary flows (§5.1) *)
  let failed_spec =
    if not spec.naive_failover then failed_spec
    else begin
      let extra = ref [] in
      Array.iteri
        (fun k (pc : Te.Formulation.pair_cols) ->
          let hpc = healthy_index.Te.Formulation.pair_arr.(k) in
          Array.iteri
            (fun j col ->
              let jh =
                if j < pc.Te.Formulation.n_primary then Some j
                else begin
                  let r = j - pc.Te.Formulation.n_primary in
                  if r < pc.Te.Formulation.n_primary then Some r else None
                end
              in
              match jh with
              | None -> ()
              | Some jh ->
                let hvar = healthy.Inner.xs.(hpc.Te.Formulation.path_cols.(jh)) in
                extra :=
                  {
                    Te.Lp_spec.rname = Printf.sprintf "naive_k%d_p%d" k j;
                    terms = [ (col, 1.) ];
                    rel = Te.Lp_spec.Le;
                    rhs = Te.Lp_spec.Outer (evar hvar);
                    slack_bound = d_max;
                  }
                  :: !extra)
            pc.Te.Formulation.path_cols)
        failed_index.Te.Formulation.pair_arr;
      Te.Formulation.add_rows failed_spec !extra
    end
  in
  let failed =
    match spec.encoding with
    | Kkt -> Inner.encode_kkt m ~prefix:"f" failed_spec
    | Strong_duality _ -> Inner.encode_strong_duality m ~prefix:"f" failed_spec
  in
  (* --- objective --- *)
  let degradation =
    match (spec.goal, spec.objective) with
    | Max_degradation, (Te.Formulation.Total_flow | Te.Formulation.Max_min _) ->
      Milp.Linexpr.sub healthy.Inner.objective failed.Inner.objective
    | Max_degradation, Te.Formulation.Mlu _ ->
      Milp.Linexpr.sub failed.Inner.objective healthy.Inner.objective
    | Min_failed_performance, (Te.Formulation.Total_flow | Te.Formulation.Max_min _) ->
      Milp.Linexpr.neg failed.Inner.objective
    | Min_failed_performance, Te.Formulation.Mlu _ -> failed.Inner.objective
  in
  Milp.Model.set_objective m Milp.Model.Maximize degradation;
  (* branch link-failure binaries first: they determine the scenario *)
  let link_ids = Hashtbl.create 64 in
  Array.iter
    (Array.iter (fun (v : Milp.Model.var) -> Hashtbl.replace link_ids v.Milp.Model.vid ()))
    fm.Failure_model.link_down;
  let avail_ids = Hashtbl.create 64 in
  Array.iter
    (Array.iter (function
      | Some (v : Milp.Model.var) -> Hashtbl.replace avail_ids v.Milp.Model.vid ()
      | None -> ()))
    fm.Failure_model.avail;
  (* demand-level binaries drive the McCormick relaxation: branch them
     right after the link binaries *)
  let demand_ids = Hashtbl.create 64 in
  List.iter
    (fun (_, e) ->
      Milp.Linexpr.iter
        (fun vid _ ->
          if (Milp.Model.var_of_id m vid).Milp.Model.kind = Milp.Model.Binary then
            Hashtbl.replace demand_ids vid ())
        e)
    demand_exprs;
  let branch_priority id =
    if Hashtbl.mem link_ids id then 100
    else if Hashtbl.mem demand_ids id then 75
    else if Hashtbl.mem avail_ids id then 50
    else 0
  in
  {
    model = m;
    fm;
    healthy;
    failed;
    demand_exprs;
    degradation;
    healthy_index;
    failed_index;
    branch_priority;
  }

let demand_of_solution built sol =
  Traffic.Demand.of_list
    (List.map
       (fun (pair, expr) ->
         (pair, Float.max 0. (Milp.Linexpr.eval sol.Milp.Solver.values expr)))
       built.demand_exprs)

let hint built ~scenario ~demand =
  let fm = built.fm in
  let topo = fm.Failure_model.topo in
  let out = ref [] in
  let fix (v : Milp.Model.var) x = out := (v.Milp.Model.vid, x) :: !out in
  Array.iteri
    (fun e row ->
      Array.iteri
        (fun i u ->
          fix u (if Failure.Scenario.is_down scenario ~lag:e ~link:i then 1. else 0.))
        row;
      fix fm.Failure_model.lag_down.(e)
        (if Failure.Scenario.lag_down topo scenario e then 1. else 0.))
    fm.Failure_model.link_down;
  List.iteri
    (fun k (pair : Netpath.Path_set.pair) ->
      let all = Array.of_list (Netpath.Path_set.all_paths pair) in
      let down =
        Array.map
          (fun p -> Failure.Scenario.path_down topo scenario (Netpath.Path.lag_list p))
          all
      in
      Array.iteri (fun j d -> fix fm.Failure_model.path_down.(k).(j) (if d then 1. else 0.)) down;
      let n_primary = Netpath.Path_set.num_primary pair in
      let failed_before = ref 0 in
      Array.iteri
        (fun j _ ->
          (match fm.Failure_model.avail.(k).(j) with
          | Some z ->
            let active = !failed_before + n_primary - j - 1 >= 0 in
            fix z (if active then 1. else 0.)
          | None -> ());
          if down.(j) then incr failed_before)
        all)
    fm.Failure_model.paths;
  (* demand levels: snap to the nearest level (quantized) or fix the
     continuous demand variable (Kkt) *)
  List.iter
    (fun ((src, dst), expr) ->
      let v = Traffic.Demand.volume demand ~src ~dst in
      let terms = Milp.Linexpr.terms expr in
      match terms with
      | [] -> () (* constant demand *)
      | [ (coeff, vid) ] when coeff = 1. && Milp.Linexpr.constant expr = 0. ->
        out := (vid, v) :: !out (* continuous demand variable *)
      | _ ->
        (* quantized: pick the level closest to v *)
        let best = ref None in
        List.iter
          (fun (level, vid) ->
            match !best with
            | None -> best := Some (level, vid)
            | Some (l, _) -> if Float.abs (level -. v) < Float.abs (l -. v) then best := Some (level, vid))
          terms;
        (match !best with
        | Some (_, chosen) ->
          List.iter (fun (_, vid) -> out := ((vid, if vid = chosen then 1. else 0.)) :: !out) terms
        | None -> ()))
    built.demand_exprs;
  !out
