type step = {
  report : Analysis.report;
  lag_links_added : (int * int) list;
  new_lags_added : ((int * int) * int) list;
}

type result = {
  steps : step list;
  final : Analysis.report;
  topo : Wan.Topology.t;
  total_links_added : int;
  converged : bool;
}

let evar (v : Milp.Model.var) = Milp.Linexpr.var v.Milp.Model.vid

let avg_link_capacity topo =
  let lags = Wan.Topology.lags topo in
  let total = Array.fold_left (fun acc l -> acc +. Wan.Lag.capacity l) 0. lags in
  let links = float_of_int (max 1 (Wan.Topology.num_links topo)) in
  total /. links

let lag_mean_fail_prob (lag : Wan.Lag.t) =
  let s = Array.fold_left (fun acc (l : Wan.Lag.link) -> acc +. l.Wan.Lag.fail_prob) 0. lag.Wan.Lag.links in
  s /. float_of_int (Wan.Lag.num_links lag)

(* per-pair flow the healthy network achieves at demand [d] *)
let healthy_targets topo paths d =
  match Te.Simulate.healthy topo paths d with
  | None -> None
  | Some h ->
    Some
      (Array.to_list
         (Array.mapi
            (fun k (pc : Te.Formulation.pair_cols) ->
              ((pc.Te.Formulation.src, pc.Te.Formulation.dst),
               Te.Formulation.pair_flow h.Te.Simulate.index k h.Te.Simulate.flows))
            h.Te.Simulate.index.Te.Formulation.pair_arr))

(* Minimum links to add to existing LAGs so the network under [scenario]
   carries [targets] (path form; availability per Eq. 5). *)
let solve_lag_augment topo paths scenario targets ~link_capacity =
  let m = Milp.Model.create ~name:"augment" () in
  let lags = Wan.Topology.lags topo in
  let total_target = List.fold_left (fun acc (_, t) -> acc +. t) 0. targets in
  let max_links = Float.to_int (Float.ceil (total_target /. link_capacity)) + 1 in
  let adds =
    Array.map
      (fun (lag : Wan.Lag.t) ->
        Milp.Model.integer ~lb:0. ~ub:(float_of_int max_links) m
          (Printf.sprintf "add_e%d" lag.Wan.Lag.lag_id))
      lags
  in
  (* Flow variables on every configured path: adding links to a fully
     failed LAG revives the paths through it, so no path is excluded a
     priori (the next analysis iteration re-checks the augmented network
     under the true fail-over discipline). *)
  let flows =
    Array.of_list
      (List.mapi
         (fun k (p : Netpath.Path_set.pair) ->
           let all = Array.of_list (Netpath.Path_set.all_paths p) in
           Array.mapi
             (fun j path ->
               Some (Milp.Model.continuous m (Printf.sprintf "af_k%d_p%d" k j), path))
             all)
         paths)
  in
  (* per-pair targets *)
  List.iteri
    (fun k ((src, dst), target) ->
      ignore src;
      ignore dst;
      let terms =
        Array.to_list flows.(k)
        |> List.filter_map (Option.map (fun (v, _) -> evar v))
      in
      if terms <> [] then
        Milp.Model.add_cons m
          ~name:(Printf.sprintf "target_k%d" k)
          (Milp.Linexpr.sum terms) Milp.Model.Ge target
      else if target > 1e-9 then
        (* no path survives: capacity on existing LAGs cannot help *)
        Milp.Model.add_cons m ~name:(Printf.sprintf "unreachable_k%d" k)
          Milp.Linexpr.zero Milp.Model.Ge target)
    targets;
  (* capacities: live capacity + added links (added links do not fail in
     the current scenario — they are new) *)
  Array.iter
    (fun (lag : Wan.Lag.t) ->
      let e = lag.Wan.Lag.lag_id in
      let terms = ref [] in
      Array.iter
        (fun row ->
          Array.iter
            (function
              | Some (v, path) ->
                if Netpath.Path.mem_lag path e then terms := (1., v.Milp.Model.vid) :: !terms
              | None -> ())
            row)
        flows;
      if !terms <> [] then begin
        let live = Failure.Scenario.lag_capacity topo scenario e in
        Milp.Model.add_cons_expr m
          ~name:(Printf.sprintf "acap_e%d" e)
          (Milp.Linexpr.of_terms !terms)
          Milp.Model.Le
          (Milp.Linexpr.of_terms ~const:live [ (link_capacity, adds.(e).Milp.Model.vid) ])
      end)
    lags;
  Milp.Model.set_objective m Milp.Model.Minimize
    (Milp.Linexpr.sum (Array.to_list (Array.map evar adds)));
  let sol = Milp.Solver.solve m in
  match sol.Milp.Solver.status with
  | Milp.Solver.Optimal | Milp.Solver.Feasible ->
    let added = ref [] in
    Array.iteri
      (fun e v ->
        let n = Float.to_int (Float.round (Milp.Solver.value sol v)) in
        if n > 0 then added := (e, n) :: !added)
      adds;
    Some (List.rev !added)
  | _ -> None

let apply_lag_additions topo additions ~link_capacity ~can_fail =
  List.fold_left
    (fun t (e, n) ->
      let lag = Wan.Topology.lag t e in
      let prob = if can_fail then lag_mean_fail_prob lag else 0. in
      let extra =
        List.init n (fun _ -> { Wan.Lag.link_capacity; fail_prob = prob })
      in
      Wan.Topology.with_lag_links t ~lag_id:e
        (Array.to_list lag.Wan.Lag.links @ extra))
    topo additions

let needs_augment report ~tolerance =
  match report.Analysis.status with
  | Milp.Solver.Optimal | Milp.Solver.Feasible ->
    report.Analysis.normalized > tolerance
  | Milp.Solver.Infeasible | Milp.Solver.Unbounded | Milp.Solver.Unknown -> false

let augment_lags ?(options = Analysis.default_options) ?link_capacity
    ?(new_capacity_can_fail = true) ?(tolerance = 1e-6) ?(max_steps = 10) topo paths
    envelope =
  let link_capacity =
    match link_capacity with Some c -> c | None -> avg_link_capacity topo
  in
  let rec loop topo steps n =
    let report = Analysis.analyze ~options topo paths envelope in
    if (not (needs_augment report ~tolerance)) || n >= max_steps then
      let total =
        List.fold_left
          (fun acc s -> List.fold_left (fun a (_, k) -> a + k) acc s.lag_links_added)
          0 steps
      in
      {
        steps = List.rev steps;
        final = report;
        topo;
        total_links_added = total;
        converged = not (needs_augment report ~tolerance);
      }
    else begin
      let d = report.Analysis.worst_demand in
      let scenario = report.Analysis.scenario in
      match healthy_targets topo paths d with
      | None -> (* cannot even route on the healthy network: stop *)
        {
          steps = List.rev steps;
          final = report;
          topo;
          total_links_added = 0;
          converged = false;
        }
      | Some targets -> (
        match solve_lag_augment topo paths scenario targets ~link_capacity with
        | None | Some [] ->
          (* no augment can fix this scenario (e.g. full disconnection) *)
          {
            steps = List.rev steps;
            final = report;
            topo;
            total_links_added =
              List.fold_left
                (fun acc s -> List.fold_left (fun a (_, k) -> a + k) acc s.lag_links_added)
                0 steps;
            converged = false;
          }
        | Some additions ->
          let topo' =
            apply_lag_additions topo additions ~link_capacity
              ~can_fail:new_capacity_can_fail
          in
          let step = { report; lag_links_added = additions; new_lags_added = [] } in
          loop topo' (step :: steps) (n + 1))
    end
  in
  loop topo [] 0

(* --- new-LAG augmentation via the edge form (Appendix C) -------------- *)

let solve_new_lag_augment topo paths scenario targets ~candidates ~link_capacity =
  let m = Milp.Model.create ~name:"augment_edges" () in
  let lags = Wan.Topology.lags topo in
  let total_target = List.fold_left (fun acc (_, t) -> acc +. t) 0. targets in
  let max_links = Float.to_int (Float.ceil (total_target /. link_capacity)) + 1 in
  (* candidate LAG variables *)
  let cand_vars =
    List.map
      (fun (a, b) ->
        ((a, b),
         Milp.Model.integer ~lb:0. ~ub:(float_of_int max_links) m
           (Printf.sprintf "newlag_%d_%d" a b)))
      candidates
  in
  (* Appendix C restriction: a demand may use LAGs on its pre-failure
     paths plus candidate LAGs *)
  let allowed =
    List.map
      (fun (p : Netpath.Path_set.pair) ->
        let set = Hashtbl.create 16 in
        List.iter
          (fun path -> List.iter (fun e -> Hashtbl.replace set e ()) (Netpath.Path.lag_list path))
          (Netpath.Path_set.all_paths p);
        set)
      paths
  in
  let n = Wan.Topology.num_nodes topo in
  (* directed flow vars per (pair, arc): existing allowed LAGs + candidates *)
  let fvar = Hashtbl.create 256 in
  let arcs = ref [] in
  Array.iter
    (fun (lag : Wan.Lag.t) -> arcs := `Lag lag :: !arcs)
    lags;
  List.iter (fun ((a, b), v) -> arcs := `Cand (a, b, v) :: !arcs) cand_vars;
  let arcs = List.rev !arcs in
  List.iteri
    (fun k ((_, _), _) ->
      let allowed_k = List.nth allowed k in
      List.iteri
        (fun ai arc ->
          let ok =
            match arc with
            | `Lag (lag : Wan.Lag.t) -> Hashtbl.mem allowed_k lag.Wan.Lag.lag_id
            | `Cand _ -> true
          in
          if ok then begin
            let v0 = Milp.Model.continuous m (Printf.sprintf "nf_k%d_a%d_f" k ai) in
            let v1 = Milp.Model.continuous m (Printf.sprintf "nf_k%d_a%d_r" k ai) in
            Hashtbl.replace fvar (k, ai) (v0, v1)
          end)
        arcs)
    targets;
  let ends = function
    | `Lag (lag : Wan.Lag.t) -> (lag.Wan.Lag.src, lag.Wan.Lag.dst)
    | `Cand (a, b, _) -> (a, b)
  in
  (* conservation + targets *)
  List.iteri
    (fun k ((src, dst), target) ->
      for v = 0 to n - 1 do
        let expr = ref Milp.Linexpr.zero in
        List.iteri
          (fun ai arc ->
            match Hashtbl.find_opt fvar (k, ai) with
            | None -> ()
            | Some (f0, f1) ->
              let s, d = ends arc in
              if d = v then expr := Milp.Linexpr.add_term !expr 1. f0.Milp.Model.vid;
              if s = v then expr := Milp.Linexpr.add_term !expr (-1.) f0.Milp.Model.vid;
              if s = v then expr := Milp.Linexpr.add_term !expr 1. f1.Milp.Model.vid;
              if d = v then expr := Milp.Linexpr.add_term !expr (-1.) f1.Milp.Model.vid)
          arcs;
        let net =
          if v = dst then target else if v = src then -.target else 0.
        in
        Milp.Model.add_cons m
          ~name:(Printf.sprintf "ncons_k%d_v%d" k v)
          !expr Milp.Model.Eq net
      done)
    targets;
  (* capacities *)
  List.iteri
    (fun ai arc ->
      let expr = ref Milp.Linexpr.zero in
      List.iteri
        (fun k _ ->
          match Hashtbl.find_opt fvar (k, ai) with
          | None -> ()
          | Some (f0, f1) ->
            expr := Milp.Linexpr.add_term !expr 1. f0.Milp.Model.vid;
            expr := Milp.Linexpr.add_term !expr 1. f1.Milp.Model.vid)
        targets;
      if not (Milp.Linexpr.is_constant !expr) then
        match arc with
        | `Lag lag ->
          let live = Failure.Scenario.lag_capacity topo scenario lag.Wan.Lag.lag_id in
          Milp.Model.add_cons m ~name:(Printf.sprintf "ncap_a%d" ai) !expr Milp.Model.Le live
        | `Cand (_, _, v) ->
          Milp.Model.add_cons_expr m
            ~name:(Printf.sprintf "ncap_a%d" ai)
            !expr Milp.Model.Le
            (Milp.Linexpr.var ~coeff:link_capacity v.Milp.Model.vid))
    arcs;
  Milp.Model.set_objective m Milp.Model.Minimize
    (Milp.Linexpr.sum (List.map (fun (_, v) -> evar v) cand_vars));
  let sol = Milp.Solver.solve m in
  match sol.Milp.Solver.status with
  | Milp.Solver.Optimal | Milp.Solver.Feasible ->
    Some
      (List.filter_map
         (fun ((a, b), v) ->
           let k = Float.to_int (Float.round (Milp.Solver.value sol v)) in
           if k > 0 then Some ((a, b), k) else None)
         cand_vars)
  | _ -> None

let topo_mean_fail_prob topo =
  let lags = Wan.Topology.lags topo in
  let s = Array.fold_left (fun acc l -> acc +. lag_mean_fail_prob l) 0. lags in
  s /. float_of_int (max 1 (Array.length lags))

let apply_new_lags topo additions ~link_capacity ~can_fail =
  let prob = if can_fail then topo_mean_fail_prob topo else 0. in
  List.fold_left
    (fun t ((a, b), k) ->
      let links = List.init k (fun _ -> { Wan.Lag.link_capacity; fail_prob = prob }) in
      match Wan.Topology.lag_between t a b with
      | Some lag ->
        Wan.Topology.with_lag_links t ~lag_id:lag.Wan.Lag.lag_id
          (Array.to_list lag.Wan.Lag.links @ links)
      | None -> Wan.Topology.add_lag t ~src:a ~dst:b links)
    topo additions

let augment_new_lags ?(options = Analysis.default_options) ?link_capacity
    ?(new_capacity_can_fail = false) ?(tolerance = 1e-6) ?(max_steps = 10) ~candidates
    ~repath topo envelope =
  let link_capacity =
    match link_capacity with Some c -> c | None -> avg_link_capacity topo
  in
  let rec loop topo steps n =
    let paths = repath topo in
    let report = Analysis.analyze ~options topo paths envelope in
    let total () =
      List.fold_left
        (fun acc s -> List.fold_left (fun a (_, k) -> a + k) acc s.new_lags_added)
        0 steps
    in
    if (not (needs_augment report ~tolerance)) || n >= max_steps then
      {
        steps = List.rev steps;
        final = report;
        topo;
        total_links_added = total ();
        converged = not (needs_augment report ~tolerance);
      }
    else begin
      let d = report.Analysis.worst_demand in
      match healthy_targets topo paths d with
      | None ->
        { steps = List.rev steps; final = report; topo; total_links_added = total ();
          converged = false }
      | Some targets -> (
        match
          solve_new_lag_augment topo paths report.Analysis.scenario targets ~candidates
            ~link_capacity
        with
        | None | Some [] ->
          { steps = List.rev steps; final = report; topo; total_links_added = total ();
            converged = false }
        | Some additions ->
          let topo' =
            apply_new_lags topo additions ~link_capacity ~can_fail:new_capacity_can_fail
          in
          let step = { report; lag_links_added = []; new_lags_added = additions } in
          loop topo' (step :: steps) (n + 1))
    end
  in
  loop topo [] 0
