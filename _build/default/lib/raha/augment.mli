(** Capacity augmentation (§7 and Appendix C).

    Iterative loop: run the analysis; if a probable failure scenario
    degrades performance, solve for the cheapest capacity addition that
    lets the failed network match the healthy network's per-demand flows
    under that scenario; apply it and repeat until no probable
    degradation remains (the paper observes convergence in 2-6 steps).

    Two augment families:
    - {!augment_lags}: add links to existing LAGs (the preferred and
      simpler form). New links either can fail — with the average failure
      probability of their LAG, as §8.6 prescribes — or are assumed
      failure-free (the prior-work setting of Fig. 17).
    - {!augment_new_lags}: add whole new LAGs drawn from an
      operator-supplied candidate edge list, sized with the
      edge-formulation MCF of Appendix C (new LAGs change the path set,
      which the path form cannot express). *)

type step = {
  report : Analysis.report;  (** the analysis that triggered this step *)
  lag_links_added : (int * int) list;  (** (lag_id, #links) *)
  new_lags_added : ((int * int) * int) list;  (** ((src, dst), #links) *)
}

type result = {
  steps : step list;  (** one per iteration that needed an augment *)
  final : Analysis.report;  (** analysis of the augmented network *)
  topo : Wan.Topology.t;  (** the augmented topology *)
  total_links_added : int;
  converged : bool;  (** final degradation below tolerance *)
}

(** [augment_lags ~options ~link_capacity topo paths envelope] runs the
    existing-LAG loop. [link_capacity] is the capacity of each added link
    (defaults to the topology's average per-link capacity).
    [new_capacity_can_fail] (default [true]) assigns added links the mean
    failure probability of their LAG; [false] reproduces the prior-work
    assumption. [tolerance] is the normalized degradation considered
    "no impact" (default 1e-6). [max_steps] bounds the loop. *)
val augment_lags :
  ?options:Analysis.options ->
  ?link_capacity:float ->
  ?new_capacity_can_fail:bool ->
  ?tolerance:float ->
  ?max_steps:int ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Envelope.t ->
  result

(** [augment_new_lags ~candidates ...] allows adding new LAGs between the
    candidate node pairs (plus links on existing LAGs). Paths are
    recomputed (same primary/backup counts and selection scheme inputs
    are the caller's responsibility: pass a [repath] function). *)
val augment_new_lags :
  ?options:Analysis.options ->
  ?link_capacity:float ->
  ?new_capacity_can_fail:bool ->
  ?tolerance:float ->
  ?max_steps:int ->
  candidates:(int * int) list ->
  repath:(Wan.Topology.t -> Netpath.Path_set.t) ->
  Wan.Topology.t ->
  Traffic.Envelope.t ->
  result
