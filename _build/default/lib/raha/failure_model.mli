(** The outer problem's failure machinery (§5 of the paper).

    Adds to the outer MILP:
    - per-link failure binaries [u_le];
    - variable LAG capacity expressions [c_e = sum c_le (1 - u_le)];
    - LAG-down binaries [u_e] (Eq. 3: down iff {e all} links down);
    - path-down binaries [u_kp] (Eq. 4: down when any LAG on it is down);
    - path availability binaries [z_kpj] linearizing Eq. 5's indicator:
      path [j] (0-indexed, primaries first) may carry traffic iff
      [#down higher-priority paths + n_primary - j - 1 >= 0]. Primaries
      are always available and get no binary.

    The inner problems treat all of these as constants (blue in
    Table 2). *)

type t = {
  topo : Wan.Topology.t;
  paths : Netpath.Path_set.t;
  link_down : Milp.Model.var array array;  (** [lag_id].[link_idx] *)
  lag_down : Milp.Model.var array;
  path_down : Milp.Model.var array array;  (** [pair_idx].[path_idx] *)
  avail : Milp.Model.var option array array;
      (** [pair_idx].[path_idx]; [None] for always-available primaries *)
  lag_cap : Milp.Linexpr.t array;  (** live capacity of each LAG *)
}

val build : Milp.Model.t -> Wan.Topology.t -> Netpath.Path_set.t -> t

(** Availability of a path as a 0/1-valued expression (constant 1 for
    primaries). *)
val avail_expr : t -> pair:int -> path:int -> Milp.Linexpr.t

(** [add_probability_threshold m t ~threshold] adds the log-probability
    constraint of §5.1: scenarios must have probability >= threshold.
    @raise Invalid_argument if a link has [fail_prob = 0] (it could never
    fail; such links are excluded by fixing their binaries instead). *)
val add_probability_threshold : Milp.Model.t -> t -> threshold:float -> unit

(** [add_max_failures m t ~k]: at most [k] failed links (§5.1). *)
val add_max_failures : Milp.Model.t -> t -> k:int -> unit

(** [add_connected_enforced m t]: no pair may lose all of its paths
    (the CE constraint of §5.1/§8.1). *)
val add_connected_enforced : Milp.Model.t -> t -> unit

(** [add_srlgs m t groups] forces each group's member links to fail
    together. *)
val add_srlgs : Milp.Model.t -> t -> Failure.Srlg.t list -> unit

(** Read the failure scenario out of a solution. *)
val scenario_of_solution : t -> Milp.Solver.solution -> Failure.Scenario.t
