lib/raha/report.mli: Analysis
