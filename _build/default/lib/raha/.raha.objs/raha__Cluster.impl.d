lib/raha/cluster.ml: Analysis Array Float List Milp Queue Traffic Wan
