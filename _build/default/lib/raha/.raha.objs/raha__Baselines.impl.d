lib/raha/baselines.ml: Analysis Bilevel Float Te Traffic Wan
