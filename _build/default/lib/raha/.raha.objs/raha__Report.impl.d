lib/raha/report.ml: Analysis Fun List Milp Printf String Traffic
