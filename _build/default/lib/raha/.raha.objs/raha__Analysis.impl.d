lib/raha/analysis.ml: Array Bilevel Failure Failure_model Float Format Inner List Milp Netpath Option Te Traffic Wan
