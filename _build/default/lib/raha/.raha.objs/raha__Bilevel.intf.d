lib/raha/bilevel.mli: Failure Failure_model Inner Milp Netpath Te Traffic Wan
