lib/raha/failure_model.ml: Array Failure Float List Milp Netpath Printf Wan
