lib/raha/failure_model.mli: Failure Milp Netpath Wan
