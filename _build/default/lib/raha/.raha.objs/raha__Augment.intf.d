lib/raha/augment.mli: Analysis Netpath Traffic Wan
