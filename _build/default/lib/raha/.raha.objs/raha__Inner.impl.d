lib/raha/inner.ml: Array Float List Milp Printf Te
