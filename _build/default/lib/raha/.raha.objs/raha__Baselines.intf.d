lib/raha/baselines.mli: Analysis Netpath Traffic Wan
