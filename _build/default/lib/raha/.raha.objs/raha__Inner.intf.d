lib/raha/inner.mli: Milp Te
