lib/raha/alert.mli: Analysis Bilevel Netpath Traffic Wan
