lib/raha/augment.ml: Analysis Array Failure Float Hashtbl List Milp Netpath Option Printf Te Wan
