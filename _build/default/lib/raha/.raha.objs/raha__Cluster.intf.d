lib/raha/cluster.mli: Analysis Netpath Traffic Wan
