lib/raha/alert.ml: Analysis Bilevel Milp Traffic
