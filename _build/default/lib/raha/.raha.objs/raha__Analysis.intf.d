lib/raha/analysis.mli: Bilevel Failure Format Milp Netpath Traffic Wan
