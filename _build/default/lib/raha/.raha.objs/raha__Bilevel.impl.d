lib/raha/bilevel.ml: Array Failure Failure_model Float Hashtbl Inner List Milp Netpath Printf Te Traffic Wan
