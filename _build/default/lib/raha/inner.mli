(** Embedding the inner ("heuristic") problem into the outer MILP.

    MetaOpt requires the heuristic — the network under failure — to be a
    convex (here: linear) program so it can be replaced by its optimality
    conditions inside a single-level MILP (§4.1). Two interchangeable
    rewritings are provided:

    - {!encode_kkt}: primal + dual feasibility + complementary slackness
      linearized with big-M binaries. Exact for any affine outer
      right-hand sides (including continuous outer variables such as
      unquantized demands and naive-failover couplings).
    - {!encode_strong_duality}: primal + dual feasibility + the strong
      duality cut [c'x >= b'y], with the bilinear [b'y] expanded by exact
      McCormick products. Requires every [Outer] right-hand side to be
      affine in {e binary} outer variables (quantized demands, failure
      binaries, availability binaries); produces far tighter LP
      relaxations, so it is the default engine.

    Both rewritings force the embedded primal columns to an optimal
    solution of the inner LP for every choice of the outer variables. *)

type t = {
  xs : Milp.Model.var array;  (** primal columns, indexed like the spec *)
  duals : Milp.Model.var array;  (** one multiplier per row *)
  objective : Milp.Linexpr.t;
      (** the inner objective value in the spec's original sense *)
}

(** Embed only primal feasibility (no optimality) — used for the
    "optimal" network, whose objective is aligned with the outer
    maximization and therefore needs no reformulation. [duals] is
    empty. *)
val embed_primal : Milp.Model.t -> prefix:string -> Te.Lp_spec.t -> t

val encode_kkt : Milp.Model.t -> prefix:string -> Te.Lp_spec.t -> t

(** @raise Invalid_argument when an [Outer] rhs mentions a non-binary
    outer variable. *)
val encode_strong_duality : Milp.Model.t -> prefix:string -> Te.Lp_spec.t -> t
