(** Assembly of the single-level MILP that answers Raha's question: which
    probable failure scenario and demand matrix jointly maximize the gap
    between the design point and the failed network (§4.1, Eq. 1)?

    The healthy network's LP is folded directly into the outer
    maximization (its objective carries a [+] sign, so the outer solver
    drives it to its own optimum). The failed network is replaced by
    optimality conditions via {!Inner}. *)

type encoding =
  | Kkt  (** continuous demands; big-M complementary slackness *)
  | Strong_duality of { levels : int }
      (** demands quantized to [levels] values per pair; strong-duality
          cut with McCormick products (default; far tighter) *)

type goal =
  | Max_degradation  (** the paper's objective: relative impact *)
  | Min_failed_performance
      (** prior work's objective (QARC, Robust): absolute worst case;
          used by the Fig. 3 baselines *)

type spec = {
  objective : Te.Formulation.objective;
  encoding : encoding;
  goal : goal;
  threshold : float option;  (** scenario probability >= T (§5.1) *)
  max_failures : int option;  (** at most k failed links (§5.1) *)
  connected_enforced : bool;  (** CE constraint (§8.1) *)
  naive_failover : bool;  (** §5.1 fail-over coupling; requires [Kkt] *)
  srlgs : Failure.Srlg.t list;
}

val default_spec : spec

type built = {
  model : Milp.Model.t;
  fm : Failure_model.t;
  healthy : Inner.t;
  failed : Inner.t;
  demand_exprs : ((int * int) * Milp.Linexpr.t) list;
  degradation : Milp.Linexpr.t;  (** the outer objective expression *)
  healthy_index : Te.Formulation.index;
  failed_index : Te.Formulation.index;
  branch_priority : int -> int;
      (** link-failure binaries first, then availability binaries *)
}

(** [build spec topo paths envelope] assembles the MILP.
    @raise Invalid_argument on incompatible combinations (naive fail-over
    or fixed-free continuous demands with [Strong_duality]; MLU with
    variable LAG capacities). *)
val build :
  spec -> Wan.Topology.t -> Netpath.Path_set.t -> Traffic.Envelope.t -> built

(** Read the worst-case demand matrix out of a solution. *)
val demand_of_solution : built -> Milp.Solver.solution -> Traffic.Demand.t

(** [hint built ~scenario ~demand] is a partial assignment fixing every
    outer structural variable (link/LAG/path failure binaries, Eq. 5
    availability binaries, demand levels) to a concrete candidate. Fed to
    the solver's plunge heuristic, it turns the candidate into an
    incumbent with a handful of LP solves — Raha's equivalent of warm
    starts. Demand values are snapped to the nearest quantization
    level. *)
val hint :
  built ->
  scenario:Failure.Scenario.t ->
  demand:Traffic.Demand.t ->
  (int * float) list
