type t = {
  xs : Milp.Model.var array;
  duals : Milp.Model.var array;
  objective : Milp.Linexpr.t;
}

let evar (v : Milp.Model.var) = Milp.Linexpr.var v.Milp.Model.vid

(* Normalize the spec to maximization: c is the (possibly negated)
   objective vector used by the optimality conditions. *)
let norm_obj (spec : Te.Lp_spec.t) =
  let sign = match spec.Te.Lp_spec.sense with Te.Lp_spec.Max -> 1. | Te.Lp_spec.Min -> -1. in
  Array.map (fun (c : Te.Lp_spec.col) -> sign *. c.Te.Lp_spec.obj) spec.Te.Lp_spec.cols

let rhs_expr = function
  | Te.Lp_spec.Const c -> Milp.Linexpr.const c
  | Te.Lp_spec.Outer e -> e

let add_primal_rows m ~prefix (spec : Te.Lp_spec.t) xs =
  Array.iteri
    (fun i (r : Te.Lp_spec.row) ->
      let lhs =
        Milp.Linexpr.of_terms
          (List.map (fun (ci, coef) -> (coef, xs.(ci).Milp.Model.vid)) r.Te.Lp_spec.terms)
      in
      let rel =
        match r.Te.Lp_spec.rel with Te.Lp_spec.Le -> Milp.Model.Le | Te.Lp_spec.Eq -> Milp.Model.Eq
      in
      Milp.Model.add_cons_expr m
        ~name:(Printf.sprintf "%s_pr%d_%s" prefix i r.Te.Lp_spec.rname)
        lhs rel (rhs_expr r.Te.Lp_spec.rhs))
    spec.Te.Lp_spec.rows

let make_primal m ~prefix (spec : Te.Lp_spec.t) =
  let xs =
    Array.map
      (fun (c : Te.Lp_spec.col) ->
        Milp.Model.continuous m (prefix ^ "_" ^ c.Te.Lp_spec.cname))
      spec.Te.Lp_spec.cols
  in
  add_primal_rows m ~prefix spec xs;
  let objective =
    Milp.Linexpr.of_terms
      (Array.to_list
         (Array.mapi
            (fun i (c : Te.Lp_spec.col) -> (c.Te.Lp_spec.obj, xs.(i).Milp.Model.vid))
            spec.Te.Lp_spec.cols))
  in
  (xs, objective)

let embed_primal m ~prefix spec =
  let xs, objective = make_primal m ~prefix spec in
  { xs; duals = [||]; objective }

(* Dual variables and the dual feasibility rows A' y >= c (for the
   normalized maximization). Le rows get y >= 0; Eq rows free duals. *)
let make_duals m ~prefix (spec : Te.Lp_spec.t) =
  let bound = spec.Te.Lp_spec.dual_bound in
  let duals =
    Array.mapi
      (fun i (r : Te.Lp_spec.row) ->
        match r.Te.Lp_spec.rel with
        | Te.Lp_spec.Le ->
          Milp.Model.continuous ~lb:0. ~ub:bound m (Printf.sprintf "%s_y%d" prefix i)
        | Te.Lp_spec.Eq ->
          Milp.Model.continuous ~lb:(-.bound) ~ub:bound m (Printf.sprintf "%s_y%d" prefix i))
      spec.Te.Lp_spec.rows
  in
  let c = norm_obj spec in
  (* column-wise accumulation of A' y *)
  let n = Array.length spec.Te.Lp_spec.cols in
  let acc = Array.make n Milp.Linexpr.zero in
  Array.iteri
    (fun i (r : Te.Lp_spec.row) ->
      List.iter
        (fun (ci, coef) -> acc.(ci) <- Milp.Linexpr.add_term acc.(ci) coef duals.(i).Milp.Model.vid)
        r.Te.Lp_spec.terms)
    spec.Te.Lp_spec.rows;
  Array.iteri
    (fun j e ->
      Milp.Model.add_cons_expr m
        ~name:(Printf.sprintf "%s_dual%d" prefix j)
        e Milp.Model.Ge
        (Milp.Linexpr.const c.(j)))
    acc;
  (duals, acc, c)

let encode_kkt m ~prefix spec =
  let xs, objective = make_primal m ~prefix spec in
  let duals, aty, c = make_duals m ~prefix spec in
  let bound = spec.Te.Lp_spec.dual_bound in
  (* row complementary slackness: y_i > 0 -> row tight (Le rows only) *)
  Array.iteri
    (fun i (r : Te.Lp_spec.row) ->
      match r.Te.Lp_spec.rel with
      | Te.Lp_spec.Eq -> ()
      | Te.Lp_spec.Le ->
        let w = Milp.Model.binary m (Printf.sprintf "%s_w%d" prefix i) in
        (* y_i <= bound * w *)
        Milp.Model.add_cons_expr m
          ~name:(Printf.sprintf "%s_csr%d_a" prefix i)
          (evar duals.(i))
          Milp.Model.Le
          (Milp.Linexpr.var ~coeff:bound w.Milp.Model.vid);
        (* rhs - lhs <= slack_bound * (1 - w) *)
        let lhs =
          Milp.Linexpr.of_terms
            (List.map (fun (ci, coef) -> (coef, xs.(ci).Milp.Model.vid)) r.Te.Lp_spec.terms)
        in
        let slack = Milp.Linexpr.sub (rhs_expr r.Te.Lp_spec.rhs) lhs in
        let sb = r.Te.Lp_spec.slack_bound in
        Milp.Model.add_cons_expr m
          ~name:(Printf.sprintf "%s_csr%d_b" prefix i)
          slack Milp.Model.Le
          (Milp.Linexpr.of_terms ~const:sb [ (-.sb, w.Milp.Model.vid) ]))
    spec.Te.Lp_spec.rows;
  (* column complementary slackness: x_j > 0 -> reduced cost 0 *)
  Array.iteri
    (fun j (col : Te.Lp_spec.col) ->
      let v = Milp.Model.binary m (Printf.sprintf "%s_v%d" prefix j) in
      (* x_j <= ub_hint * v *)
      Milp.Model.add_cons_expr m
        ~name:(Printf.sprintf "%s_csc%d_a" prefix j)
        (evar xs.(j))
        Milp.Model.Le
        (Milp.Linexpr.var ~coeff:col.Te.Lp_spec.ub_hint v.Milp.Model.vid);
      (* (A'y)_j - c_j <= rc_bound * (1 - v) *)
      let rc_bound =
        let asum =
          Array.fold_left
            (fun acc (r : Te.Lp_spec.row) ->
              List.fold_left
                (fun acc (ci, coef) -> if ci = j then acc +. Float.abs coef else acc)
                acc r.Te.Lp_spec.terms)
            0. spec.Te.Lp_spec.rows
        in
        (spec.Te.Lp_spec.dual_bound *. asum) +. Float.abs c.(j) +. 1.
      in
      let reduced = Milp.Linexpr.sub aty.(j) (Milp.Linexpr.const c.(j)) in
      Milp.Model.add_cons_expr m
        ~name:(Printf.sprintf "%s_csc%d_b" prefix j)
        reduced Milp.Model.Le
        (Milp.Linexpr.of_terms ~const:rc_bound [ (-.rc_bound, v.Milp.Model.vid) ]))
    spec.Te.Lp_spec.cols;
  { xs; duals; objective }

let encode_strong_duality m ~prefix spec =
  let xs, objective = make_primal m ~prefix spec in
  let duals, _aty, c = make_duals m ~prefix spec in
  let bound = spec.Te.Lp_spec.dual_bound in
  (* b' y, with products (outer binary) * (dual) expanded via McCormick *)
  let by = ref Milp.Linexpr.zero in
  Array.iteri
    (fun i (r : Te.Lp_spec.row) ->
      let y = duals.(i) in
      let ylb = match r.Te.Lp_spec.rel with Te.Lp_spec.Le -> 0. | Te.Lp_spec.Eq -> -.bound in
      let e = rhs_expr r.Te.Lp_spec.rhs in
      (* constant part *)
      by := Milp.Linexpr.add !by (Milp.Linexpr.var ~coeff:(Milp.Linexpr.constant e) y.Milp.Model.vid);
      let term_idx = ref 0 in
      Milp.Linexpr.iter
        (fun vid coef ->
          let outer_var = Milp.Model.var_of_id m vid in
          if outer_var.Milp.Model.kind <> Milp.Model.Binary then
            invalid_arg
              (Printf.sprintf
                 "Inner.encode_strong_duality: rhs of row %s mentions non-binary var %s"
                 r.Te.Lp_spec.rname outer_var.Milp.Model.vname);
          let z =
            Milp.Linearize.product_bin_var m
              ~name:(Printf.sprintf "%s_by%d_%d" prefix i !term_idx)
              outer_var y ~lb:ylb ~ub:bound
          in
          incr term_idx;
          by := Milp.Linexpr.add_term !by coef z.Milp.Model.vid)
        e)
    spec.Te.Lp_spec.rows;
  (* strong duality: c' x >= b' y (weak duality provides <=) *)
  let cx =
    Milp.Linexpr.of_terms
      (Array.to_list (Array.mapi (fun j cj -> (cj, xs.(j).Milp.Model.vid)) c))
  in
  Milp.Model.add_cons_expr m ~name:(prefix ^ "_strong_duality") cx Milp.Model.Ge !by;
  { xs; duals; objective }
