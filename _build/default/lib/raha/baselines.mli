(** The baselines Raha is evaluated against (§8.1 "Benchmark", Fig. 3).

    - {!k_failures}: tools that bound the number of simultaneous failures
      (FFC-style, k typically <= 2) — Raha's own engine with a
      [max_failures] cap and no probability constraint;
    - {!worst_failures_at_demand}: tools that minimize the {e failed}
      network's performance at a fixed demand (QARC / Robust style),
      ignoring the design point. The report's [degradation] field is the
      implied degradation: healthy performance at the same demand minus
      the failed performance — the quantity Fig. 3 plots. *)

(** [k_failures ~options ~k topo paths envelope]. *)
val k_failures :
  ?options:Analysis.options ->
  k:int ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Envelope.t ->
  Analysis.report

(** [worst_failures_at_demand ~options topo paths demand] fixes [demand],
    finds failures minimizing the failed network's performance
    (optionally within [threshold]/[max_failures] from [options.spec]),
    and rewrites [degradation]/[normalized] as the implied degradation. *)
val worst_failures_at_demand :
  ?options:Analysis.options ->
  Wan.Topology.t ->
  Netpath.Path_set.t ->
  Traffic.Demand.t ->
  Analysis.report
