let status_str = function
  | Milp.Solver.Optimal -> "optimal"
  | Milp.Solver.Feasible -> "feasible"
  | Milp.Solver.Infeasible -> "infeasible"
  | Milp.Solver.Unbounded -> "unbounded"
  | Milp.Solver.Unknown -> "unknown"

let summary_header =
  "status,degradation,normalized,bound,failed_links,scenario_prob,healthy,failed,elapsed_s,nodes"

let summary_row (r : Analysis.report) =
  Printf.sprintf "%s,%.9g,%.9g,%.9g,%d,%.6g,%.9g,%.9g,%.3f,%d"
    (status_str r.Analysis.status)
    r.Analysis.degradation r.Analysis.normalized r.Analysis.bound
    r.Analysis.num_failed_links r.Analysis.scenario_prob r.Analysis.healthy_performance
    r.Analysis.failed_performance r.Analysis.elapsed r.Analysis.nodes

let pair_header = "src,dst,demand,healthy_flow,failed_flow,loss"

let pair_rows (r : Analysis.report) =
  List.map
    (fun ((src, dst), h, f) ->
      let d = Traffic.Demand.volume r.Analysis.worst_demand ~src ~dst in
      Printf.sprintf "%d,%d,%.9g,%.9g,%.9g,%.9g" src dst d h f (h -. f))
    r.Analysis.per_pair

let to_csv r =
  String.concat "\n"
    ((summary_header :: summary_row r :: "" :: pair_header :: pair_rows r) @ [ "" ])

let save r path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv r))
