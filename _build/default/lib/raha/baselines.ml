let k_failures ?(options = Analysis.default_options) ~k topo paths envelope =
  let spec =
    { options.Analysis.spec with Bilevel.max_failures = Some k; threshold = None }
  in
  Analysis.analyze ~options:{ options with Analysis.spec } topo paths envelope

let worst_failures_at_demand ?(options = Analysis.default_options) topo paths demand =
  let spec =
    { options.Analysis.spec with Bilevel.goal = Bilevel.Min_failed_performance }
  in
  let r =
    Analysis.analyze
      ~options:{ options with Analysis.spec }
      topo paths (Traffic.Envelope.fixed demand)
  in
  (* implied degradation relative to the design point at the same demand *)
  match Te.Simulate.healthy ~objective:spec.Bilevel.objective topo paths demand with
  | None -> r
  | Some h ->
    let healthy = h.Te.Simulate.performance in
    let degradation =
      match spec.Bilevel.objective with
      | Te.Formulation.Mlu _ -> r.Analysis.failed_performance -. healthy
      | Te.Formulation.Total_flow | Te.Formulation.Max_min _ ->
        healthy -. r.Analysis.failed_performance
    in
    let avg_cap = Float.max 1e-9 (Wan.Topology.avg_lag_capacity topo) in
    {
      r with
      Analysis.degradation;
      normalized = degradation /. avg_cap;
      healthy_performance = healthy;
    }
