let to_csv d =
  let b = Buffer.create 256 in
  List.iter
    (fun ((src, dst), v) -> Buffer.add_string b (Printf.sprintf "%d,%d,%.17g\n" src dst v))
    (Demand.entries d);
  Buffer.contents b

let of_csv s =
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ',' line |> List.map String.trim with
        | [ a; b; v ] -> (
          match (int_of_string_opt a, int_of_string_opt b, float_of_string_opt v) with
          | Some src, Some dst, Some vol -> entries := ((src, dst), vol) :: !entries
          | _ -> failwith (Printf.sprintf "line %d: bad fields in %S" lineno line))
        | _ -> failwith (Printf.sprintf "line %d: expected src,dst,volume" lineno))
    (String.split_on_char '\n' s);
  Demand.of_list (List.rev !entries)

let save d path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv d))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_csv (really_input_string ic len))
