type series = { base : Demand.t; samples : Demand.t array }

let generate ~seed ~days ~samples_per_day ~pairs ~mean_volume topo () =
  ignore topo;
  if days <= 0 || samples_per_day <= 0 then invalid_arg "Traffic_gen.generate";
  let rng = Random.State.make [| seed |] in
  let n_samples = days * samples_per_day in
  (* Per-pair mean level: log-normal around [mean_volume]; per-pair phase
     so peaks are not synchronized. *)
  let pair_params =
    List.map
      (fun p ->
        let level = mean_volume *. Float.exp (Random.State.float rng 1.2 -. 0.6) in
        let phase = Random.State.float rng (2. *. Float.pi) in
        let amplitude = 0.2 +. Random.State.float rng 0.3 in
        (p, level, phase, amplitude))
      pairs
  in
  let base =
    Demand.of_list (List.map (fun (p, level, _, _) -> (p, level)) pair_params)
  in
  let gauss () =
    (* Box-Muller *)
    let u1 = Float.max 1e-12 (Random.State.float rng 1.) in
    let u2 = Random.State.float rng 1. in
    Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
  in
  let samples =
    Array.init n_samples (fun t ->
        let tod = float_of_int (t mod samples_per_day) /. float_of_int samples_per_day in
        Demand.of_list
          (List.map
             (fun (p, level, phase, amplitude) ->
               let diurnal = 1. +. (amplitude *. Float.sin ((2. *. Float.pi *. tod) +. phase)) in
               let noise = Float.exp (0.15 *. gauss ()) in
               (p, Float.max 0. (level *. diurnal *. noise)))
             pair_params))
  in
  { base; samples }

let average s =
  let n = float_of_int (Array.length s.samples) in
  let sum =
    Array.fold_left
      (fun acc d ->
        Demand.map
          (fun ~src ~dst v -> v +. Demand.volume d ~src ~dst)
          acc)
      (Demand.map (fun ~src:_ ~dst:_ _ -> 0.) s.base)
      s.samples
  in
  Demand.scale (1. /. n) sum

let maximum s =
  Array.fold_left Demand.union_max
    (Demand.map (fun ~src:_ ~dst:_ _ -> 0.) s.base)
    s.samples
