lib/demand/traffic_gen.mli: Demand Wan
