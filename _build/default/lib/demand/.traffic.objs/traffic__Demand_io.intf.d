lib/demand/demand_io.mli: Demand
