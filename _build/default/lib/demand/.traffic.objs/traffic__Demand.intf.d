lib/demand/demand.mli: Format
