lib/demand/envelope.ml: Demand Float List
