lib/demand/envelope.mli: Demand
