lib/demand/gravity.mli: Demand Wan
