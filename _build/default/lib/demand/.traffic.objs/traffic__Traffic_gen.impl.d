lib/demand/traffic_gen.ml: Array Demand Float List Random
