lib/demand/demand.ml: Float Format List Map
