lib/demand/demand_io.ml: Buffer Demand Fun List Printf String
