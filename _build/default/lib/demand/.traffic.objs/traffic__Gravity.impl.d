lib/demand/gravity.ml: Array Demand Float Fun List Random Wan
