(** Demand envelopes: the space of demand matrices the adversary may
    choose from.

    The paper's outer problem picks demands inside a per-pair interval:
    either fixed (a concrete matrix, §5.1 "worst case failure for a
    specific demand"), a slack interval around a base matrix (Fig. 1
    middle: +/-50%), or [0, (1 + slack) * base] (§8.3 / Fig. 7). *)

type t = {
  lo : Demand.t;
  hi : Demand.t;  (** both over the same pair set *)
}

(** Fixed demands: [lo = hi = d]. *)
val fixed : Demand.t -> t

(** [from_zero ~slack base]: each demand ranges over
    [[0, (1 + slack) * base_k]] — the §8.3 experiment design. *)
val from_zero : slack:float -> Demand.t -> t

(** [around ~slack base]: [[max 0 ((1 - slack) base_k), (1 + slack) base_k]]
    — the Fig. 1 middle-scenario design. *)
val around : slack:float -> Demand.t -> t

(** [unbounded ~cap pairs]: each pair ranges over [[0, cap]] — "any
    demand" analyses with a bottleneck guard (Fig. 8 caps demands at half
    the average LAG capacity). *)
val unbounded : cap:float -> (int * int) list -> t

val pairs : t -> (int * int) list

(** True when [lo = hi] pointwise. *)
val is_fixed : t -> bool

(** Largest upper bound across pairs (used for big-M constants). *)
val max_hi : t -> float

val lo_volume : t -> src:int -> dst:int -> float
val hi_volume : t -> src:int -> dst:int -> float
