type t = { lo : Demand.t; hi : Demand.t }

let fixed d = { lo = d; hi = d }

let from_zero ~slack base =
  if slack < 0. then invalid_arg "Envelope.from_zero: negative slack";
  {
    lo = Demand.map (fun ~src:_ ~dst:_ _ -> 0.) base;
    hi = Demand.scale (1. +. slack) base;
  }

let around ~slack base =
  if slack < 0. then invalid_arg "Envelope.around: negative slack";
  {
    lo = Demand.map (fun ~src:_ ~dst:_ v -> Float.max 0. ((1. -. slack) *. v)) base;
    hi = Demand.scale (1. +. slack) base;
  }

let unbounded ~cap pairs =
  if cap <= 0. then invalid_arg "Envelope.unbounded: non-positive cap";
  let zero = Demand.of_list (List.map (fun p -> (p, 0.)) pairs) in
  { lo = zero; hi = Demand.map (fun ~src:_ ~dst:_ _ -> cap) zero }

let pairs t = Demand.pairs t.hi

let is_fixed t =
  List.for_all
    (fun (src, dst) ->
      Float.abs (Demand.volume t.lo ~src ~dst -. Demand.volume t.hi ~src ~dst) < 1e-12)
    (pairs t)

let max_hi t = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. (Demand.entries t.hi)
let lo_volume t = Demand.volume t.lo
let hi_volume t = Demand.volume t.hi
