(** Synthetic demand history.

    Substitutes for the paper's month of production telemetry: the
    experiments only consume the per-pair {e average} and {e maximum}
    over the window (§8.1, Fig. 5), which this generator reproduces with
    a diurnal sinusoid plus log-normal noise per pair. *)

type series = {
  base : Demand.t;  (** per-pair mean level *)
  samples : Demand.t array;  (** one matrix per sampling interval *)
}

(** [generate ~seed ~days ~samples_per_day ~pairs ~mean_volume topo ()]
    simulates [days * samples_per_day] demand matrices. *)
val generate :
  seed:int ->
  days:int ->
  samples_per_day:int ->
  pairs:(int * int) list ->
  mean_volume:float ->
  Wan.Topology.t ->
  unit ->
  series

(** Per-pair time average over the window — the paper's "fixed avg
    demand". *)
val average : series -> Demand.t

(** Per-pair maximum over the window — the paper's "fixed max demand". *)
val maximum : series -> Demand.t
