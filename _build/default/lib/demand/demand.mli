(** Demand matrices: traffic volume per (source, destination) pair. *)

type t

val empty : t

(** [of_list entries] builds a matrix from [((src, dst), volume)] pairs.
    @raise Invalid_argument on duplicates or negative volumes. *)
val of_list : ((int * int) * float) list -> t

(** Volume for a pair ([0.] when absent). *)
val volume : t -> src:int -> dst:int -> float

(** The pairs with (possibly zero) recorded volume, sorted. *)
val pairs : t -> (int * int) list

val entries : t -> ((int * int) * float) list
val total : t -> float
val scale : float -> t -> t

(** Pointwise maximum of two matrices (union of pairs). *)
val union_max : t -> t -> t

(** [set d ~src ~dst v] functional update. *)
val set : t -> src:int -> dst:int -> float -> t

val map : (src:int -> dst:int -> float -> float) -> t -> t
val cardinal : t -> int
val pp : Format.formatter -> t -> unit
