(** CSV import/export for demand matrices.

    Format: one [src,dst,volume] triple per line; node ids are integers;
    [#]-prefixed lines and blank lines are skipped. *)

val to_csv : Demand.t -> string

(** @raise Failure with a [line N: ...] message on malformed input. *)
val of_csv : string -> Demand.t

val save : Demand.t -> string -> unit
val load : string -> Demand.t
