module Pmap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = float Pmap.t

let empty = Pmap.empty

let of_list entries =
  List.fold_left
    (fun m ((src, dst), v) ->
      if v < 0. then invalid_arg "Demand.of_list: negative volume";
      if src = dst then invalid_arg "Demand.of_list: src = dst";
      if Pmap.mem (src, dst) m then invalid_arg "Demand.of_list: duplicate pair";
      Pmap.add (src, dst) v m)
    empty entries

let volume m ~src ~dst = match Pmap.find_opt (src, dst) m with Some v -> v | None -> 0.
let pairs m = Pmap.bindings m |> List.map fst
let entries m = Pmap.bindings m
let total m = Pmap.fold (fun _ v acc -> acc +. v) m 0.
let scale k m = Pmap.map (fun v -> k *. v) m

let union_max a b =
  Pmap.union (fun _ x y -> Some (Float.max x y)) a b

let set m ~src ~dst v =
  if v < 0. then invalid_arg "Demand.set: negative volume";
  Pmap.add (src, dst) v m

let map f m = Pmap.mapi (fun (src, dst) v -> f ~src ~dst v) m
let cardinal = Pmap.cardinal

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Pmap.iter (fun (s, d) v -> Format.fprintf ppf "%d->%d: %g@," s d v) m;
  Format.fprintf ppf "@]"
