let generate ?pairs ~scale ~seed topo () =
  let n = Wan.Topology.num_nodes topo in
  let rng = Random.State.make [| seed |] in
  let mass = Array.init n (fun _ -> Float.exp (Random.State.float rng 2.)) in
  let pairs =
    match pairs with
    | Some ps -> ps
    | None ->
      List.concat_map
        (fun i -> List.filter_map (fun j -> if i <> j then Some (i, j) else None) (List.init n Fun.id))
        (List.init n Fun.id)
  in
  let raw = List.map (fun (i, j) -> ((i, j), mass.(i) *. mass.(j))) pairs in
  let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. raw in
  if peak <= 0. then Demand.empty
  else Demand.of_list (List.map (fun (p, v) -> (p, scale *. v /. peak)) raw)
