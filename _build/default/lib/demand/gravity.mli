(** Gravity-model demand generation.

    The paper's MLU experiments "generate the demand from a gravity model
    with a scale factor of 100 Gbps" (§8.1). Node masses are sampled
    log-uniformly; demand between [i] and [j] is proportional to
    [mass i * mass j]. *)

(** [generate topo ~scale ~seed ()] produces demands for all ordered node
    pairs, normalized so the largest single demand equals [scale].
    [pairs] restricts generation to the given pairs. *)
val generate :
  ?pairs:(int * int) list ->
  scale:float ->
  seed:int ->
  Wan.Topology.t ->
  unit ->
  Demand.t
