let evar (v : Model.var) = Linexpr.var v.vid

let product_bin m ~name (b : Model.var) e ~ub =
  if b.kind <> Model.Binary then invalid_arg "Linearize.product_bin: not binary";
  let z = Model.continuous ~lb:0. ~ub m name in
  let ze = evar z in
  (* z <= ub * b *)
  Model.add_cons_expr m ~name:(name ^ "_cap") ze Model.Le (Linexpr.var ~coeff:ub b.vid);
  (* z <= e *)
  Model.add_cons_expr m ~name:(name ^ "_le") ze Model.Le e;
  (* z >= e - ub * (1 - b) *)
  Model.add_cons_expr m ~name:(name ^ "_ge")
    ze Model.Ge
    (Linexpr.add e (Linexpr.of_terms ~const:(-.ub) [ (ub, b.vid) ]));
  z

let indicator_ge0 m ~name e ~lb ~ub =
  if lb > ub then invalid_arg "Linearize.indicator_ge0: lb > ub";
  let y = Model.binary m name in
  (* y = 1 -> e >= 0 : e >= lb * (1 - y) *)
  Model.add_cons_expr m ~name:(name ^ "_on")
    e Model.Ge
    (Linexpr.of_terms ~const:lb [ (-.lb, y.vid) ]);
  (* y = 0 -> e <= -1 (integer-valued e) : e <= -1 + (ub + 1) * y *)
  Model.add_cons_expr m ~name:(name ^ "_off")
    e Model.Le
    (Linexpr.of_terms ~const:(-1.) [ (ub +. 1., y.vid) ]);
  y

let implies_le m ?name (b : Model.var) e k ~ub =
  let name = match name with Some n -> n | None -> b.vname ^ "_implies_le" in
  (* e <= k + (ub - k) * (1 - b) *)
  Model.add_cons_expr m ~name e Model.Le
    (Linexpr.of_terms ~const:ub [ (k -. ub, b.vid) ])

let implies_ge m ?name (b : Model.var) e k ~lb =
  let name = match name with Some n -> n | None -> b.vname ^ "_implies_ge" in
  (* e >= k + (lb - k) * (1 - b) *)
  Model.add_cons_expr m ~name e Model.Ge
    (Linexpr.of_terms ~const:lb [ (k -. lb, b.vid) ])

let bool_or m ~name bs =
  let y = Model.binary m name in
  let n = List.length bs in
  (* y >= each b; y <= sum b *)
  List.iteri
    (fun i (b : Model.var) ->
      Model.add_cons_expr m ~name:(Printf.sprintf "%s_ge%d" name i) (evar y) Model.Ge (evar b))
    bs;
  Model.add_cons_expr m ~name:(name ^ "_le")
    (evar y) Model.Le
    (Linexpr.sum (List.map evar bs));
  if n = 0 then Model.add_cons m ~name:(name ^ "_zero") (evar y) Model.Le 0.;
  y

let bool_and m ~name bs =
  let y = Model.binary m name in
  let n = List.length bs in
  List.iteri
    (fun i (b : Model.var) ->
      Model.add_cons_expr m ~name:(Printf.sprintf "%s_le%d" name i) (evar y) Model.Le (evar b))
    bs;
  (* y >= sum b - (n - 1) *)
  Model.add_cons_expr m ~name:(name ^ "_ge")
    (evar y) Model.Ge
    (Linexpr.add (Linexpr.sum (List.map evar bs)) (Linexpr.const (float_of_int (1 - n))));
  y

let complement_sum bs =
  let n = float_of_int (List.length bs) in
  List.fold_left
    (fun e (b : Model.var) -> Linexpr.add_term e (-1.) b.vid)
    (Linexpr.const n) bs

let product_bin_var m ~name (b : Model.var) (y : Model.var) ~lb ~ub =
  if b.kind <> Model.Binary then invalid_arg "Linearize.product_bin_var: not binary";
  if lb > ub then invalid_arg "Linearize.product_bin_var: lb > ub";
  let z = Model.continuous ~lb:(Float.min 0. lb) ~ub:(Float.max 0. ub) m name in
  let ze = evar z and ye = evar y in
  (* b = 0 -> z = 0; b = 1 -> z = y *)
  Model.add_cons_expr m ~name:(name ^ "_ub") ze Model.Le (Linexpr.var ~coeff:ub b.vid);
  Model.add_cons_expr m ~name:(name ^ "_lb") ze Model.Ge (Linexpr.var ~coeff:lb b.vid);
  Model.add_cons_expr m ~name:(name ^ "_le")
    ze Model.Le
    (Linexpr.add ye (Linexpr.of_terms ~const:(-.lb) [ (lb, b.vid) ]));
  Model.add_cons_expr m ~name:(name ^ "_ge")
    ze Model.Ge
    (Linexpr.add ye (Linexpr.of_terms ~const:(-.ub) [ (ub, b.vid) ]));
  z
