type var_kind = Continuous | Binary | Integer
type sense = Maximize | Minimize
type rel = Le | Ge | Eq

type var = { vid : int; vname : string; kind : var_kind; lb : float; ub : float }
type cons = { cname : string; lhs : Linexpr.t; rel : rel; rhs : float }

type t = {
  mname : string;
  mutable vs : var array;
  mutable nv : int;
  mutable cs : cons array;
  mutable nc : int;
  mutable obj_sense : sense;
  mutable obj : Linexpr.t;
  mutable n_int : int;
}

let create ?(name = "model") () =
  {
    mname = name;
    vs = Array.make 16 { vid = -1; vname = ""; kind = Continuous; lb = 0.; ub = 0. };
    nv = 0;
    cs = Array.make 16 { cname = ""; lhs = Linexpr.zero; rel = Le; rhs = 0. };
    nc = 0;
    obj_sense = Maximize;
    obj = Linexpr.zero;
    n_int = 0;
  }

let name m = m.mname

let grow arr n dummy =
  let arr' = Array.make (max 16 (2 * Array.length arr)) dummy in
  Array.blit arr 0 arr' 0 n;
  arr'

let add_var m ~name ~kind ~lb ~ub =
  let lb, ub =
    match kind with
    | Binary -> (Float.max 0. lb, Float.min 1. ub)
    | Continuous | Integer -> (lb, ub)
  in
  if lb > ub then
    invalid_arg (Printf.sprintf "Model.add_var %s: lb %g > ub %g" name lb ub);
  let v = { vid = m.nv; vname = name; kind; lb; ub } in
  if m.nv >= Array.length m.vs then m.vs <- grow m.vs m.nv v;
  m.vs.(m.nv) <- v;
  m.nv <- m.nv + 1;
  (match kind with Binary | Integer -> m.n_int <- m.n_int + 1 | Continuous -> ());
  v

let continuous ?(lb = 0.) ?(ub = Float.infinity) m name =
  add_var m ~name ~kind:Continuous ~lb ~ub

let binary m name = add_var m ~name ~kind:Binary ~lb:0. ~ub:1.

let integer ?(lb = 0.) ?(ub = Float.infinity) m name =
  add_var m ~name ~kind:Integer ~lb ~ub

let add_cons m ?name lhs rel rhs =
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" m.nc
  in
  (* Move the constant part of the lhs to the rhs. *)
  let k = Linexpr.constant lhs in
  let lhs = Linexpr.sub lhs (Linexpr.const k) in
  let c = { cname; lhs; rel; rhs = rhs -. k } in
  if m.nc >= Array.length m.cs then m.cs <- grow m.cs m.nc c;
  m.cs.(m.nc) <- c;
  m.nc <- m.nc + 1

let add_cons_expr m ?name lhs rel rhs =
  add_cons m ?name (Linexpr.sub lhs rhs) rel 0.

let set_objective m sense e =
  m.obj_sense <- sense;
  m.obj <- e

let objective m = (m.obj_sense, m.obj)
let num_vars m = m.nv
let num_cons m = m.nc
let num_int_vars m = m.n_int
let vars m = Array.sub m.vs 0 m.nv
let conss m = Array.sub m.cs 0 m.nc

let var_of_id m id =
  if id < 0 || id >= m.nv then invalid_arg "Model.var_of_id";
  m.vs.(id)

let var_name m id = (var_of_id m id).vname

let bounds m =
  let lb = Array.make m.nv 0. and ub = Array.make m.nv 0. in
  for i = 0 to m.nv - 1 do
    lb.(i) <- m.vs.(i).lb;
    ub.(i) <- m.vs.(i).ub
  done;
  (lb, ub)

let int_var_ids m =
  let rec loop i acc =
    if i < 0 then acc
    else
      match m.vs.(i).kind with
      | Binary | Integer -> loop (i - 1) (i :: acc)
      | Continuous -> loop (i - 1) acc
  in
  loop (m.nv - 1) []

let check_feasible ?(tol = 1e-6) m values =
  if Array.length values < m.nv then Some "solution vector too short"
  else
    let bad = ref None in
    for i = 0 to m.nv - 1 do
      if !bad = None then begin
        let v = m.vs.(i) and x = values.(i) in
        if x < v.lb -. tol || x > v.ub +. tol then
          bad := Some (Printf.sprintf "var %s = %g outside [%g, %g]" v.vname x v.lb v.ub)
        else
          match v.kind with
          | Binary | Integer ->
            if Float.abs (x -. Float.round x) > tol then
              bad := Some (Printf.sprintf "var %s = %g not integral" v.vname x)
          | Continuous -> ()
      end
    done;
    for j = 0 to m.nc - 1 do
      if !bad = None then begin
        let c = m.cs.(j) in
        let lhs = Linexpr.eval values c.lhs in
        let viol =
          match c.rel with
          | Le -> lhs -. c.rhs
          | Ge -> c.rhs -. lhs
          | Eq -> Float.abs (lhs -. c.rhs)
        in
        if viol > tol then
          bad := Some (Printf.sprintf "constraint %s violated by %g" c.cname viol)
      end
    done;
    !bad

let objective_value m values = Linexpr.eval values m.obj

let pp ppf m =
  let name id = m.vs.(id).vname in
  let pp_rel ppf = function
    | Le -> Format.pp_print_string ppf "<="
    | Ge -> Format.pp_print_string ppf ">="
    | Eq -> Format.pp_print_string ppf "="
  in
  Format.fprintf ppf "@[<v>%s %a@,subject to@,"
    (match m.obj_sense with Maximize -> "maximize" | Minimize -> "minimize")
    (Linexpr.pp name) m.obj;
  for j = 0 to m.nc - 1 do
    let c = m.cs.(j) in
    Format.fprintf ppf "  %s: %a %a %g@," c.cname (Linexpr.pp name) c.lhs pp_rel c.rel c.rhs
  done;
  Format.fprintf ppf "bounds@,";
  for i = 0 to m.nv - 1 do
    let v = m.vs.(i) in
    Format.fprintf ppf "  %g <= %s <= %g%s@," v.lb v.vname v.ub
      (match v.kind with Binary -> " (bin)" | Integer -> " (int)" | Continuous -> "")
  done;
  Format.fprintf ppf "@]"
