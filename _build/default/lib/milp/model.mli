(** Mutable MILP model builder.

    A model collects decision variables (continuous, binary or general
    integer, each with bounds), linear constraints and a linear objective.
    Variables are identified by dense integer ids so solutions can be
    stored in flat arrays. *)

type var_kind = Continuous | Binary | Integer

type sense = Maximize | Minimize

type rel = Le | Ge | Eq

type var = private {
  vid : int;
  vname : string;
  kind : var_kind;
  lb : float;
  ub : float;
}

type cons = private { cname : string; lhs : Linexpr.t; rel : rel; rhs : float }

type t

val create : ?name:string -> unit -> t

val name : t -> string

(** [add_var m ~name ~kind ~lb ~ub] allocates a fresh variable.
    Binary variables are clamped to bounds within [0, 1].
    @raise Invalid_argument if [lb > ub]. *)
val add_var :
  t -> name:string -> kind:var_kind -> lb:float -> ub:float -> var

(** Continuous variable, default bounds [0, +inf). *)
val continuous : ?lb:float -> ?ub:float -> t -> string -> var

(** Binary variable in [{0, 1}]. *)
val binary : t -> string -> var

(** General integer variable. *)
val integer : ?lb:float -> ?ub:float -> t -> string -> var

(** [add_cons m ~name lhs rel rhs] adds the constraint [lhs rel rhs].
    Constant terms inside [lhs] are moved to the right-hand side. *)
val add_cons : t -> ?name:string -> Linexpr.t -> rel -> float -> unit

(** [add_cons_expr m ~name lhs rel rhs] adds [lhs rel rhs] where both
    sides are expressions. *)
val add_cons_expr : t -> ?name:string -> Linexpr.t -> rel -> Linexpr.t -> unit

val set_objective : t -> sense -> Linexpr.t -> unit

val objective : t -> sense * Linexpr.t

val num_vars : t -> int
val num_cons : t -> int

(** Number of binary/integer variables. *)
val num_int_vars : t -> int

val vars : t -> var array
val conss : t -> cons array

val var_of_id : t -> int -> var
val var_name : t -> int -> string

(** Lower/upper bound arrays indexed by variable id (fresh copies). *)
val bounds : t -> float array * float array

(** Ids of integer-constrained (binary or integer) variables. *)
val int_var_ids : t -> int list

(** [check_feasible ?tol m values] is [None] when [values] satisfies all
    constraints, bounds and integrality within [tol], and otherwise
    [Some reason]. *)
val check_feasible : ?tol:float -> t -> float array -> string option

(** Evaluate the objective expression at a point. *)
val objective_value : t -> float array -> float

(** Render the model in a human-readable LP-like format (debugging). *)
val pp : Format.formatter -> t -> unit
