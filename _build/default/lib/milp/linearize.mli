(** Standard big-M / McCormick linearization helpers.

    These encode the non-convex gadgets Raha extracts into the outer
    problem (§5 of the paper): products of binary and bounded continuous
    variables, indicator functions over integer-valued expressions
    (Eq. 5), and simple boolean algebra over binaries. *)

(** [product_bin m ~name b e ~ub] returns a fresh continuous variable [z]
    constrained to equal [b * e], where [b] is a binary variable and [e]
    a linear expression with value in [[0, ub]]. Exact (McCormick for a
    binary factor). *)
val product_bin :
  Model.t -> name:string -> Model.var -> Linexpr.t -> ub:float -> Model.var

(** [indicator_ge0 m ~name e ~lb ~ub] returns a fresh binary [y] with
    [y = 1 <-> e >= 0], valid when [e] is integer-valued with range
    [[lb, ub]]. This linearizes the indicator of Eq. 5. *)
val indicator_ge0 :
  Model.t -> name:string -> Linexpr.t -> lb:float -> ub:float -> Model.var

(** [implies_le m b e k] adds [b = 1 -> e <= k] using big-M, where [e]'s
    value never exceeds [ub]. *)
val implies_le : Model.t -> ?name:string -> Model.var -> Linexpr.t -> float -> ub:float -> unit

(** [implies_ge m b e k] adds [b = 1 -> e >= k], where [e >= lb] always. *)
val implies_ge : Model.t -> ?name:string -> Model.var -> Linexpr.t -> float -> lb:float -> unit

(** [bool_or m ~name bs] returns binary [y = b1 \/ ... \/ bn]. *)
val bool_or : Model.t -> name:string -> Model.var list -> Model.var

(** [bool_and m ~name bs] returns binary [y = b1 /\ ... /\ bn]. *)
val bool_and : Model.t -> name:string -> Model.var list -> Model.var

(** [complement_sum m bs] is the expression [n - sum bs], i.e. the number
    of zero binaries among [bs]. *)
val complement_sum : Model.var list -> Linexpr.t

(** [product_bin_var m ~name b y ~lb ~ub] returns [z = b * y] where [y]
    is a continuous variable with value in [[lb, ub]] (bounds may be
    negative). Exact for binary [b]. *)
val product_bin_var :
  Model.t -> name:string -> Model.var -> Model.var -> lb:float -> ub:float -> Model.var
