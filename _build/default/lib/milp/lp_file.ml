(* Variable names must be LP-format safe: alphanumerics plus a few
   symbols, not starting with a digit or 'e'. We emit x<id> and keep the
   human name in a comment header. *)

let var_name id = Printf.sprintf "x%d" id

let append_expr b e =
  let first = ref true in
  Linexpr.iter
    (fun id c ->
      if c <> 0. then begin
        if c < 0. then Buffer.add_string b (if !first then "-" else "- ")
        else if not !first then Buffer.add_string b "+ ";
        let mag = Float.abs c in
        if mag <> 1. then Buffer.add_string b (Printf.sprintf "%.12g " mag);
        Buffer.add_string b (var_name id);
        Buffer.add_char b ' ';
        first := false
      end)
    e;
  if !first then Buffer.add_string b "0 "

let to_string m =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "\\ model: %s\n" (Model.name m));
  Array.iter
    (fun (v : Model.var) ->
      Buffer.add_string b (Printf.sprintf "\\ %s = %s\n" (var_name v.Model.vid) v.Model.vname))
    (Model.vars m);
  let sense, obj = Model.objective m in
  Buffer.add_string b
    (match sense with Model.Maximize -> "Maximize\n obj: " | Model.Minimize -> "Minimize\n obj: ");
  append_expr b obj;
  Buffer.add_string b "\nSubject To\n";
  Array.iteri
    (fun i (c : Model.cons) ->
      Buffer.add_string b (Printf.sprintf " c%d: " i);
      append_expr b c.Model.lhs;
      let rel = match c.Model.rel with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "=" in
      Buffer.add_string b (Printf.sprintf "%s %.12g\n" rel c.Model.rhs))
    (Model.conss m);
  Buffer.add_string b "Bounds\n";
  Array.iter
    (fun (v : Model.var) ->
      let name = var_name v.Model.vid in
      let lb =
        if v.Model.lb = Float.neg_infinity then "-inf" else Printf.sprintf "%.12g" v.Model.lb
      in
      let ub =
        if v.Model.ub = Float.infinity then "+inf" else Printf.sprintf "%.12g" v.Model.ub
      in
      Buffer.add_string b (Printf.sprintf " %s <= %s <= %s\n" lb name ub))
    (Model.vars m);
  let of_kind k =
    Array.to_list (Model.vars m)
    |> List.filter_map (fun (v : Model.var) ->
           if v.Model.kind = k then Some (var_name v.Model.vid) else None)
  in
  (match of_kind Model.Binary with
  | [] -> ()
  | bins ->
    Buffer.add_string b "Binaries\n ";
    Buffer.add_string b (String.concat " " bins);
    Buffer.add_char b '\n');
  (match of_kind Model.Integer with
  | [] -> ()
  | ints ->
    Buffer.add_string b "Generals\n ";
    Buffer.add_string b (String.concat " " ints);
    Buffer.add_char b '\n');
  Buffer.add_string b "End\n";
  Buffer.contents b

let write m path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string m))
