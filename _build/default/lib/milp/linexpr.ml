module Imap = Map.Make (Int)

type t = { coeffs : float Imap.t; const : float }

let zero = { coeffs = Imap.empty; const = 0. }

let put id c m = if c = 0. then Imap.remove id m else Imap.add id c m

let var ?(coeff = 1.0) id =
  if id < 0 then invalid_arg "Linexpr.var: negative id";
  { coeffs = put id coeff Imap.empty; const = 0. }

let const c = { coeffs = Imap.empty; const = c }

let add_term e c id =
  if id < 0 then invalid_arg "Linexpr.add_term: negative id";
  let c' = (match Imap.find_opt id e.coeffs with Some x -> x | None -> 0.) +. c in
  { e with coeffs = put id c' e.coeffs }

let of_terms ?(const = 0.) terms =
  List.fold_left (fun e (c, id) -> add_term e c id) { zero with const } terms

let add a b =
  let coeffs =
    Imap.union (fun _ x y -> let s = x +. y in if s = 0. then None else Some s) a.coeffs b.coeffs
  in
  { coeffs; const = a.const +. b.const }

let scale k e =
  if k = 0. then zero
  else { coeffs = Imap.map (fun c -> k *. c) e.coeffs; const = k *. e.const }

let neg e = scale (-1.) e
let sub a b = add a (neg b)
let sum es = List.fold_left add zero es
let coeff e id = match Imap.find_opt id e.coeffs with Some c -> c | None -> 0.
let constant e = e.const
let terms e = Imap.fold (fun id c acc -> (c, id) :: acc) e.coeffs [] |> List.rev
let iter f e = Imap.iter f e.coeffs

let eval values e =
  Imap.fold (fun id c acc -> acc +. (c *. values.(id))) e.coeffs e.const

let max_var e = match Imap.max_binding_opt e.coeffs with Some (id, _) -> id | None -> -1
let is_constant e = Imap.is_empty e.coeffs

let pp name ppf e =
  let first = ref true in
  let term id c =
    let sign = if c < 0. then "- " else if !first then "" else "+ " in
    let mag = Float.abs c in
    if mag = 1. then Format.fprintf ppf "%s%s " sign (name id)
    else Format.fprintf ppf "%s%g %s " sign mag (name id);
    first := false
  in
  Imap.iter term e.coeffs;
  if e.const <> 0. || !first then
    Format.fprintf ppf "%s%g" (if e.const < 0. then "- " else if !first then "" else "+ ")
      (Float.abs e.const)
