(** Linear expressions over model variables.

    A linear expression is an affine function [sum_i coeff_i * x_i + const]
    where the [x_i] are identified by integer variable ids allocated by
    {!Model}. Expressions are immutable persistent values. *)

type t

val zero : t

(** [var ?coeff id] is the expression [coeff * x_id] (default coefficient
    [1.0]). *)
val var : ?coeff:float -> int -> t

(** [const c] is the constant expression [c]. *)
val const : float -> t

(** [of_terms ?const terms] builds an expression from
    [(coefficient, var id)] pairs; repeated ids are summed. *)
val of_terms : ?const:float -> (float * int) list -> t

val add : t -> t -> t
val sub : t -> t -> t

(** [scale k e] multiplies every coefficient and the constant by [k]. *)
val scale : float -> t -> t

(** [add_term e coeff id] adds [coeff * x_id] to [e]. *)
val add_term : t -> float -> int -> t

val neg : t -> t

(** Sum of a list of expressions. *)
val sum : t list -> t

(** [coeff e id] is the coefficient of [x_id] in [e] ([0.] if absent). *)
val coeff : t -> int -> float

val constant : t -> float

(** [terms e] lists the (coefficient, var id) pairs with non-zero
    coefficients, in increasing id order. *)
val terms : t -> (float * int) list

(** [iter f e] applies [f id coeff] to every non-zero term. *)
val iter : (int -> float -> unit) -> t -> unit

(** [eval values e] evaluates [e] with [values.(id)] as the value of
    [x_id]. *)
val eval : float array -> t -> float

(** Largest variable id mentioned, or [-1] for a constant expression. *)
val max_var : t -> int

val is_constant : t -> bool

(** Pretty-print with a variable-name resolver. *)
val pp : (int -> string) -> Format.formatter -> t -> unit
