(** Two-phase primal simplex for linear programs.

    Implements the bounded-variable simplex method on a dense tableau:
    variable bounds are handled natively (no bound rows), which keeps the
    tableau small when branch-and-bound repeatedly tightens bounds.
    Anti-cycling falls back to Bland's rule after a stall is detected. *)

type result =
  | Optimal of { obj : float; values : float array }
      (** Proven optimal; [values] is indexed by model variable id. *)
  | Infeasible
  | Unbounded
  | Iter_limit
      (** The iteration budget was exhausted before optimality. *)

(** [solve ?lb ?ub ?max_iters model] solves the LP relaxation of [model]
    (integrality is ignored). [lb]/[ub] override the model's variable
    bounds — branch-and-bound uses this to explore nodes without copying
    the model. The default iteration budget is [50 * (rows + cols) + 200].

    Integer kinds are ignored; the objective honours the model's sense. *)
val solve :
  ?lb:float array ->
  ?ub:float array ->
  ?max_iters:int ->
  Model.t ->
  result

(** Number of simplex pivots performed by the last [solve] call
    (diagnostic; useful for benchmarking). *)
val last_iterations : unit -> int
