(** CPLEX-LP-format export of models.

    Lets any encoding be inspected or cross-checked with an external
    solver (the role Gurobi's model dumps play in the paper's workflow).
    Only the subset needed for these models is emitted: objective, linear
    constraints, bounds, binaries and generals. *)

val to_string : Model.t -> string

val write : Model.t -> string -> unit
