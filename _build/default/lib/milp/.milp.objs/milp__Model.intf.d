lib/milp/model.mli: Format Linexpr
