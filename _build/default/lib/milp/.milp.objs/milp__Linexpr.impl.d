lib/milp/linexpr.ml: Array Float Format Int List Map
