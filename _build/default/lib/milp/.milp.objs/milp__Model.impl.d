lib/milp/model.ml: Array Float Format Linexpr Printf
