lib/milp/solver.ml: Array Branch_bound Float Format Model Simplex Unix
