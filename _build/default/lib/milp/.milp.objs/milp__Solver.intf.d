lib/milp/solver.mli: Format Model
