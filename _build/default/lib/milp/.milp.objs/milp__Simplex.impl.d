lib/milp/simplex.ml: Array Float Linexpr List Model
