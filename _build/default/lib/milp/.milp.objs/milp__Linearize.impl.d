lib/milp/linearize.ml: Float Linexpr List Model Printf
