lib/milp/branch_bound.ml: Array Float List Logs Model Simplex Unix
