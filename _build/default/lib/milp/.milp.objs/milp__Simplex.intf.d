lib/milp/simplex.mli: Model
