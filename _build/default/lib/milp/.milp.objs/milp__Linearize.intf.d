lib/milp/linearize.mli: Linexpr Model
