lib/milp/lp_file.mli: Model
