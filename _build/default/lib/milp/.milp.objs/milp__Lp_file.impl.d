lib/milp/lp_file.ml: Array Buffer Float Fun Linexpr List Model Printf String
