(* Binary-heap priority queue specialised to (float key, int payload). *)
module Pq = struct
  type t = { mutable keys : float array; mutable data : int array; mutable len : int }

  let create () = { keys = Array.make 64 0.; data = Array.make 64 0; len = 0 }

  let push q k v =
    if q.len = Array.length q.keys then begin
      let keys = Array.make (2 * q.len) 0. and data = Array.make (2 * q.len) 0 in
      Array.blit q.keys 0 keys 0 q.len;
      Array.blit q.data 0 data 0 q.len;
      q.keys <- keys;
      q.data <- data
    end;
    q.keys.(q.len) <- k;
    q.data.(q.len) <- v;
    q.len <- q.len + 1;
    let i = ref (q.len - 1) in
    while !i > 0 && q.keys.(!i) < q.keys.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tk = q.keys.(p) and td = q.data.(p) in
      q.keys.(p) <- q.keys.(!i);
      q.data.(p) <- q.data.(!i);
      q.keys.(!i) <- tk;
      q.data.(!i) <- td;
      i := p
    done

  let pop q =
    if q.len = 0 then None
    else begin
      let k = q.keys.(0) and v = q.data.(0) in
      q.len <- q.len - 1;
      q.keys.(0) <- q.keys.(q.len);
      q.data.(0) <- q.data.(q.len);
      let i = ref 0 and going = ref true in
      while !going do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < q.len && q.keys.(l) < q.keys.(!m) then m := l;
        if r < q.len && q.keys.(r) < q.keys.(!m) then m := r;
        if !m = !i then going := false
        else begin
          let tk = q.keys.(!m) and td = q.data.(!m) in
          q.keys.(!m) <- q.keys.(!i);
          q.data.(!m) <- q.data.(!i);
          q.keys.(!i) <- tk;
          q.data.(!i) <- td;
          i := !m
        end
      done;
      Some (k, v)
    end
end

let hop_count _ = 1.

let dijkstra ?(weight = hop_count) ?(avoid_lags = fun _ -> false)
    ?(avoid_nodes = fun _ -> false) topo ~src ~dst =
  let n = Wan.Topology.num_nodes topo in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Shortest.dijkstra";
  if src = dst then invalid_arg "Shortest.dijkstra: src = dst";
  let dist = Array.make n infinity in
  let prev_lag = Array.make n (-1) in
  let prev_node = Array.make n (-1) in
  let settled = Array.make n false in
  let q = Pq.create () in
  dist.(src) <- 0.;
  Pq.push q 0. src;
  let rec loop () =
    match Pq.pop q with
    | None -> ()
    | Some (d, v) ->
      if settled.(v) then loop ()
      else if v = dst then ()
      else begin
        settled.(v) <- true;
        List.iter
          (fun (w, lag_id) ->
            if (not settled.(w)) && (not (avoid_lags lag_id)) && not (avoid_nodes w)
            then begin
              let wt = weight lag_id in
              if wt < 0. then invalid_arg "Shortest: negative weight";
              let nd = d +. wt in
              if nd < dist.(w) -. 1e-12 then begin
                dist.(w) <- nd;
                prev_lag.(w) <- lag_id;
                prev_node.(w) <- v;
                Pq.push q nd w
              end
            end)
          (Wan.Topology.neighbors topo v);
        loop ()
      end
  in
  (if not (avoid_nodes src || avoid_nodes dst) then loop ());
  if dist.(dst) = infinity then None
  else begin
    let rec trace v acc = if v = src then v :: acc else trace prev_node.(v) (v :: acc) in
    Some (Path.make topo (trace dst []))
  end

let yen ?(weight = hop_count) topo ~src ~dst k =
  if k <= 0 then []
  else
    match dijkstra ~weight topo ~src ~dst with
    | None -> []
    | Some first ->
      let accepted = ref [ first ] in
      (* candidate set keyed by path to avoid duplicates *)
      let candidates = ref [] in
      let add_candidate p =
        if
          (not (List.exists (Path.equal p) !accepted))
          && not (List.exists (Path.equal p) !candidates)
        then candidates := p :: !candidates
      in
      let rec iterate () =
        if List.length !accepted >= k then ()
        else begin
          let last = List.hd !accepted in
          let last_nodes = Path.node_list last in
          (* spur from every prefix of the last accepted path *)
          let rec spurs prefix_rev rest =
            match rest with
            | [] | [ _ ] -> ()
            | spur_node :: _ ->
              let prefix = List.rev (spur_node :: prefix_rev) in
              let plen = List.length prefix in
              (* lags to avoid: the next hop of any accepted path sharing
                 this prefix *)
              let avoid = Hashtbl.create 8 in
              List.iter
                (fun (p : Path.t) ->
                  let pn = Path.node_list p in
                  let rec take n = function
                    | [] -> []
                    | _ when n = 0 -> []
                    | x :: tl -> x :: take (n - 1) tl
                  in
                  if take plen pn = prefix && Path.length p >= plen then
                    Hashtbl.replace avoid p.Path.lag_ids.(plen - 1) ())
                !accepted;
              let root_nodes = List.filter (fun v -> v <> spur_node) prefix in
              let avoid_nodes v = List.mem v root_nodes in
              let avoid_lags id = Hashtbl.mem avoid id in
              (match dijkstra ~weight ~avoid_lags ~avoid_nodes topo ~src:spur_node ~dst with
              | None -> ()
              | Some spur ->
                let total = prefix @ List.tl (Path.node_list spur) in
                (* the concatenation can revisit nodes; Path.make rejects *)
                (match Path.make topo total with
                | p -> add_candidate p
                | exception Invalid_argument _ -> ()));
              spurs (spur_node :: prefix_rev) (List.tl rest)
          in
          spurs [] last_nodes;
          match
            List.sort
              (fun a b -> compare (Path.weight weight a) (Path.weight weight b))
              !candidates
          with
          | [] -> ()
          | best :: rest ->
            candidates := rest;
            accepted := best :: !accepted;
            iterate ()
        end
      in
      iterate ();
      List.rev !accepted
