type t = { nodes : int array; lag_ids : int array }

let make topo node_list =
  let nodes = Array.of_list node_list in
  let n = Array.length nodes in
  if n < 2 then invalid_arg "Path.make: fewer than two nodes";
  let seen = Hashtbl.create n in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg "Path.make: repeated node";
      Hashtbl.replace seen v ())
    nodes;
  let lag_ids =
    Array.init (n - 1) (fun i ->
        match Wan.Topology.lag_between topo nodes.(i) nodes.(i + 1) with
        | Some lag -> lag.Wan.Lag.lag_id
        | None ->
          invalid_arg
            (Printf.sprintf "Path.make: no LAG between %d and %d" nodes.(i) nodes.(i + 1)))
  in
  { nodes; lag_ids }

let of_lags topo ~src lag_ids =
  let rec walk v = function
    | [] -> [ v ]
    | id :: rest ->
      let lag = Wan.Topology.lag topo id in
      v :: walk (Wan.Lag.other_end lag v) rest
  in
  make topo (walk src lag_ids)

let src t = t.nodes.(0)
let dst t = t.nodes.(Array.length t.nodes - 1)
let length t = Array.length t.lag_ids
let mem_lag t id = Array.exists (Int.equal id) t.lag_ids
let node_list t = Array.to_list t.nodes
let lag_list t = Array.to_list t.lag_ids
let weight w t = Array.fold_left (fun acc id -> acc +. w id) 0. t.lag_ids

let lag_disjoint a b = not (Array.exists (mem_lag b) a.lag_ids)

let equal a b = a.nodes = b.nodes && a.lag_ids = b.lag_ids
let compare a b = compare (a.nodes, a.lag_ids) (b.nodes, b.lag_ids)

let pp topo ppf t =
  Format.pp_print_string ppf
    (String.concat "-" (List.map (Wan.Topology.node_name topo) (node_list t)))
