(** Tunnel (path) selection for a set of node pairs.

    Raha accepts any path selection policy (§3); these are the policies
    the paper evaluates: plain k-shortest paths (default), weighted
    k-shortest paths (Fig. 13: LAG weights steer paths apart), and
    LAG-disjoint greedy selection. Each pair gets an ordered list —
    primaries first, then backups in fail-over priority order (§4.2). *)

type scheme =
  | Hop_count  (** k shortest by hop count *)
  | Weighted of (int -> float)  (** k shortest by custom LAG weights *)
  | Usage_penalized
      (** after each selected path, the weight of its LAGs grows, which
          de-correlates the selected paths (the §8.1 production scheme:
          "we use the number of paths as the weight of each LAG") *)
  | Lag_disjoint  (** greedily keep only LAG-disjoint paths *)

type pair = {
  src : int;
  dst : int;
  primary : Path.t list;
  backup : Path.t list;  (** in fail-over priority order *)
}

(** Ordered paths: primaries then backups. *)
val all_paths : pair -> Path.t list

val num_primary : pair -> int
val num_backup : pair -> int

type t = pair list

(** [compute topo ~scheme ~n_primary ~n_backup pairs] selects paths for
    every [(src, dst)] pair. Fewer paths than requested may exist; a pair
    with no path at all raises [Invalid_argument] (the topology is
    disconnected). *)
val compute :
  ?scheme:scheme ->
  n_primary:int ->
  n_backup:int ->
  Wan.Topology.t ->
  (int * int) list ->
  t

(** [find t ~src ~dst] returns the pair's paths. @raise Not_found. *)
val find : t -> src:int -> dst:int -> pair

(** Total number of paths across all pairs. *)
val total_paths : t -> int

(** [via_gateway topo ~gateway ~n_primary ~n_backup dsts] builds path
    sets for a virtual gateway node (the "equivalences" device of §9 of
    the paper): traffic entering at [gateway] may leave through any of
    its immediate neighbors, so for each destination the gateway's path
    list is the union over neighbors [g] of [gateway-g] prefixed to [g]'s
    own k-shortest paths, sorted by total hop count. *)
val via_gateway :
  n_primary:int ->
  n_backup:int ->
  Wan.Topology.t ->
  gateway:int ->
  dsts:int list ->
  t
